(* Tests for the EDGE ISA layer: block construction, validation, and the
   functional dataflow executor (predication, null stores, LSID ordering,
   fanout movs, block-atomic commit). *)

open Trips_tir
open Trips_edge

let value = Alcotest.testable Ty.pp_value ( = )

(* A counted loop:  for (i = 0; i < n; i++) acc += i;  return acc.
   Registers: r2 = n (arg), r10 = i, r11 = acc, r1 = result. *)
let sum_program () =
  let open Builder in
  let entry =
    let b = create "sum.entry" in
    let z = inst b (Isa.Geni 0L) in
    write b 10 [ z ];
    let z2 = inst b (Isa.Geni 0L) in
    write b 11 [ z2 ];
    let _ = inst b (Isa.Branch (Isa.Xjump "sum.loop")) in
    finish b
  in
  let loop =
    (* the register updates are predicated on the loop test, as the TRIPS
       compiler emits them: the exiting instance must not commit another
       increment (predicate-merged writes) *)
    let b = create "sum.loop" in
    let i = read b 10 in
    let acc = read b 11 in
    let n = read b 2 in
    let t = inst b (Isa.Bin Ast.Lt) in
    arc b i t Isa.Op0;
    arc b n t Isa.Op1;
    let i' = inst b ~pred:(t, true) ~imm:1L (Isa.Bin Ast.Add) in
    arc b i i' Isa.Op0;
    let i_keep = inst b ~pred:(t, false) Isa.Mov in
    arc b i i_keep Isa.Op0;
    let acc' = inst b ~pred:(t, true) (Isa.Bin Ast.Add) in
    arc b acc acc' Isa.Op0;
    arc b i acc' Isa.Op1;
    let acc_keep = inst b ~pred:(t, false) Isa.Mov in
    arc b acc acc_keep Isa.Op0;
    write b 10 [ i'; i_keep ];
    write b 11 [ acc'; acc_keep ];
    let _ = inst b ~pred:(t, true) (Isa.Branch (Isa.Xjump "sum.loop")) in
    let _ = inst b ~pred:(t, false) (Isa.Branch (Isa.Xjump "sum.exit")) in
    finish b
  in
  let exit_b =
    let b = create "sum.exit" in
    let acc = read b 11 in
    let m = inst b Isa.Mov in
    arc b acc m Isa.Op0;
    write b 1 [ m ];
    let _ = inst b (Isa.Branch Isa.Xret) in
    finish b
  in
  {
    Block.globals = [];
    funcs = [ { Block.fname = "sum"; entry = "sum.entry"; blocks = [ entry; loop; exit_b ] } ];
  }

let test_sum_loop () =
  let p = sum_program () in
  Block.validate_program p;
  let image = Image.build [] in
  let r = Exec.run p image ~entry:"sum" ~args:[ Ty.Vi 10L ] in
  Alcotest.(check (option value)) "sum 0..9" (Some (Ty.Vi 45L)) r.ret;
  (* 11 block instances: entry + 10 loop iterations + exit... the loop test
     runs n+1 times (i=0..10), so blocks = 1 + 11 + 1 *)
  Alcotest.(check int) "blocks" 13 r.stats.Exec.blocks

(* Predicated select: return a > b ? a : b, with both movs feeding one
   write slot. *)
let max_program () =
  let open Builder in
  let b = create "max.entry" in
  let a = read b 2 in
  let b2 = read b 3 in
  let t = inst b (Isa.Bin Ast.Gt) in
  arc b a t Isa.Op0;
  arc b b2 t Isa.Op1;
  let mt = inst b ~pred:(t, true) Isa.Mov in
  arc b a mt Isa.Op0;
  let mf = inst b ~pred:(t, false) Isa.Mov in
  arc b b2 mf Isa.Op0;
  write b 1 [ mt; mf ];
  let _ = inst b (Isa.Branch Isa.Xret) in
  let blk = finish b in
  { Block.globals = []; funcs = [ { Block.fname = "max"; entry = "max.entry"; blocks = [ blk ] } ] }

let test_predicated_select () =
  let p = max_program () in
  Block.validate_program p;
  let run a b =
    let image = Image.build [] in
    (Exec.run p image ~entry:"max" ~args:[ Ty.Vi a; Ty.Vi b ]).ret
  in
  Alcotest.(check (option value)) "max 3 7" (Some (Ty.Vi 7L)) (run 3L 7L);
  Alcotest.(check (option value)) "max 9 1" (Some (Ty.Vi 9L)) (run 9L 1L)

let test_mispredicated_counted () =
  let p = max_program () in
  let image = Image.build [] in
  let r = Exec.run p image ~entry:"max" ~args:[ Ty.Vi 3L; Ty.Vi 7L ] in
  (* one of the two movs never fires *)
  Alcotest.(check int) "not executed" 1 r.stats.Exec.not_executed;
  Alcotest.(check int) "executed" 3 r.stats.Exec.executed

(* Conditional store with null completion:
   if (a > 0) mem[g] = a;  return mem[g];  (g preset to 99) *)
let nullstore_program () =
  let open Builder in
  let b = create "ns.entry" in
  let a = read b 2 in
  let t = inst b ~imm:0L (Isa.Bin Ast.Gt) in
  arc b a t Isa.Op0;
  let addr = inst b (Isa.Geni 0x1000L) in
  (* guarded address and data: value if predicate true, null otherwise *)
  let ma = inst b ~pred:(t, true) Isa.Mov in
  arc b addr ma Isa.Op0;
  let md = inst b ~pred:(t, true) Isa.Mov in
  arc b a md Isa.Op0;
  let nl = inst b ~pred:(t, false) Isa.Null in
  let st = inst b (Isa.Store (Ty.W8, -1)) in
  arc b ma st Isa.Op0;
  arc b nl st Isa.Op0;
  arc b md st Isa.Op1;
  arc b nl st Isa.Op1;
  let ld = inst b (Isa.Load (Ty.I64, Ty.W8, -1)) in
  let addr2 = inst b (Isa.Geni 0x1000L) in
  arc b addr2 ld Isa.Op0;
  let m = inst b Isa.Mov in
  arc b ld m Isa.Op0;
  write b 1 [ m ];
  let _ = inst b (Isa.Branch Isa.Xret) in
  let blk = finish b in
  { Block.globals = [ Ast.global "g" ~init:[| (Ty.W8, 99L) |] 8 ];
    funcs = [ { Block.fname = "ns"; entry = "ns.entry"; blocks = [ blk ] } ] }

let test_null_store_taken () =
  let p = nullstore_program () in
  Block.validate_program p;
  let image = Image.build p.Block.globals in
  let r = Exec.run p image ~entry:"ns" ~args:[ Ty.Vi 42L ] in
  Alcotest.(check (option value)) "stored value read back" (Some (Ty.Vi 42L)) r.ret;
  Alcotest.(check int) "one real store" 1 r.stats.Exec.stores_committed

let test_null_store_not_taken () =
  let p = nullstore_program () in
  let image = Image.build p.Block.globals in
  let r = Exec.run p image ~entry:"ns" ~args:[ Ty.Vi (-5L) ] in
  Alcotest.(check (option value)) "memory untouched" (Some (Ty.Vi 99L)) r.ret;
  Alcotest.(check int) "no real store" 0 r.stats.Exec.stores_committed

(* Fanout: one geni feeding 5 adds must grow mov instructions. *)
let test_fanout_tree () =
  let open Builder in
  let b = create "fan.entry" in
  let x = inst b (Isa.Geni 7L) in
  let adds =
    List.init 5 (fun _ ->
        let a = inst b ~imm:1L (Isa.Bin Ast.Add) in
        arc b x a Isa.Op0;
        a)
  in
  (* combine the five results so they are useful *)
  let rec combine = function
    | [ one ] -> one
    | a :: b2 :: rest ->
      let s = inst b (Isa.Bin Ast.Add) in
      arc b a s Isa.Op0;
      arc b b2 s Isa.Op1;
      combine (rest @ [ s ])
    | [] -> assert false
  in
  let total = combine adds in
  write b 1 [ total ];
  let _ = inst b (Isa.Branch Isa.Xret) in
  let blk = finish b in
  let movs =
    Array.fold_left
      (fun acc (i : Isa.inst) -> if i.Isa.op = Isa.Mov then acc + 1 else acc)
      0 blk.Block.insts
  in
  Alcotest.(check int) "5 consumers need 3 movs" 3 movs;
  let p = { Block.globals = []; funcs = [ { Block.fname = "fan"; entry = "fan.entry"; blocks = [ blk ] } ] } in
  Block.validate_program p;
  let image = Image.build [] in
  let r = Exec.run p image ~entry:"fan" ~args:[] in
  Alcotest.(check (option value)) "result" (Some (Ty.Vi 40L)) r.ret

(* Store -> load forwarding inside one block, LSID order. *)
let test_intrablock_forwarding () =
  let open Builder in
  let b = create "fwd.entry" in
  let addr = inst b (Isa.Geni 0x1000L) in
  let data = inst b (Isa.Geni 1234L) in
  let st = inst b (Isa.Store (Ty.W8, -1)) in
  arc b addr st Isa.Op0;
  arc b data st Isa.Op1;
  let addr2 = inst b (Isa.Geni 0x1000L) in
  let ld = inst b (Isa.Load (Ty.I64, Ty.W8, -1)) in
  arc b addr2 ld Isa.Op0;
  let m = inst b Isa.Mov in
  arc b ld m Isa.Op0;
  write b 1 [ m ];
  let _ = inst b (Isa.Branch Isa.Xret) in
  let blk = finish b in
  let p =
    { Block.globals = [ Ast.global "g" 8 ];
      funcs = [ { Block.fname = "fwd"; entry = "fwd.entry"; blocks = [ blk ] } ] }
  in
  Block.validate_program p;
  let image = Image.build p.Block.globals in
  let r = Exec.run p image ~entry:"fwd" ~args:[] in
  Alcotest.(check (option value)) "forwarded" (Some (Ty.Vi 1234L)) r.ret

(* Validation must reject malformed blocks. *)
let test_validate_rejects () =
  let reject reason make =
    match make () with
    | exception Block.Invalid _ -> ()
    | _blk -> Alcotest.failf "expected rejection: %s" reason
  in
  reject "no exit" (fun () ->
      let b = Builder.create "bad1" in
      let x = Builder.inst b (Isa.Geni 1L) in
      Builder.write b 1 [ x ];
      Builder.finish b);
  reject "missing operand producer" (fun () ->
      let b = Builder.create "bad2" in
      let a = Builder.inst b (Isa.Bin Ast.Add) in
      Builder.write b 1 [ a ];
      let _ = Builder.inst b (Isa.Branch Isa.Xret) in
      Builder.finish b);
  reject "write without producer" (fun () ->
      let b = Builder.create "bad3" in
      let x = Builder.inst b (Isa.Geni 1L) in
      Builder.write b 1 [ x ];
      Builder.write b 2 [];
      let _ = Builder.inst b (Isa.Branch Isa.Xret) in
      Builder.finish b)

let test_too_many_insts_rejected () =
  match
    let b = Builder.create "big" in
    let prev = ref (Builder.inst b (Isa.Geni 1L)) in
    for _ = 1 to 130 do
      let nxt = Builder.inst b ~imm:1L (Isa.Bin Ast.Add) in
      Builder.arc b !prev nxt Isa.Op0;
      prev := nxt
    done;
    Builder.write b 1 [ !prev ];
    let _ = Builder.inst b (Isa.Branch Isa.Xret) in
    Builder.finish b
  with
  | exception Block.Invalid (_, reason) ->
    Alcotest.(check bool) "size reason" true
      (String.length reason >= 4 && String.sub reason 0 4 = "too ")
  | _ -> Alcotest.fail "expected Invalid"

(* Block composition stats on the sum loop. *)
let test_composition_stats () =
  let p = sum_program () in
  let image = Image.build [] in
  let r = Exec.run p image ~entry:"sum" ~args:[ Ty.Vi 10L ] in
  let s = r.stats in
  Alcotest.(check int) "fetched = executed + squashed" s.Exec.fetched
    (s.Exec.executed + s.Exec.not_executed);
  Alcotest.(check bool) "some control" true (s.Exec.k_control > 0);
  Alcotest.(check bool) "some tests" true (s.Exec.k_test > 0);
  Alcotest.(check bool) "reads fetched" true (s.Exec.reads_fetched > 0);
  Alcotest.(check bool) "writes committed" true (s.Exec.writes_committed > 0)

(* Calls: callee computes, caller resumes. *)
let call_program () =
  let open Builder in
  (* callee double: r1 = r2 * 2 *)
  let dbl =
    let b = create "dbl.entry" in
    let a = read b 2 in
    let m = inst b ~imm:2L (Isa.Bin Ast.Mul) in
    arc b a m Isa.Op0;
    write b 1 [ m ];
    let _ = inst b (Isa.Branch Isa.Xret) in
    finish b
  in
  (* main: r1 = dbl(arg) + 1 *)
  let entry =
    let b = create "main.entry" in
    let a = read b 2 in
    let m = inst b Isa.Mov in
    arc b a m Isa.Op0;
    write b 2 [ m ];
    let _ = inst b (Isa.Branch (Isa.Xcall ("dbl", "main.ret"))) in
    finish b
  in
  let after =
    let b = create "main.ret" in
    let rv = read b 1 in
    let inc = inst b ~imm:1L (Isa.Bin Ast.Add) in
    arc b rv inc Isa.Op0;
    write b 1 [ inc ];
    let _ = inst b (Isa.Branch Isa.Xret) in
    finish b
  in
  {
    Block.globals = [];
    funcs =
      [
        { Block.fname = "main"; entry = "main.entry"; blocks = [ entry; after ] };
        { Block.fname = "dbl"; entry = "dbl.entry"; blocks = [ dbl ] };
      ];
  }

let test_call_return () =
  let p = call_program () in
  Block.validate_program p;
  let image = Image.build [] in
  let r = Exec.run p image ~entry:"main" ~args:[ Ty.Vi 20L ] in
  Alcotest.(check (option value)) "dbl(20)+1" (Some (Ty.Vi 41L)) r.ret

let () =
  Alcotest.run "edge"
    [
      ( "exec",
        [
          Alcotest.test_case "sum loop" `Quick test_sum_loop;
          Alcotest.test_case "predicated select" `Quick test_predicated_select;
          Alcotest.test_case "mispredicated counted" `Quick test_mispredicated_counted;
          Alcotest.test_case "null store taken" `Quick test_null_store_taken;
          Alcotest.test_case "null store not taken" `Quick test_null_store_not_taken;
          Alcotest.test_case "intra-block forwarding" `Quick test_intrablock_forwarding;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "composition stats" `Quick test_composition_stats;
        ] );
      ( "builder",
        [
          Alcotest.test_case "fanout tree" `Quick test_fanout_tree;
          Alcotest.test_case "validation rejects" `Quick test_validate_rejects;
          Alcotest.test_case "oversized block rejected" `Quick test_too_many_insts_rejected;
        ] );
    ]
