(* Full-suite integration tests: every registered benchmark must produce
   the interpreter's golden result and memory image through both the EDGE
   pipeline (compiled preset) and the RISC pipeline.  The hand-written EDGE
   vadd must agree too. *)

open Trips_tir
open Trips_workloads

let value = Alcotest.testable Ty.pp_value ( = )

let test_registry_shape () =
  Alcotest.(check int) "55 benchmarks" 55 (List.length Registry.all);
  Alcotest.(check int) "30 EEMBC" 30 (List.length (Registry.by_suite Registry.Eembc));
  Alcotest.(check int) "10 SPEC INT" 10 (List.length (Registry.by_suite Registry.SpecInt));
  Alcotest.(check int) "8 SPEC FP" 8 (List.length (Registry.by_suite Registry.SpecFp));
  Alcotest.(check int) "15 in the Simple suite" 15 (List.length Registry.simple_suite);
  (* names unique *)
  let names = List.map (fun b -> b.Registry.name) Registry.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let check_edge (b : Registry.bench) =
  let exp_v, exp_m = Registry.golden b in
  let compiled = Trips_compiler.Driver.compile Trips_compiler.Driver.compiled b.Registry.program in
  let image = Image.build b.Registry.program.Ast.globals in
  let r = Trips_edge.Exec.run compiled image ~entry:"main" ~args:[] in
  Alcotest.(check (option value)) (b.Registry.name ^ " edge result") exp_v r.Trips_edge.Exec.ret;
  Alcotest.(check int64) (b.Registry.name ^ " edge memory") exp_m (Image.checksum image)

let check_risc (b : Registry.bench) =
  let exp_v, exp_m = Registry.golden b in
  let compiled = Trips_risc.Codegen.compile b.Registry.program in
  let image = Image.build b.Registry.program.Ast.globals in
  let r = Trips_risc.Exec.run compiled image ~entry:"main" ~args:[] in
  Alcotest.(check (option value)) (b.Registry.name ^ " risc result") exp_v
    (Trips_risc.Exec.ret_value r b.Registry.ret);
  Alcotest.(check int64) (b.Registry.name ^ " risc memory") exp_m (Image.checksum image)

let test_all_edge () = List.iter check_edge Registry.all
let test_all_risc () = List.iter check_risc Registry.all

let test_hand_vadd () =
  let b = Registry.find "vadd" in
  let exp_v, exp_m = Registry.golden b in
  match b.Registry.hand_edge with
  | None -> Alcotest.fail "vadd must carry hand EDGE code"
  | Some prog ->
    Trips_edge.Block.validate_program prog;
    let image = Image.build prog.Trips_edge.Block.globals in
    let r = Trips_edge.Exec.run prog image ~entry:"main" ~args:[] in
    Alcotest.(check (option value)) "hand vadd result" exp_v r.Trips_edge.Exec.ret;
    Alcotest.(check int64) "hand vadd memory" exp_m (Image.checksum image)

let test_hand_preset_all_simple () =
  (* the aggressive preset must stay correct on the Simple suite *)
  List.iter
    (fun (b : Registry.bench) ->
      let exp_v, exp_m = Registry.golden b in
      let compiled = Trips_compiler.Driver.compile Trips_compiler.Driver.hand b.Registry.program in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Trips_edge.Exec.run compiled image ~entry:"main" ~args:[] in
      Alcotest.(check (option value)) (b.Registry.name ^ " hand result") exp_v
        r.Trips_edge.Exec.ret;
      Alcotest.(check int64) (b.Registry.name ^ " hand memory") exp_m (Image.checksum image))
    Registry.simple_suite

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [ Alcotest.test_case "shape" `Quick test_registry_shape ] );
      ( "differential",
        [
          Alcotest.test_case "all benchmarks via EDGE" `Slow test_all_edge;
          Alcotest.test_case "all benchmarks via RISC" `Slow test_all_risc;
          Alcotest.test_case "hand-written vadd" `Quick test_hand_vadd;
          Alcotest.test_case "hand preset on Simple suite" `Slow test_hand_preset_all_simple;
        ] );
    ]
