(* Tests for the branch/block predictors: learning behaviour on synthetic
   streams with known structure. *)

open Trips_predictor

let run_tournament pattern ~warm ~measure =
  let t = Tournament.create Tournament.alpha_like in
  let correct = ref 0 in
  let n = warm + measure in
  for k = 0 to n - 1 do
    let taken = pattern k in
    let p = Tournament.predict t ~pc:0x40 in
    if k >= warm && p = taken then incr correct;
    Tournament.update t ~pc:0x40 ~taken
  done;
  float_of_int !correct /. float_of_int measure

let test_tournament_constant () =
  let acc = run_tournament (fun _ -> true) ~warm:64 ~measure:1000 in
  Alcotest.(check bool) "always-taken learned" true (acc > 0.99)

let test_tournament_alternating () =
  (* local history captures period-2 patterns *)
  let acc = run_tournament (fun k -> k mod 2 = 0) ~warm:256 ~measure:1000 in
  Alcotest.(check bool) (Printf.sprintf "alternating learned (%.2f)" acc) true (acc > 0.95)

let test_tournament_period_four () =
  let acc = run_tournament (fun k -> k mod 4 = 0) ~warm:512 ~measure:2000 in
  Alcotest.(check bool) (Printf.sprintf "period-4 learned (%.2f)" acc) true (acc > 0.9)

let test_tournament_random_baseline () =
  let rng = Trips_util.Rng.create 11L in
  let acc = run_tournament (fun _ -> Trips_util.Rng.bool rng) ~warm:512 ~measure:4000 in
  Alcotest.(check bool) (Printf.sprintf "random ~50%% (%.2f)" acc) true
    (acc > 0.40 && acc < 0.62)

let test_independent_branches () =
  (* two branches with opposite biases must not destructively alias *)
  let t = Tournament.create Tournament.alpha_like in
  let correct = ref 0 in
  for k = 0 to 4000 do
    let pc = if k mod 2 = 0 then 0x100 else 0x333 in
    let taken = pc = 0x100 in
    let p = Tournament.predict t ~pc in
    if k > 512 && p = taken then incr correct;
    Tournament.update t ~pc ~taken
  done;
  Alcotest.(check bool) "both biases learned" true (!correct > 3300)

let test_btb_learns () =
  let t = Target.create Target.prototype in
  Alcotest.(check (option int)) "cold miss" None (Target.predict t ~pc:7 Target.Jump);
  Target.update t ~pc:7 Target.Jump ~target:99;
  Alcotest.(check (option int)) "hit" (Some 99) (Target.predict t ~pc:7 Target.Jump)

let test_ras_matches_calls () =
  let t = Target.create Target.prototype in
  Target.update t ~pc:1 Target.Call ~target:50 ~fallthrough:2;
  Target.update t ~pc:51 Target.Call ~target:70 ~fallthrough:52;
  Alcotest.(check (option int)) "inner return" (Some 52) (Target.predict t ~pc:71 Target.Ret);
  Target.update t ~pc:71 Target.Ret ~target:52;
  Alcotest.(check (option int)) "outer return" (Some 2) (Target.predict t ~pc:55 Target.Ret);
  Target.update t ~pc:55 Target.Ret ~target:2;
  Alcotest.(check (option int)) "empty stack" None (Target.predict t ~pc:3 Target.Ret)

let test_ras_overflow () =
  let cfg = { Target.prototype with Target.ras_depth = 4 } in
  let t = Target.create cfg in
  for k = 0 to 9 do
    Target.update t ~pc:k Target.Call ~target:100 ~fallthrough:(1000 + k)
  done;
  (* deepest 4 pushes survive: 1009, 1008, 1007, 1006 *)
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "pop" (Some expect) (Target.predict t ~pc:0 Target.Ret);
      Target.update t ~pc:0 Target.Ret ~target:expect)
    [ 1009; 1008; 1007; 1006 ];
  Alcotest.(check (option int)) "then empty" None (Target.predict t ~pc:0 Target.Ret)

let test_blockpred_loop () =
  (* a loop block that exits to itself 9 times then falls through *)
  let t = Blockpred.create Blockpred.prototype in
  let correct = ref 0 and total = ref 0 in
  for _trip = 0 to 200 do
    for k = 0 to 9 do
      let is_back = k < 9 in
      let target = if is_back then 10 else 20 in
      let pred = Blockpred.predict t ~block:10 in
      incr total;
      if pred = Some target then incr correct;
      Blockpred.update t
        { Blockpred.o_block = 10; o_exit = (if is_back then 0 else 1);
          o_kind = Blockpred.Kjump; o_target = target; o_fallthrough = 0 }
    done
  done;
  (* a loop with trip count 10 mispredicts at most the exit; > 80% overall *)
  let acc = float_of_int !correct /. float_of_int !total in
  Alcotest.(check bool) (Printf.sprintf "loop accuracy %.2f" acc) true (acc > 0.80)

let test_blockpred_call_return () =
  let t = Blockpred.create Blockpred.prototype in
  (* block 1 calls block 5; block 5 returns to block 2 (fallthrough of 1) *)
  let train () =
    Blockpred.update t
      { Blockpred.o_block = 1; o_exit = 0; o_kind = Blockpred.Kcall;
        o_target = 5; o_fallthrough = 2 };
    Blockpred.update t
      { Blockpred.o_block = 5; o_exit = 0; o_kind = Blockpred.Kret;
        o_target = 2; o_fallthrough = 0 }
  in
  train ();
  (* second pass: both transfers should now predict correctly *)
  Blockpred.update t
    { Blockpred.o_block = 1; o_exit = 0; o_kind = Blockpred.Kcall;
      o_target = 5; o_fallthrough = 2 };
  Alcotest.(check (option int)) "return to caller" (Some 2) (Blockpred.predict t ~block:5);
  Blockpred.update t
    { Blockpred.o_block = 5; o_exit = 0; o_kind = Blockpred.Kret; o_target = 2;
      o_fallthrough = 0 }

let test_improved_bigger () =
  Alcotest.(check bool) "improved has more state" true
    (Blockpred.storage_bits Blockpred.improved > Blockpred.storage_bits Blockpred.prototype)

let test_depend_predictor () =
  let d = Depend.create ~entries:64 () in
  Alcotest.(check bool) "cold: no wait" false (Depend.should_wait d ~load_id:5);
  Depend.record_violation d ~load_id:5;
  Alcotest.(check bool) "after violation: wait" true (Depend.should_wait d ~load_id:5);
  Alcotest.(check bool) "other loads unaffected" false (Depend.should_wait d ~load_id:6)

let () =
  Alcotest.run "predictor"
    [
      ( "tournament",
        [
          Alcotest.test_case "constant" `Quick test_tournament_constant;
          Alcotest.test_case "alternating" `Quick test_tournament_alternating;
          Alcotest.test_case "period four" `Quick test_tournament_period_four;
          Alcotest.test_case "random baseline" `Quick test_tournament_random_baseline;
          Alcotest.test_case "independent branches" `Quick test_independent_branches;
        ] );
      ( "target",
        [
          Alcotest.test_case "btb learns" `Quick test_btb_learns;
          Alcotest.test_case "ras call/return" `Quick test_ras_matches_calls;
          Alcotest.test_case "ras overflow" `Quick test_ras_overflow;
        ] );
      ( "blockpred",
        [
          Alcotest.test_case "loop exits" `Quick test_blockpred_loop;
          Alcotest.test_case "call/return" `Quick test_blockpred_call_return;
          Alcotest.test_case "improved bigger" `Quick test_improved_bigger;
          Alcotest.test_case "dependence predictor" `Quick test_depend_predictor;
        ] );
    ]
