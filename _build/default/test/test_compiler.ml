(* Differential tests for the TRIPS compiler: every preset must produce EDGE
   code whose architectural behaviour matches the TIR interpreter exactly
   (result value and final memory image), across control flow, predication,
   calls, loops, memory traffic and floats. *)

open Trips_tir
open Trips_edge
open Trips_compiler
open Ast.Infix

let value = Alcotest.testable Ty.pp_value ( = )

(* -- benchmark-like sample programs ---------------------------------- *)

(* Nested conditionals inside a loop: stresses predication and merges. *)
let prog_classify =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "small" (i 0);
          set "mid" (i 0);
          set "big" (i 0);
          for_ "k" (i 0) (v "n")
            [
              set "x" ((v "k" *: i 2654435761) &: i 1023);
              if_ (v "x" <: i 100)
                [ set "small" (v "small" +: i 1) ]
                [
                  if_ (v "x" <: i 600)
                    [ set "mid" (v "mid" +: v "x") ]
                    [ set "big" (v "big" +: i 2) ];
                ];
            ];
          ret ((v "small" <<: i 40) ^: (v "mid" <<: i 10) ^: v "big");
        ];
    ]

(* Conditional stores: exercises null-completion paths. *)
let prog_sieve =
  Ast.program
    ~globals:[ Ast.global "flags" 512 ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 512) [ st1 (g "flags" +: v "k") (i 1) ];
          for_ "p" (i 2) (i 23)
            [
              if_ (ld1 (g "flags" +: v "p") =: i 1)
                [
                  set "q" (v "p" *: v "p");
                  while_ (v "q" <: i 512)
                    [ st1 (g "flags" +: v "q") (i 0); set "q" (v "q" +: v "p") ];
                ]
                [];
            ];
          set "count" (i 0);
          for_ "k" (i 2) (i 512)
            [
              if_ (ld1 (g "flags" +: v "k") =: i 1)
                [ set "count" (v "count" +: i 1) ]
                [];
            ];
          ret (v "count");
        ];
    ]

(* Recursion + helper calls. *)
let prog_calls =
  Ast.program
    [
      Ast.func "weight" ~params:[ ("x", Ty.I64) ] ~ret:Ty.I64
        [ ret ((v "x" &: i 7) +: i 1) ];
      Ast.func "walk" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          if_ (v "n" <=: i 0) [ ret (i 1) ] [];
          ret (call "weight" [ v "n" ] +: call "walk" [ v "n" -: i 1 ]);
        ];
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [ ret (call "walk" [ v "n" ]) ];
    ]

(* Floating point reduction with a data-dependent branch. *)
let prog_float =
  Ast.program
    ~globals:[ Ast.global "vec" (128 * 8) ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "k" (i 0) (i 128)
            [
              stf
                (g "vec" +: (v "k" <<: i 3))
                (Ast.Un (Ast.Itof, (v "k" *: i 37) %: i 100) /.: f 10.0);
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i 128)
            [
              set "x" (ldf (g "vec" +: (v "k" <<: i 3)));
              if_ (v "x" >.: f 5.0) [ set "s" (v "s" +.: v "x") ] [ set "s" (v "s" -.: v "x") ];
            ];
          ret (v "s");
        ];
    ]

(* Pointer chasing through a linked structure built in memory. *)
let prog_list =
  Ast.program
    ~globals:[ Ast.global "nodes" (64 * 16) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          (* node k: value at +0, next pointer at +8; permuted order *)
          for_ "k" (i 0) (i 64)
            [
              set "base" (g "nodes" +: (v "k" <<: i 4));
              st8 (v "base") (v "k" *: i 3);
              st8 (v "base" +: i 8)
                (g "nodes" +: (((v "k" +: i 17) %: i 64) <<: i 4));
            ];
          set "p" (g "nodes");
          set "acc" (i 0);
          for_ "k" (i 0) (i 64)
            [ set "acc" (v "acc" +: ld8 (v "p")); set "p" (ld8 (v "p" +: i 8)) ];
          ret (v "acc");
        ];
    ]

(* Division guarded by a test: trapping ops must be predicated, not
   speculated. *)
let prog_guarded_div =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "k" (i 0) (v "n")
            [
              set "d" (v "k" %: i 5);
              if_ (v "d" <>: i 0) [ set "acc" (v "acc" +: (i 1000 /: v "d")) ] [];
            ];
          ret (v "acc");
        ];
    ]

let samples =
  [
    ("classify", prog_classify, [ Ty.Vi 300L ]);
    ("sieve", prog_sieve, []);
    ("calls", prog_calls, [ Ty.Vi 25L ]);
    ("float", prog_float, []);
    ("list", prog_list, []);
    ("guarded-div", prog_guarded_div, [ Ty.Vi 50L ]);
  ]

let presets = [ Driver.o0; Driver.compiled; Driver.hand; Driver.basic_blocks ]

let golden p args =
  let image = Image.build p.Ast.globals in
  let out = Interp.run_ast p image "main" args in
  (out.Interp.result, Image.checksum image)

let run_edge preset p args =
  let compiled = Driver.compile preset p in
  let image = Image.build p.Ast.globals in
  let r = Exec.run compiled image ~entry:"main" ~args in
  (r.Exec.ret, Image.checksum image, r.Exec.stats)

let test_differential () =
  List.iter
    (fun (tag, p, args) ->
      let exp_v, exp_m = golden p args in
      List.iter
        (fun (preset : Driver.preset) ->
          let got_v, got_m, _ = run_edge preset p args in
          let name = Printf.sprintf "%s/%s" tag preset.Driver.pname in
          Alcotest.(check (option value)) (name ^ " result") exp_v got_v;
          Alcotest.(check int64) (name ^ " memory") exp_m got_m)
        presets)
    samples

let test_block_limits_respected () =
  List.iter
    (fun (tag, p, _args) ->
      List.iter
        (fun (preset : Driver.preset) ->
          let compiled = Driver.compile preset p in
          ignore tag;
          Block.validate_program compiled;
          List.iter
            (fun (f : Block.func) ->
              List.iter
                (fun (b : Block.t) ->
                  let insts, reads, writes, exits = Block.size_stats b in
                  Alcotest.(check bool) "insts<=128" true (insts <= 128);
                  Alcotest.(check bool) "reads<=32" true (reads <= 32);
                  Alcotest.(check bool) "writes<=32" true (writes <= 32);
                  Alcotest.(check bool) "exits in 1..8" true (exits >= 1 && exits <= 8);
                  Alcotest.(check bool) "lsids<=32" true (Block.num_lsids b <= 32))
                f.Block.blocks)
            compiled.Block.funcs)
        presets)
    samples

let test_hand_fewer_blocks () =
  (* deeper unrolling packs more work per block, so the aggressive preset
     must execute fewer block instances on a loop benchmark *)
  let blocks preset =
    let compiled = Driver.compile preset prog_float in
    let image = Image.build prog_float.Ast.globals in
    let r = Exec.run compiled image ~entry:"main" ~args:[] in
    r.Exec.stats.Exec.blocks
  in
  let c = blocks Driver.compiled and h = blocks Driver.hand in
  Alcotest.(check bool)
    (Printf.sprintf "hand (%d) <= compiled (%d)" h c)
    true (h <= c)

let test_hyperblocks_fewer_blocks () =
  (* if-conversion must reduce executed block count vs basic blocks *)
  let blocks preset =
    let compiled = Driver.compile preset prog_classify in
    let image = Image.build prog_classify.Ast.globals in
    let r = Exec.run compiled image ~entry:"main" ~args:[ Ty.Vi 300L ] in
    r.Exec.stats.Exec.blocks
  in
  let hb = blocks Driver.compiled and bb = blocks Driver.basic_blocks in
  Alcotest.(check bool)
    (Printf.sprintf "hyperblocks (%d) < basic blocks (%d)" hb bb)
    true (hb < bb)

let test_predication_produces_squashed () =
  let compiled = Driver.compile Driver.compiled prog_classify in
  let image = Image.build prog_classify.Ast.globals in
  let r = Exec.run compiled image ~entry:"main" ~args:[ Ty.Vi 300L ] in
  Alcotest.(check bool) "some fetched-not-executed" true (r.Exec.stats.Exec.not_executed > 0);
  Alcotest.(check bool) "some moves" true (r.Exec.stats.Exec.k_move > 0)

let test_placement_capacity () =
  List.iter
    (fun (_, p, _) ->
      let compiled = Driver.compile Driver.compiled p in
      List.iter
        (fun (f : Block.func) ->
          List.iter
            (fun (b : Block.t) ->
              let occ = Array.make 16 0 in
              Array.iter (fun et -> occ.(et) <- occ.(et) + 1) b.Block.placement;
              Array.iter
                (fun c -> Alcotest.(check bool) "<=8 per tile" true (c <= 8))
                occ)
            f.Block.blocks)
        compiled.Block.funcs)
    samples

(* Property: random programs still agree through the whole pipeline. *)
let gen_program =
  let open QCheck.Gen in
  let vars = [| "a"; "b"; "c" |] in
  let rec expr depth st =
    if depth = 0 then
      match int_bound 2 st with
      | 0 -> Ast.Int (Int64.of_int (int_range (-64) 64 st))
      | _ -> Ast.Var vars.(int_bound 2 st)
    else
      let op =
        match int_bound 7 st with
        | 0 -> Ast.Add | 1 -> Ast.Sub | 2 -> Ast.Mul | 3 -> Ast.Xor
        | 4 -> Ast.And | 5 -> Ast.Lt | _ -> Ast.Ge
      in
      Ast.Bin (op, expr (depth - 1) st, expr (depth - 1) st)
  in
  let stmt st =
    match int_bound 3 st with
    | 0 | 1 -> Ast.Let (vars.(int_bound 2 st), expr 2 st)
    | _ ->
      Ast.If
        ( expr 1 st,
          [ Ast.Let (vars.(int_bound 2 st), expr 2 st) ],
          if bool st then [ Ast.Let (vars.(int_bound 2 st), expr 2 st) ] else [] )
  in
  let gen st =
    let body = List.init (1 + int_bound 8 st) (fun _ -> stmt st) in
    Ast.program
      [
        Ast.func "main"
          ~params:[ ("a", Ty.I64); ("b", Ty.I64); ("c", Ty.I64) ]
          ~ret:Ty.I64
          (body @ [ Ast.Return (Some (expr 2 st)) ]);
      ]
  in
  gen

let prop_compile_correct =
  QCheck.Test.make ~name:"compiled EDGE code matches the interpreter" ~count:150
    (QCheck.make gen_program) (fun p ->
      let args = [ Ty.Vi 5L; Ty.Vi (-3L); Ty.Vi 1000L ] in
      let exp_v, _ = golden p args in
      List.for_all
        (fun preset ->
          let got_v, _, _ = run_edge preset p args in
          got_v = exp_v)
        [ Driver.compiled; Driver.basic_blocks ])

let () =
  Alcotest.run "compiler"
    [
      ( "differential",
        [
          Alcotest.test_case "all presets match interpreter" `Quick test_differential;
          QCheck_alcotest.to_alcotest prop_compile_correct;
        ] );
      ( "structure",
        [
          Alcotest.test_case "block limits respected" `Quick test_block_limits_respected;
          Alcotest.test_case "hand executes fewer blocks" `Quick test_hand_fewer_blocks;
          Alcotest.test_case "if-conversion reduces block count" `Quick test_hyperblocks_fewer_blocks;
          Alcotest.test_case "predication squashes instructions" `Quick test_predication_produces_squashed;
          Alcotest.test_case "placement capacity" `Quick test_placement_capacity;
        ] );
    ]
