(* Differential tests for the RISC backend + simulator: results and memory
   must match the TIR interpreter, and the counted statistics must be
   self-consistent. *)

open Trips_tir
open Trips_risc
open Ast.Infix

let value = Alcotest.testable Ty.pp_value ( = )

let prog_mix =
  Ast.program
    ~globals:[ Ast.global "data" (96 * 8) ]
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 96)
            [ st8 (g "data" +: (v "k" <<: i 3)) ((v "k" *: v "k") %: i 97) ];
          set "acc" (i 0);
          for_ "k" (i 0) (v "n")
            [
              set "x" (ld8 (g "data" +: ((v "k" %: i 96) <<: i 3)));
              if_ (v "x" &: i 1)
                [ set "acc" (v "acc" +: v "x") ]
                [ set "acc" (v "acc" -: (v "x" >>: i 1)) ];
            ];
          ret (v "acc");
        ];
    ]

let prog_frec =
  Ast.program
    [
      Ast.func "ack_lite" ~params:[ ("m", Ty.I64); ("x", Ty.I64) ] ~ret:Ty.I64
        [
          if_ (v "m" =: i 0) [ ret (v "x" +: i 1) ] [];
          if_ (v "x" =: i 0) [ ret (call "ack_lite" [ v "m" -: i 1; i 1 ]) ] [];
          ret (call "ack_lite" [ v "m" -: i 1; call "ack_lite" [ v "m"; v "x" -: i 1 ] ]);
        ];
      Ast.func "main" ~ret:Ty.I64 [ ret (call "ack_lite" [ i 2; i 3 ]) ];
    ]

let prog_fsum =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.F64
        [
          set "s" (f 1.5);
          for_ "k" (i 1) (v "n")
            [
              set "t" (Ast.Un (Ast.Itof, v "k"));
              if_ (v "t" >.: f 10.0)
                [ set "s" (v "s" +.: (f 1.0 /.: v "t")) ]
                [ set "s" (v "s" *.: f 1.01) ];
            ];
          ret (v "s");
        ];
    ]

(* big straight-line block after unrolling: forces spills *)
let prog_pressure =
  Ast.program
    ~globals:[ Ast.global "a" (64 * 8); Ast.global "b" (64 * 8) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 64)
            [
              st8 (g "a" +: (v "k" <<: i 3)) (v "k" +: i 7);
              st8 (g "b" +: (v "k" <<: i 3)) (v "k" *: i 13);
            ];
          set "s0" (i 0); set "s1" (i 0); set "s2" (i 0); set "s3" (i 0);
          set "s4" (i 0); set "s5" (i 0); set "s6" (i 0); set "s7" (i 0);
          for_ "k" (i 0) (i 64)
            [
              set "x" (ld8 (g "a" +: (v "k" <<: i 3)));
              set "y" (ld8 (g "b" +: (v "k" <<: i 3)));
              set "s0" (v "s0" +: (v "x" *: v "y"));
              set "s1" (v "s1" ^: (v "x" +: v "y"));
              set "s2" (v "s2" +: (v "x" &: v "y"));
              set "s3" (v "s3" +: (v "x" |: v "y"));
              set "s4" (v "s4" +: (v "x" <<: i 1));
              set "s5" (v "s5" +: (v "y" >>: i 1));
              set "s6" (v "s6" +: (v "x" -: v "y"));
              set "s7" (v "s7" ^: (v "x" *: i 31));
            ];
          ret
            (v "s0" ^: v "s1" ^: v "s2" ^: v "s3" ^: v "s4" ^: v "s5" ^: v "s6"
           ^: v "s7");
        ];
    ]

let samples =
  [
    ("mix", prog_mix, [ Ty.Vi 200L ], Some Ty.I64);
    ("frec", prog_frec, [], Some Ty.I64);
    ("fsum", prog_fsum, [ Ty.Vi 40L ], Some Ty.F64);
    ("pressure", prog_pressure, [], Some Ty.I64);
  ]

let golden p args =
  let image = Image.build p.Ast.globals in
  let out = Interp.run_ast p image "main" args in
  (out.Interp.result, Image.checksum image)

let run_risc ?(unroll = 1) p args ret_ty =
  let compiled = Codegen.compile ~unroll p in
  let image = Image.build p.Ast.globals in
  let r = Exec.run compiled image ~entry:"main" ~args in
  (Exec.ret_value r ret_ty, Image.checksum image, r.Exec.stats)

let test_differential () =
  List.iter
    (fun (tag, p, args, ret_ty) ->
      let exp_v, exp_m = golden p args in
      List.iter
        (fun unroll ->
          let got_v, got_m, _ = run_risc ~unroll p args ret_ty in
          let name = Printf.sprintf "%s/u%d" tag unroll in
          Alcotest.(check (option value)) (name ^ " result") exp_v got_v;
          Alcotest.(check int64) (name ^ " memory") exp_m got_m)
        [ 1; 4 ])
    samples

let test_stats_consistency () =
  let _, _, s = run_risc prog_mix [ Ty.Vi 200L ] (Some Ty.I64) in
  Alcotest.(check bool) "loads>0" true (s.Exec.loads > 0);
  Alcotest.(check bool) "stores>0" true (s.Exec.stores > 0);
  Alcotest.(check bool) "branches>0" true (s.Exec.branches > 0);
  Alcotest.(check bool) "taken<=branches+calls" true (s.Exec.taken <= s.Exec.executed);
  Alcotest.(check bool) "reads >= writes" true (s.Exec.reg_reads > 0 && s.Exec.reg_writes > 0);
  Alcotest.(check bool) "unique pcs <= executed" true (s.Exec.unique_pcs <= s.Exec.executed)

let test_retire_stream () =
  let compiled = Codegen.compile prog_mix in
  let image = Image.build prog_mix.Ast.globals in
  let conds = ref 0 and mems = ref 0 and retired = ref 0 in
  let r =
    Exec.run compiled image ~entry:"main" ~args:[ Ty.Vi 50L ]
      ~on_retire:(fun ret ->
        incr retired;
        (match ret.Exec.r_kind with Exec.Kcond -> incr conds | _ -> ());
        match ret.Exec.r_mem with Some _ -> incr mems | None -> ())
  in
  Alcotest.(check int) "every instruction retires" r.Exec.stats.Exec.executed !retired;
  Alcotest.(check bool) "cond branches streamed" true (!conds > 0);
  Alcotest.(check int) "memory ops streamed" (r.Exec.stats.Exec.loads + r.Exec.stats.Exec.stores) !mems

let test_unroll_reduces_branches () =
  let _, _, s1 = run_risc ~unroll:1 prog_mix [ Ty.Vi 400L ] (Some Ty.I64) in
  let _, _, s4 = run_risc ~unroll:4 prog_mix [ Ty.Vi 400L ] (Some Ty.I64) in
  Alcotest.(check bool)
    (Printf.sprintf "u4 branches (%d) < u1 (%d)" s4.Exec.branches s1.Exec.branches)
    true
    (s4.Exec.branches < s1.Exec.branches)

let () =
  Alcotest.run "risc"
    [
      ( "exec",
        [
          Alcotest.test_case "differential vs interpreter" `Quick test_differential;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "retire stream" `Quick test_retire_stream;
          Alcotest.test_case "unrolling reduces branches" `Quick test_unroll_reduces_branches;
        ] );
    ]
