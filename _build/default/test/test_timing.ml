(* Tests for the timing models: the TRIPS cycle simulator, the ideal-EDGE
   limit machine and the superscalar reference models.  Timing models have
   no golden cycle counts, so these tests check invariants: correctness of
   the architectural result, determinism, and the orderings the models
   exist to expose (ideal >= hardware, bigger window helps, weaker
   reference machines are slower). *)

open Trips_tir
open Trips_workloads
open Trips_harness
module Core = Trips_sim.Core
module Ideal = Trips_limit.Ideal
module Ooo = Trips_superscalar.Ooo

let fft = Registry.find "fft"
let a2time = Registry.find "a2time"

let test_cycle_sim_correct_result () =
  List.iter
    (fun name ->
      let b = Registry.find name in
      let golden, _ = Registry.golden b in
      let r = Platforms.trips Platforms.C b in
      Alcotest.(check bool) (name ^ " result matches golden") true (r.Core.ret = golden))
    [ "fft"; "a2time"; "vadd"; "mcf" ]

let test_cycle_sim_deterministic () =
  let prog = Platforms.edge_program Platforms.C fft in
  let run () =
    let image = Image.build fft.Registry.program.Ast.globals in
    (Core.run prog image ~entry:"main" ~args:[]).Core.timing.Core.cycles
  in
  Alcotest.(check int) "same cycles twice" (run ()) (run ())

let test_cycles_exceed_ideal_bound () =
  (* a 16-wide machine cannot beat (executed / 16) cycles *)
  let r = Platforms.trips Platforms.C fft in
  Alcotest.(check bool) "IPC <= 16" true (Core.ipc r <= 16.0);
  Alcotest.(check bool) "cycles positive" true (r.Core.timing.Core.cycles > 0)

let test_ideal_at_least_hardware () =
  List.iter
    (fun name ->
      let b = Registry.find name in
      let hw = Core.ipc (Platforms.trips Platforms.C b) in
      let ideal = Ideal.ipc (Platforms.ideal Ideal.trips_window ~tag:"1k" Platforms.C b) in
      Alcotest.(check bool)
        (Printf.sprintf "%s ideal (%.2f) >= hardware (%.2f)" name ideal hw)
        true (ideal >= hw))
    [ "fft"; "conv"; "autocor" ]

let test_ideal_orderings () =
  (* removing dispatch cost can only help; growing the window can only help *)
  let b = Registry.find "conv" in
  let i1 = Ideal.ipc (Platforms.ideal Ideal.trips_window ~tag:"1k" Platforms.C b) in
  let i0 = Ideal.ipc (Platforms.ideal Ideal.zero_dispatch ~tag:"0d" Platforms.C b) in
  let ih = Ideal.ipc (Platforms.ideal Ideal.huge_window ~tag:"128k" Platforms.C b) in
  Alcotest.(check bool) (Printf.sprintf "0-dispatch (%.1f) >= 1K (%.1f)" i0 i1) true (i0 >= i1);
  Alcotest.(check bool) (Printf.sprintf "128K (%.1f) >= 0-dispatch (%.1f)" ih i0) true
    (ih >= i0)

let test_window_ablation () =
  (* shrinking the block window must not make the prototype faster *)
  let prog = Platforms.edge_program Platforms.C fft in
  let cycles window_blocks =
    let image = Image.build fft.Registry.program.Ast.globals in
    let config = { Core.prototype with Core.window_blocks } in
    (Core.run ~config prog image ~entry:"main" ~args:[]).Core.timing.Core.cycles
  in
  let c8 = cycles 8 and c2 = cycles 2 and c1 = cycles 1 in
  Alcotest.(check bool) (Printf.sprintf "2 blocks (%d) >= 8 blocks (%d)" c2 c8) true (c2 >= c8);
  Alcotest.(check bool) (Printf.sprintf "1 block (%d) >= 2 blocks (%d)" c1 c2) true (c1 >= c2)

let test_predictor_ablation () =
  (* a tiny next-block predictor must not beat the prototype's *)
  let prog = Platforms.edge_program Platforms.C a2time in
  let cycles predictor =
    let image = Image.build a2time.Registry.program.Ast.globals in
    let config = { Core.prototype with Core.predictor } in
    (Core.run ~config prog image ~entry:"main" ~args:[]).Core.timing.Core.cycles
  in
  let tiny =
    { Trips_predictor.Blockpred.exit_entries = 16; exit_hist_bits = 3;
      target = { Trips_predictor.Target.btb_entries = 16; ctb_entries = 4; ras_depth = 2 } }
  in
  let proto = cycles Core.prototype.Core.predictor in
  let small = cycles tiny in
  Alcotest.(check bool) (Printf.sprintf "tiny predictor (%d) >= prototype (%d)" small proto)
    true (small >= proto)

let test_superscalar_correct_and_ordered () =
  let b = Registry.find "autocor" in
  let golden, _ = Registry.golden b in
  let c2 = Platforms.super Ooo.core2 ~icc:false b in
  let p3 = Platforms.super Ooo.pentium3 ~icc:false b in
  (match (golden, b.Registry.ret) with
  | Some (Ty.Vi g), Some Ty.I64 ->
    Alcotest.(check int64) "core2 result" g c2.Ooo.ret_int
  | _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "P3 (%d) slower than Core2 (%d)" p3.Ooo.stats.Ooo.cycles
       c2.Ooo.stats.Ooo.cycles)
    true
    (p3.Ooo.stats.Ooo.cycles >= c2.Ooo.stats.Ooo.cycles)

let test_icc_not_slower () =
  let b = Registry.find "conv" in
  let gcc = Platforms.super Ooo.core2 ~icc:false b in
  let icc = Platforms.super Ooo.core2 ~icc:true b in
  Alcotest.(check bool)
    (Printf.sprintf "icc (%d) <= gcc (%d) * 1.1" icc.Ooo.stats.Ooo.cycles
       gcc.Ooo.stats.Ooo.cycles)
    true
    (float_of_int icc.Ooo.stats.Ooo.cycles
    <= 1.1 *. float_of_int gcc.Ooo.stats.Ooo.cycles)

let test_opn_occupancy_exact () =
  (* two messages on the same link in the same cycle: second waits 1 *)
  let opn = Trips_noc.Opn.create () in
  let t1 = Trips_noc.Opn.send opn ~src:(1, 1) ~dst:(1, 2) Trips_noc.Opn.Et_et ~now:10 in
  let t2 = Trips_noc.Opn.send opn ~src:(1, 1) ~dst:(1, 2) Trips_noc.Opn.Et_et ~now:10 in
  Alcotest.(check int) "first arrives next cycle" 11 t1;
  Alcotest.(check int) "second waits for the link" 12 t2;
  (* a message in a different cycle does not wait *)
  let t3 = Trips_noc.Opn.send opn ~src:(1, 1) ~dst:(1, 2) Trips_noc.Opn.Et_et ~now:20 in
  Alcotest.(check int) "disjoint time, no wait" 21 t3

let test_cache_hierarchy_sanity () =
  let h =
    Trips_mem.Hier.create ~l1:Trips_mem.Cache.trips_l1d
      ~l2:(Some Trips_mem.Cache.trips_l2) ~dram:Trips_mem.Hier.trips_dram
  in
  let miss_lat, hit1 = Trips_mem.Hier.access h ~addr:0x4000 ~write:false ~now:0 in
  let hit_lat, hit2 = Trips_mem.Hier.access h ~addr:0x4000 ~write:false ~now:100 in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second hits" true hit2;
  Alcotest.(check bool) "miss slower than hit" true (miss_lat > hit_lat)

let () =
  Alcotest.run "timing"
    [
      ( "trips-sim",
        [
          Alcotest.test_case "correct results" `Quick test_cycle_sim_correct_result;
          Alcotest.test_case "deterministic" `Quick test_cycle_sim_deterministic;
          Alcotest.test_case "IPC bound" `Quick test_cycles_exceed_ideal_bound;
          Alcotest.test_case "window ablation" `Quick test_window_ablation;
          Alcotest.test_case "predictor ablation" `Quick test_predictor_ablation;
        ] );
      ( "limit",
        [
          Alcotest.test_case "ideal >= hardware" `Quick test_ideal_at_least_hardware;
          Alcotest.test_case "config orderings" `Quick test_ideal_orderings;
        ] );
      ( "superscalar",
        [
          Alcotest.test_case "correct + platform order" `Quick test_superscalar_correct_and_ordered;
          Alcotest.test_case "icc preset" `Quick test_icc_not_slower;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "opn per-cycle links" `Quick test_opn_occupancy_exact;
          Alcotest.test_case "cache hierarchy" `Quick test_cache_hierarchy_sanity;
        ] );
    ]
