lib/noc/opn.ml: Array List
