lib/noc/opn.mli:
