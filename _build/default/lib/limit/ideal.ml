module Ty = Trips_tir.Ty
module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Exec = Trips_edge.Exec

type config = {
  window_insts : int;
  dispatch_cost : int;
  load_latency : int;
}

let trips_window = { window_insts = 1024; dispatch_cost = 8; load_latency = 2 }
let zero_dispatch = { window_insts = 1024; dispatch_cost = 0; load_latency = 2 }
let huge_window = { window_insts = 131072; dispatch_cost = 0; load_latency = 2 }

type result = {
  ret : Ty.value option;
  cycles : int;
  executed : int;
}

let run ?(config = trips_window) ?fuel (program : Block.program) image ~entry ~args =
  let window_blocks = max 1 (config.window_insts / Isa.max_insts) in
  let reg_ready = Array.make Isa.num_regs 0 in
  let completion_ring = Array.make window_blocks 0 in
  let seq = ref 0 in
  let next_start = ref 0 in
  let final = ref 0 in
  let executed = ref 0 in
  let on_instance (inst : Exec.instance) =
    let b = inst.Exec.iblock in
    let n = Array.length b.Block.insts in
    let fired = inst.Exec.fired in
    let start =
      let w =
        if !seq >= window_blocks then completion_ring.(!seq mod window_blocks) else 0
      in
      max !next_start w
    in
    next_start := start + config.dispatch_cost;
    (* dataflow: no contention, no routing; operands arrive the cycle the
       producer completes *)
    let ready = Array.make n [] in
    let needed = Array.make n 0 in
    let complete = Array.make n (-1) in
    let q = Queue.create () in
    Array.iteri
      (fun i ins ->
        if fired.(i) then begin
          needed.(i) <-
            Isa.operand_arity ins
            + (match ins.Isa.pred with Isa.Unpred -> 0 | _ -> 1);
          if needed.(i) = 0 then Queue.push i q
        end)
      b.Block.insts;
    let writes = ref [] in
    let arrive j t =
      if fired.(j) then begin
        ready.(j) <- t :: ready.(j);
        if List.length ready.(j) = needed.(j) then Queue.push j q
      end
    in
    Array.iter
      (fun (r : Block.read) ->
        let avail = max start reg_ready.(r.Block.rreg) in
        List.iter
          (function
            | Isa.To_inst (j, _) -> arrive j avail
            | Isa.To_write w -> writes := (b.Block.writes.(w).Block.wreg, avail) :: !writes)
          r.Block.rtargets)
      b.Block.reads;
    let block_done = ref start in
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      if complete.(i) < 0 then begin
        incr executed;
        let ins = b.Block.insts.(i) in
        let ready_t = List.fold_left max start ready.(i) in
        let lat =
          match ins.Isa.op with
          | Isa.Load _ -> config.load_latency
          | op -> Isa.latency op
        in
        let done_t = ready_t + lat in
        complete.(i) <- done_t;
        if done_t > !block_done then block_done := done_t;
        List.iter
          (function
            | Isa.To_inst (j, _) -> arrive j done_t
            | Isa.To_write w ->
              writes := (b.Block.writes.(w).Block.wreg, done_t) :: !writes)
          ins.Isa.targets
      end
    done;
    List.iter (fun (reg, t) -> reg_ready.(reg) <- t) !writes;
    completion_ring.(!seq mod window_blocks) <- !block_done;
    incr seq;
    if !block_done > !final then final := !block_done
  in
  let r = Exec.run ?fuel ~on_instance program image ~entry ~args in
  { ret = r.Exec.ret; cycles = max 1 !final; executed = !executed }

let ipc r = float_of_int r.executed /. float_of_int (max 1 r.cycles)
