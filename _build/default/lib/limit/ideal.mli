(** Idealized EDGE machine for the ILP limit study (§5.3, Fig 10).

    Perfect next-block prediction, perfect caches (fixed short load
    latency), infinite execution resources, and zero inter-tile delay; the
    only constraints are true dataflow dependences, the instruction window
    size, and an optional per-block dispatch cost (the paper uses a new
    block at most every eight cycles, and also reports the zero-cost
    variant and a 128K-instruction window). *)

type config = {
  window_insts : int;           (* 1024 in Fig 10; 128K for the annotations *)
  dispatch_cost : int;          (* cycles between block starts: 8 or 0 *)
  load_latency : int;           (* perfect-cache load-to-use, 2 cycles *)
}

val trips_window : config       (* 1K window, 8-cycle dispatch *)
val zero_dispatch : config      (* 1K window, free dispatch *)
val huge_window : config        (* 128K window, free dispatch *)

type result = {
  ret : Trips_tir.Ty.value option;
  cycles : int;
  executed : int;
}

val run :
  ?config:config ->
  ?fuel:int ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result

val ipc : result -> float
