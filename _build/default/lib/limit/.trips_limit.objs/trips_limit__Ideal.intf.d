lib/limit/ideal.mli: Trips_edge Trips_tir
