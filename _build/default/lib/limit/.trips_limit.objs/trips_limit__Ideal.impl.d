lib/limit/ideal.ml: Array List Queue Trips_edge Trips_tir
