lib/sim/core.ml: Array Hashtbl List Option Trips_compiler Trips_edge Trips_mem Trips_noc Trips_predictor Trips_tir
