lib/sim/core.mli: Trips_edge Trips_mem Trips_noc Trips_predictor Trips_tir
