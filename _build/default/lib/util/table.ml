type align = Left | Right

type line = Row of string list | Sep

type t = {
  title : string option;
  header : string list;
  aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ?title columns =
  {
    title;
    header = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    lines = [];
  }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong arity";
  t.lines <- Row row :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.lines in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.header;
  List.iter (function Row r -> measure r | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let sep_line () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        if i < ncols - 1 then Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_char buf ' ';
        if i < ncols - 1 then Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  emit t.header;
  sep_line ();
  List.iter (function Row r -> emit r | Sep -> sep_line ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let fnum x =
  let ax = Float.abs x in
  if ax < 100. then Printf.sprintf "%.2f" x
  else if ax < 1000. then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.0f" x

let fpct x = Printf.sprintf "%.1f%%" x
