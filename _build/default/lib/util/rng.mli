(** Deterministic pseudo-random number generation.

    All synthetic workload inputs in the reproduction are derived from this
    splitmix64 generator so that every experiment is bit-reproducible across
    runs and machines.  The interface is deliberately tiny: a seeded state and
    a handful of draw functions. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)].  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
