lib/util/rng.mli:
