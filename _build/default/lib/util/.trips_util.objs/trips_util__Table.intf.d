lib/util/table.mli:
