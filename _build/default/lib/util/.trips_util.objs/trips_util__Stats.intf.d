lib/util/stats.mli:
