type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: fast, full-period, well distributed; sufficient for workload
   synthesis (we never need cryptographic strength). *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
