(** Aligned plain-text tables.

    Every experiment in the harness renders its rows through this module so
    the bench output has a single, diffable format.  Columns are sized to
    their widest cell; numeric cells are right-aligned, text left-aligned. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a row; the row length must match the header. *)

val add_sep : t -> unit
(** Append a horizontal separator before the next row. *)

val render : t -> string
(** The finished table as a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val fnum : float -> string
(** Compact fixed-point formatting used across experiment tables:
    two decimals under 100, one decimal under 1000, integral above. *)

val fpct : float -> string
(** Percentage with one decimal and a ["%"] suffix. *)
