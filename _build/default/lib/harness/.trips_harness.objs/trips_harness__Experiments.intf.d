lib/harness/experiments.mli: Trips_util
