lib/harness/isa_figs.ml: Array Hashtbl List Platforms Trips_edge Trips_risc Trips_tir Trips_util Trips_workloads
