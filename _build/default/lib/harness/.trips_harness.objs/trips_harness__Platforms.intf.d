lib/harness/platforms.mli: Trips_edge Trips_limit Trips_risc Trips_sim Trips_superscalar Trips_workloads
