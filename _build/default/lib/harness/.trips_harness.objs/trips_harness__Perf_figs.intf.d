lib/harness/perf_figs.mli: Trips_util
