lib/harness/platforms.ml: Hashtbl Obj Printf Trips_compiler Trips_edge Trips_limit Trips_risc Trips_sim Trips_superscalar Trips_tir Trips_workloads
