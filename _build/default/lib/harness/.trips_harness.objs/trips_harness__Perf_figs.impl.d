lib/harness/perf_figs.ml: List Platforms Printf Trips_edge Trips_limit Trips_mem Trips_sim Trips_superscalar Trips_util Trips_workloads
