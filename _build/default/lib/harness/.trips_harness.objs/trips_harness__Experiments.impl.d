lib/harness/experiments.ml: Isa_figs List Micro_figs Perf_figs Trips_util
