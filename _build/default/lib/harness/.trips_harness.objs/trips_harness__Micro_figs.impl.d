lib/harness/micro_figs.ml: Array Hashtbl List Option Platforms Trips_compiler Trips_edge Trips_noc Trips_predictor Trips_sim Trips_tir Trips_util Trips_workloads
