lib/harness/micro_figs.mli: Trips_util
