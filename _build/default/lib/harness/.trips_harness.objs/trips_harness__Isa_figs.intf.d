lib/harness/isa_figs.mli: Trips_util
