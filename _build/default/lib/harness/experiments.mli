(** Registry of every reproduced table and figure.

    [all] enumerates the experiments in paper order; [run] executes one by
    id and returns the rendered table.  `bench/main.exe` iterates this
    registry and `bin/trips_run.exe exp <id>` runs one interactively. *)

type experiment = {
  id : string;               (* e.g. "fig3", "table1" *)
  title : string;
  paper_claim : string;      (* the qualitative shape the paper reports *)
  run : unit -> Trips_util.Table.t;
}

val all : experiment list
val find : string -> experiment
(** @raise Not_found for unknown ids. *)
