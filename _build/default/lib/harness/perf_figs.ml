module Registry = Trips_workloads.Registry
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Ooo = Trips_superscalar.Ooo
module Ideal = Trips_limit.Ideal
module Cache = Trips_mem.Cache
module Stats = Trips_util.Stats
module Table = Trips_util.Table

let fnum = Table.fnum

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: reference platforms (modeled configurations)"
      [
        ("system", Table.Left); ("width", Table.Right); ("window", Table.Right);
        ("mispredict", Table.Right); ("L1D", Table.Left); ("L2", Table.Left);
        ("DRAM latency", Table.Right);
      ]
  in
  Table.add_row t
    [ "TRIPS"; "16"; "1024"; "8+resolve"; "32 KB / 4 banks"; "1 MB NUCA";
      string_of_int Trips_mem.Hier.trips_dram.Trips_mem.Hier.dram_latency ];
  List.iter
    (fun (cfg : Ooo.config) ->
      Table.add_row t
        [ cfg.Ooo.name; string_of_int cfg.Ooo.width; string_of_int cfg.Ooo.rob;
          string_of_int cfg.Ooo.mispredict_penalty;
          Printf.sprintf "%d KB" cfg.Ooo.l1d.Cache.size_kb;
          (match cfg.Ooo.l2 with
          | Some l2 -> Printf.sprintf "%d KB" l2.Cache.size_kb
          | None -> "-");
          string_of_int cfg.Ooo.dram.Trips_mem.Hier.dram_latency ])
    [ Ooo.core2; Ooo.pentium4; Ooo.pentium3 ];
  t

(* ------------------------------------------------------------------ *)
(* Fig 9: IPC                                                          *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  let t =
    Table.create ~title:"Figure 9: sustained TRIPS IPC (executed instructions per cycle)"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("IPC", Table.Right);
        ("useful IPC", Table.Right);
      ]
  in
  let row name tag r =
    Table.add_row t [ name; tag; fnum (Core.ipc r); fnum (Core.useful_ipc r) ]
  in
  List.iter
    (fun b ->
      row b.Registry.name "C" (Platforms.trips Platforms.C b);
      row b.Registry.name "H" (Platforms.trips Platforms.H b))
    Registry.simple_suite;
  Table.add_sep t;
  List.iter
    (fun b -> row b.Registry.name "C" (Platforms.trips Platforms.C b))
    (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  Table.add_sep t;
  let mean benches q = Stats.mean (List.map (fun b -> Core.ipc (Platforms.trips q b)) benches) in
  Table.add_row t [ "Simple mean"; "C"; fnum (mean Registry.simple_suite Platforms.C); "-" ];
  Table.add_row t [ "Simple mean"; "H"; fnum (mean Registry.simple_suite Platforms.H); "-" ];
  Table.add_row t
    [ "SPEC INT mean"; "C"; fnum (mean (Registry.by_suite Registry.SpecInt) Platforms.C); "-" ];
  Table.add_row t
    [ "SPEC FP mean"; "C"; fnum (mean (Registry.by_suite Registry.SpecFp) Platforms.C); "-" ];
  t

(* ------------------------------------------------------------------ *)
(* Fig 10: limit study                                                 *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  let t =
    Table.create
      ~title:"Figure 10: TRIPS vs ideal EDGE machine (IPC; ideal = perfect prediction/caches/routing)"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("hardware", Table.Right);
        ("ideal 1K", Table.Right); ("ideal 0-dispatch", Table.Right);
        ("ideal 128K", Table.Right);
      ]
  in
  let row name q b =
    let hw = Core.ipc (Platforms.trips q b) in
    let i1 = Ideal.ipc (Platforms.ideal Ideal.trips_window ~tag:"1k" q b) in
    let i0 = Ideal.ipc (Platforms.ideal Ideal.zero_dispatch ~tag:"0d" q b) in
    let ih = Ideal.ipc (Platforms.ideal Ideal.huge_window ~tag:"128k" q b) in
    Table.add_row t
      [ name; (match q with Platforms.C -> "C" | Platforms.H -> "H");
        fnum hw; fnum i1; fnum i0; fnum ih ]
  in
  List.iter
    (fun b ->
      row b.Registry.name Platforms.C b;
      row b.Registry.name Platforms.H b)
    Registry.simple_suite;
  Table.add_sep t;
  List.iter
    (fun b -> row b.Registry.name Platforms.C b)
    (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  t

(* ------------------------------------------------------------------ *)
(* Figs 11/12: speedups over the Core 2 (gcc) model                    *)
(* ------------------------------------------------------------------ *)

let speedup_columns b =
  let base = (Platforms.super Ooo.core2 ~icc:false b).Ooo.stats.Ooo.cycles in
  let s cyc = Stats.ratio base (max 1 cyc) in
  let trips_c = (Platforms.trips Platforms.C b).Core.timing.Core.cycles in
  let trips_h = (Platforms.trips Platforms.H b).Core.timing.Core.cycles in
  let c2icc = (Platforms.super Ooo.core2 ~icc:true b).Ooo.stats.Ooo.cycles in
  let p4 = (Platforms.super Ooo.pentium4 ~icc:false b).Ooo.stats.Ooo.cycles in
  let p3 = (Platforms.super Ooo.pentium3 ~icc:false b).Ooo.stats.Ooo.cycles in
  (s p3, s p4, s c2icc, s trips_c, s trips_h)

let speedup_table title benches ~with_hand =
  let t =
    Table.create ~title
      [
        ("benchmark", Table.Left); ("P3-gcc", Table.Right); ("P4-gcc", Table.Right);
        ("Core2-icc", Table.Right); ("TRIPS-C", Table.Right); ("TRIPS-H", Table.Right);
      ]
  in
  let rows = ref [] in
  List.iter
    (fun b ->
      let p3, p4, icc, tc, th = speedup_columns b in
      rows := (p3, p4, icc, tc, th) :: !rows;
      Table.add_row t
        [ b.Registry.name; fnum p3; fnum p4; fnum icc; fnum tc;
          (if with_hand then fnum th else "-") ])
    benches;
  Table.add_sep t;
  let geo f = Stats.geomean (List.map (fun r -> max 1e-9 (f r)) !rows) in
  Table.add_row t
    [ "geomean";
      fnum (geo (fun (a, _, _, _, _) -> a));
      fnum (geo (fun (_, a, _, _, _) -> a));
      fnum (geo (fun (_, _, a, _, _) -> a));
      fnum (geo (fun (_, _, _, a, _) -> a));
      (if with_hand then fnum (geo (fun (_, _, _, _, a) -> a)) else "-") ];
  t

let fig11 () =
  speedup_table
    "Figure 11: simple-benchmark speedup over the Core 2 (gcc) model (cycles)"
    Registry.simple_suite ~with_hand:true

let fig12 () =
  let t =
    speedup_table "Figure 12: SPEC speedup over the Core 2 (gcc) model (cycles)"
      (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp)
      ~with_hand:false
  in
  (* the paper also reports the EEMBC geomean on this figure *)
  let eembc = Registry.by_suite Registry.Eembc in
  let tc =
    Stats.geomean
      (List.map
         (fun b ->
           let _, _, _, c, _ = speedup_columns b in
           max 1e-9 c)
         eembc)
  in
  Table.add_row t [ "EEMBC geomean (TRIPS-C)"; "-"; "-"; "-"; fnum tc; "-" ];
  t

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  let t =
    Table.create
      ~title:"Table 3: SPEC events per 1000 useful TRIPS instructions (and window occupancy)"
      [
        ("benchmark", Table.Left);
        ("C2 br miss", Table.Right); ("TRIPS br miss", Table.Right);
        ("call/ret miss", Table.Right); ("C2 I$ miss", Table.Right);
        ("TRIPS I$ miss", Table.Right); ("load flush", Table.Right);
        ("blk sz x8", Table.Right); ("useful in flight", Table.Right);
      ]
  in
  List.iter
    (fun b ->
      let r = Platforms.trips Platforms.C b in
      let useful = max 1 r.Core.exec.Exec.useful in
      let per1000 x = 1000. *. Stats.ratio x useful in
      let c2 = (Platforms.super Ooo.core2 ~icc:false b).Ooo.stats in
      let avg_block = Stats.ratio r.Core.exec.Exec.fetched r.Core.exec.Exec.blocks in
      Table.add_row t
        [ b.Registry.name;
          fnum (per1000 c2.Ooo.branch_mispredicts);
          fnum (per1000 r.Core.timing.Core.branch_mispredicts);
          fnum (per1000 r.Core.timing.Core.callret_mispredicts);
          fnum (per1000 c2.Ooo.icache_misses);
          fnum (per1000 r.Core.timing.Core.icache_misses);
          fnum (per1000 r.Core.timing.Core.load_flushes);
          fnum (avg_block *. 8.);
          fnum (Core.avg_window_useful r) ])
    (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  t

(* ------------------------------------------------------------------ *)
(* §6: FLOPS per cycle on matrix multiply                              *)
(* ------------------------------------------------------------------ *)

let flops () =
  let t =
    Table.create ~title:"Section 6: matrix multiply FLOPS per cycle (hand-optimized)"
      [ ("system", Table.Left); ("flops", Table.Right); ("cycles", Table.Right);
        ("FPC", Table.Right) ]
  in
  let b = Registry.find "matrix" in
  let r = Platforms.trips Platforms.H b in
  Table.add_row t
    [ "TRIPS (hand)"; string_of_int r.Core.exec.Exec.flops;
      string_of_int r.Core.timing.Core.cycles;
      fnum (Stats.ratio r.Core.exec.Exec.flops r.Core.timing.Core.cycles) ];
  List.iter
    (fun (cfg : Ooo.config) ->
      let s = (Platforms.super cfg ~icc:true b).Ooo.stats in
      Table.add_row t
        [ cfg.Ooo.name ^ " (icc)"; string_of_int s.Ooo.flops; string_of_int s.Ooo.cycles;
          fnum (Stats.ratio s.Ooo.flops s.Ooo.cycles) ])
    [ Ooo.core2; Ooo.pentium4; Ooo.pentium3 ];
  t
