type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> Trips_util.Table.t;
}

let all =
  [
    { id = "table1"; title = "Reference platforms";
      paper_claim = "Four platforms; the Core 2 is under-clocked to match the TRIPS memory ratio";
      run = Perf_figs.table1 };
    { id = "fig3"; title = "TRIPS block size and composition";
      paper_claim =
        "Compiled blocks average tens of instructions (paper: ~64 mean, 20-128 range); \
         moves ~20%; heavy predication benchmarks carry many mispredicated instructions";
      run = Isa_figs.fig3 };
    { id = "fig4"; title = "Fetched instructions vs PowerPC";
      paper_claim =
        "Useful instruction counts comparable to the RISC; total fetched 2-6x due to \
         predication, moves and speculation";
      run = Isa_figs.fig4 };
    { id = "fig5"; title = "Storage accesses vs PowerPC";
      paper_claim =
        "About half the memory accesses of the RISC (as few as 15%); register accesses \
         10-20%; direct operand traffic replaces the rest";
      run = Isa_figs.fig5 };
    { id = "codesize"; title = "Dynamic code size (4.4)";
      paper_claim = "~6x PowerPC raw, ~4x with block compression";
      run = Isa_figs.codesize };
    { id = "fig6"; title = "Instructions in flight";
      paper_claim =
        "Compiled code averages ~450 instructions in the window, hand-optimized ~630 \
         (peaks near 900/1000); far above conventional 64-80 entry windows";
      run = Micro_figs.fig6 };
    { id = "fig7"; title = "Next-block prediction breakdown";
      paper_claim =
        "The block predictor makes far fewer predictions than a per-branch predictor \
         (~70% fewer on SPEC INT); hyperblocks cut MPKI (paper: 14.9/14.8/8.5/6.9 INT, \
         0.9/1.3/1.1/0.8 FP for A/B/H/I)";
      run = Micro_figs.fig7 };
    { id = "fig8"; title = "Memory bandwidth (hand vadd)";
      paper_claim =
        "Hand-placed vadd approaches the four-bank L1 peak (paper: 96.5% of 10.9 GB/s) \
         and most of the L2 bandwidth";
      run = Micro_figs.fig8 };
    { id = "fig8opn"; title = "OPN traffic profile";
      paper_claim =
        "ET-ET traffic dominates; roughly half of operands bypass locally (0 hops); \
         average ~0.9-1.9 hops; vadd skews to ET-DT, matrix to ET-RT";
      run = Micro_figs.fig8_opn };
    { id = "fig9"; title = "Sustained IPC";
      paper_claim =
        "Parallel kernels reach 6-10 IPC, serial ones (routelookup, rspeed) stay low; \
         hand code ~50% higher IPC than compiled; SPEC lower than simple benchmarks";
      run = Perf_figs.fig9 };
    { id = "fig10"; title = "Ideal EDGE machine limit study";
      paper_claim =
        "The 1K-window ideal machine outperforms the hardware by ~2.5x; removing \
         dispatch cost adds ~5x on the ideal machine; a 128K window exposes 50+ IPC \
         on many SPEC codes";
      run = Perf_figs.fig10 };
    { id = "fig11"; title = "Simple benchmark speedups vs Core 2";
      paper_claim =
        "TRIPS compiled ~1.5x the Core 2-gcc model on average; hand-optimized ~3x and \
         always faster; sequential codes (rspeed, routelookup) show the least gain";
      run = Perf_figs.fig11 };
    { id = "fig12"; title = "SPEC speedups vs Core 2";
      paper_claim =
        "TRIPS compiled SPEC INT is roughly half the Core 2 model; SPEC FP is \
         comparable to Core 2-gcc; the Core 2 beats the P3/P4 models";
      run = Perf_figs.fig12 };
    { id = "table3"; title = "SPEC performance-counter events";
      paper_claim =
        "Call/return mispredictions and I-cache misses hurt crafty/perlbmk/vortex-like \
         codes; load flushes are rare (<1 per 1000); regular FP codes keep hundreds of \
         useful instructions in flight";
      run = Perf_figs.table3 };
    { id = "flops"; title = "Matrix-multiply FLOPS per cycle";
      paper_claim = "TRIPS sustains more FPC than the best Core 2 figure (paper: 5.20 vs 3.58)";
      run = Perf_figs.flops };
  ]

let find id = List.find (fun e -> e.id = id) all
