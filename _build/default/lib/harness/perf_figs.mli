(** Performance experiments of §5.3 and §6.

    - {!table1}: reference platform configurations (Table 1);
    - {!fig9}: sustained IPC for compiled and hand-optimized code (Fig 9);
    - {!fig10}: TRIPS vs the ideal EDGE machine (1K window / zero dispatch /
      128K window) (Fig 10);
    - {!fig11}: simple-benchmark speedups over the Core 2-gcc model
      (Fig 11);
    - {!fig12}: SPEC speedups over the Core 2-gcc model (Fig 12);
    - {!table3}: SPEC event counters per 1000 useful instructions
      (Table 3);
    - {!flops}: matrix-multiply FLOPS-per-cycle comparison (§6). *)

val table1 : unit -> Trips_util.Table.t
val fig9 : unit -> Trips_util.Table.t
val fig10 : unit -> Trips_util.Table.t
val fig11 : unit -> Trips_util.Table.t
val fig12 : unit -> Trips_util.Table.t
val table3 : unit -> Trips_util.Table.t
val flops : unit -> Trips_util.Table.t
