(** Store-load dependence predictor: the partitioned load-wait table the
    data tiles use (§5.1).  A load that once issued past a conflicting
    earlier store has its entry set and afterwards waits for all earlier
    stores; the table is cleared periodically so stale entries do not
    serialize forever. *)

type t

val create : ?entries:int -> ?decay_interval:int -> unit -> t
(** Defaults: 1024 entries, decay every 100k accesses. *)

val should_wait : t -> load_id:int -> bool
val record_violation : t -> load_id:int -> unit
