type config = {
  local_entries : int;
  local_hist_bits : int;
  global_hist_bits : int;
}

let alpha_like = { local_entries = 1024; local_hist_bits = 10; global_hist_bits = 12 }

type t = {
  cfg : config;
  local_hist : int array;       (* per-branch history *)
  local_ctr : int array;        (* 3-bit counters indexed by local history *)
  global_ctr : int array;       (* 2-bit counters indexed by global history *)
  choice : int array;           (* 2-bit: 0..1 trust global, 2..3 trust local *)
  mutable ghist : int;
}

let create cfg =
  {
    cfg;
    local_hist = Array.make cfg.local_entries 0;
    local_ctr = Array.make (1 lsl cfg.local_hist_bits) 3;
    global_ctr = Array.make (1 lsl cfg.global_hist_bits) 1;
    choice = Array.make (1 lsl cfg.global_hist_bits) 1;
    ghist = 0;
  }

let lmask cfg = cfg.local_entries - 1
let gmask cfg = (1 lsl cfg.global_hist_bits) - 1

let components t ~pc =
  let li = pc land lmask t.cfg in
  let lh = t.local_hist.(li) land ((1 lsl t.cfg.local_hist_bits) - 1) in
  let gi = t.ghist land gmask t.cfg in
  (li, lh, gi)

let predict t ~pc =
  let _, lh, gi = components t ~pc in
  let local_taken = t.local_ctr.(lh) >= 4 in
  let global_taken = t.global_ctr.(gi) >= 2 in
  if t.choice.(gi) >= 2 then local_taken else global_taken

let bump arr i ~max ~up =
  if up then (if arr.(i) < max then arr.(i) <- arr.(i) + 1)
  else if arr.(i) > 0 then arr.(i) <- arr.(i) - 1

let update t ~pc ~taken =
  let li, lh, gi = components t ~pc in
  let local_taken = t.local_ctr.(lh) >= 4 in
  let global_taken = t.global_ctr.(gi) >= 2 in
  (* train the chooser toward whichever component was right *)
  if local_taken <> global_taken then
    bump t.choice gi ~max:3 ~up:(local_taken = taken);
  bump t.local_ctr lh ~max:7 ~up:taken;
  bump t.global_ctr gi ~max:3 ~up:taken;
  t.local_hist.(li) <- ((t.local_hist.(li) lsl 1) lor Bool.to_int taken)
                       land ((1 lsl t.cfg.local_hist_bits) - 1);
  t.ghist <- ((t.ghist lsl 1) lor Bool.to_int taken) land gmask t.cfg

let storage_bits cfg =
  (cfg.local_entries * cfg.local_hist_bits)
  + (3 * (1 lsl cfg.local_hist_bits))
  + (2 * (1 lsl cfg.global_hist_bits))
  + (2 * (1 lsl cfg.global_hist_bits))
