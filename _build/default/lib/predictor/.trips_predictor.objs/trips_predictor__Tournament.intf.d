lib/predictor/tournament.mli:
