lib/predictor/depend.mli:
