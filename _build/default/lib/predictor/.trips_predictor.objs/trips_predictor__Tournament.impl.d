lib/predictor/tournament.ml: Array Bool
