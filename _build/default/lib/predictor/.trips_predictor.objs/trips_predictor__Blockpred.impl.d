lib/predictor/blockpred.ml: Array Target
