lib/predictor/depend.ml: Array
