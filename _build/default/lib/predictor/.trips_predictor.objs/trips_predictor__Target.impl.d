lib/predictor/target.ml: Array Option
