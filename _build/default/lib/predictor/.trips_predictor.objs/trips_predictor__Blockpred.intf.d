lib/predictor/blockpred.mli: Target
