lib/predictor/target.mli:
