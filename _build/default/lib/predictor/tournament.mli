(** Alpha 21264-style tournament direction predictor.

    A local component (per-branch history indexing a table of 3-bit
    counters), a global component (path history indexing 2-bit counters) and
    a chooser that learns, per global history, which component to trust —
    the configuration the paper uses as its conventional baseline in Fig 7
    (config A) and inside the superscalar reference models. *)

type config = {
  local_entries : int;        (* local history table entries (power of 2) *)
  local_hist_bits : int;
  global_hist_bits : int;     (* also sizes the global and choice tables *)
}

val alpha_like : config
(** 1K local histories of 10 bits, 4K-entry global and choice tables. *)

type t

val create : config -> t
val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
(** Call after {!predict} for the same branch, in program order. *)

val storage_bits : config -> int
(** Total predictor state, for the paper's size comparisons. *)
