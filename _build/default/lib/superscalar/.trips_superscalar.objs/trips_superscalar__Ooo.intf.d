lib/superscalar/ooo.mli: Trips_mem Trips_predictor Trips_risc Trips_tir
