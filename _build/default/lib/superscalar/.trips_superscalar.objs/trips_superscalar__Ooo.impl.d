lib/superscalar/ooo.ml: Array List Trips_mem Trips_predictor Trips_risc Trips_tir
