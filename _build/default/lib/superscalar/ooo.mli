(** Parameterized out-of-order superscalar model — the reference platforms.

    A trace-driven dataflow timing model over the RISC retirement stream:
    fetch is [width]-wide and redirected on mispredictions (tournament +
    BTB/RAS), issue waits for source operands and load latency comes from
    the modeled cache hierarchy, the reorder buffer bounds instructions in
    flight, and commit is in-order and [width]-wide.  The three presets are
    calibrated to Table 1's platforms (issue width, window, pipeline depth,
    cache sizes, processor/memory speed ratio); the paper compares cycle
    counts, which is what {!run} reports. *)

type config = {
  name : string;
  width : int;                 (* fetch/issue/commit width *)
  rob : int;                   (* instructions in flight *)
  frontend : int;              (* fetch-to-issue stages *)
  mispredict_penalty : int;
  predictor : Trips_predictor.Tournament.config;
  targets : Trips_predictor.Target.config;
  l1d : Trips_mem.Cache.config;
  l1i : Trips_mem.Cache.config;
  l2 : Trips_mem.Cache.config option;
  dram : Trips_mem.Hier.dram_config;
}

val core2 : config
(** 4-wide, 96-entry window, low memory ratio (under-clocked to 1.6 GHz as
    in the paper's methodology). *)

val pentium4 : config
(** 3-wide trace-cache machine: deep pipeline, high mispredict cost, high
    processor/memory ratio. *)

val pentium3 : config
(** 3-wide, small 40-entry window, small caches. *)

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable branch_mispredicts : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable flops : int;
}

type result = {
  ret_int : int64;
  ret_flt : float;
  stats : stats;
}

val run :
  config ->
  Trips_risc.Isa.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result

val ipc : result -> float
