module Ty = Trips_tir.Ty
module Ast = Trips_tir.Ast
module Risc = Trips_risc
module Tournament = Trips_predictor.Tournament
module Target = Trips_predictor.Target
module Cache = Trips_mem.Cache
module Hier = Trips_mem.Hier

type config = {
  name : string;
  width : int;
  rob : int;
  frontend : int;
  mispredict_penalty : int;
  predictor : Tournament.config;
  targets : Target.config;
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config option;
  dram : Hier.dram_config;
}

let cache name size_kb assoc hit_latency =
  { Cache.name; size_kb; assoc; line = 64; banks = 1; hit_latency; nuca_step = 0 }

(* Table 1: the Core 2 is under-clocked to match the TRIPS processor/memory
   speed ratio; the Pentium 4's high clock makes memory relatively far. *)
let core2 =
  {
    name = "Core 2";
    width = 4;
    rob = 96;
    frontend = 5;
    mispredict_penalty = 15;
    predictor = Tournament.alpha_like;
    targets = { Target.btb_entries = 2048; ctb_entries = 512; ras_depth = 16 };
    l1d = cache "C2.L1D" 32 8 3;
    l1i = cache "C2.L1I" 32 8 1;
    l2 = Some (cache "C2.L2" 2048 8 14);
    dram = { Hier.dram_latency = 130; bytes_per_cycle = 8.0 };
  }

let pentium4 =
  {
    name = "Pentium 4";
    width = 3;
    rob = 126;
    frontend = 10;
    mispredict_penalty = 30;
    predictor = Tournament.alpha_like;
    targets = { Target.btb_entries = 2048; ctb_entries = 256; ras_depth = 16 };
    l1d = cache "P4.L1D" 16 4 4;
    l1i = cache "P4.L1I" 16 4 1;     (* trace cache approximated *)
    l2 = Some (cache "P4.L2" 2048 8 24);
    dram = { Hier.dram_latency = 320; bytes_per_cycle = 4.0 };
  }

let pentium3 =
  {
    name = "Pentium III";
    width = 3;
    rob = 40;
    frontend = 4;
    mispredict_penalty = 11;
    predictor =
      { Tournament.local_entries = 512; local_hist_bits = 8; global_hist_bits = 10 };
    targets = { Target.btb_entries = 512; ctb_entries = 128; ras_depth = 8 };
    l1d = cache "P3.L1D" 16 4 3;
    l1i = cache "P3.L1I" 16 4 1;
    l2 = Some (cache "P3.L2" 512 8 10);
    dram = { Hier.dram_latency = 200; bytes_per_cycle = 3.0 };
  }

type stats = {
  mutable cycles : int;
  mutable instructions : int;
  mutable branch_mispredicts : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable flops : int;
}

type result = {
  ret_int : int64;
  ret_flt : float;
  stats : stats;
}

let op_latency (ins : Risc.Isa.ins) =
  match ins with
  | Risc.Isa.Op (op, _, _, _) | Risc.Isa.Opi (op, _, _, _) -> (
    match op with
    | Ast.Mul -> 3
    | Ast.Div | Ast.Rem -> 22
    | Ast.Fadd | Ast.Fsub -> 3
    | Ast.Fmul -> 5
    | Ast.Fdiv -> 20
    | _ -> 1)
  | Risc.Isa.Unop ((Ast.Itof | Ast.Ftoi), _, _) -> 4
  | _ -> 1

let run cfg (program : Risc.Isa.program) image ~entry ~args =
  let st =
    { cycles = 0; instructions = 0; branch_mispredicts = 0; icache_misses = 0;
      dcache_misses = 0; flops = 0 }
  in
  let bp = Tournament.create cfg.predictor in
  let tp = Target.create cfg.targets in
  let dhier = Hier.create ~l1:cfg.l1d ~l2:cfg.l2 ~dram:cfg.dram in
  let ihier = Hier.create ~l1:cfg.l1i ~l2:cfg.l2 ~dram:cfg.dram in
  (* dataflow state *)
  let reg_ready = Array.make 64 0 in
  let rob_commit = Array.make cfg.rob 0 in      (* ring of commit times *)
  let seq = ref 0 in
  let fetch_cycle = ref 0 in
  let fetch_in_cycle = ref 0 in
  let last_commit = ref 0 in
  let last_line = ref (-1) in
  let on_retire (r : Risc.Exec.retire) =
    st.instructions <- st.instructions + 1;
    if Risc.Exec.(match r.r_kind with Kplain -> false | _ -> false) then ();
    (* 1. fetch: [width] per cycle, stalling on I-cache misses *)
    if !fetch_in_cycle >= cfg.width then begin
      incr fetch_cycle;
      fetch_in_cycle := 0
    end;
    let line = r.r_pc * 4 / 64 in
    if line <> !last_line then begin
      last_line := line;
      let lat, hit = Hier.access ihier ~addr:(r.r_pc * 4) ~write:false ~now:!fetch_cycle in
      if not hit then begin
        st.icache_misses <- st.icache_misses + 1;
        fetch_cycle := !fetch_cycle + lat;
        fetch_in_cycle := 0
      end
    end;
    (* 2. window: cannot enter until the instruction [rob] back committed *)
    let slot = !seq mod cfg.rob in
    if !seq >= cfg.rob && rob_commit.(slot) > !fetch_cycle then begin
      fetch_cycle := rob_commit.(slot);
      fetch_in_cycle := 0
    end;
    let fetch = !fetch_cycle in
    incr fetch_in_cycle;
    (* 3. issue and complete *)
    let ready =
      List.fold_left (fun acc s -> max acc reg_ready.(s)) (fetch + cfg.frontend) r.r_srcs
    in
    let complete =
      match r.r_mem with
      | Some (addr, _w, is_load) ->
        let lat, hit = Hier.access dhier ~addr ~write:(not is_load) ~now:ready in
        if not hit then st.dcache_misses <- st.dcache_misses + 1;
        if is_load then ready + lat else ready + 1
      | None -> ready + op_latency r.r_ins
    in
    (match r.r_dst with Some d -> reg_ready.(d) <- complete | None -> ());
    (match r.r_ins with
    | Risc.Isa.Op ((Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv), _, _, _) ->
      st.flops <- st.flops + 1
    | _ -> ());
    (* 4. branches: predict and redirect *)
    (match (r.r_kind, r.r_branch) with
    | Risc.Exec.Kcond, Some (taken, target) ->
      let pred_dir = Tournament.predict bp ~pc:r.r_pc in
      let pred_tgt = Target.predict tp ~pc:r.r_pc Target.Jump in
      Tournament.update bp ~pc:r.r_pc ~taken;
      if taken then Target.update tp ~pc:r.r_pc Target.Jump ~target;
      let correct = pred_dir = taken && ((not taken) || pred_tgt = Some target) in
      if not correct then begin
        st.branch_mispredicts <- st.branch_mispredicts + 1;
        fetch_cycle := max !fetch_cycle (complete + cfg.mispredict_penalty);
        fetch_in_cycle := 0
      end
    | Risc.Exec.Kuncond, Some (_, target) ->
      (* taken-branch fetch bubble unless the BTB knows the target *)
      let pred_tgt = Target.predict tp ~pc:r.r_pc Target.Jump in
      Target.update tp ~pc:r.r_pc Target.Jump ~target;
      if pred_tgt <> Some target then begin
        fetch_cycle := !fetch_cycle + 1;
        fetch_in_cycle := 0
      end
    | Risc.Exec.Kcall, Some (_, target) ->
      let pred_tgt = Target.predict tp ~pc:r.r_pc Target.Call in
      Target.update tp ~pc:r.r_pc Target.Call ~target ~fallthrough:(r.r_pc + 1);
      if pred_tgt <> Some target then begin
        st.branch_mispredicts <- st.branch_mispredicts + 1;
        fetch_cycle := max !fetch_cycle (complete + cfg.mispredict_penalty);
        fetch_in_cycle := 0
      end
    | Risc.Exec.Kret, Some (_, target) ->
      let pred_tgt = Target.predict tp ~pc:r.r_pc Target.Ret in
      Target.update tp ~pc:r.r_pc Target.Ret ~target;
      if pred_tgt <> Some target then begin
        st.branch_mispredicts <- st.branch_mispredicts + 1;
        fetch_cycle := max !fetch_cycle (complete + cfg.mispredict_penalty);
        fetch_in_cycle := 0
      end
    | _ -> ());
    (* 5. in-order commit, [width] per cycle *)
    let commit =
      let w = if !seq >= cfg.width then rob_commit.((!seq - cfg.width) mod cfg.rob) + 1 else 0 in
      max (max complete !last_commit) w
    in
    last_commit := commit;
    rob_commit.(slot) <- commit;
    incr seq
  in
  let r = Risc.Exec.run program image ~entry ~args ~on_retire in
  st.cycles <- max 1 !last_commit;
  { ret_int = r.Risc.Exec.ret_int; ret_flt = r.Risc.Exec.ret_flt; stats = st }

let ipc r = float_of_int r.stats.instructions /. float_of_int (max 1 r.stats.cycles)
