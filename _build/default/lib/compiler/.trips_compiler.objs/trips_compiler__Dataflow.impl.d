lib/compiler/dataflow.ml: Hashtbl Hyperblock Int Int64 List Map Printf Regalloc Trips_edge Trips_tir
