lib/compiler/hyperblock.mli: Format Trips_tir
