lib/compiler/driver.ml: Dataflow Hyperblock List Printf Regalloc Schedule Trips_edge Trips_tir
