lib/compiler/dataflow.mli: Hyperblock Regalloc Trips_edge
