lib/compiler/schedule.ml: Array List Queue Trips_edge
