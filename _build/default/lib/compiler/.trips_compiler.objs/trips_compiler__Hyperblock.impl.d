lib/compiler/hyperblock.ml: Array Format Hashtbl List Option Printf Queue Trips_tir
