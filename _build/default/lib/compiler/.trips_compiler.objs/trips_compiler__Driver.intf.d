lib/compiler/driver.mli: Hyperblock Trips_edge Trips_tir
