lib/compiler/regalloc.ml: Hashtbl Hyperblock Int List Option Set Trips_edge Trips_tir
