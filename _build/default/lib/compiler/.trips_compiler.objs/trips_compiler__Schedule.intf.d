lib/compiler/schedule.mli: Trips_edge
