lib/compiler/regalloc.mli: Hashtbl Hyperblock Trips_tir
