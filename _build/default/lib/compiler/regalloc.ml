module Cfg = Trips_tir.Cfg
open Hyperblock

type t = {
  assign : (Cfg.vreg, int) Hashtbl.t;
  live_in : (string, Cfg.vreg list) Hashtbl.t;
  live_out : (string, Cfg.vreg list) Hashtbl.t;
  write_set : (string, Cfg.vreg list) Hashtbl.t;
}

exception Pressure of string

module IS = Set.Make (Int)

let successors hb =
  List.filter_map
    (function Ejump l -> Some l | Ecall (_, retl) -> Some retl | Eret -> None)
    (exits_of hb)

let allocate (hf : hfunc) : t =
  let pinned_args = List.filter (fun (_, r) -> r <> 1) hf.pinned in
  let v_ret = fst (List.find (fun (_, r) -> r = 1) hf.pinned) in
  let arg_vregs = IS.of_list (List.map fst pinned_args) in
  (* Per-block sets.  [def] (may-defs) feeds the write sets; [kill]
     (must-defs: the unpredicated prefix) is the only sound liveness kill
     set — a value assigned on one predicated path still flows through on
     the other, where the merge rereads the register. *)
  let use = Hashtbl.create 16 and def = Hashtbl.create 16 in
  let kill = Hashtbl.create 16 in
  let use_end = Hashtbl.create 16 in
  List.iter
    (fun hb ->
      let d = IS.of_list (body_defs hb.body) in
      Hashtbl.replace def hb.hlabel d;
      Hashtbl.replace kill hb.hlabel (IS.of_list (prefix_defs hb.body));
      Hashtbl.replace use hb.hlabel (IS.of_list (body_uses_before_def hb.body));
      let ue = ref IS.empty in
      List.iter
        (function
          | Eret -> ue := IS.add v_ret !ue
          | Ecall _ -> ue := IS.union (IS.inter d arg_vregs) !ue
          | Ejump _ -> ())
        (exits_of hb);
      Hashtbl.replace use_end hb.hlabel !ue)
    hf.hblocks;
  (* the callee magically defines the return-value register at call exits *)
  let def =
    let d2 = Hashtbl.copy def in
    List.iter
      (fun hb ->
        if List.exists (function Ecall _ -> true | _ -> false) (exits_of hb) then
          Hashtbl.replace d2 hb.hlabel (IS.add v_ret (Hashtbl.find def hb.hlabel)))
      hf.hblocks;
    d2
  in
  (* iterative liveness to fixpoint *)
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun hb ->
      Hashtbl.replace live_in hb.hlabel IS.empty;
      Hashtbl.replace live_out hb.hlabel IS.empty)
    hf.hblocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun hb ->
        let out =
          List.fold_left
            (fun acc l ->
              match Hashtbl.find_opt live_in l with
              | Some s -> IS.union acc s
              | None -> acc)
            (Hashtbl.find use_end hb.hlabel)
            (successors hb)
        in
        let inn =
          IS.union
            (Hashtbl.find use hb.hlabel)
            (IS.diff out (Hashtbl.find kill hb.hlabel))
        in
        if not (IS.equal out (Hashtbl.find live_out hb.hlabel)) then begin
          Hashtbl.replace live_out hb.hlabel out;
          changed := true
        end;
        if not (IS.equal inn (Hashtbl.find live_in hb.hlabel)) then begin
          Hashtbl.replace live_in hb.hlabel inn;
          changed := true
        end)
      hf.hblocks
  done;
  (* allocation domain: everything live across an edge, plus pins *)
  let domain = ref (IS.of_list (List.map fst hf.pinned)) in
  List.iter
    (fun hb ->
      domain := IS.union !domain (Hashtbl.find live_in hb.hlabel);
      domain := IS.union !domain (Hashtbl.find live_out hb.hlabel))
    hf.hblocks;
  (* interference edges *)
  let interf : (int, IS.t) Hashtbl.t = Hashtbl.create 64 in
  let edge a b =
    if a <> b then begin
      let add x y =
        Hashtbl.replace interf x (IS.add y (Option.value ~default:IS.empty (Hashtbl.find_opt interf x)))
      in
      add a b;
      add b a
    end
  in
  let clique s = IS.iter (fun a -> IS.iter (fun b -> edge a b) s) s in
  List.iter
    (fun hb ->
      clique (Hashtbl.find live_in hb.hlabel);
      clique (Hashtbl.find live_out hb.hlabel);
      let out = Hashtbl.find live_out hb.hlabel in
      IS.iter (fun d -> IS.iter (fun l -> edge d l) out)
        (IS.inter (Hashtbl.find def hb.hlabel) !domain))
    hf.hblocks;
  (* greedy coloring, pins first *)
  let assign = Hashtbl.create 64 in
  List.iter (fun (v, r) -> Hashtbl.replace assign v r) hf.pinned;
  let nodes =
    IS.elements (IS.diff !domain (IS.of_list (List.map fst hf.pinned)))
    |> List.sort (fun a b ->
           let deg v = IS.cardinal (Option.value ~default:IS.empty (Hashtbl.find_opt interf v)) in
           compare (deg b) (deg a))
  in
  List.iter
    (fun v ->
      let neighbors = Option.value ~default:IS.empty (Hashtbl.find_opt interf v) in
      let taken =
        IS.fold
          (fun n acc ->
            match Hashtbl.find_opt assign n with Some c -> IS.add c acc | None -> acc)
          neighbors IS.empty
      in
      let rec first c = if IS.mem c taken then first (c + 1) else c in
      (* r0 is left free as a conventional scratch register; pins live at
         1..9 but are reusable when not interfering *)
      let c = first 1 in
      if c >= Trips_edge.Isa.num_regs then raise (Pressure hf.hname);
      Hashtbl.replace assign v c)
    nodes;
  (* write sets: defs that are live out (plus argument pins at call exits;
     those are in use_end and therefore in live_out already) *)
  let write_set = Hashtbl.create 16 in
  List.iter
    (fun hb ->
      let ws =
        IS.inter (Hashtbl.find def hb.hlabel) (Hashtbl.find live_out hb.hlabel)
      in
      (* the return-value register is written by the callee, not by the
         caller's call block *)
      let ws =
        if List.exists (function Ecall _ -> true | _ -> false) (exits_of hb)
           && not (IS.mem v_ret (IS.of_list (body_defs hb.body)))
        then IS.remove v_ret ws
        else ws
      in
      Hashtbl.replace write_set hb.hlabel (IS.elements ws))
    hf.hblocks;
  {
    assign;
    live_in =
      (let h = Hashtbl.create 16 in
       Hashtbl.iter (fun k v -> Hashtbl.replace h k (IS.elements v)) live_in;
       h);
    live_out =
      (let h = Hashtbl.create 16 in
       Hashtbl.iter (fun k v -> Hashtbl.replace h k (IS.elements v)) live_out;
       h);
    write_set;
  }

let reg_of t v = Hashtbl.find t.assign v
