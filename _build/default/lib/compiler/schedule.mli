(** Spatial instruction placement (the compiler's scheduler, [2]).

    Assigns each instruction of a block to one of the 16 execution tiles
    (8 reservation stations per tile per block).  The greedy placer walks
    instructions in dataflow-topological order and puts each one where the
    operand-network distance to its producers — plus affinity to the data
    tiles for memory operations, the register tiles for header traffic and
    the global tile for branches — is smallest, balancing tile occupancy.
    This is the optimization whose quality the OPN hop profile of Fig 8
    measures. *)

val tile_position : int -> int * int
(** Physical (row, col) of an execution tile id in the 5x5 OPN mesh.
    Row 0 holds GT and the four RTs, column 0 the four DTs. *)

val rt_position : int -> int * int
(** Position of the register-tile bank serving an architectural register. *)

val dt_position : int -> int * int
(** Position of the data-tile bank serving an address. *)

val gt_position : int * int

val place : Trips_edge.Block.t -> unit
(** Fill [block.placement] in place. *)

val place_program : Trips_edge.Block.program -> unit
