(** Register allocation for cross-hyperblock values.

    Inside a TRIPS block, values flow producer-to-consumer and never touch
    the register file; only values live across hyperblock boundaries need an
    architectural register (§4.3).  This module computes block-granularity
    liveness over an {!Hyperblock.hfunc} and colors the cross-block vregs
    onto the 128 architectural registers.  ABI-pinned vregs (return value,
    arguments) keep their fixed registers. *)

type t = {
  assign : (Trips_tir.Cfg.vreg, int) Hashtbl.t;  (* vreg -> arch reg *)
  live_in : (string, Trips_tir.Cfg.vreg list) Hashtbl.t;
  live_out : (string, Trips_tir.Cfg.vreg list) Hashtbl.t;
  write_set : (string, Trips_tir.Cfg.vreg list) Hashtbl.t;
      (* per block: defs that must be written to the register file *)
}

exception Pressure of string
(** Raised when more than 128 simultaneously-live values exist (the paper's
    workloads never spill with 128 registers; we fail loudly instead of
    implementing spill code). *)

val allocate : Hyperblock.hfunc -> t

val reg_of : t -> Trips_tir.Cfg.vreg -> int
(** @raise Not_found for values that never cross a block boundary. *)
