(** Composed memory hierarchy: L1 (I or D) -> L2 -> DRAM, returning access
    latencies and keeping per-level statistics.

    DRAM is a fixed-latency, bounded-bandwidth model: each access occupies
    the channel for [bytes/width] cycles, modeling the dual DDR controllers
    whose achievable bandwidth Fig 8 reports. *)

type dram_config = {
  dram_latency : int;          (* core cycles to first data *)
  bytes_per_cycle : float;     (* sustained channel bandwidth *)
}

val trips_dram : dram_config

type t

val create :
  l1:Cache.config -> l2:Cache.config option -> dram:dram_config -> t
(** A hierarchy with a private L1, optional shared L2, and DRAM. *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t option

val access : t -> addr:int -> write:bool -> now:int -> int * bool
(** [(latency, l1_hit)] for an access issued at cycle [now].  The latency
    includes NUCA distance, DRAM latency and DRAM channel queueing. *)

val dram_accesses : t -> int
val dram_busy_until : t -> int

val reset : t -> unit
