type dram_config = {
  dram_latency : int;
  bytes_per_cycle : float;
}

(* 366 MHz core, 100/200 MHz DDR: ~70 core cycles to first data, and the
   dual controllers sustain ~5.6 GB/s peak = ~15 bytes per core cycle;
   protocol overheads make ~60% of that achievable (§5.2). *)
let trips_dram = { dram_latency = 70; bytes_per_cycle = 9.0 }

type t = {
  l1c : Cache.t;
  l2c : Cache.t option;
  dram : dram_config;
  mutable dram_count : int;
  mutable dram_free_at : int;
}

let create ~l1 ~l2 ~dram =
  {
    l1c = Cache.create l1;
    l2c = Option.map Cache.create l2;
    dram;
    dram_count = 0;
    dram_free_at = 0;
  }

let l1 t = t.l1c
let l2 t = t.l2c

let dram_access t ~now =
  t.dram_count <- t.dram_count + 1;
  let line = (Cache.config t.l1c).Cache.line in
  let occupancy =
    int_of_float (ceil (float_of_int line /. t.dram.bytes_per_cycle))
  in
  let start = max now t.dram_free_at in
  t.dram_free_at <- start + occupancy;
  (start - now) + t.dram.dram_latency + occupancy

let access t ~addr ~write ~now =
  if Cache.access t.l1c ~addr ~write then
    (Cache.hit_latency_of_bank t.l1c (Cache.bank_of t.l1c ~addr), true)
  else
    let l1_lat = (Cache.config t.l1c).Cache.hit_latency in
    match t.l2c with
    | None -> (l1_lat + dram_access t ~now, false)
    | Some l2 ->
      if Cache.access l2 ~addr ~write then
        (l1_lat + Cache.hit_latency_of_bank l2 (Cache.bank_of l2 ~addr), false)
      else
        (l1_lat + Cache.hit_latency_of_bank l2 (Cache.bank_of l2 ~addr)
         + dram_access t ~now:(now + l1_lat),
         false)

let dram_accesses t = t.dram_count
let dram_busy_until t = t.dram_free_at

let reset t =
  Cache.reset t.l1c;
  Option.iter Cache.reset t.l2c;
  t.dram_count <- 0;
  t.dram_free_at <- 0
