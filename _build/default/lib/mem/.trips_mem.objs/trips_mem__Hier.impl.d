lib/mem/hier.ml: Cache Option
