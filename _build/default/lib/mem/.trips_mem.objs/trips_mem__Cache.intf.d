lib/mem/cache.mli:
