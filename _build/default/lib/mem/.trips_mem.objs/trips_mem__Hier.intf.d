lib/mem/hier.mli: Cache
