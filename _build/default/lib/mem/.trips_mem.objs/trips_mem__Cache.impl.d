lib/mem/cache.ml: Array
