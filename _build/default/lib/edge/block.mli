(** TRIPS blocks, functions and whole programs, with static validation.

    A block aggregates up to 128 dataflow instructions plus header read and
    write slots.  [placement] records the execution tile chosen for each
    instruction by the scheduler (16 tiles, 8 reservation stations each, as
    in the prototype). *)

type read = {
  rreg : int;                    (* architectural register, 0..127 *)
  rtargets : Isa.target list;    (* at most two *)
}

type write = { wreg : int }

type t = {
  label : string;
  reads : read array;
  writes : write array;
  insts : Isa.inst array;
  mutable placement : int array; (* instruction index -> ET id (0..15) *)
}

type func = {
  fname : string;
  entry : string;               (* entry block label *)
  blocks : t list;
}

type program = {
  globals : Trips_tir.Ast.global list;
  funcs : func list;
}

val find_func : program -> string -> func
val find_block : func -> string -> t
val block_of_label : program -> string -> t
(** Look a block up across all functions (labels are globally unique). *)

val exits : t -> (int * Isa.exit_dest) list
(** Branch instructions of the block: (instruction index, destination). *)

val num_lsids : t -> int
(** Number of distinct LSIDs used by the block's memory instructions. *)

val default_placement : t -> unit
(** Round-robin placement used before the real scheduler runs. *)

exception Invalid of string * string  (* block label, reason *)

val validate : t -> unit
(** Check every prototype block constraint: size and header limits, target
    well-formedness (port arity, range), predicate producers, write-slot
    producers, LSID limits, at least one and at most eight exits.
    @raise Invalid with the offending block and reason. *)

val validate_program : program -> unit
(** Validate every block, plus inter-block checks: entry labels exist and
    every exit destination resolves. *)

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit

val size_stats : t -> int * int * int * int
(** (instructions, reads, writes, exits) of a block. *)
