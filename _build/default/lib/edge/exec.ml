module Ty = Trips_tir.Ty
module Ast = Trips_tir.Ast
module Image = Trips_tir.Image
module Semantics = Trips_tir.Semantics

type token = Val of Ty.value | Nul

type mem_event = {
  ev_inst : int;
  ev_lsid : int;
  ev_is_load : bool;
  ev_addr : int;
  ev_width : Ty.width;
  ev_null : bool;
}

type instance = {
  iblock : Block.t;
  fired : bool array;
  useful : bool array;
  exit_inst : int;
  exit_dest : Isa.exit_dest;
  mem_events : mem_event list;
}

type stats = {
  mutable blocks : int;
  mutable fetched : int;
  mutable executed : int;
  mutable not_executed : int;
  mutable executed_not_used : int;
  mutable useful : int;
  mutable k_arith : int;
  mutable k_memory : int;
  mutable k_control : int;
  mutable k_test : int;
  mutable k_move : int;
  mutable reads_fetched : int;
  mutable writes_committed : int;
  mutable stores_committed : int;
  mutable loads_executed : int;
  mutable opn_et_et : int;
  mutable opn_rt_et : int;
  mutable opn_et_rt : int;
  mutable opn_et_dt : int;
  mutable opn_dt_et : int;
  mutable opn_et_gt : int;
  mutable flops : int;
}

let empty_stats () =
  {
    blocks = 0; fetched = 0; executed = 0; not_executed = 0;
    executed_not_used = 0; useful = 0;
    k_arith = 0; k_memory = 0; k_control = 0; k_test = 0; k_move = 0;
    reads_fetched = 0; writes_committed = 0; stores_committed = 0;
    loads_executed = 0;
    opn_et_et = 0; opn_rt_et = 0; opn_et_rt = 0; opn_et_dt = 0;
    opn_dt_et = 0; opn_et_gt = 0; flops = 0;
  }

type result = {
  ret : Ty.value option;
  stats : stats;
}

exception Stuck of string * string

let abi_ret_reg = 1
let abi_arg_regs = [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let is_flop (op : Isa.opcode) =
  match op with
  | Isa.Bin (Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Single block execution                                              *)
(* ------------------------------------------------------------------ *)

(* Per-instruction dynamic state during one block instance. *)
type islot = {
  mutable op0 : token option;
  mutable op1 : token option;
  mutable prd : token option;
  mutable src0 : int;      (* producer instruction index, -1 = read slot *)
  mutable src1 : int;
  mutable srcp : int;
  mutable has_fired : bool;
  mutable value : token;   (* result after firing *)
}

type pending_store = {
  ps_inst : int;
  ps_lsid : int;
  ps_width : Ty.width;
  ps_addr : int;           (* meaningless when nullified *)
  ps_data : token;
}

let token_int label = function
  | Val v -> Ty.as_int v
  | Nul -> raise (Stuck (label, "null token in arithmetic"))

(* Execute one block instance against register file and memory.
   Returns the instance plus commit effects. *)
let exec_block ~stats ~fuel (b : Block.t) (regs : Ty.value array) (image : Image.t) :
    instance * (int * Ty.value) list =
  let n = Array.length b.insts in
  let slots =
    Array.init n (fun _ ->
        { op0 = None; op1 = None; prd = None; src0 = -1; src1 = -1; srcp = -1;
          has_fired = false; value = Nul })
  in
  let ready = Queue.create () in
  let write_results : (int * Ty.value) list ref = ref [] in   (* write slot -> value *)
  let stores : pending_store list ref = ref [] in
  let store_sites = ref 0 in     (* static stores in block *)
  let stores_done = ref 0 in
  let exit_fired = ref None in
  let pending_loads : int list ref = ref [] in
  Array.iter
    (fun (ins : Isa.inst) ->
      match ins.op with Isa.Store _ -> incr store_sites | _ -> ())
    b.insts;
  (* can a load with this lsid go? all static stores with lower lsid done *)
  let lower_stores_done lsid =
    let total = ref 0 and got = ref 0 in
    Array.iter
      (fun (ins : Isa.inst) ->
        match ins.op with
        | Isa.Store (_, l) when l < lsid -> incr total
        | _ -> ())
      b.insts;
    List.iter (fun ps -> if ps.ps_lsid < lsid then incr got) !stores;
    ignore got;
    List.length (List.filter (fun ps -> ps.ps_lsid < lsid) !stores) = !total
  in
  (* forward from in-flight stores: build each byte from the youngest
     lower-LSID store covering it, falling back to memory *)
  let load_value ty width lsid addr =
    let bytes = Ty.bytes_of_width width in
    let byte k =
      let a = addr + k in
      let best = ref None in
      List.iter
        (fun ps ->
          if ps.ps_data <> Nul && ps.ps_lsid < lsid then begin
            let sb = Ty.bytes_of_width ps.ps_width in
            if a >= ps.ps_addr && a < ps.ps_addr + sb then
              match !best with
              | Some prev when prev.ps_lsid >= ps.ps_lsid -> ()
              | _ -> best := Some ps
          end)
        !stores;
      match !best with
      | Some ps ->
        let data = match ps.ps_data with Val v -> v | Nul -> assert false in
        let raw = (match data with Ty.Vi i -> i | Ty.Vf f -> Int64.bits_of_float f) in
        Int64.to_int (Int64.logand (Int64.shift_right_logical raw (8 * (a - ps.ps_addr))) 0xFFL)
      | None -> Int64.to_int (Image.load_u image Ty.W1 a)
    in
    let raw = ref 0L in
    for k = bytes - 1 downto 0 do
      raw := Int64.logor (Int64.shift_left !raw 8) (Int64.of_int (byte k))
    done;
    match ty with
    | Ty.I64 -> Ty.Vi (Semantics.zext width !raw)
    | Ty.F64 -> Ty.Vf (Int64.float_of_bits !raw)
  in
  let deliver src tok (tgt : Isa.target) =
    match tgt with
    | Isa.To_write w -> (
      stats.opn_et_rt <- stats.opn_et_rt + 1;
      match tok with
      | Val v -> write_results := (w, v) :: !write_results
      | Nul -> raise (Stuck (b.label, "null token delivered to a write slot")))
    | Isa.To_inst (i, s) ->
      let producer_is_load =
        src >= 0 && (match b.insts.(src).op with Isa.Load _ -> true | _ -> false)
      in
      if src < 0 then stats.opn_rt_et <- stats.opn_rt_et + 1
      else if producer_is_load then stats.opn_dt_et <- stats.opn_dt_et + 1
      else stats.opn_et_et <- stats.opn_et_et + 1;
      let sl = slots.(i) in
      (match s with
      | Isa.Op0 ->
        if sl.op0 <> None then raise (Stuck (b.label, Printf.sprintf "I%d.op0 double delivery" i));
        sl.op0 <- Some tok;
        sl.src0 <- src
      | Isa.Op1 ->
        if sl.op1 <> None then raise (Stuck (b.label, Printf.sprintf "I%d.op1 double delivery" i));
        sl.op1 <- Some tok;
        sl.src1 <- src
      | Isa.OpPred ->
        if sl.prd <> None then raise (Stuck (b.label, Printf.sprintf "I%d.pred double delivery" i));
        sl.prd <- Some tok;
        sl.srcp <- src);
      Queue.push i ready
  in
  (* predicate check: None = not yet decidable, Some b = fire/squash *)
  let pred_ok i (ins : Isa.inst) =
    match ins.pred with
    | Isa.Unpred -> Some true
    | Isa.On_true _ -> (
      match slots.(i).prd with
      | None -> None
      | Some (Val v) -> Some (Ty.truthy v)
      | Some Nul -> raise (Stuck (b.label, "null predicate")))
    | Isa.On_false _ -> (
      match slots.(i).prd with
      | None -> None
      | Some (Val v) -> Some (not (Ty.truthy v))
      | Some Nul -> raise (Stuck (b.label, "null predicate")))
  in
  let try_fire i =
    let ins = b.insts.(i) in
    let sl = slots.(i) in
    if sl.has_fired then ()
    else
      let arity = Isa.operand_arity ins in
      let have_ops =
        (arity < 1 || sl.op0 <> None) && (arity < 2 || sl.op1 <> None)
      in
      match pred_ok i ins with
      | None -> ()
      | Some false -> () (* squashed: counted as fetched-not-executed *)
      | Some true ->
        if not have_ops then ()
        else begin
          (* loads must wait for all lower-LSID stores *)
          let defer =
            match ins.op with
            | Isa.Load (_, _, lsid) -> not (lower_stores_done lsid)
            | _ -> false
          in
          if defer then begin
            if not (List.mem i !pending_loads) then pending_loads := i :: !pending_loads
          end
          else begin
            sl.has_fired <- true;
            decr fuel;
            if !fuel <= 0 then raise (Stuck (b.label, "out of fuel"));
            let tok0 () = Option.get sl.op0 in
            let tok1 () =
              match ins.imm with
              | Some v -> Val (Ty.Vi v)
              | None -> Option.get sl.op1
            in
            (match ins.op with
            | Isa.Bin op ->
              let a = tok0 () and b2 = tok1 () in
              (match (a, b2) with
              | Val va, Val vb -> sl.value <- Val (Semantics.binop op va vb)
              | _ -> raise (Stuck (b.label, "null operand in ALU op")));
              if is_flop ins.op then stats.flops <- stats.flops + 1;
              List.iter (deliver i sl.value) ins.targets
            | Isa.Un op ->
              (match tok0 () with
              | Val v -> sl.value <- Val (Semantics.unop op v)
              | Nul -> raise (Stuck (b.label, "null operand in ALU op")));
              List.iter (deliver i sl.value) ins.targets
            | Isa.Geni v ->
              sl.value <- Val (Ty.Vi v);
              List.iter (deliver i sl.value) ins.targets
            | Isa.Genf v ->
              sl.value <- Val (Ty.Vf v);
              List.iter (deliver i sl.value) ins.targets
            | Isa.Mov ->
              sl.value <- tok0 ();
              List.iter (deliver i sl.value) ins.targets
            | Isa.Null ->
              sl.value <- Nul;
              List.iter (deliver i sl.value) ins.targets
            | Isa.Load (ty, w, lsid) ->
              stats.opn_et_dt <- stats.opn_et_dt + 1;
              let addr =
                Int64.to_int (token_int b.label (tok0 ()))
                + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
              in
              let v = load_value ty w lsid addr in
              sl.value <- Val v;
              List.iter (deliver i sl.value) ins.targets
            | Isa.Store (w, lsid) ->
              stats.opn_et_dt <- stats.opn_et_dt + 1;
              (* the immediate on a store is an address displacement, not an
                 operand substitute: data always arrives on op1 *)
              let a = tok0 () and d = Option.get sl.op1 in
              let nullified = a = Nul || d = Nul in
              let addr =
                if nullified then 0
                else
                  Int64.to_int (token_int b.label a)
                  + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
              in
              stores :=
                { ps_inst = i; ps_lsid = lsid; ps_width = w; ps_addr = addr;
                  ps_data = (if nullified then Nul else d) }
                :: !stores;
              incr stores_done;
              (* a completed store may unblock deferred loads *)
              let retry = !pending_loads in
              pending_loads := [];
              List.iter (fun j -> Queue.push j ready) retry
            | Isa.Branch dest ->
              stats.opn_et_gt <- stats.opn_et_gt + 1;
              (match !exit_fired with
              | Some _ -> raise (Stuck (b.label, "two branches fired"))
              | None -> exit_fired := Some (i, dest)))
          end
        end
  in
  (* inject register reads *)
  Array.iter
    (fun (r : Block.read) ->
      let v = regs.(r.rreg) in
      List.iter (deliver (-1) (Val v)) r.rtargets)
    b.reads;
  (* zero-operand instructions are ready immediately *)
  Array.iteri
    (fun i (ins : Isa.inst) ->
      if Isa.operand_arity ins = 0 && ins.pred = Isa.Unpred then Queue.push i ready)
    b.insts;
  (* dataflow loop *)
  let rec drain () =
    if not (Queue.is_empty ready) then begin
      let i = Queue.pop ready in
      try_fire i;
      drain ()
    end
    else if !pending_loads <> [] then begin
      (* deferred loads whose guard may now pass *)
      let ls = !pending_loads in
      pending_loads := [];
      let before = List.length ls in
      List.iter (fun j -> Queue.push j ready) ls;
      let rec step () =
        if not (Queue.is_empty ready) then begin
          let i = Queue.pop ready in
          try_fire i;
          step ()
        end
      in
      step ();
      if List.length !pending_loads >= before && Queue.is_empty ready then
        raise (Stuck (b.label, "loads deadlocked on incomplete stores"))
      else drain ()
    end
  in
  drain ();
  (* completeness checks *)
  (match !exit_fired with
  | None -> raise (Stuck (b.label, "no branch fired"))
  | Some _ -> ());
  if !stores_done <> !store_sites then
    raise (Stuck (b.label, Printf.sprintf "only %d/%d stores completed" !stores_done !store_sites));
  let committed_writes = !write_results in
  let declared = Array.length b.writes in
  let got = List.sort_uniq compare (List.map fst committed_writes) in
  if List.length got <> declared then
    raise (Stuck (b.label, Printf.sprintf "only %d/%d writes completed" (List.length got) declared));
  if List.length committed_writes <> declared then
    raise (Stuck (b.label, "a write slot received two values"));
  (* commit stores in LSID order *)
  let sorted_stores = List.sort (fun a b2 -> compare a.ps_lsid b2.ps_lsid) !stores in
  List.iter
    (fun ps ->
      match ps.ps_data with
      | Nul -> ()
      | Val v -> Image.store image ps.ps_width ps.ps_addr v)
    sorted_stores;
  (* usefulness: reverse reachability from outputs over dynamic edges *)
  let fired = Array.map (fun sl -> sl.has_fired) slots in
  let useful = Array.make n false in
  let stack = ref [] in
  let push i = if i >= 0 && not useful.(i) then begin useful.(i) <- true; stack := i :: !stack end in
  let exit_i, exit_dest = Option.get !exit_fired in
  push exit_i;
  (* write producers: any fired instruction with a To_write target *)
  Array.iteri
    (fun i (ins : Isa.inst) ->
      if fired.(i) && List.exists (function Isa.To_write _ -> true | _ -> false) ins.targets
      then push i)
    b.insts;
  List.iter (fun ps -> push ps.ps_inst) !stores;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      let sl = slots.(i) in
      push sl.src0;
      push sl.src1;
      push sl.srcp
  done;
  (* fold into stats *)
  stats.blocks <- stats.blocks + 1;
  stats.fetched <- stats.fetched + n;
  stats.reads_fetched <- stats.reads_fetched + Array.length b.reads;
  stats.writes_committed <- stats.writes_committed + declared;
  let mem_events = ref [] in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      if fired.(i) then begin
        stats.executed <- stats.executed + 1;
        (match Isa.classify ins.op with
        | Isa.Karith -> stats.k_arith <- stats.k_arith + 1
        | Isa.Kmemory -> stats.k_memory <- stats.k_memory + 1
        | Isa.Kcontrol -> stats.k_control <- stats.k_control + 1
        | Isa.Ktest -> stats.k_test <- stats.k_test + 1
        | Isa.Kmove -> stats.k_move <- stats.k_move + 1);
        if not useful.(i) then stats.executed_not_used <- stats.executed_not_used + 1
        else (
          match Isa.classify ins.op with
          | Isa.Kmove -> ()
          | _ -> stats.useful <- stats.useful + 1);
        match ins.op with
        | Isa.Load (_, w, lsid) ->
          stats.loads_executed <- stats.loads_executed + 1;
          let sl = slots.(i) in
          let addr =
            Int64.to_int (token_int b.label (Option.get sl.op0))
            + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
          in
          mem_events :=
            { ev_inst = i; ev_lsid = lsid; ev_is_load = true; ev_addr = addr;
              ev_width = w; ev_null = false }
            :: !mem_events
        | _ -> ()
      end
      else stats.not_executed <- stats.not_executed + 1)
    b.insts;
  List.iter
    (fun ps ->
      let nul = ps.ps_data = Nul in
      if not nul then stats.stores_committed <- stats.stores_committed + 1;
      mem_events :=
        { ev_inst = ps.ps_inst; ev_lsid = ps.ps_lsid; ev_is_load = false;
          ev_addr = ps.ps_addr; ev_width = ps.ps_width; ev_null = nul }
        :: !mem_events)
    !stores;
  let mem_events = List.sort (fun a b2 -> compare a.ev_lsid b2.ev_lsid) !mem_events in
  ( { iblock = b; fired; useful; exit_inst = exit_i; exit_dest; mem_events },
    committed_writes )

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

let run ?(fuel = 400_000_000) ?on_instance ?debug_regs (p : Block.program)
    (image : Image.t) ~entry ~args =
  let stats = empty_stats () in
  let fuel = ref fuel in
  let regs = Array.make Isa.num_regs (Ty.Vi 0L) in
  List.iteri
    (fun i v ->
      match List.nth_opt abi_arg_regs i with
      | Some r -> regs.(r) <- v
      | None -> invalid_arg "Exec.run: too many arguments")
    args;
  let blocks = Hashtbl.create 256 in
  List.iter
    (fun (f : Block.func) ->
      List.iter (fun (b : Block.t) -> Hashtbl.replace blocks b.label b) f.blocks)
    p.funcs;
  let entry_f = Block.find_func p entry in
  (* call stack: saved register file + return label *)
  let stack : (Ty.value array * string) list ref = ref [] in
  let current = ref (Some entry_f.entry) in
  let finished = ref None in
  while !finished = None do
    match !current with
    | None -> assert false
    | Some label ->
      let b =
        match Hashtbl.find_opt blocks label with
        | Some b -> b
        | None -> raise (Stuck (label, "unknown block"))
      in
      let instance, writes = exec_block ~stats ~fuel b regs image in
      (* commit register writes *)
      List.iter (fun (w, v) -> regs.(b.writes.(w).wreg) <- v) writes;
      Option.iter (fun f -> f instance) on_instance;
      Option.iter (fun f -> f label regs) debug_regs;
      (match instance.exit_dest with
      | Isa.Xjump l -> current := Some l
      | Isa.Xcall (callee, retl) ->
        let f = Block.find_func p callee in
        stack := (Array.copy regs, retl) :: !stack;
        current := Some f.entry
      | Isa.Xret -> (
        match !stack with
        | [] -> finished := Some regs.(abi_ret_reg)
        | (saved, retl) :: rest ->
          let ret_v = regs.(abi_ret_reg) in
          Array.blit saved 0 regs 0 (Array.length regs);
          regs.(abi_ret_reg) <- ret_v;
          stack := rest;
          current := Some retl))
  done;
  { ret = !finished; stats }
