(** Imperative construction of TRIPS blocks with automatic fanout.

    Producers are created first and wired to consumers with {!arc}; on
    {!finish} the builder assigns target lists and, where a producer has
    more than the two targets a 32-bit EDGE instruction can encode, inserts
    a balanced tree of [mov] instructions (§4.1: "the compiler must insert
    move instructions to fan out values").  Both the TRIPS compiler backend
    and the hand-optimized kernels build blocks through this interface, so
    fanout accounting is identical for compiled and hand code. *)

type t

type h
(** Handle to a value producer (instruction or read slot). *)

val create : string -> t
(** Start a block with the given label. *)

val inst : t -> ?pred:h * bool -> ?imm:int64 -> Isa.opcode -> h
(** Append an instruction.  [pred] predicates it on a producer's value being
    nonzero ([true]) or zero ([false]); the producer must be an instruction,
    not a read.  Loads and stores receive their LSID automatically in
    creation order unless the opcode already carries one >= 0. *)

val read : t -> int -> h
(** Read of an architectural register; one slot per distinct call. *)

val write : t -> int -> h list -> unit
(** Declare a register write slot fed by the given producers.  Several
    producers may feed the slot (predicated paths); exactly one must fire
    at run time. *)

val arc : t -> h -> h -> Isa.slot -> unit
(** Dataflow edge: producer [h] delivers to a consumer instruction's port.
    The consumer must be an instruction handle. *)

val id : h -> int
(** Stable identifier, unique among this block's handles; usable as a hash
    or memoization key. *)

val next_lsid : t -> int
(** LSID that the next memory instruction will receive. *)

val finish : t -> Block.t
(** Materialize the block: build fanout trees, lay out read/write slots,
    fill targets, and run {!Block.validate}.
    @raise Block.Invalid if the result violates a block constraint. *)
