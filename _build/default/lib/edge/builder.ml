type h = Hinst of int | Hread of int

type proto_inst = {
  mutable p_op : Isa.opcode;
  p_pred : (int * bool) option;    (* predicate producer instruction *)
  p_imm : int64 option;
}

type t = {
  label : string;
  mutable insts : proto_inst list;        (* reversed *)
  mutable n_insts : int;
  mutable reads : int list;               (* arch regs, reversed *)
  mutable n_reads : int;
  mutable writes : (int * h list) list;   (* arch reg, producers; reversed *)
  mutable arcs : (h * int * Isa.slot) list; (* producer, consumer inst, port *)
  mutable lsid : int;
}

let create label =
  { label; insts = []; n_insts = 0; reads = []; n_reads = 0; writes = [];
    arcs = []; lsid = 0 }

let next_lsid t = t.lsid

let assign_lsid t (op : Isa.opcode) =
  match op with
  | Isa.Load (ty, w, l) when l < 0 ->
    let l = t.lsid in
    t.lsid <- l + 1;
    Isa.Load (ty, w, l)
  | Isa.Store (w, l) when l < 0 ->
    let l = t.lsid in
    t.lsid <- l + 1;
    Isa.Store (w, l)
  | op -> op

let inst t ?pred ?imm op =
  let p_pred =
    match pred with
    | None -> None
    | Some (Hinst i, pol) -> Some (i, pol)
    | Some (Hread _, _) -> invalid_arg "Builder.inst: read handles cannot predicate"
  in
  let op = assign_lsid t op in
  let idx = t.n_insts in
  t.insts <- { p_op = op; p_pred; p_imm = imm } :: t.insts;
  t.n_insts <- idx + 1;
  Hinst idx

let read t reg =
  let idx = t.n_reads in
  t.reads <- reg :: t.reads;
  t.n_reads <- idx + 1;
  Hread idx

let id = function Hinst i -> (i * 2) + 2 | Hread r -> -((r * 2) + 2)

let write t reg hs = t.writes <- (reg, hs) :: t.writes

let arc t producer consumer port =
  match consumer with
  | Hinst i -> t.arcs <- (producer, i, port) :: t.arcs
  | Hread _ -> invalid_arg "Builder.arc: consumer must be an instruction"

let finish t : Block.t =
  let insts = Array.of_list (List.rev t.insts) in
  let reads = Array.of_list (List.rev t.reads) in
  let writes = Array.of_list (List.rev t.writes) in
  let arcs = List.rev t.arcs in
  (* Collect raw target lists per producer.  Write feeds count as targets. *)
  let extra = ref [] in               (* fanout movs appended after insts *)
  let n_extra = ref 0 in
  let base = Array.length insts in
  let targets : (int, Isa.target list) Hashtbl.t = Hashtbl.create 64 in
  (* producer key: inst index (fanout movs use indices >= base);
     reads are keyed negatively as -(r+1) *)
  let key_of = function Hinst i -> i | Hread r -> -(r + 1) in
  let add_target key tgt =
    let cur = Option.value ~default:[] (Hashtbl.find_opt targets key) in
    Hashtbl.replace targets key (tgt :: cur)
  in
  List.iter (fun (p, c, port) -> add_target (key_of p) (Isa.To_inst (c, port))) arcs;
  Array.iteri
    (fun w (_, producers) ->
      List.iter (fun p -> add_target (key_of p) (Isa.To_write w)) producers)
    writes;
  (* predicate arcs implied by ?pred *)
  Array.iteri
    (fun i (pi : proto_inst) ->
      match pi.p_pred with
      | Some (p, _) -> add_target p (Isa.To_inst (i, Isa.OpPred))
      | None -> ())
    insts;
  (* Fanout: replace >2-target lists by balanced mov trees.  Fanout movs
     are unpredicated: they fire when their input arrives. *)
  let new_mov () =
    let idx = base + !n_extra in
    incr n_extra;
    extra := { p_op = Isa.Mov; p_pred = None; p_imm = None } :: !extra;
    idx
  in
  let rec tree_targets (tgts : Isa.target list) : Isa.target list =
    if List.length tgts <= 2 then tgts
    else begin
      (* split into two halves, giving each half a mov if it needs one *)
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> split (k - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let half = (List.length tgts + 1) / 2 in
      let a, b = split half [] tgts in
      let mk part =
        match part with
        | [ single ] -> single
        | _ ->
          let m = new_mov () in
          Hashtbl.replace targets m (tree_targets part);
          Isa.To_inst (m, Isa.Op0)
      in
      [ mk a; mk b ]
    end
  in
  let final_targets key =
    match Hashtbl.find_opt targets key with
    | None -> []
    | Some tgts -> tree_targets (List.rev tgts)
  in
  (* Resolve instruction targets first (movs may be created on demand;
     their own target lists are already final). *)
  let inst_targets = Array.init (Array.length insts) (fun i -> final_targets i) in
  let read_targets = Array.init (Array.length reads) (fun r -> final_targets (-(r + 1))) in
  let extra_insts = Array.of_list (List.rev !extra) in
  let all_n = Array.length insts + Array.length extra_insts in
  let final =
    Array.init all_n (fun i ->
        let pi, tgts =
          if i < base then (insts.(i), inst_targets.(i))
          else
            let pi = extra_insts.(i - base) in
            ( pi,
              match Hashtbl.find_opt targets i with
              | Some l -> l  (* already final (built by tree_targets) *)
              | None -> [] )
        in
        let pred =
          match pi.p_pred with
          | None -> Isa.Unpred
          | Some (p, true) -> Isa.On_true p
          | Some (p, false) -> Isa.On_false p
        in
        { Isa.op = pi.p_op; pred; imm = pi.p_imm; targets = tgts })
  in
  let block =
    {
      Block.label = t.label;
      reads = Array.mapi (fun i reg -> { Block.rreg = reg; rtargets = read_targets.(i) }) reads;
      writes = Array.map (fun (reg, _) -> { Block.wreg = reg }) writes;
      insts = final;
      placement = [||];
    }
  in
  Block.default_placement block;
  Block.validate block;
  block
