lib/edge/builder.mli: Block Isa
