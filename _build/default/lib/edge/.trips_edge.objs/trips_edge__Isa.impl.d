lib/edge/isa.ml: Format Printf Trips_tir
