lib/edge/exec.mli: Block Isa Trips_tir
