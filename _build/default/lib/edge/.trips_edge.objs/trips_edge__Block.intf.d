lib/edge/block.mli: Format Isa Trips_tir
