lib/edge/builder.ml: Array Block Hashtbl Isa List Option
