lib/edge/block.ml: Array Format Hashtbl Isa List Printf Trips_tir
