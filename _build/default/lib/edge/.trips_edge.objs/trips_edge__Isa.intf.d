lib/edge/isa.mli: Format Trips_tir
