lib/edge/exec.ml: Array Block Hashtbl Int64 Isa List Option Printf Queue Trips_tir
