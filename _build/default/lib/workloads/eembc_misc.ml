(* EEMBC consumer, networking and office proxy benchmarks. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* ------------------------------------------------------------------ *)
(* Consumer                                                            *)
(* ------------------------------------------------------------------ *)

(* cjpeg: forward 8x8 DCT + zig-zag quantization over image blocks. *)
let cjpeg =
  let blocks = 40 in
  Ast.program
    ~globals:
      [
        Data.ints "cj_img" ~lo:0 ~hi:255 (blocks * 64);
        Data.ints_f "cj_cos" 64 (fun k ->
            let u = k / 8 and x = k mod 8 in
            Int64.of_float
              (256. *. cos (Float.pi *. float_of_int u *. ((2. *. float_of_int x) +. 1.) /. 16.)));
        Data.ints_f "cj_quant" 64 (fun k -> Int64.of_int (8 + (k * 2)));
        Data.zeros "cj_tmp" 64;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "blk" (i 0) (i blocks)
            [
              set "base" (v "blk" *: i 64);
              for_ "u" (i 0) (i 8)
                [
                  for_ "x" (i 0) (i 8)
                    [
                      set "s" (i 0);
                      for_ "k" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: ((ld8 (Data.elt8 "cj_img" (v "base" +: (v "u" *: i 8) +: v "k")) -: i 128)
                               *: ld8 (Data.elt8 "cj_cos" ((v "x" *: i 8) +: v "k"))));
                        ];
                      st8 (Data.elt8 "cj_tmp" ((v "u" *: i 8) +: v "x")) (v "s" >>>: i 8);
                    ];
                ];
              (* quantize and accumulate magnitude of nonzero coefficients *)
              for_ "k" (i 0) (i 64)
                [
                  set "q"
                    (ld8 (Data.elt8 "cj_tmp" (v "k")) /: ld8 (Data.elt8 "cj_quant" (v "k")));
                  if_ (v "q" <>: i 0) [ set "acc" (v "acc" +: v "q" +: i 1) ] [];
                ];
            ];
          ret (v "acc");
        ];
    ]

(* djpeg: dequantize + coarse inverse transform + clamp (saturating
   arithmetic branches). *)
let djpeg =
  let blocks = 40 in
  Ast.program
    ~globals:
      [
        Data.ints "dj_coef" ~lo:(-40) ~hi:40 (blocks * 64);
        Data.ints_f "dj_quant" 64 (fun k -> Int64.of_int (8 + (k * 2)));
        Data.ints_f "dj_cos" 64 (fun k ->
            let u = k / 8 and x = k mod 8 in
            Int64.of_float
              (256. *. cos (Float.pi *. float_of_int u *. ((2. *. float_of_int x) +. 1.) /. 16.)));
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "blk" (i 0) (i blocks)
            [
              set "base" (v "blk" *: i 64);
              for_ "x" (i 0) (i 8)
                [
                  for_ "y" (i 0) (i 8)
                    [
                      set "s" (i 0);
                      for_ "u" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: (ld8 (Data.elt8 "dj_coef" (v "base" +: (v "u" *: i 8) +: v "x"))
                               *: ld8 (Data.elt8 "dj_quant" (v "u"))
                               *: ld8 (Data.elt8 "dj_cos" ((v "u" *: i 8) +: v "y"))));
                        ];
                      set "p" ((v "s" >>>: i 12) +: i 128);
                      if_ (v "p" <: i 0) [ set "p" (i 0) ] [];
                      if_ (v "p" >: i 255) [ set "p" (i 255) ] [];
                      set "acc" (v "acc" +: v "p");
                    ];
                ];
            ];
          ret (v "acc");
        ];
    ]

(* rgbcmy: RGB -> CMYK conversion with per-pixel min extraction. *)
let rgbcmy =
  let pixels = 8192 in
  Ast.program
    ~globals:[ Data.bytes_ "cmy_img" (pixels * 3) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "p" (i 0) (i pixels)
            [
              set "r" (i 255 -: ld1 (Data.elt1 "cmy_img" (v "p" *: i 3)));
              set "g" (i 255 -: ld1 (Data.elt1 "cmy_img" ((v "p" *: i 3) +: i 1)));
              set "b" (i 255 -: ld1 (Data.elt1 "cmy_img" ((v "p" *: i 3) +: i 2)));
              set "k" (v "r");
              if_ (v "g" <: v "k") [ set "k" (v "g") ] [];
              if_ (v "b" <: v "k") [ set "k" (v "b") ] [];
              set "acc"
                (v "acc" +: (v "r" -: v "k") +: (v "g" -: v "k") +: (v "b" -: v "k")
               +: (v "k" <<: i 1));
            ];
          ret (v "acc");
        ];
    ]

(* rgbyiq: RGB -> YIQ colourspace (fixed-point 3x3 matrix per pixel). *)
let rgbyiq =
  let pixels = 8192 in
  Ast.program
    ~globals:[ Data.bytes_ "yiq_img" (pixels * 3) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "p" (i 0) (i pixels)
            [
              set "r" (ld1 (Data.elt1 "yiq_img" (v "p" *: i 3)));
              set "g" (ld1 (Data.elt1 "yiq_img" ((v "p" *: i 3) +: i 1)));
              set "b" (ld1 (Data.elt1 "yiq_img" ((v "p" *: i 3) +: i 2)));
              set "y" (((i 299 *: v "r") +: (i 587 *: v "g") +: (i 114 *: v "b")) /: i 1000);
              set "iq" (((i 596 *: v "r") -: (i 274 *: v "g") -: (i 322 *: v "b")) /: i 1000);
              set "q" (((i 211 *: v "r") -: (i 523 *: v "g") +: (i 312 *: v "b")) /: i 1000);
              set "acc" (v "acc" +: v "y" +: (v "iq" ^: v "q"));
            ];
          ret (v "acc");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Networking                                                          *)
(* ------------------------------------------------------------------ *)

(* ospf: Dijkstra shortest paths over a synthetic router graph in
   adjacency-matrix form (the argmin scan dominates). *)
let ospf =
  let nodes = 48 in
  Ast.program
    ~globals:
      [
        Data.ints_f "os_cost" (nodes * nodes) (fun k ->
            let r = k / nodes and c = k mod nodes in
            if r = c then 0L
            else if (r + c) mod 7 < 2 then Int64.of_int (1 + ((r * 13) + (c * 7)) mod 30)
            else 100000L);
        Data.zeros "os_dist" nodes;
        Data.zeros "os_done" nodes;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          (* run from several sources *)
          for_ "src" (i 0) (i 8)
            [
              for_ "k" (i 0) (i nodes)
                [
                  st8 (Data.elt8 "os_dist" (v "k")) (i 1000000);
                  st8 (Data.elt8 "os_done" (v "k")) (i 0);
                ];
              st8 (Data.elt8 "os_dist" (v "src" *: i 5)) (i 0);
              for_ "round" (i 0) (i nodes)
                [
                  set "best" (i (-1));
                  set "bestd" (i 999999);
                  for_ "k" (i 0) (i nodes)
                    [
                      if_
                        ((ld8 (Data.elt8 "os_done" (v "k")) =: i 0)
                        &: (ld8 (Data.elt8 "os_dist" (v "k")) <: v "bestd"))
                        [
                          set "best" (v "k");
                          set "bestd" (ld8 (Data.elt8 "os_dist" (v "k")));
                        ]
                        [];
                    ];
                  if_ (v "best" >=: i 0)
                    [
                      st8 (Data.elt8 "os_done" (v "best")) (i 1);
                      for_ "k" (i 0) (i nodes)
                        [
                          set "nd"
                            (v "bestd"
                            +: ld8 (Data.elt8 "os_cost" ((v "best" *: i nodes) +: v "k")));
                          if_ (v "nd" <: ld8 (Data.elt8 "os_dist" (v "k")))
                            [ st8 (Data.elt8 "os_dist" (v "k")) (v "nd") ]
                            [];
                        ];
                    ]
                    [];
                ];
              for_ "k" (i 0) (i nodes)
                [ set "acc" (v "acc" +: ld8 (Data.elt8 "os_dist" (v "k"))) ];
            ];
          ret (v "acc");
        ];
    ]

(* pktflow: packet header validation and flow counting. *)
let pktflow =
  let pkts = 4096 in
  Ast.program
    ~globals:
      [
        Data.ints "pk_src" ~lo:0 ~hi:255 pkts;
        Data.ints "pk_dst" ~lo:0 ~hi:255 pkts;
        Data.ints "pk_len" ~lo:20 ~hi:1500 pkts;
        Data.ints "pk_ttl" ~lo:0 ~hi:64 pkts;
        Data.zeros "pk_flows" 256;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "fwd" (i 0);
          set "drop" (i 0);
          set "bytes" (i 0);
          for_ "k" (i 0) (i pkts)
            [
              set "ttl" (ld8 (Data.elt8 "pk_ttl" (v "k")));
              if_ (v "ttl" <=: i 1)
                [ set "drop" (v "drop" +: i 1) ]
                [
                  set "flow"
                    ((ld8 (Data.elt8 "pk_src" (v "k")) ^: ld8 (Data.elt8 "pk_dst" (v "k")))
                    &: i 255);
                  st8 (Data.elt8 "pk_flows" (v "flow"))
                    (ld8 (Data.elt8 "pk_flows" (v "flow")) +: i 1);
                  set "fwd" (v "fwd" +: i 1);
                  set "bytes" (v "bytes" +: ld8 (Data.elt8 "pk_len" (v "k")));
                ];
            ];
          set "hot" (i 0);
          for_ "k" (i 0) (i 256)
            [
              if_ (ld8 (Data.elt8 "pk_flows" (v "k")) >: i 20)
                [ set "hot" (v "hot" +: i 1) ]
                [];
            ];
          ret ((v "fwd" <<: i 32) ^: (v "drop" <<: i 20) ^: (v "hot" <<: i 12)
              ^: (v "bytes" &: i 4095));
        ];
    ]

(* routelookup: binary-trie (Patricia) longest-prefix match — the serial
   tree walk the paper cites as intrinsically sequential (§5.3). *)
let routelookup =
  let tnodes = 1024 and lookups = 2048 in
  Ast.program
    ~globals:
      [
        (* node: left child, right child, prefix flag *)
        Data.ints_f "rt_left" tnodes (fun k ->
            if 2 * k + 1 < tnodes then Int64.of_int (2 * k + 1) else 0L);
        Data.ints_f "rt_right" tnodes (fun k ->
            if 2 * k + 2 < tnodes then Int64.of_int (2 * k + 2) else 0L);
        Data.ints_f "rt_pref" tnodes (fun k -> if k mod 3 = 0 then Int64.of_int k else 0L);
        Data.ints "rt_addr" ~lo:0 ~hi:0xFFFFFF lookups;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "q" (i 0) (i lookups)
            [
              set "addr" (ld8 (Data.elt8 "rt_addr" (v "q")));
              set "node" (i 0);
              set "lastpref" (i 0);
              set "depth" (i 0);
              set "stop" (i 0);
              while_ ((v "depth" <: i 10) &: (v "stop" =: i 0))
                [
                  set "p" (ld8 (Data.elt8 "rt_pref" (v "node")));
                  if_ (v "p" <>: i 0) [ set "lastpref" (v "p") ] [];
                  set "bit" ((v "addr" >>: (i 23 -: v "depth")) &: i 1);
                  if_ (v "bit" =: i 1)
                    [ set "next" (ld8 (Data.elt8 "rt_right" (v "node"))) ]
                    [ set "next" (ld8 (Data.elt8 "rt_left" (v "node"))) ];
                  if_ (v "next" =: i 0)
                    [ set "stop" (i 1) ]
                    [ set "node" (v "next"); set "depth" (v "depth" +: i 1) ];
                ];
              set "acc" (v "acc" +: v "lastpref");
            ];
          ret (v "acc");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Office automation                                                   *)
(* ------------------------------------------------------------------ *)

(* bezier: cubic Bézier evaluation at many parameter values. *)
let bezier =
  let curves = 64 and steps = 64 in
  Ast.program
    ~globals:
      [
        Data.floats "bz_x" ~scale:100.0 (curves * 4);
        Data.floats "bz_y" ~scale:100.0 (curves * 4);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "len" (f 0.0);
          for_ "c" (i 0) (i curves)
            [
              set "px" (ldf (Data.elt8 "bz_x" (v "c" *: i 4)));
              set "py" (ldf (Data.elt8 "bz_y" (v "c" *: i 4)));
              for_ "s" (i 1) (i (steps + 1))
                [
                  set "t" (Ast.Un (Ast.Itof, v "s") /.: f (float_of_int steps));
                  set "u" (f 1.0 -.: v "t");
                  set "b0" (v "u" *.: v "u" *.: v "u");
                  set "b1" (f 3.0 *.: v "u" *.: v "u" *.: v "t");
                  set "b2" (f 3.0 *.: v "u" *.: v "t" *.: v "t");
                  set "b3" (v "t" *.: v "t" *.: v "t");
                  set "x"
                    ((v "b0" *.: ldf (Data.elt8 "bz_x" (v "c" *: i 4)))
                    +.: (v "b1" *.: ldf (Data.elt8 "bz_x" ((v "c" *: i 4) +: i 1)))
                    +.: (v "b2" *.: ldf (Data.elt8 "bz_x" ((v "c" *: i 4) +: i 2)))
                    +.: (v "b3" *.: ldf (Data.elt8 "bz_x" ((v "c" *: i 4) +: i 3))));
                  set "y"
                    ((v "b0" *.: ldf (Data.elt8 "bz_y" (v "c" *: i 4)))
                    +.: (v "b1" *.: ldf (Data.elt8 "bz_y" ((v "c" *: i 4) +: i 1)))
                    +.: (v "b2" *.: ldf (Data.elt8 "bz_y" ((v "c" *: i 4) +: i 2)))
                    +.: (v "b3" *.: ldf (Data.elt8 "bz_y" ((v "c" *: i 4) +: i 3))));
                  set "dx" (v "x" -.: v "px");
                  set "dy" (v "y" -.: v "py");
                  set "len" (v "len" +.: ((v "dx" *.: v "dx") +.: (v "dy" *.: v "dy")));
                  set "px" (v "x");
                  set "py" (v "y");
                ];
            ];
          ret (v "len");
        ];
    ]

(* dither: Floyd–Steinberg error diffusion over a greyscale image. *)
let dither =
  let w = 128 and h = 64 in
  Ast.program
    ~globals:
      [
        Data.ints "dt_img" ~lo:0 ~hi:255 (w * h);
        Data.zeros "dt_err" (w + 2);
        Data.zeros "dt_nerr" (w + 2);
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "black" (i 0);
          for_ "y" (i 0) (i h)
            [
              set "carry" (i 0);
              for_ "x" (i 0) (i w)
                [
                  set "px"
                    (ld8 (Data.elt8 "dt_img" ((v "y" *: i w) +: v "x"))
                    +: ld8 (Data.elt8 "dt_err" (v "x" +: i 1))
                    +: v "carry");
                  if_ (v "px" >: i 127)
                    [ set "q" (i 255); set "e" (v "px" -: i 255) ]
                    [ set "q" (i 0); set "e" (v "px"); set "black" (v "black" +: i 1) ];
                  (* diffuse: 7/16 right (carry), 3/16 below-left, 5/16 below,
                     1/16 below-right *)
                  set "carry" ((v "e" *: i 7) /: i 16);
                  st8 (Data.elt8 "dt_nerr" (v "x"))
                    (ld8 (Data.elt8 "dt_nerr" (v "x")) +: ((v "e" *: i 3) /: i 16));
                  st8 (Data.elt8 "dt_nerr" (v "x" +: i 1))
                    (ld8 (Data.elt8 "dt_nerr" (v "x" +: i 1)) +: ((v "e" *: i 5) /: i 16));
                  st8 (Data.elt8 "dt_nerr" (v "x" +: i 2))
                    (ld8 (Data.elt8 "dt_nerr" (v "x" +: i 2)) +: (v "e" /: i 16));
                ];
              for_ "x" (i 0) (i (w + 2))
                [
                  st8 (Data.elt8 "dt_err" (v "x")) (ld8 (Data.elt8 "dt_nerr" (v "x")));
                  st8 (Data.elt8 "dt_nerr" (v "x")) (i 0);
                ];
            ];
          ret (v "black");
        ];
    ]

(* rotate: 90-degree rotation of a 1-bit-per-pixel bitmap, word at a time. *)
let rotate =
  let dim = 128 in
  (* dim x dim bits stored row-major as bytes *)
  Ast.program
    ~globals:
      [ Data.bytes_ "ro_src" (dim * dim / 8); Ast.global "ro_dst" (dim * dim / 8) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "y" (i 0) (i dim)
            [
              for_ "x" (i 0) (i dim)
                [
                  set "bit"
                    ((ld1 (Data.elt1 "ro_src" (((v "y" *: i dim) +: v "x") >>: i 3))
                     >>: (v "x" &: i 7))
                    &: i 1);
                  if_ (v "bit" =: i 1)
                    [
                      set "nx" (i (dim - 1) -: v "y");
                      set "pos" ((v "x" *: i dim) +: v "nx");
                      st1 (Data.elt1 "ro_dst" (v "pos" >>: i 3))
                        (ld1 (Data.elt1 "ro_dst" (v "pos" >>: i 3))
                        |: (i 1 <<: (v "nx" &: i 7)));
                    ]
                    [];
                ];
            ];
          set "acc" (i 0);
          for_ "k" (i 0) (i (dim * dim / 8))
            [ set "acc" (v "acc" +: (ld1 (Data.elt1 "ro_dst" (v "k")) *: (v "k" &: i 15))) ];
          ret (v "acc");
        ];
    ]

(* text: text parsing state machine — word/line/sentence counting with
   character-class branches. *)
let text =
  let n = 16384 in
  Ast.program
    ~globals:
      [
        Data.ints_f "tx_in" n (fun k ->
            (* synthetic text: letters, spaces, punctuation, newlines *)
            let r = (k * 1103515245 + 12345) land 0xFFFF in
            if r mod 100 < 15 then 32L       (* space *)
            else if r mod 100 < 17 then 10L  (* newline *)
            else if r mod 100 < 20 then 46L  (* period *)
            else Int64.of_int (97 + (r mod 26)));
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "words" (i 0);
          set "lines" (i 0);
          set "sents" (i 0);
          set "inword" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "c" (ld8 (Data.elt8 "tx_in" (v "k")));
              if_ ((v "c" >=: i 97) &: (v "c" <=: i 122))
                [
                  if_ (v "inword" =: i 0)
                    [ set "inword" (i 1); set "words" (v "words" +: i 1) ]
                    [];
                ]
                [
                  set "inword" (i 0);
                  if_ (v "c" =: i 10)
                    [ set "lines" (v "lines" +: i 1) ]
                    [ if_ (v "c" =: i 46) [ set "sents" (v "sents" +: i 1) ] [] ];
                ];
            ];
          ret ((v "words" <<: i 28) ^: (v "lines" <<: i 14) ^: v "sents");
        ];
    ]
