(* SPEC CPU2000 integer proxy benchmarks (Table 2: all but gap and the C++
   codes).  Each reproduces the original's dominant computational idiom —
   what drives block size, prediction behaviour and memory traffic — at a
   SimPoint-like scale. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* bzip2: move-to-front transform + run-length coding over a block. *)
let bzip2 =
  let n = 16384 in
  Ast.program
    ~globals:[ Data.bytes_ "bz_in" n; Data.ints_f "bz_mtf" 256 Int64.of_int ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          set "run" (i 0);
          set "lastsym" (i (-1));
          for_ "k" (i 0) (i n)
            [
              set "c" (ld1 (Data.elt1 "bz_in" (v "k")));
              (* find c's position in the MTF list *)
              set "pos" (i 0);
              while_ (ld8 (Data.elt8 "bz_mtf" (v "pos")) <>: v "c")
                [ set "pos" (v "pos" +: i 1) ];
              (* shift everything before it down one *)
              set "j" (v "pos");
              while_ (v "j" >: i 0)
                [
                  st8 (Data.elt8 "bz_mtf" (v "j")) (ld8 (Data.elt8 "bz_mtf" (v "j" -: i 1)));
                  set "j" (v "j" -: i 1);
                ];
              st8 (Data.elt8 "bz_mtf" (i 0)) (v "c");
              (* run-length encode the MTF output *)
              if_ (v "pos" =: v "lastsym")
                [ set "run" (v "run" +: i 1) ]
                [
                  set "acc" (v "acc" +: (v "run" *: i 3) +: v "pos");
                  set "run" (i 0);
                  set "lastsym" (v "pos");
                ];
            ];
          ret (v "acc");
        ];
    ]

(* crafty: bitboard move generation and popcount-heavy evaluation with a
   small alpha-beta-ish scan. *)
let crafty =
  let positions = 2048 in
  Ast.program
    ~globals:
      [
        Data.ints_f "cr_occ" positions (fun k ->
            Int64.logxor
              (Int64.mul (Int64.of_int (k + 1)) 0x9E3779B97F4A7C15L)
              0x0F0F00FF00F0FF00L);
        Data.ints_f "cr_own" positions (fun k ->
            Int64.mul (Int64.of_int (k + 7)) 0xC2B2AE3D27D4EB4FL);
      ]
    [
      Ast.func "popcount" ~params:[ ("x", Ty.I64) ] ~ret:Ty.I64
        [
          set "c" (i 0);
          while_ (v "x" <>: i 0)
            [ set "c" (v "c" +: i 1); set "x" (v "x" &: (v "x" -: i 1)) ];
          ret (v "c");
        ];
      Ast.func "mobility" ~params:[ ("occ", Ty.I64); ("own", Ty.I64) ] ~ret:Ty.I64
        [
          (* sliding attacks along files via shifts until blocked (4 rays
             approximated with shift-mask chains) *)
          set "att" (i 0);
          set "ray" (v "own");
          for_ "s" (i 0) (i 6)
            [
              set "ray" ((v "ray" <<: i 8) &: Ast.Un (Ast.Not, v "occ"));
              set "att" (v "att" |: v "ray");
            ];
          set "ray" (v "own");
          for_ "s" (i 0) (i 6)
            [
              set "ray" ((v "ray" >>: i 8) &: Ast.Un (Ast.Not, v "occ"));
              set "att" (v "att" |: v "ray");
            ];
          ret (call "popcount" [ v "att" ]);
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          set "best" (i (-1000000));
          set "acc" (i 0);
          for_ "p" (i 0) (i positions)
            [
              set "occ" (ld8 (Data.elt8 "cr_occ" (v "p")));
              set "own" (v "occ" &: ld8 (Data.elt8 "cr_own" (v "p")));
              set "score"
                ((call "mobility" [ v "occ"; v "own" ] *: i 4)
                +: call "popcount" [ v "own" ]);
              if_ (v "score" >: v "best") [ set "best" (v "score") ] [];
              set "acc" (v "acc" +: v "score");
            ];
          ret ((v "best" <<: i 32) ^: v "acc");
        ];
    ]

(* gcc: expression-DAG value numbering — hash-table driven CSE over a
   stream of three-address tuples (pointer/hash heavy, irregular). *)
let gcc =
  let nops = 6144 and table = 1024 in
  Ast.program
    ~globals:
      [
        Data.ints "gc_op" ~lo:0 ~hi:3 nops;
        Data.ints "gc_a" ~lo:0 ~hi:255 nops;
        Data.ints "gc_b" ~lo:0 ~hi:255 nops;
        Data.zeros "gc_tab_key" table;
        Data.zeros "gc_tab_val" table;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "next_vn" (i 1);
          set "hits" (i 0);
          set "acc" (i 0);
          for_ "k" (i 0) (i nops)
            [
              set "key"
                ((ld8 (Data.elt8 "gc_op" (v "k")) <<: i 20)
                |: (ld8 (Data.elt8 "gc_a" (v "k")) <<: i 10)
                |: ld8 (Data.elt8 "gc_b" (v "k")));
              set "h" (((v "key" *: i 2654435761) >>: i 16) &: i (table - 1));
              (* linear probe *)
              set "found" (i 0);
              set "probe" (i 0);
              while_ ((v "probe" <: i 8) &: (v "found" =: i 0))
                [
                  set "slot" ((v "h" +: v "probe") &: i (table - 1));
                  set "kk" (ld8 (Data.elt8 "gc_tab_key" (v "slot")));
                  if_ (v "kk" =: v "key" +: i 1)
                    [
                      set "found" (i 1);
                      set "hits" (v "hits" +: i 1);
                      set "acc" (v "acc" +: ld8 (Data.elt8 "gc_tab_val" (v "slot")));
                    ]
                    [
                      if_ (v "kk" =: i 0)
                        [
                          st8 (Data.elt8 "gc_tab_key" (v "slot")) (v "key" +: i 1);
                          st8 (Data.elt8 "gc_tab_val" (v "slot")) (v "next_vn");
                          set "next_vn" (v "next_vn" +: i 1);
                          set "found" (i 1);
                        ]
                        [ set "probe" (v "probe" +: i 1) ];
                    ];
                ];
            ];
          ret ((v "hits" <<: i 24) ^: (v "next_vn" <<: i 12) ^: (v "acc" &: i 4095));
        ];
    ]

(* gzip: LZ77 with hash-chain match search over a byte window. *)
let gzip =
  let n = 12288 and window = 1024 in
  Ast.program
    ~globals:
      [
        Data.bytes_ "gz_in" n;
        Data.ints_f "gz_head" 256 (fun _ -> -1L);
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "outbits" (i 0);
          set "pos" (i 0);
          while_ (v "pos" <: i (n - 4))
            [
              set "h" (ld1 (Data.elt1 "gz_in" (v "pos")));
              set "cand" (ld8 (Data.elt8 "gz_head" (v "h")));
              st8 (Data.elt8 "gz_head" (v "h")) (v "pos");
              set "bestlen" (i 0);
              if_ ((v "cand" >=: i 0) &: (v "pos" -: v "cand" <: i window))
                [
                  set "len" (i 0);
                  while_
                    ((v "len" <: i 32)
                    &: (v "pos" +: v "len" <: i n)
                    &: (ld1 (Data.elt1 "gz_in" (v "cand" +: v "len"))
                       =: ld1 (Data.elt1 "gz_in" (v "pos" +: v "len"))))
                    [ set "len" (v "len" +: i 1) ];
                  set "bestlen" (v "len");
                ]
                [];
              if_ (v "bestlen" >: i 2)
                [
                  set "outbits" (v "outbits" +: i 20);
                  set "pos" (v "pos" +: v "bestlen");
                ]
                [
                  set "outbits" (v "outbits" +: i 9);
                  set "pos" (v "pos" +: i 1);
                ];
            ];
          ret (v "outbits");
        ];
    ]

(* mcf: network-simplex flavoured relaxation — pointer chasing over arc
   lists with cost comparisons (memory latency bound). *)
let mcf =
  let nodes = 1024 and arcs = 4096 and iters = 6 in
  Ast.program
    ~globals:
      [
        Data.ints_f "mc_tail" arcs (fun k -> Int64.of_int ((k * 131) mod nodes));
        Data.ints_f "mc_head" arcs (fun k -> Int64.of_int ((k * 197 + 13) mod nodes));
        Data.ints "mc_cost" ~lo:1 ~hi:99 arcs;
        Data.zeros "mc_pot" nodes;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "updates" (i 0);
          for_ "it" (i 0) (i iters)
            [
              for_ "a" (i 0) (i arcs)
                [
                  set "t" (ld8 (Data.elt8 "mc_tail" (v "a")));
                  set "hd" (ld8 (Data.elt8 "mc_head" (v "a")));
                  set "red"
                    (ld8 (Data.elt8 "mc_cost" (v "a"))
                    +: ld8 (Data.elt8 "mc_pot" (v "t"))
                    -: ld8 (Data.elt8 "mc_pot" (v "hd")));
                  if_ (v "red" <: i 0)
                    [
                      st8 (Data.elt8 "mc_pot" (v "hd"))
                        (ld8 (Data.elt8 "mc_pot" (v "hd")) +: v "red");
                      set "updates" (v "updates" +: i 1);
                    ]
                    [];
                ];
            ];
          set "acc" (i 0);
          for_ "k" (i 0) (i nodes)
            [ set "acc" (v "acc" +: ld8 (Data.elt8 "mc_pot" (v "k"))) ];
          ret ((v "updates" <<: i 24) ^: (v "acc" &: Ast.Int 0xFFFFFFL));
        ];
    ]

(* parser: dictionary-driven segmentation by dynamic programming (word
   lookups with data-dependent inner loops). *)
let parser =
  let n = 2048 in
  Ast.program
    ~globals:
      [
        Data.ints_f "pa_text" n (fun k ->
            Int64.of_int (97 + ((k * k * 31 + k) mod 26)));
        Data.zeros "pa_best" (n + 1);
      ]
    [
      (* a word is "in the dictionary" if its letters satisfy a running
         congruence — cheap but data dependent *)
      Ast.func "is_word" ~params:[ ("s", Ty.I64); ("len", Ty.I64) ] ~ret:Ty.I64
        [
          set "h" (i 0);
          for_ "k" (i 0) (v "len")
            [ set "h" ((v "h" *: i 31) +: ld8 (Data.elt8 "pa_text" (v "s" +: v "k"))) ];
          ret (Ast.Bin (Ast.Eq, v "h" %: i 7, i 3));
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          st8 (Data.elt8 "pa_best" (i 0)) (i 1);
          for_ "pos" (i 1) (i (n + 1))
            [ st8 (Data.elt8 "pa_best" (v "pos")) (i 0) ];
          for_ "pos" (i 0) (i n)
            [
              if_ (ld8 (Data.elt8 "pa_best" (v "pos")) >: i 0)
                [
                  for_ "len" (i 1) (i 7)
                    [
                      if_ (v "pos" +: v "len" <=: i n)
                        [
                          if_ (call "is_word" [ v "pos"; v "len" ] =: i 1)
                            [
                              st8 (Data.elt8 "pa_best" (v "pos" +: v "len"))
                                (ld8 (Data.elt8 "pa_best" (v "pos" +: v "len")) +: i 1);
                            ]
                            [];
                        ]
                        [];
                    ];
                ]
                [];
            ];
          set "acc" (i 0);
          for_ "k" (i 0) (i (n + 1))
            [ set "acc" (v "acc" +: (ld8 (Data.elt8 "pa_best" (v "k")) *: (v "k" &: i 63))) ];
          ret (v "acc");
        ];
    ]

(* perlbmk: bytecode interpreter — a dispatch loop over a synthetic opcode
   stream with a small operand stack (indirect-control heavy). *)
let perlbmk =
  let prog_len = 4096 and steps = 20000 in
  Ast.program
    ~globals:
      [
        Data.ints "pl_code" ~lo:0 ~hi:7 prog_len;
        Data.ints "pl_arg" ~lo:1 ~hi:255 prog_len;
        Data.zeros "pl_stack" 64;
        Data.zeros "pl_vars" 26;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "pc" (i 0);
          set "sp" (i 0);
          set "executed" (i 0);
          set "acc" (i 0);
          while_ (v "executed" <: i steps)
            [
              set "op" (ld8 (Data.elt8 "pl_code" (v "pc")));
              set "arg" (ld8 (Data.elt8 "pl_arg" (v "pc")));
              set "pc" ((v "pc" +: i 1) %: i prog_len);
              set "executed" (v "executed" +: i 1);
              if_ (v "op" =: i 0)
                [ (* push constant *)
                  if_ (v "sp" <: i 63)
                    [ st8 (Data.elt8 "pl_stack" (v "sp")) (v "arg");
                      set "sp" (v "sp" +: i 1) ]
                    [];
                ]
                [ if_ (v "op" =: i 1)
                    [ (* add top two *)
                      if_ (v "sp" >=: i 2)
                        [
                          set "sp" (v "sp" -: i 1);
                          st8 (Data.elt8 "pl_stack" (v "sp" -: i 1))
                            (ld8 (Data.elt8 "pl_stack" (v "sp" -: i 1))
                            +: ld8 (Data.elt8 "pl_stack" (v "sp")));
                        ]
                        [];
                    ]
                    [ if_ (v "op" =: i 2)
                        [ (* store to variable *)
                          if_ (v "sp" >=: i 1)
                            [
                              set "sp" (v "sp" -: i 1);
                              st8 (Data.elt8 "pl_vars" (v "arg" %: i 26))
                                (ld8 (Data.elt8 "pl_stack" (v "sp")));
                            ]
                            [];
                        ]
                        [ if_ (v "op" =: i 3)
                            [ (* load variable *)
                              if_ (v "sp" <: i 63)
                                [
                                  st8 (Data.elt8 "pl_stack" (v "sp"))
                                    (ld8 (Data.elt8 "pl_vars" (v "arg" %: i 26)));
                                  set "sp" (v "sp" +: i 1);
                                ]
                                [];
                            ]
                            [ if_ (v "op" =: i 4)
                                [ (* conditional skip *)
                                  if_
                                    ((v "sp" >=: i 1)
                                    &: (ld8 (Data.elt8 "pl_stack" (v "sp" -: i 1)) &: i 1))
                                    [ set "pc" ((v "pc" +: v "arg") %: i prog_len) ]
                                    [];
                                ]
                                [ if_ (v "op" =: i 5)
                                    [ (* xor-fold top *)
                                      if_ (v "sp" >=: i 1)
                                        [
                                          st8 (Data.elt8 "pl_stack" (v "sp" -: i 1))
                                            (ld8 (Data.elt8 "pl_stack" (v "sp" -: i 1))
                                            ^: v "arg");
                                        ]
                                        [];
                                    ]
                                    [ (* ops 6,7: accumulate and pop *)
                                      if_ (v "sp" >=: i 1)
                                        [
                                          set "sp" (v "sp" -: i 1);
                                          set "acc"
                                            (v "acc"
                                            +: ld8 (Data.elt8 "pl_stack" (v "sp")));
                                        ]
                                        [];
                                    ];
                                ];
                            ];
                        ];
                    ];
                ];
            ];
          set "vsum" (i 0);
          for_ "k" (i 0) (i 26)
            [ set "vsum" (v "vsum" +: ld8 (Data.elt8 "pl_vars" (v "k"))) ];
          ret ((v "acc" <<: i 16) ^: (v "vsum" &: Ast.Int 0xFFFFL));
        ];
    ]

(* twolf: simulated-annealing placement — swap proposals with cost deltas
   and an LCG acceptance test. *)
let twolf =
  let cells = 256 and moves = 8000 in
  Ast.program
    ~globals:
      [
        Data.ints_f "tw_x" cells (fun k -> Int64.of_int (k mod 16));
        Data.ints_f "tw_y" cells (fun k -> Int64.of_int (k / 16));
        Data.ints_f "tw_net" (cells * 2) (fun k -> Int64.of_int ((k * 37 + 11) mod cells));
      ]
    [
      Ast.func "wirelen" ~params:[ ("c", Ty.I64) ] ~ret:Ty.I64
        [
          set "total" (i 0);
          (* two nets per cell *)
          for_ "j" (i 0) (i 2)
            [
              set "o" (ld8 (Data.elt8 "tw_net" ((v "c" *: i 2) +: v "j")));
              set "dx" (ld8 (Data.elt8 "tw_x" (v "c")) -: ld8 (Data.elt8 "tw_x" (v "o")));
              set "dy" (ld8 (Data.elt8 "tw_y" (v "c")) -: ld8 (Data.elt8 "tw_y" (v "o")));
              if_ (v "dx" <: i 0) [ set "dx" (i 0 -: v "dx") ] [];
              if_ (v "dy" <: i 0) [ set "dy" (i 0 -: v "dy") ] [];
              set "total" (v "total" +: v "dx" +: v "dy");
            ];
          ret (v "total");
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          set "seed" (i 12345);
          set "accepted" (i 0);
          set "cost" (i 0);
          for_ "m" (i 0) (i moves)
            [
              set "seed" (((v "seed" *: i 1103515245) +: i 12345) &: Ast.Int 0x7FFFFFFFL);
              set "a" (v "seed" %: i cells);
              set "seed" (((v "seed" *: i 1103515245) +: i 12345) &: Ast.Int 0x7FFFFFFFL);
              set "b" (v "seed" %: i cells);
              set "before" (call "wirelen" [ v "a" ] +: call "wirelen" [ v "b" ]);
              (* swap *)
              set "tx" (ld8 (Data.elt8 "tw_x" (v "a")));
              set "ty" (ld8 (Data.elt8 "tw_y" (v "a")));
              st8 (Data.elt8 "tw_x" (v "a")) (ld8 (Data.elt8 "tw_x" (v "b")));
              st8 (Data.elt8 "tw_y" (v "a")) (ld8 (Data.elt8 "tw_y" (v "b")));
              st8 (Data.elt8 "tw_x" (v "b")) (v "tx");
              st8 (Data.elt8 "tw_y" (v "b")) (v "ty");
              set "after" (call "wirelen" [ v "a" ] +: call "wirelen" [ v "b" ]);
              set "delta" (v "after" -: v "before");
              (* accept improvements and occasional uphill moves *)
              if_ ((v "delta" <: i 0) |: ((v "seed" &: i 31) =: i 7))
                [ set "accepted" (v "accepted" +: i 1); set "cost" (v "cost" +: v "delta") ]
                [
                  (* revert *)
                  set "tx" (ld8 (Data.elt8 "tw_x" (v "a")));
                  set "ty" (ld8 (Data.elt8 "tw_y" (v "a")));
                  st8 (Data.elt8 "tw_x" (v "a")) (ld8 (Data.elt8 "tw_x" (v "b")));
                  st8 (Data.elt8 "tw_y" (v "a")) (ld8 (Data.elt8 "tw_y" (v "b")));
                  st8 (Data.elt8 "tw_x" (v "b")) (v "tx");
                  st8 (Data.elt8 "tw_y" (v "b")) (v "ty");
                ];
            ];
          ret ((v "accepted" <<: i 20) ^: (v "cost" &: Ast.Int 0xFFFFFL));
        ];
    ]

(* vortex: in-memory object database — keyed record insertion and lookup
   over bucketed tables (call + store heavy). *)
let vortex =
  let ops = 4096 and buckets = 256 and cap = 8 in
  Ast.program
    ~globals:
      [
        Data.ints "vx_key" ~lo:0 ~hi:65535 ops;
        Data.zeros "vx_count" buckets;
        Data.zeros "vx_store" (buckets * cap);
      ]
    [
      Ast.func "bucket_insert" ~params:[ ("key", Ty.I64) ] ~ret:Ty.I64
        [
          set "b" (v "key" &: i (buckets - 1));
          set "cnt" (ld8 (Data.elt8 "vx_count" (v "b")));
          if_ (v "cnt" <: i cap)
            [
              st8 (Data.elt8 "vx_store" ((v "b" *: i cap) +: v "cnt")) (v "key");
              st8 (Data.elt8 "vx_count" (v "b")) (v "cnt" +: i 1);
              ret (i 1);
            ]
            [];
          ret (i 0);
        ];
      Ast.func "bucket_find" ~params:[ ("key", Ty.I64) ] ~ret:Ty.I64
        [
          set "b" (v "key" &: i (buckets - 1));
          set "cnt" (ld8 (Data.elt8 "vx_count" (v "b")));
          for_ "j" (i 0) (v "cnt")
            [
              if_ (ld8 (Data.elt8 "vx_store" ((v "b" *: i cap) +: v "j")) =: v "key")
                [ ret (v "j" +: i 1) ]
                [];
            ];
          ret (i 0);
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          set "inserted" (i 0);
          set "found" (i 0);
          for_ "k" (i 0) (i ops)
            [
              set "key" (ld8 (Data.elt8 "vx_key" (v "k")));
              if_ (v "k" &: i 1)
                [ set "found" (v "found" +: call "bucket_find" [ v "key" ]) ]
                [ set "inserted" (v "inserted" +: call "bucket_insert" [ v "key" ]) ];
            ];
          ret ((v "inserted" <<: i 24) ^: v "found");
        ];
    ]

(* vpr: maze routing — BFS wavefront expansion over a grid with
   obstruction tests. *)
let vpr =
  let dim = 48 and routes = 24 in
  Ast.program
    ~globals:
      [
        Data.ints_f "vp_block" (dim * dim) (fun k ->
            if (k * 2654435761) land 0xFF < 40 then 1L else 0L);
        Data.zeros "vp_dist" (dim * dim);
        Data.zeros "vp_qx" (dim * dim);
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "r" (i 0) (i routes)
            [
              for_ "k" (i 0) (i (dim * dim)) [ st8 (Data.elt8 "vp_dist" (v "k")) (i (-1)) ];
              set "src" ((v "r" *: i 97) %: i (dim * dim));
              set "dst" ((v "r" *: i 211 +: i 31) %: i (dim * dim));
              st8 (Data.elt8 "vp_dist" (v "src")) (i 0);
              st8 (Data.elt8 "vp_qx" (i 0)) (v "src");
              set "head" (i 0);
              set "tail" (i 1);
              while_ (v "head" <: v "tail")
                [
                  set "cur" (ld8 (Data.elt8 "vp_qx" (v "head")));
                  set "head" (v "head" +: i 1);
                  set "d" (ld8 (Data.elt8 "vp_dist" (v "cur")));
                  set "cx" (v "cur" %: i dim);
                  set "cy" (v "cur" /: i dim);
                  (* four neighbours with bounds + obstruction checks *)
                  for_ "dir" (i 0) (i 4)
                    [
                      set "nx" (v "cx");
                      set "ny" (v "cy");
                      if_ (v "dir" =: i 0) [ set "nx" (v "cx" +: i 1) ] [];
                      if_ (v "dir" =: i 1) [ set "nx" (v "cx" -: i 1) ] [];
                      if_ (v "dir" =: i 2) [ set "ny" (v "cy" +: i 1) ] [];
                      if_ (v "dir" =: i 3) [ set "ny" (v "cy" -: i 1) ] [];
                      if_
                        ((v "nx" >=: i 0) &: (v "nx" <: i dim) &: (v "ny" >=: i 0)
                        &: (v "ny" <: i dim))
                        [
                          set "n" ((v "ny" *: i dim) +: v "nx");
                          if_
                            ((ld8 (Data.elt8 "vp_dist" (v "n")) <: i 0)
                            &: (ld8 (Data.elt8 "vp_block" (v "n")) =: i 0))
                            [
                              st8 (Data.elt8 "vp_dist" (v "n")) (v "d" +: i 1);
                              st8 (Data.elt8 "vp_qx" (v "tail")) (v "n");
                              set "tail" (v "tail" +: i 1);
                            ]
                            [];
                        ]
                        [];
                    ];
                ];
              set "acc" (v "acc" +: ld8 (Data.elt8 "vp_dist" (v "dst")) +: v "tail");
            ];
          ret (v "acc");
        ];
    ]
