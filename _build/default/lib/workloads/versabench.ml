(* The three VersaBench bit/stream benchmarks the paper hand-optimizes
   (Table 2): an FM radio pipeline, an 802.11a convolutional encoder, and
   an 8b/10b line encoder. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* fmradio: four-band FIR filter bank over a sampled signal, followed by a
   discriminator (difference demodulation) and energy accumulation. *)
let fmradio =
  let n = 1024 and taps = 16 and bands = 4 in
  Ast.program
    ~globals:
      [
        Data.floats "fm_sig" ~scale:2.0 n;
        Data.floats_f "fm_coef" (bands * taps) (fun k ->
            let b = k / taps and t = k mod taps in
            0.05 +. (0.01 *. float_of_int b) -. (0.002 *. float_of_int t));
        Data.zeros "fm_out" bands;
      ]
    [
      Ast.func "band_energy" ~params:[ ("band", Ty.I64) ] ~ret:Ty.F64
        [
          set "energy" (f 0.0);
          set "prev" (f 0.0);
          for_ "s" (i 0) (i (n - taps))
            [
              set "acc" (f 0.0);
              for_ "t" (i 0) (i taps)
                [
                  set "acc"
                    (v "acc"
                    +.: (ldf (Data.elt8 "fm_sig" (v "s" +: v "t"))
                        *.: ldf (Data.elt8 "fm_coef" ((v "band" *: i taps) +: v "t"))));
                ];
              (* discriminator: difference from the previous filtered sample *)
              set "d" (v "acc" -.: v "prev");
              set "prev" (v "acc");
              set "energy" (v "energy" +.: (v "d" *.: v "d"));
            ];
          ret (v "energy");
        ];
      Ast.func "main" ~ret:Ty.F64
        [
          set "total" (f 0.0);
          for_ "b" (i 0) (i bands)
            [
              set "e" (call "band_energy" [ v "b" ]);
              stf (Data.elt8 "fm_out" (v "b")) (v "e");
              set "total" (v "total" +.: v "e");
            ];
          ret (v "total");
        ];
    ]

(* 802.11a: rate-1/2 K=7 convolutional encoder (generators 0o133, 0o171)
   plus the standard block interleaver's first permutation. *)
let w802_11a =
  let nbits = 4096 in
  Ast.program
    ~globals:
      [
        Data.bytes_ "w11_in" (nbits / 8);
        Ast.global "w11_enc" (2 * nbits);
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "state" (i 0);
          set "outpos" (i 0);
          for_ "k" (i 0) (i nbits)
            [
              set "byte" (ld1 (Data.elt1 "w11_in" (v "k" >>: i 3)));
              set "bit" ((v "byte" >>: (v "k" &: i 7)) &: i 1);
              set "state" (((v "state" <<: i 1) |: v "bit") &: i 127);
              (* parity of state & generator via bit folding *)
              set "g0" (v "state" &: i 0o133);
              set "g0" (v "g0" ^: (v "g0" >>: i 4));
              set "g0" (v "g0" ^: (v "g0" >>: i 2));
              set "g0" ((v "g0" ^: (v "g0" >>: i 1)) &: i 1);
              set "g1" (v "state" &: i 0o171);
              set "g1" (v "g1" ^: (v "g1" >>: i 4));
              set "g1" (v "g1" ^: (v "g1" >>: i 2));
              set "g1" ((v "g1" ^: (v "g1" >>: i 1)) &: i 1);
              st1 (Data.elt1 "w11_enc" (v "outpos")) (v "g0");
              st1 (Data.elt1 "w11_enc" (v "outpos" +: i 1)) (v "g1");
              set "outpos" (v "outpos" +: i 2);
            ];
          (* interleave: checksum the first permutation s = (n/16)*(k mod 16)
             + floor(k/16) over coded bits *)
          set "acc" (i 0);
          set "ncoded" (i (2 * nbits));
          for_ "k" (i 0) (i (2 * nbits))
            [
              set "perm"
                (((v "ncoded" /: i 16) *: (v "k" %: i 16)) +: (v "k" /: i 16));
              set "acc"
                (v "acc" +: (ld1 (Data.elt1 "w11_enc" (v "perm")) <<: (v "k" &: i 15)));
            ];
          ret (v "acc");
        ];
    ]

(* 8b10b: 5b/6b + 3b/4b encoder with running disparity, computed rather
   than table-driven so the control structure (the disparity branches) is
   exercised. *)
let b8b10b =
  let nbytes = 4096 in
  Ast.program
    ~globals:[ Data.bytes_ "b8_in" nbytes ]
    [
      (* imbalance (#ones*2 - width) of the low [w] bits *)
      Ast.func "imbalance" ~params:[ ("x", Ty.I64); ("w", Ty.I64) ] ~ret:Ty.I64
        [
          set "ones" (i 0);
          for_ "b" (i 0) (v "w")
            [ set "ones" (v "ones" +: ((v "x" >>: v "b") &: i 1)) ];
          ret ((v "ones" <<: i 1) -: v "w");
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          set "rd" (i (-1));
          set "acc" (i 0);
          for_ "k" (i 0) (i nbytes)
            [
              set "byte" (ld1 (Data.elt1 "b8_in" (v "k")));
              set "lo5" (v "byte" &: i 31);
              set "hi3" (v "byte" >>: i 5);
              (* 5b/6b: synthesize a 6-bit symbol whose imbalance mirrors the
                 standard's complement rule *)
              set "sym6" ((v "lo5" <<: i 1) |: ((v "lo5" >>: i 4) &: i 1));
              set "d6" (call "imbalance" [ v "sym6"; i 6 ]);
              if_ ((v "rd" >: i 0) &: (v "d6" >: i 0))
                [ set "sym6" (v "sym6" ^: i 63); set "d6" (i 0 -: v "d6") ]
                [
                  if_ ((v "rd" <: i 0) &: (v "d6" <: i 0))
                    [ set "sym6" (v "sym6" ^: i 63); set "d6" (i 0 -: v "d6") ]
                    [];
                ];
              if_ (v "d6" <>: i 0) [ set "rd" (i 0 -: v "rd") ] [];
              (* 3b/4b *)
              set "sym4" ((v "hi3" <<: i 1) |: (v "hi3" &: i 1));
              set "d4" (call "imbalance" [ v "sym4"; i 4 ]);
              if_ ((v "rd" >: i 0) &: (v "d4" >: i 0))
                [ set "sym4" (v "sym4" ^: i 15); set "d4" (i 0 -: v "d4") ]
                [
                  if_ ((v "rd" <: i 0) &: (v "d4" <: i 0))
                    [ set "sym4" (v "sym4" ^: i 15); set "d4" (i 0 -: v "d4") ]
                    [];
                ];
              if_ (v "d4" <>: i 0) [ set "rd" (i 0 -: v "rd") ] [];
              set "acc"
                (v "acc" +: (((v "sym6" <<: i 4) |: v "sym4") *: (v "k" |: i 1)));
            ];
          ret (v "acc" +: v "rd");
        ];
    ]
