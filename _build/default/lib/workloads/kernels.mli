(** The four hand-optimized scientific kernels of the paper (§3, Table 2):
    matrix transpose (ct), convolution (conv), vector add (vadd) and dense
    matrix multiply (matrix).  [vadd_hand_edge] is genuinely hand-written
    EDGE code (the paper hand-placed vadd and matrix), used by the Fig 8
    bandwidth/OPN study. *)

val ct : Trips_tir.Ast.program
val conv : Trips_tir.Ast.program
val vadd : Trips_tir.Ast.program
val matrix : Trips_tir.Ast.program

val matrix_n : int
(** Matrix dimension, for FLOP accounting in the §6 FPC comparison. *)

val vadd_hand_edge : Trips_edge.Block.program
(** Hand-scheduled vadd: eight elements per 128-instruction block, addresses
    streamed through immediate displacements, saturating the four D-cache
    banks as in Fig 8's bandwidth table. *)

val vadd_elems : int
