(* EEMBC automotive/industrial benchmarks (proxy kernels reproducing each
   original's dominant loop, control and memory idiom). *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* a2time: angle-to-time conversion.  Tooth-wheel pulse stream with deeply
   nested if/then/else selecting the firing window — the benchmark the
   paper singles out for heavy predication (§4.1). *)
let a2time =
  let n = 2048 in
  Ast.program
    ~globals:[ Data.ints "a2_pulse" ~lo:1 ~hi:1000 n ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          set "window" (i 0);
          set "last" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "t" (ld8 (Data.elt8 "a2_pulse" (v "k")));
              set "delta" (v "t" -: v "last");
              set "last" (v "t");
              if_ (v "delta" <: i 0)
                [ set "delta" (i 0 -: v "delta") ]
                [];
              if_ (v "delta" <: i 100)
                [
                  if_ (v "window" =: i 0)
                    [ set "window" (i 1); set "acc" (v "acc" +: i 3) ]
                    [ set "acc" (v "acc" +: (v "delta" >>: i 2)) ];
                ]
                [
                  if_ (v "delta" <: i 500)
                    [ set "acc" (v "acc" +: (v "delta" >>: i 4)) ]
                    [ set "window" (i 0); set "acc" (v "acc" +: i 1) ];
                ];
            ];
          ret (v "acc");
        ];
    ]

(* aifftr: fixed-point radix-2 decimation-in-time FFT butterflies with a
   precomputed twiddle approximation (integers scaled by 2^10). *)
let aifftr =
  let n = 256 in
  Ast.program
    ~globals:
      [
        Data.ints "fftr_re" ~lo:(-512) ~hi:512 n;
        Data.ints "fftr_im" ~lo:(-512) ~hi:512 n;
        Data.ints_f "fftr_cos" (n / 2) (fun k ->
            Int64.of_float (1024. *. cos (2. *. Float.pi *. float_of_int k /. float_of_int n)));
        Data.ints_f "fftr_sin" (n / 2) (fun k ->
            Int64.of_float (1024. *. sin (2. *. Float.pi *. float_of_int k /. float_of_int n)));
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "len" (i 2);
          while_ (v "len" <=: i n)
            [
              set "half" (v "len" >>: i 1);
              set "step" (i n /: v "len");
              for_ "blk" (i 0) (i n /: v "len")
                [
                  for_ "j" (i 0) (v "half")
                    [
                      set "p" ((v "blk" *: v "len") +: v "j");
                      set "q" (v "p" +: v "half");
                      set "wr" (ld8 (Data.elt8 "fftr_cos" (v "j" *: v "step")));
                      set "wi" (ld8 (Data.elt8 "fftr_sin" (v "j" *: v "step")));
                      set "qr" (ld8 (Data.elt8 "fftr_re" (v "q")));
                      set "qi" (ld8 (Data.elt8 "fftr_im" (v "q")));
                      set "tr" (((v "wr" *: v "qr") -: (v "wi" *: v "qi")) >>>: i 10);
                      set "ti" (((v "wr" *: v "qi") +: (v "wi" *: v "qr")) >>>: i 10);
                      set "pr" (ld8 (Data.elt8 "fftr_re" (v "p")));
                      set "pi" (ld8 (Data.elt8 "fftr_im" (v "p")));
                      st8 (Data.elt8 "fftr_re" (v "p")) (v "pr" +: v "tr");
                      st8 (Data.elt8 "fftr_im" (v "p")) (v "pi" +: v "ti");
                      st8 (Data.elt8 "fftr_re" (v "q")) (v "pr" -: v "tr");
                      st8 (Data.elt8 "fftr_im" (v "q")) (v "pi" -: v "ti");
                    ];
                ];
              set "len" (v "len" <<: i 1);
            ];
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "acc"
                (v "acc"
                ^: ((ld8 (Data.elt8 "fftr_re" (v "k")) +: ld8 (Data.elt8 "fftr_im" (v "k")))
                   <<: (v "k" &: i 15)));
            ];
          ret (v "acc");
        ];
    ]

(* aifirf: fixed-point FIR over a sensor stream. *)
let aifirf =
  let n = 2048 and taps = 24 in
  Ast.program
    ~globals:
      [
        Data.ints "fir_in" ~lo:(-128) ~hi:127 n;
        Data.ints_f "fir_coef" taps (fun k -> Int64.of_int (13 - k));
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "s" (i 0) (i (n - taps))
            [
              set "y" (i 0);
              for_ "t" (i 0) (i taps)
                [
                  set "y"
                    (v "y"
                    +: (ld8 (Data.elt8 "fir_in" (v "s" +: v "t"))
                       *: ld8 (Data.elt8 "fir_coef" (v "t"))));
                ];
              set "acc" (v "acc" ^: (v "y" <<: (v "s" &: i 7)));
            ];
          ret (v "acc");
        ];
    ]

(* basefp: floating-point fundamentals — Horner polynomials and a
   Newton-Raphson reciprocal per element. *)
let basefp =
  let n = 1024 in
  Ast.program
    ~globals:[ Data.floats "bf_x" ~scale:4.0 n ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "acc" (f 0.0);
          for_ "k" (i 0) (i n)
            [
              set "x" (ldf (Data.elt8 "bf_x" (v "k")) +.: f 0.5);
              set "p" (f 1.0);
              set "p" ((v "p" *.: v "x") +.: f (-0.3));
              set "p" ((v "p" *.: v "x") +.: f 0.7);
              set "p" ((v "p" *.: v "x") +.: f (-1.1));
              (* two Newton steps for 1/x, seeded crudely *)
              set "r" (f 0.3);
              set "r" (v "r" *.: (f 2.0 -.: (v "x" *.: v "r")));
              set "r" (v "r" *.: (f 2.0 -.: (v "x" *.: v "r")));
              set "acc" (v "acc" +.: (v "p" *.: v "r"));
            ];
          ret (v "acc");
        ];
    ]

(* bitmnp: bit manipulation — field insert/extract, reversal, population
   count over a word stream. *)
let bitmnp =
  let n = 2048 in
  Ast.program
    ~globals:[ Data.ints "bm_in" ~lo:0 ~hi:1000000 n ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "x" (ld8 (Data.elt8 "bm_in" (v "k")));
              (* byte reverse of the low 32 bits *)
              set "rv"
                (((v "x" &: i 0xFF) <<: i 24)
                |: (((v "x" >>: i 8) &: i 0xFF) <<: i 16)
                |: (((v "x" >>: i 16) &: i 0xFF) <<: i 8)
                |: ((v "x" >>: i 24) &: i 0xFF));
              (* popcount of the low 16 bits *)
              set "pc" (i 0);
              for_ "b" (i 0) (i 16)
                [ set "pc" (v "pc" +: ((v "x" >>: v "b") &: i 1)) ];
              (* field insert: put pc into bits 20..25 of rv *)
              set "rv" ((v "rv" &: Ast.Int 0xFC0FFFFFL) |: (v "pc" <<: i 20));
              set "acc" (v "acc" +: v "rv");
            ];
          ret (v "acc");
        ];
    ]

(* canrdr: CAN remote-data-request handling — a message queue with
   id-matching and branching per message class. *)
let canrdr =
  let n = 4096 in
  Ast.program
    ~globals:
      [
        Data.ints "can_id" ~lo:0 ~hi:63 n;
        Data.ints "can_len" ~lo:0 ~hi:8 n;
        Data.zeros "can_stat" 64;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "handled" (i 0);
          set "dropped" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "id" (ld8 (Data.elt8 "can_id" (v "k")));
              set "len" (ld8 (Data.elt8 "can_len" (v "k")));
              if_ (v "len" =: i 0)
                [
                  (* remote request: respond if the station is active *)
                  if_ (ld8 (Data.elt8 "can_stat" (v "id")) >: i 2)
                    [ set "handled" (v "handled" +: i 2) ]
                    [ set "dropped" (v "dropped" +: i 1) ];
                ]
                [
                  st8 (Data.elt8 "can_stat" (v "id"))
                    (ld8 (Data.elt8 "can_stat" (v "id")) +: i 1);
                  set "handled" (v "handled" +: i 1);
                ];
            ];
          set "sum" (i 0);
          for_ "s" (i 0) (i 64) [ set "sum" (v "sum" +: ld8 (Data.elt8 "can_stat" (v "s"))) ];
          ret ((v "handled" <<: i 24) ^: (v "dropped" <<: i 12) ^: v "sum");
        ];
    ]

(* idctrn: 8x8 inverse DCT (integer, separable row/column passes). *)
let idctrn =
  let blocks = 48 in
  Ast.program
    ~globals:
      [
        Data.ints "idct_in" ~lo:(-256) ~hi:255 (blocks * 64);
        Data.ints_f "idct_c" 64 (fun k ->
            let u = k / 8 and x = k mod 8 in
            Int64.of_float
              (256.
              *. cos (Float.pi *. float_of_int u *. ((2. *. float_of_int x) +. 1.) /. 16.)));
        Data.zeros "idct_tmp" 64;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "blk" (i 0) (i blocks)
            [
              set "base" (v "blk" *: i 64);
              (* rows *)
              for_ "r" (i 0) (i 8)
                [
                  for_ "x" (i 0) (i 8)
                    [
                      set "s" (i 0);
                      for_ "u" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: (ld8 (Data.elt8 "idct_in" (v "base" +: (v "r" *: i 8) +: v "u"))
                               *: ld8 (Data.elt8 "idct_c" ((v "u" *: i 8) +: v "x"))));
                        ];
                      st8 (Data.elt8 "idct_tmp" ((v "r" *: i 8) +: v "x")) (v "s" >>>: i 8);
                    ];
                ];
              (* columns, accumulated into the checksum *)
              for_ "x" (i 0) (i 8)
                [
                  for_ "y" (i 0) (i 8)
                    [
                      set "s" (i 0);
                      for_ "u" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: (ld8 (Data.elt8 "idct_tmp" ((v "u" *: i 8) +: v "x"))
                               *: ld8 (Data.elt8 "idct_c" ((v "u" *: i 8) +: v "y"))));
                        ];
                      set "acc" (v "acc" +: (v "s" >>>: i 8));
                    ];
                ];
            ];
          ret (v "acc");
        ];
    ]

(* iirflt: cascade of four IIR biquads over a sample stream. *)
let iirflt =
  let n = 4096 in
  Ast.program
    ~globals:[ Data.floats "iir_in" ~scale:2.0 n ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "acc" (f 0.0);
          (* per-stage delay elements *)
          set "z11" (f 0.0); set "z12" (f 0.0);
          set "z21" (f 0.0); set "z22" (f 0.0);
          set "z31" (f 0.0); set "z32" (f 0.0);
          set "z41" (f 0.0); set "z42" (f 0.0);
          for_ "k" (i 0) (i n)
            [
              set "x" (ldf (Data.elt8 "iir_in" (v "k")));
              set "w" (v "x" -.: (f 0.4 *.: v "z11") -.: (f 0.2 *.: v "z12"));
              set "x" ((f 0.3 *.: v "w") +.: (f 0.1 *.: v "z11") +.: (f 0.05 *.: v "z12"));
              set "z12" (v "z11"); set "z11" (v "w");
              set "w" (v "x" -.: (f 0.3 *.: v "z21") -.: (f 0.15 *.: v "z22"));
              set "x" ((f 0.25 *.: v "w") +.: (f 0.12 *.: v "z21"));
              set "z22" (v "z21"); set "z21" (v "w");
              set "w" (v "x" -.: (f 0.2 *.: v "z31") -.: (f 0.1 *.: v "z32"));
              set "x" ((f 0.22 *.: v "w") +.: (f 0.08 *.: v "z32"));
              set "z32" (v "z31"); set "z31" (v "w");
              set "w" (v "x" -.: (f 0.1 *.: v "z41") -.: (f 0.05 *.: v "z42"));
              set "x" ((f 0.2 *.: v "w") +.: (f 0.06 *.: v "z41"));
              set "z42" (v "z41"); set "z41" (v "w");
              set "acc" (v "acc" +.: v "x");
            ];
          ret (v "acc");
        ];
    ]

(* matrix01: small integer matrix arithmetic — multiply and Gaussian
   elimination-style row reduction with pivoting branches. *)
let matrix01 =
  let n = 16 and reps = 12 in
  Ast.program
    ~globals:
      [
        Data.ints "m01_a" ~lo:1 ~hi:9 (n * n);
        Data.ints "m01_b" ~lo:1 ~hi:9 (n * n);
        Data.zeros "m01_c" (n * n);
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "rep" (i 0) (i reps)
            [
              for_ "r" (i 0) (i n)
                [
                  for_ "c" (i 0) (i n)
                    [
                      set "s" (i 0);
                      for_ "k" (i 0) (i n)
                        [
                          set "s"
                            (v "s"
                            +: (ld8 (Data.elt8 "m01_a" ((v "r" *: i n) +: v "k"))
                               *: ld8 (Data.elt8 "m01_b" ((v "k" *: i n) +: v "c"))));
                        ];
                      st8 (Data.elt8 "m01_c" ((v "r" *: i n) +: v "c"))
                        ((v "s" +: v "rep") &: Ast.Int 0xFFFFL);
                    ];
                ];
              (* row reduce with conditional pivot swap flavour *)
              for_ "r" (i 1) (i n)
                [
                  set "p" (ld8 (Data.elt8 "m01_c" (v "r" *: i n)));
                  if_ (v "p" &: i 1)
                    [
                      for_ "c" (i 0) (i n)
                        [
                          st8 (Data.elt8 "m01_c" ((v "r" *: i n) +: v "c"))
                            (ld8 (Data.elt8 "m01_c" ((v "r" *: i n) +: v "c"))
                            -: ld8 (Data.elt8 "m01_c" ((v "r" -: i 1) *: i n +: v "c")));
                        ];
                    ]
                    [];
                ];
              set "acc" (v "acc" ^: ld8 (Data.elt8 "m01_c" (i ((n * n) - 1))));
            ];
          ret (v "acc");
        ];
    ]

(* pntrch: pointer chase through a linked record structure with
   data-dependent exits (serial, like routelookup). *)
let pntrch =
  let nodes = 512 and searches = 400 in
  Ast.program
    ~globals:
      [
        Data.ints_f "pn_next" nodes (fun k -> Int64.of_int ((k * 193 + 71) mod nodes));
        Data.ints "pn_val" ~lo:0 ~hi:4095 nodes;
        Data.ints "pn_key" ~lo:0 ~hi:4095 searches;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "found" (i 0);
          set "steps" (i 0);
          for_ "s" (i 0) (i searches)
            [
              set "key" (ld8 (Data.elt8 "pn_key" (v "s")));
              set "p" (v "s" %: i nodes);
              set "hop" (i 0);
              set "stop" (i 0);
              while_ ((v "hop" <: i 24) &: (v "stop" =: i 0))
                [
                  if_ (ld8 (Data.elt8 "pn_val" (v "p")) =: v "key")
                    [ set "found" (v "found" +: i 1); set "stop" (i 1) ]
                    [
                      set "p" (ld8 (Data.elt8 "pn_next" (v "p")));
                      set "hop" (v "hop" +: i 1);
                    ];
                ];
              set "steps" (v "steps" +: v "hop");
            ];
          ret ((v "found" <<: i 20) ^: v "steps");
        ];
    ]

(* puwmod: pulse-width modulation — counter/compare state machine with
   mode switching. *)
let puwmod =
  let n = 8192 in
  Ast.program
    ~globals:[ Data.ints "puw_duty" ~lo:1 ~hi:99 64 ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "counter" (i 0);
          set "out" (i 0);
          set "edges" (i 0);
          set "level" (i 0);
          for_ "t" (i 0) (i n)
            [
              set "duty" (ld8 (Data.elt8 "puw_duty" ((v "t" >>: i 7) &: i 63)));
              set "counter" (v "counter" +: i 1);
              if_ (v "counter" >=: i 100) [ set "counter" (i 0) ] [];
              set "new" (Ast.Bin (Ast.Lt, v "counter", v "duty"));
              if_ (v "new" <>: v "level")
                [ set "edges" (v "edges" +: i 1); set "level" (v "new") ]
                [];
              set "out" (v "out" +: v "level");
            ];
          ret ((v "edges" <<: i 20) ^: v "out");
        ];
    ]

(* rspeed: road-speed calculation — a sequential conditional state machine
   (the paper notes its lack of exploitable parallelism). *)
let rspeed =
  let n = 4096 in
  Ast.program
    ~globals:[ Data.ints "rs_ticks" ~lo:10 ~hi:500 n ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "speed" (i 0);
          set "filt" (i 0);
          set "gear" (i 1);
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "t" (ld8 (Data.elt8 "rs_ticks" (v "k")));
              set "speed" (i 360000 /: v "t");
              (* exponential smoothing in integers *)
              set "filt" (((v "filt" *: i 7) +: v "speed") >>: i 3);
              if_ (v "filt" >: i 9000)
                [ if_ (v "gear" <: i 6) [ set "gear" (v "gear" +: i 1) ] [] ]
                [
                  if_ (v "filt" <: i 3000)
                    [ if_ (v "gear" >: i 1) [ set "gear" (v "gear" -: i 1) ] [] ]
                    [];
                ];
              set "acc" (v "acc" +: (v "filt" *: v "gear"));
            ];
          ret (v "acc");
        ];
    ]

(* tblook: table lookup with linear interpolation between breakpoints. *)
let tblook =
  let n = 4096 and tbl = 64 in
  Ast.program
    ~globals:
      [
        Data.ints "tb_x" ~lo:0 ~hi:6300 n;
        Data.ints_f "tb_brk" tbl (fun k -> Int64.of_int (k * 100));
        Data.ints_f "tb_val" tbl (fun k -> Int64.of_int ((k * k * 3) mod 10000));
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "x" (ld8 (Data.elt8 "tb_x" (v "k")));
              set "idx" (v "x" /: i 100);
              if_ (v "idx" >=: i (tbl - 1)) [ set "idx" (i (tbl - 2)) ] [];
              set "x0" (ld8 (Data.elt8 "tb_brk" (v "idx")));
              set "y0" (ld8 (Data.elt8 "tb_val" (v "idx")));
              set "y1" (ld8 (Data.elt8 "tb_val" (v "idx" +: i 1)));
              set "y" (v "y0" +: (((v "y1" -: v "y0") *: (v "x" -: v "x0")) /: i 100));
              set "acc" (v "acc" +: v "y");
            ];
          ret (v "acc");
        ];
    ]

(* ttsprk: tooth-to-spark — combines angle decoding and table-driven
   advance with mode branches. *)
let ttsprk =
  let n = 3072 in
  Ast.program
    ~globals:
      [
        Data.ints "tt_angle" ~lo:0 ~hi:719 n;
        Data.ints_f "tt_adv" 72 (fun k -> Int64.of_int ((k * 7) mod 60));
        Data.ints "tt_load" ~lo:0 ~hi:99 n;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "sparks" (i 0);
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [
              set "ang" (ld8 (Data.elt8 "tt_angle" (v "k")));
              set "load" (ld8 (Data.elt8 "tt_load" (v "k")));
              set "adv" (ld8 (Data.elt8 "tt_adv" (v "ang" /: i 10)));
              if_ (v "load" >: i 80)
                [ set "adv" (v "adv" -: (v "load" >>: i 4)) ]
                [ if_ (v "load" <: i 20) [ set "adv" (v "adv" +: i 2) ] [] ];
              set "fire" ((v "ang" +: v "adv") %: i 720);
              if_ (v "fire" <: i 90) [ set "sparks" (v "sparks" +: i 1) ] [];
              set "acc" (v "acc" +: v "fire");
            ];
          ret ((v "sparks" <<: i 24) ^: v "acc");
        ];
    ]
