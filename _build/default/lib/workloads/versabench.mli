(** The three VersaBench bit/stream benchmarks of Table 2. *)

val fmradio : Trips_tir.Ast.program
(** FIR filter bank + difference discriminator over a sampled signal. *)

val w802_11a : Trips_tir.Ast.program
(** Rate-1/2 K=7 convolutional encoder plus block interleaving. *)

val b8b10b : Trips_tir.Ast.program
(** 8b/10b line encoder with running-disparity control flow. *)
