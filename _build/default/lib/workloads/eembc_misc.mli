(** EEMBC consumer, networking and office proxy benchmarks (11 of the 30
    in Table 2). *)

val cjpeg : Trips_tir.Ast.program
val djpeg : Trips_tir.Ast.program
val rgbcmy : Trips_tir.Ast.program
val rgbyiq : Trips_tir.Ast.program
val ospf : Trips_tir.Ast.program
val pktflow : Trips_tir.Ast.program
val routelookup : Trips_tir.Ast.program
val bezier : Trips_tir.Ast.program
val dither : Trips_tir.Ast.program
val rotate : Trips_tir.Ast.program
val text : Trips_tir.Ast.program
