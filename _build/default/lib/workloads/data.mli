(** Deterministic input-data construction for the benchmark suite.

    Input arrays are baked into the program image as initialized globals
    (zero setup instructions), generated from fixed seeds so every pipeline
    sees identical data.  Address helpers keep the TIR benchmark sources
    readable. *)

val ints : string -> ?seed:int64 -> ?lo:int -> ?hi:int -> int -> Trips_tir.Ast.global
(** [ints name n] — n 64-bit integers uniform in [lo,hi] (default 0..255). *)

val ints_f : string -> int -> (int -> int64) -> Trips_tir.Ast.global
(** Initialized from an explicit generator function. *)

val floats : string -> ?seed:int64 -> ?scale:float -> int -> Trips_tir.Ast.global
(** n doubles uniform in [0, scale) (default scale 1.0). *)

val floats_f : string -> int -> (int -> float) -> Trips_tir.Ast.global

val bytes_ : string -> ?seed:int64 -> int -> Trips_tir.Ast.global
(** n random bytes. *)

val zeros : string -> int -> Trips_tir.Ast.global
(** n zeroed 64-bit words (output buffers). *)

(** TIR address expressions for element access. *)
val elt8 : string -> Trips_tir.Ast.expr -> Trips_tir.Ast.expr
(** [elt8 g k] = address of the k-th 8-byte element of global [g]. *)

val elt4 : string -> Trips_tir.Ast.expr -> Trips_tir.Ast.expr
val elt1 : string -> Trips_tir.Ast.expr -> Trips_tir.Ast.expr
