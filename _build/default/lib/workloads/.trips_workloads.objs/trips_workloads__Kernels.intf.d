lib/workloads/kernels.mli: Trips_edge Trips_tir
