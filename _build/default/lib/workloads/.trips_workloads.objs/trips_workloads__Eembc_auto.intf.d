lib/workloads/eembc_auto.mli: Trips_tir
