lib/workloads/registry.ml: Eembc_auto Eembc_dsp Eembc_misc Hashtbl Kernels List Specfp Specint Trips_edge Trips_tir Versabench
