lib/workloads/specfp.mli: Trips_tir
