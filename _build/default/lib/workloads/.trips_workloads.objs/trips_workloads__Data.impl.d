lib/workloads/data.ml: Array Hashtbl Int64 Trips_tir Trips_util
