lib/workloads/eembc_auto.ml: Data Float Int64 Trips_tir
