lib/workloads/specint.ml: Data Int64 Trips_tir
