lib/workloads/versabench.ml: Data Trips_tir
