lib/workloads/registry.mli: Trips_edge Trips_tir
