lib/workloads/data.mli: Trips_tir
