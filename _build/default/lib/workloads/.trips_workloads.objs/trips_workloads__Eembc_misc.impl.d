lib/workloads/eembc_misc.ml: Data Float Int64 Trips_tir
