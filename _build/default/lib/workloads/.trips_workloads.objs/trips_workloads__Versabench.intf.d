lib/workloads/versabench.mli: Trips_tir
