lib/workloads/eembc_misc.mli: Trips_tir
