lib/workloads/specint.mli: Trips_tir
