lib/workloads/eembc_dsp.ml: Data Float Trips_tir
