lib/workloads/specfp.ml: Data Int64 Trips_tir
