lib/workloads/kernels.ml: Data Int64 List Trips_compiler Trips_edge Trips_tir
