lib/workloads/eembc_dsp.mli: Trips_tir
