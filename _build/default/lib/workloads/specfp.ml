(* SPEC CPU2000 floating-point proxy benchmarks (Table 2: the eight the
   paper runs).  Regular loop nests over grids and matrices — the codes the
   paper shows filling the TRIPS window best (art, mgrid, swim). *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* applu: SSOR-style sweep over a 3-D grid with coupled neighbour terms. *)
let applu =
  let n = 18 in
  (* n^3 grid *)
  let idx x y z = ((x *: i (n * n)) +: (y *: i n)) +: z in
  Ast.program
    ~globals:[ Data.floats "ap_u" ~scale:1.0 (n * n * n) ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "sweep" (i 0) (i 4)
            [
              for_ "x" (i 1) (i (n - 1))
                [
                  for_ "y" (i 1) (i (n - 1))
                    [
                      for_ "z" (i 1) (i (n - 1))
                        [
                          set "c" (ldf (Data.elt8 "ap_u" (idx (v "x") (v "y") (v "z"))));
                          set "nb"
                            (ldf (Data.elt8 "ap_u" (idx (v "x" -: i 1) (v "y") (v "z")))
                            +.: ldf (Data.elt8 "ap_u" (idx (v "x" +: i 1) (v "y") (v "z")))
                            +.: ldf (Data.elt8 "ap_u" (idx (v "x") (v "y" -: i 1) (v "z")))
                            +.: ldf (Data.elt8 "ap_u" (idx (v "x") (v "y" +: i 1) (v "z")))
                            +.: ldf (Data.elt8 "ap_u" (idx (v "x") (v "y") (v "z" -: i 1)))
                            +.: ldf (Data.elt8 "ap_u" (idx (v "x") (v "y") (v "z" +: i 1))));
                          stf (Data.elt8 "ap_u" (idx (v "x") (v "y") (v "z")))
                            ((v "c" *.: f 0.4) +.: (v "nb" *.: f 0.1));
                        ];
                    ];
                ];
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i (n * n * n))
            [ set "s" (v "s" +.: ldf (Data.elt8 "ap_u" (v "k"))) ];
          ret (v "s");
        ];
    ]

(* apsi: meteorology grid update — vertical column recurrences with
   temperature/pressure coupling. *)
let apsi =
  let cols = 256 and levels = 24 in
  Ast.program
    ~globals:
      [
        Data.floats "as_t" ~scale:30.0 (cols * levels);
        Data.floats "as_p" ~scale:5.0 (cols * levels);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "s" (f 0.0);
          for_ "c" (i 0) (i cols)
            [
              set "tacc" (f 0.0);
              for_ "l" (i 1) (i levels)
                [
                  set "t" (ldf (Data.elt8 "as_t" ((v "c" *: i levels) +: v "l")));
                  set "p" (ldf (Data.elt8 "as_p" ((v "c" *: i levels) +: v "l")));
                  set "below" (ldf (Data.elt8 "as_t" ((v "c" *: i levels) +: v "l" -: i 1)));
                  (* advective mixing with the level below *)
                  set "nt" ((v "t" *.: f 0.8) +.: (v "below" *.: f 0.15) +.: (v "p" *.: f 0.05));
                  stf (Data.elt8 "as_t" ((v "c" *: i levels) +: v "l")) (v "nt");
                  set "tacc" (v "tacc" +.: v "nt");
                ];
              set "s" (v "s" +.: v "tacc");
            ];
          ret (v "s");
        ];
    ]

(* art: adaptive-resonance image recognition — F1/F2 layer dot products
   and a winner-take-all scan (the window-filling code of Table 3). *)
let art =
  let features = 64 and categories = 24 and samples = 48 in
  Ast.program
    ~globals:
      [
        Data.floats "ar_w" ~scale:1.0 (categories * features);
        Data.floats "ar_in" ~scale:1.0 (samples * features);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "score" (f 0.0);
          for_ "s" (i 0) (i samples)
            [
              set "best" (f (-1.0));
              set "besti" (i 0);
              for_ "c" (i 0) (i categories)
                [
                  set "dot" (f 0.0);
                  set "norm" (f 0.0);
                  for_ "k" (i 0) (i features)
                    [
                      set "w" (ldf (Data.elt8 "ar_w" ((v "c" *: i features) +: v "k")));
                      set "x" (ldf (Data.elt8 "ar_in" ((v "s" *: i features) +: v "k")));
                      set "dot" (v "dot" +.: (v "w" *.: v "x"));
                      set "norm" (v "norm" +.: v "w");
                    ];
                  set "act" (v "dot" /.: (f 0.5 +.: v "norm"));
                  if_ (v "act" >.: v "best")
                    [ set "best" (v "act"); set "besti" (v "c") ]
                    [];
                ];
              (* resonance: nudge the winner toward the input *)
              for_ "k" (i 0) (i features)
                [
                  set "w" (ldf (Data.elt8 "ar_w" ((v "besti" *: i features) +: v "k")));
                  set "x" (ldf (Data.elt8 "ar_in" ((v "s" *: i features) +: v "k")));
                  stf (Data.elt8 "ar_w" ((v "besti" *: i features) +: v "k"))
                    ((v "w" *.: f 0.9) +.: (v "x" *.: f 0.1));
                ];
              set "score" (v "score" +.: v "best");
            ];
          ret (v "score");
        ];
    ]

(* equake: sparse matrix-vector products over an irregular mesh
   (indexed gathers). *)
let equake =
  let nodes = 1024 and nnz = 8192 and steps = 6 in
  Ast.program
    ~globals:
      [
        Data.ints_f "eq_row" nnz (fun k -> Int64.of_int ((k * 7) mod nodes));
        Data.ints_f "eq_col" nnz (fun k -> Int64.of_int ((k * 131 + 17) mod nodes));
        Data.floats "eq_a" ~scale:0.01 nnz;
        Data.floats "eq_x" ~scale:1.0 nodes;
        Data.zeros "eq_y" nodes;
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "t" (i 0) (i steps)
            [
              for_ "k" (i 0) (i nodes) [ stf (Data.elt8 "eq_y" (v "k")) (f 0.0) ];
              for_ "e" (i 0) (i nnz)
                [
                  set "r" (ld8 (Data.elt8 "eq_row" (v "e")));
                  set "c" (ld8 (Data.elt8 "eq_col" (v "e")));
                  stf (Data.elt8 "eq_y" (v "r"))
                    (ldf (Data.elt8 "eq_y" (v "r"))
                    +.: (ldf (Data.elt8 "eq_a" (v "e")) *.: ldf (Data.elt8 "eq_x" (v "c"))));
                ];
              (* time integration: x += dt * y *)
              for_ "k" (i 0) (i nodes)
                [
                  stf (Data.elt8 "eq_x" (v "k"))
                    (ldf (Data.elt8 "eq_x" (v "k"))
                    +.: (f 0.05 *.: ldf (Data.elt8 "eq_y" (v "k"))));
                ];
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i nodes) [ set "s" (v "s" +.: ldf (Data.elt8 "eq_x" (v "k"))) ];
          ret (v "s");
        ];
    ]

(* mesa: software rasterization — span interpolation with z-buffer
   compares (mixed float arithmetic and branches). *)
let mesa =
  let w = 128 and h = 64 and tris = 96 in
  Ast.program
    ~globals:
      [
        Data.floats "me_z" ~scale:1.0 (w * h);
        Data.ints "me_tri" ~lo:0 ~hi:127 (tris * 4);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "drawn" (f 0.0);
          for_ "t" (i 0) (i tris)
            [
              set "x0" (ld8 (Data.elt8 "me_tri" (v "t" *: i 4)) %: i w);
              set "y0" (ld8 (Data.elt8 "me_tri" ((v "t" *: i 4) +: i 1)) %: i h);
              set "len" ((ld8 (Data.elt8 "me_tri" ((v "t" *: i 4) +: i 2)) %: i 24) +: i 4);
              set "z0" (Ast.Un (Ast.Itof, ld8 (Data.elt8 "me_tri" ((v "t" *: i 4) +: i 3)))
                        /.: f 128.0);
              set "rows" (i 6);
              for_ "dy" (i 0) (i 6)
                [
                  set "y" (v "y0" +: v "dy");
                  if_ (v "y" <: i h)
                    [
                      set "z" (v "z0");
                      set "dz" (f 0.01 +.: (Ast.Un (Ast.Itof, v "dy") *.: f 0.001));
                      for_ "dx" (i 0) (v "len")
                        [
                          set "x" (v "x0" +: v "dx");
                          if_ (v "x" <: i w)
                            [
                              set "old" (ldf (Data.elt8 "me_z" ((v "y" *: i w) +: v "x")));
                              if_ (v "z" <.: v "old")
                                [
                                  stf (Data.elt8 "me_z" ((v "y" *: i w) +: v "x")) (v "z");
                                  set "drawn" (v "drawn" +.: f 1.0);
                                ]
                                [];
                            ]
                            [];
                          set "z" (v "z" +.: v "dz");
                        ];
                    ]
                    [];
                ];
              Ast.Expr (v "rows");
            ];
          set "s" (f 0.0);
          for_step "k" (i 0) (i (w * h)) 13L
            [ set "s" (v "s" +.: ldf (Data.elt8 "me_z" (v "k"))) ];
          ret (v "drawn" +.: v "s");
        ];
    ]

(* mgrid: multigrid V-cycle relaxation on nested 3-D grids (27-point
   stencil approximated with the 7-point core). *)
let mgrid =
  let n = 20 in
  let idx x y z = ((x *: i (n * n)) +: (y *: i n)) +: z in
  Ast.program
    ~globals:
      [ Data.floats "mg_u" ~scale:1.0 (n * n * n); Data.floats "mg_r" ~scale:0.1 (n * n * n) ]
    [
      Ast.func "relax" ~ret:Ty.F64
        [
          set "change" (f 0.0);
          for_ "x" (i 1) (i (n - 1))
            [
              for_ "y" (i 1) (i (n - 1))
                [
                  for_ "z" (i 1) (i (n - 1))
                    [
                      set "nb"
                        (ldf (Data.elt8 "mg_u" (idx (v "x" -: i 1) (v "y") (v "z")))
                        +.: ldf (Data.elt8 "mg_u" (idx (v "x" +: i 1) (v "y") (v "z")))
                        +.: ldf (Data.elt8 "mg_u" (idx (v "x") (v "y" -: i 1) (v "z")))
                        +.: ldf (Data.elt8 "mg_u" (idx (v "x") (v "y" +: i 1) (v "z")))
                        +.: ldf (Data.elt8 "mg_u" (idx (v "x") (v "y") (v "z" -: i 1)))
                        +.: ldf (Data.elt8 "mg_u" (idx (v "x") (v "y") (v "z" +: i 1))));
                      set "new"
                        ((v "nb" /.: f 6.0)
                        +.: ldf (Data.elt8 "mg_r" (idx (v "x") (v "y") (v "z"))));
                      set "old" (ldf (Data.elt8 "mg_u" (idx (v "x") (v "y") (v "z"))));
                      stf (Data.elt8 "mg_u" (idx (v "x") (v "y") (v "z"))) (v "new");
                      set "change" (v "change" +.: ((v "new" -.: v "old") *.: (v "new" -.: v "old")));
                    ];
                ];
            ];
          ret (v "change");
        ];
      Ast.func "main" ~ret:Ty.F64
        [
          set "total" (f 0.0);
          for_ "cycle" (i 0) (i 3)
            [ set "total" (v "total" +.: call "relax" []) ];
          ret (v "total");
        ];
    ]

(* swim: shallow-water equations — 2-D finite-difference stencils over
   three coupled fields (the best window-filler in Table 3). *)
let swim =
  let n = 64 in
  let idx x y = (x *: i n) +: y in
  Ast.program
    ~globals:
      [
        Data.floats "sw_u" ~scale:1.0 (n * n);
        Data.floats "sw_v" ~scale:1.0 (n * n);
        Data.floats "sw_p" ~scale:10.0 (n * n);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "t" (i 0) (i 4)
            [
              for_ "x" (i 1) (i (n - 1))
                [
                  for_ "y" (i 1) (i (n - 1))
                    [
                      set "du"
                        (ldf (Data.elt8 "sw_p" (idx (v "x" +: i 1) (v "y")))
                        -.: ldf (Data.elt8 "sw_p" (idx (v "x" -: i 1) (v "y"))));
                      set "dv"
                        (ldf (Data.elt8 "sw_p" (idx (v "x") (v "y" +: i 1)))
                        -.: ldf (Data.elt8 "sw_p" (idx (v "x") (v "y" -: i 1))));
                      stf (Data.elt8 "sw_u" (idx (v "x") (v "y")))
                        (ldf (Data.elt8 "sw_u" (idx (v "x") (v "y"))) -.: (f 0.05 *.: v "du"));
                      stf (Data.elt8 "sw_v" (idx (v "x") (v "y")))
                        (ldf (Data.elt8 "sw_v" (idx (v "x") (v "y"))) -.: (f 0.05 *.: v "dv"));
                    ];
                ];
              for_ "x" (i 1) (i (n - 1))
                [
                  for_ "y" (i 1) (i (n - 1))
                    [
                      set "div"
                        ((ldf (Data.elt8 "sw_u" (idx (v "x" +: i 1) (v "y")))
                         -.: ldf (Data.elt8 "sw_u" (idx (v "x" -: i 1) (v "y"))))
                        +.: (ldf (Data.elt8 "sw_v" (idx (v "x") (v "y" +: i 1)))
                            -.: ldf (Data.elt8 "sw_v" (idx (v "x") (v "y" -: i 1)))));
                      stf (Data.elt8 "sw_p" (idx (v "x") (v "y")))
                        (ldf (Data.elt8 "sw_p" (idx (v "x") (v "y"))) -.: (f 0.1 *.: v "div"));
                    ];
                ];
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i (n * n)) [ set "s" (v "s" +.: ldf (Data.elt8 "sw_p" (v "k"))) ];
          ret (v "s");
        ];
    ]

(* wupwise: lattice-QCD flavoured complex matrix-vector products (BLAS-like
   zaxpy/zgemv inner loops). *)
let wupwise =
  let sites = 512 in
  Ast.program
    ~globals:
      [
        (* 2x2 complex matrices per site: 8 doubles; spinors: 4 doubles *)
        Data.floats "wu_m" ~scale:1.0 (sites * 8);
        Data.floats "wu_s" ~scale:1.0 (sites * 4);
        Data.zeros "wu_r" (sites * 4);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "site" (i 0) (i sites)
            [
              set "mb" (v "site" *: i 8);
              set "sb" (v "site" *: i 4);
              (* r = M * s for a 2x2 complex matrix and 2-component spinor *)
              for_ "row" (i 0) (i 2)
                [
                  set "rr" (f 0.0);
                  set "ri" (f 0.0);
                  for_ "col" (i 0) (i 2)
                    [
                      set "ar" (ldf (Data.elt8 "wu_m" (v "mb" +: (((v "row" *: i 2) +: v "col") *: i 2))));
                      set "ai" (ldf (Data.elt8 "wu_m" (v "mb" +: (((v "row" *: i 2) +: v "col") *: i 2) +: i 1)));
                      set "xr" (ldf (Data.elt8 "wu_s" (v "sb" +: (v "col" *: i 2))));
                      set "xi" (ldf (Data.elt8 "wu_s" (v "sb" +: (v "col" *: i 2) +: i 1)));
                      set "rr" (v "rr" +.: ((v "ar" *.: v "xr") -.: (v "ai" *.: v "xi")));
                      set "ri" (v "ri" +.: ((v "ar" *.: v "xi") +.: (v "ai" *.: v "xr")));
                    ];
                  stf (Data.elt8 "wu_r" (v "sb" +: (v "row" *: i 2))) (v "rr");
                  stf (Data.elt8 "wu_r" (v "sb" +: (v "row" *: i 2) +: i 1)) (v "ri");
                ];
            ];
          (* zaxpy accumulation pass *)
          set "s" (f 0.0);
          for_ "k" (i 0) (i (sites * 4))
            [
              set "s"
                (v "s"
                +.: (ldf (Data.elt8 "wu_r" (v "k")) *.: ldf (Data.elt8 "wu_s" (v "k"))));
            ];
          ret (v "s");
        ];
    ]
