(** EEMBC telecom proxy benchmarks (5 of the 30 in Table 2). *)

val autocor : Trips_tir.Ast.program
val conven : Trips_tir.Ast.program
val fbital : Trips_tir.Ast.program
val fft : Trips_tir.Ast.program
val viterb : Trips_tir.Ast.program
