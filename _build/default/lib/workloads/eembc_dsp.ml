(* EEMBC telecom proxy benchmarks: autocorrelation, convolutional encoding,
   bit allocation, FFT and Viterbi decoding. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
open Ast.Infix

(* autocor: fixed-point autocorrelation over a speech-like buffer. *)
let autocor =
  let n = 1024 and lags = 32 in
  Ast.program
    ~globals:[ Data.ints "ac_in" ~lo:(-512) ~hi:511 n ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "lag" (i 0) (i lags)
            [
              set "r" (i 0);
              for_ "k" (i 0) (i n -: v "lag")
                [
                  set "r"
                    (v "r"
                    +: (ld8 (Data.elt8 "ac_in" (v "k"))
                       *: ld8 (Data.elt8 "ac_in" (v "k" +: v "lag"))));
                ];
              set "acc" (v "acc" ^: (v "r" <<: (v "lag" &: i 7)));
            ];
          ret (v "acc");
        ];
    ]

(* conven: k=5 rate-1/2 convolutional encoder over a bit stream (branch-free
   inner parity computation, very regular). *)
let conven =
  let nbits = 16384 in
  Ast.program
    ~globals:[ Data.bytes_ "cv_in" (nbits / 8) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          set "state" (i 0);
          set "acc" (i 0);
          for_ "k" (i 0) (i nbits)
            [
              set "bit"
                ((ld1 (Data.elt1 "cv_in" (v "k" >>: i 3)) >>: (v "k" &: i 7)) &: i 1);
              set "state" (((v "state" <<: i 1) |: v "bit") &: i 31);
              set "g0" (v "state" &: i 0o27);
              set "g0" (v "g0" ^: (v "g0" >>: i 2));
              set "g0" ((v "g0" ^: (v "g0" >>: i 1)) &: i 1);
              set "g1" (v "state" &: i 0o31);
              set "g1" (v "g1" ^: (v "g1" >>: i 2));
              set "g1" ((v "g1" ^: (v "g1" >>: i 1)) &: i 1);
              set "acc" (v "acc" +: ((v "g0" <<: i 1) |: v "g1"));
            ];
          ret (v "acc");
        ];
    ]

(* fbital: water-filling bit allocation across DSL subchannels — repeated
   argmax selection with conditional updates. *)
let fbital =
  let ch = 128 and budget = 700 in
  Ast.program
    ~globals:
      [
        Data.ints "fb_snr" ~lo:1 ~hi:4095 ch;
        Data.zeros "fb_bits" ch;
      ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          (* copy SNR into a working margin array (reuse fb_bits as alloc) *)
          set "allocated" (i 0);
          while_ (v "allocated" <: i budget)
            [
              (* find the channel with the best marginal gain *)
              set "best" (i 0);
              set "bestgain" (i (-1));
              for_ "c" (i 0) (i ch)
                [
                  set "b" (ld8 (Data.elt8 "fb_bits" (v "c")));
                  set "gain" (ld8 (Data.elt8 "fb_snr" (v "c")) >>: v "b");
                  if_ (v "gain" >: v "bestgain")
                    [ set "bestgain" (v "gain"); set "best" (v "c") ]
                    [];
                ];
              st8 (Data.elt8 "fb_bits" (v "best"))
                (ld8 (Data.elt8 "fb_bits" (v "best")) +: i 1);
              set "allocated" (v "allocated" +: i 1);
            ];
          set "acc" (i 0);
          for_ "c" (i 0) (i ch)
            [ set "acc" (v "acc" +: (ld8 (Data.elt8 "fb_bits" (v "c")) *: (v "c" +: i 1))) ];
          ret (v "acc");
        ];
    ]

(* fft: radix-2 floating-point FFT, 256 points. *)
let fft =
  let n = 256 in
  Ast.program
    ~globals:
      [
        Data.floats "fft_re" ~scale:2.0 n;
        Data.floats "fft_im" ~scale:2.0 n;
        Data.floats_f "fft_cos" (n / 2) (fun k ->
            cos (2. *. Float.pi *. float_of_int k /. float_of_int n));
        Data.floats_f "fft_sin" (n / 2) (fun k ->
            sin (2. *. Float.pi *. float_of_int k /. float_of_int n));
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "len" (i 2);
          while_ (v "len" <=: i n)
            [
              set "half" (v "len" >>: i 1);
              set "step" (i n /: v "len");
              for_ "blk" (i 0) (i n /: v "len")
                [
                  for_ "j" (i 0) (v "half")
                    [
                      set "p" ((v "blk" *: v "len") +: v "j");
                      set "q" (v "p" +: v "half");
                      set "wr" (ldf (Data.elt8 "fft_cos" (v "j" *: v "step")));
                      set "wi" (ldf (Data.elt8 "fft_sin" (v "j" *: v "step")));
                      set "qr" (ldf (Data.elt8 "fft_re" (v "q")));
                      set "qi" (ldf (Data.elt8 "fft_im" (v "q")));
                      set "tr" ((v "wr" *.: v "qr") -.: (v "wi" *.: v "qi"));
                      set "ti" ((v "wr" *.: v "qi") +.: (v "wi" *.: v "qr"));
                      set "pr" (ldf (Data.elt8 "fft_re" (v "p")));
                      set "pi" (ldf (Data.elt8 "fft_im" (v "p")));
                      stf (Data.elt8 "fft_re" (v "p")) (v "pr" +.: v "tr");
                      stf (Data.elt8 "fft_im" (v "p")) (v "pi" +.: v "ti");
                      stf (Data.elt8 "fft_re" (v "q")) (v "pr" -.: v "tr");
                      stf (Data.elt8 "fft_im" (v "q")) (v "pi" -.: v "ti");
                    ];
                ];
              set "len" (v "len" <<: i 1);
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i n)
            [
              set "s"
                (v "s"
                +.: ((ldf (Data.elt8 "fft_re" (v "k")) *.: ldf (Data.elt8 "fft_re" (v "k")))
                    +.: (ldf (Data.elt8 "fft_im" (v "k")) *.: ldf (Data.elt8 "fft_im" (v "k")))));
            ];
          ret (v "s");
        ];
    ]

(* viterb: Viterbi decoder for the conven code — add-compare-select over a
   16-state trellis (integer path metrics, data-dependent selects). *)
let viterb =
  let nsym = 1024 and states = 16 in
  Ast.program
    ~globals:
      [
        Data.ints "vt_sym" ~lo:0 ~hi:3 nsym;
        Data.zeros "vt_pm" states;
        Data.zeros "vt_npm" states;
      ]
    [
      (* expected 2-bit output for a transition from state s on input bit b *)
      Ast.func "branch_out" ~params:[ ("s", Ty.I64); ("b", Ty.I64) ] ~ret:Ty.I64
        [
          set "st" ((((v "s" <<: i 1) |: v "b") &: i 31));
          set "g0" (v "st" &: i 0o27);
          set "g0" (v "g0" ^: (v "g0" >>: i 2));
          set "g0" ((v "g0" ^: (v "g0" >>: i 1)) &: i 1);
          set "g1" (v "st" &: i 0o31);
          set "g1" (v "g1" ^: (v "g1" >>: i 2));
          set "g1" ((v "g1" ^: (v "g1" >>: i 1)) &: i 1);
          ret ((v "g0" <<: i 1) |: v "g1");
        ];
      Ast.func "main" ~ret:Ty.I64
        [
          set "decisions" (i 0);
          for_ "t" (i 0) (i nsym)
            [
              set "sym" (ld8 (Data.elt8 "vt_sym" (v "t")));
              for_ "ns" (i 0) (i states)
                [
                  (* predecessors of ns: (ns>>1) and (ns>>1)|8; input bit is
                     the low bit of ns *)
                  set "b" (v "ns" &: i 1);
                  set "p0" (v "ns" >>: i 1);
                  set "p1" (v "p0" |: i 8);
                  set "e0" (call "branch_out" [ v "p0"; v "b" ]);
                  set "e1" (call "branch_out" [ v "p1"; v "b" ]);
                  set "c0" ((v "e0" ^: v "sym") &: i 1);
                  set "c0" (v "c0" +: ((v "e0" ^: v "sym") >>: i 1));
                  set "c1" ((v "e1" ^: v "sym") &: i 1);
                  set "c1" (v "c1" +: ((v "e1" ^: v "sym") >>: i 1));
                  set "m0" (ld8 (Data.elt8 "vt_pm" (v "p0")) +: v "c0");
                  set "m1" (ld8 (Data.elt8 "vt_pm" (v "p1")) +: v "c1");
                  if_ (v "m0" <=: v "m1")
                    [ st8 (Data.elt8 "vt_npm" (v "ns")) (v "m0") ]
                    [
                      st8 (Data.elt8 "vt_npm" (v "ns")) (v "m1");
                      set "decisions" (v "decisions" +: i 1);
                    ];
                ];
              for_ "s" (i 0) (i states)
                [ st8 (Data.elt8 "vt_pm" (v "s")) (ld8 (Data.elt8 "vt_npm" (v "s"))) ];
            ];
          set "best" (ld8 (Data.elt8 "vt_pm" (i 0)));
          for_ "s" (i 1) (i states)
            [
              if_ (ld8 (Data.elt8 "vt_pm" (v "s")) <: v "best")
                [ set "best" (ld8 (Data.elt8 "vt_pm" (v "s"))) ]
                [];
            ];
          ret ((v "decisions" <<: i 16) ^: v "best");
        ];
    ]
