(** SPEC CPU2000 integer proxy benchmarks (the ten of Table 2). *)

val bzip2 : Trips_tir.Ast.program
val crafty : Trips_tir.Ast.program
val gcc : Trips_tir.Ast.program
val gzip : Trips_tir.Ast.program
val mcf : Trips_tir.Ast.program
val parser : Trips_tir.Ast.program
val perlbmk : Trips_tir.Ast.program
val twolf : Trips_tir.Ast.program
val vortex : Trips_tir.Ast.program
val vpr : Trips_tir.Ast.program
