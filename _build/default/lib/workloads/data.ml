module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Rng = Trips_util.Rng

let ints name ?(seed = 0x5EEDL) ?(lo = 0) ?(hi = 255) n =
  let rng = Rng.create (Int64.add seed (Int64.of_int (Hashtbl.hash name))) in
  let init = Array.init n (fun _ -> (Ty.W8, Int64.of_int (Rng.int_in rng lo hi))) in
  Ast.global name ~init (n * 8)

let ints_f name n f =
  let init = Array.init n (fun k -> (Ty.W8, f k)) in
  Ast.global name ~init (n * 8)

let floats name ?(seed = 0xF10A7L) ?(scale = 1.0) n =
  let rng = Rng.create (Int64.add seed (Int64.of_int (Hashtbl.hash name))) in
  let init =
    Array.init n (fun _ -> (Ty.W8, Int64.bits_of_float (Rng.float rng scale)))
  in
  Ast.global name ~init (n * 8)

let floats_f name n f =
  let init = Array.init n (fun k -> (Ty.W8, Int64.bits_of_float (f k))) in
  Ast.global name ~init (n * 8)

let bytes_ name ?(seed = 0xB17E5L) n =
  let rng = Rng.create (Int64.add seed (Int64.of_int (Hashtbl.hash name))) in
  let init = Array.init n (fun _ -> (Ty.W1, Int64.of_int (Rng.int rng 256))) in
  Ast.global name ~init n

let zeros name n = Ast.global name (n * 8)

open Ast.Infix

let elt8 gname k = g gname +: (k <<: i 3)
let elt4 gname k = g gname +: (k <<: i 2)
let elt1 gname k = g gname +: k
