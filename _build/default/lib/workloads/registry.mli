(** The benchmark registry: every workload of Table 2 with its suite tag.

    The "Simple" suite of the paper (hand-optimized kernels + VersaBench +
    eight EEMBC programs) is marked with [simple = true]; the Fig 3–5 and
    Fig 11 experiments iterate over those, while Fig 6/9/10/12 and Table 3
    use the SPEC proxies. *)

type suite = Kernel | Versa | Eembc | SpecInt | SpecFp

type bench = {
  name : string;
  suite : suite;
  program : Trips_tir.Ast.program;
  ret : Trips_tir.Ty.t option;        (* return type of [main] *)
  simple : bool;                       (* in the paper's "Simple" suite *)
  hand_edge : Trips_edge.Block.program option; (* genuinely hand-written EDGE *)
  description : string;
}

val all : bench list
val find : string -> bench
(** @raise Not_found for unknown names. *)

val by_suite : suite -> bench list
val simple_suite : bench list
val suite_name : suite -> string

val golden : bench -> Trips_tir.Ty.value option * int64
(** Reference result and memory checksum from the TIR interpreter (the
    value every simulated pipeline must reproduce).  Memoized. *)
