(** EEMBC automotive/industrial proxy benchmarks (14 of the 30-benchmark
    suite in Table 2).  Each reproduces the original's dominant loop,
    control and memory idiom; see DESIGN.md for the substitution rationale. *)

val a2time : Trips_tir.Ast.program
val aifftr : Trips_tir.Ast.program
val aifirf : Trips_tir.Ast.program
val basefp : Trips_tir.Ast.program
val bitmnp : Trips_tir.Ast.program
val canrdr : Trips_tir.Ast.program
val idctrn : Trips_tir.Ast.program
val iirflt : Trips_tir.Ast.program
val matrix01 : Trips_tir.Ast.program
val pntrch : Trips_tir.Ast.program
val puwmod : Trips_tir.Ast.program
val rspeed : Trips_tir.Ast.program
val tblook : Trips_tir.Ast.program
val ttsprk : Trips_tir.Ast.program
