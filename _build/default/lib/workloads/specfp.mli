(** SPEC CPU2000 floating-point proxy benchmarks (the eight of Table 2). *)

val applu : Trips_tir.Ast.program
val apsi : Trips_tir.Ast.program
val art : Trips_tir.Ast.program
val equake : Trips_tir.Ast.program
val mesa : Trips_tir.Ast.program
val mgrid : Trips_tir.Ast.program
val swim : Trips_tir.Ast.program
val wupwise : Trips_tir.Ast.program
