module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Builder = Trips_edge.Builder
open Ast.Infix

(* ------------------------------------------------------------------ *)
(* ct: 64x64 integer matrix transpose                                  *)
(* ------------------------------------------------------------------ *)

let ct =
  let n = 64 in
  Ast.program
    ~globals:[ Data.ints "ct_in" (n * n); Data.zeros "ct_out" (n * n) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "r" (i 0) (i n)
            [
              for_ "c" (i 0) (i n)
                [
                  st8
                    (Data.elt8 "ct_out" ((v "c" *: i n) +: v "r"))
                    (ld8 (Data.elt8 "ct_in" ((v "r" *: i n) +: v "c")));
                ];
            ];
          (* checksum along the anti-diagonal band *)
          set "acc" (i 0);
          for_ "k" (i 0) (i (n * n))
            [ set "acc" (v "acc" +: (ld8 (Data.elt8 "ct_out" (v "k")) *: (v "k" &: i 7))) ];
          ret (v "acc");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* conv: 1-D convolution, 480 outputs x 32 taps, doubles              *)
(* ------------------------------------------------------------------ *)

let conv =
  let n = 512 and taps = 32 in
  Ast.program
    ~globals:
      [
        Data.floats "conv_in" ~scale:2.0 n;
        Data.floats "conv_coef" ~scale:0.25 taps;
        Data.zeros "conv_out" (n - taps);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "o" (i 0) (i (n - taps))
            [
              set "acc" (f 0.0);
              for_ "k" (i 0) (i taps)
                [
                  set "acc"
                    (v "acc"
                    +.: (ldf (Data.elt8 "conv_in" (v "o" +: v "k"))
                        *.: ldf (Data.elt8 "conv_coef" (v "k"))));
                ];
              stf (Data.elt8 "conv_out" (v "o")) (v "acc");
            ];
          set "s" (f 0.0);
          for_ "o" (i 0) (i (n - taps))
            [ set "s" (v "s" +.: ldf (Data.elt8 "conv_out" (v "o"))) ];
          ret (v "s");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* vadd: vector add, 2048 doubles                                      *)
(* ------------------------------------------------------------------ *)

let vadd_elems = 2048

let vadd =
  let n = vadd_elems in
  Ast.program
    ~globals:
      [ Data.floats "vadd_a" n; Data.floats "vadd_b" n; Data.zeros "vadd_c" n ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "k" (i 0) (i n)
            [
              stf (Data.elt8 "vadd_c" (v "k"))
                (ldf (Data.elt8 "vadd_a" (v "k")) +.: ldf (Data.elt8 "vadd_b" (v "k")));
            ];
          set "s" (f 0.0);
          for_step "k" (i 0) (i n) 7L
            [ set "s" (v "s" +.: ldf (Data.elt8 "vadd_c" (v "k"))) ];
          ret (v "s");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* matrix: 32x32 dense matmul, doubles                                 *)
(* ------------------------------------------------------------------ *)

let matrix_n = 32

let matrix =
  let n = matrix_n in
  Ast.program
    ~globals:
      [
        Data.floats "mat_a" ~scale:1.0 (n * n);
        Data.floats "mat_b" ~scale:1.0 (n * n);
        Data.zeros "mat_c" (n * n);
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          for_ "r" (i 0) (i n)
            [
              for_ "c" (i 0) (i n)
                [
                  set "acc" (f 0.0);
                  for_ "k" (i 0) (i n)
                    [
                      set "acc"
                        (v "acc"
                        +.: (ldf (Data.elt8 "mat_a" ((v "r" *: i n) +: v "k"))
                            *.: ldf (Data.elt8 "mat_b" ((v "k" *: i n) +: v "c"))));
                    ];
                  stf (Data.elt8 "mat_c" ((v "r" *: i n) +: v "c")) (v "acc");
                ];
            ];
          set "s" (f 0.0);
          for_ "k" (i 0) (i (n * n)) [ set "s" (v "s" +.: ldf (Data.elt8 "mat_c" (v "k"))) ];
          ret (v "s");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Hand-written EDGE vadd                                              *)
(* ------------------------------------------------------------------ *)

(* Registers: r10 = &a[i], r11 = &b[i], r12 = &c[i], r13 = remaining
   count, r1 = checksum accumulator (float bits).  Each loop block streams
   ten elements using immediate displacements off the three pointers —
   eight x (2 loads + 1 fadd + 1 store) = 24 LSIDs, well balanced across the
   four D-cache banks. *)
let vadd_unroll = 8

let vadd_hand_edge : Block.program =
  let open Builder in
  let layout = Trips_tir.Image.layout vadd.Ast.globals in
  let addr name = Int64.of_int (List.assoc name layout) in
  let entry =
    let b = create "vaddh.entry" in
    let pa = inst b (Isa.Geni (addr "vadd_a")) in
    let pb = inst b (Isa.Geni (addr "vadd_b")) in
    let pc = inst b (Isa.Geni (addr "vadd_c")) in
    let cnt = inst b (Isa.Geni (Int64.of_int vadd_elems)) in
    write b 10 [ pa ];
    write b 11 [ pb ];
    write b 12 [ pc ];
    write b 13 [ cnt ];
    let _ = inst b (Isa.Branch (Isa.Xjump "vaddh.loop")) in
    finish b
  in
  let loop =
    let b = create "vaddh.loop" in
    let pa = read b 10 in
    let pb = read b 11 in
    let pc = read b 12 in
    let cnt = read b 13 in
    for k = 0 to vadd_unroll - 1 do
      let off = Int64.of_int (k * 8) in
      let la = inst b ~imm:off (Isa.Load (Ty.F64, Ty.W8, -1)) in
      arc b pa la Isa.Op0;
      let lb = inst b ~imm:off (Isa.Load (Ty.F64, Ty.W8, -1)) in
      arc b pb lb Isa.Op0;
      let sum = inst b (Isa.Bin Ast.Fadd) in
      arc b la sum Isa.Op0;
      arc b lb sum Isa.Op1;
      let st = inst b ~imm:off (Isa.Store (Ty.W8, -1)) in
      arc b pc st Isa.Op0;
      arc b sum st Isa.Op1
    done;
    let step = Int64.of_int (vadd_unroll * 8) in
    let pa' = inst b ~imm:step (Isa.Bin Ast.Add) in
    arc b pa pa' Isa.Op0;
    let pb' = inst b ~imm:step (Isa.Bin Ast.Add) in
    arc b pb pb' Isa.Op0;
    let pc' = inst b ~imm:step (Isa.Bin Ast.Add) in
    arc b pc pc' Isa.Op0;
    let cnt' = inst b ~imm:(Int64.of_int (-vadd_unroll)) (Isa.Bin Ast.Add) in
    arc b cnt cnt' Isa.Op0;
    write b 10 [ pa' ];
    write b 11 [ pb' ];
    write b 12 [ pc' ];
    write b 13 [ cnt' ];
    let t = inst b ~imm:0L (Isa.Bin Ast.Gt) in
    arc b cnt' t Isa.Op0;
    let _ = inst b ~pred:(t, true) (Isa.Branch (Isa.Xjump "vaddh.loop")) in
    let _ = inst b ~pred:(t, false) (Isa.Branch (Isa.Xjump "vaddh.sum")) in
    finish b
  in
  (* checksum pass: strided reads of c, matching the TIR version *)
  let sum_entry =
    let b = create "vaddh.sum" in
    let pc = inst b (Isa.Geni (addr "vadd_c")) in
    let zero = inst b (Isa.Genf 0.0) in
    let idx = inst b (Isa.Geni 0L) in
    write b 12 [ pc ];
    write b 1 [ zero ];
    write b 13 [ idx ];
    let _ = inst b (Isa.Branch (Isa.Xjump "vaddh.sumloop")) in
    finish b
  in
  let sum_loop =
    let b = create "vaddh.sumloop" in
    let pc = read b 12 in
    let acc = read b 1 in
    let idx = read b 13 in
    let a8 = inst b ~imm:3L (Isa.Bin Ast.Shl) in
    arc b idx a8 Isa.Op0;
    let addr_c = inst b (Isa.Bin Ast.Add) in
    arc b pc addr_c Isa.Op0;
    arc b a8 addr_c Isa.Op1;
    let ld = inst b (Isa.Load (Ty.F64, Ty.W8, -1)) in
    arc b addr_c ld Isa.Op0;
    let idx' = inst b ~imm:7L (Isa.Bin Ast.Add) in
    arc b idx idx' Isa.Op0;
    let t = inst b ~imm:(Int64.of_int vadd_elems) (Isa.Bin Ast.Lt) in
    arc b idx' t Isa.Op0;
    (* accumulate only while in range: the final (exiting) instance must
       not add another element *)
    let acc' = inst b (Isa.Bin Ast.Fadd) in
    arc b acc acc' Isa.Op0;
    arc b ld acc' Isa.Op1;
    write b 1 [ acc' ];
    write b 13 [ idx' ];
    let _ = inst b ~pred:(t, true) (Isa.Branch (Isa.Xjump "vaddh.sumloop")) in
    let _ = inst b ~pred:(t, false) (Isa.Branch Isa.Xret) in
    finish b
  in
  let prog =
    {
      Block.globals = vadd.Ast.globals;
      funcs =
        [
          {
            Block.fname = "main";
            entry = "vaddh.entry";
            blocks = [ entry; loop; sum_entry; sum_loop ];
          };
        ];
    }
  in
  (* the paper hand-placed vadd; we run the spatial scheduler over the
     hand-written blocks for the same effect *)
  List.iter (fun (f : Block.func) -> List.iter Trips_compiler.Schedule.place f.Block.blocks)
    prog.Block.funcs;
  prog
