module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Semantics = Trips_tir.Semantics

type kind = Kplain | Kcond | Kuncond | Kcall | Kret

type retire = {
  r_pc : int;
  r_ins : Isa.ins;
  r_srcs : int list;
  r_dst : int option;
  r_mem : (int * Ty.width * bool) option;
  r_branch : (bool * int) option;
  r_kind : kind;
}

type stats = {
  mutable executed : int;
  mutable alu : int;
  mutable moves : int;
  mutable branches : int;
  mutable taken : int;
  mutable loads : int;
  mutable stores : int;
  mutable reg_reads : int;
  mutable reg_writes : int;
  mutable flops : int;
  mutable unique_pcs : int;
}

type result = { ret_int : int64; ret_flt : float; stats : stats }

let ret_value r = function
  | None -> None
  | Some Ty.I64 -> Some (Ty.Vi r.ret_int)
  | Some Ty.F64 -> Some (Ty.Vf r.ret_flt)

let bases (p : Isa.program) =
  let tbl = Hashtbl.create 16 in
  let cursor = ref 0 in
  List.iter
    (fun (f : Isa.func) ->
      Hashtbl.replace tbl f.fname !cursor;
      cursor := !cursor + Array.length f.code)
    p.funcs;
  tbl

let func_base p name = Hashtbl.find (bases p) name

let is_flop (ins : Isa.ins) =
  match ins with
  | Isa.Op ((Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv), _, _, _) -> true
  | _ -> false

let float_srcs_op (op : Ast.binop) =
  match op with
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv
  | Ast.Feq | Ast.Fne | Ast.Flt | Ast.Fle | Ast.Fgt | Ast.Fge ->
    true
  | _ -> false

let float_dst_op (op : Ast.binop) =
  match op with Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv -> true | _ -> false

let run ?(fuel = 400_000_000) ?on_retire (p : Isa.program) (image : Image.t)
    ~entry ~args =
  let stats =
    { executed = 0; alu = 0; moves = 0; branches = 0; taken = 0; loads = 0;
      stores = 0; reg_reads = 0; reg_writes = 0; flops = 0; unique_pcs = 0 }
  in
  let base_tbl = bases p in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Isa.func) -> Hashtbl.replace funcs f.fname f) p.funcs;
  let seen_pcs = Hashtbl.create 1024 in
  let ints = Array.make 32 0L in
  let flts = Array.make 32 0. in
  ints.(1) <- Int64.of_int (Image.stack_base image);
  (* place arguments per the ABI *)
  let int_args = ref Isa.abi_int_args and flt_args = ref Isa.abi_flt_args in
  List.iter
    (fun v ->
      match v with
      | Ty.Vi n ->
        ints.(List.hd !int_args) <- n;
        int_args := List.tl !int_args
      | Ty.Vf x ->
        flts.(List.hd !flt_args) <- x;
        flt_args := List.tl !flt_args)
    args;
  let entry_f = Hashtbl.find funcs entry in
  let stack : (int64 array * float array * Isa.func * int) list ref = ref [] in
  let cur_f = ref entry_f in
  let pc = ref 0 in
  let fuel = ref fuel in
  let finished = ref false in
  let retire ins ~srcs ~dst ~mem ~branch ~kind =
    stats.executed <- stats.executed + 1;
    (match Isa.classify ins with
    | Isa.Calu -> stats.alu <- stats.alu + 1
    | Isa.Cmove -> stats.moves <- stats.moves + 1
    | Isa.Cbranch -> stats.branches <- stats.branches + 1
    | Isa.Cmem -> ());
    stats.reg_reads <- stats.reg_reads + Isa.reg_reads ins;
    stats.reg_writes <- stats.reg_writes + Isa.reg_writes ins;
    if is_flop ins then stats.flops <- stats.flops + 1;
    let gpc = Hashtbl.find base_tbl !cur_f.Isa.fname + !pc in
    if not (Hashtbl.mem seen_pcs gpc) then begin
      Hashtbl.replace seen_pcs gpc ();
      stats.unique_pcs <- stats.unique_pcs + 1
    end;
    match on_retire with
    | None -> ()
    | Some f ->
      f { r_pc = gpc; r_ins = ins; r_srcs = srcs; r_dst = dst; r_mem = mem;
          r_branch = branch; r_kind = kind }
  in
  let ir r = r and fr r = 32 + r in
  let vi r = Ty.Vi ints.(r) and vf r = Ty.Vf flts.(r) in
  let set_i r v = ints.(r) <- Ty.as_int v in
  let set_f r v = flts.(r) <- Ty.as_float v in
  while not !finished do
    decr fuel;
    if !fuel <= 0 then raise (Semantics.Trap "RISC out of fuel");
    let code = !cur_f.Isa.code in
    if !pc < 0 || !pc >= Array.length code then
      raise (Semantics.Trap (Printf.sprintf "pc out of range in %s" !cur_f.Isa.fname));
    let ins = code.(!pc) in
    let next = ref (!pc + 1) in
    (match ins with
    | Isa.Op (op, d, a, b) ->
      let fsrc = float_srcs_op op and fdst = float_dst_op op in
      let va = if fsrc then vf a else vi a in
      let vb = if fsrc then vf b else vi b in
      let r = Semantics.binop op va vb in
      if fdst then set_f d r else set_i d r;
      retire ins
        ~srcs:[ (if fsrc then fr a else ir a); (if fsrc then fr b else ir b) ]
        ~dst:(Some (if fdst then fr d else ir d))
        ~mem:None ~branch:None ~kind:Kplain
    | Isa.Opi (op, d, a, n) ->
      let r = Semantics.binop op (vi a) (Ty.Vi n) in
      set_i d r;
      retire ins ~srcs:[ ir a ] ~dst:(Some (ir d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Unop (op, d, a) ->
      let fsrc = match op with Ast.Ftoi | Ast.Fneg -> true | _ -> false in
      let fdst = match op with Ast.Itof | Ast.Fneg -> true | _ -> false in
      let va = if fsrc then vf a else vi a in
      let r = Semantics.unop op va in
      if fdst then set_f d r else set_i d r;
      retire ins
        ~srcs:[ (if fsrc then fr a else ir a) ]
        ~dst:(Some (if fdst then fr d else ir d))
        ~mem:None ~branch:None ~kind:Kplain
    | Isa.Li (d, n) ->
      ints.(d) <- n;
      retire ins ~srcs:[] ~dst:(Some (ir d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Lis (d, n) ->
      ints.(d) <- Int64.shift_left n 16;
      retire ins ~srcs:[] ~dst:(Some (ir d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Ori (d, a, n) ->
      ints.(d) <- Int64.logor ints.(a) n;
      retire ins ~srcs:[ ir a ] ~dst:(Some (ir d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Lfc (d, v, addr) ->
      flts.(d) <- v;
      stats.loads <- stats.loads + 1;
      retire ins ~srcs:[] ~dst:(Some (fr d))
        ~mem:(Some (addr, Ty.W8, true))
        ~branch:None ~kind:Kplain
    | Isa.Mr (d, a) ->
      ints.(d) <- ints.(a);
      retire ins ~srcs:[ ir a ] ~dst:(Some (ir d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Fmr (d, a) ->
      flts.(d) <- flts.(a);
      retire ins ~srcs:[ fr a ] ~dst:(Some (fr d)) ~mem:None ~branch:None ~kind:Kplain
    | Isa.Lw (t, w, d, a, off) ->
      let addr = Int64.to_int ints.(a) + off in
      let v = Image.load image t w addr in
      (match t with Ty.F64 -> set_f d v | Ty.I64 -> set_i d v);
      stats.loads <- stats.loads + 1;
      retire ins ~srcs:[ ir a ]
        ~dst:(Some (match t with Ty.F64 -> fr d | Ty.I64 -> ir d))
        ~mem:(Some (addr, w, true))
        ~branch:None ~kind:Kplain
    | Isa.Sw (t, w, a, off, s) ->
      let addr = Int64.to_int ints.(a) + off in
      let v = match t with Ty.F64 -> vf s | Ty.I64 -> vi s in
      Image.store image w addr v;
      stats.stores <- stats.stores + 1;
      retire ins
        ~srcs:[ ir a; (match t with Ty.F64 -> fr s | Ty.I64 -> ir s) ]
        ~dst:None
        ~mem:(Some (addr, w, false))
        ~branch:None ~kind:Kplain
    | Isa.B t ->
      next := t;
      stats.taken <- stats.taken + 1;
      retire ins ~srcs:[] ~dst:None ~mem:None
        ~branch:(Some (true, Hashtbl.find base_tbl !cur_f.Isa.fname + t))
        ~kind:Kuncond
    | Isa.Bc (r, t, f) ->
      let taken = ints.(r) <> 0L in
      next := (if taken then t else f);
      if taken then stats.taken <- stats.taken + 1;
      retire ins ~srcs:[ ir r ] ~dst:None ~mem:None
        ~branch:(Some (taken, Hashtbl.find base_tbl !cur_f.Isa.fname + !next))
        ~kind:Kcond
    | Isa.Call fname ->
      let callee =
        match Hashtbl.find_opt funcs fname with
        | Some f -> f
        | None -> raise (Semantics.Trap ("call to unknown function " ^ fname))
      in
      stack := (Array.copy ints, Array.copy flts, !cur_f, !pc + 1) :: !stack;
      stats.taken <- stats.taken + 1;
      retire ins ~srcs:[] ~dst:None ~mem:None
        ~branch:(Some (true, Hashtbl.find base_tbl fname))
        ~kind:Kcall;
      cur_f := callee;
      next := 0
    | Isa.Ret -> (
      match !stack with
      | [] ->
        retire ins ~srcs:[] ~dst:None ~mem:None ~branch:(Some (true, 0)) ~kind:Kret;
        finished := true
      | (si, sf, f, ret_pc) :: rest ->
        let ri = ints.(Isa.abi_int_ret) and rf = flts.(Isa.abi_flt_ret) in
        Array.blit si 0 ints 0 32;
        Array.blit sf 0 flts 0 32;
        ints.(Isa.abi_int_ret) <- ri;
        flts.(Isa.abi_flt_ret) <- rf;
        stack := rest;
        stats.taken <- stats.taken + 1;
        retire ins ~srcs:[] ~dst:None ~mem:None
          ~branch:(Some (true, Hashtbl.find base_tbl f.Isa.fname + ret_pc))
          ~kind:Kret;
        cur_f := f;
        next := ret_pc));
    if not !finished then pc := !next
  done;
  { ret_int = ints.(Isa.abi_int_ret); ret_flt = flts.(Isa.abi_flt_ret); stats }
