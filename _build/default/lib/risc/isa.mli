(** A PowerPC-flavoured RISC ISA — the paper's conventional baseline.

    32 integer and 32 floating-point registers, 32-bit fixed-width
    instructions, compare-into-register plus conditional branch, 16-bit
    immediates (wider constants take a two-instruction [lis/ori] sequence,
    floating-point constants load from a constant pool).  The same TIR
    programs compiled here and through {!Trips_compiler} give the
    instruction-count and storage-access comparisons of Figs 4 and 5. *)

type reg = int
(** 0..31; integer and float register files are separate namespaces. *)

type ins =
  | Op of Trips_tir.Ast.binop * reg * reg * reg   (* rd <- ra op rb *)
  | Opi of Trips_tir.Ast.binop * reg * reg * int64 (* rd <- ra op imm16 *)
  | Unop of Trips_tir.Ast.unop * reg * reg
  | Li of reg * int64                              (* 16-bit load immediate *)
  | Lis of reg * int64                             (* load shifted upper half *)
  | Ori of reg * reg * int64                       (* or immediate (low half) *)
  | Lfc of reg * float * int                       (* float const from pool addr *)
  | Mr of reg * reg                                (* integer register move *)
  | Fmr of reg * reg                               (* float register move *)
  | Lw of Trips_tir.Ty.t * Trips_tir.Ty.width * reg * reg * int  (* rd <- [ra+off] *)
  | Sw of Trips_tir.Ty.t * Trips_tir.Ty.width * reg * int * reg
      (* [ra+off] <- rs; the type selects the source register file *)
  | B of int                                       (* unconditional, code index *)
  | Bc of reg * int * int                          (* if ra<>0 goto t else goto f *)
  | Call of string
  | Ret

type func = {
  fname : string;
  code : ins array;
  (* branch targets are resolved code indices; [labels] is kept for
     disassembly *)
  labels : (string * int) list;
}

type program = {
  globals : Trips_tir.Ast.global list;
  funcs : func list;
  pool : (int * float) list;   (* constant-pool address -> value *)
  pool_base : int;
}

type klass = Calu | Cmem | Cbranch | Cmove

val classify : ins -> klass

val reg_reads : ins -> int
(** Register-file read ports consumed (int + float), for Fig 5. *)

val reg_writes : ins -> int

val find_func : program -> string -> func
val pp_ins : Format.formatter -> ins -> unit
val pp_func : Format.formatter -> func -> unit

(* ABI: integer args in r3..r10, integer result in r3; float args in
   f1..f8, float result in f1; r11/r12 and f12/f13 are scratch. *)
val abi_int_args : reg list
val abi_int_ret : reg
val abi_flt_args : reg list
val abi_flt_ret : reg
val scratch_int : reg * reg
val scratch_flt : reg * reg
val allocatable_int : reg list
val allocatable_flt : reg list
