lib/risc/isa.ml: Array Format Fun List Trips_tir
