lib/risc/isa.mli: Format Trips_tir
