lib/risc/exec.mli: Isa Trips_tir
