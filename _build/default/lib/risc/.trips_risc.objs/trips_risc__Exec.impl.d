lib/risc/exec.ml: Array Hashtbl Int64 Isa List Printf Trips_tir
