lib/risc/codegen.ml: Array Hashtbl Int Int64 Isa List Map Option Set Trips_tir
