lib/risc/codegen.mli: Isa Trips_tir
