(** Functional simulator for the RISC baseline.

    Executes a linked {!Isa.program} against an {!Trips_tir.Image},
    producing the PowerPC-side counts of Figs 4–5 (instructions by class,
    loads/stores, register-file reads/writes) and, through [on_retire], the
    dynamic instruction stream consumed by the branch-predictor study
    (Fig 7) and the out-of-order reference models (Figs 11–12).

    Calls use the same "magic" save/restore convention as the EDGE executor
    (both register files are checkpointed at the call and restored at the
    return, minus the result registers), so cross-ISA instruction-count
    comparisons exclude identical ABI bookkeeping on both sides; DESIGN.md
    records this as a deliberate substitution. *)

type kind = Kplain | Kcond | Kuncond | Kcall | Kret

type retire = {
  r_pc : int;                            (* globally unique word address *)
  r_ins : Isa.ins;
  r_srcs : int list;                     (* register ids; floats offset +32 *)
  r_dst : int option;
  r_mem : (int * Trips_tir.Ty.width * bool) option;  (* addr, width, load? *)
  r_branch : (bool * int) option;        (* taken?, target pc *)
  r_kind : kind;
}

type stats = {
  mutable executed : int;
  mutable alu : int;
  mutable moves : int;
  mutable branches : int;
  mutable taken : int;
  mutable loads : int;
  mutable stores : int;
  mutable reg_reads : int;
  mutable reg_writes : int;
  mutable flops : int;
  mutable unique_pcs : int;              (* dynamic code footprint, §4.4 *)
}

type result = {
  ret_int : int64;                       (* r3 at final return *)
  ret_flt : float;                       (* f1 at final return *)
  stats : stats;
}

val ret_value : result -> Trips_tir.Ty.t option -> Trips_tir.Ty.value option
(** Interpret the result registers according to the entry's return type. *)

val run :
  ?fuel:int ->
  ?on_retire:(retire -> unit) ->
  Isa.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result

val func_base : Isa.program -> string -> int
(** Word address at which a function's code starts in the linked layout. *)
