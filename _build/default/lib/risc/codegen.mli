(** TIR-to-RISC code generation (the gcc-for-PowerPC stand-in).

    Graph-coloring register allocation over both register files with
    per-instruction liveness; values that do not get a color are spilled to
    stack slots addressed off r1 (so recursion is safe), using the reserved
    scratch registers around each use.  Calls marshal arguments into the ABI
    registers with a parallel-move resolver.  The generated code, run under
    {!Exec}, provides the PowerPC instruction and storage-access baselines
    of Figs 4–5 and the branch/memory traces for the predictor study and the
    superscalar reference models. *)

val compile :
  ?optimize:bool -> ?unroll:int -> ?inline:bool -> Trips_tir.Ast.program -> Isa.program
(** Defaults: [optimize = true], [unroll = 1], [inline = true] — roughly
    "gcc -O2" shape.  Pass [unroll = 4] for the icc-like preset used on the
    reference platforms. *)
