module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty

type reg = int

type ins =
  | Op of Ast.binop * reg * reg * reg
  | Opi of Ast.binop * reg * reg * int64
  | Unop of Ast.unop * reg * reg
  | Li of reg * int64
  | Lis of reg * int64
  | Ori of reg * reg * int64
  | Lfc of reg * float * int
  | Mr of reg * reg
  | Fmr of reg * reg
  | Lw of Ty.t * Ty.width * reg * reg * int
  | Sw of Ty.t * Ty.width * reg * int * reg
  | B of int
  | Bc of reg * int * int
  | Call of string
  | Ret

type func = {
  fname : string;
  code : ins array;
  labels : (string * int) list;
}

type program = {
  globals : Ast.global list;
  funcs : func list;
  pool : (int * float) list;
  pool_base : int;
}

type klass = Calu | Cmem | Cbranch | Cmove

let classify = function
  | Op _ | Opi _ | Unop _ | Li _ | Lis _ | Ori _ -> Calu
  | Lfc _ | Lw _ | Sw _ -> Cmem
  | B _ | Bc _ | Call _ | Ret -> Cbranch
  | Mr _ | Fmr _ -> Cmove

let reg_reads = function
  | Op _ -> 2
  | Opi _ | Unop _ | Mr _ | Fmr _ | Ori _ -> 1
  | Li _ | Lis _ | Lfc _ -> 0
  | Lw _ -> 1
  | Sw _ -> 2
  | B _ -> 0
  | Bc _ -> 1
  | Call _ | Ret -> 0

let reg_writes = function
  | Op _ | Opi _ | Unop _ | Li _ | Lis _ | Ori _ | Lfc _ | Mr _ | Fmr _ | Lw _ -> 1
  | Sw _ | B _ | Bc _ | Call _ | Ret -> 0

let find_func p name = List.find (fun f -> f.fname = name) p.funcs

let pp_ins ppf = function
  | Op (op, d, a, b) -> Format.fprintf ppf "r%d = r%d %s r%d" d a (Ast.binop_name op) b
  | Opi (op, d, a, n) -> Format.fprintf ppf "r%d = r%d %s %Ld" d a (Ast.binop_name op) n
  | Unop (op, d, a) -> Format.fprintf ppf "r%d = %s r%d" d (Ast.unop_name op) a
  | Li (d, n) -> Format.fprintf ppf "li r%d, %Ld" d n
  | Lis (d, n) -> Format.fprintf ppf "lis r%d, %Ld" d n
  | Ori (d, a, n) -> Format.fprintf ppf "ori r%d, r%d, %Ld" d a n
  | Lfc (d, v, addr) -> Format.fprintf ppf "lfd f%d, %g pool[0x%x]" d v addr
  | Mr (d, a) -> Format.fprintf ppf "mr r%d, r%d" d a
  | Fmr (d, a) -> Format.fprintf ppf "fmr f%d, f%d" d a
  | Lw (t, w, d, a, off) ->
    Format.fprintf ppf "l%s%d r%d, %d(r%d)" (Ty.to_string t) (Ty.bytes_of_width w) d off a
  | Sw (_, w, a, off, s) -> Format.fprintf ppf "st%d %d(r%d), r%d" (Ty.bytes_of_width w) off a s
  | B t -> Format.fprintf ppf "b @%d" t
  | Bc (r, t, f) -> Format.fprintf ppf "bc r%d, @%d else @%d" r t f
  | Call f -> Format.fprintf ppf "bl %s" f
  | Ret -> Format.pp_print_string ppf "blr"

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>%s:@," f.fname;
  Array.iteri
    (fun i ins ->
      (match List.find_opt (fun (_, idx) -> idx = i) f.labels with
      | Some (l, _) -> Format.fprintf ppf "%s:@," l
      | None -> ());
      Format.fprintf ppf "%3d: %a@," i pp_ins ins)
    f.code;
  Format.fprintf ppf "@]"

let abi_int_args = [ 3; 4; 5; 6; 7; 8; 9; 10 ]
let abi_int_ret = 3
let abi_flt_args = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let abi_flt_ret = 1
let scratch_int = (11, 12)
let scratch_flt = (12, 13)

let allocatable_int =
  (* leave r0 (zero idiom), r1 (sp), r2 (toc), r11/r12 scratch, and the
     argument/result registers r3..r10: call marshaling writes them before
     the call checkpoint, so values living across a call would be lost *)
  List.init 32 Fun.id
  |> List.filter (fun r -> r > 2 && r <> 11 && r <> 12 && not (List.mem r abi_int_args))

let allocatable_flt =
  List.init 32 Fun.id
  |> List.filter (fun r -> r <> 0 && r <> 12 && r <> 13 && not (List.mem r abi_flt_args))
