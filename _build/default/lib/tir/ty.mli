(** Types and runtime values of the tiny IR (TIR).

    TIR is the source language of this reproduction: all benchmarks are
    written in it, and both the EDGE compiler ({!Trips_compiler}) and the
    PowerPC-like RISC backend ({!Trips_risc}) lower it, mirroring how the
    paper runs the same C sources through the TRIPS compiler and gcc. *)

type t = I64 | F64
(** Value types: 64-bit integers and doubles.  Sub-word data lives in memory
    and is widened on load, as on the TRIPS prototype. *)

type width = W1 | W2 | W4 | W8
(** Memory access widths in bytes (1, 2, 4, 8). *)

val bytes_of_width : width -> int

type value = Vi of int64 | Vf of float
(** Runtime values used by the interpreter and both functional simulators. *)

val zero : t -> value
val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
val to_string : t -> string
val value_to_string : value -> string

val as_int : value -> int64
(** @raise Invalid_argument on a float value. *)

val as_float : value -> float
(** @raise Invalid_argument on an integer value. *)

val truthy : value -> bool
(** C-style truth: nonzero integer / nonzero float. *)
