type t = I64 | F64

type width = W1 | W2 | W4 | W8

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

type value = Vi of int64 | Vf of float

let zero = function I64 -> Vi 0L | F64 -> Vf 0.

let pp ppf = function
  | I64 -> Format.pp_print_string ppf "i64"
  | F64 -> Format.pp_print_string ppf "f64"

let pp_value ppf = function
  | Vi i -> Format.fprintf ppf "%Ld" i
  | Vf f -> Format.fprintf ppf "%g" f

let to_string t = Format.asprintf "%a" pp t
let value_to_string v = Format.asprintf "%a" pp_value v

let as_int = function
  | Vi i -> i
  | Vf _ -> invalid_arg "Ty.as_int: float value"

let as_float = function
  | Vf f -> f
  | Vi _ -> invalid_arg "Ty.as_float: integer value"

let truthy = function Vi i -> i <> 0L | Vf f -> f <> 0.
