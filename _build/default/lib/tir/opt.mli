(** Machine-independent CFG optimizations.

    These correspond to the "conventional optimizations" the TRIPS compiler
    applies before block formation (§2): constant folding, local value and
    copy propagation, local common-subexpression elimination, and dead-code
    elimination.  All passes are semantics-preserving (checked by the qcheck
    differential suite) and idempotent at fixpoint. *)

val constfold : Cfg.func -> unit
(** Fold operators whose operands are constants.  Folding never introduces a
    trap (division by a zero constant is left in place). *)

val copyprop : Cfg.func -> unit
(** Block-local value/copy propagation through [Mov]s. *)

val cse : Cfg.func -> unit
(** Block-local common-subexpression elimination over pure operators and
    loads (loads are killed by stores and calls). *)

val dce : Cfg.func -> unit
(** Remove pure instructions whose results are never used anywhere in the
    function. *)

val simplify_branches : Cfg.func -> unit
(** Turn branches on constants into jumps and drop unreachable blocks. *)

val run : ?rounds:int -> Cfg.func -> unit
(** Fixpoint driver: apply all passes [rounds] times (default 10, stops early at fixpoint). *)

val run_program : ?rounds:int -> Cfg.program -> unit
