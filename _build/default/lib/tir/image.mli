(** Linked memory image of a TIR program.

    Assigns addresses to globals (from a fixed base, respecting alignment),
    applies initializers, and provides byte-addressed typed access.  One image
    type is shared by the interpreter, the EDGE functional executor, the RISC
    simulator and the cycle-level models, so data layout — and therefore cache
    behaviour — is identical across pipelines. *)

type t

val build : ?mem_kb:int -> Ast.global list -> t
(** Lay out globals and allocate the backing store.  [mem_kb] defaults to the
    globals footprint plus a 256 KB slack region (stack + scratch). *)

val addr_of : t -> string -> int
(** Base address of a global.  @raise Not_found for unknown symbols. *)

val layout : Ast.global list -> (string * int) list
(** Pure layout computation (the same one {!build} applies), so compilers can
    resolve symbols without allocating a backing store. *)

val size : t -> int
val stack_base : t -> int
(** Top-of-memory stack pointer for the RISC ABI (grows down). *)

val scratch_base : t -> int
(** First address past the globals; free for runtime scratch data. *)

val copy : t -> t
(** Deep copy, so multiple simulations can start from the same initial
    image. *)

val load : t -> Ty.t -> Ty.width -> int -> Ty.value
(** Little-endian load; sub-word integer loads zero-extend (like PowerPC
    lbz/lhz).  Use an explicit [Sext] for signed narrow data.  Float loads
    require width 8.
    @raise Semantics.Trap on out-of-range access. *)

val store : t -> Ty.width -> int -> Ty.value -> unit
(** Truncating little-endian store. @raise Semantics.Trap on range error. *)

val load_u : t -> Ty.width -> int -> int64
(** Zero-extending raw load (no float view). *)

val equal : t -> t -> bool
(** Byte equality of the whole image — the integration tests' final check. *)

val checksum : t -> int64
(** FNV-style checksum over the program-data region (up to
    {!scratch_base}); the stack/scratch area above it is excluded since
    different ABIs legitimately use it differently. *)
