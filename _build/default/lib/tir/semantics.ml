exception Trap of string

let sext w x =
  match (w : Ty.width) with
  | Ty.W1 -> Int64.shift_right (Int64.shift_left x 56) 56
  | Ty.W2 -> Int64.shift_right (Int64.shift_left x 48) 48
  | Ty.W4 -> Int64.shift_right (Int64.shift_left x 32) 32
  | Ty.W8 -> x

let zext w x =
  match (w : Ty.width) with
  | Ty.W1 -> Int64.logand x 0xFFL
  | Ty.W2 -> Int64.logand x 0xFFFFL
  | Ty.W4 -> Int64.logand x 0xFFFFFFFFL
  | Ty.W8 -> x

let bool_val b = Ty.Vi (if b then 1L else 0L)

let ii f a b = Ty.Vi (f (Ty.as_int a) (Ty.as_int b))
let ff f a b = Ty.Vf (f (Ty.as_float a) (Ty.as_float b))
let icmp f a b = bool_val (f (Int64.compare (Ty.as_int a) (Ty.as_int b)) 0)
let fcmp f a b = bool_val (f (compare (Ty.as_float a) (Ty.as_float b)) 0)

let shift_amount b = Int64.to_int (Int64.logand (Ty.as_int b) 63L)

let binop (op : Ast.binop) (a : Ty.value) (b : Ty.value) : Ty.value =
  match op with
  | Ast.Add -> ii Int64.add a b
  | Ast.Sub -> ii Int64.sub a b
  | Ast.Mul -> ii Int64.mul a b
  | Ast.Div ->
    if Ty.as_int b = 0L then raise (Trap "integer division by zero");
    ii Int64.div a b
  | Ast.Rem ->
    if Ty.as_int b = 0L then raise (Trap "integer remainder by zero");
    ii Int64.rem a b
  | Ast.And -> ii Int64.logand a b
  | Ast.Or -> ii Int64.logor a b
  | Ast.Xor -> ii Int64.logxor a b
  | Ast.Shl -> Ty.Vi (Int64.shift_left (Ty.as_int a) (shift_amount b))
  | Ast.Lsr -> Ty.Vi (Int64.shift_right_logical (Ty.as_int a) (shift_amount b))
  | Ast.Asr -> Ty.Vi (Int64.shift_right (Ty.as_int a) (shift_amount b))
  | Ast.Eq -> icmp ( = ) a b
  | Ast.Ne -> icmp ( <> ) a b
  | Ast.Lt -> icmp ( < ) a b
  | Ast.Le -> icmp ( <= ) a b
  | Ast.Gt -> icmp ( > ) a b
  | Ast.Ge -> icmp ( >= ) a b
  | Ast.Ult -> bool_val (Int64.unsigned_compare (Ty.as_int a) (Ty.as_int b) < 0)
  | Ast.Ule -> bool_val (Int64.unsigned_compare (Ty.as_int a) (Ty.as_int b) <= 0)
  | Ast.Fadd -> ff ( +. ) a b
  | Ast.Fsub -> ff ( -. ) a b
  | Ast.Fmul -> ff ( *. ) a b
  | Ast.Fdiv -> ff ( /. ) a b
  | Ast.Feq -> fcmp ( = ) a b
  | Ast.Fne -> fcmp ( <> ) a b
  | Ast.Flt -> fcmp ( < ) a b
  | Ast.Fle -> fcmp ( <= ) a b
  | Ast.Fgt -> fcmp ( > ) a b
  | Ast.Fge -> fcmp ( >= ) a b

let unop (op : Ast.unop) (a : Ty.value) : Ty.value =
  match op with
  | Ast.Neg -> Ty.Vi (Int64.neg (Ty.as_int a))
  | Ast.Not -> Ty.Vi (Int64.lognot (Ty.as_int a))
  | Ast.Fneg -> Ty.Vf (-.Ty.as_float a)
  | Ast.Itof -> Ty.Vf (Int64.to_float (Ty.as_int a))
  | Ast.Ftoi -> Ty.Vi (Int64.of_float (Ty.as_float a))
  | Ast.Sext w -> Ty.Vi (sext w (Ty.as_int a))
  | Ast.Zext w -> Ty.Vi (zext w (Ty.as_int a))
