(** Source-level (AST) transformations.

    The paper's hand-optimized benchmarks differ from compiled ones mostly by
    "largely mechanical" source restructurings — deeper unrolling, inlining,
    loop fusion (§7).  We implement the mechanical ones here; compiler presets
    ({!Trips_compiler.Driver}) choose how aggressively to apply them. *)

val subst_expr : string -> Ast.expr -> Ast.expr -> Ast.expr
(** [subst_expr x e body] replaces free reads of variable [x] by [e]. *)

val unroll : factor:int -> Ast.func -> Ast.func
(** Unroll counted [For] loops by [factor] where legal: the bound must be
    invariant in the body and the body must not reassign the index.  A
    remainder loop keeps semantics exact for any trip count.  Only innermost
    loops are unrolled (outer unrolling would grow code by factor^depth);
    loops that fail the legality check are left untouched. *)

val inline : Ast.program -> Ast.program
(** Inline calls to straight-line callees (no loops or early returns, a
    single trailing [Return]).  Recursive and indirect cycles are skipped. *)

val unroll_program : factor:int -> Ast.program -> Ast.program

val reassociate : Ast.func -> Ast.func
(** Tree-height reduction (the paper's TRIPS-specific optimization, §2):
    an innermost counted loop whose body accumulates [acc = acc + e] is
    split over four interleaved partial accumulators combined after the
    loop, cutting the loop-carried dependence height by 4x.  Applied at
    the source level so every pipeline computes the identical (changed)
    floating-point association; loops failing the legality checks are
    untouched. *)

val reassociate_program : Ast.program -> Ast.program
