lib/tir/cfg.ml: Ast Format List Ty
