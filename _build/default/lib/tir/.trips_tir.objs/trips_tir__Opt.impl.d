lib/tir/opt.ml: Ast Cfg Format Hashtbl List Option Semantics Ty
