lib/tir/ty.mli: Format
