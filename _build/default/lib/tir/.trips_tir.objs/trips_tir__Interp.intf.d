lib/tir/interp.mli: Ast Cfg Image Ty
