lib/tir/ast.mli: Format Ty
