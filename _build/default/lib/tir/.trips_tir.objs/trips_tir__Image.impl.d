lib/tir/image.ml: Array Ast Bytes Char Int64 List Printf Semantics Ty
