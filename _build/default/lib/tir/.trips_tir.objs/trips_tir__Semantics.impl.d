lib/tir/semantics.ml: Ast Int64 Ty
