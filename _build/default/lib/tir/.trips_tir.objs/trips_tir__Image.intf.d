lib/tir/image.mli: Ast Ty
