lib/tir/ty.ml: Format
