lib/tir/transform.ml: Ast Int64 List Option Printf
