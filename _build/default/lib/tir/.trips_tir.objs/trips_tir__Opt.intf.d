lib/tir/opt.mli: Cfg
