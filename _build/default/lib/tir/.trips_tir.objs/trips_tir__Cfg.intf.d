lib/tir/cfg.mli: Ast Format Ty
