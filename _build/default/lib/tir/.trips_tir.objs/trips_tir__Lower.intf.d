lib/tir/lower.mli: Ast Cfg
