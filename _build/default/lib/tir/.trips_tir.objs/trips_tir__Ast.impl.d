lib/tir/ast.ml: Format Int64 List Printf Ty
