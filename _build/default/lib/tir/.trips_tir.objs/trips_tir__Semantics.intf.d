lib/tir/semantics.mli: Ast Ty
