lib/tir/transform.mli: Ast
