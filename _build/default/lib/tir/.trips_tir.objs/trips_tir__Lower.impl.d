lib/tir/lower.ml: Ast Cfg Hashtbl Int64 List Printf Ty
