lib/tir/interp.ml: Array Ast Cfg Hashtbl Image Int64 List Semantics Ty
