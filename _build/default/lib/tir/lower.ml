type env = {
  fn : Cfg.func;
  vars : (string, Cfg.vreg) Hashtbl.t;
  mutable cur : Cfg.block;          (* block under construction *)
  mutable done_blocks : Cfg.block list; (* finished, reversed *)
  mutable label_id : int;
}

let new_label env prefix =
  let id = env.label_id in
  env.label_id <- id + 1;
  Printf.sprintf "%s.%s%d" env.fn.name prefix id

let emit env ins = env.cur.ins <- ins :: env.cur.ins

let var env x =
  match Hashtbl.find_opt env.vars x with
  | Some r -> r
  | None ->
    let r = Cfg.fresh env.fn in
    Hashtbl.add env.vars x r;
    r

(* Close the current block with [term] and open a fresh one labelled [label]. *)
let seal env term label =
  env.cur.term <- term;
  env.cur.ins <- List.rev env.cur.ins;
  env.done_blocks <- env.cur :: env.done_blocks;
  env.cur <- { Cfg.label; ins = []; term = Cfg.Ret None }

let rec lower_expr env (e : Ast.expr) : Cfg.operand =
  match e with
  | Ast.Int i -> Cfg.Ci i
  | Ast.Flt f -> Cfg.Cf f
  | Ast.Var x -> Cfg.Reg (var env x)
  | Ast.Glo s -> Cfg.Sym s
  | Ast.Bin (op, a, b) ->
    let oa = lower_expr env a in
    let ob = lower_expr env b in
    let d = Cfg.fresh env.fn in
    emit env (Cfg.Bin (op, d, oa, ob));
    Cfg.Reg d
  | Ast.Un (op, a) ->
    let oa = lower_expr env a in
    let d = Cfg.fresh env.fn in
    emit env (Cfg.Un (op, d, oa));
    Cfg.Reg d
  | Ast.Load (t, w, addr) ->
    let base, off = lower_addr env addr in
    let d = Cfg.fresh env.fn in
    emit env (Cfg.Load (t, w, d, base, off));
    Cfg.Reg d
  | Ast.Call (f, args) ->
    let oargs = List.map (lower_expr env) args in
    let d = Cfg.fresh env.fn in
    emit env (Cfg.Call (Some d, f, oargs));
    Cfg.Reg d

(* Fold [e + constant] into a displacement. *)
and lower_addr env (e : Ast.expr) : Cfg.operand * int =
  match e with
  | Ast.Bin (Ast.Add, a, Ast.Int k) when Int64.abs k < 32768L ->
    (lower_expr env a, Int64.to_int k)
  | Ast.Bin (Ast.Add, Ast.Int k, a) when Int64.abs k < 32768L ->
    (lower_expr env a, Int64.to_int k)
  | Ast.Bin (Ast.Sub, a, Ast.Int k) when Int64.abs k < 32768L ->
    (lower_expr env a, -Int64.to_int k)
  | _ -> (lower_expr env e, 0)

let rec lower_stmt env (s : Ast.stmt) : unit =
  match s with
  | Ast.Let (x, e) ->
    let o = lower_expr env e in
    let r = var env x in
    emit env (Cfg.Mov (r, o))
  | Ast.Store (w, addr, value) ->
    let base, off = lower_addr env addr in
    let ov = lower_expr env value in
    emit env (Cfg.Store (w, base, off, ov))
  | Ast.Expr e -> (
    match e with
    | Ast.Call (f, args) ->
      let oargs = List.map (lower_expr env) args in
      emit env (Cfg.Call (None, f, oargs))
    | _ -> ignore (lower_expr env e))
  | Ast.Return None -> seal env (Cfg.Ret None) (new_label env "dead")
  | Ast.Return (Some e) ->
    let o = lower_expr env e in
    seal env (Cfg.Ret (Some o)) (new_label env "dead")
  | Ast.If (c, then_s, else_s) ->
    let oc = lower_expr env c in
    let lt = new_label env "then" in
    let le = new_label env "else" in
    let lj = new_label env "join" in
    (match else_s with
    | [] ->
      seal env (Cfg.Br (oc, lt, lj)) lt;
      List.iter (lower_stmt env) then_s;
      seal env (Cfg.Jmp lj) lj
    | _ ->
      seal env (Cfg.Br (oc, lt, le)) lt;
      List.iter (lower_stmt env) then_s;
      seal env (Cfg.Jmp lj) le;
      List.iter (lower_stmt env) else_s;
      seal env (Cfg.Jmp lj) lj)
  | Ast.While (c, body) ->
    let lh = new_label env "head" in
    let lb = new_label env "body" in
    let lx = new_label env "exit" in
    seal env (Cfg.Jmp lh) lh;
    let oc = lower_expr env c in
    seal env (Cfg.Br (oc, lb, lx)) lb;
    List.iter (lower_stmt env) body;
    seal env (Cfg.Jmp lh) lx
  | Ast.For (x, lo, hi, step, body) ->
    assert (step <> 0L);
    let r = var env x in
    let olo = lower_expr env lo in
    emit env (Cfg.Mov (r, olo));
    let lh = new_label env "head" in
    let lb = new_label env "body" in
    let lx = new_label env "exit" in
    seal env (Cfg.Jmp lh) lh;
    let ohi = lower_expr env hi in
    let cond = Cfg.fresh env.fn in
    let cmp = if step > 0L then Ast.Lt else Ast.Gt in
    emit env (Cfg.Bin (cmp, cond, Cfg.Reg r, ohi));
    seal env (Cfg.Br (Cfg.Reg cond, lb, lx)) lb;
    List.iter (lower_stmt env) body;
    emit env (Cfg.Bin (Ast.Add, r, Cfg.Reg r, Cfg.Ci step));
    seal env (Cfg.Jmp lh) lx

(* Drop blocks not reachable from the entry (e.g. the placeholder opened
   after a [return]). *)
let prune_unreachable (fn : Cfg.func) =
  match fn.blocks with
  | [] -> ()
  | entry :: _ ->
    let reached = Hashtbl.create 16 in
    let rec visit label =
      if not (Hashtbl.mem reached label) then begin
        Hashtbl.add reached label ();
        match List.find_opt (fun (b : Cfg.block) -> b.label = label) fn.blocks with
        | Some b -> List.iter visit (Cfg.successors b.term)
        | None -> invalid_arg ("Lower: missing block " ^ label)
      end
    in
    visit entry.label;
    fn.blocks <- List.filter (fun (b : Cfg.block) -> Hashtbl.mem reached b.label) fn.blocks

let func (f : Ast.func) : Cfg.func =
  let fn =
    { Cfg.name = f.fname; params = []; ret = f.ret; blocks = []; next_vreg = 0 }
  in
  let vars = Hashtbl.create 16 in
  let params =
    List.map
      (fun (x, t) ->
        let r = fn.next_vreg in
        fn.next_vreg <- r + 1;
        Hashtbl.add vars x r;
        (r, t))
      f.params
  in
  let entry_label = f.fname ^ ".entry" in
  let env =
    {
      fn;
      vars;
      cur = { Cfg.label = entry_label; ins = []; term = Cfg.Ret None };
      done_blocks = [];
      label_id = 0;
    }
  in
  List.iter (lower_stmt env) f.body;
  (* close trailing block with an implicit return *)
  seal env (Cfg.Ret (match f.ret with None -> None | Some t -> Some (match t with Ty.I64 -> Cfg.Ci 0L | Ty.F64 -> Cfg.Cf 0.))) "unreachable";
  fn.params <- params;
  fn.blocks <- List.rev env.done_blocks;
  prune_unreachable fn;
  fn

let program (p : Ast.program) : Cfg.program =
  { Cfg.globals = p.globals; funcs = List.map func p.funcs }
