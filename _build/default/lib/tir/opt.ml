let pp_compact ppf (f : Cfg.func) = Cfg.pp_func ppf f

let is_const = function Cfg.Ci _ | Cfg.Cf _ -> true | Cfg.Reg _ | Cfg.Sym _ -> false

let const_value = function
  | Cfg.Ci i -> Ty.Vi i
  | Cfg.Cf f -> Ty.Vf f
  | Cfg.Reg _ | Cfg.Sym _ -> invalid_arg "const_value"

let operand_of_value = function
  | Ty.Vi i -> Cfg.Ci i
  | Ty.Vf f -> Cfg.Cf f

(* Division by a constant zero must keep trapping at runtime, so skip it. *)
let foldable_binop (op : Ast.binop) b =
  match op with
  | Ast.Div | Ast.Rem -> ( match b with Cfg.Ci 0L -> false | _ -> true)
  | _ -> true

let constfold (f : Cfg.func) =
  let fold_ins ins =
    match ins with
    | Cfg.Bin (op, d, a, b) when is_const a && is_const b && foldable_binop op b -> (
      match Semantics.binop op (const_value a) (const_value b) with
      | v -> Cfg.Mov (d, operand_of_value v)
      | exception Semantics.Trap _ -> ins)
    | Cfg.Un (op, d, a) when is_const a -> (
      match Semantics.unop op (const_value a) with
      | v -> Cfg.Mov (d, operand_of_value v)
      | exception Semantics.Trap _ -> ins)
    (* algebraic identities *)
    | Cfg.Bin (Ast.Add, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Add, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Sub, d, a, Cfg.Ci 0L)
    | Cfg.Bin (Ast.Or, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Or, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Xor, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Xor, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Shl, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Lsr, d, a, Cfg.Ci 0L)
    | Cfg.Bin (Ast.Asr, d, a, Cfg.Ci 0L) ->
      Cfg.Mov (d, a)
    | Cfg.Bin (Ast.Mul, d, a, Cfg.Ci 1L) | Cfg.Bin (Ast.Mul, d, Cfg.Ci 1L, a)
    | Cfg.Bin (Ast.Div, d, a, Cfg.Ci 1L) ->
      Cfg.Mov (d, a)
    | Cfg.Bin (Ast.Mul, d, _, Cfg.Ci 0L) | Cfg.Bin (Ast.Mul, d, Cfg.Ci 0L, _)
    | Cfg.Bin (Ast.And, d, _, Cfg.Ci 0L) | Cfg.Bin (Ast.And, d, Cfg.Ci 0L, _) ->
      Cfg.Mov (d, Cfg.Ci 0L)
    | _ -> ins
  in
  List.iter (fun (b : Cfg.block) -> b.ins <- List.map fold_ins b.ins) f.blocks

(* Block-local propagation: map vreg -> known operand.  An entry is killed
   when any register it mentions is redefined. *)
let copyprop (f : Cfg.func) =
  let run_block (b : Cfg.block) =
    let known : (Cfg.vreg, Cfg.operand) Hashtbl.t = Hashtbl.create 16 in
    let resolve op =
      match op with
      | Cfg.Reg r -> ( match Hashtbl.find_opt known r with Some o -> o | None -> op)
      | _ -> op
    in
    let kill d =
      Hashtbl.remove known d;
      let stale =
        Hashtbl.fold
          (fun k v acc -> match v with Cfg.Reg r when r = d -> k :: acc | _ -> acc)
          known []
      in
      List.iter (Hashtbl.remove known) stale
    in
    let step ins =
      let ins = Cfg.map_ins_operands resolve ins in
      List.iter kill (Cfg.defs ins);
      (match ins with Cfg.Mov (d, src) when src <> Cfg.Reg d -> Hashtbl.replace known d src | _ -> ());
      ins
    in
    b.ins <- List.map step b.ins;
    b.term <- Cfg.map_term_operands resolve b.term
  in
  List.iter run_block f.blocks

(* Block-local CSE over pure ops and loads. *)
type expr_key =
  | Kbin of Ast.binop * Cfg.operand * Cfg.operand
  | Kun of Ast.unop * Cfg.operand
  | Kload of Ty.t * Ty.width * Cfg.operand * int

let cse (f : Cfg.func) =
  let run_block (b : Cfg.block) =
    let avail : (expr_key, Cfg.vreg) Hashtbl.t = Hashtbl.create 16 in
    let kill_reg d =
      let stale =
        Hashtbl.fold
          (fun k v acc ->
            let mentions =
              v = d
              ||
              match k with
              | Kbin (_, a, bb) -> a = Cfg.Reg d || bb = Cfg.Reg d
              | Kun (_, a) -> a = Cfg.Reg d
              | Kload (_, _, a, _) -> a = Cfg.Reg d
            in
            if mentions then k :: acc else acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) stale
    in
    let kill_memory () =
      let stale =
        Hashtbl.fold
          (fun k _ acc -> match k with Kload _ -> k :: acc | _ -> acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) stale
    in
    (* An expression keyed on its own destination (v3 = v3 + 1) must not be
       recorded: after the write, the key no longer denotes the result. *)
    let key_mentions key d =
      match key with
      | Kbin (_, a, b) -> a = Cfg.Reg d || b = Cfg.Reg d
      | Kun (_, a) | Kload (_, _, a, _) -> a = Cfg.Reg d
    in
    let lookup_or_record key d ins =
      match Hashtbl.find_opt avail key with
      | Some r ->
        kill_reg d;
        Cfg.Mov (d, Cfg.Reg r)
      | None ->
        kill_reg d;
        if not (key_mentions key d) then Hashtbl.replace avail key d;
        ins
    in
    let step ins =
      match ins with
      | Cfg.Bin (op, d, a, bb) -> lookup_or_record (Kbin (op, a, bb)) d ins
      | Cfg.Un (op, d, a) -> lookup_or_record (Kun (op, a)) d ins
      | Cfg.Load (t, w, d, a, off) -> lookup_or_record (Kload (t, w, a, off)) d ins
      | Cfg.Mov (d, _) ->
        kill_reg d;
        ins
      | Cfg.Store _ ->
        kill_memory ();
        ins
      | Cfg.Call (d, _, _) ->
        kill_memory ();
        Option.iter kill_reg d;
        ins
    in
    b.ins <- List.map step b.ins
  in
  List.iter run_block f.blocks

let dce (f : Cfg.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let used : (Cfg.vreg, unit) Hashtbl.t = Hashtbl.create 64 in
    let mark = function Cfg.Reg r -> Hashtbl.replace used r () | _ -> () in
    List.iter
      (fun (b : Cfg.block) ->
        List.iter (fun ins -> List.iter mark (Cfg.uses ins)) b.ins;
        List.iter mark (Cfg.term_uses b.term))
      f.blocks;
    let pure_dead ins =
      match ins with
      | Cfg.Bin (op, d, _, b) ->
        let trapping =
          match op with
          | Ast.Div | Ast.Rem -> ( match b with Cfg.Ci z when z <> 0L -> false | _ -> true)
          | _ -> false
        in
        (not trapping) && not (Hashtbl.mem used d)
      | Cfg.Un (_, d, _) | Cfg.Mov (d, _) -> not (Hashtbl.mem used d)
      | Cfg.Load (_, _, d, _, _) -> not (Hashtbl.mem used d)
      | Cfg.Store _ | Cfg.Call _ -> false
    in
    List.iter
      (fun (b : Cfg.block) ->
        let before = List.length b.ins in
        b.ins <- List.filter (fun i -> not (pure_dead i)) b.ins;
        if List.length b.ins <> before then changed := true)
      f.blocks
  done

let simplify_branches (f : Cfg.func) =
  List.iter
    (fun (b : Cfg.block) ->
      match b.term with
      | Cfg.Br (Cfg.Ci c, l1, l2) -> b.term <- Cfg.Jmp (if c <> 0L then l1 else l2)
      | Cfg.Br (Cfg.Cf c, l1, l2) -> b.term <- Cfg.Jmp (if c <> 0. then l1 else l2)
      | _ -> ())
    f.blocks;
  (* drop blocks made unreachable *)
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
    let reached = Hashtbl.create 16 in
    let tbl = Hashtbl.create 16 in
    List.iter (fun (b : Cfg.block) -> Hashtbl.replace tbl b.label b) f.blocks;
    let rec visit l =
      if not (Hashtbl.mem reached l) then begin
        Hashtbl.add reached l ();
        match Hashtbl.find_opt tbl l with
        | Some b -> List.iter visit (Cfg.successors b.term)
        | None -> ()
      end
    in
    visit entry.label;
    f.blocks <- List.filter (fun (b : Cfg.block) -> Hashtbl.mem reached b.label) f.blocks

let run ?(rounds = 10) (f : Cfg.func) =
  (* iterate to a fixpoint (bounded): later passes expose work for earlier
     ones, e.g. CSE introduces moves that copyprop then propagates *)
  let fingerprint () = Format.asprintf "%a" pp_compact f in
  let rec go n prev =
    if n > 0 then begin
      constfold f;
      copyprop f;
      cse f;
      dce f;
      simplify_branches f;
      let now = fingerprint () in
      if now <> prev then go (n - 1) now
    end
  in
  go rounds (fingerprint ())

let run_program ?rounds (p : Cfg.program) = List.iter (run ?rounds) p.funcs
