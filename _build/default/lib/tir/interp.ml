type counts = {
  ops : int;
  loads : int;
  stores : int;
  branches : int;
  calls : int;
}

type outcome = {
  result : Ty.value option;
  counts : counts;
}

exception Out_of_fuel

type state = {
  image : Image.t;
  mutable fuel : int;
  mutable c_ops : int;
  mutable c_loads : int;
  mutable c_stores : int;
  mutable c_branches : int;
  mutable c_calls : int;
}

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let finish st result =
  {
    result;
    counts =
      {
        ops = st.c_ops;
        loads = st.c_loads;
        stores = st.c_stores;
        branches = st.c_branches;
        calls = st.c_calls;
      };
  }

(* ------------------------------------------------------------------ *)
(* AST interpreter                                                     *)
(* ------------------------------------------------------------------ *)

exception Returned of Ty.value option

let run_ast ?(fuel = 200_000_000) (p : Ast.program) image entry args =
  let st = { image; fuel; c_ops = 0; c_loads = 0; c_stores = 0; c_branches = 0; c_calls = 0 } in
  let rec call_fn name args =
    st.c_calls <- st.c_calls + 1;
    let f = try Ast.find_func p name with Not_found -> raise (Semantics.Trap ("unknown function " ^ name)) in
    let env : (string, Ty.value) Hashtbl.t = Hashtbl.create 16 in
    (try
       List.iter2 (fun (x, _) v -> Hashtbl.replace env x v) f.params args
     with Invalid_argument _ -> raise (Semantics.Trap ("arity mismatch calling " ^ name)));
    try
      List.iter (exec env) f.body;
      None
    with Returned v -> v
  and eval env (e : Ast.expr) : Ty.value =
    burn st;
    match e with
    | Ast.Int i -> Ty.Vi i
    | Ast.Flt f -> Ty.Vf f
    | Ast.Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> raise (Semantics.Trap ("unbound variable " ^ x)))
    | Ast.Glo s -> Ty.Vi (Int64.of_int (Image.addr_of st.image s))
    | Ast.Bin (op, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      st.c_ops <- st.c_ops + 1;
      Semantics.binop op va vb
    | Ast.Un (op, a) ->
      let va = eval env a in
      st.c_ops <- st.c_ops + 1;
      Semantics.unop op va
    | Ast.Load (t, w, addr) ->
      let a = Int64.to_int (Ty.as_int (eval env addr)) in
      st.c_loads <- st.c_loads + 1;
      Image.load st.image t w a
    | Ast.Call (fname, es) ->
      let vs = List.map (eval env) es in
      (match call_fn fname vs with
      | Some v -> v
      | None -> raise (Semantics.Trap (fname ^ " returned no value")))
  and exec env (s : Ast.stmt) : unit =
    burn st;
    match s with
    | Ast.Let (x, e) -> Hashtbl.replace env x (eval env e)
    | Ast.Store (w, addr, value) ->
      let a = Int64.to_int (Ty.as_int (eval env addr)) in
      let value = eval env value in
      st.c_stores <- st.c_stores + 1;
      Image.store st.image w a value
    | Ast.If (c, then_s, else_s) ->
      st.c_branches <- st.c_branches + 1;
      if Ty.truthy (eval env c) then List.iter (exec env) then_s
      else List.iter (exec env) else_s
    | Ast.While (c, body) ->
      let rec loop () =
        st.c_branches <- st.c_branches + 1;
        if Ty.truthy (eval env c) then begin
          List.iter (exec env) body;
          loop ()
        end
      in
      loop ()
    | Ast.For (x, lo, hi, step, body) ->
      Hashtbl.replace env x (eval env lo);
      let continue_ () =
        let i = Ty.as_int (Hashtbl.find env x) in
        let h = Ty.as_int (eval env hi) in
        st.c_branches <- st.c_branches + 1;
        if step > 0L then i < h else i > h
      in
      while continue_ () do
        List.iter (exec env) body;
        let i = Ty.as_int (Hashtbl.find env x) in
        Hashtbl.replace env x (Ty.Vi (Int64.add i step))
      done
    | Ast.Expr e -> ignore (eval env e)
    | Ast.Return None -> raise (Returned None)
    | Ast.Return (Some e) -> raise (Returned (Some (eval env e)))
  in
  let result = call_fn entry args in
  finish st result

(* ------------------------------------------------------------------ *)
(* CFG interpreter                                                     *)
(* ------------------------------------------------------------------ *)

let run_cfg ?(fuel = 200_000_000) (p : Cfg.program) image entry args =
  let st = { image; fuel; c_ops = 0; c_loads = 0; c_stores = 0; c_branches = 0; c_calls = 0 } in
  let rec call_fn name args =
    st.c_calls <- st.c_calls + 1;
    let f = try Cfg.find_func p name with Not_found -> raise (Semantics.Trap ("unknown function " ^ name)) in
    let regs = Array.make (max 1 f.next_vreg) (Ty.Vi 0L) in
    (try List.iter2 (fun (r, _) v -> regs.(r) <- v) f.params args
     with Invalid_argument _ -> raise (Semantics.Trap ("arity mismatch calling " ^ name)));
    let blocks = Hashtbl.create 16 in
    List.iter (fun (b : Cfg.block) -> Hashtbl.replace blocks b.label b) f.blocks;
    let operand = function
      | Cfg.Reg r -> regs.(r)
      | Cfg.Ci i -> Ty.Vi i
      | Cfg.Cf x -> Ty.Vf x
      | Cfg.Sym s -> Ty.Vi (Int64.of_int (Image.addr_of st.image s))
    in
    let exec_ins (ins : Cfg.ins) =
      burn st;
      match ins with
      | Cfg.Bin (op, d, a, b) ->
        st.c_ops <- st.c_ops + 1;
        regs.(d) <- Semantics.binop op (operand a) (operand b)
      | Cfg.Un (op, d, a) ->
        st.c_ops <- st.c_ops + 1;
        regs.(d) <- Semantics.unop op (operand a)
      | Cfg.Mov (d, a) -> regs.(d) <- operand a
      | Cfg.Load (t, w, d, a, off) ->
        st.c_loads <- st.c_loads + 1;
        let addr = Int64.to_int (Ty.as_int (operand a)) + off in
        regs.(d) <- Image.load st.image t w addr
      | Cfg.Store (w, a, off, v) ->
        st.c_stores <- st.c_stores + 1;
        let addr = Int64.to_int (Ty.as_int (operand a)) + off in
        Image.store st.image w addr (operand v)
      | Cfg.Call (d, fname, cargs) ->
        let vs = List.map operand cargs in
        let r = call_fn fname vs in
        (match (d, r) with
        | Some d, Some v -> regs.(d) <- v
        | Some _, None -> raise (Semantics.Trap (fname ^ " returned no value"))
        | None, _ -> ())
    in
    let rec run_block (b : Cfg.block) =
      List.iter exec_ins b.ins;
      burn st;
      match b.term with
      | Cfg.Jmp l -> run_block (Hashtbl.find blocks l)
      | Cfg.Br (c, l1, l2) ->
        st.c_branches <- st.c_branches + 1;
        let l = if Ty.truthy (operand c) then l1 else l2 in
        run_block (Hashtbl.find blocks l)
      | Cfg.Ret None -> None
      | Cfg.Ret (Some v) -> Some (operand v)
    in
    run_block (Cfg.entry f)
  in
  let result = call_fn entry args in
  finish st result
