(** Reference interpreters for TIR.

    Two independent evaluators — one over the structured AST, one over the
    CFG — provide the golden results that the EDGE and RISC pipelines must
    reproduce.  Both run against an {!Image} and are fuel-limited so a broken
    benchmark cannot hang the harness. *)

type counts = {
  ops : int;          (* arithmetic/logic/compare operations evaluated *)
  loads : int;
  stores : int;
  branches : int;     (* conditional decisions taken *)
  calls : int;
}

type outcome = {
  result : Ty.value option;
  counts : counts;
}

exception Out_of_fuel

val run_ast :
  ?fuel:int -> Ast.program -> Image.t -> string -> Ty.value list -> outcome
(** [run_ast program image entry args] evaluates [entry] with [args], mutating
    [image].  Default fuel is 200 million evaluation steps. *)

val run_cfg :
  ?fuel:int -> Cfg.program -> Image.t -> string -> Ty.value list -> outcome
(** Same contract over the lowered form. *)
