(** Single definition of operator semantics.

    The TIR interpreter, the EDGE functional executor and the RISC functional
    simulator all evaluate operators through this module, so a benchmark's
    golden result is the same value no matter which pipeline produced it —
    the property the integration tests check. *)

exception Trap of string
(** Raised on division by zero, misaligned/out-of-range access, exhausted
    fuel, and other unrecoverable conditions. *)

val binop : Ast.binop -> Ty.value -> Ty.value -> Ty.value
val unop : Ast.unop -> Ty.value -> Ty.value

val sext : Ty.width -> int64 -> int64
(** Sign-extend the low bytes. *)

val zext : Ty.width -> int64 -> int64
(** Zero-extend the low bytes. *)
