(** Lowering structured TIR to control-flow-graph form.

    Loops become explicit header/body/latch blocks; short-circuit behaviour is
    not needed because TIR comparisons are strict.  Address expressions of the
    form [base + constant] are folded into load/store offsets, matching the
    displacement addressing of both target ISAs. *)

val func : Ast.func -> Cfg.func
val program : Ast.program -> Cfg.program
