open Ast

let rec subst_expr x rep (e : expr) : expr =
  match e with
  | Int _ | Flt _ | Glo _ -> e
  | Var y -> if y = x then rep else e
  | Bin (op, a, b) -> Bin (op, subst_expr x rep a, subst_expr x rep b)
  | Un (op, a) -> Un (op, subst_expr x rep a)
  | Load (t, w, a) -> Load (t, w, subst_expr x rep a)
  | Call (f, args) -> Call (f, List.map (subst_expr x rep) args)

(* Substitute reads of [x]; stops (returns None) if the statement list
   assigns [x], since the substitution would then be wrong. *)
let rec subst_stmts x rep (ss : stmt list) : stmt list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | s :: rest -> (
      match subst_stmt x rep s with
      | Some s' -> go (s' :: acc) rest
      | None -> None)
  in
  go [] ss

and subst_stmt x rep (s : stmt) : stmt option =
  match s with
  | Let (y, e) ->
    if y = x then None else Some (Let (y, subst_expr x rep e))
  | Store (w, a, v) -> Some (Store (w, subst_expr x rep a, subst_expr x rep v))
  | If (c, t, e) -> (
    match (subst_stmts x rep t, subst_stmts x rep e) with
    | Some t', Some e' -> Some (If (subst_expr x rep c, t', e'))
    | _ -> None)
  | While (c, b) -> (
    match subst_stmts x rep b with
    | Some b' -> Some (While (subst_expr x rep c, b'))
    | None -> None)
  | For (y, lo, hi, st, b) ->
    if y = x then
      (* the inner loop shadows [x] by assigning it *)
      None
    else (
      match subst_stmts x rep b with
      | Some b' -> Some (For (y, subst_expr x rep lo, subst_expr x rep hi, st, b'))
      | None -> None)
  | Expr e -> Some (Expr (subst_expr x rep e))
  | Return None -> Some s
  | Return (Some e) -> Some (Return (Some (subst_expr x rep e)))

(* Variables assigned anywhere in a statement list. *)
let rec assigned_vars acc = function
  | [] -> acc
  | Let (x, _) :: rest -> assigned_vars (x :: acc) rest
  | For (x, _, _, _, b) :: rest -> assigned_vars (assigned_vars (x :: acc) b) rest
  | If (_, t, e) :: rest -> assigned_vars (assigned_vars (assigned_vars acc t) e) rest
  | While (_, b) :: rest -> assigned_vars (assigned_vars acc b) rest
  | (Store _ | Expr _ | Return _) :: rest -> assigned_vars acc rest

let rec vars_of_expr acc = function
  | Int _ | Flt _ | Glo _ -> acc
  | Var x -> x :: acc
  | Bin (_, a, b) -> vars_of_expr (vars_of_expr acc a) b
  | Un (_, a) -> vars_of_expr acc a
  | Load (_, _, a) -> vars_of_expr acc a
  | Call (_, args) -> List.fold_left vars_of_expr acc args

let rec has_call = function
  | Int _ | Flt _ | Glo _ | Var _ -> false
  | Bin (_, a, b) -> has_call a || has_call b
  | Un (_, a) -> has_call a
  | Load (_, _, a) -> has_call a
  | Call _ -> true

(* ------------------------------------------------------------------ *)
(* Loop unrolling                                                      *)
(* ------------------------------------------------------------------ *)

let unroll_for factor x lo hi step body =
  let body_assigns = assigned_vars [] body in
  let hi_vars = vars_of_expr [] hi in
  let legal =
    factor > 1
    && (not (List.mem x body_assigns))
    && (not (List.exists (fun v -> List.mem v body_assigns) hi_vars))
    && (not (has_call hi))
  in
  if not legal then None
  else begin
    (* Build the k-fold body: copy j reads the index as (x + j*step). *)
    let copies = ref [] in
    let ok = ref true in
    for j = factor - 1 downto 0 do
      let idx =
        if j = 0 then Var x
        else Bin (Add, Var x, Int (Int64.mul (Int64.of_int j) step))
      in
      match subst_stmts x idx body with
      | Some b -> copies := b :: !copies
      | None -> ok := false
    done;
    if not !ok then None
    else begin
      let big_body = List.concat !copies in
      let slack = Int64.mul (Int64.of_int (factor - 1)) step in
      (* main loop runs while all [factor] iterations are in range *)
      let main_hi = Bin (Sub, hi, Int slack) in
      let main = For (x, lo, main_hi, Int64.mul (Int64.of_int factor) step, big_body) in
      let remainder = For (x, Var x, hi, step, body) in
      Some [ main; remainder ]
    end
  end

let rec has_loop = function
  | For _ | While _ -> true
  | If (_, t, e) -> List.exists has_loop t || List.exists has_loop e
  | Let _ | Store _ | Expr _ | Return _ -> false

(* Only innermost loops are unrolled: unrolling every nesting level would
   grow code by factor^depth (and the innermost loop is where unrolling
   pays in any case). *)
let rec unroll_stmt factor (s : stmt) : stmt list =
  match s with
  | For (x, lo, hi, step, body) when not (List.exists has_loop body) -> (
    match unroll_for factor x lo hi step body with
    | Some stmts -> stmts
    | None -> [ For (x, lo, hi, step, body) ])
  | For (x, lo, hi, step, body) -> [ For (x, lo, hi, step, unroll_body factor body) ]
  | If (c, t, e) -> [ If (c, unroll_body factor t, unroll_body factor e) ]
  | While (c, b) -> [ While (c, unroll_body factor b) ]
  | s -> [ s ]

and unroll_body factor ss = List.concat_map (unroll_stmt factor) ss

let unroll ~factor (f : func) : func =
  if factor <= 1 then f else { f with body = unroll_body factor f.body }

let unroll_program ~factor (p : program) : program =
  { p with funcs = List.map (unroll ~factor) p.funcs }

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let rec straight_line (ss : stmt list) =
  match ss with
  | [] -> true
  | [ Return _ ] -> true
  | (Let _ | Store _ | Expr _) :: rest -> straight_line rest
  | (If _ | While _ | For _ | Return _) :: _ -> false

let inlinable (f : func) =
  straight_line f.body
  && List.length f.body <= 24

let gensym =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s$%d" prefix !n

(* Rename every local of an inlined body with a fresh suffix so it cannot
   collide with the caller's variables. *)
let freshen_func (f : func) =
  let suffix = gensym "inl" in
  let rename x = x ^ "." ^ suffix in
  let rec rn_expr = function
    | (Int _ | Flt _ | Glo _) as e -> e
    | Var x -> Var (rename x)
    | Bin (op, a, b) -> Bin (op, rn_expr a, rn_expr b)
    | Un (op, a) -> Un (op, rn_expr a)
    | Load (t, w, a) -> Load (t, w, rn_expr a)
    | Call (g, args) -> Call (g, List.map rn_expr args)
  in
  let rec rn_stmt = function
    | Let (x, e) -> Let (rename x, rn_expr e)
    | Store (w, a, v) -> Store (w, rn_expr a, rn_expr v)
    | If (c, t, e) -> If (rn_expr c, List.map rn_stmt t, List.map rn_stmt e)
    | While (c, b) -> While (rn_expr c, List.map rn_stmt b)
    | For (x, lo, hi, st, b) -> For (rename x, rn_expr lo, rn_expr hi, st, List.map rn_stmt b)
    | Expr e -> Expr (rn_expr e)
    | Return e -> Return (Option.map rn_expr e)
  in
  let params = List.map (fun (x, t) -> (rename x, t)) f.params in
  { f with params; body = List.map rn_stmt f.body }

let inline (p : program) : program =
  let candidates =
    List.filter_map (fun f -> if inlinable f then Some (f.fname, f) else None) p.funcs
  in
  let find name = List.assoc_opt name candidates in
  (* Expand one call: returns binding statements and the result expression. *)
  let expand fname args : (stmt list * expr option) option =
    match find fname with
    | None -> None
    | Some callee ->
      let callee = freshen_func callee in
      let binds = List.map2 (fun (x, _) a -> Let (x, a)) callee.params args in
      let rec split acc = function
        | [] -> (List.rev acc, None)
        | [ Return e ] -> (List.rev acc, e)
        | s :: rest -> split (s :: acc) rest
      in
      let body, ret = split [] callee.body in
      Some (binds @ body, ret)
  in
  (* Hoist and inline calls appearing in expressions.  Returns the
     statements to prepend and the rewritten expression. *)
  let rec rw_expr (e : expr) : stmt list * expr =
    match e with
    | Int _ | Flt _ | Glo _ | Var _ -> ([], e)
    | Bin (op, a, b) ->
      let sa, a' = rw_expr a in
      let sb, b' = rw_expr b in
      (sa @ sb, Bin (op, a', b'))
    | Un (op, a) ->
      let sa, a' = rw_expr a in
      (sa, Un (op, a'))
    | Load (t, w, a) ->
      let sa, a' = rw_expr a in
      (sa, Load (t, w, a'))
    | Call (fname, args) -> (
      let pres, args' =
        List.fold_right
          (fun a (ps, as_) ->
            let pa, a' = rw_expr a in
            (pa @ ps, a' :: as_))
          args ([], [])
      in
      match expand fname args' with
      | Some (stmts, Some ret) ->
        let tmp = gensym "ret" in
        (pres @ stmts @ [ Let (tmp, ret) ], Var tmp)
      | Some (_, None) | None -> (pres, Call (fname, args')))
  in
  let rec rw_stmt (s : stmt) : stmt list =
    match s with
    | Let (x, e) ->
      let pre, e' = rw_expr e in
      pre @ [ Let (x, e') ]
    | Store (w, a, v) ->
      let pa, a' = rw_expr a in
      let pv, v' = rw_expr v in
      pa @ pv @ [ Store (w, a', v') ]
    | If (c, t, e) ->
      let pc, c' = rw_expr c in
      pc @ [ If (c', rw_stmts t, rw_stmts e) ]
    | While (c, b) ->
      (* only rewrite the body: hoisting out of the condition would change
         how often the callee runs *)
      let pc, c' = rw_expr c in
      if pc = [] then [ While (c', rw_stmts b) ] else [ While (c, rw_stmts b) ]
    | For (x, lo, hi, st, b) ->
      let plo, lo' = rw_expr lo in
      let phi, hi' = rw_expr hi in
      if phi = [] then plo @ [ For (x, lo', hi', st, rw_stmts b) ]
      else [ For (x, lo, hi, st, rw_stmts b) ]
    | Expr (Call (fname, args)) -> (
      let pres, args' =
        List.fold_right
          (fun a (ps, as_) ->
            let pa, a' = rw_expr a in
            (pa @ ps, a' :: as_))
          args ([], [])
      in
      match expand fname args' with
      | Some (stmts, _) -> pres @ stmts
      | None -> pres @ [ Expr (Call (fname, args')) ])
    | Expr e ->
      let pre, e' = rw_expr e in
      pre @ [ Expr e' ]
    | Return None -> [ Return None ]
    | Return (Some e) ->
      let pre, e' = rw_expr e in
      pre @ [ Return (Some e') ]
  and rw_stmts ss = List.concat_map rw_stmt ss in
  let funcs =
    List.map
      (fun f ->
        if inlinable f then f (* leaf helpers keep their bodies *)
        else { f with body = rw_stmts f.body })
      p.funcs
  in
  { p with funcs }

(* ------------------------------------------------------------------ *)
(* Tree-height reduction                                               *)
(* ------------------------------------------------------------------ *)

(* The TRIPS compiler applies tree-height reduction to expose parallelism
   in reduction chains (paper 2).  We implement the loop form: a counted
   innermost loop accumulating [acc = acc + e] is split across four
   interleaved accumulators combined after the loop, shortening the
   loop-carried dependence by 4x.  Applied at the source level so every
   pipeline (including the reference interpreter) computes the identical
   floating-point association. *)

let reassoc_ways = 4

let rec vars_of_stmts acc = function
  | [] -> acc
  | s :: rest ->
    let acc =
      match s with
      | Let (_, e) -> vars_of_expr acc e
      | Store (_, a, v) -> vars_of_expr (vars_of_expr acc a) v
      | If (c, t, e) -> vars_of_expr (vars_of_stmts (vars_of_stmts acc t) e) c
      | While (c, b) -> vars_of_expr (vars_of_stmts acc b) c
      | For (_, lo, hi, _, b) -> vars_of_expr (vars_of_expr (vars_of_stmts acc b) lo) hi
      | Expr e -> vars_of_expr acc e
      | Return (Some e) -> vars_of_expr acc e
      | Return None -> acc
    in
    vars_of_stmts acc rest

let rec stmts_have_return = function
  | [] -> false
  | Return _ :: _ -> true
  | If (_, t, e) :: rest -> stmts_have_return t || stmts_have_return e || stmts_have_return rest
  | (While (_, b) | For (_, _, _, _, b)) :: rest -> stmts_have_return b || stmts_have_return rest
  | _ :: rest -> stmts_have_return rest

(* Find the unique reduction statement [acc = acc op e] in a loop body. *)
let find_reduction body =
  let candidates =
    List.filter_map
      (fun s ->
        match s with
        | Let (a, Bin ((Add | Fadd) as op, Var a', e)) when a = a' -> Some (a, op, e)
        | Let (a, Bin ((Add | Fadd) as op, e, Var a')) when a = a' -> Some (a, op, e)
        | _ -> None)
      body
  in
  match candidates with
  | [ (a, op, e) ] ->
    (* [a] must appear nowhere else: not in [e], not in other statements *)
    let others =
      List.concat_map
        (fun s ->
          match s with
          | Let (a', Bin (_, _, _)) when a' = a -> []   (* the reduction itself *)
          | s -> vars_of_stmts [] [ s ])
        body
    in
    let assigned = assigned_vars [] (List.filter (fun s -> s <> Let (a, Bin (op, Var a, e)) && s <> Let (a, Bin (op, e, Var a))) body) in
    if List.mem a (vars_of_expr [] e) || List.mem a others || List.mem a assigned then None
    else Some (a, op, e)
  | _ -> None

let reassoc_for x lo hi step body =
  match find_reduction body with
  | None -> None
  | Some (acc, op, _) ->
    let body_assigns = assigned_vars [] body in
    let hi_vars = vars_of_expr [] hi in
    let legal =
      (not (List.mem x body_assigns))
      && (not (List.exists (fun v -> List.mem v body_assigns) hi_vars))
      && (not (has_call hi))
      && (not (stmts_have_return body))
    in
    if not legal then None
    else begin
      let zero = match op with Fadd -> Flt 0.0 | _ -> Int 0L in
      let part j = Printf.sprintf "%s$thr%d" acc j in
      (* copy j accumulates into its own partial and reads index x + j*step *)
      let copy j =
        let renamed =
          List.map
            (fun s ->
              match s with
              | Let (a, Bin (o, Var a', e)) when a = acc && a' = acc && o = op ->
                Let (part j, Bin (o, Var (part j), e))
              | Let (a, Bin (o, e, Var a')) when a = acc && a' = acc && o = op ->
                Let (part j, Bin (o, Var (part j), e))
              | s -> s)
            body
        in
        if j = 0 then Some renamed
        else
          subst_stmts x (Bin (Add, Var x, Int (Int64.mul (Int64.of_int j) step))) renamed
      in
      let copies = List.init reassoc_ways copy in
      if List.exists (fun c -> c = None) copies then None
      else begin
        let big = List.concat_map Option.get copies in
        let slack = Int64.mul (Int64.of_int (reassoc_ways - 1)) step in
        let prologue = List.init reassoc_ways (fun j -> Let (part j, zero)) in
        let main =
          For (x, lo, Bin (Sub, hi, Int slack), Int64.mul (Int64.of_int reassoc_ways) step, big)
        in
        let remainder = For (x, Var x, hi, step, body) in
        let combine =
          let sum =
            List.fold_left
              (fun e j -> Bin (op, e, Var (part j)))
              (Var (part 0))
              (List.init (reassoc_ways - 1) (fun j -> j + 1))
          in
          Let (acc, Bin (op, Var acc, sum))
        in
        Some (prologue @ [ main; remainder; combine ])
      end
    end

let rec reassoc_stmt (s : stmt) : stmt list =
  match s with
  | For (x, lo, hi, step, body) when not (List.exists has_loop body) -> (
    match reassoc_for x lo hi step body with
    | Some stmts -> stmts
    | None -> [ s ])
  | For (x, lo, hi, step, body) -> [ For (x, lo, hi, step, reassoc_body body) ]
  | If (c, t, e) -> [ If (c, reassoc_body t, reassoc_body e) ]
  | While (c, b) -> [ While (c, reassoc_body b) ]
  | s -> [ s ]

and reassoc_body ss = List.concat_map reassoc_stmt ss

let reassociate (f : func) : func = { f with body = reassoc_body f.body }

let reassociate_program (p : program) : program =
  { p with funcs = List.map reassociate p.funcs }
