examples/compiler_pipeline.ml: Array Ast Cfg Format Image List Lower Opt Printf Trips_compiler Trips_edge Trips_tir Ty
