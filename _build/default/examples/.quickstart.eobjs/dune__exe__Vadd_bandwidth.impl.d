examples/vadd_bandwidth.ml: Array Printf Trips_edge Trips_noc Trips_sim Trips_tir Trips_util Trips_workloads
