examples/predictor_study.ml: Hashtbl List Printf Trips_compiler Trips_edge Trips_predictor Trips_tir Trips_util Trips_workloads
