examples/quickstart.ml: Ast Image Interp List Printf Trips_compiler Trips_edge Trips_sim Trips_tir Trips_workloads Ty
