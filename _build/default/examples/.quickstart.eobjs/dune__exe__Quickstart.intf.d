examples/quickstart.mli:
