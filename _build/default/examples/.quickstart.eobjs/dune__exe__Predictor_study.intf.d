examples/predictor_study.mli:
