examples/vadd_bandwidth.mli:
