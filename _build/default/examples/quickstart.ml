(* Quickstart: write a small program in TIR, compile it with the TRIPS
   compiler, and run it on the functional executor and the cycle-level
   prototype model.

     dune exec examples/quickstart.exe *)

open Trips_tir
open Ast.Infix

(* dot product with a conditional accumulation — enough control flow to
   show predication at work *)
let program =
  Ast.program
    ~globals:
      [
        Trips_workloads.Data.floats "qs_a" 256;
        Trips_workloads.Data.floats "qs_b" 256;
      ]
    [
      Ast.func "main" ~ret:Ty.F64
        [
          set "pos" (f 0.0);
          set "neg" (f 0.0);
          for_ "k" (i 0) (i 256)
            [
              set "x"
                (ldf (g "qs_a" +: (v "k" <<: i 3)) *.: ldf (g "qs_b" +: (v "k" <<: i 3)));
              if_ (v "x" >.: f 0.25)
                [ set "pos" (v "pos" +.: v "x") ]
                [ set "neg" (v "neg" +.: v "x") ];
            ];
          ret (v "pos" -.: v "neg");
        ];
    ]

let () =
  (* 1. the golden result from the reference interpreter *)
  let image = Image.build program.Ast.globals in
  let golden = (Interp.run_ast program image "main" []).Interp.result in
  Printf.printf "interpreter result: %s\n"
    (match golden with Some v -> Ty.value_to_string v | None -> "-");

  (* 2. compile to EDGE blocks with the TRIPS compiler *)
  let compiled = Trips_compiler.Driver.compile Trips_compiler.Driver.compiled program in
  let blocks =
    List.fold_left
      (fun acc (f : Trips_edge.Block.func) -> acc + List.length f.Trips_edge.Block.blocks)
      0 compiled.Trips_edge.Block.funcs
  in
  Printf.printf "compiled to %d TRIPS blocks\n" blocks;

  (* 3. architectural run: dataflow execution, block by block *)
  let image2 = Image.build program.Ast.globals in
  let r = Trips_edge.Exec.run compiled image2 ~entry:"main" ~args:[] in
  Printf.printf "EDGE result: %s (%d block instances, %d instructions, %d squashed)\n"
    (match r.Trips_edge.Exec.ret with Some v -> Ty.value_to_string v | None -> "-")
    r.Trips_edge.Exec.stats.Trips_edge.Exec.blocks
    r.Trips_edge.Exec.stats.Trips_edge.Exec.executed
    r.Trips_edge.Exec.stats.Trips_edge.Exec.not_executed;

  (* 4. cycle-level run on the prototype model *)
  let image3 = Image.build program.Ast.globals in
  let c = Trips_sim.Core.run compiled image3 ~entry:"main" ~args:[] in
  Printf.printf
    "prototype model: %d cycles, IPC %.2f, %.0f instructions in flight on average\n"
    c.Trips_sim.Core.timing.Trips_sim.Core.cycles (Trips_sim.Core.ipc c)
    (Trips_sim.Core.avg_window c);
  assert (r.Trips_edge.Exec.ret = golden);
  assert (c.Trips_sim.Core.ret = golden);
  print_endline "all three agree."
