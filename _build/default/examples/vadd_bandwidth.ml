(* The Fig 8 bandwidth study: run the genuinely hand-written EDGE vadd
   (eight elements per block, streamed through immediate displacements)
   on the cycle-level model and report achieved bandwidth and the operand
   network profile.

     dune exec examples/vadd_bandwidth.exe *)

module Registry = Trips_workloads.Registry
module Core = Trips_sim.Core
module Opn = Trips_noc.Opn

let () =
  let prog = Trips_workloads.Kernels.vadd_hand_edge in
  Trips_edge.Block.validate_program prog;
  let image = Trips_tir.Image.build prog.Trips_edge.Block.globals in
  let r = Core.run prog image ~entry:"main" ~args:[] in
  let cyc = r.Core.timing.Core.cycles in
  Printf.printf "vadd (hand EDGE): %d cycles, IPC %.2f\n" cyc (Core.ipc r);
  let bw name bytes =
    Printf.printf "  %-18s %8d bytes  %.2f bytes/cycle  %.2f GB/s @366MHz\n" name bytes
      (Trips_util.Stats.ratio bytes cyc)
      (Trips_util.Stats.ratio bytes cyc *. 0.366)
  in
  bw "L1D <-> processor" r.Core.timing.Core.l1d_bytes;
  bw "L2 <-> L1" r.Core.timing.Core.l2_bytes;
  bw "DRAM <-> L2" r.Core.timing.Core.dram_bytes;
  Printf.printf "\nOPN profile (avg %.2f hops/packet, %d contention cycles):\n"
    r.Core.opn_average_hops r.Core.opn.Opn.contention_cycles;
  Array.iteri
    (fun cls buckets ->
      let total = Array.fold_left ( + ) 0 buckets in
      if total > 0 then begin
        Printf.printf "  %-6s" (Opn.class_name cls);
        Array.iteri (fun h n -> Printf.printf "  %d-hop: %5d" h n) buckets;
        print_newline ()
      end)
    r.Core.opn.Opn.packets
