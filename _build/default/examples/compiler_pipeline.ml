(* Walk one small function through every stage of the TRIPS compiler:
   TIR source, lowered CFG, optimized CFG, hyperblocks after if-conversion,
   and the final EDGE block with its tile placement.

     dune exec examples/compiler_pipeline.exe *)

open Trips_tir
open Ast.Infix
module HB = Trips_compiler.Hyperblock

let program =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "k" (i 0) (v "n")
            [
              if_ (v "k" &: i 1)
                [ set "acc" (v "acc" +: (v "k" *: i 3)) ]
                [ set "acc" (v "acc" ^: v "k") ];
            ];
          ret (v "acc");
        ];
    ]

let rule title = Printf.printf "\n----- %s -----\n" title

let () =
  rule "TIR source";
  List.iter (fun f -> Format.printf "%a@." Ast.pp_func f) program.Ast.funcs;

  rule "lowered CFG";
  let cfg = Lower.program program in
  Format.printf "%a@." Cfg.pp_program cfg;

  rule "optimized CFG";
  Opt.run_program cfg;
  Format.printf "%a@." Cfg.pp_program cfg;

  rule "hyperblocks (if-converted regions)";
  let fn = Cfg.find_func cfg "main" in
  let hf = HB.form HB.default_budget fn in
  List.iter (fun hb -> Format.printf "%a@." HB.pp_hblock hb) hf.HB.hblocks;

  rule "EDGE blocks (dataflow + fanout + placement)";
  let compiled = Trips_compiler.Driver.compile Trips_compiler.Driver.compiled program in
  Format.printf "%a@." Trips_edge.Block.pp_program compiled;

  rule "tile placement of the loop block";
  let f = List.hd compiled.Trips_edge.Block.funcs in
  let blk = List.nth f.Trips_edge.Block.blocks (min 1 (List.length f.Trips_edge.Block.blocks - 1)) in
  Printf.printf "block %s: instruction -> execution tile (4x4 grid)\n"
    blk.Trips_edge.Block.label;
  Array.iteri
    (fun i et ->
      let r, c = Trips_compiler.Schedule.tile_position et in
      Printf.printf "  I%-3d -> ET%-2d (row %d, col %d)\n" i et r c)
    blk.Trips_edge.Block.placement;

  rule "run it";
  let image = Image.build [] in
  let r = Trips_edge.Exec.run compiled image ~entry:"main" ~args:[ Ty.Vi 20L ] in
  Printf.printf "main(20) = %s\n"
    (match r.Trips_edge.Exec.ret with Some v -> Ty.value_to_string v | None -> "-")
