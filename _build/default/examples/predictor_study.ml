(* A miniature of the Fig 7 study: feed the same branchy benchmark, built
   as basic blocks and as hyperblocks, to the conventional and TRIPS
   next-block predictors and compare accuracy and prediction counts.

     dune exec examples/predictor_study.exe *)

module Registry = Trips_workloads.Registry
module Blockpred = Trips_predictor.Blockpred
module Exec = Trips_edge.Exec
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa

let measure prog (b : Registry.bench) config =
  let image = Trips_tir.Image.build b.Registry.program.Trips_tir.Ast.globals in
  let p = Blockpred.create config in
  let ids = Hashtbl.create 64 in
  let intern l =
    match Hashtbl.find_opt ids l with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids + 1 in
      Hashtbl.replace ids l i;
      i
  in
  let entries = Hashtbl.create 8 in
  List.iter
    (fun (f : Block.func) -> Hashtbl.replace entries f.Block.fname f.Block.entry)
    prog.Block.funcs;
  let shadow = ref [] and made = ref 0 and miss = ref 0 in
  let _ =
    Exec.run prog image ~entry:"main" ~args:[]
      ~on_instance:(fun inst ->
        let target, kind, fall =
          match inst.Exec.exit_dest with
          | Isa.Xjump l -> (Some l, Blockpred.Kjump, 0)
          | Isa.Xcall (fname, retl) ->
            shadow := retl :: !shadow;
            (Hashtbl.find_opt entries fname, Blockpred.Kcall, intern retl)
          | Isa.Xret -> (
            match !shadow with
            | [] -> (None, Blockpred.Kret, 0)
            | retl :: rest ->
              shadow := rest;
              (Some retl, Blockpred.Kret, 0))
        in
        match target with
        | None -> ()
        | Some tl ->
          let block = intern inst.Exec.iblock.Block.label in
          let target = intern tl in
          incr made;
          if Blockpred.predict p ~block <> Some target then incr miss;
          let exits = Block.exits inst.Exec.iblock in
          let exit_idx =
            match List.find_index (fun (i, _) -> i = inst.Exec.exit_inst) exits with
            | Some k -> k
            | None -> 0
          in
          Blockpred.update p
            { Blockpred.o_block = block; o_exit = exit_idx; o_kind = kind;
              o_target = target; o_fallthrough = fall })
  in
  (!made, !miss)

let () =
  let b = Registry.find "a2time" in
  let bb = Trips_compiler.Driver.compile Trips_compiler.Driver.basic_blocks b.Registry.program in
  let hb = Trips_compiler.Driver.compile Trips_compiler.Driver.compiled b.Registry.program in
  Printf.printf "benchmark: %s (%s)\n\n" b.Registry.name b.Registry.description;
  List.iter
    (fun (name, prog, config) ->
      let made, miss = measure prog b config in
      Printf.printf "%-34s predictions: %7d  mispredicts: %6d  accuracy: %5.1f%%\n" name
        made miss
        (100. *. (1. -. Trips_util.Stats.ratio miss (max 1 made))))
    [
      ("prototype predictor, basic blocks", bb, Blockpred.prototype);
      ("prototype predictor, hyperblocks", hb, Blockpred.prototype);
      ("improved predictor, hyperblocks", hb, Blockpred.improved);
    ];
  print_endline
    "\nHyperblocks make fewer predictions (if-conversion removes branches);\n\
     the scaled predictor recovers accuracy on what remains (cf. Fig 7)."
