#!/bin/sh
# Tier-1 verification plus an engine smoke test.
#
#   ./check.sh          build, run the test suites, smoke the engine CLI
#
# The determinism suite covers a fast experiment subset by default; set
# TRIPS_DETERMINISM_FULL=1 to sweep the whole battery (~35 min on one
# core).
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== static analyzer: trips_run lint --all --strict =="
dune exec bin/trips_run.exe -- lint --all --strict --out lint-report.json

echo "== translation validation: trips_run transval --all (full matrix) =="
# All four EDGE pipelines (O0/C/H/BB) plus the RISC backend over every
# workload; hash-consed terms keep the whole sweep around ten seconds.
TRIPS_TRANSVAL_FULL=1 dune exec bin/trips_run.exe -- transval --all --strict \
  --out transval-report.json >/dev/null
refuted=$(sed -n 's/.*"refuted": \([0-9]*\).*/\1/p' transval-report.json | tail -1)
proved=$(sed -n 's/.*"proved": \([0-9]*\).*/\1/p' transval-report.json | tail -1)
echo "translation validation: $proved block(s) proved, $refuted refuted"
[ "$refuted" = "0" ] || {
  echo "translation validation refuted a pass (see transval-report.json)" >&2
  exit 1
}

echo "== global abstract interpretation: trips_run absint --all --strict =="
# Fact/hit payoff ledger for the global optimizer.  Soundness is covered
# by the transval stage above (the full matrix re-derives and replays
# every applied global fact and LSID relaxation); here we gate that the
# passes keep actually firing.
dune exec bin/trips_run.exe -- absint --all --preset C --preset H --preset BB \
  --strict --out absint-report.json >/dev/null
hits=$(sed -n 's/.*"total_hits": \([0-9]*\).*/\1/p' absint-report.json | tail -1)
min_hits=$(sed -n 's/.*"min_global_hits": \([0-9]*\).*/\1/p' bench/BENCH_absint.json)
programs=$(sed -n 's/.*"programs": \([0-9]*\).*/\1/p' absint-report.json | tail -1)
awk -v h="$hits" -v mh="$min_hits" -v n="$programs" 'BEGIN {
  if (h == "" || n == "") {
    print "absint: summary missing from absint-report.json" > "/dev/stderr"
    exit 1
  }
  printf "global optimization: %d hit(s) across %d program(s) (min %d)\n", h, n, mh
  if (h + 0 < mh + 0) {
    print "global optimization hits regressed past bench/BENCH_absint.json threshold" > "/dev/stderr"
    exit 1
  }
}'

echo "== differential fuzzing: trips_run fuzz --seed 1 =="
# 100-program smoke by default; TRIPS_FUZZ_FULL=1 deepens the sweep to
# 5000 programs (the nightly configuration).  Any divergence exits
# nonzero with the auto-shrunk repro in the report.
dune exec bin/trips_run.exe -- fuzz --seed 1 --out fuzz-report.json >/dev/null
divergent=$(sed -n 's/.*"divergent": \([0-9]*\).*/\1/p' fuzz-report.json | head -1)
checked=$(sed -n 's/.*"count": \([0-9]*\).*/\1/p' fuzz-report.json | head -1)
echo "differential fuzzing: $checked program(s), $divergent divergence(s)"
[ "$divergent" = "0" ] || {
  echo "differential fuzzing found divergences (see fuzz-report.json)" >&2
  exit 1
}

echo "== static timing: trips_run timing --simple --xval =="
dune exec bin/trips_run.exe -- timing --simple --xval --preset C --format json \
  --out timing-report.json >/dev/null
mape=$(sed -n 's/.*"mape": \([0-9.eE+-]*\).*/\1/p' timing-report.json | tail -1)
pearson=$(sed -n 's/.*"pearson": \([0-9.eE+-]*\).*/\1/p' timing-report.json | tail -1)
max_mape=$(sed -n 's/.*"max_mape": \([0-9.]*\).*/\1/p' bench/BENCH_timing.json)
min_pearson=$(sed -n 's/.*"min_pearson": \([0-9.]*\).*/\1/p' bench/BENCH_timing.json)
awk -v m="$mape" -v p="$pearson" -v mm="$max_mape" -v mp="$min_pearson" 'BEGIN {
  if (m == "" || p == "") {
    print "timing cross-validation: summary missing from timing-report.json" > "/dev/stderr"
    exit 1
  }
  printf "timing cross-validation: mape %.1f%% (max %.1f), pearson %.3f (min %.2f)\n", m, mm, p, mp
  if (m + 0 > mm + 0 || p + 0 < mp + 0) {
    print "timing cross-validation regressed past bench/BENCH_timing.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== sim throughput: trips_run simbench --preset C --compare-ref =="
dune exec bin/trips_run.exe -- simbench --preset C --compare-ref \
  --out simbench-report.json
speedup=$(sed -n 's/.*"speedup_vs_ref": \([0-9.eE+-]*\).*/\1/p' simbench-report.json | tail -1)
min_speedup=$(sed -n 's/.*"min_speedup_vs_ref": \([0-9.]*\).*/\1/p' bench/BENCH_sim.json)
spec_speedup=$(sed -n 's/.*"speedup_vs_plan": \([0-9.eE+-]*\).*/\1/p' simbench-report.json | tail -1)
min_spec=$(sed -n 's/.*"min_speedup_vs_plan": \([0-9.]*\).*/\1/p' bench/BENCH_sim.json)
samp_speedup=$(sed -n 's/.*"speedup_vs_plan_sampled": \([0-9.eE+-]*\).*/\1/p' simbench-report.json | tail -1)
min_samp=$(sed -n 's/.*"min_speedup_vs_plan_sampled": \([0-9.]*\).*/\1/p' bench/BENCH_sim.json)
awk -v s="$speedup" -v ms="$min_speedup" \
    -v sp="$spec_speedup" -v msp="$min_spec" \
    -v sa="$samp_speedup" -v msa="$min_samp" 'BEGIN {
  if (s == "" || sp == "" || sa == "") {
    print "simbench: speedup fields missing from simbench-report.json" > "/dev/stderr"
    exit 1
  }
  printf "sim throughput: x%.2f vs reference (min x%.2f)\n", s, ms
  printf "specialized engine: x%.2f vs plan interpreter (min x%.2f)\n", sp, msp
  printf "sampled estimator: x%.2f vs plan interpreter (min x%.2f)\n", sa, msa
  if (s + 0 < ms + 0 || sp + 0 < msp + 0 || sa + 0 < msa + 0) {
    print "sim throughput regressed past bench/BENCH_sim.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== sampling accuracy: trips_run sampling --all --preset C =="
dune exec bin/trips_run.exe -- sampling --all --preset C --format json \
  --out sampling-report.json >/dev/null
workloads=$(sed -n 's/.*"workloads": \([0-9][0-9]*\).*/\1/p' sampling-report.json | tail -1)
within=$(sed -n 's/.*"within_ci": \([0-9][0-9]*\).*/\1/p' sampling-report.json | tail -1)
samp_err=$(sed -n 's/.*"mean_abs_error_pct": \([0-9.eE+-]*\).*/\1/p' sampling-report.json | tail -1)
min_within=$(sed -n 's/.*"min_sampled_within_ci": \([0-9]*\).*/\1/p' bench/BENCH_sim.json)
max_samp_err=$(sed -n 's/.*"max_sampled_error_pct": \([0-9.]*\).*/\1/p' bench/BENCH_sim.json)
awk -v n="$workloads" -v w="$within" -v e="$samp_err" \
    -v mw="$min_within" -v me="$max_samp_err" 'BEGIN {
  if (n == "" || w == "" || e == "") {
    print "sampling: summary missing from sampling-report.json" > "/dev/stderr"
    exit 1
  }
  printf "sampling accuracy: %d/%d within 95%% CI (min %d), mean |error| %.2f%% (max %.1f)\n", w, n, mw, e, me
  if (w + 0 < mw + 0 || e + 0 > me + 0) {
    print "sampling accuracy regressed past bench/BENCH_sim.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== serve smoke: trips_serve health + timing + metrics =="
# Direct _build paths: dune exec holds the project lock for the child's
# lifetime, which would deadlock the client calls against the daemon.
./_build/default/bin/trips_serve.exe --port 0 --workers 2 > serve.log 2>&1 &
serve_pid=$!
port=""
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' serve.log)
  [ -n "$port" ] && break
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || {
  echo "trips_serve did not come up (see serve.log)" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
./_build/default/bin/trips_run.exe serve-client health --port "$port" \
  | grep -q '"status": "ok"' || {
  echo "serve smoke: /health did not answer ok" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
./_build/default/bin/trips_run.exe serve-client timing fft --preset C \
  --port "$port" | grep -q '"ok": true' || {
  echo "serve smoke: timing request failed" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
./_build/default/bin/trips_run.exe serve-client metrics --port "$port" \
  | grep -q '"requests": ' || {
  echo "serve smoke: /metrics did not report counters" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
kill -TERM "$serve_pid"
wait "$serve_pid" || true
echo "serve smoke: health + timing + metrics OK on port $port"

echo "== serve load benchmark: bench/serve_bench =="
./_build/default/bench/serve_bench.exe --out serve-report.json
computed=$(sed -n 's/.*"computed": \([0-9]*\).*/\1/p' serve-report.json | head -1)
rate=$(sed -n 's/.*"coalesce_rate": \([0-9.eE+-]*\).*/\1/p' serve-report.json | head -1)
tp=$(sed -n 's/.*"peak_throughput_rps": \([0-9.eE+-]*\).*/\1/p' serve-report.json | head -1)
p99=$(sed -n 's/.*"peak_p99_s": \([0-9.eE+-]*\).*/\1/p' serve-report.json | head -1)
shed=$(sed -n 's/.*"shed": \([0-9]*\).*/\1/p' serve-report.json | tail -1)
max_computed=$(sed -n 's/.*"max_dedup_computed": \([0-9]*\).*/\1/p' bench/BENCH_serve.json)
min_rate=$(sed -n 's/.*"min_dedup_coalesce_rate": \([0-9.]*\).*/\1/p' bench/BENCH_serve.json)
min_tp=$(sed -n 's/.*"min_peak_throughput_rps": \([0-9.]*\).*/\1/p' bench/BENCH_serve.json)
max_p99=$(sed -n 's/.*"max_peak_p99_s": \([0-9.]*\).*/\1/p' bench/BENCH_serve.json)
min_shed=$(sed -n 's/.*"min_shed": \([0-9]*\).*/\1/p' bench/BENCH_serve.json)
awk -v c="$computed" -v r="$rate" -v t="$tp" -v p="$p99" -v s="$shed" \
    -v mc="$max_computed" -v mr="$min_rate" -v mt="$min_tp" -v mp="$max_p99" \
    -v ms="$min_shed" 'BEGIN {
  if (c == "" || r == "" || t == "" || p == "" || s == "") {
    print "serve bench: fields missing from serve-report.json" > "/dev/stderr"
    exit 1
  }
  printf "serve bench: dedup computed %d (max %d), coalesce rate %.2f (min %.2f)\n", c, mc, r, mr
  printf "serve bench: peak %.0f req/s (min %.0f), p99 %.4fs (max %.2fs), %d shed (min %d)\n", t, mt, p, mp, s, ms
  if (c + 0 > mc + 0 || r + 0 < mr + 0 || t + 0 < mt + 0 || p + 0 > mp + 0 || s + 0 < ms + 0) {
    print "serve bench regressed past bench/BENCH_serve.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== engine smoke: trips_run --id table1 --jobs 2 --format json =="
out=$(dune exec bin/trips_run.exe -- --id table1 --jobs 2 --format json 2>/dev/null)
echo "$out" | grep -q '"title": "Table 1' || {
  echo "engine smoke test failed: no JSON table on stdout" >&2
  exit 1
}
echo "$out" | head -3

echo "== all checks passed =="
