#!/bin/sh
# Tier-1 verification plus an engine smoke test.
#
#   ./check.sh          build, run the test suites, smoke the engine CLI
#
# The determinism suite covers a fast experiment subset by default; set
# TRIPS_DETERMINISM_FULL=1 to sweep the whole battery (~35 min on one
# core).
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== static analyzer: trips_run lint --all --strict =="
dune exec bin/trips_run.exe -- lint --all --strict --out lint-report.json

echo "== translation validation: trips_run transval --all (full matrix) =="
# All four EDGE pipelines (O0/C/H/BB) plus the RISC backend over every
# workload; hash-consed terms keep the whole sweep around ten seconds.
TRIPS_TRANSVAL_FULL=1 dune exec bin/trips_run.exe -- transval --all --strict \
  --out transval-report.json >/dev/null
refuted=$(sed -n 's/.*"refuted": \([0-9]*\).*/\1/p' transval-report.json | tail -1)
proved=$(sed -n 's/.*"proved": \([0-9]*\).*/\1/p' transval-report.json | tail -1)
echo "translation validation: $proved block(s) proved, $refuted refuted"
[ "$refuted" = "0" ] || {
  echo "translation validation refuted a pass (see transval-report.json)" >&2
  exit 1
}

echo "== static timing: trips_run timing --simple --xval =="
dune exec bin/trips_run.exe -- timing --simple --xval --preset C --format json \
  --out timing-report.json >/dev/null
mape=$(sed -n 's/.*"mape": \([0-9.eE+-]*\).*/\1/p' timing-report.json | tail -1)
pearson=$(sed -n 's/.*"pearson": \([0-9.eE+-]*\).*/\1/p' timing-report.json | tail -1)
max_mape=$(sed -n 's/.*"max_mape": \([0-9.]*\).*/\1/p' bench/BENCH_timing.json)
min_pearson=$(sed -n 's/.*"min_pearson": \([0-9.]*\).*/\1/p' bench/BENCH_timing.json)
awk -v m="$mape" -v p="$pearson" -v mm="$max_mape" -v mp="$min_pearson" 'BEGIN {
  if (m == "" || p == "") {
    print "timing cross-validation: summary missing from timing-report.json" > "/dev/stderr"
    exit 1
  }
  printf "timing cross-validation: mape %.1f%% (max %.1f), pearson %.3f (min %.2f)\n", m, mm, p, mp
  if (m + 0 > mm + 0 || p + 0 < mp + 0) {
    print "timing cross-validation regressed past bench/BENCH_timing.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== sim throughput: trips_run simbench --preset C --compare-ref =="
dune exec bin/trips_run.exe -- simbench --preset C --compare-ref \
  --out simbench-report.json
speedup=$(sed -n 's/.*"speedup_vs_ref": \([0-9.eE+-]*\).*/\1/p' simbench-report.json | tail -1)
min_speedup=$(sed -n 's/.*"min_speedup_vs_ref": \([0-9.]*\).*/\1/p' bench/BENCH_sim.json)
awk -v s="$speedup" -v ms="$min_speedup" 'BEGIN {
  if (s == "") {
    print "simbench: speedup_vs_ref missing from simbench-report.json" > "/dev/stderr"
    exit 1
  }
  printf "sim throughput: x%.2f vs reference (min x%.2f)\n", s, ms
  if (s + 0 < ms + 0) {
    print "sim throughput regressed past bench/BENCH_sim.json thresholds" > "/dev/stderr"
    exit 1
  }
}'

echo "== engine smoke: trips_run --id table1 --jobs 2 --format json =="
out=$(dune exec bin/trips_run.exe -- --id table1 --jobs 2 --format json 2>/dev/null)
echo "$out" | grep -q '"title": "Table 1' || {
  echo "engine smoke test failed: no JSON table on stdout" >&2
  exit 1
}
echo "$out" | head -3

echo "== all checks passed =="
