#!/bin/sh
# Tier-1 verification plus an engine smoke test.
#
#   ./check.sh          build, run the test suites, smoke the engine CLI
#
# The determinism suite covers a fast experiment subset by default; set
# TRIPS_DETERMINISM_FULL=1 to sweep the whole battery (~35 min on one
# core).
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== static analyzer: trips_run lint --all --strict =="
dune exec bin/trips_run.exe -- lint --all --strict --out lint-report.json

echo "== engine smoke: trips_run --id table1 --jobs 2 --format json =="
out=$(dune exec bin/trips_run.exe -- --id table1 --jobs 2 --format json 2>/dev/null)
echo "$out" | grep -q '"title": "Table 1' || {
  echo "engine smoke test failed: no JSON table on stdout" >&2
  exit 1
}
echo "$out" | head -3

echo "== all checks passed =="
