module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Interp = Trips_tir.Interp

type suite = Kernel | Versa | Eembc | SpecInt | SpecFp

type bench = {
  name : string;
  suite : suite;
  program : Ast.program;
  ret : Ty.t option;
  simple : bool;
  hand_edge : Trips_edge.Block.program option;
  description : string;
}

let mk ?(simple = false) ?hand_edge name suite program description =
  (* tree-height reduction is applied at the source so the reference
     interpreter and every backend compute the identical association *)
  let program = Trips_tir.Transform.reassociate_program program in
  let main = Ast.find_func program "main" in
  { name; suite; program; ret = main.Ast.ret; simple; hand_edge; description }

let all =
  [
    (* kernels: all four are in the Simple suite *)
    mk ~simple:true "ct" Kernel Kernels.ct "64x64 integer matrix transpose";
    mk ~simple:true "conv" Kernel Kernels.conv "1-D convolution, 32 taps";
    mk ~simple:true ~hand_edge:Kernels.vadd_hand_edge "vadd" Kernel Kernels.vadd
      "streaming vector add, 2048 doubles";
    mk ~simple:true "matrix" Kernel Kernels.matrix "32x32 dense matmul";
    (* VersaBench *)
    mk ~simple:true "fmradio" Versa Versabench.fmradio "FIR bank + discriminator";
    mk ~simple:true "802.11a" Versa Versabench.w802_11a "convolutional encoder + interleaver";
    mk ~simple:true "8b10b" Versa Versabench.b8b10b "8b/10b line encoder";
    (* EEMBC: the paper's eight hand-optimized ones are Simple *)
    mk ~simple:true "a2time" Eembc Eembc_auto.a2time "angle-to-time, nested conditionals";
    mk ~simple:true "rspeed" Eembc Eembc_auto.rspeed "road speed state machine";
    mk ~simple:true "ospf" Eembc Eembc_misc.ospf "Dijkstra shortest paths";
    mk ~simple:true "routelookup" Eembc Eembc_misc.routelookup "Patricia trie walk";
    mk ~simple:true "autocor" Eembc Eembc_dsp.autocor "fixed-point autocorrelation";
    mk ~simple:true "conven" Eembc Eembc_dsp.conven "convolutional encoder";
    mk ~simple:true "fbital" Eembc Eembc_dsp.fbital "water-filling bit allocation";
    mk ~simple:true "fft" Eembc Eembc_dsp.fft "radix-2 256-point FFT";
    mk "viterb" Eembc Eembc_dsp.viterb "Viterbi add-compare-select";
    mk "aifftr" Eembc Eembc_auto.aifftr "fixed-point FFT";
    mk "aifirf" Eembc Eembc_auto.aifirf "fixed-point FIR";
    mk "basefp" Eembc Eembc_auto.basefp "FP fundamentals";
    mk "bitmnp" Eembc Eembc_auto.bitmnp "bit manipulation";
    mk "canrdr" Eembc Eembc_auto.canrdr "CAN message handling";
    mk "idctrn" Eembc Eembc_auto.idctrn "8x8 integer IDCT";
    mk "iirflt" Eembc Eembc_auto.iirflt "IIR biquad cascade";
    mk "matrix01" Eembc Eembc_auto.matrix01 "small matrix arithmetic";
    mk "pntrch" Eembc Eembc_auto.pntrch "pointer chase";
    mk "puwmod" Eembc Eembc_auto.puwmod "pulse-width modulation";
    mk "tblook" Eembc Eembc_auto.tblook "table lookup + interpolation";
    mk "ttsprk" Eembc Eembc_auto.ttsprk "tooth-to-spark";
    mk "cjpeg" Eembc Eembc_misc.cjpeg "forward DCT + quantize";
    mk "djpeg" Eembc Eembc_misc.djpeg "dequantize + inverse DCT";
    mk "rgbcmy" Eembc Eembc_misc.rgbcmy "RGB to CMYK";
    mk "rgbyiq" Eembc Eembc_misc.rgbyiq "RGB to YIQ";
    mk "pktflow" Eembc Eembc_misc.pktflow "packet validation";
    mk "bezier" Eembc Eembc_misc.bezier "cubic Bezier evaluation";
    mk "dither" Eembc Eembc_misc.dither "error-diffusion dither";
    mk "rotate" Eembc Eembc_misc.rotate "bitmap rotation";
    mk "text" Eembc Eembc_misc.text "text parsing state machine";
    (* SPEC INT *)
    mk "bzip2" SpecInt Specint.bzip2 "MTF + RLE compression";
    mk "crafty" SpecInt Specint.crafty "bitboard move generation";
    mk "gcc" SpecInt Specint.gcc "value numbering over a tuple stream";
    mk "gzip" SpecInt Specint.gzip "LZ77 hash-chain matching";
    mk "mcf" SpecInt Specint.mcf "network simplex relaxation";
    mk "parser" SpecInt Specint.parser "dictionary segmentation DP";
    mk "perlbmk" SpecInt Specint.perlbmk "bytecode interpreter";
    mk "twolf" SpecInt Specint.twolf "annealing placement";
    mk "vortex" SpecInt Specint.vortex "object database";
    mk "vpr" SpecInt Specint.vpr "maze-routing BFS";
    (* SPEC FP *)
    mk "applu" SpecFp Specfp.applu "SSOR 3-D sweep";
    mk "apsi" SpecFp Specfp.apsi "meteorology column update";
    mk "art" SpecFp Specfp.art "neural image recognition";
    mk "equake" SpecFp Specfp.equake "sparse mat-vec wave propagation";
    mk "mesa" SpecFp Specfp.mesa "span rasterization + z-buffer";
    mk "mgrid" SpecFp Specfp.mgrid "multigrid relaxation";
    mk "swim" SpecFp Specfp.swim "shallow-water stencils";
    mk "wupwise" SpecFp Specfp.wupwise "complex 2x2 mat-vec products";
  ]

let find name = List.find (fun b -> b.name = name) all
let by_suite s = List.filter (fun b -> b.suite = s) all
let simple_suite = List.filter (fun b -> b.simple) all

let suite_name = function
  | Kernel -> "Kernels"
  | Versa -> "VersaBench"
  | Eembc -> "EEMBC"
  | SpecInt -> "SPEC INT"
  | SpecFp -> "SPEC FP"

let golden_cache : (string, Ty.value option * int64) Hashtbl.t = Hashtbl.create 64

(* Engine worker domains share this memo; the interpreter run happens
   outside the lock, so two domains may race to compute the same golden
   value — harmless, both compute identical results. *)
let golden_lock = Mutex.create ()

let golden b =
  Mutex.lock golden_lock;
  match Hashtbl.find_opt golden_cache b.name with
  | Some g ->
    Mutex.unlock golden_lock;
    g
  | None ->
    Mutex.unlock golden_lock;
    let image = Image.build b.program.Ast.globals in
    let out = Interp.run_ast b.program image "main" [] in
    let g = (out.Interp.result, Image.checksum image) in
    Mutex.lock golden_lock;
    Hashtbl.replace golden_cache b.name g;
    Mutex.unlock golden_lock;
    g
