module Json = Trips_util.Json
module Table = Trips_util.Table
module Service = Trips_harness.Service

let api_prefix = "/api/v1/"

type route =
  | Health
  | Metrics
  | Catalog
  | Run of string  (* verb token from the path; "run" = verb in body *)
  | Unknown

let route_of_path path =
  match path with
  | "/health" | "/healthz" -> Health
  | "/metrics" -> Metrics
  | _ ->
    let n = String.length api_prefix in
    if String.length path > n && String.sub path 0 n = api_prefix then
      match String.sub path n (String.length path - n) with
      | "verbs" -> Catalog
      | verb when String.index_opt verb '/' = None -> Run verb
      | _ -> Unknown
    else Unknown

(* ------------------------------------------------------------------ *)
(* Request body                                                        *)
(* ------------------------------------------------------------------ *)

(* [verb_token] comes from the URL; POST /api/v1/run carries the verb in
   the body instead.  Body fields: verb? bench preset? mode?. *)
let parse_run_request ~verb_token body =
  match Json.parse body with
  | Result.Error e -> Result.Error e
  | Result.Ok v -> (
    let verb =
      if verb_token = "run" then
        match Json.mem_str "verb" v with
        | Some s -> Result.Ok s
        | None -> Result.Error "missing field \"verb\""
      else Result.Ok verb_token
    in
    match verb with
    | Result.Error _ as e -> e
    | Result.Ok verb -> (
      match Json.mem_str "bench" v with
      | None -> Result.Error "missing field \"bench\""
      | Some bench ->
        let preset = Option.value ~default:"" (Json.mem_str "preset" v) in
        let mode = Option.value ~default:"" (Json.mem_str "mode" v) in
        Service.make ~mode ~verb ~bench ~preset))

let run_request_body (r : Service.request) =
  Json.to_string
    (Json.Obj
       [
         ("verb", Json.Str (Service.verb_name r.Service.verb));
         ("bench", Json.Str r.Service.bench);
         ("preset", Json.Str r.Service.preset);
         ("mode", Json.Str r.Service.mode);
       ])

(* ------------------------------------------------------------------ *)
(* Response bodies                                                     *)
(* ------------------------------------------------------------------ *)

let table_json table =
  (* Table.to_json emits deterministic JSON text; round-trip it into the
     response value *)
  match Json.parse (Table.to_json table) with
  | Result.Ok v -> v
  | Result.Error _ -> Json.Str (Table.render table)

let result_body (r : Service.request) ~origin ~elapsed_s table =
  Json.to_string
    (Json.Obj
       [
         ("ok", Json.Bool true);
         ("verb", Json.Str (Service.verb_name r.Service.verb));
         ("bench", Json.Str r.Service.bench);
         ("preset", Json.Str r.Service.preset);
         ("mode", Json.Str r.Service.mode);
         ("origin", Json.Str origin);
         ("elapsed_s", Json.Float elapsed_s);
         ("result", table_json table);
       ])

let error_body ~code msg =
  Json.to_string
    (Json.Obj
       [
         ("ok", Json.Bool false);
         ("error", Json.Str code);
         ("message", Json.Str msg);
       ])

let catalog_body () =
  Json.to_string
    (Json.Obj
       [
         ( "verbs",
           Json.List
             (List.map
                (fun v ->
                  Json.Obj
                    [
                      ("verb", Json.Str (Service.verb_name v));
                      ( "presets",
                        Json.List
                          (List.map
                             (fun p -> Json.Str p)
                             (Service.presets_of_verb v)) );
                      ( "modes",
                        Json.List
                          (List.map
                             (fun m -> Json.Str m)
                             (Service.modes_of_verb v)) );
                    ])
                Service.verbs) );
         ( "benches",
           Json.List
             (List.map
                (fun (b : Trips_workloads.Registry.bench) ->
                  Json.Str b.Trips_workloads.Registry.name)
                Trips_workloads.Registry.all) );
       ])
