(** The daemon: TCP front door, connection handling, dispatch.

    One accept thread multiplexes the listen socket against a self-pipe
    (so {!request_stop} wakes it instantly); each accepted connection
    gets a systhread running a keep-alive loop; run requests are
    admitted to a shared {!Trips_engine.Pool} of worker domains.  A full
    admission queue answers 429 with [Retry-After] instead of queueing
    without bound; during shutdown new work is answered 503 while
    already-admitted jobs drain to completion. *)

type config = {
  host : string;            (* bind address, default 127.0.0.1 *)
  port : int;               (* 0 = ephemeral; see {!port} *)
  workers : int;            (* pool worker domains *)
  queue_capacity : int;     (* admission queue bound *)
  cache_dir : string option; (* result cache directory, None = no cache *)
  conn_timeout_s : float;   (* per-connection receive/send timeout *)
  verbose : bool;           (* access log on stderr *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, 4 workers, queue 64, no cache, 30 s. *)

type t

val start : config -> t
(** Bind, listen and spawn the accept thread and worker pool.  Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val request_stop : t -> unit
(** Ask the server to stop; returns immediately.  Safe to call from a
    signal handler context via the self-pipe. *)

val wait_stop_requested : t -> unit
(** Block until {!request_stop} has been called (the daemon's main
    thread parks here). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain every admitted job, wait
    for open connections to finish their current response, release the
    sockets.  Implies {!request_stop}. *)

val pool_stats : t -> Trips_engine.Pool.stats
