(** Minimal HTTP/1.1 over [Unix] file descriptors — no external deps.

    Exactly what the service front door needs and nothing more: request
    heads with [Content-Length] bodies (no chunked transfer encoding),
    percent-decoded paths and query strings, bounded head/body sizes so a
    misbehaving client cannot balloon the daemon, and plain string
    serialization of responses.  The pure parsers ({!parse_request},
    {!parse_response}) are exposed for unit tests; {!read_request} runs
    the same grammar incrementally over a socket. *)

val max_head_bytes : int
(** Request-line + headers cap (16 KiB); beyond it the read reports
    [Oversized] and the server answers 431. *)

val max_body_bytes : int
(** Body cap (1 MiB); beyond it the server answers 413 without reading
    the body. *)

type request = {
  meth : string;                      (* "GET", "POST", ... *)
  path : string;                      (* percent-decoded, query stripped *)
  query : (string * string) list;     (* percent-decoded key/value pairs *)
  version : string;                   (* "HTTP/1.1" or "HTTP/1.0" *)
  headers : (string * string) list;   (* names lowercased *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val reason : int -> string
(** Canonical reason phrase for a status code. *)

val parse_request : string -> (request, string) result
(** Parse one complete request (head, blank line, body); the body must
    match [Content-Length] exactly.  Pure — used by the unit tests. *)

type read_result =
  | Request of request
  | Malformed of string  (* answer 400 and close *)
  | Oversized of string  (* answer 413/431 and close *)
  | Eof                  (* peer closed between requests *)

val read_request : Unix.file_descr -> read_result
(** Read one request from a connection.  [Eof] only on a clean close (or
    receive timeout) before the first byte; a close mid-request is
    [Malformed].  Rejects [Transfer-Encoding]. *)

val response_string :
  ?headers:(string * string) list -> status:int -> body:string -> unit ->
  string
(** Serialize a response.  [Content-Length] is always emitted;
    [Content-Type: application/json] is added unless overridden. *)

val write_all : Unix.file_descr -> string -> unit
(** Write fully; [EPIPE]/[ECONNRESET] are swallowed (client went away). *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

val response_header : response -> string -> string option

val parse_response : string -> (response, string) result
(** Parse a complete response (the client closes connections, so EOF
    delimits; [Content-Length] trims when present). *)
