let max_head_bytes = 16 * 1024
let max_body_bytes = 1024 * 1024

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let reason = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | c -> if c >= 200 && c < 300 then "OK" else "Error"

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char buf (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let rest = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' rest
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (percent_decode kv, "")
               | Some e ->
                 Some
                   ( percent_decode (String.sub kv 0 e),
                     percent_decode
                       (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (percent_decode path, params)

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> Result.Error ("malformed header line: " ^ line)
  | Some c ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 c)) in
    let value =
      String.trim (String.sub line (c + 1) (String.length line - c - 1))
    in
    Result.Ok (name, value)

(* [head] is everything before the blank line, CRLF-separated (bare LF
   tolerated). *)
let parse_head head =
  let lines =
    String.split_on_char '\n' head
    |> List.map (fun l ->
           let n = String.length l in
           if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Result.Error "empty request head"
  | request_line :: header_lines -> (
    match String.split_on_char ' ' request_line with
    | [ meth; target; version ]
      when meth <> "" && target <> ""
           && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
      let rec headers acc = function
        | [] -> Result.Ok (List.rev acc)
        | l :: rest -> (
          match parse_header_line l with
          | Result.Ok kv -> headers (kv :: acc) rest
          | Result.Error _ as e -> e)
      in
      Result.map
        (fun hs ->
          let path, query = split_target target in
          { meth; path; query; version; headers = hs; body = "" })
        (headers [] header_lines)
    | _ -> Result.Error ("malformed request line: " ^ request_line))

let content_length req =
  match header req "content-length" with
  | None -> Result.Ok 0
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> Result.Ok n
    | _ -> Result.Error ("bad content-length: " ^ v))

(* Pure whole-request parser for tests: [s] holds the complete request
   bytes; the body must match content-length exactly. *)
let parse_request s =
  let n = String.length s in
  let rec find_blank i =
    if i + 3 < n && String.sub s i 4 = "\r\n\r\n" then Some (i, 4)
    else if i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
    else if i + 1 < n then find_blank (i + 1)
    else None
  in
  match find_blank 0 with
  | None -> Result.Error "no end of head (blank line) found"
  | Some (head_end, sep) -> (
    match parse_head (String.sub s 0 head_end) with
    | Result.Error _ as e -> e
    | Result.Ok req -> (
      match content_length req with
      | Result.Error _ as e -> e
      | Result.Ok len ->
        let body_start = head_end + sep in
        if String.length s - body_start <> len then
          Result.Error "body length does not match content-length"
        else Result.Ok { req with body = String.sub s body_start len }))

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

type read_result =
  | Request of request
  | Malformed of string  (* respond 400 and close *)
  | Oversized of string  (* respond 413/431 and close *)
  | Eof                  (* peer closed (or timed out) between requests *)

(* Read one request from [fd].  Returns [Eof] on a clean close before any
   byte of the next request; a close mid-request is [Malformed]. *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let head_end () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 3 < n && String.sub s i 4 = "\r\n\r\n" then Some (i, 4)
      else if i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
      else if i + 3 < n then go (i + 1)
      else None
    in
    go 0
  in
  let recv () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> 0
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  let rec read_head () =
    match head_end () with
    | Some cut -> Some cut
    | None ->
      if Buffer.length buf > max_head_bytes then None
      else if recv () = 0 then None
      else read_head ()
  in
  match read_head () with
  | None ->
    if Buffer.length buf = 0 then Eof
    else if Buffer.length buf > max_head_bytes then
      Oversized
        (Printf.sprintf "request head exceeds %d bytes" max_head_bytes)
    else Malformed "connection closed mid-request"
  | Some (head_at, sep) -> (
    let all = Buffer.contents buf in
    match parse_head (String.sub all 0 head_at) with
    | Result.Error e -> Malformed e
    | Result.Ok req -> (
      if header req "transfer-encoding" <> None then
        Malformed "transfer-encoding is not supported (use content-length)"
      else
        match content_length req with
        | Result.Error e -> Malformed e
        | Result.Ok len ->
          if len > max_body_bytes then
            Oversized
              (Printf.sprintf "request body exceeds %d bytes" max_body_bytes)
          else begin
            let body_start = head_at + sep in
            let have = String.length all - body_start in
            let rec fill have =
              if have >= len then true
              else if recv () = 0 then false
              else fill (Buffer.length buf - body_start)
            in
            if not (fill have) then Malformed "connection closed mid-body"
            else
              let all = Buffer.contents buf in
              Request { req with body = String.sub all body_start len }
          end))

let response_string ?(headers = []) ~status ~body () =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  let has name =
    List.exists (fun (k, _) -> String.lowercase_ascii k = name) headers
  in
  if not (has "content-type") then
    Buffer.add_string buf "Content-Type: application/json\r\n";
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Response parsing (client side)                                      *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let response_header resp name =
  List.assoc_opt (String.lowercase_ascii name) resp.r_headers

(* [s] holds the complete response bytes (the client requests
   [Connection: close], so EOF delimits); content-length, when present,
   trims trailing bytes. *)
let parse_response s =
  let n = String.length s in
  let rec find_blank i =
    if i + 3 < n && String.sub s i 4 = "\r\n\r\n" then Some (i, 4)
    else if i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
    else if i + 1 < n then find_blank (i + 1)
    else None
  in
  match find_blank 0 with
  | None -> Result.Error "no end of response head found"
  | Some (head_at, sep) -> (
    let head = String.sub s 0 head_at in
    let lines =
      String.split_on_char '\n' head
      |> List.map (fun l ->
             let n = String.length l in
             if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
      |> List.filter (fun l -> l <> "")
    in
    match lines with
    | [] -> Result.Error "empty response head"
    | status_line :: header_lines -> (
      match String.split_on_char ' ' status_line with
      | version :: code :: _
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | None -> Result.Error ("bad status code: " ^ code)
        | Some status ->
          let rec headers acc = function
            | [] -> Result.Ok (List.rev acc)
            | l :: rest -> (
              match parse_header_line l with
              | Result.Ok kv -> headers (kv :: acc) rest
              | Result.Error _ as e -> e)
          in
          Result.map
            (fun hs ->
              let body = String.sub s (head_at + sep) (String.length s - head_at - sep) in
              let body =
                match
                  Option.bind (List.assoc_opt "content-length" hs)
                    int_of_string_opt
                with
                | Some n when n >= 0 && n <= String.length body ->
                  String.sub body 0 n
                | _ -> body
              in
              { status; r_headers = hs; r_body = body })
            (headers [] header_lines))
      | _ -> Result.Error ("malformed status line: " ^ status_line)))
