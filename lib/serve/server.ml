module Json = Trips_util.Json
module Histogram = Trips_util.Histogram
module Pool = Trips_engine.Pool
module Result_cache = Trips_engine.Result_cache
module Service = Trips_harness.Service

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  cache_dir : string option;
  conn_timeout_s : float;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_capacity = 64;
    cache_dir = None;
    conn_timeout_s = 30.;
    verbose = false;
  }

type metrics = {
  m_lock : Mutex.t;
  m_started : float;
  m_latency : Histogram.t;              (* run-request service time *)
  m_by_verb : (string, int) Hashtbl.t;
  m_by_status : (int, int) Hashtbl.t;
  mutable m_connections : int;          (* accepted, lifetime *)
  mutable m_requests : int;             (* HTTP requests handled *)
  mutable m_bad_requests : int;         (* malformed / oversized / unroutable *)
}

type t = {
  cfg : config;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;             (* self-pipe wakes the accept loop *)
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  cond : Condition.t;
  mutable stopping : bool;
  mutable active_conns : int;
  mutable accept_thread : Thread.t option;
  metrics : metrics;
}

let port t = t.bound_port

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("trips_serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let now = Unix.gettimeofday

let tally tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* ------------------------------------------------------------------ *)
(* Introspection bodies                                                *)
(* ------------------------------------------------------------------ *)

let health_body t =
  let s = Pool.stats t.pool in
  Json.to_string
    (Json.Obj
       [
         ("status", Json.Str (if t.stopping then "stopping" else "ok"));
         ("uptime_s", Json.Float (now () -. t.metrics.m_started));
         ("workers", Json.Int s.Pool.workers);
         ("queued", Json.Int s.Pool.queued);
         ("running", Json.Int s.Pool.running);
       ])

let metrics_body t =
  let m = t.metrics in
  let s = Pool.stats t.pool in
  Mutex.lock m.m_lock;
  let by_verb =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) m.m_by_verb []
    |> List.sort compare
  in
  let by_status =
    Hashtbl.fold
      (fun k v acc -> (string_of_int k, Json.Int v) :: acc)
      m.m_by_status []
    |> List.sort compare
  in
  let latency = Histogram.to_json m.m_latency in
  let requests = m.m_requests in
  let connections = m.m_connections in
  let bad = m.m_bad_requests in
  Mutex.unlock m.m_lock;
  Json.to_string
    (Json.Obj
       [
         ("uptime_s", Json.Float (now () -. m.m_started));
         ("connections", Json.Int connections);
         ("requests", Json.Int requests);
         ("bad_requests", Json.Int bad);
         ("by_verb", Json.Obj by_verb);
         ("by_status", Json.Obj by_status);
         ("latency", latency);
         ( "pool",
           Json.Obj
             [
               ("workers", Json.Int s.Pool.workers);
               ("queued", Json.Int s.Pool.queued);
               ("running", Json.Int s.Pool.running);
               ("submitted", Json.Int s.Pool.submitted);
               ("executed", Json.Int s.Pool.executed);
               ("failed", Json.Int s.Pool.failed);
               ("shed", Json.Int s.Pool.shed);
               ("cache_hits", Json.Int s.Pool.cache_hits);
               ("coalesced", Json.Int s.Pool.coalesced);
               ("cancelled", Json.Int s.Pool.cancelled);
               ("dropped", Json.Int s.Pool.dropped);
               ("busy_s", Json.Float s.Pool.busy_s);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

(* status, body, extra headers *)
let dispatch t (req : Http.request) : int * string * (string * string) list =
  match (req.Http.meth, Protocol.route_of_path req.Http.path) with
  | "GET", Protocol.Health -> (200, health_body t, [])
  | "GET", Protocol.Metrics -> (200, metrics_body t, [])
  | "GET", Protocol.Catalog -> (200, Protocol.catalog_body (), [])
  | ("GET" | "HEAD"), (Protocol.Run _ | Protocol.Unknown) ->
    (404, Protocol.error_body ~code:"not-found" "no such endpoint", [])
  | "POST", Protocol.Run verb_token -> (
    match Protocol.parse_run_request ~verb_token req.Http.body with
    | Result.Error msg -> (400, Protocol.error_body ~code:"bad-request" msg, [])
    | Result.Ok r -> (
      let t0 = now () in
      match
        Pool.submit t.pool ~cache_key:(Service.cache_key r)
          ~id:(Service.id_of r)
          (fun () -> Service.run r)
      with
      | Pool.Shed ->
        ( 429,
          Protocol.error_body ~code:"saturated"
            "admission queue full; retry with back-off",
          [ ("Retry-After", "1") ] )
      | Pool.Closed ->
        ( 503,
          Protocol.error_body ~code:"shutting-down"
            "server is draining; no new work admitted",
          [ ("Connection", "close") ] )
      | Pool.Admitted ticket -> (
        match Pool.await ticket with
        | Pool.Done (table, origin) ->
          let dt = now () -. t0 in
          let m = t.metrics in
          Mutex.lock m.m_lock;
          Histogram.observe m.m_latency dt;
          tally m.m_by_verb (Service.verb_name r.Service.verb);
          Mutex.unlock m.m_lock;
          ( 200,
            Protocol.result_body r ~origin:(Pool.origin_name origin)
              ~elapsed_s:dt table,
            [] )
        | Pool.Error msg ->
          (500, Protocol.error_body ~code:"job-failed" msg, []))))
  | _, (Protocol.Health | Protocol.Metrics | Protocol.Catalog) ->
    (405, Protocol.error_body ~code:"method-not-allowed" "use GET", [])
  | _, Protocol.Run _ ->
    (405, Protocol.error_body ~code:"method-not-allowed" "use POST", [])
  | _, Protocol.Unknown ->
    (404, Protocol.error_body ~code:"not-found" "no such endpoint", [])

let record_status t status =
  let m = t.metrics in
  Mutex.lock m.m_lock;
  m.m_requests <- m.m_requests + 1;
  if status >= 400 then m.m_bad_requests <- m.m_bad_requests + 1;
  tally m.m_by_status status;
  Mutex.unlock m.m_lock

let handle_connection t fd =
  let respond ?(extra = []) ~close status body =
    let headers =
      extra @ if close then [ ("Connection", "close") ] else []
    in
    record_status t status;
    Http.write_all fd (Http.response_string ~headers ~status ~body ())
  in
  let rec serve_one () =
    match Http.read_request fd with
    | Http.Eof -> ()
    | Http.Malformed msg ->
      respond ~close:true 400 (Protocol.error_body ~code:"bad-request" msg)
    | Http.Oversized msg ->
      respond ~close:true 413 (Protocol.error_body ~code:"too-large" msg)
    | Http.Request req ->
      let status, body, extra = dispatch t req in
      let client_close =
        match Http.header req "connection" with
        | Some v -> String.lowercase_ascii v = "close"
        | None -> req.Http.version = "HTTP/1.0"
      in
      let close =
        client_close || t.stopping
        || List.mem_assoc "Connection" extra
      in
      respond ~extra ~close status body;
      log t "%s %s -> %d" req.Http.meth req.Http.path status;
      if not close then serve_one ()
  in
  (try serve_one ()
   with e -> log t "connection error: %s" (Printexc.to_string e));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  t.active_conns <- t.active_conns - 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop t () =
  let rec loop () =
    let ready, _, _ =
      try Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r ready then ()
    else if List.mem t.listen_fd ready then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (* a stuck or silent client must not pin its thread forever *)
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.conn_timeout_s;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.conn_timeout_s
         with Unix.Unix_error _ -> ());
        Mutex.lock t.lock;
        t.active_conns <- t.active_conns + 1;
        Mutex.unlock t.lock;
        Mutex.lock t.metrics.m_lock;
        t.metrics.m_connections <- t.metrics.m_connections + 1;
        Mutex.unlock t.metrics.m_lock;
        ignore (Thread.create (handle_connection t) fd);
        loop ()
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
        loop ()
      | exception Unix.Unix_error _ -> if t.stopping then () else loop ()
    end
    else loop ()
  in
  loop ()

let start cfg =
  let inet =
    try Unix.inet_addr_of_string cfg.host
    with Failure _ -> (
      match Unix.gethostbyname cfg.host with
      | { Unix.h_addr_list = [||]; _ } ->
        invalid_arg ("cannot resolve host " ^ cfg.host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> invalid_arg ("cannot resolve host " ^ cfg.host))
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (inet, cfg.port))
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 128;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let stop_r, stop_w = Unix.pipe () in
  let cache = Option.map Result_cache.open_ cfg.cache_dir in
  let pool =
    Pool.create ~workers:cfg.workers ~queue_capacity:cfg.queue_capacity ?cache
      ()
  in
  let t =
    {
      cfg;
      pool;
      listen_fd;
      bound_port;
      stop_r;
      stop_w;
      lock = Mutex.create ();
      cond = Condition.create ();
      stopping = false;
      active_conns = 0;
      accept_thread = None;
      metrics =
        {
          m_lock = Mutex.create ();
          m_started = now ();
          m_latency = Histogram.create ();
          m_by_verb = Hashtbl.create 8;
          m_by_status = Hashtbl.create 8;
          m_connections = 0;
          m_requests = 0;
          m_bad_requests = 0;
        };
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let request_stop t =
  Mutex.lock t.lock;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  if first then
    (* wake the accept loop; a single byte suffices *)
    try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let wait_stop_requested t =
  Mutex.lock t.lock;
  while not t.stopping do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  request_stop t;
  (match t.accept_thread with
  | Some th ->
    Thread.join th;
    t.accept_thread <- None
  | None -> ());
  (* connections already accepted run to completion: their in-flight jobs
     settle below, and keep-alive loops close after the next response *)
  Pool.shutdown t.pool;
  Mutex.lock t.lock;
  while t.active_conns > 0 do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ]

let pool_stats t = Pool.stats t.pool
