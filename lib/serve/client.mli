(** Minimal blocking HTTP client used by [serve-client], the load
    generator and the end-to-end tests.  One connection per request
    ([Connection: close]); responses are read to EOF and parsed with
    {!Http.parse_response}. *)

val request :
  ?timeout_s:float ->
  host:string -> port:int -> meth:string -> path:string ->
  ?body:string -> unit ->
  (Http.response, string) result
(** [timeout_s] (default 30) bounds connect/send/receive via socket
    timeouts; errors (refused, timeout, malformed response) come back as
    [Error msg] rather than exceptions. *)

val get :
  ?timeout_s:float -> host:string -> port:int -> string ->
  (Http.response, string) result

val post_json :
  ?timeout_s:float -> host:string -> port:int -> string -> string ->
  (Http.response, string) result
