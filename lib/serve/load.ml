module Histogram = Trips_util.Histogram
module Json = Trips_util.Json

type spec = { s_path : string; s_body : string }

type level = {
  concurrency : int;
  requests : int;
  ok : int;
  shed : int;        (* HTTP 429 *)
  failed : int;      (* transport errors and non-200/429 statuses *)
  wall_s : float;
  throughput_rps : float;
  hist : Histogram.t;
}

(* Per-worker tallies, merged after the join — no shared mutable state on
   the hot path. *)
type tally = {
  mutable t_ok : int;
  mutable t_shed : int;
  mutable t_failed : int;
  t_hist : Histogram.t;
}

let run_level ~host ~port ~concurrency ~repeat specs =
  if specs = [] then invalid_arg "Load.run_level: no request specs";
  let n_specs = List.length specs in
  let spec_arr = Array.of_list specs in
  let worker w =
    let t =
      { t_ok = 0; t_shed = 0; t_failed = 0; t_hist = Histogram.create () }
    in
    for i = 0 to repeat - 1 do
      (* round-robin across specs, offset per worker so concurrent
         workers spread over the mix *)
      let s = spec_arr.(((w * repeat) + i) mod n_specs) in
      let t0 = Unix.gettimeofday () in
      (match
         Client.post_json ~host ~port s.s_path s.s_body
       with
      | Result.Ok { Http.status = 200; _ } ->
        Histogram.observe t.t_hist (Unix.gettimeofday () -. t0);
        t.t_ok <- t.t_ok + 1
      | Result.Ok { Http.status = 429; _ } -> t.t_shed <- t.t_shed + 1
      | Result.Ok _ | Result.Error _ -> t.t_failed <- t.t_failed + 1)
    done;
    t
  in
  let results = Array.make concurrency None in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun w ->
        Thread.create (fun () -> results.(w) <- Some (worker w)) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let hist = Histogram.create () in
  let ok = ref 0 and shed = ref 0 and failed = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some t ->
        ok := !ok + t.t_ok;
        shed := !shed + t.t_shed;
        failed := !failed + t.t_failed;
        Histogram.merge_into ~dst:hist t.t_hist)
    results;
  let requests = concurrency * repeat in
  {
    concurrency;
    requests;
    ok = !ok;
    shed = !shed;
    failed = !failed;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int !ok /. wall_s else 0.);
    hist;
  }

let level_json l =
  Json.Obj
    [
      ("concurrency", Json.Int l.concurrency);
      ("requests", Json.Int l.requests);
      ("ok", Json.Int l.ok);
      ("shed", Json.Int l.shed);
      ("failed", Json.Int l.failed);
      ("wall_s", Json.Float l.wall_s);
      ("throughput_rps", Json.Float l.throughput_rps);
      ("latency", Histogram.to_json l.hist);
    ]
