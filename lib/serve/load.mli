(** Closed-loop load generator: [concurrency] client threads each issue
    [repeat] requests back-to-back (a new connection per request),
    round-robining over the spec mix.  Closed-loop means offered load
    adapts to service rate — the generator measures capacity, it cannot
    overrun the server except through concurrency itself. *)

type spec = { s_path : string; s_body : string }

type level = {
  concurrency : int;
  requests : int;          (* concurrency * repeat *)
  ok : int;                (* HTTP 200 *)
  shed : int;              (* HTTP 429 back-pressure *)
  failed : int;            (* transport errors, other statuses *)
  wall_s : float;
  throughput_rps : float;  (* ok / wall *)
  hist : Trips_util.Histogram.t;  (* per-request latency, 200s only *)
}

val run_level :
  host:string -> port:int -> concurrency:int -> repeat:int -> spec list ->
  level

val level_json : level -> Trips_util.Json.t
