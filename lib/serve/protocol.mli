(** JSON request/response protocol of the simulation service.

    Endpoints:
    - [GET /health] — liveness + queue depth.
    - [GET /metrics] — counters, latency histogram, pool statistics.
    - [GET /api/v1/verbs] — catalog of verbs, presets and benchmarks.
    - [POST /api/v1/<verb>] with body [{"bench": "fft", "preset": "C"}] —
      run one request ([compile], [lint], [timing], [simulate],
      [transval]).  [simulate] also accepts ["mode": "sampled"] for the
      sampled estimator (exact execution, confidence-interval cycles).
    - [POST /api/v1/run] — same, with ["verb"] carried in the body.

    Success bodies are [{ok, verb, bench, preset, origin, elapsed_s,
    result}] where [origin] is ["computed"], ["cache"] or ["coalesced"]
    and [result] is the experiment table as [{title, columns, rows}].
    Error bodies are [{ok: false, error: <code>, message}]; saturation
    answers HTTP 429 with [error: "saturated"] and a [Retry-After]
    header rather than queueing without bound. *)

type route =
  | Health
  | Metrics
  | Catalog
  | Run of string  (* verb token from the path; "run" = verb in body *)
  | Unknown

val api_prefix : string
val route_of_path : string -> route

val parse_run_request :
  verb_token:string -> string -> (Trips_harness.Service.request, string) result
(** Decode and validate a run request body; the error string is
    client-presentable (unknown verb/bench/preset, malformed JSON, ...). *)

val run_request_body : Trips_harness.Service.request -> string
(** The canonical body a client posts for [r] (used by the load
    generator and [serve-client]). *)

val result_body :
  Trips_harness.Service.request ->
  origin:string -> elapsed_s:float -> Trips_util.Table.t -> string

val error_body : code:string -> string -> string

val catalog_body : unit -> string
