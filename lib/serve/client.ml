(* One-shot HTTP client: a request per connection, [Connection: close],
   read to EOF.  Deliberately simple — the daemon's keep-alive path is
   exercised by the tests, not by this client. *)

let connect ~host ~port ~timeout_s =
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve " ^ host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> failwith ("cannot resolve " ^ host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with Unix.Unix_error _ -> ());
  match Unix.connect fd (Unix.ADDR_INET (inet, port)) with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let request ?(timeout_s = 30.) ~host ~port ~meth ~path ?(body = "") () =
  match connect ~host ~port ~timeout_s with
  | exception e -> Result.Error (Printexc.to_string e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let head =
          Printf.sprintf
            "%s %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n" meth path
            host port
        in
        let msg =
          if body = "" && meth <> "POST" then head ^ "\r\n"
          else
            head
            ^ Printf.sprintf
                "Content-Type: application/json\r\nContent-Length: %d\r\n\r\n"
                (String.length body)
            ^ body
        in
        Http.write_all fd msg;
        match read_to_eof fd with
        | "" -> Result.Error "empty response (connection reset or timeout)"
        | raw -> Http.parse_response raw)

let get ?timeout_s ~host ~port path =
  request ?timeout_s ~host ~port ~meth:"GET" ~path ()

let post_json ?timeout_s ~host ~port path body =
  request ?timeout_s ~host ~port ~meth:"POST" ~path ~body ()
