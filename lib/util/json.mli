(** Minimal JSON emitter and parser.

    The engine writes experiment tables, run manifests and benchmark
    summaries as JSON; the service front door ({!Trips_serve}) also
    *parses* JSON request bodies, so the module carries a strict
    recursive-descent parser alongside the emitter.  Output is
    deterministic: two structurally equal values always render to the
    same bytes (object fields keep insertion order, floats use a fixed
    [%.12g] spelling). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** A quoted JSON string literal for [s], escaping quotes, backslashes and
    control characters. *)

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline included.  NaN and
    infinities render as [null]. *)

val parse : string -> (t, string) result
(** Strict JSON parser: one complete value, no trailing bytes.  Numbers
    without fraction or exponent parse as [Int] (falling back to [Float]
    beyond [int] range); [\u] escapes decode to UTF-8, surrogate pairs
    combined and lone surrogates replaced with U+FFFD.  Errors carry the
    byte offset. *)

(** {2 Accessors}

    Shape-checked projections used by the request codecs; all return
    [None] instead of raising on a type mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence); [None] on any other shape. *)

val as_str : t -> string option
val as_bool : t -> bool option
val as_int : t -> int option

val as_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish). *)

val as_list : t -> t list option
val as_obj : t -> (string * t) list option

val mem_str : string -> t -> string option
(** [mem_str k v] = [member k v |> as_str]; likewise the two below. *)

val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
