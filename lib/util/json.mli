(** Minimal JSON emitter for the artifact store.

    The engine writes experiment tables, run manifests and benchmark
    summaries as JSON; nothing in the tree needs to *parse* JSON, so this
    is an emitter only.  Output is deterministic: two structurally equal
    values always render to the same bytes (object fields keep insertion
    order, floats use a fixed [%.12g] spelling). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** A quoted JSON string literal for [s], escaping quotes, backslashes and
    control characters. *)

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline included.  NaN and
    infinities render as [null]. *)
