(** Log-bucketed latency histogram.

    Fixed buckets double from one microsecond upward, so [observe] is
    O(buckets) worst case with no allocation, and quantiles are estimated
    to within a factor of [sqrt 2] (each estimate is its bucket's
    geometric midpoint, clamped to the observed maximum).  Plenty for
    p50/p99 service latency; not a general-purpose statistic.

    Not thread-safe: callers that share one histogram across threads or
    domains must hold their own lock (the server's metrics registry
    does). *)

type t

val create : unit -> t
val reset : t -> unit

val observe : t -> float -> unit
(** Record one latency in seconds.  Negative and NaN observations clamp
    to zero rather than raising: a clock that steps backwards must not
    kill a server. *)

val count : t -> int
val total : t -> float
val mean : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t 0.99] estimates the 99th percentile; 0 when empty. *)

val merge_into : dst:t -> t -> unit
(** Add [src]'s counts into [dst] (per-thread histograms folded into one). *)

val buckets : t -> (float * int) list
(** Non-empty buckets as (inclusive upper bound in seconds, count). *)

val to_json : t -> Json.t
(** Count, mean/max, p50/p90/p99 and the non-empty buckets. *)
