(* Log-bucketed latency histogram: bucket i spans (base*2^(i-1), base*2^i],
   base = 1 microsecond.  44 buckets reach ~8.8e6 seconds, far past any
   request latency; observations beyond the last bound clamp into it. *)

let base = 1e-6
let nbuckets = 44

type t = {
  counts : int array;
  mutable n : int;
  mutable total : float;
  mutable max_seen : float;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0.; max_seen = 0. }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.total <- 0.;
  t.max_seen <- 0.

let bound i = base *. Float.of_int (1 lsl i)

let bucket_of x =
  let rec go i = if i >= nbuckets - 1 || x <= bound i then i else go (i + 1) in
  go 0

let observe t x =
  let x = if Float.is_nan x || x < 0. then 0. else x in
  t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  if x > t.max_seen then t.max_seen <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
let max_value t = t.max_seen

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go i acc =
      if i >= nbuckets then t.max_seen
      else
        let acc = acc + t.counts.(i) in
        if acc >= rank then
          (* geometric midpoint of the bucket, clamped to the observed max *)
          let lo = if i = 0 then base /. 2. else bound (i - 1) in
          Float.min (sqrt (lo *. bound i)) t.max_seen
        else go (i + 1) acc
    in
    go 0 0
  end

let merge_into ~dst src =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.total <- dst.total +. src.total;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bound i, t.counts.(i)) :: !acc
  done;
  !acc

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("mean_s", Json.Float (mean t));
      ("max_s", Json.Float t.max_seen);
      ("p50_s", Json.Float (quantile t 0.5));
      ("p90_s", Json.Float (quantile t 0.9));
      ("p99_s", Json.Float (quantile t 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) ->
               Json.Obj [ ("le_s", Json.Float le); ("count", Json.Int c) ])
             (buckets t)) );
    ]
