type counter = { cname : string; mutable value : int }

let counter cname = { cname; value = 0 }
let name c = c.cname
let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let get c = c.value
let reset c = c.value <- 0

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map (fun x -> assert (x > 0.); log x) xs in
    exp (mean logs)

let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b
let percent part whole = 100. *. ratio part whole

let pearson xs ys =
  let n = List.length xs in
  if n < 2 || n <> List.length ys then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    List.iter2
      (fun x y ->
        sxy := !sxy +. ((x -. mx) *. (y -. my));
        sxx := !sxx +. ((x -. mx) *. (x -. mx));
        syy := !syy +. ((y -. my) *. (y -. my)))
      xs ys;
    if !sxx = 0. || !syy = 0. then 0.
    else !sxy /. sqrt (!sxx *. !syy)
  end

let mape ~predicted ~actual =
  let errs =
    List.filter_map
      (fun (p, a) -> if a = 0. then None else Some (abs_float (p -. a) /. abs_float a *. 100.))
      (List.combine predicted actual)
  in
  mean errs

type running = {
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

let running () = { n = 0; sum = 0.; lo = infinity; hi = neg_infinity }

let observe r x =
  r.n <- r.n + 1;
  r.sum <- r.sum +. x;
  if x < r.lo then r.lo <- x;
  if x > r.hi then r.hi <- x

let count r = r.n
let average r = if r.n = 0 then 0. else r.sum /. float_of_int r.n
let minimum r = if r.n = 0 then 0. else r.lo
let maximum r = if r.n = 0 then 0. else r.hi
