(** Counters and summary statistics shared by all simulators.

    Simulators expose their measurements as named counters; the harness
    aggregates them into means.  Arithmetic and geometric means mirror the
    paper's usage: arithmetic for block-size/occupancy figures (Figs 3, 6),
    geometric for normalized ratios and speedups (Figs 4, 5, 11, 12). *)

type counter
(** A mutable named tally. *)

val counter : string -> counter
val name : counter -> string
val incr : counter -> unit
val add : counter -> int -> unit
val get : counter -> int
val reset : counter -> unit

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list; requires strictly positive inputs. *)

val ratio : int -> int -> float
(** [ratio a b] is [a /. b] guarding division by zero (yields 0). *)

val percent : int -> int -> float
(** [percent part whole] in 0..100, guarded. *)

val pearson : float list -> float list -> float
(** Pearson correlation coefficient of two paired samples; 0 when fewer
    than two points, mismatched lengths, or either sample is constant. *)

val mape : predicted:float list -> actual:float list -> float
(** Mean absolute percentage error, in percent; pairs whose actual value
    is 0 are skipped. *)

type running
(** Online mean/min/max accumulator. *)

val running : unit -> running
val observe : running -> float -> unit
val count : running -> int
val average : running -> float
val minimum : running -> float
val maximum : running -> float
