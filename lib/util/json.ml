type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr x =
  if not (Float.is_finite x) then "null" (* nan/inf have no JSON spelling *)
  else
    let s = Printf.sprintf "%.12g" x in
    (* keep the token a float so readers round-trip the type *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let to_string v =
  let buf = Buffer.create 1024 in
  let rec emit indent v =
    let pad n = String.make (2 * n) ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | Str s -> Buffer.add_string buf (escape s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          emit (indent + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
