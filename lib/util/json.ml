type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr x =
  if not (Float.is_finite x) then "null" (* nan/inf have no JSON spelling *)
  else
    let s = Printf.sprintf "%.12g" x in
    (* keep the token a float so readers round-trip the type *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of int * string

let utf8_of_code buf u =
  (* encode one Unicode scalar value as UTF-8 *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let u = hex4 () in
           (* combine surrogate pairs; a lone surrogate becomes U+FFFD *)
           if u >= 0xD800 && u <= 0xDBFF then begin
             if
               !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 utf8_of_code buf
                   (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
               else begin
                 utf8_of_code buf 0xFFFD;
                 utf8_of_code buf lo
               end
             end
             else utf8_of_code buf 0xFFFD
           end
           else if u >= 0xDC00 && u <= 0xDFFF then utf8_of_code buf 0xFFFD
           else utf8_of_code buf u
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* integer part: "0" or a nonzero-led digit run — "01" is invalid *)
    let d0 = !pos in
    digits ();
    if !pos - d0 > 1 && s.[d0] = '0' then fail "leading zero in number";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok) (* out of int range *)
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elems ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" !pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj f -> Some f | _ -> None

let mem_str k v = Option.bind (member k v) as_str
let mem_int k v = Option.bind (member k v) as_int
let mem_float k v = Option.bind (member k v) as_float

let to_string v =
  let buf = Buffer.create 1024 in
  let rec emit indent v =
    let pad n = String.make (2 * n) ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | Str s -> Buffer.add_string buf (escape s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          emit (indent + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
