(** Aligned plain-text tables.

    Every experiment in the harness renders its rows through this module so
    the bench output has a single, diffable format.  Columns are sized to
    their widest cell; numeric cells are right-aligned, text left-aligned. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a row; the row length must match the header. *)

val add_sep : t -> unit
(** Append a horizontal separator before the next row. *)

val render : t -> string
(** The finished table as a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val rows : t -> string list list
(** Data rows in display order, separators dropped. *)

val to_json : t -> string
(** The table as a JSON object [{title, columns, rows}]; separators are
    presentation-only and dropped.  Deterministic byte-for-byte. *)

val to_csv : t -> string
(** Header line then data rows, RFC 4180 quoting (cells containing quotes,
    commas or newlines are quoted, embedded quotes doubled), CRLF line
    endings. *)

val serialize : t -> string
(** Opaque byte string for the on-disk result cache. *)

val deserialize : string -> t
(** Inverse of [serialize].
    @raise Failure on a payload [serialize] did not produce. *)

val fnum : float -> string
(** Compact fixed-point formatting used across experiment tables:
    two decimals under 100, one decimal under 1000, integral above. *)

val fpct : float -> string
(** Percentage with one decimal and a ["%"] suffix. *)
