type align = Left | Right

type line = Row of string list | Sep

type t = {
  title : string option;
  header : string list;
  aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ?title columns =
  {
    title;
    header = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    lines = [];
  }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong arity";
  t.lines <- Row row :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.lines in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.header;
  List.iter (function Row r -> measure r | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let sep_line () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        if i < ncols - 1 then Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_char buf ' ';
        if i < ncols - 1 then Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  emit t.header;
  sep_line ();
  List.iter (function Row r -> emit r | Sep -> sep_line ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let rows t =
  List.rev t.lines
  |> List.filter_map (function Row r -> Some r | Sep -> None)

let to_json t =
  let align_name = function Left -> "left" | Right -> "right" in
  Json.to_string
    (Json.Obj
       [
         ("title", match t.title with Some s -> Json.Str s | None -> Json.Null);
         ( "columns",
           Json.List
             (List.mapi
                (fun i name ->
                  Json.Obj
                    [ ("name", Json.Str name);
                      ("align", Json.Str (align_name t.aligns.(i))) ])
                t.header) );
         ( "rows",
           Json.List
             (List.map (fun r -> Json.List (List.map (fun c -> Json.Str c) r))
                (rows t)) );
       ])

(* RFC 4180: quote any cell holding a quote, comma or line break; double
   embedded quotes. *)
let csv_cell c =
  let needs_quote =
    String.exists (fun ch -> ch = '"' || ch = ',' || ch = '\n' || ch = '\r') c
  in
  if not needs_quote then c
  else
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_string buf "\r\n"
  in
  emit t.header;
  List.iter emit (rows t);
  Buffer.contents buf

let serialize t = Marshal.to_string t []

let deserialize s =
  try (Marshal.from_string s 0 : t)
  with _ -> failwith "Table.deserialize: corrupt payload"

let fnum x =
  let ax = Float.abs x in
  if ax < 100. then Printf.sprintf "%.2f" x
  else if ax < 1000. then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.0f" x

let fpct x = Printf.sprintf "%.1f%%" x
