module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Cfg = Trips_tir.Cfg
module Lower = Trips_tir.Lower
module Opt = Trips_tir.Opt
module Transform = Trips_tir.Transform
module Image = Trips_tir.Image

module IM = Map.Make (Int)
module IS = Set.Make (Int)

let fits16 n = n >= -32768L && n < 32768L

(* ------------------------------------------------------------------ *)
(* Register class inference                                            *)
(* ------------------------------------------------------------------ *)

type rclass = Ci_ | Cf_

let float_binop (op : Ast.binop) =
  match op with
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv -> true
  | _ -> false

(* float compares read the float file but write an integer register *)
let float_srcs (op : Ast.binop) =
  match op with
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv
  | Ast.Feq | Ast.Fne | Ast.Flt | Ast.Fle | Ast.Fgt | Ast.Fge ->
    true
  | _ -> false

let unop_src_float (op : Ast.unop) =
  match op with Ast.Ftoi | Ast.Fneg -> true | Ast.Itof -> false | _ -> false

(* fixpoint over moves: a vreg is float if any def produces a float;
   [ret_ty] gives callee return types so call destinations are classed *)
let infer_classes ~ret_ty (f : Cfg.func) : rclass array =
  let cls = Array.make (max 1 f.next_vreg) Ci_ in
  List.iter (fun (r, t) -> if t = Ty.F64 then cls.(r) <- Cf_) f.params;
  let changed = ref true in
  while !changed do
    changed := false;
    let mark d c = if cls.(d) <> c && c = Cf_ then begin cls.(d) <- Cf_; changed := true end in
    List.iter
      (fun (b : Cfg.block) ->
        List.iter
          (fun ins ->
            match ins with
            | Cfg.Bin (op, d, _, _) when float_binop op -> mark d Cf_
            | Cfg.Un (op, d, _) -> (
              match op with Ast.Itof | Ast.Fneg -> mark d Cf_ | _ -> ())
            | Cfg.Load (Ty.F64, _, d, _, _) -> mark d Cf_
            | Cfg.Mov (d, Cfg.Cf _) -> mark d Cf_
            | Cfg.Mov (d, Cfg.Reg s) -> if cls.(s) = Cf_ then mark d Cf_
            | Cfg.Call (Some d, callee, _) -> (
              match ret_ty callee with Some Ty.F64 -> mark d Cf_ | _ -> ())
            | _ -> ())
          b.ins)
      f.blocks
  done;
  cls

(* ------------------------------------------------------------------ *)
(* Liveness and interference                                           *)
(* ------------------------------------------------------------------ *)

let block_liveness (f : Cfg.func) =
  let use = Hashtbl.create 16 and def = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) ->
      let u = ref IS.empty and d = ref IS.empty in
      let see_use = function Cfg.Reg r when not (IS.mem r !d) -> u := IS.add r !u | _ -> () in
      List.iter
        (fun ins ->
          List.iter see_use (Cfg.uses ins);
          List.iter (fun r -> d := IS.add r !d) (Cfg.defs ins))
        b.ins;
      List.iter see_use (Cfg.term_uses b.term);
      Hashtbl.replace use b.label !u;
      Hashtbl.replace def b.label !d)
    f.blocks;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) ->
      Hashtbl.replace live_in b.label IS.empty;
      Hashtbl.replace live_out b.label IS.empty)
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Cfg.block) ->
        let out =
          List.fold_left
            (fun acc l ->
              match Hashtbl.find_opt live_in l with Some s -> IS.union acc s | None -> acc)
            IS.empty (Cfg.successors b.term)
        in
        let inn =
          IS.union (Hashtbl.find use b.label) (IS.diff out (Hashtbl.find def b.label))
        in
        if not (IS.equal out (Hashtbl.find live_out b.label)) then begin
          Hashtbl.replace live_out b.label out;
          changed := true
        end;
        if not (IS.equal inn (Hashtbl.find live_in b.label)) then begin
          Hashtbl.replace live_in b.label inn;
          changed := true
        end)
      f.blocks
  done;
  live_out

(* Interference by backward scan inside each block. *)
let interference (f : Cfg.func) =
  let live_out = block_liveness f in
  let interf : (int, IS.t) Hashtbl.t = Hashtbl.create 64 in
  let edge a b =
    if a <> b then begin
      let add x y =
        Hashtbl.replace interf x
          (IS.add y (Option.value ~default:IS.empty (Hashtbl.find_opt interf x)))
      in
      add a b;
      add b a
    end
  in
  let entry_label = match f.blocks with [] -> "" | b :: _ -> b.Cfg.label in
  List.iter
    (fun (b : Cfg.block) ->
      let live = ref (Hashtbl.find live_out b.label) in
      List.iter (function Cfg.Reg r -> live := IS.add r !live | _ -> ()) (Cfg.term_uses b.term);
      List.iter
        (fun ins ->
          let defs = Cfg.defs ins in
          List.iter (fun d -> IS.iter (fun l -> edge d l) !live) defs;
          List.iter (fun d -> live := IS.remove d !live) defs;
          List.iter (function Cfg.Reg r -> live := IS.add r !live | _ -> ()) (Cfg.uses ins))
        (List.rev b.ins);
      (* parameters are defined "before" the entry block: they interfere
         with everything live at function entry, including each other *)
      if b.Cfg.label = entry_label then begin
        let params = List.map fst f.params in
        List.iter
          (fun p ->
            IS.iter (fun l -> edge p l) !live;
            List.iter (fun q -> edge p q) params)
          params
      end)
    f.blocks;
  interf

type assignment = Reg of int | Spill of int

let allocate (f : Cfg.func) (cls : rclass array) :
    assignment array * int (* frame slots *) =
  let interf = interference f in
  let assign = Array.make (max 1 f.next_vreg) (Spill (-1)) in
  let all_vregs =
    let s = ref IS.empty in
    List.iter
      (fun (b : Cfg.block) ->
        List.iter
          (fun ins ->
            List.iter (fun d -> s := IS.add d !s) (Cfg.defs ins);
            List.iter (function Cfg.Reg r -> s := IS.add r !s | _ -> ()) (Cfg.uses ins))
          b.ins;
        List.iter (function Cfg.Reg r -> s := IS.add r !s | _ -> ()) (Cfg.term_uses b.term))
      f.blocks;
    List.iter (fun (p, _) -> s := IS.add p !s) f.params;
    !s
  in
  let nodes =
    IS.elements all_vregs
    |> List.sort (fun a b ->
           let deg v = IS.cardinal (Option.value ~default:IS.empty (Hashtbl.find_opt interf v)) in
           compare (deg b) (deg a))
  in
  let next_slot = ref 0 in
  List.iter
    (fun v ->
      let pool = if cls.(v) = Cf_ then Isa.allocatable_flt else Isa.allocatable_int in
      (* exclude the return-value registers: they are clobbered by calls *)
      let pool = List.filter (fun r -> r <> Isa.abi_int_ret && r <> Isa.abi_flt_ret) pool in
      let neighbors = Option.value ~default:IS.empty (Hashtbl.find_opt interf v) in
      let taken =
        IS.fold
          (fun n acc ->
            if cls.(n) = cls.(v) then
              match assign.(n) with Reg r -> IS.add r acc | Spill _ -> acc
            else acc)
          neighbors IS.empty
      in
      match List.find_opt (fun r -> not (IS.mem r taken)) pool with
      | Some r -> assign.(v) <- Reg r
      | None ->
        let s = !next_slot in
        incr next_slot;
        assign.(v) <- Spill s)
    nodes;
  (assign, !next_slot)

(* ------------------------------------------------------------------ *)
(* Instruction selection and emission                                  *)
(* ------------------------------------------------------------------ *)

type emitter = {
  mutable out : Isa.ins list;              (* reversed *)
  mutable count : int;
  mutable label_at : (string * int) list;  (* label -> code index *)
  mutable fixups : (int * string * string option) list;
      (* code index, target label, fall-through label (for Bc) *)
  assign : assignment array;
  cls : rclass array;
  layout : (string * int) list;
  pool : (float, int) Hashtbl.t;           (* float constant -> pool addr *)
  mutable pool_next : int ref;
}

let emit e ins =
  e.out <- ins :: e.out;
  e.count <- e.count + 1

let pool_addr e v =
  match Hashtbl.find_opt e.pool v with
  | Some a -> a
  | None ->
    let a = !(e.pool_next) in
    e.pool_next := a + 8;
    Hashtbl.replace e.pool v a;
    a

(* Materialize an integer constant into [d]. *)
let emit_const e d n =
  if fits16 n then emit e (Isa.Li (d, n))
  else begin
    let lo = Int64.logand n 0xFFFFL in
    let hi = Int64.shift_right n 16 in
    if hi >= -32768L && hi < 32768L then begin
      (* exact lis/ori reconstruction of any 32-bit value *)
      emit e (Isa.Lis (d, hi));
      if lo <> 0L then emit e (Isa.Ori (d, d, lo))
    end
    else begin
      (* wider constants: the value rides on Li for simulation fidelity,
         with ori padding charging the realistic instruction count *)
      emit e (Isa.Li (d, n));
      emit e (Isa.Ori (d, d, 0L));
      emit e (Isa.Ori (d, d, 0L))
    end
  end

let spill_off slot = 16 + (slot * 8)   (* [r1 + off] *)

(* Bring a vreg into a physical register, spilling through scratch. *)
let load_vreg e v ~scratch =
  match e.assign.(v) with
  | Reg r -> r
  | Spill s ->
    if e.cls.(v) = Cf_ then begin
      emit e (Isa.Lw (Ty.F64, Ty.W8, scratch, 1, spill_off s));
      scratch
    end
    else begin
      emit e (Isa.Lw (Ty.I64, Ty.W8, scratch, 1, spill_off s));
      scratch
    end

let store_vreg e v ~from =
  match e.assign.(v) with
  | Reg r -> if r <> from then emit e (if e.cls.(v) = Cf_ then Isa.Fmr (r, from) else Isa.Mr (r, from))
  | Spill s ->
    let t = if e.cls.(v) = Cf_ then Ty.F64 else Ty.I64 in
    emit e (Isa.Sw (t, Ty.W8, 1, spill_off s, from))

(* Destination register for a def: real register or scratch (stored after). *)
let def_reg e v ~scratch =
  match e.assign.(v) with Reg r -> r | Spill _ -> scratch

let finish_def e v ~used =
  match e.assign.(v) with
  | Reg _ -> ()
  | Spill s ->
    let t = if e.cls.(v) = Cf_ then Ty.F64 else Ty.I64 in
    emit e (Isa.Sw (t, Ty.W8, 1, spill_off s, used))

(* Operand into a register of the right class. *)
let operand_reg e (o : Cfg.operand) ~scratch =
  match o with
  | Cfg.Reg v -> load_vreg e v ~scratch
  | Cfg.Ci n ->
    emit_const e scratch n;
    scratch
  | Cfg.Cf x ->
    emit e (Isa.Lfc (scratch, x, pool_addr e x));
    scratch
  | Cfg.Sym s ->
    let addr = List.assoc s e.layout in
    emit_const e scratch (Int64.of_int addr);
    scratch

(* Parallel-move resolution with one temporary: repeatedly emit any move
   whose destination is no other pending move's source; break cycles by
   rotating through the scratch register. *)
let parallel_moves moves ~scratch ~emit_move =
  let pending = ref (List.filter (fun (d, s) -> d <> s) moves) in
  while !pending <> [] do
    let is_source r = List.exists (fun (_, s) -> s = r) !pending in
    match List.find_opt (fun (d, _) -> not (is_source d)) !pending with
    | Some ((d, s) as m) ->
      emit_move d s;
      pending := List.filter (fun m' -> m' <> m) !pending
    | None -> (
      match !pending with
      | (d, s) :: rest ->
        emit_move scratch s;
        pending := rest @ [ (d, scratch) ]
      | [] -> ())
  done

type fwitness = {
  wf_cfg : Cfg.func;
  wf_cls : rclass array;
  wf_assign : assignment array;
  wf_frame : int;
  wf_has_frame : bool;
  wf_nslots : int;
}

let compile_witnessed ?(optimize = true) ?(unroll = 1) ?(inline = true)
    (p : Ast.program) : Isa.program * (string * fwitness) list * (string * int) list =
  let p = if inline then Transform.inline p else p in
  let p = if unroll > 1 then Transform.unroll_program ~factor:unroll p else p in
  let cfg = Lower.program p in
  if optimize then Opt.run_program cfg;
  let layout = Image.layout cfg.Cfg.globals in
  (* place the constant pool after the globals *)
  let pool_base =
    List.fold_left (fun acc (_, a) -> max acc (a + 4096)) 0x1000 layout
  in
  let pool_next = ref pool_base in
  let pool_tbl = Hashtbl.create 16 in
  let ret_ty callee =
    match List.find_opt (fun (f : Cfg.func) -> f.Cfg.name = callee) cfg.Cfg.funcs with
    | Some f -> f.Cfg.ret
    | None -> None
  in
  let compile_func (f : Cfg.func) : Isa.func * fwitness =
    let cls = infer_classes ~ret_ty f in
    let assign, nslots = allocate f cls in
    let e =
      {
        out = []; count = 0; label_at = []; fixups = [];
        assign; cls; layout; pool = pool_tbl; pool_next = pool_next;
      }
    in
    let s1, s2 = Isa.scratch_int in
    let f1, f2 = Isa.scratch_flt in
    let scr v = if cls.(v) = Cf_ then f1 else s1 in
    (* Callee-saved registers this function writes: real PowerPC code saves
       them in the prologue and reloads them at returns.  The simulator's
       call checkpoint makes these semantically inert, but the instruction
       and memory-access counts they contribute are the register-save
       traffic the paper's Fig 5 compares against. *)
    let saves =
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun v a ->
          match a with
          | Reg r -> Hashtbl.replace seen (cls.(v) = Cf_, r) ()
          | Spill _ -> ())
        assign;
      Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare
    in
    let nsaves = List.length saves in
    let frame = 16 + (nslots * 8) + (nsaves * 8) in
    let has_frame = nslots > 0 || nsaves > 0 in
    let save_off k = 16 + (nslots * 8) + (k * 8) in
    (* prologue: frame, callee-saves, parameter binding *)
    if has_frame then emit e (Isa.Opi (Ast.Sub, 1, 1, Int64.of_int frame));
    List.iteri
      (fun k (is_f, r) ->
        emit e (Isa.Sw ((if is_f then Ty.F64 else Ty.I64), Ty.W8, 1, save_off k, r)))
      saves;
    (* Bind parameters from the ABI registers.  Spill-stores cannot clobber
       registers, so they go first; register-to-register bindings form a
       parallel move (a later move's source may be an earlier move's
       destination). *)
    let int_args = ref Isa.abi_int_args and flt_args = ref Isa.abi_flt_args in
    let par_int = ref [] and par_flt = ref [] in
    List.iter
      (fun (pv, t) ->
        let src =
          match t with
          | Ty.F64 ->
            let r = List.hd !flt_args in
            flt_args := List.tl !flt_args;
            r
          | Ty.I64 ->
            let r = List.hd !int_args in
            int_args := List.tl !int_args;
            r
        in
        match e.assign.(pv) with
        | Spill _ -> store_vreg e pv ~from:src
        | Reg rd ->
          if t = Ty.F64 then par_flt := (rd, src) :: !par_flt
          else par_int := (rd, src) :: !par_int)
      f.params;
    parallel_moves (List.rev !par_int) ~scratch:s1 ~emit_move:(fun d s ->
        emit e (Isa.Mr (d, s)));
    parallel_moves (List.rev !par_flt) ~scratch:f1 ~emit_move:(fun d s ->
        emit e (Isa.Fmr (d, s)));
    let emit_ins (ins : Cfg.ins) =
      match ins with
      | Cfg.Bin (op, d, a, b) -> (
        let a, b =
          match (a, b) with
          | Cfg.Ci n, other
            when fits16 n
                 && (match op with
                    | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Xor -> true
                    | _ -> false) ->
            (other, Cfg.Ci n)
          | _ -> (a, b)
        in
        let float_op = float_srcs op in
        let sa = if float_op then f1 else s1 in
        let sb = if float_op then f2 else s2 in
        (* compares on floats write an integer register *)
        let dst_scratch = if cls.(d) = Cf_ then f2 else s2 in
        match b with
        | Cfg.Ci n when fits16 n && not float_op ->
          let ra = operand_reg e a ~scratch:sa in
          let rd = def_reg e d ~scratch:dst_scratch in
          emit e (Isa.Opi (op, rd, ra, n));
          finish_def e d ~used:rd
        | _ ->
          let ra = operand_reg e a ~scratch:sa in
          let rb = operand_reg e b ~scratch:sb in
          let rd = def_reg e d ~scratch:dst_scratch in
          emit e (Isa.Op (op, rd, ra, rb));
          finish_def e d ~used:rd)
      | Cfg.Un (op, d, a) ->
        let src_scratch = if unop_src_float op then f1 else s1 in
        let ra = operand_reg e a ~scratch:src_scratch in
        let rd = def_reg e d ~scratch:(if cls.(d) = Cf_ then f2 else s2) in
        emit e (Isa.Unop (op, rd, ra));
        finish_def e d ~used:rd
      | Cfg.Mov (d, src) -> (
        match src with
        | Cfg.Reg sv when e.assign.(sv) = e.assign.(d) && cls.(sv) = cls.(d) -> ()
        | _ ->
          let rs = operand_reg e src ~scratch:(scr d) in
          (match e.assign.(d) with
          | Reg rd ->
            if rd <> rs then
              emit e (if cls.(d) = Cf_ then Isa.Fmr (rd, rs) else Isa.Mr (rd, rs))
          | Spill _ -> finish_def e d ~used:rs))
      | Cfg.Load (t, w, d, a, off) ->
        let ra = operand_reg e a ~scratch:s1 in
        let rd = def_reg e d ~scratch:(if t = Ty.F64 then f2 else s2) in
        emit e (Isa.Lw (t, w, rd, ra, off));
        finish_def e d ~used:rd
      | Cfg.Store (w, a, off, v) ->
        let ra = operand_reg e a ~scratch:s1 in
        let vfloat =
          match v with
          | Cfg.Reg sv -> cls.(sv) = Cf_
          | Cfg.Cf _ -> true
          | _ -> false
        in
        let rv = operand_reg e v ~scratch:(if vfloat then f2 else s2) in
        emit e (Isa.Sw ((if vfloat then Ty.F64 else Ty.I64), w, ra, off, rv))
      | Cfg.Call (dst, fname, args) ->
        (* classify argument positions by class *)
        let int_args = ref Isa.abi_int_args and flt_args = ref Isa.abi_flt_args in
        let moves_int = ref [] and moves_flt = ref [] in
        let extra = ref [] in
        List.iter
          (fun a ->
            let is_f =
              match a with
              | Cfg.Cf _ -> true
              | Cfg.Reg v -> cls.(v) = Cf_
              | _ -> false
            in
            if is_f then begin
              let dst = List.hd !flt_args in
              flt_args := List.tl !flt_args;
              match a with
              | Cfg.Reg v -> (
                match e.assign.(v) with
                | Reg r -> moves_flt := (dst, r) :: !moves_flt
                | Spill _ -> extra := (`F dst, a) :: !extra)
              | _ -> extra := (`F dst, a) :: !extra
            end
            else begin
              let dst = List.hd !int_args in
              int_args := List.tl !int_args;
              match a with
              | Cfg.Reg v -> (
                match e.assign.(v) with
                | Reg r -> moves_int := (dst, r) :: !moves_int
                | Spill _ -> extra := (`I dst, a) :: !extra)
              | _ -> extra := (`I dst, a) :: !extra
            end)
          args;
        parallel_moves (List.rev !moves_int) ~scratch:s1 ~emit_move:(fun d s ->
            emit e (Isa.Mr (d, s)));
        parallel_moves (List.rev !moves_flt) ~scratch:f1 ~emit_move:(fun d s ->
            emit e (Isa.Fmr (d, s)));
        List.iter
          (fun (dst, a) ->
            match dst with
            | `I d ->
              let r = operand_reg e a ~scratch:s1 in
              if r <> d then emit e (Isa.Mr (d, r))
            | `F d ->
              let r = operand_reg e a ~scratch:f1 in
              if r <> d then emit e (Isa.Fmr (d, r)))
          (List.rev !extra);
        emit e (Isa.Call fname);
        (match dst with
        | None -> ()
        | Some d ->
          if cls.(d) = Cf_ then store_vreg e d ~from:Isa.abi_flt_ret
          else store_vreg e d ~from:Isa.abi_int_ret)
    in
    let blocks = f.blocks in
    let nblocks = List.length blocks in
    List.iteri
      (fun bi (b : Cfg.block) ->
        e.label_at <- (b.label, e.count) :: e.label_at;
        List.iter emit_ins b.ins;
        let next_label =
          if bi + 1 < nblocks then Some (List.nth blocks (bi + 1)).Cfg.label else None
        in
        match b.term with
        | Cfg.Ret v ->
          (match v with
          | None -> ()
          | Some o -> (
            let is_f =
              match o with
              | Cfg.Cf _ -> true
              | Cfg.Reg r -> cls.(r) = Cf_
              | _ -> false
            in
            if is_f then begin
              let r = operand_reg e o ~scratch:f1 in
              if r <> Isa.abi_flt_ret then emit e (Isa.Fmr (Isa.abi_flt_ret, r))
            end
            else begin
              let r = operand_reg e o ~scratch:s1 in
              if r <> Isa.abi_int_ret then emit e (Isa.Mr (Isa.abi_int_ret, r))
            end));
          List.iteri
            (fun k (is_f, r) ->
              emit e
                (Isa.Lw ((if is_f then Ty.F64 else Ty.I64), Ty.W8, r, 1, save_off k)))
            saves;
          if has_frame then emit e (Isa.Opi (Ast.Add, 1, 1, Int64.of_int frame));
          emit e Isa.Ret
        | Cfg.Jmp l ->
          if Some l <> next_label then begin
            e.fixups <- (e.count, l, None) :: e.fixups;
            emit e (Isa.B (-1))
          end
        | Cfg.Br (c, l1, l2) ->
          let rc = operand_reg e c ~scratch:s1 in
          e.fixups <- (e.count, l1, None) :: e.fixups;
          emit e (Isa.Bc (rc, -1, -1));
          if Some l2 <> next_label then begin
            e.fixups <- (e.count, l2, None) :: e.fixups;
            emit e (Isa.B (-1))
          end)
      blocks;
    let code = Array.of_list (List.rev e.out) in
    let label_idx l =
      match List.assoc_opt l e.label_at with
      | Some i -> i
      | None -> failwith ("Codegen: unknown label " ^ l)
    in
    List.iter
      (fun (idx, l, fall) ->
        match code.(idx) with
        | Isa.B _ -> code.(idx) <- Isa.B (label_idx l)
        | Isa.Bc (r, _, _) ->
          ignore fall;
          code.(idx) <- Isa.Bc (r, label_idx l, idx + 1)
        | _ -> assert false)
      e.fixups;
    ({ Isa.fname = f.name; code; labels = e.label_at },
     { wf_cfg = f; wf_cls = cls; wf_assign = assign; wf_frame = frame;
       wf_has_frame = has_frame; wf_nslots = nslots })
  in
  let compiled = List.map compile_func cfg.Cfg.funcs in
  let prog =
    {
      Isa.globals = cfg.Cfg.globals;
      funcs = List.map fst compiled;
      pool = Hashtbl.fold (fun v a acc -> (a, v) :: acc) pool_tbl [];
      pool_base;
    }
  in
  (prog, List.map (fun ((rf : Isa.func), w) -> (rf.Isa.fname, w)) compiled, layout)

let compile ?optimize ?unroll ?inline p =
  let prog, _, _ = compile_witnessed ?optimize ?unroll ?inline p in
  prog
