(** TIR-to-RISC code generation (the gcc-for-PowerPC stand-in).

    Graph-coloring register allocation over both register files with
    per-instruction liveness; values that do not get a color are spilled to
    stack slots addressed off r1 (so recursion is safe), using the reserved
    scratch registers around each use.  Calls marshal arguments into the ABI
    registers with a parallel-move resolver.  The generated code, run under
    {!Exec}, provides the PowerPC instruction and storage-access baselines
    of Figs 4–5 and the branch/memory traces for the predictor study and the
    superscalar reference models. *)

val compile :
  ?optimize:bool -> ?unroll:int -> ?inline:bool -> Trips_tir.Ast.program -> Isa.program
(** Defaults: [optimize = true], [unroll = 1], [inline = true] — roughly
    "gcc -O2" shape.  Pass [unroll = 4] for the icc-like preset used on the
    reference platforms. *)

(** {1 Translation-validation witness} *)

type rclass = Ci_ | Cf_  (** integer / float register class of a vreg *)

type assignment = Reg of int | Spill of int  (** physical reg or stack slot *)

type fwitness = {
  wf_cfg : Trips_tir.Cfg.func;  (** the post-opt CFG the code was emitted from *)
  wf_cls : rclass array;  (** per-vreg register class *)
  wf_assign : assignment array;  (** per-vreg location *)
  wf_frame : int;  (** frame size in bytes *)
  wf_has_frame : bool;
  wf_nslots : int;  (** spill slots *)
}

val compile_witnessed :
  ?optimize:bool ->
  ?unroll:int ->
  ?inline:bool ->
  Trips_tir.Ast.program ->
  Isa.program * (string * fwitness) list * (string * int) list
(** [compile] plus a per-function witness and the data layout, so a
    translation validator can replay each CFG block against its emitted
    code range. *)
