module Table = Trips_util.Table

type origin = Computed | Cache_hit | Coalesced

let origin_name = function
  | Computed -> "computed"
  | Cache_hit -> "cache"
  | Coalesced -> "coalesced"

type outcome = Done of Table.t * origin | Error of string

type entry = {
  e_id : string;
  e_key : string option;
  e_run : unit -> Table.t;
  mutable e_waiters : int; (* attached tickets; 0 = every requester cancelled *)
  mutable e_state : state;
}

and state = Queued | Running | Settled of (Table.t, string) result

type t = {
  lock : Mutex.t;
  settled : Condition.t; (* broadcast whenever any entry settles *)
  q : entry Workq.t;
  inflight : (string, entry) Hashtbl.t;
  cache : Result_cache.t option;
  mutable domains : unit Domain.t array;
  mutable closed : bool;
  (* counters; all under [lock] *)
  mutable submitted : int;
  mutable executed : int;
  mutable failed : int;
  mutable shed : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable cancelled : int;
  mutable dropped : int;
  mutable running : int;
  mutable busy_s : float;
}

type ticket = {
  t_pool : t;
  t_entry : entry;
  t_origin : origin;
  mutable t_active : bool;
}

type admission = Admitted of ticket | Shed | Closed

type stats = {
  workers : int;
  queued : int;
  running : int;
  submitted : int;
  executed : int;
  failed : int;
  shed : int;
  cache_hits : int;
  coalesced : int;
  cancelled : int;
  dropped : int;
  busy_s : float;
}

let now = Unix.gettimeofday

let describe_exn = function
  | Failure m -> m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | e -> Printexc.to_string e

(* Remove [e]'s in-flight binding, but only if it still owns it: a
   cancelled entry's key may have been re-bound to a fresh entry by a
   later submit. *)
let unbind t e =
  match e.e_key with
  | None -> ()
  | Some k -> (
    match Hashtbl.find_opt t.inflight k with
    | Some cur when cur == e -> Hashtbl.remove t.inflight k
    | _ -> ())

let worker (t : t) () =
  let rec loop () =
    match Workq.pop t.q with
    | None -> ()
    | Some e ->
      Mutex.lock t.lock;
      if e.e_waiters <= 0 then begin
        (* every requester cancelled while the job sat in the queue *)
        e.e_state <- Settled (Error "dropped: all requesters cancelled");
        unbind t e;
        t.dropped <- t.dropped + 1;
        Mutex.unlock t.lock
      end
      else begin
        e.e_state <- Running;
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        let t0 = now () in
        let res =
          match e.e_run () with
          | table -> Ok table
          | exception ex -> Error (describe_exn ex)
        in
        let dt = now () -. t0 in
        (* publish to the disk cache before settling: a submitter that
           misses the in-flight table after this point finds the entry on
           disk instead of recomputing *)
        (match (res, t.cache, e.e_key) with
        | Ok table, Some c, Some key -> Result_cache.store c ~key table
        | _ -> ());
        Mutex.lock t.lock;
        t.running <- t.running - 1;
        t.busy_s <- t.busy_s +. dt;
        (match res with
        | Ok _ -> t.executed <- t.executed + 1
        | Error _ -> t.failed <- t.failed + 1);
        e.e_state <- Settled res;
        unbind t e;
        Condition.broadcast t.settled;
        Mutex.unlock t.lock
      end;
      loop ()
  in
  loop ()

let create ?(workers = 4) ?(queue_capacity = 64) ?cache () =
  let workers = max 1 workers in
  let t =
    {
      lock = Mutex.create ();
      settled = Condition.create ();
      q = Workq.create ~capacity:queue_capacity;
      inflight = Hashtbl.create 64;
      cache;
      domains = [||];
      closed = false;
      submitted = 0;
      executed = 0;
      failed = 0;
      shed = 0;
      cache_hits = 0;
      coalesced = 0;
      cancelled = 0;
      dropped = 0;
      running = 0;
      busy_s = 0.;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (worker t));
  t

let ticket_of t e origin =
  { t_pool = t; t_entry = e; t_origin = origin; t_active = true }

let submit t ?cache_key ~id run =
  Mutex.lock t.lock;
  let admission =
    if t.closed then Closed
    else begin
      let coalesce_target =
        Option.bind cache_key (Hashtbl.find_opt t.inflight)
      in
      match coalesce_target with
      | Some e ->
        e.e_waiters <- e.e_waiters + 1;
        t.submitted <- t.submitted + 1;
        t.coalesced <- t.coalesced + 1;
        Admitted (ticket_of t e Coalesced)
      | None -> (
        let hit =
          match (t.cache, cache_key) with
          | Some c, Some key -> Result_cache.find c ~key
          | _ -> None
        in
        match hit with
        | Some table ->
          t.submitted <- t.submitted + 1;
          t.cache_hits <- t.cache_hits + 1;
          let e =
            {
              e_id = id;
              e_key = cache_key;
              e_run = run;
              e_waiters = 1;
              e_state = Settled (Ok table);
            }
          in
          Admitted (ticket_of t e Cache_hit)
        | None ->
          let e =
            {
              e_id = id;
              e_key = cache_key;
              e_run = run;
              e_waiters = 1;
              e_state = Queued;
            }
          in
          (* [t.closed] is only ever set under [t.lock] before the queue
             closes, so this push cannot raise [Workq.Closed] *)
          if Workq.try_push t.q e then begin
            (match cache_key with
            | Some k -> Hashtbl.replace t.inflight k e
            | None -> ());
            t.submitted <- t.submitted + 1;
            Admitted (ticket_of t e Computed)
          end
          else begin
            t.shed <- t.shed + 1;
            Shed
          end)
    end
  in
  Mutex.unlock t.lock;
  admission

let await ticket =
  let t = ticket.t_pool in
  Mutex.lock t.lock;
  let rec wait () =
    match ticket.t_entry.e_state with
    | Settled r -> r
    | Queued | Running ->
      Condition.wait t.settled t.lock;
      wait ()
  in
  let r = wait () in
  Mutex.unlock t.lock;
  match r with
  | Ok table -> Done (table, ticket.t_origin)
  | Error msg -> Error msg

let poll ticket =
  let t = ticket.t_pool in
  Mutex.lock t.lock;
  let r =
    match ticket.t_entry.e_state with
    | Settled (Ok table) -> Some (Done (table, ticket.t_origin))
    | Settled (Error msg) -> Some (Error msg)
    | Queued | Running -> None
  in
  Mutex.unlock t.lock;
  r

let cancel ticket =
  let t = ticket.t_pool in
  Mutex.lock t.lock;
  let detached =
    if not ticket.t_active then false
    else
      match ticket.t_entry.e_state with
      | Settled _ -> false
      | Queued | Running ->
        ticket.t_active <- false;
        ticket.t_entry.e_waiters <- ticket.t_entry.e_waiters - 1;
        t.cancelled <- t.cancelled + 1;
        (* if this was the last waiter on a still-queued job, unbind the
           key now so an identical future request starts fresh instead of
           latching onto a job the worker will drop *)
        (match (ticket.t_entry.e_waiters <= 0, ticket.t_entry.e_state) with
        | true, Queued -> unbind t ticket.t_entry
        | _ -> ());
        true
  in
  Mutex.unlock t.lock;
  detached

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      workers = Array.length t.domains;
      queued = Workq.length t.q;
      running = t.running;
      submitted = t.submitted;
      executed = t.executed;
      failed = t.failed;
      shed = t.shed;
      cache_hits = t.cache_hits;
      coalesced = t.coalesced;
      cancelled = t.cancelled;
      dropped = t.dropped;
      busy_s = t.busy_s;
    }
  in
  Mutex.unlock t.lock;
  s

let shutdown t =
  Mutex.lock t.lock;
  let first = not t.closed in
  t.closed <- true;
  Mutex.unlock t.lock;
  if first then begin
    Workq.close t.q;
    Array.iter Domain.join t.domains
  end
