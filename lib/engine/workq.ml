exception Closed

type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  drained : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Workq.create: capacity must be positive";
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    drained = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let push t x =
  Mutex.lock t.lock;
  while (not t.closed) && Queue.length t.items >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then (
    Mutex.unlock t.lock;
    raise Closed);
  Queue.push x t.items;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

(* Admission-control primitive: a producer that must never block (a
   request thread holding a connection open) sheds instead. *)
let try_push t x =
  Mutex.lock t.lock;
  if t.closed then (
    Mutex.unlock t.lock;
    raise Closed);
  let admitted = Queue.length t.items < t.capacity in
  if admitted then begin
    Queue.push x t.items;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  admitted

(* Consumers feeding continuation work back into the queue must never block
   on the bound: every worker blocked in [push] is a worker not draining,
   so a full queue would deadlock the pool.  The bound applies to external
   producers only. *)
let push_unbounded t x =
  Mutex.lock t.lock;
  if t.closed then (
    Mutex.unlock t.lock;
    raise Closed);
  Queue.push x t.items;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  let r =
    if Queue.is_empty t.items then None
    else begin
      let x = Queue.pop t.items in
      Condition.signal t.not_full;
      if t.closed && Queue.is_empty t.items then Condition.broadcast t.drained;
      Some x
    end
  in
  Mutex.unlock t.lock;
  r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  if Queue.is_empty t.items then Condition.broadcast t.drained;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let wait_drained t =
  Mutex.lock t.lock;
  while not (t.closed && Queue.is_empty t.items) do
    Condition.wait t.drained t.lock
  done;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.items in
  Mutex.unlock t.lock;
  n
