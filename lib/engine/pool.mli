(** Persistent Domain worker pool with admission control, in-flight
    request coalescing and result-cache integration.

    Where {!Engine.run} executes one batch of jobs and tears its pool
    down, this module keeps a fixed set of worker domains alive for the
    lifetime of a service process and admits jobs one at a time:

    - {b Admission / back-pressure}: the submission queue is bounded and
      {!submit} never blocks — when the queue is full the job is {!Shed}
      and the caller reports explicit back-pressure (an HTTP 429)
      instead of hanging.
    - {b In-flight dedup}: jobs carrying a content-addressed [cache_key]
      (the same keys the {!Result_cache} uses) coalesce — a submit whose
      key is already queued or running attaches to that job instead of
      enqueueing a second copy, and every attached ticket receives the
      one result.
    - {b Cache}: with a cache attached, a submit whose key is already on
      disk settles immediately ({!Cache_hit}); computed results are
      written back before the job settles, so a request arriving just
      after completion hits disk instead of recomputing.
    - {b Graceful shutdown}: {!shutdown} stops admission, lets the
      workers drain every admitted job, and joins them — no accepted
      work is lost.

    All operations are safe to call from any thread or domain. *)

type t

type origin =
  | Computed   (* this ticket's submit enqueued the job *)
  | Cache_hit  (* served from the result cache, no job ran *)
  | Coalesced  (* attached to an identical in-flight job *)

val origin_name : origin -> string

type outcome =
  | Done of Trips_util.Table.t * origin
  | Error of string  (* the job raised; exception text *)

type ticket
(** One requester's handle on a (possibly shared) job. *)

type admission =
  | Admitted of ticket
  | Shed     (* queue full — explicit back-pressure, nothing enqueued *)
  | Closed   (* pool shut down *)

val create :
  ?workers:int -> ?queue_capacity:int -> ?cache:Result_cache.t -> unit -> t
(** Spawn the worker domains ([workers] defaults to 4, clamped ≥ 1);
    [queue_capacity] bounds the admission queue (default 64). *)

val submit :
  t -> ?cache_key:string -> id:string -> (unit -> Trips_util.Table.t) ->
  admission
(** Non-blocking admission of one job.  [cache_key] enables coalescing
    and caching; jobs without one always execute.  Never raises on a
    full queue or closed pool — the [admission] says what happened. *)

val await : ticket -> outcome
(** Block until the ticket's job settles (immediately for cache hits). *)

val poll : ticket -> outcome option
(** Non-blocking: [None] while the job is queued or running. *)

val cancel : ticket -> bool
(** Detach this requester.  [true] = detached before the result was
    delivered: a queued job whose last requester cancels is dropped
    unexecuted when a worker reaches it; a running job cannot be
    preempted and completes (feeding the cache), but this ticket no
    longer consumes it.  [false] = already settled. *)

type stats = {
  workers : int;
  queued : int;       (* jobs admitted, not yet picked up *)
  running : int;      (* jobs executing right now *)
  submitted : int;    (* every Admitted ticket, including coalesced *)
  executed : int;     (* jobs a worker ran to completion *)
  failed : int;       (* jobs that raised *)
  shed : int;         (* submissions rejected by the full queue *)
  cache_hits : int;   (* tickets settled from the result cache *)
  coalesced : int;    (* tickets attached to an in-flight job *)
  cancelled : int;    (* tickets detached by [cancel] *)
  dropped : int;      (* queued jobs skipped: every requester cancelled *)
  busy_s : float;     (* summed worker execution time *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Graceful: reject new submissions, drain every admitted job, join the
    workers.  Idempotent; concurrent [await]s settle normally. *)
