module Table = Trips_util.Table

type job = {
  id : string;
  cache_key : string option;
  warm : (unit -> unit) list;
  run : unit -> Table.t;
  timeout_s : float;
  retries : int;
}

let job ?cache_key ?(warm = []) ?(timeout_s = 900.) ?(retries = 1) ~id run =
  { id; cache_key; warm; run; timeout_s; retries }

type outcome =
  | Finished of Table.t
  | Failed of { attempts : int; error : string }

type job_report = {
  job_id : string;
  outcome : outcome;
  work_s : float;
  cache_hit : bool;
  attempts : int;
}

type report = {
  workers : int;
  wall_s : float;
  cache_hits : int;
  cache_misses : int;
  busy_s : float array;
  job_reports : job_report list;
}

let utilization r =
  if r.wall_s <= 0. then 0.
  else
    Array.fold_left ( +. ) 0. r.busy_s
    /. (r.wall_s *. float_of_int (Array.length r.busy_s))

type task = { jix : int; work : work }
and work = Warm of (unit -> unit) | Finalize

let now = Unix.gettimeofday

let describe_exn = function
  | Failure m -> m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | e -> Printexc.to_string e

(* One attempt loop for a job's [run].  Exceptions retry up to [retries];
   a blown soft deadline fails without retry (domains cannot be preempted,
   and a deterministic job that ran long once will run long again). *)
let attempt_run (j : job) =
  let rec go attempts =
    let t0 = now () in
    match j.run () with
    | table ->
      let dt = now () -. t0 in
      if dt > j.timeout_s then
        ( Failed
            {
              attempts;
              error =
                Printf.sprintf "timeout: attempt took %.1fs (budget %.1fs)" dt
                  j.timeout_s;
            },
          attempts )
      else (Finished table, attempts)
    | exception e ->
      if attempts <= j.retries then go (attempts + 1)
      else (Failed { attempts; error = describe_exn e }, attempts)
  in
  go 1

let run ?(workers = 4) ?(queue_capacity = 64) ?cache jobs =
  let workers = max 1 workers in
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let t_start = now () in
  let lock = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  (* outcome, cache_hit, attempts; job_reports are assembled after the pool
     drains so work_s includes the recording task's own duration *)
  let slots : (outcome * bool * int) option array = Array.make n None in
  let pending_warm = Array.map (fun j -> List.length j.warm) jobs in
  let work_s = Array.make n 0. in
  let busy_s = Array.make workers 0. in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  let q : task Workq.t = Workq.create ~capacity:queue_capacity in
  let record jix outcome ~cache_hit ~attempts =
    Mutex.lock lock;
    slots.(jix) <- Some (outcome, cache_hit, attempts);
    decr remaining;
    if !remaining = 0 then Condition.broadcast all_done;
    Mutex.unlock lock
  in
  let finalize jix =
    let j = jobs.(jix) in
    let outcome, attempts = attempt_run j in
    (match (outcome, cache, j.cache_key) with
    | Finished table, Some c, Some key -> Result_cache.store c ~key table
    | _ -> ());
    record jix outcome ~cache_hit:false ~attempts
  in
  let worker wix () =
    let rec loop () =
      match Workq.pop q with
      | None -> ()
      | Some { jix; work } ->
        let t0 = now () in
        (match work with
        | Warm f ->
          (* a warm failure is not fatal here: [run] recomputes the same
             thing and surfaces the error as the job's failure record *)
          (try f () with _ -> ());
          Mutex.lock lock;
          pending_warm.(jix) <- pending_warm.(jix) - 1;
          let ready = pending_warm.(jix) = 0 in
          Mutex.unlock lock;
          if ready then Workq.push_unbounded q { jix; work = Finalize }
        | Finalize -> finalize jix);
        let dt = now () -. t0 in
        busy_s.(wix) <- busy_s.(wix) +. dt;
        Mutex.lock lock;
        work_s.(jix) <- work_s.(jix) +. dt;
        Mutex.unlock lock;
        loop ()
    in
    loop ()
  in
  let domains = Array.init workers (fun wix -> Domain.spawn (worker wix)) in
  Array.iteri
    (fun jix (j : job) ->
      let hit =
        match (cache, j.cache_key) with
        | Some c, Some key -> Result_cache.find c ~key
        | _ -> None
      in
      match hit with
      | Some table ->
        incr cache_hits;
        record jix (Finished table) ~cache_hit:true ~attempts:0
      | None ->
        if Option.is_some cache && Option.is_some j.cache_key then
          incr cache_misses;
        if j.warm = [] then Workq.push q { jix; work = Finalize }
        else List.iter (fun f -> Workq.push q { jix; work = Warm f }) j.warm)
    jobs;
  Mutex.lock lock;
  while !remaining > 0 do
    Condition.wait all_done lock
  done;
  Mutex.unlock lock;
  Workq.close q;
  Array.iter Domain.join domains;
  {
    workers;
    wall_s = now () -. t_start;
    cache_hits = !cache_hits;
    cache_misses = !cache_misses;
    busy_s;
    job_reports =
      List.init n (fun jix ->
          match slots.(jix) with
          | Some (outcome, cache_hit, attempts) ->
            {
              job_id = jobs.(jix).id;
              outcome;
              work_s = work_s.(jix);
              cache_hit;
              attempts;
            }
          | None -> assert false (* remaining = 0 ⇒ every slot filled *));
  }
