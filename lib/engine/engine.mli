(** Domain-based parallel experiment runner.

    A {!job} is an experiment: an optional content key into the
    {!Result_cache}, a list of independent [warm] sub-jobs (per-benchmark
    simulations that populate the harness memo tables), and a final [run]
    that assembles the result table.  {!run} schedules every sub-job of
    every job over a fixed pool of worker domains fed by a bounded
    {!Workq}; a job's [run] is enqueued once its last warm task finishes.

    Jobs are crash-isolated: an exception in one job produces a structured
    {!Failed} record while its siblings complete.  Timeouts are soft — a
    running domain cannot be preempted, so a job whose attempt exceeds its
    budget is failed when the attempt returns, without retry.  Exceptions
    retry up to [retries] additional attempts.

    Determinism: parallelism only changes *when* sub-jobs execute, never
    what a job's [run] computes — results are reported in submission
    order, so a parallel run renders byte-identically to a sequential
    one. *)

type job = private {
  id : string;
  cache_key : string option;   (* [None] = never cached *)
  warm : (unit -> unit) list;  (* independent sub-jobs, run concurrently *)
  run : unit -> Trips_util.Table.t;
  timeout_s : float;           (* soft per-attempt budget *)
  retries : int;               (* extra attempts after an exception *)
}

val job :
  ?cache_key:string ->
  ?warm:(unit -> unit) list ->
  ?timeout_s:float ->
  ?retries:int ->
  id:string ->
  (unit -> Trips_util.Table.t) ->
  job
(** Defaults: no cache key, no warm sub-jobs, 900 s budget, 1 retry. *)

type outcome =
  | Finished of Trips_util.Table.t
  | Failed of { attempts : int; error : string }

type job_report = {
  job_id : string;
  outcome : outcome;
  work_s : float;     (* summed durations of this job's tasks *)
  cache_hit : bool;
  attempts : int;     (* 0 for a cache hit *)
}

type report = {
  workers : int;
  wall_s : float;
  cache_hits : int;
  cache_misses : int; (* counted only when a cache is attached *)
  busy_s : float array;           (* per worker *)
  job_reports : job_report list;  (* in submission order *)
}

val run :
  ?workers:int -> ?queue_capacity:int -> ?cache:Result_cache.t ->
  job list -> report
(** Execute every job; never raises on job failure.  [workers] defaults
    to 4 (clamped to ≥ 1); [queue_capacity] bounds the submission queue. *)

val utilization : report -> float
(** Mean fraction of the run's wall-clock the workers spent busy. *)
