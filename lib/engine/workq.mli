(** Bounded multi-producer multi-consumer work queue.

    The engine's submission thread pushes through the bound (blocking while
    the queue is full); worker domains pop, and hand continuation tasks
    back through {!push_unbounded} so a full queue can never deadlock the
    pool.  [pop] returns [None] only after {!close} with the queue
    drained. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] items.
    @raise Closed if the queue was closed. *)

val push_unbounded : 'a t -> 'a -> unit
(** Enqueue ignoring the bound — for consumers feeding work back.
    @raise Closed if the queue was closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item or {!close}; [None] means closed and drained. *)

val close : 'a t -> unit
(** Wake every blocked producer and consumer; further pushes raise. *)

val length : 'a t -> int
