(** Bounded multi-producer multi-consumer work queue.

    The engine's submission thread pushes through the bound (blocking while
    the queue is full); worker domains pop, and hand continuation tasks
    back through {!push_unbounded} so a full queue can never deadlock the
    pool.  [pop] returns [None] only after {!close} with the queue
    drained.

    Shutdown protocol: {!close} rejects further producers but lets
    consumers keep popping until the queue is empty — items admitted
    before the close are never lost.  {!wait_drained} blocks until that
    point, so a long-running daemon can stop admitting, drain every
    accepted job, then join its workers. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] items.
    @raise Closed if the queue was closed. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking admission: [false] when the queue is full (the caller
    sheds the work instead of waiting).
    @raise Closed if the queue was closed. *)

val push_unbounded : 'a t -> 'a -> unit
(** Enqueue ignoring the bound — for consumers feeding work back.
    @raise Closed if the queue was closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item or {!close}; [None] means closed and drained. *)

val close : 'a t -> unit
(** Wake every blocked producer and consumer; further pushes raise.
    Already-queued items remain poppable. *)

val is_closed : 'a t -> bool

val wait_drained : 'a t -> unit
(** Block until the queue is closed and every queued item was popped.
    Popped is not finished: consumers may still be executing their last
    item — join them (or {!Pool.shutdown}) for full quiescence. *)

val length : 'a t -> int
