module Table = Trips_util.Table

(* Bump when the stored payload shape changes; stale entries then read as
   misses instead of deserialization errors. *)
let format = "trips-result-cache/1"

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

let digest key = Digest.to_hex (Digest.string key)

let path t ~key = Filename.concat t.dir (digest key ^ ".res")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    try
      let (fmt, stored_key, payload) : string * string * string =
        Marshal.from_string (read_file file) 0
      in
      (* the digest names the file; the full key inside guards against
         collisions and foreign files *)
      if fmt = format && stored_key = key then Some (Table.deserialize payload)
      else None
    with _ -> None

let store t ~key table =
  let file = path t ~key in
  let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
  let data = Marshal.to_string (format, key, Table.serialize table) [] in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    (* rename within one directory is atomic: concurrent writers of the
       same key race harmlessly to identical content *)
    Sys.rename tmp file
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ())
