module Table = Trips_util.Table

(* Bump when the stored payload shape changes; stale entries then read as
   misses instead of deserialization errors. *)
let format = "trips-result-cache/1"

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Crashed writers leave behind "<digest>.res.<pid>.tmp" files that no
   rename will ever consume; sweep them when the cache is (re)opened.  A
   *live* concurrent writer whose temp file is swept merely fails its
   rename, and store is best-effort, so the race is harmless. *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries
  | exception Sys_error _ -> ()

let open_ dir =
  mkdir_p dir;
  sweep_tmp dir;
  { dir }

let dir t = t.dir

let digest key = Digest.to_hex (Digest.string key)

let path t ~key = Filename.concat t.dir (digest key ^ ".res")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    try
      let (fmt, stored_key, payload) : string * string * string =
        Marshal.from_string (read_file file) 0
      in
      (* the digest names the file; the full key inside guards against
         collisions and foreign files *)
      if fmt = format && stored_key = key then Some (Table.deserialize payload)
      else None
    with _ -> None

let write_all fd data =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  go 0

let store_entry t ~key ~fmt payload =
  let file = path t ~key in
  let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
  let data = Marshal.to_string (fmt, key, payload) [] in
  try
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd data;
        (* fsync before the rename: a daemon killed mid-write must never
           publish a torn entry under the final name *)
        Unix.fsync fd);
    (* rename within one directory is atomic: concurrent writers of the
       same key race harmlessly to identical content *)
    Sys.rename tmp file
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ())

let store t ~key table = store_entry t ~key ~fmt:format (Table.serialize table)

(* Raw string payloads under the same naming, atomicity and key-guard
   conventions: the cycle simulator's compiled-plan cache stores its
   marshaled derivation tables this way.  A distinct format tag keeps raw
   entries and result tables from ever deserializing as each other. *)
let raw_format = "trips-raw-cache/1"

let find_raw t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    try
      let (fmt, stored_key, payload) : string * string * string =
        Marshal.from_string (read_file file) 0
      in
      if fmt = raw_format && stored_key = key then Some payload else None
    with _ -> None

let store_raw t ~key payload = store_entry t ~key ~fmt:raw_format payload

(* Length-prefixing makes the join injective: no choice of parts can
   collide with a different split, whatever characters they contain. *)
let key ~parts =
  String.concat "/"
    (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts)
