(** Structured artifact store for engine runs.

    [write_run ~dir] materializes every finished table under [dir] in all
    three formats ([<id>.txt] aligned ASCII, [<id>.json], [<id>.csv]) and
    writes a [manifest.json] recording, per job: status (ok / cached /
    failed), the failure message if any, attempts, summed task wall-clock,
    and the artifact files — plus run-level worker count, wall-clock,
    cache hit/miss totals and per-worker busy time. *)

type meta = { id : string; title : string; note : string }

type format = Ascii | Json_fmt | Csv

val format_of_string : string -> format option
(** Recognizes ["ascii"]/["txt"], ["json"], ["csv"]. *)

val format_name : format -> string

val render : format -> Trips_util.Table.t -> string

val write_run :
  dir:string -> metas:meta list -> report:Engine.report -> string
(** Returns the manifest path.  [metas] supplies titles for the manifest;
    jobs without a meta entry get a null title. *)
