module Table = Trips_util.Table
module Json = Trips_util.Json

type meta = { id : string; title : string; note : string }

type format = Ascii | Json_fmt | Csv

let format_of_string = function
  | "ascii" | "txt" -> Some Ascii
  | "json" -> Some Json_fmt
  | "csv" -> Some Csv
  | _ -> None

let format_name = function Ascii -> "ascii" | Json_fmt -> "json" | Csv -> "csv"

let render fmt table =
  match fmt with
  | Ascii -> Table.render table
  | Json_fmt -> Table.to_json table
  | Csv -> Table.to_csv table

let extension = function Ascii -> "txt" | Json_fmt -> "json" | Csv -> "csv"

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let table_files dir id table =
  List.map
    (fun fmt ->
      let file = id ^ "." ^ extension fmt in
      write_file (Filename.concat dir file) (render fmt table);
      file)
    [ Ascii; Json_fmt; Csv ]

let manifest_json ~metas ~(report : Engine.report) ~files_of =
  let meta_of id = List.find_opt (fun m -> m.id = id) metas in
  let job (r : Engine.job_report) =
    let status, error =
      match r.outcome with
      | Engine.Finished _ when r.cache_hit -> ("cached", Json.Null)
      | Engine.Finished _ -> ("ok", Json.Null)
      | Engine.Failed { error; _ } -> ("failed", Json.Str error)
    in
    Json.Obj
      [
        ("id", Json.Str r.job_id);
        ( "title",
          match meta_of r.job_id with
          | Some m -> Json.Str m.title
          | None -> Json.Null );
        ( "note",
          match meta_of r.job_id with
          | Some m -> Json.Str m.note
          | None -> Json.Null );
        ("status", Json.Str status);
        ("error", error);
        ("cache_hit", Json.Bool r.cache_hit);
        ("attempts", Json.Int r.attempts);
        ("work_s", Json.Float r.work_s);
        ( "artifacts",
          Json.List (List.map (fun f -> Json.Str f) (files_of r.job_id)) );
      ]
  in
  Json.Obj
    [
      ("generator", Json.Str "trips_engine");
      ("workers", Json.Int report.Engine.workers);
      ("wall_s", Json.Float report.Engine.wall_s);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int report.Engine.cache_hits);
            ("misses", Json.Int report.Engine.cache_misses);
          ] );
      ( "worker_busy_s",
        Json.List
          (Array.to_list
             (Array.map (fun s -> Json.Float s) report.Engine.busy_s)) );
      ("worker_utilization", Json.Float (Engine.utilization report));
      ("jobs", Json.List (List.map job report.Engine.job_reports));
    ]

let write_run ~dir ~metas ~(report : Engine.report) =
  Result_cache.mkdir_p dir;
  let written = Hashtbl.create 16 in
  List.iter
    (fun (r : Engine.job_report) ->
      match r.Engine.outcome with
      | Engine.Finished table ->
        Hashtbl.replace written r.Engine.job_id
          (table_files dir r.Engine.job_id table)
      | Engine.Failed _ -> ())
    report.Engine.job_reports;
  let files_of id = Option.value ~default:[] (Hashtbl.find_opt written id) in
  write_file
    (Filename.concat dir "manifest.json")
    (Json.to_string (manifest_json ~metas ~report ~files_of));
  Filename.concat dir "manifest.json"
