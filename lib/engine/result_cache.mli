(** Content-addressed on-disk cache of experiment result tables.

    A cache key is the full content identity of a result — experiment id,
    configuration fingerprint and workload set (see
    [Trips_harness.Experiments]).  Entries live under one directory as
    [<md5(key)>.res] files carrying a format tag and the verbatim key, so a
    digest collision or foreign file reads as a miss, never as a wrong
    table.  Writes go through a temp file, fsync, then rename, so
    concurrent writers (workers, or whole parallel runs sharing a cache
    dir) are safe and a crashed or killed process can never publish a
    torn entry; temp files such a crash abandons are swept on the next
    {!open_}. *)

type t

val mkdir_p : string -> unit
(** [mkdir -p]: create a directory and its missing parents. *)

val open_ : string -> t
(** Open (creating directories as needed) a cache rooted at the path,
    sweeping stale [*.tmp] files left by crashed writers. *)

val dir : t -> string

val find : t -> key:string -> Trips_util.Table.t option
(** [None] on absence, format/version skew, or any read error. *)

val store : t -> key:string -> Trips_util.Table.t -> unit
(** Best-effort: an unwritable cache never fails the run. *)

val find_raw : t -> key:string -> string option
(** Raw-payload variant of {!find} (distinct format tag): arbitrary
    string payloads, same key guard and failure-as-miss semantics.  Used
    by the cycle simulator's compiled-plan cache. *)

val store_raw : t -> key:string -> string -> unit
(** Raw-payload variant of {!store}: same temp-file/fsync/rename
    discipline, best-effort. *)

val digest : string -> string
(** Hex digest used to address a key's entry (exposed for tooling). *)

val path : t -> key:string -> string
(** On-disk location an entry for [key] would occupy. *)

val key : parts:string list -> string
(** Canonical content-addressed key from identity parts (experiment or
    verb id, configuration fingerprint, workload name, ...).  The
    encoding is injective — distinct part lists can never collide — so
    every producer of cache keys (batch engine, service front door) can
    share it. *)
