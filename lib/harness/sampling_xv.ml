(* Accuracy cross-validation of the sampled simulator against the full
   detailed simulator.

   [Sampled.run] keeps execution exact and samples the detailed timing
   model (SMARTS-style systematic sampling), reporting an estimated
   whole-run cycle count with a Student-t 95% confidence interval.  The
   methodology's own claim is the thing under test here: on roughly 95%
   of runs the true cycle count should fall inside the reported
   interval.  Short workloads fall back to full detailed simulation
   (exact, CI 0) and count as trivially within.

   Systematic sampling has a known failure mode this suite keeps honest:
   a workload whose cycles-per-block profile is periodic at (a divisor
   of) the sampling period yields near-zero across-interval variance
   around a biased mean — a tight interval in the wrong place.  The gate
   therefore asks for within-CI coverage on most, not all, workloads. *)

module Registry = Trips_workloads.Registry
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast
module Core = Trips_sim.Core
module Sampled = Trips_sim.Sampled
module Table = Trips_util.Table

type row = {
  sx_bench : string;
  sx_actual : int;          (* full detailed simulation cycles *)
  sx_estimate : float;      (* sampled estimate *)
  sx_ci95 : float;          (* +/- at 95% confidence *)
  sx_intervals : int;       (* measurement intervals used *)
  sx_full : bool;           (* fell back to exact full simulation *)
  sx_error_pct : float;     (* signed, 100*(est-actual)/actual *)
  sx_within : bool;         (* |est - actual| <= ci95 *)
}

let estimate ?(config = Core.prototype) (q : Platforms.quality)
    (b : Registry.bench) : Sampled.estimate =
  Platforms.memo
    (Printf.sprintf "samplingxv/%s/%s" (Platforms.quality_tag q)
       b.Registry.name)
    (fun () ->
      let prog = Platforms.edge_program q b in
      let image = Image.build b.Registry.program.Ast.globals in
      let _, est = Sampled.run ~config prog image ~entry:"main" ~args:[] in
      est)

let compare_bench ?(config = Core.prototype) q (b : Registry.bench) : row =
  let est = estimate ~config q b in
  let actual = (Platforms.trips q b).Core.timing.Core.cycles in
  let err = est.Sampled.es_cycles -. float_of_int actual in
  {
    sx_bench = b.Registry.name;
    sx_actual = actual;
    sx_estimate = est.Sampled.es_cycles;
    sx_ci95 = est.Sampled.es_ci95;
    sx_intervals = est.Sampled.es_intervals;
    sx_full = est.Sampled.es_full;
    sx_error_pct =
      (if actual = 0 then 0. else 100. *. err /. float_of_int actual);
    sx_within = Float.abs err <= est.Sampled.es_ci95;
  }

let benches () = Registry.all

let rows ?(config = Core.prototype) ?(quality = Platforms.C) bs =
  List.map (compare_bench ~config quality) bs

let within_of rows = List.length (List.filter (fun r -> r.sx_within) rows)

let mean_abs_error_of rows =
  match rows with
  | [] -> 0.
  | _ ->
    List.fold_left (fun a r -> a +. Float.abs r.sx_error_pct) 0. rows
    /. float_of_int (List.length rows)

let table_of rs : Table.t =
  let t =
    Table.create
      ~title:"Sampled simulation vs full detailed simulation (compiled code)"
      [
        ("benchmark", Table.Left);
        ("actual", Table.Right);
        ("estimate", Table.Right);
        ("ci95", Table.Right);
        ("error", Table.Right);
        ("intervals", Table.Right);
        ("within", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.sx_bench;
          string_of_int r.sx_actual;
          Printf.sprintf "%.0f" r.sx_estimate;
          Printf.sprintf "%.0f" r.sx_ci95;
          Table.fpct r.sx_error_pct;
          (if r.sx_full then "full" else string_of_int r.sx_intervals);
          (if r.sx_within then "yes" else "NO");
        ])
    rs;
  Table.add_sep t;
  Table.add_row t
    [
      "within ci";
      Printf.sprintf "%d/%d" (within_of rs) (List.length rs);
      "";
      "";
      "";
      "";
      "";
    ];
  Table.add_row t
    [ "mean |error|"; ""; ""; ""; Table.fpct (mean_abs_error_of rs); ""; "" ];
  t

let crossval () : Table.t = table_of (rows (benches ()))
