(** Per-request experiment entry points for the service front door.

    Where {!Experiments} declares whole batch sweeps (one job per paper
    figure), this module exposes the same underlying pipelines at
    per-request granularity: one (verb, benchmark, preset) triple per
    request, each with a content-addressed cache key built from the same
    configuration/workload fingerprint as the batch engine's — so the
    daemon, the batch CLI and any future client all address identical
    {!Trips_engine.Result_cache} entries.

    Handlers are memo-backed ({!Platforms.memo}), domain-safe, and raise
    only on genuinely broken pipelines; request validation happens in
    {!make} so a malformed request is rejected before any work runs. *)

type verb =
  | Compile     (* compile to EDGE blocks, report static composition *)
  | Lint        (* static analyzer findings over the compiled blocks *)
  | Timing      (* static critical-path cycle prediction *)
  | Simulate    (* cycle-level TRIPS prototype run *)
  | Transval_v  (* translation validation of every compiler pass *)

val verbs : verb list
val verb_name : verb -> string
val verb_of_string : string -> verb option

type request = private {
  verb : verb;
  bench : string;   (* registered benchmark name *)
  preset : string;  (* canonical: O0/C/H/BB (pipeline) or C/H (execution) *)
  mode : string;    (* canonical: "detail", or "sampled" for simulate *)
}

val presets_of_verb : verb -> string list

val modes_of_verb : verb -> string list
(** Engine variants a verb accepts: ["detail"] everywhere, plus
    ["sampled"] for [simulate] (exact execution, systematically sampled
    timing, confidence-interval cycle estimate). *)

val make :
  mode:string ->
  verb:string -> bench:string -> preset:string -> (request, string) result
(** Validate and canonicalize; the error string is client-presentable.
    An empty [preset] defaults to ["C"]; an empty [mode] to ["detail"]. *)

val id_of : request -> string
(** Stable display id, e.g. ["timing/fft/C"]. *)

val cache_key : request -> string
(** Content identity for the result cache: verb, bench, preset, response
    schema and the shared {!Experiments.content_fingerprint}. *)

val run : request -> Trips_util.Table.t
(** Execute the request, returning its result as a (cacheable) table. *)
