(* Abstract-interpretation sweep: per workload and optimizing preset,
   tabulate the fact counts the fixpoint derives (constant definitions,
   provable branch directions, must-not-alias pairs, ...) next to the
   global-optimization hits they buy (folded branches, eliminated loads
   and stores, relaxed LSID pairs), and — on the simple suite — the
   end-to-end simulated-cycle delta of turning the global passes on.

   This is the payoff ledger for the global optimizer: the check.sh gate
   requires nonzero hits with zero validator refutations. *)

module Registry = Trips_workloads.Registry
module Driver = Trips_compiler.Driver
module Absint = Trips_analysis.Absint
module Core = Trips_sim.Core
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast
module Table = Trips_util.Table

type row = {
  a_bench : string;
  a_preset : string;
  a_stats : Absint.stats;
  a_gs : Driver.gstats;
  a_cycles_on : int option;  (* simulated cycles, global passes on *)
  a_cycles_off : int option;  (* same, passes off; simple suite only *)
}

let all_presets = [ "C"; "H"; "BB" ]

let preset_of = function
  | "O0" | "o0" -> Driver.o0
  | "C" | "c" | "compiled" -> Driver.compiled
  | "H" | "h" | "hand" -> Driver.hand
  | "BB" | "bb" | "basic-blocks" -> Driver.basic_blocks
  | q -> invalid_arg ("unknown preset " ^ q ^ " (use O0, C, H or BB)")

let facts_of ptag (b : Registry.bench) : Absint.stats =
  Platforms.memo (Printf.sprintf "absint/facts/%s/%s" ptag b.Registry.name)
    (fun () ->
      let cfg = Driver.front_end (preset_of ptag) b.Registry.program in
      Absint.stats (Absint.analyze cfg))

let diags_of ptag (b : Registry.bench) =
  Platforms.memo (Printf.sprintf "absint/diags/%s/%s" ptag b.Registry.name)
    (fun () ->
      let cfg = Driver.front_end (preset_of ptag) b.Registry.program in
      Trips_analysis.Diag.dedup (Absint.diags (Absint.analyze cfg)))

let hits_of ptag (b : Registry.bench) : Driver.gstats =
  Platforms.memo (Printf.sprintf "absint/hits/%s/%s" ptag b.Registry.name)
    (fun () -> snd (Driver.compile_stats (preset_of ptag) b.Registry.program))

let cycles_of ~global_opt ptag (b : Registry.bench) : int =
  Platforms.memo
    (Printf.sprintf "absint/cycles/%s/%s/%b" ptag b.Registry.name global_opt)
    (fun () ->
      let prog = Driver.compile ~global_opt (preset_of ptag) b.Registry.program in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Core.run prog image ~entry:"main" ~args:[] in
      r.Core.timing.Core.cycles)

let row ?(cycles = false) ptag (b : Registry.bench) : row =
  {
    a_bench = b.Registry.name;
    a_preset = ptag;
    a_stats = facts_of ptag b;
    a_gs = hits_of ptag b;
    a_cycles_on = (if cycles then Some (cycles_of ~global_opt:true ptag b) else None);
    a_cycles_off = (if cycles then Some (cycles_of ~global_opt:false ptag b) else None);
  }

let total_hits (gs : Driver.gstats) =
  gs.Driver.gs_consts + gs.Driver.gs_branches + gs.Driver.gs_rles
  + gs.Driver.gs_dses + gs.Driver.gs_relaxed

(* ------------------------------------------------------------------ *)
(* The experiment table                                                *)
(* ------------------------------------------------------------------ *)

let warm () =
  List.concat_map
    (fun (b : Registry.bench) ->
      List.map (fun ptag () -> ignore (row ptag b)) all_presets)
    Registry.all
  @ List.map
      (fun (b : Registry.bench) () -> ignore (row ~cycles:true "C" b))
      Registry.simple_suite

let crossval () =
  let t =
    Table.create
      ~title:
        "Global abstract interpretation: derived facts and optimization \
         hits (consts/branches/RLE/DSE/LSID-relax), cycle delta on the \
         simple suite"
      [
        ("bench", Table.Left); ("preset", Table.Left);
        ("const defs", Table.Right); ("dead br", Table.Right);
        ("sep pairs", Table.Right); ("hits", Table.Right);
        ("cycles on", Table.Right); ("cycles off", Table.Right);
        ("delta %", Table.Right);
      ]
  in
  let tot_hits = ref 0 and tot_facts = ref 0 in
  List.iter
    (fun (b : Registry.bench) ->
      List.iter
        (fun ptag ->
          let cycles = ptag = "C" && List.memq b Registry.simple_suite in
          let r = row ~cycles ptag b in
          let s = r.a_stats and gs = r.a_gs in
          tot_hits := !tot_hits + total_hits gs;
          tot_facts :=
            !tot_facts + s.Absint.s_const_defs + s.Absint.s_dead_branches
            + s.Absint.s_sep_pairs;
          let cyc = function Some c -> string_of_int c | None -> "" in
          let delta =
            match (r.a_cycles_on, r.a_cycles_off) with
            | Some on, Some off when off > 0 ->
              Printf.sprintf "%+.2f" (100. *. float_of_int (on - off) /. float_of_int off)
            | _ -> ""
          in
          Table.add_row t
            [
              r.a_bench; r.a_preset;
              string_of_int s.Absint.s_const_defs;
              string_of_int s.Absint.s_dead_branches;
              string_of_int s.Absint.s_sep_pairs;
              Printf.sprintf "%d (%d/%d/%d/%d/%d)" (total_hits gs)
                gs.Driver.gs_consts gs.Driver.gs_branches gs.Driver.gs_rles
                gs.Driver.gs_dses gs.Driver.gs_relaxed;
              cyc r.a_cycles_on; cyc r.a_cycles_off; delta;
            ])
        all_presets)
    Registry.all;
  Table.add_sep t;
  Table.add_row t
    [
      Printf.sprintf "total: %d facts, %d hits" !tot_facts !tot_hits;
      ""; ""; ""; ""; ""; ""; "";
      (if !tot_hits > 0 then "ok" else "FAIL");
    ];
  t
