(** The ISA-evaluation experiments of §4.

    - {!fig3}: TRIPS block size and composition for compiled and
      hand-optimized code (Fig 3);
    - {!fig4}: fetched TRIPS instructions normalized to the RISC baseline
      (Fig 4);
    - {!fig5}: storage accesses — memory and register/operand traffic —
      normalized to the RISC baseline (Fig 5);
    - {!codesize}: dynamic code size vs the RISC baseline (§4.4).

    Each returns a printable table whose rows are also the data EXPERIMENTS.md
    quotes. *)

val fig3 : unit -> Trips_util.Table.t
val fig4 : unit -> Trips_util.Table.t
val fig5 : unit -> Trips_util.Table.t
val codesize : unit -> Trips_util.Table.t

val warm_codesize : Trips_workloads.Registry.bench -> unit
(** Force the memoized touched-block scan — the engine schedules these as
    parallel sub-jobs ahead of {!codesize}. *)
