module Oracle = Trips_fuzz.Oracle
module Batch = Trips_fuzz.Batch
module Table = Trips_util.Table

(* The full oracle: {!Trips_fuzz.Oracle.make} leaves [timing_predict]
   empty (lib/fuzz cannot depend on the harness), so the harness closes
   the loop here with the static analyzer's whole-program prediction. *)

let timing_predict bp img =
  (Timing_xv.predict_program bp img ~entry:"main" ~args:[]).Timing_xv.pr_cycles

let oracle ?presets ?inject ?fuel () =
  Oracle.make ?presets ?inject ?fuel ~timing_predict ()

(* ------------------------------------------------------------------ *)
(* The [fuzz] experiment: a fixed-seed differential sweep, fanned      *)
(* across the engine's worker domains as warm sub-jobs (never cached   *)
(* — every program recomputes the full stack).                         *)
(* ------------------------------------------------------------------ *)

let seed = 1
let count = 48

let slots : Batch.row option array = Array.make count None

let the_oracle = lazy (oracle ())

let warm () =
  List.init count (fun i ->
      fun () ->
       slots.(i) <-
         Some (Batch.run_one (Lazy.force the_oracle) ~seed:(seed + i)))

let crossval () : Table.t =
  let oracle = Lazy.force the_oracle in
  Array.iteri
    (fun i s ->
      if s = None then slots.(i) <- Some (Batch.run_one oracle ~seed:(seed + i)))
    slots;
  let rows = Array.to_list slots |> List.filter_map (fun x -> x) in
  let count_if pred = List.length (List.filter pred rows) in
  let t =
    {
      Batch.bt_seed = seed;
      bt_count = count;
      bt_presets =
        List.map
          (fun (p : Trips_compiler.Driver.preset) ->
            p.Trips_compiler.Driver.pname)
          oracle.Oracle.presets;
      bt_inject = None;
      bt_rows = rows;
      bt_pass = count_if (fun (r : Batch.row) -> r.Batch.b_outcome = Batch.Pass);
      bt_invalid =
        count_if (fun (r : Batch.row) ->
            match r.Batch.b_outcome with Batch.Invalid _ -> true | _ -> false);
      bt_divergent =
        count_if (fun (r : Batch.row) ->
            match r.Batch.b_outcome with
            | Batch.Divergent _ -> true
            | _ -> false);
    }
  in
  Batch.table t
