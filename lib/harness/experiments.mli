(** Registry of every reproduced table and figure.

    [all] enumerates the experiments in paper order.  Each experiment now
    also declares its *engine* interface: a content-addressed [cache_key]
    (experiment id + a Marshal digest of every modeled platform
    configuration and the full workload set, so any config or workload
    change invalidates stored results) and [warm], the per-benchmark
    sub-jobs the engine may run concurrently before [run] assembles the
    table from the memoized results.  [run] alone is always sufficient —
    warm sub-jobs only populate memo tables. *)

type experiment = {
  id : string;               (* e.g. "fig3", "table1" *)
  title : string;
  paper_claim : string;      (* the qualitative shape the paper reports *)
  run : unit -> Trips_util.Table.t;
  cache_key : string option; (* content identity for the result cache;
                                [None] = never cached (e.g. fuzzing) *)
  warm : (unit -> unit) list; (* independent per-benchmark sub-jobs *)
}

val all : experiment list

val content_fingerprint : unit -> string
(** The shared configuration/workload digest every cache key embeds:
    a Marshal digest of all modeled platform configurations and the full
    workload set.  Exposed so other front doors (the {!Service} request
    handlers, the serve daemon) address the same {!Trips_engine.Result_cache}
    entries with the same content identity. *)

val find : string -> experiment
(** @raise Not_found for unknown ids. *)

val find_opt : string -> experiment option

val to_job :
  ?timeout_s:float -> ?retries:int -> experiment -> Trips_engine.Engine.job
(** The engine job for an experiment (defaults: 900 s budget, 1 retry). *)

val meta : experiment -> Trips_engine.Artifacts.meta
(** Manifest metadata (title, paper claim) for the artifact store. *)
