(* Cross-validation of the static timing analyzer against the
   cycle-level simulator.

   The analyzer predicts whole-program cycles by composing its per-block
   max-plus summaries over the functional execution's block trace, with
   the next-block predictor replayed over the same trace (identical label
   interning, identical update sequence) so redirects land on exactly the
   block instances where the simulator mispredicts.  Everything else in
   the model is optimistic — no contention, no cache misses, no load
   flushes — so the prediction tracks the simulator from below. *)

module Registry = Trips_workloads.Registry
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Blockpred = Trips_predictor.Blockpred
module Timing = Trips_analysis.Timing
module Diag = Trips_analysis.Diag
module Stats = Trips_util.Stats
module Table = Trips_util.Table

let model_of (cfg : Core.config) : Timing.model =
  {
    Timing.dispatch_rate = cfg.Core.dispatch_rate;
    fetch_interval = cfg.Core.fetch_interval;
    redirect_penalty = cfg.Core.redirect_penalty;
    commit_overhead = cfg.Core.commit_overhead;
    window_blocks = cfg.Core.window_blocks;
    l1i_hit = cfg.Core.l1i.Trips_mem.Cache.hit_latency;
    l1d_hit = cfg.Core.l1d.Trips_mem.Cache.hit_latency;
  }

type prediction = {
  pr_cycles : int;              (* predicted whole-program cycles *)
  pr_blocks : int;              (* block instances composed *)
  pr_mispredicts : int;         (* redirects the replayed predictor took *)
  pr_counts : (string, int) Hashtbl.t;  (* block label -> instances *)
  pr_summaries : (string, Timing.summary) Hashtbl.t;
  pr_diags : Diag.t list;
}

let predict_program ?(config = Core.prototype) (prog : Block.program) image
    ~entry ~args : prediction =
  let model = model_of config in
  let options = { Timing.model } in
  let summaries, diags = Timing.summarize_program ~options prog in
  let st = Timing.create model in
  (* predictor replay: same interning (first-seen, ids from 1), same
     shadow stack and update sequence as Core.run *)
  let pred = Blockpred.create config.Core.predictor in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 128 in
  let intern label =
    match Hashtbl.find_opt ids label with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids + 1 in
      Hashtbl.replace ids label i;
      i
  in
  let func_entry = Hashtbl.create 16 in
  List.iter
    (fun (f : Block.func) ->
      Hashtbl.replace func_entry f.Block.fname f.Block.entry)
    prog.Block.funcs;
  let shadow_stack = ref [] in
  let prev_correct = ref true in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let on_instance (inst : Exec.instance) =
    let b = inst.Exec.iblock in
    let label = b.Block.label in
    Hashtbl.replace counts label
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts label));
    let label_id = intern label in
    let exit_idx =
      match
        List.find_index (fun (i, _) -> i = inst.Exec.exit_inst) (Block.exits b)
      with
      | Some k -> k
      | None -> 0
    in
    (match Hashtbl.find_opt summaries label with
    | Some s -> Timing.step st s ~exit_idx ~prev_correct:!prev_correct
    | None -> ());
    let actual_label, kind =
      match inst.Exec.exit_dest with
      | Isa.Xjump l -> (Some l, Blockpred.Kjump)
      | Isa.Xcall (fname, retl) ->
        shadow_stack := retl :: !shadow_stack;
        (Hashtbl.find_opt func_entry fname, Blockpred.Kcall)
      | Isa.Xret -> (
        match !shadow_stack with
        | [] -> (None, Blockpred.Kret)
        | retl :: rest ->
          shadow_stack := rest;
          (Some retl, Blockpred.Kret))
    in
    let actual_id = Option.map intern actual_label in
    let predicted = Blockpred.predict pred ~block:label_id in
    let correct = actual_id <> None && predicted = actual_id in
    (match actual_id with
    | Some target ->
      let fall =
        match inst.Exec.exit_dest with
        | Isa.Xcall (_, retl) -> intern retl
        | _ -> 0
      in
      Blockpred.update pred
        {
          Blockpred.o_block = label_id;
          o_exit = exit_idx;
          o_kind = kind;
          o_target = target;
          o_fallthrough = fall;
        }
    | None -> ());
    prev_correct := correct
  in
  let r = Exec.run ~on_instance prog image ~entry ~args in
  ignore r.Exec.ret;
  {
    pr_cycles = Timing.cycles st;
    pr_blocks = Timing.blocks_stepped st;
    pr_mispredicts = Timing.mispredicts st;
    pr_counts = counts;
    pr_summaries = summaries;
    pr_diags = diags;
  }

let predict ?(config = Core.prototype) (q : Platforms.quality)
    (b : Registry.bench) : prediction =
  let tag = match q with Platforms.C -> "C" | Platforms.H -> "H" in
  Platforms.memo (Printf.sprintf "timingxv/%s/%s" tag b.Registry.name)
    (fun () ->
      let prog = Platforms.edge_program q b in
      let image = Image.build b.Registry.program.Ast.globals in
      predict_program ~config prog image ~entry:"main" ~args:[])

(* ------------------------------------------------------------------ *)
(* Per-benchmark comparison                                            *)
(* ------------------------------------------------------------------ *)

type row = {
  xv_bench : string;
  xv_predicted : int;
  xv_measured : int;
  xv_error_pct : float;         (* signed, (pred - meas) / meas *)
  xv_blocks : int;
  xv_pred_mispredicts : int;
  xv_sim_mispredicts : int;
}

let compare_bench ?(config = Core.prototype) q (b : Registry.bench) : row =
  let p = predict ~config q b in
  let r = Platforms.trips q b in
  let measured = r.Core.timing.Core.cycles in
  {
    xv_bench = b.Registry.name;
    xv_predicted = p.pr_cycles;
    xv_measured = measured;
    xv_error_pct =
      (if measured = 0 then 0.
       else
         100.
         *. float_of_int (p.pr_cycles - measured)
         /. float_of_int measured);
    xv_blocks = p.pr_blocks;
    xv_pred_mispredicts = p.pr_mispredicts;
    xv_sim_mispredicts =
      r.Core.timing.Core.branch_mispredicts
      + r.Core.timing.Core.callret_mispredicts;
  }

let benches () = Registry.all

let rows ?(config = Core.prototype) ?(quality = Platforms.C) bs =
  List.map (compare_bench ~config quality) bs

let pearson_of rows =
  Stats.pearson
    (List.map (fun r -> float_of_int r.xv_predicted) rows)
    (List.map (fun r -> float_of_int r.xv_measured) rows)

let mape_of rows =
  Stats.mape
    ~predicted:(List.map (fun r -> float_of_int r.xv_predicted) rows)
    ~actual:(List.map (fun r -> float_of_int r.xv_measured) rows)

let crossval () : Table.t =
  let rs = rows (benches ()) in
  let t =
    Table.create
      ~title:
        "Static timing analyzer vs cycle-level simulator (compiled code)"
      [
        ("benchmark", Table.Left);
        ("predicted", Table.Right);
        ("measured", Table.Right);
        ("error", Table.Right);
        ("blocks", Table.Right);
        ("mispredicts", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.xv_bench;
          string_of_int r.xv_predicted;
          string_of_int r.xv_measured;
          Table.fpct r.xv_error_pct;
          string_of_int r.xv_blocks;
          Printf.sprintf "%d/%d" r.xv_pred_mispredicts r.xv_sim_mispredicts;
        ])
    rs;
  Table.add_sep t;
  Table.add_row t
    [ "pearson"; Table.fnum (pearson_of rs); ""; ""; ""; "" ];
  Table.add_row t [ "mape"; Table.fpct (mape_of rs); ""; ""; ""; "" ];
  t
