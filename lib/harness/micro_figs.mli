(** The microarchitecture-evaluation experiments of §5.

    - {!fig6}: average instructions in flight in the 1K window (Fig 6);
    - {!fig7}: next-block prediction breakdown for the four configurations
      (conventional-on-basic-blocks, TRIPS-on-basic-blocks,
      TRIPS-on-hyperblocks, improved-TRIPS-on-hyperblocks) with MPKI
      (Fig 7);
    - {!fig8}: achieved memory bandwidths on the hand-optimized vadd and
      the OPN traffic/hop profile (Fig 8). *)

val fig6 : unit -> Trips_util.Table.t
val fig7 : unit -> Trips_util.Table.t
val fig8 : unit -> Trips_util.Table.t
val fig8_opn : unit -> Trips_util.Table.t

val warm_fig7 : Trips_workloads.Registry.bench -> unit
(** Force the memoized per-benchmark Fig 7 prediction-stream run — the
    engine schedules these as parallel sub-jobs ahead of {!fig7}. *)
