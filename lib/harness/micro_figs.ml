module Registry = Trips_workloads.Registry
module Exec = Trips_edge.Exec
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa
module Core = Trips_sim.Core
module Stats = Trips_util.Stats
module Table = Trips_util.Table
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast
module Blockpred = Trips_predictor.Blockpred
module Tournament = Trips_predictor.Tournament
module Target = Trips_predictor.Target
module Opn = Trips_noc.Opn

let fnum = Table.fnum

(* ------------------------------------------------------------------ *)
(* Fig 6: instructions in flight                                       *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let t =
    Table.create ~title:"Figure 6: average instructions in the 1K window"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("total", Table.Right);
        ("useful", Table.Right); ("peak", Table.Right);
      ]
  in
  let row name tag (r : Core.result) =
    Table.add_row t
      [ name; tag; fnum (Core.avg_window r); fnum (Core.avg_window_useful r);
        string_of_int r.Core.timing.Core.peak_occupancy ]
  in
  List.iter
    (fun b ->
      row b.Registry.name "C" (Platforms.trips Platforms.C b);
      row b.Registry.name "H" (Platforms.trips Platforms.H b))
    Registry.simple_suite;
  Table.add_sep t;
  List.iter
    (fun b -> row b.Registry.name "C" (Platforms.trips Platforms.C b))
    (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  Table.add_sep t;
  let mean benches q =
    Stats.mean (List.map (fun b -> Core.avg_window (Platforms.trips q b)) benches)
  in
  Table.add_row t
    [ "Simple mean"; "C"; fnum (mean Registry.simple_suite Platforms.C); "-"; "-" ];
  Table.add_row t
    [ "Simple mean"; "H"; fnum (mean Registry.simple_suite Platforms.H); "-"; "-" ];
  Table.add_row t
    [ "SPEC INT mean"; "C"; fnum (mean (Registry.by_suite Registry.SpecInt) Platforms.C);
      "-"; "-" ];
  Table.add_row t
    [ "SPEC FP mean"; "C"; fnum (mean (Registry.by_suite Registry.SpecFp) Platforms.C);
      "-"; "-" ];
  t

(* ------------------------------------------------------------------ *)
(* Fig 7: prediction breakdown                                         *)
(* ------------------------------------------------------------------ *)

(* One pass over a program's block stream, feeding each harness's step
   function every resolved next-block outcome. *)
let run_stream (prog : Block.program) (b : Registry.bench) harnesses =
  (* [harnesses]: existentially wrapped via closures returning counters *)
  let image = Image.build b.Registry.program.Ast.globals in
  let ids = Hashtbl.create 128 in
  let intern l =
    match Hashtbl.find_opt ids l with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids + 1 in
      Hashtbl.replace ids l i;
      i
  in
  let entries = Hashtbl.create 16 in
  List.iter (fun (f : Block.func) -> Hashtbl.replace entries f.Block.fname f.Block.entry)
    prog.Block.funcs;
  let shadow = ref [] in
  let steps = List.map (fun h -> h ()) harnesses in
  let useful = ref 0 in
  let _ =
    Exec.run prog image ~entry:"main" ~args:[]
      ~on_instance:(fun inst ->
        let blk = inst.Exec.iblock in
        Array.iteri
          (fun i f ->
            if
              f && inst.Exec.useful.(i)
              && Isa.classify blk.Block.insts.(i).Isa.op <> Isa.Kmove
            then incr useful)
          inst.Exec.fired;
        let target, kind, fall =
          match inst.Exec.exit_dest with
          | Isa.Xjump l -> (Some l, Blockpred.Kjump, 0)
          | Isa.Xcall (fname, retl) ->
            shadow := retl :: !shadow;
            (Hashtbl.find_opt entries fname, Blockpred.Kcall, intern retl)
          | Isa.Xret -> (
            match !shadow with
            | [] -> (None, Blockpred.Kret, 0)
            | retl :: rest ->
              shadow := rest;
              (Some retl, Blockpred.Kret, 0))
        in
        match target with
        | None -> ()
        | Some tl ->
          let block_id = intern blk.Block.label in
          let target = intern tl in
          let exits = Block.exits blk in
          let exit_idx =
            match List.find_index (fun (i, _) -> i = inst.Exec.exit_inst) exits with
            | Some k -> k
            | None -> 0
          in
          List.iter (fun step -> step ~block_id ~exit_idx ~kind ~target ~fallthrough:fall)
            steps)
  in
  !useful

(* Config A: a conventional per-branch tournament + BTB/CTB/RAS predicting
   basic-block code.  Multi-exit blocks are direction-predicted (exit 0 =
   "taken"); targets come from the target structures. *)
let conventional () =
  let bp = Tournament.create Tournament.alpha_like in
  let tp = Target.create { Target.btb_entries = 2048; ctb_entries = 512; ras_depth = 16 } in
  let made = ref 0 and miss = ref 0 in
  let step ~block_id ~exit_idx ~kind ~target ~fallthrough =
    incr made;
    let correct =
      match kind with
      | Blockpred.Kjump ->
        let dir = Tournament.predict bp ~pc:block_id in
        let actual_dir = exit_idx = 0 in
        Tournament.update bp ~pc:block_id ~taken:actual_dir;
        let key = (block_id * 8) + exit_idx in
        let tgt = Target.predict tp ~pc:key Target.Jump in
        Target.update tp ~pc:key Target.Jump ~target;
        dir = actual_dir && tgt = Some target
      | Blockpred.Kcall ->
        let key = (block_id * 8) + exit_idx in
        let tgt = Target.predict tp ~pc:key Target.Call in
        Target.update tp ~pc:key Target.Call ~target ~fallthrough;
        tgt = Some target
      | Blockpred.Kret ->
        let tgt = Target.predict tp ~pc:block_id Target.Ret in
        Target.update tp ~pc:block_id Target.Ret ~target;
        tgt = Some target
    in
    if not correct then incr miss
  in
  (step, made, miss)

let trips_predictor config () =
  let p = Blockpred.create config in
  let made = ref 0 and miss = ref 0 in
  let step ~block_id ~exit_idx ~kind ~target ~fallthrough =
    incr made;
    let predicted = Blockpred.predict p ~block:block_id in
    if predicted <> Some target then incr miss;
    Blockpred.update p
      { Blockpred.o_block = block_id; o_exit = exit_idx; o_kind = kind;
        o_target = target; o_fallthrough = fallthrough }
  in
  (step, made, miss)

let fig7_bench (b : Registry.bench) =
  Platforms.memo ("fig7/" ^ b.Registry.name) @@ fun () ->
  let bb_prog =
    Trips_compiler.Driver.compile Trips_compiler.Driver.basic_blocks b.Registry.program
  in
  let hb_prog = Platforms.edge_program Platforms.C b in
  let stepA, madeA, missA = conventional () in
  let stepB, madeB, missB = trips_predictor Blockpred.prototype () in
  let useful_bb = run_stream bb_prog b [ (fun () -> stepA); (fun () -> stepB) ] in
  let stepH, madeH, missH = trips_predictor Blockpred.prototype () in
  let stepI, madeI, missI = trips_predictor Blockpred.improved () in
  let useful_hb = run_stream hb_prog b [ (fun () -> stepH); (fun () -> stepI) ] in
  ignore madeB;
  ignore madeI;
  ( (!madeA, !missA, useful_bb), (!madeB, !missB, useful_bb),
    (!madeH, !missH, useful_hb), (!madeI, !missI, useful_hb) )

let warm_fig7 b = ignore (fig7_bench b)

let fig7 () =
  let t =
    Table.create
      ~title:
        "Figure 7: prediction breakdown -- A: conventional/basic-blocks, B: TRIPS/basic-blocks, H: TRIPS/hyperblocks, I: improved/hyperblocks (preds normalized to A)"
      [
        ("benchmark", Table.Left);
        ("A preds%", Table.Right); ("A MPKI", Table.Right);
        ("B MPKI", Table.Right);
        ("H preds%", Table.Right); ("H MPKI", Table.Right);
        ("I MPKI", Table.Right);
      ]
  in
  let mpki miss useful = 1000. *. Stats.ratio miss (max 1 useful) in
  let accum = Hashtbl.create 4 in
  let note suite col v =
    let key = (suite, col) in
    Hashtbl.replace accum key (v :: Option.value ~default:[] (Hashtbl.find_opt accum key))
  in
  List.iter
    (fun b ->
      let (ma, xa, ub), (_, xb, _), (mh, xh, uh), (_, xi, _) = fig7_bench b in
      let suite = b.Registry.suite in
      let row =
        [ b.Registry.name;
          "100.0";
          fnum (mpki xa ub);
          fnum (mpki xb ub);
          Table.fpct (100. *. Stats.ratio mh ma);
          fnum (mpki xh uh);
          fnum (mpki xi uh) ]
      in
      note suite `A (mpki xa ub);
      note suite `B (mpki xb ub);
      note suite `H (mpki xh uh);
      note suite `I (mpki xi uh);
      note suite `Preds (100. *. Stats.ratio mh ma);
      Table.add_row t row)
    (Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  Table.add_sep t;
  let mean suite col = Stats.mean (Option.value ~default:[] (Hashtbl.find_opt accum (suite, col))) in
  List.iter
    (fun suite ->
      Table.add_row t
        [ Registry.suite_name suite ^ " mean"; "100.0"; fnum (mean suite `A);
          fnum (mean suite `B); Table.fpct (mean suite `Preds); fnum (mean suite `H);
          fnum (mean suite `I) ])
    [ Registry.SpecInt; Registry.SpecFp ];
  t

(* ------------------------------------------------------------------ *)
(* Fig 8: bandwidth and OPN profile                                    *)
(* ------------------------------------------------------------------ *)

let clock_ghz = 0.366

let fig8 () =
  let t =
    Table.create
      ~title:"Figure 8 (left): achieved bandwidth at 366 MHz, hand-optimized vadd"
      [
        ("interface", Table.Left); ("bytes", Table.Right); ("cycles", Table.Right);
        ("bytes/cycle", Table.Right); ("GB/s", Table.Right);
      ]
  in
  let b = Registry.find "vadd" in
  let r = Platforms.trips Platforms.H b in
  let cyc = r.Core.timing.Core.cycles in
  let row name bytes =
    let bpc = Stats.ratio bytes cyc in
    Table.add_row t
      [ name; string_of_int bytes; string_of_int cyc; fnum bpc; fnum (bpc *. clock_ghz) ]
  in
  row "L1D <-> processor" r.Core.timing.Core.l1d_bytes;
  row "L2 <-> L1" r.Core.timing.Core.l2_bytes;
  row "memory <-> L2" r.Core.timing.Core.dram_bytes;
  t

let fig8_opn () =
  let t =
    Table.create ~title:"Figure 8 (right): OPN traffic profile (percent of packets by hops)"
      [
        ("benchmark", Table.Left); ("class", Table.Left); ("0", Table.Right);
        ("1", Table.Right); ("2", Table.Right); ("3", Table.Right); ("4", Table.Right);
        ("5+", Table.Right); ("avg hops", Table.Right);
      ]
  in
  let show name (r : Core.result) =
    let p = r.Core.opn in
    let total = max 1 p.Opn.total_packets in
    List.iter
      (fun cls_idx ->
        let buckets = p.Opn.packets.(cls_idx) in
        let class_total = Array.fold_left ( + ) 0 buckets in
        if class_total > 0 then
          Table.add_row t
            ([ name; Opn.class_name cls_idx ]
            @ List.init 6 (fun h -> Table.fpct (100. *. Stats.ratio buckets.(h) total))
            @ [ fnum r.Core.opn_average_hops ]))
      [ 0; 1; 2; 3; 5; 6 ];
    Table.add_sep t
  in
  show "vadd-hand" (Platforms.trips Platforms.H (Registry.find "vadd"));
  show "matrix-hand" (Platforms.trips Platforms.H (Registry.find "matrix"));
  show "SPEC-gcc" (Platforms.trips Platforms.C (Registry.find "gcc"));
  (* EEMBC mean: aggregate hop counts across the suite *)
  let agg = Array.make_matrix 8 6 0 in
  let tot = ref 0 and hops = ref 0 in
  List.iter
    (fun b ->
      let r = Platforms.trips Platforms.C b in
      let p = r.Core.opn in
      Array.iteri
        (fun c row -> Array.iteri (fun h n -> agg.(c).(h) <- agg.(c).(h) + n) row)
        p.Opn.packets;
      tot := !tot + p.Opn.total_packets;
      hops := !hops + p.Opn.total_hops)
    (Registry.by_suite Registry.Eembc);
  List.iter
    (fun cls_idx ->
      let class_total = Array.fold_left ( + ) 0 agg.(cls_idx) in
      if class_total > 0 then
        Table.add_row t
          ([ "EEMBC-mean"; Opn.class_name cls_idx ]
          @ List.init 6 (fun h -> Table.fpct (100. *. Stats.ratio agg.(cls_idx).(h) (max 1 !tot)))
          @ [ fnum (Stats.ratio !hops (max 1 !tot)) ]))
    [ 0; 1; 2; 3; 5; 6 ];
  t
