(* Translation-validation sweep: run the symbolic validator over every
   registered workload at every code-quality preset (EDGE pipeline) and
   over the RISC backend, and tabulate proved/concrete/refuted counts.

   A clean sweep (zero refutations, and ideally zero concretization
   fallbacks) is the standing evidence that every compiler pass preserves
   the TIR semantics on the entire workload population — the
   complement of the golden-output differential tests, which witness
   only the executed paths. *)

module Registry = Trips_workloads.Registry
module Driver = Trips_compiler.Driver
module T = Trips_analysis.Transval
module Cg = Trips_risc.Codegen
module Risa = Trips_risc.Isa
module Table = Trips_util.Table

type preset_tag = O0 | C | H | BB

let all_presets = [ O0; C; H; BB ]
let tag_name = function O0 -> "O0" | C -> "C" | H -> "H" | BB -> "BB"

let tag_of_string = function
  | "O0" | "o0" -> Some O0
  | "C" | "c" -> Some C
  | "H" | "h" -> Some H
  | "BB" | "bb" -> Some BB
  | _ -> None

let preset_of = function
  | O0 -> Driver.o0
  | C -> Driver.compiled
  | H -> Driver.hand
  | BB -> Driver.basic_blocks

let validate_edge ?max_paths tag (b : Registry.bench) : T.report list =
  Platforms.memo
    (Printf.sprintf "transval/%s/%s" (tag_name tag) b.Registry.name)
    (fun () -> fst (Driver.validate ?max_paths (preset_of tag) b.Registry.program))

let validate_risc ?max_paths (b : Registry.bench) : T.report list =
  Platforms.memo
    (Printf.sprintf "transval/RISC/%s" b.Registry.name)
    (fun () ->
      let prog, wits, layout = Cg.compile_witnessed b.Registry.program in
      let sym s =
        match List.assoc_opt s layout with
        | Some a -> Int64.of_int a
        | None -> 0L
      in
      List.concat_map
        (fun (fname, (w : Cg.fwitness)) ->
          let rf =
            List.find
              (fun (f : Risa.func) -> f.Risa.fname = fname)
              prog.Risa.funcs
          in
          let cls v = w.Cg.wf_cls.(v) = Cg.Cf_ in
          let loc v =
            match w.Cg.wf_assign.(v) with
            | Cg.Reg r -> T.Lreg r
            | Cg.Spill s -> T.Lspill s
          in
          T.check_risc_func ?max_paths ~sym ~fname ~cls ~loc ~frame:w.Cg.wf_frame
            ~has_frame:w.Cg.wf_has_frame w.Cg.wf_cfg rf)
        wits)

(* ------------------------------------------------------------------ *)
(* Sweep table                                                         *)
(* ------------------------------------------------------------------ *)

type cell = {
  c_bench : string;
  c_config : string;  (* preset tag or "RISC" *)
  c_summary : T.summary;
  c_reports : T.report list;
}

let cell_edge tag b =
  let rs = validate_edge tag b in
  {
    c_bench = b.Registry.name;
    c_config = tag_name tag;
    c_summary = T.summarize rs;
    c_reports = rs;
  }

let cell_risc b =
  let rs = validate_risc b in
  {
    c_bench = b.Registry.name;
    c_config = "RISC";
    c_summary = T.summarize rs;
    c_reports = rs;
  }

let sweep ?(presets = all_presets) ?(risc = true) benches : cell list =
  List.concat_map
    (fun b ->
      List.map (fun tag -> cell_edge tag b) presets
      @ (if risc then [ cell_risc b ] else []))
    benches

let cell_text (s : T.summary) =
  if s.T.n_refuted > 0 then Printf.sprintf "REFUTED:%d" s.T.n_refuted
  else if s.T.n_concrete > 0 then
    Printf.sprintf "%d+%dc" s.T.n_proved s.T.n_concrete
  else string_of_int s.T.n_proved

let crossval () : Table.t =
  let benches = Registry.all in
  let cols =
    ("benchmark", Table.Left)
    :: List.map (fun tag -> (tag_name tag, Table.Right)) all_presets
    @ [ ("RISC", Table.Right) ]
  in
  let t =
    Table.create
      ~title:
        "Translation validation: blocks proved equivalent per pass chain \
         (count, +Nc = concretized, REFUTED:N = miscompiles)"
      cols
  in
  let total = ref { T.n_proved = 0; n_concrete = 0; n_refuted = 0 } in
  let add (s : T.summary) =
    total :=
      {
        T.n_proved = !total.T.n_proved + s.T.n_proved;
        n_concrete = !total.T.n_concrete + s.T.n_concrete;
        n_refuted = !total.T.n_refuted + s.T.n_refuted;
      }
  in
  List.iter
    (fun (b : Registry.bench) ->
      let cells =
        List.map
          (fun tag ->
            let s = (cell_edge tag b).c_summary in
            add s;
            cell_text s)
          all_presets
        @ [
            (let s = (cell_risc b).c_summary in
             add s;
             cell_text s);
          ]
      in
      Table.add_row t (b.Registry.name :: cells))
    benches;
  Table.add_sep t;
  let s = !total in
  Table.add_row t
    (("total (" ^ cell_text s ^ ")")
    :: List.map (fun _ -> "") all_presets
    @ [ (if s.T.n_refuted = 0 then "ok" else "FAIL") ]);
  t
