(** Differential fuzzing as a harness experiment.

    {!Trips_fuzz} cannot depend on the harness, so its oracle leaves the
    static-timing check empty; this module assembles the {e full} oracle
    by injecting {!Timing_xv.predict_program} (the estimate must stay
    inside the oracle's timing corridor), and registers a fixed-seed sweep as
    the cache-bypassed [fuzz] experiment: per-seed warm sub-jobs fan
    across the engine's worker domains, and {!crossval} assembles the
    summary table (backfilling sequentially if warm never ran). *)

val timing_predict : Trips_edge.Block.program -> Trips_tir.Image.t -> int

val oracle :
  ?presets:Trips_compiler.Driver.preset list ->
  ?inject:Trips_fuzz.Oracle.inject ->
  ?fuel:int ->
  unit ->
  Trips_fuzz.Oracle.t
(** {!Trips_fuzz.Oracle.make} with [timing_predict] wired in. *)

val seed : int
val count : int

val warm : unit -> (unit -> unit) list
val crossval : unit -> Trips_util.Table.t
