module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Registry = Trips_workloads.Registry
module Driver = Trips_compiler.Driver
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Ooo = Trips_superscalar.Ooo
module Ideal = Trips_limit.Ideal
module Risc = Trips_risc

type quality = C | H

exception Mismatch of string

let quality_tag = function C -> "C" | H -> "H"

let check name expected got =
  if expected <> got then
    raise
      (Mismatch
         (Printf.sprintf "%s: expected %s, got %s" name
            (match expected with Some v -> Ty.value_to_string v | None -> "-")
            (match got with Some v -> Ty.value_to_string v | None -> "-")))

(* The memo table is shared by every engine worker domain: guard it with a
   mutex, and track in-flight keys so concurrent requests for the same
   (benchmark, platform) pair simulate once — the losers block until the
   winner publishes instead of duplicating a multi-second run. *)
let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 256
let table_lock = Mutex.create ()
let inflight : (string, unit) Hashtbl.t = Hashtbl.create 16
let inflight_done = Condition.create ()

let cached key f =
  Mutex.lock table_lock;
  let rec obtain () =
    match Hashtbl.find_opt table key with
    | Some v ->
      Mutex.unlock table_lock;
      Obj.obj v
    | None ->
      if Hashtbl.mem inflight key then begin
        Condition.wait inflight_done table_lock;
        obtain ()
      end
      else begin
        Hashtbl.replace inflight key ();
        Mutex.unlock table_lock;
        let v = try Ok (f ()) with e -> Error e in
        Mutex.lock table_lock;
        Hashtbl.remove inflight key;
        (match v with
        | Ok v -> Hashtbl.replace table key (Obj.repr v)
        | Error _ -> ());
        Condition.broadcast inflight_done;
        Mutex.unlock table_lock;
        match v with Ok v -> v | Error e -> raise e
      end
  in
  obtain ()

let memo key f = cached key f

let clear_caches () =
  Mutex.lock table_lock;
  Hashtbl.reset table;
  Mutex.unlock table_lock

let edge_program q (b : Registry.bench) : Trips_edge.Block.program =
  cached (Printf.sprintf "prog/%s/%s" (quality_tag q) b.Registry.name) (fun () ->
      match (q, b.Registry.hand_edge) with
      | H, Some prog -> prog
      | H, None -> Driver.compile Driver.hand b.Registry.program
      | C, _ -> Driver.compile Driver.compiled b.Registry.program)

let edge_stats q (b : Registry.bench) : Exec.stats =
  cached (Printf.sprintf "exec/%s/%s" (quality_tag q) b.Registry.name) (fun () ->
      let prog = edge_program q b in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Exec.run prog image ~entry:"main" ~args:[] in
      let exp_v, _ = Registry.golden b in
      check (b.Registry.name ^ "/edge-" ^ quality_tag q) exp_v r.Exec.ret;
      r.Exec.stats)

let trips_with config ~tag q (b : Registry.bench) : Core.result =
  cached (Printf.sprintf "trips/%s/%s/%s" tag (quality_tag q) b.Registry.name)
    (fun () ->
      let prog = edge_program q b in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Core.run ~config prog image ~entry:"main" ~args:[] in
      let exp_v, _ = Registry.golden b in
      check (b.Registry.name ^ "/trips-" ^ tag ^ quality_tag q) exp_v r.Core.ret;
      r)

let trips q b = trips_with Core.prototype ~tag:"proto" q b

let risc ?(unroll = 1) (b : Registry.bench) : Risc.Exec.stats =
  cached (Printf.sprintf "risc/u%d/%s" unroll b.Registry.name) (fun () ->
      let prog = Risc.Codegen.compile ~unroll b.Registry.program in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Risc.Exec.run prog image ~entry:"main" ~args:[] in
      let exp_v, _ = Registry.golden b in
      check (b.Registry.name ^ "/risc") exp_v (Risc.Exec.ret_value r b.Registry.ret);
      r.Risc.Exec.stats)

let super (cfg : Ooo.config) ~icc (b : Registry.bench) : Ooo.result =
  cached
    (Printf.sprintf "super/%s/%s/%s" cfg.Ooo.name (if icc then "icc" else "gcc")
       b.Registry.name)
    (fun () ->
      let unroll = if icc then 4 else 1 in
      let prog = Risc.Codegen.compile ~unroll b.Registry.program in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Ooo.run cfg prog image ~entry:"main" ~args:[] in
      let got =
        match b.Registry.ret with
        | None -> None
        | Some Ty.I64 -> Some (Ty.Vi r.Ooo.ret_int)
        | Some Ty.F64 -> Some (Ty.Vf r.Ooo.ret_flt)
      in
      let exp_v, _ = Registry.golden b in
      check (b.Registry.name ^ "/" ^ cfg.Ooo.name) exp_v got;
      r)

let ideal (cfg : Ideal.config) ~tag q (b : Registry.bench) : Ideal.result =
  cached (Printf.sprintf "ideal/%s/%s/%s" tag (quality_tag q) b.Registry.name)
    (fun () ->
      let prog = edge_program q b in
      let image = Image.build b.Registry.program.Ast.globals in
      let r = Ideal.run ~config:cfg prog image ~entry:"main" ~args:[] in
      let exp_v, _ = Registry.golden b in
      check (b.Registry.name ^ "/ideal-" ^ tag) exp_v r.Ideal.ret;
      r)
