(** Cross-validation of the static timing analyzer
    ({!Trips_analysis.Timing}) against the cycle-level simulator
    ({!Trips_sim.Core}).

    The analyzer's per-block max-plus summaries are composed over the
    functional execution's block trace, with the next-block predictor
    replayed over the same trace so redirects land exactly where the
    simulator mispredicts.  The remaining model is optimistic (no
    contention, no cache misses, no load flushes), so predictions track
    measured cycles from below. *)

val model_of : Trips_sim.Core.config -> Trips_analysis.Timing.model
(** Derive the analyzer's timing parameters from a simulator
    configuration, so the two can never silently diverge. *)

type prediction = {
  pr_cycles : int;              (** predicted whole-program cycles *)
  pr_blocks : int;              (** block instances composed *)
  pr_mispredicts : int;         (** redirects the replayed predictor took *)
  pr_counts : (string, int) Hashtbl.t;  (** block label -> executed instances *)
  pr_summaries : (string, Trips_analysis.Timing.summary) Hashtbl.t;
  pr_diags : Trips_analysis.Diag.t list;
}

val predict_program :
  ?config:Trips_sim.Core.config ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  prediction
(** Predict whole-program cycles without the cycle-level simulator: one
    functional execution plus O(blocks) summary composition. *)

val predict :
  ?config:Trips_sim.Core.config ->
  Platforms.quality ->
  Trips_workloads.Registry.bench ->
  prediction
(** Memoized {!predict_program} over a registered benchmark. *)

type row = {
  xv_bench : string;
  xv_predicted : int;
  xv_measured : int;
  xv_error_pct : float;         (** signed, 100*(pred-meas)/meas *)
  xv_blocks : int;
  xv_pred_mispredicts : int;
  xv_sim_mispredicts : int;
}

val compare_bench :
  ?config:Trips_sim.Core.config ->
  Platforms.quality ->
  Trips_workloads.Registry.bench ->
  row

val benches : unit -> Trips_workloads.Registry.bench list
(** Every registered workload (the cross-validation population). *)

val rows :
  ?config:Trips_sim.Core.config ->
  ?quality:Platforms.quality ->
  Trips_workloads.Registry.bench list ->
  row list

val pearson_of : row list -> float
val mape_of : row list -> float

val crossval : unit -> Trips_util.Table.t
(** The predicted-vs-measured table over every registered workload, with
    Pearson correlation and MAPE footer rows. *)
