(** Translation-validation sweep over the registered workloads.

    Runs {!Trips_compiler.Driver.validate} (the symbolic per-pass
    validator) at each code-quality preset, and
    {!Trips_analysis.Transval.check_risc_func} over the RISC backend's
    witnessed output, tallying proved / concretized / refuted blocks.
    A clean sweep is the all-paths complement of the golden-output
    differential tests, which only witness executed paths. *)

type preset_tag = O0 | C | H | BB

val all_presets : preset_tag list
val tag_name : preset_tag -> string
val tag_of_string : string -> preset_tag option
val preset_of : preset_tag -> Trips_compiler.Driver.preset

val validate_edge :
  ?max_paths:int ->
  preset_tag ->
  Trips_workloads.Registry.bench ->
  Trips_analysis.Transval.report list
(** Memoized full-pipeline validation (opt, split, formation, regalloc,
    dataflow conversion, scheduling, linking) of one benchmark. *)

val validate_risc :
  ?max_paths:int ->
  Trips_workloads.Registry.bench ->
  Trips_analysis.Transval.report list
(** Memoized validation of the RISC backend's emitted code (per-block
    code ranges plus the prologue) against the post-opt CFG. *)

type cell = {
  c_bench : string;
  c_config : string;  (** preset tag or ["RISC"] *)
  c_summary : Trips_analysis.Transval.summary;
  c_reports : Trips_analysis.Transval.report list;
}

val cell_edge : preset_tag -> Trips_workloads.Registry.bench -> cell
val cell_risc : Trips_workloads.Registry.bench -> cell

val sweep :
  ?presets:preset_tag list ->
  ?risc:bool ->
  Trips_workloads.Registry.bench list ->
  cell list

val crossval : unit -> Trips_util.Table.t
(** The benchmark x configuration verdict table over every registered
    workload, with a total row; any refutation renders as [REFUTED:n]. *)
