(** Shared experiment plumbing: compile and run every benchmark on every
    modeled platform, memoizing results so each (benchmark, platform) pair
    simulates once per process even though several figures consume it.

    Every runner checks the architectural result against the interpreter's
    golden value and raises if a pipeline miscomputes — experiments can
    never silently report numbers from a broken simulation. *)

type quality = C | H
(** Code quality: the paper's compiled (C) and hand-optimized (H) bars.
    [H] uses the aggressive compiler preset, or genuinely hand-written EDGE
    code where the registry provides it (vadd). *)

val quality_tag : quality -> string
(** ["C"] or ["H"] (cache keys, report fields). *)

val edge_program : quality -> Trips_workloads.Registry.bench -> Trips_edge.Block.program

val edge_stats : quality -> Trips_workloads.Registry.bench -> Trips_edge.Exec.stats
(** Functional-execution statistics (Figs 3–5). *)

val trips : quality -> Trips_workloads.Registry.bench -> Trips_sim.Core.result
(** Cycle-level TRIPS prototype run (Figs 6, 8, 9, 11, 12, Table 3). *)

val trips_with :
  Trips_sim.Core.config -> tag:string -> quality -> Trips_workloads.Registry.bench ->
  Trips_sim.Core.result
(** TRIPS run under a non-default configuration (ablations). *)

val risc : ?unroll:int -> Trips_workloads.Registry.bench -> Trips_risc.Exec.stats
(** PowerPC-baseline counts (the gcc-shaped build; [unroll] for icc). *)

val super :
  Trips_superscalar.Ooo.config -> icc:bool -> Trips_workloads.Registry.bench ->
  Trips_superscalar.Ooo.result
(** Reference-platform cycle run; [icc] selects the more aggressively
    optimized build. *)

val ideal :
  Trips_limit.Ideal.config -> tag:string -> quality ->
  Trips_workloads.Registry.bench -> Trips_limit.Ideal.result

exception Mismatch of string
(** A pipeline produced a result different from the interpreter's. *)

val memo : string -> (unit -> 'a) -> 'a
(** Memoize an arbitrary computation in the shared per-process table the
    platform runners use.  Keys must be globally unique; the table is
    domain-safe and deduplicates concurrent computations of one key, so
    engine warm sub-jobs can force entries in parallel. *)

val clear_caches : unit -> unit
