module Registry = Trips_workloads.Registry
module Exec = Trips_edge.Exec
module Block = Trips_edge.Block
module Stats = Trips_util.Stats
module Table = Trips_util.Table
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast

let fnum = Table.fnum

(* Simple-suite benchmarks in the paper's Fig 3 order, then suite means. *)
let simple = Registry.simple_suite

let suite_means = [ Registry.Eembc; Registry.SpecInt; Registry.SpecFp ]

let per_block stat blocks = Stats.ratio stat (max 1 blocks)

(* ------------------------------------------------------------------ *)
(* Fig 3: block size and composition                                   *)
(* ------------------------------------------------------------------ *)

type comp = {
  c_size : float;
  c_mem : float;
  c_ctl : float;
  c_test : float;
  c_arith : float;
  c_moves : float;
  c_enu : float;      (* executed, not used *)
  c_fne : float;      (* fetched, not executed *)
}

(* Executed-class counts include speculatively-executed-but-unused
   instructions; the exec!used column reports that overlap separately, so
   arith+memory+control+tests+moves+fetch!exec = block size and exec!used
   shows how much of the executed work was squashed by predication. *)
let composition (s : Exec.stats) =
  let b = s.Exec.blocks in
  {
    c_size = per_block s.Exec.fetched b;
    c_mem = per_block s.Exec.k_memory b;
    c_ctl = per_block s.Exec.k_control b;
    c_test = per_block s.Exec.k_test b;
    c_arith = per_block s.Exec.k_arith b;
    c_moves = per_block s.Exec.k_move b;
    c_enu = per_block s.Exec.executed_not_used b;
    c_fne = per_block s.Exec.not_executed b;
  }

let fig3 () =
  let t =
    Table.create ~title:"Figure 3: TRIPS block size and composition (instructions per block)"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("block size", Table.Right);
        ("arith", Table.Right); ("memory", Table.Right); ("control", Table.Right);
        ("tests", Table.Right); ("moves", Table.Right); ("exec!used", Table.Right);
        ("fetch!exec", Table.Right);
      ]
  in
  let row name tag (s : Exec.stats) =
    let c = composition s in
    Table.add_row t
      [ name; tag; fnum c.c_size; fnum c.c_arith; fnum c.c_mem; fnum c.c_ctl;
        fnum c.c_test; fnum c.c_moves; fnum c.c_enu; fnum c.c_fne ]
  in
  List.iter
    (fun b ->
      row b.Registry.name "C" (Platforms.edge_stats Platforms.C b);
      row b.Registry.name "H" (Platforms.edge_stats Platforms.H b))
    simple;
  Table.add_sep t;
  let mean_of benches =
    (* aggregate totals across the suite, then per-block averages *)
    let agg = Exec.empty_stats () in
    List.iter
      (fun b ->
        let s = Platforms.edge_stats Platforms.C b in
        agg.Exec.blocks <- agg.Exec.blocks + s.Exec.blocks;
        agg.Exec.fetched <- agg.Exec.fetched + s.Exec.fetched;
        agg.Exec.k_arith <- agg.Exec.k_arith + s.Exec.k_arith;
        agg.Exec.k_memory <- agg.Exec.k_memory + s.Exec.k_memory;
        agg.Exec.k_control <- agg.Exec.k_control + s.Exec.k_control;
        agg.Exec.k_test <- agg.Exec.k_test + s.Exec.k_test;
        agg.Exec.k_move <- agg.Exec.k_move + s.Exec.k_move;
        agg.Exec.executed_not_used <- agg.Exec.executed_not_used + s.Exec.executed_not_used;
        agg.Exec.not_executed <- agg.Exec.not_executed + s.Exec.not_executed)
      benches;
    agg
  in
  row "Simple mean" "C" (mean_of simple);
  List.iter
    (fun suite ->
      row (Registry.suite_name suite ^ " mean") "C" (mean_of (Registry.by_suite suite)))
    suite_means;
  t

(* ------------------------------------------------------------------ *)
(* Fig 4: fetched instructions normalized to the RISC baseline         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  let t =
    Table.create
      ~title:"Figure 4: TRIPS instructions normalized to PowerPC (1.0 = PowerPC executed)"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("useful", Table.Right);
        ("moves", Table.Right); ("exec!used", Table.Right); ("fetch!exec", Table.Right);
        ("total", Table.Right);
      ]
  in
  let ratios b q =
    let s = Platforms.edge_stats q b in
    let p = (Platforms.risc b).Trips_risc.Exec.executed in
    let r x = Stats.ratio x p in
    ( r s.Exec.useful, r s.Exec.k_move, r s.Exec.executed_not_used,
      r s.Exec.not_executed, r s.Exec.fetched )
  in
  let row name tag (u, m, e, f, tot) =
    Table.add_row t [ name; tag; fnum u; fnum m; fnum e; fnum f; fnum tot ]
  in
  List.iter
    (fun b ->
      row b.Registry.name "C" (ratios b Platforms.C);
      row b.Registry.name "H" (ratios b Platforms.H))
    simple;
  Table.add_sep t;
  let geo benches =
    let pick f = Stats.geomean (List.map f benches) in
    ( pick (fun b -> let u, _, _, _, _ = ratios b Platforms.C in max 1e-9 u),
      pick (fun b -> let _, m, _, _, _ = ratios b Platforms.C in max 1e-9 m),
      pick (fun b -> let _, _, e, _, _ = ratios b Platforms.C in max 1e-9 e),
      pick (fun b -> let _, _, _, f, _ = ratios b Platforms.C in max 1e-9 f),
      pick (fun b -> let _, _, _, _, t = ratios b Platforms.C in max 1e-9 t) )
  in
  row "Simple geomean" "C" (geo simple);
  List.iter
    (fun suite ->
      row (Registry.suite_name suite ^ " geomean") "C" (geo (Registry.by_suite suite)))
    suite_means;
  t

(* ------------------------------------------------------------------ *)
(* Fig 5: storage accesses normalized to the RISC baseline             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  let t =
    Table.create
      ~title:
        "Figure 5: storage accesses normalized to PowerPC (memory: vs PPC loads+stores; registers: vs PPC register accesses)"
      [
        ("benchmark", Table.Left); ("code", Table.Left); ("mem ratio", Table.Right);
        ("reads", Table.Right); ("writes", Table.Right); ("operands", Table.Right);
        ("reg total", Table.Right);
      ]
  in
  let ratios b q =
    let s = Platforms.edge_stats q b in
    let p = Platforms.risc b in
    let pmem = p.Trips_risc.Exec.loads + p.Trips_risc.Exec.stores in
    let preg = p.Trips_risc.Exec.reg_reads + p.Trips_risc.Exec.reg_writes in
    let mem = Stats.ratio (s.Exec.loads_executed + s.Exec.stores_committed) pmem in
    let reads = Stats.ratio s.Exec.reads_fetched preg in
    let writes = Stats.ratio s.Exec.writes_committed preg in
    let ops = Stats.ratio (s.Exec.opn_et_et + s.Exec.opn_dt_et) preg in
    (mem, reads, writes, ops)
  in
  let row name tag (mem, r, w, o) =
    Table.add_row t [ name; tag; fnum mem; fnum r; fnum w; fnum o; fnum (r +. w +. o) ]
  in
  List.iter
    (fun b ->
      row b.Registry.name "C" (ratios b Platforms.C);
      row b.Registry.name "H" (ratios b Platforms.H))
    simple;
  Table.add_sep t;
  let geo benches =
    let all = List.map (fun b -> ratios b Platforms.C) benches in
    let pick f = Stats.geomean (List.map (fun x -> max 1e-9 (f x)) all) in
    ( pick (fun (m, _, _, _) -> m), pick (fun (_, r, _, _) -> r),
      pick (fun (_, _, w, _) -> w), pick (fun (_, _, _, o) -> o) )
  in
  row "Simple geomean" "C" (geo simple);
  List.iter
    (fun suite ->
      row (Registry.suite_name suite ^ " geomean") "C" (geo (Registry.by_suite suite)))
    suite_means;
  t

(* ------------------------------------------------------------------ *)
(* §4.4: dynamic code size                                             *)
(* ------------------------------------------------------------------ *)

(* Unique blocks fetched during execution. *)
let touched_blocks q (b : Registry.bench) =
  Platforms.memo
    (Printf.sprintf "codesize/%s/%s"
       (match q with Platforms.C -> "C" | Platforms.H -> "H")
       b.Registry.name)
  @@ fun () ->
  let prog = Platforms.edge_program q b in
  let image = Image.build b.Registry.program.Ast.globals in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let _ =
    Exec.run prog image ~entry:"main" ~args:[]
      ~on_instance:(fun inst ->
        let blk = inst.Exec.iblock in
        if not (Hashtbl.mem seen blk.Block.label) then
          Hashtbl.replace seen blk.Block.label (Array.length blk.Block.insts))
  in
  Hashtbl.fold (fun _ n acc -> n :: acc) seen []

let warm_codesize b = ignore (touched_blocks Platforms.C b)

let codesize () =
  let t =
    Table.create
      ~title:"Section 4.4: dynamic code size relative to PowerPC (x = expansion factor)"
      [
        ("benchmark", Table.Left); ("TRIPS raw", Table.Right);
        ("TRIPS compressed", Table.Right); ("PPC bytes", Table.Right);
        ("x raw", Table.Right); ("x compressed", Table.Right);
      ]
  in
  let raws = ref [] and comps = ref [] in
  List.iter
    (fun b ->
      let sizes = touched_blocks Platforms.C b in
      (* raw: full 128-instruction frame + 128-byte header per block;
         compressed: 128-byte chunks of 32 instructions (§4.4) *)
      let raw = List.fold_left (fun acc _ -> acc + 128 + 512) 0 sizes in
      let comp =
        List.fold_left (fun acc n -> acc + 128 + (128 * ((max 1 n + 31) / 32))) 0 sizes
      in
      let ppc = (Platforms.risc b).Trips_risc.Exec.unique_pcs * 4 in
      let xr = Stats.ratio raw ppc and xc = Stats.ratio comp ppc in
      raws := xr :: !raws;
      comps := xc :: !comps;
      Table.add_row t
        [ b.Registry.name; string_of_int raw; string_of_int comp; string_of_int ppc;
          fnum xr; fnum xc ])
    (simple @ Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp);
  Table.add_sep t;
  Table.add_row t
    [ "geomean"; "-"; "-"; "-"; fnum (Stats.geomean !raws); fnum (Stats.geomean !comps) ];
  t
