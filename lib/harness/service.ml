module Registry = Trips_workloads.Registry
module Driver = Trips_compiler.Driver
module Analyzer = Trips_analysis.Analyzer
module Diag = Trips_analysis.Diag
module Transval = Trips_analysis.Transval
module Block = Trips_edge.Block
module Core = Trips_sim.Core
module Table = Trips_util.Table

(* Bump when any verb's table layout or derivation changes, so stale
   cached responses cannot survive a refactor. *)
let schema = 1

type verb = Compile | Lint | Timing | Simulate | Transval_v

let verbs = [ Compile; Lint; Timing; Simulate; Transval_v ]

let verb_name = function
  | Compile -> "compile"
  | Lint -> "lint"
  | Timing -> "timing"
  | Simulate -> "simulate"
  | Transval_v -> "transval"

let verb_of_string s =
  match String.lowercase_ascii s with
  | "compile" -> Some Compile
  | "lint" -> Some Lint
  | "timing" -> Some Timing
  | "simulate" -> Some Simulate
  | "transval" -> Some Transval_v
  | _ -> None

type request = { verb : verb; bench : string; preset : string; mode : string }

(* Pipeline verbs traverse one compiler preset; execution verbs run the
   modeled platform at one code-quality level. *)
let presets_of_verb = function
  | Compile | Lint | Transval_v -> [ "O0"; "C"; "H"; "BB" ]
  | Timing | Simulate -> [ "C"; "H" ]

(* Only simulation has a second engine: the sampled estimator (exact
   execution, systematically sampled timing, confidence-interval cycle
   estimate). *)
let modes_of_verb = function
  | Simulate -> [ "detail"; "sampled" ]
  | Compile | Lint | Timing | Transval_v -> [ "detail" ]

let canonical_preset verb p =
  let p =
    match String.uppercase_ascii p with
    | "BASIC-BLOCKS" -> "BB"
    | "" -> "C"
    | u -> u
  in
  if List.mem p (presets_of_verb verb) then Some p else None

let canonical_mode verb m =
  let m =
    match String.lowercase_ascii m with "" | "detailed" -> "detail" | l -> l
  in
  if List.mem m (modes_of_verb verb) then Some m else None

let make ~mode ~verb ~bench ~preset =
  match verb_of_string verb with
  | None ->
    Result.Error
      (Printf.sprintf "unknown verb %S (one of: %s)" verb
         (String.concat ", " (List.map verb_name verbs)))
  | Some v -> (
    match canonical_preset v preset with
    | None ->
      Result.Error
        (Printf.sprintf "unknown preset %S for verb %s (one of: %s)" preset
           (verb_name v)
           (String.concat ", " (presets_of_verb v)))
    | Some p -> (
      match canonical_mode v mode with
      | None ->
        Result.Error
          (Printf.sprintf "unknown mode %S for verb %s (one of: %s)" mode
             (verb_name v)
             (String.concat ", " (modes_of_verb v)))
      | Some m -> (
        match Registry.find bench with
        | b ->
          Result.Ok { verb = v; bench = b.Registry.name; preset = p; mode = m }
        | exception Not_found ->
          Result.Error
            (Printf.sprintf "unknown benchmark %S (see `trips_run list`)"
               bench))))

let id_of r =
  Printf.sprintf "%s/%s/%s%s" (verb_name r.verb) r.bench r.preset
    (if r.mode = "detail" then "" else "/" ^ r.mode)

(* The same content identity the batch engine uses: any config or
   workload change invalidates every stored response. *)
let cache_key r =
  Trips_engine.Result_cache.key
    ~parts:
      [
        "serve";
        string_of_int schema;
        verb_name r.verb;
        r.bench;
        r.preset;
        r.mode;
        Experiments.content_fingerprint ();
      ]

let quality_of = function "H" -> Platforms.H | _ -> Platforms.C

let driver_preset_of = function
  | "O0" -> Driver.o0
  | "H" -> Driver.hand
  | "BB" -> Driver.basic_blocks
  | _ -> Driver.compiled

let transval_tag_of p =
  match Transval_xv.tag_of_string p with Some t -> t | None -> Transval_xv.C

let kv_table rows =
  let t = Table.create [ ("metric", Table.Left); ("value", Table.Right) ] in
  List.iter (fun (k, v) -> Table.add_row t [ k; v ]) rows;
  t

(* H serves what the experiments execute: the hand-written EDGE program
   when the benchmark ships one (mirrors the lint CLI). *)
let edge_program_of preset (b : Registry.bench) =
  match (preset, b.Registry.hand_edge) with
  | "H", Some prog -> prog
  | p, _ -> Driver.compile (driver_preset_of p) b.Registry.program

let run_compile r (b : Registry.bench) =
  let prog = edge_program_of r.preset b in
  let blocks = List.concat_map (fun f -> f.Block.blocks) prog.Block.funcs in
  let insts =
    List.fold_left (fun a (bl : Block.t) -> a + Array.length bl.Block.insts) 0 blocks
  in
  let reads =
    List.fold_left (fun a (bl : Block.t) -> a + Array.length bl.Block.reads) 0 blocks
  in
  let writes =
    List.fold_left (fun a (bl : Block.t) -> a + Array.length bl.Block.writes) 0 blocks
  in
  let nblocks = List.length blocks in
  kv_table
    [
      ("functions", string_of_int (List.length prog.Block.funcs));
      ("blocks", string_of_int nblocks);
      ("instructions", string_of_int insts);
      ("reads", string_of_int reads);
      ("writes", string_of_int writes);
      ( "avg_block_size",
        Table.fnum
          (if nblocks = 0 then 0. else float_of_int insts /. float_of_int nblocks)
      );
    ]

let run_lint r (b : Registry.bench) =
  let ds =
    match edge_program_of r.preset b with
    | prog -> Analyzer.analyze_program prog
    | exception e ->
      [
        Diag.make ~pass:"driver" ~fname:b.Registry.name "compile-fail"
          (Printf.sprintf "compilation failed: %s" (Printexc.to_string e));
      ]
  in
  kv_table
    ([
       ("errors", string_of_int (Diag.errors ds));
       ("warnings", string_of_int (Diag.warnings ds));
       ("summary", Analyzer.summary ds);
     ]
    @ List.map
        (fun d -> ("finding:" ^ d.Diag.cls, string_of_int d.Diag.count))
        (Diag.dedup (Diag.sort ds)))

let run_timing r (b : Registry.bench) =
  let p = Timing_xv.predict (quality_of r.preset) b in
  kv_table
    [
      ("predicted_cycles", string_of_int p.Timing_xv.pr_cycles);
      ("block_instances", string_of_int p.Timing_xv.pr_blocks);
      ("mispredicts", string_of_int p.Timing_xv.pr_mispredicts);
      ("findings", string_of_int (List.length p.Timing_xv.pr_diags));
    ]

(* The sampled engine's response carries the estimate and its error
   bound; exact functional statistics come from the same run. *)
let run_simulate_sampled r (b : Registry.bench) =
  let est = Sampling_xv.estimate (quality_of r.preset) b in
  kv_table
    [
      ("estimated_cycles", Printf.sprintf "%.0f" est.Trips_sim.Sampled.es_cycles);
      ("ci95", Printf.sprintf "%.0f" est.Trips_sim.Sampled.es_ci95);
      ("intervals", string_of_int est.Trips_sim.Sampled.es_intervals);
      ( "measured_blocks",
        string_of_int est.Trips_sim.Sampled.es_measured_blocks );
      ("total_blocks", string_of_int est.Trips_sim.Sampled.es_total_blocks);
      ("cpb_mean", Table.fnum est.Trips_sim.Sampled.es_cpb_mean);
      ("cpb_stddev", Table.fnum est.Trips_sim.Sampled.es_cpb_stddev);
      ("full_detail", if est.Trips_sim.Sampled.es_full then "yes" else "no");
    ]

let run_simulate r (b : Registry.bench) =
  let res = Platforms.trips (quality_of r.preset) b in
  let t = res.Core.timing in
  kv_table
    [
      ("cycles", string_of_int t.Core.cycles);
      ("blocks", string_of_int t.Core.blocks);
      ("ipc", Table.fnum (Core.ipc res));
      ("useful_ipc", Table.fnum (Core.useful_ipc res));
      ("avg_window", Table.fnum (Core.avg_window res));
      ("avg_opn_hops", Table.fnum res.Core.opn_average_hops);
      ("branch_mispredicts", string_of_int t.Core.branch_mispredicts);
      ("callret_mispredicts", string_of_int t.Core.callret_mispredicts);
      ("icache_misses", string_of_int t.Core.icache_misses);
      ("dcache_misses", string_of_int t.Core.dcache_misses);
      ("load_flushes", string_of_int t.Core.load_flushes);
    ]

let run_transval r (b : Registry.bench) =
  let cell = Transval_xv.cell_edge (transval_tag_of r.preset) b in
  let s = cell.Transval_xv.c_summary in
  kv_table
    [
      ("proved", string_of_int s.Transval.n_proved);
      ("concrete", string_of_int s.Transval.n_concrete);
      ("refuted", string_of_int s.Transval.n_refuted);
      ( "findings",
        string_of_int
          (List.length (Transval.report_diags cell.Transval_xv.c_reports)) );
    ]

let run r =
  let b = Registry.find r.bench in
  match r.verb with
  | Compile -> run_compile r b
  | Lint -> run_lint r b
  | Timing -> run_timing r b
  | Simulate ->
    if r.mode = "sampled" then run_simulate_sampled r b else run_simulate r b
  | Transval_v -> run_transval r b
