module Registry = Trips_workloads.Registry
module Ooo = Trips_superscalar.Ooo
module Ideal = Trips_limit.Ideal

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> Trips_util.Table.t;
  cache_key : string option;
  warm : (unit -> unit) list;
}

(* ------------------------------------------------------------------ *)
(* Cache identity                                                      *)
(* ------------------------------------------------------------------ *)

(* Bump when a table's layout or derivation changes without any config
   changing, so stale cached results cannot survive a refactor. *)
let schema = 1

(* Everything a result depends on besides the experiment id: the modeled
   platform configurations and the full workload set (names, programs,
   hand-written EDGE code).  All of these are closure-free data, so one
   Marshal digest fingerprints the lot. *)
let fingerprint =
  lazy
    (let deps =
       ( ( Trips_sim.Core.prototype,
           Ooo.core2,
           Ooo.pentium4,
           Ooo.pentium3 ),
         ( Ideal.trips_window,
           Ideal.zero_dispatch,
           Ideal.huge_window,
           Trips_predictor.Blockpred.prototype,
           Trips_predictor.Blockpred.improved ),
         List.map
           (fun (b : Registry.bench) ->
             (b.Registry.name, b.Registry.program, b.Registry.hand_edge))
           Registry.all )
     in
     Digest.to_hex (Digest.string (Marshal.to_string deps [])))

let content_fingerprint () = Lazy.force fingerprint

let cache_key_of id =
  Printf.sprintf "%s/schema%d/%s" id schema (Lazy.force fingerprint)

(* ------------------------------------------------------------------ *)
(* Warm sub-jobs: the per-benchmark simulations each figure consumes,   *)
(* exposed so the engine can run them concurrently before [run] does    *)
(* the (memoized, cheap) table assembly.                                *)
(* ------------------------------------------------------------------ *)

let simple = Registry.simple_suite
let spec () = Registry.by_suite Registry.SpecInt @ Registry.by_suite Registry.SpecFp
let eembc () = Registry.by_suite Registry.Eembc

let w_edge q b () = ignore (Platforms.edge_stats q b)
let w_risc b () = ignore (Platforms.risc b)
let w_trips q b () = ignore (Platforms.trips q b)
let w_super cfg icc b () = ignore (Platforms.super cfg ~icc b)
let w_ideal cfg tag q b () = ignore (Platforms.ideal cfg ~tag q b)

let both f l = List.concat_map (fun b -> [ f Platforms.C b; f Platforms.H b ]) l
let only_c f l = List.map (fun b -> f Platforms.C b) l

let warm_edge_figs () =
  both w_edge simple @ only_c w_edge (eembc () @ spec ())

let warm_risc_all () = List.map w_risc (simple @ eembc () @ spec ())

let warm_trips_main () = both w_trips simple @ only_c w_trips (spec ())

(* every column speedup_columns reads for one benchmark *)
let warm_speedup b =
  [
    w_super Ooo.core2 false b; w_super Ooo.core2 true b;
    w_super Ooo.pentium4 false b; w_super Ooo.pentium3 false b;
    w_trips Platforms.C b; w_trips Platforms.H b;
  ]

let experiment ?(cache = true) ~id ~title ~claim ~warm run =
  {
    id;
    title;
    paper_claim = claim;
    run;
    cache_key = (if cache then Some (cache_key_of id) else None);
    warm;
  }

let all =
  [
    experiment ~id:"table1" ~title:"Reference platforms"
      ~claim:"Four platforms; the Core 2 is under-clocked to match the TRIPS memory ratio"
      ~warm:[] Perf_figs.table1;
    experiment ~id:"fig3" ~title:"TRIPS block size and composition"
      ~claim:
        "Compiled blocks average tens of instructions (paper: ~64 mean, 20-128 range); \
         moves ~20%; heavy predication benchmarks carry many mispredicated instructions"
      ~warm:(warm_edge_figs ()) Isa_figs.fig3;
    experiment ~id:"fig4" ~title:"Fetched instructions vs PowerPC"
      ~claim:
        "Useful instruction counts comparable to the RISC; total fetched 2-6x due to \
         predication, moves and speculation"
      ~warm:(warm_edge_figs () @ warm_risc_all ()) Isa_figs.fig4;
    experiment ~id:"fig5" ~title:"Storage accesses vs PowerPC"
      ~claim:
        "About half the memory accesses of the RISC (as few as 15%); register accesses \
         10-20%; direct operand traffic replaces the rest"
      ~warm:(warm_edge_figs () @ warm_risc_all ()) Isa_figs.fig5;
    experiment ~id:"codesize" ~title:"Dynamic code size (4.4)"
      ~claim:"~6x PowerPC raw, ~4x with block compression"
      ~warm:
        (let benches = simple @ spec () in
         List.map (fun b () -> Isa_figs.warm_codesize b) benches
         @ List.map w_risc benches)
      Isa_figs.codesize;
    experiment ~id:"fig6" ~title:"Instructions in flight"
      ~claim:
        "Compiled code averages ~450 instructions in the window, hand-optimized ~630 \
         (peaks near 900/1000); far above conventional 64-80 entry windows"
      ~warm:(warm_trips_main ()) Micro_figs.fig6;
    experiment ~id:"fig7" ~title:"Next-block prediction breakdown"
      ~claim:
        "The block predictor makes far fewer predictions than a per-branch predictor \
         (~70% fewer on SPEC INT); hyperblocks cut MPKI (paper: 14.9/14.8/8.5/6.9 INT, \
         0.9/1.3/1.1/0.8 FP for A/B/H/I)"
      ~warm:(List.map (fun b () -> Micro_figs.warm_fig7 b) (spec ()))
      Micro_figs.fig7;
    experiment ~id:"fig8" ~title:"Memory bandwidth (hand vadd)"
      ~claim:
        "Hand-placed vadd approaches the four-bank L1 peak (paper: 96.5% of 10.9 GB/s) \
         and most of the L2 bandwidth"
      ~warm:[ w_trips Platforms.H (Registry.find "vadd") ]
      Micro_figs.fig8;
    experiment ~id:"fig8opn" ~title:"OPN traffic profile"
      ~claim:
        "ET-ET traffic dominates; roughly half of operands bypass locally (0 hops); \
         average ~0.9-1.9 hops; vadd skews to ET-DT, matrix to ET-RT"
      ~warm:
        ([ w_trips Platforms.H (Registry.find "vadd");
           w_trips Platforms.H (Registry.find "matrix");
           w_trips Platforms.C (Registry.find "gcc") ]
        @ only_c w_trips (eembc ()))
      Micro_figs.fig8_opn;
    experiment ~id:"fig9" ~title:"Sustained IPC"
      ~claim:
        "Parallel kernels reach 6-10 IPC, serial ones (routelookup, rspeed) stay low; \
         hand code ~50% higher IPC than compiled; SPEC lower than simple benchmarks"
      ~warm:(warm_trips_main ()) Perf_figs.fig9;
    experiment ~id:"fig10" ~title:"Ideal EDGE machine limit study"
      ~claim:
        "The 1K-window ideal machine outperforms the hardware by ~2.5x; removing \
         dispatch cost adds ~5x on the ideal machine; a 128K window exposes 50+ IPC \
         on many SPEC codes"
      ~warm:
        (let per q b =
           [
             w_trips q b;
             w_ideal Ideal.trips_window "1k" q b;
             w_ideal Ideal.zero_dispatch "0d" q b;
             w_ideal Ideal.huge_window "128k" q b;
           ]
         in
         List.concat_map (fun b -> per Platforms.C b @ per Platforms.H b) simple
         @ List.concat_map (per Platforms.C) (spec ()))
      Perf_figs.fig10;
    experiment ~id:"fig11" ~title:"Simple benchmark speedups vs Core 2"
      ~claim:
        "TRIPS compiled ~1.5x the Core 2-gcc model on average; hand-optimized ~3x and \
         always faster; sequential codes (rspeed, routelookup) show the least gain"
      ~warm:(List.concat_map warm_speedup simple)
      Perf_figs.fig11;
    experiment ~id:"fig12" ~title:"SPEC speedups vs Core 2"
      ~claim:
        "TRIPS compiled SPEC INT is roughly half the Core 2 model; SPEC FP is \
         comparable to Core 2-gcc; the Core 2 beats the P3/P4 models"
      ~warm:(List.concat_map warm_speedup (spec () @ eembc ()))
      Perf_figs.fig12;
    experiment ~id:"table3" ~title:"SPEC performance-counter events"
      ~claim:
        "Call/return mispredictions and I-cache misses hurt crafty/perlbmk/vortex-like \
         codes; load flushes are rare (<1 per 1000); regular FP codes keep hundreds of \
         useful instructions in flight"
      ~warm:
        (List.concat_map
           (fun b -> [ w_trips Platforms.C b; w_super Ooo.core2 false b ])
           (spec ()))
      Perf_figs.table3;
    experiment ~id:"flops" ~title:"Matrix-multiply FLOPS per cycle"
      ~claim:"TRIPS sustains more FPC than the best Core 2 figure (paper: 5.20 vs 3.58)"
      ~warm:
        (let m = Registry.find "matrix" in
         [
           w_trips Platforms.H m; w_super Ooo.core2 true m;
           w_super Ooo.pentium4 true m; w_super Ooo.pentium3 true m;
         ])
      Perf_figs.flops;
    experiment ~id:"timing" ~title:"Static timing analyzer cross-validation"
      ~claim:
        "The static critical-path model predicts whole-program cycles from one \
         functional execution; predictions correlate with the cycle-level \
         simulator (Pearson >= 0.9) and stay within 25% MAPE, tracking from \
         below (no contention, no cache misses)"
      ~warm:
        (List.concat_map
           (fun (b : Registry.bench) ->
             [ w_trips Platforms.C b;
               (fun () -> ignore (Timing_xv.predict Platforms.C b)) ])
           Registry.all)
      Timing_xv.crossval;
    experiment ~id:"sampling" ~title:"Sampled simulation accuracy"
      ~claim:
        "Systematic sampling of the detailed timing model (exact execution, \
         detail-warm/measure/fast-forward periods) estimates whole-run cycles \
         with sub-percent mean error; the true count falls inside the \
         reported 95% confidence interval on >= 50 of the 55 workloads"
      ~warm:
        (List.concat_map
           (fun (b : Registry.bench) ->
             [ w_trips Platforms.C b;
               (fun () -> ignore (Sampling_xv.estimate Platforms.C b)) ])
           Registry.all)
      Sampling_xv.crossval;
    experiment ~id:"transval" ~title:"Translation validation sweep"
      ~claim:
        "Every compiler pass — optimization, block splitting, hyperblock \
         formation, register allocation, dataflow conversion, scheduling, \
         linking — plus the RISC backend preserves TIR semantics on every \
         registered workload: the symbolic validator proves all blocks \
         equivalent with zero refutations"
      ~warm:
        (List.concat_map
           (fun (b : Registry.bench) ->
             List.map
               (fun tag () -> ignore (Transval_xv.validate_edge tag b))
               Transval_xv.all_presets
             @ [ (fun () -> ignore (Transval_xv.validate_risc b)) ])
           Registry.all)
      Transval_xv.crossval;
    experiment ~id:"absint" ~title:"Global abstract interpretation payoff"
      ~claim:
        "A whole-program abstract interpretation (value ranges, known \
         bits, global alias partition) discharges global optimizations \
         the local optimizer cannot see — constant/branch folding, \
         redundant-load and dead-store elimination, LSID-ordering \
         relaxation — with every applied fact re-derived by the \
         validator; hits are nonzero and the simple-suite cycle deltas \
         are never regressions"
      ~warm:(Absint_xv.warm ()) Absint_xv.crossval;
    experiment ~cache:false ~id:"fuzz"
      ~title:"Differential fuzzing sweep"
      ~claim:
        "Seeded random TIR programs agree across the AST interpreter, all \
         four compilation presets (verified, validated, lint-clean, with \
         static timing a lower bound on simulated cycles), the CFG \
         interpreter and the RISC backend: zero divergences"
      ~warm:(Fuzz_xv.warm ()) Fuzz_xv.crossval;
  ]

let find id = List.find (fun e -> e.id = id) all
let find_opt id = List.find_opt (fun e -> e.id = id) all

let to_job ?(timeout_s = 900.) ?(retries = 1) e =
  Trips_engine.Engine.job ~id:e.id ?cache_key:e.cache_key ~warm:e.warm
    ~timeout_s ~retries e.run

let meta e =
  { Trips_engine.Artifacts.id = e.id; title = e.title; note = e.paper_claim }
