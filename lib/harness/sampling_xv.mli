(** Accuracy cross-validation of the sampled simulator
    ({!Trips_sim.Sampled}) against the full detailed simulator
    ({!Trips_sim.Core}).

    For every registered workload the sampled estimator's whole-run
    cycle estimate and 95% confidence interval are compared with the
    exact cycle count of a full detailed run.  The methodology's own
    claim is what's tested: the true count should fall inside the
    reported interval on almost every run (systematic sampling can
    produce a tight-but-biased interval on periodic workloads, so the
    gate asks for most, not all). *)

type row = {
  sx_bench : string;
  sx_actual : int;       (** full detailed simulation cycles *)
  sx_estimate : float;   (** sampled estimate *)
  sx_ci95 : float;       (** +/- at 95% confidence *)
  sx_intervals : int;    (** measurement intervals used *)
  sx_full : bool;        (** fell back to exact full simulation *)
  sx_error_pct : float;  (** signed, 100*(est-actual)/actual *)
  sx_within : bool;      (** |est - actual| <= ci95 *)
}

val estimate :
  ?config:Trips_sim.Core.config ->
  Platforms.quality ->
  Trips_workloads.Registry.bench ->
  Trips_sim.Sampled.estimate
(** Memoized sampled run over a registered benchmark. *)

val compare_bench :
  ?config:Trips_sim.Core.config ->
  Platforms.quality ->
  Trips_workloads.Registry.bench ->
  row

val benches : unit -> Trips_workloads.Registry.bench list
(** Every registered workload (the cross-validation population). *)

val rows :
  ?config:Trips_sim.Core.config ->
  ?quality:Platforms.quality ->
  Trips_workloads.Registry.bench list ->
  row list

val within_of : row list -> int
(** Workloads whose true cycle count falls inside the reported CI. *)

val mean_abs_error_of : row list -> float
(** Mean absolute estimate error in percent. *)

val table_of : row list -> Trips_util.Table.t
(** Render rows as a table with within-CI and mean-error footers. *)

val crossval : unit -> Trips_util.Table.t
(** {!table_of} over every registered workload. *)
