(** Abstract-interpretation payoff sweep.

    For every workload and optimizing preset: the fact counts the global
    abstract interpretation derives, the global-optimization hits they
    buy ({!Trips_compiler.Driver.gstats}), and — for the simple suite
    under the C preset — the end-to-end simulated-cycle delta between
    the global passes on and off.  All sub-results are memoized through
    {!Platforms.memo}, so the CLI and the experiment share work. *)

module Registry = Trips_workloads.Registry
module Driver = Trips_compiler.Driver
module Absint = Trips_analysis.Absint

type row = {
  a_bench : string;
  a_preset : string;
  a_stats : Absint.stats;
  a_gs : Driver.gstats;
  a_cycles_on : int option;
  a_cycles_off : int option;
}

val all_presets : string list
(** The optimizing presets the sweep covers: ["C"; "H"; "BB"]. *)

val preset_of : string -> Driver.preset
(** @raise Invalid_argument on an unknown preset tag. *)

val row : ?cycles:bool -> string -> Registry.bench -> row
(** [row ~cycles ptag b]; [~cycles:true] additionally simulates the
    bench with the global passes on and off. *)

val diags_of : string -> Registry.bench -> Trips_analysis.Diag.t list
(** Deduplicated [absint] findings for one bench under one preset. *)

val total_hits : Driver.gstats -> int

val warm : unit -> (unit -> unit) list
(** Per-bench warm thunks for the experiment engine. *)

val crossval : unit -> Trips_util.Table.t
(** The [absint] experiment table. *)
