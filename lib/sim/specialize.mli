(** Hot-block specialization: compiled timing plans.

    A drop-in alternative engine for {!Core}: same model, same numbers,
    different execution strategy.  Blocks whose observed instance count
    reaches a threshold are partially evaluated — every static operand
    path of the block is resolved once to a "cell" (a distinct message
    class / hop count pair), and the specialized drain then claims
    network links through the quiet claim primitive while counting
    packets in per-block cells, batched into the shared profile once per
    run.  Cold blocks fall back to {!Core.time_block}, so short programs
    pay no compilation cost.

    The contract is bit-identity: on any program and config, {!run}
    produces a result equal (cycles and every statistic, including the
    OPN profile) to {!Core.run}'s, because occupancy claims — the one
    order-sensitive shared structure — replay the interpreter's exact
    probe/claim sequence, and everything batched is an order-independent
    integer sum.

    Derived per-block tables (message cells per path variant) are pure
    data and can be cached across runs and processes through
    {!Plan_cache}, keyed by {!plan_key}. *)

type tables
(** Derivation output: pure, marshalable, position-independent.  What
    {!Plan_cache} stores. *)

val derive : Core.plan -> tables

val plan_key : Core.plan -> string
(** Content-hash cache key: a digest over exactly the static plan
    columns {!derive} reads (which the block's code and the ISA config
    fully determine), plus {!Plan_cache.schema}. *)

type report = {
  rp_blocks_compiled : int;   (** plans instantiated this run *)
  rp_tables_derived : int;    (** derivations computed (cache misses) *)
  rp_cache_hits_mem : int;
  rp_cache_hits_disk : int;
  rp_interpreted : int;       (** instances timed by the cold fallback *)
}

val default_threshold : int
(** Instances of a block before it is compiled.  [~threshold:0] compiles
    every block on first use (parity suites, differential fuzzing). *)

val run :
  ?config:Core.config ->
  ?fuel:int ->
  ?threshold:int ->
  ?cache:Plan_cache.t ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  Core.result

val run_report :
  ?config:Core.config ->
  ?fuel:int ->
  ?threshold:int ->
  ?cache:Plan_cache.t ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  Core.result * report
(** {!run} plus compilation/cache counters, for the CLI, the service's
    engine report and the CI cold/warm cache smoke. *)

(** {1 Driver primitives}

    For engines that embed the specializer in a larger drive loop (the
    sampled simulator interleaves it with functional fast-forward). *)

type state
(** Per-run engine state: compiled entries, counters, the cache handle. *)

val make_state : ?cache:Plan_cache.t -> threshold:int -> Core.sim -> state

val time : state -> Core.time_fn
(** The engine's timing function: compiled entry when hot, compiling on
    the threshold crossing, {!Core.time_block} otherwise. *)

val flush : state -> unit
(** Publish batched per-block packet cells into the simulator's OPN
    profile.  Call once, after the last instance. *)

val state_report : state -> report
