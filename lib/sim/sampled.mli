(** Sampled simulation: exact functional execution with systematic
    sampling of the detailed timing model (the SMARTS methodology
    adapted to block-atomic execution).

    Block instances cycle through detailed-warm, detailed-measure and
    fast-forward phases.  Fast-forward keeps the block predictor and the
    caches training (functional warming) with the clock frozen; each
    measurement interval contributes one cycles-per-block sample.  The
    whole-run cycle estimate is the sample mean scaled by the exact
    total block count, with a Student-t 95% confidence interval.

    Architectural results and functional statistics are always exact.
    Runs too short to bound the error are simulated fully in detail and
    report an exact estimate with CI 0. *)

type params = {
  sp_period : int;        (** blocks per sampling period *)
  sp_warm : int;          (** detailed blocks excluded from measurement *)
  sp_measure : int;       (** detailed blocks measured per period *)
  sp_min_intervals : int; (** fewer intervals than this -> full fallback *)
}

val default_params : params

type estimate = {
  es_cycles : float;        (** estimated whole-run cycles *)
  es_ci95 : float;          (** +/- at 95% confidence *)
  es_intervals : int;       (** measurement intervals used *)
  es_measured_blocks : int; (** block instances timed in detail *)
  es_total_blocks : int;    (** block instances executed (exact) *)
  es_cpb_mean : float;      (** mean measured cycles per block *)
  es_cpb_stddev : float;    (** across-interval standard deviation *)
  es_full : bool;           (** exact full simulation (short run) *)
}

val run :
  ?config:Core.config ->
  ?fuel:int ->
  ?threshold:int ->
  ?cache:Plan_cache.t ->
  ?params:params ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  Core.result * estimate
(** The [Core.result] carries the exact functional statistics; its
    timing covers only the detailed stretches (clock frozen elsewhere) —
    the [estimate] is the headline cycle figure.  When [es_full] is set
    the result is a complete detailed simulation and [es_cycles] is
    exact.  Detailed stretches are timed by the {!Specialize} engine
    ([threshold]/[cache] as there). *)

val run_report :
  ?config:Core.config ->
  ?fuel:int ->
  ?threshold:int ->
  ?cache:Plan_cache.t ->
  ?params:params ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  Core.result * estimate * Specialize.report
(** {!run} plus the specializer's compilation/cache counters. *)
