module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Exec = Trips_edge.Exec
module Blockpred = Trips_predictor.Blockpred
module Depend = Trips_predictor.Depend
module Cache = Trips_mem.Cache
module Hier = Trips_mem.Hier
module Opn = Trips_noc.Opn
module Schedule = Trips_compiler.Schedule

type config = {
  predictor : Blockpred.config;
  fetch_interval : int;
  dispatch_rate : int;
  redirect_penalty : int;
  flush_penalty : int;
  commit_overhead : int;
  window_blocks : int;
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config;
  dram : Hier.dram_config;
}

let prototype =
  {
    predictor = Blockpred.prototype;
    fetch_interval = 8;
    dispatch_rate = 16;
    redirect_penalty = 8;
    flush_penalty = 13;
    commit_overhead = 4;
    window_blocks = 8;
    l1d = Cache.trips_l1d;
    l1i = Cache.trips_l1i;
    l2 = Cache.trips_l2;
    dram = Hier.trips_dram;
  }

type stats = {
  mutable cycles : int;
  mutable blocks : int;
  mutable branch_mispredicts : int;
  mutable callret_mispredicts : int;
  mutable load_flushes : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable occupancy_weighted : float;
  mutable occupancy_useful : float;
  mutable peak_occupancy : int;
  mutable l1d_bytes : int;
  mutable l2_bytes : int;
  mutable dram_bytes : int;
}

(* Measured per-block timing, aggregated over every committed instance of
   one static block: the static timing analyzer cross-validates its
   predicted critical paths against [bo_latency / bo_instances]. *)
type block_obs = {
  mutable bo_instances : int;
  mutable bo_latency : int;     (* sum of (all outputs done - dispatch start) *)
  mutable bo_residency : int;   (* sum of (commit - fetch) *)
}

type result = {
  ret : Ty.value option;
  exec : Exec.stats;
  timing : stats;
  opn : Opn.profile;
  opn_average_hops : float;
  block_profile : (string * block_obs) list;  (* sorted by label *)
}

(* Compressed code footprint of a block: a 128-byte header plus 128-byte
   chunks of 32 instructions (§4.4). *)
let block_bytes n_insts = 128 + (128 * ((max 1 n_insts + 31) / 32))

(* ------------------------------------------------------------------ *)
(* Static timing plans                                                 *)
(* ------------------------------------------------------------------ *)

(* Everything [time_block] needs that depends only on the static block
   (and the fixed [config]) is derived once per block label and reused by
   every committed instance: placement positions, operand/predicate
   arities, per-op latencies, flattened target lists, load/store LSIDs
   with their precomputed {!Depend} site ids, dispatch offsets, the code
   address and footprint, the exit list and the measured profile.
   Per-instance work then touches only instance-varying state (which
   instructions fired, memory event addresses, register availability).

   Targets are a CSR-style flat encoding: instruction [i]'s targets are
   [p_tgt.(p_toff.(i)) .. p_tgt.(p_toff.(i+1) - 1)].  An entry [v >= 0]
   is a consumer instruction index; [v < 0] refers to register-write
   occurrence [-v - 1] in [p_wreg]/[p_wpos].  Read slot targets use the
   same encoding in [p_rtgt]/[p_roff].  The kind/lsid/latency columns are
   plain int arrays so the instance loop never chases variant pointers. *)

let k_alu = 0
let k_load = 1
let k_store = 2
let k_branch = 3

(* Extension slot for engines layered on top of the interpreter: the
   specializer ({!Trips_sim.Specialize}) attaches its compiled entry to
   the plan it was derived from, so the hot path finds it without a side
   table.  An open type keeps [Core] ignorant of what is attached. *)
type ext = ..
type ext += Ext_none

type plan = {
  p_label : string;
  mutable p_id : int;                (* interned label id; -1 until first use *)
  p_addr : int;                      (* code address *)
  p_bytes : int;                     (* compressed footprint *)
  p_n : int;
  p_pos : (int * int) array;         (* per-inst ET mesh position *)
  p_tile : int array;                (* per-inst ET index *)
  p_need : int array;                (* operand arity + predicate slot *)
  p_lat : int array;                 (* Isa.latency per instruction *)
  p_kind : int array;                (* k_alu / k_load / k_store / k_branch *)
  p_lsid : int array;                (* loads and stores; -1 otherwise *)
  p_wait : int array;                (* Depend site id of the wait check *)
  p_viol : int array;                (* Depend site id of violation learning *)
  p_toff : int array;                (* n+1 offsets into p_tgt *)
  p_tgt : int array;
  p_wreg : int array;                (* per To_write occurrence: arch reg *)
  p_wpos : (int * int) array;        (* and its RT mesh position *)
  p_disp : int array;                (* dispatch offset: 1 + i / rate *)
  p_disp_done : int;                 (* offset of last dispatch *)
  p_zero : int array;                (* indices with p_need = 0, ascending *)
  p_rd_reg : int array;              (* read slots: arch reg *)
  p_rd_pos : (int * int) array;      (* and its RT mesh position *)
  p_roff : int array;                (* reads+1 offsets into p_rtgt *)
  p_rtgt : int array;
  p_exits : int array;               (* branch inst indices, ascending *)
  (* precomputed operand-network paths.  Almost every message's endpoints
     are static per block, so the link ids it claims are too: variant [v]
     is [p_paths.(p_voff.(v)) .. p_voff.(v) + p_vlen.(v) - 1].  Loads
     deliver from the data tile of the accessed bank, so load edges and
     ET->DT hops carry four consecutive variants, indexed by bank. *)
  p_tvar : int array;                (* per p_tgt entry: variant base *)
  p_tci : int array;                 (* per p_tgt entry: message class *)
  p_dtvar : int array;               (* per inst: ET->DT variant base, -1 *)
  p_brvar : int array;               (* per branch inst: ET->GT variant, -1 *)
  p_rvar : int array;                (* per p_rtgt To_inst entry: RT->ET *)
  p_voff : int array;
  p_vlen : int array;
  p_paths : int array;
  p_obs : block_obs;                 (* measured profile, updated in place *)
  mutable p_ext : ext;               (* engine extension (specializer) *)
}

(* Reusable per-instance scratch state, sized once for the largest block
   of the program so [time_block] allocates nothing per instance. *)
type scratch = {
  sc_cnt : int array;                (* arrived operand count per inst *)
  sc_arr : int array;                (* max arrival time per inst *)
  sc_done : int array;               (* completion time, -1 = pending *)
  sc_et : int array;                 (* per-ET next free issue cycle *)
  sc_dt : int array;                 (* per-DT-bank next free cycle *)
  sc_store : int array;              (* per-LSID store DT arrival, min_int = none *)
  sc_ev_addr : int array;            (* memory event of the inst, addr *)
  sc_ev_width : int array;           (* bytes *)
  sc_ev_bank : int array;            (* L1D bank of the event address *)
  sc_ev_null : bool array;
  sc_has_ev : bool array;
  (* calendar queue on readiness time: one LIFO bucket per cycle, linked
     through [q_next] (every instruction enters the queue at most once).
     Readiness times are monotone during the drain — an instruction only
     becomes ready at or after the time currently being processed — so a
     cursor sweeping forward pops in exactly the seed's order: minimum
     time first, most recent push first among equals.  Buckets self-clean
     as they drain, so per-instance reset is just the cursor. *)
  mutable q_head : int array;          (* time offset -> inst or -1 *)
  mutable q_bits : int array;          (* bucket-occupancy bitmap, 32/word *)
  q_next : int array;
  mutable q_cursor : int;              (* current time offset *)
  mutable q_count : int;
  mutable q_base : int;                (* time of offset 0 *)
  (* per-instance memory events, struct-of-arrays *)
  m_lsid : int array;
  m_load : bool array;
  m_addr : int array;
  m_width : int array;
  m_null : bool array;
  m_time : int array;
  m_viol : int array;                (* violation site id (loads) *)
  mutable m_cnt : int;
  (* violation sweep: event indices sorted by LSID *)
  v_load : int array;
  v_store : int array;
  (* register writes of the instance, in append order *)
  w_reg : int array;
  w_time : int array;
  mutable w_cnt : int;
}

let make_scratch ~max_insts ~max_writes ~max_lsid =
  let n = max max_insts 1 in
  let w = max max_writes 1 in
  {
    sc_cnt = Array.make n 0;
    sc_arr = Array.make n min_int;
    sc_done = Array.make n (-1);
    sc_et = Array.make Isa.num_ets 0;
    sc_dt = Array.make Isa.num_dt_banks 0;
    sc_store = Array.make (max (max_lsid + 1) Isa.max_lsids) min_int;
    sc_ev_addr = Array.make n 0;
    sc_ev_width = Array.make n 0;
    sc_ev_bank = Array.make n 0;
    sc_ev_null = Array.make n false;
    sc_has_ev = Array.make n false;
    q_head = Array.make 4096 (-1);
    q_bits = Array.make ((4096 lsr 5) + 1) 0;
    q_next = Array.make n (-1);
    q_cursor = 0;
    q_count = 0;
    q_base = 0;
    m_lsid = Array.make n 0;
    m_load = Array.make n false;
    m_addr = Array.make n 0;
    m_width = Array.make n 0;
    m_null = Array.make n false;
    m_time = Array.make n 0;
    m_viol = Array.make n 0;
    m_cnt = 0;
    v_load = Array.make n 0;
    v_store = Array.make n 0;
    w_reg = Array.make w 0;
    w_time = Array.make w 0;
    w_cnt = 0;
  }

(* The heap and scratch columns are only ever indexed by instruction
   indices of the current block (validated against the scratch capacity
   when plans are built) or by the current heap size, so the hot loops
   use unchecked array access. *)

(* [queue_push] files instruction [idx] under readiness time [t].  Times
   never precede the cursor (see the monotonicity note on [scratch]), so
   a popped bucket is never pushed into again once the cursor passes it. *)
let queue_push sc t idx =
  let off = t - sc.q_base in
  if off >= Array.length sc.q_head then begin
    let cap = ref (2 * Array.length sc.q_head) in
    while off >= !cap do cap := 2 * !cap done;
    let h = Array.make !cap (-1) in
    Array.blit sc.q_head 0 h 0 (Array.length sc.q_head);
    sc.q_head <- h;
    let b = Array.make ((!cap lsr 5) + 1) 0 in
    Array.blit sc.q_bits 0 b 0 (Array.length sc.q_bits);
    sc.q_bits <- b
  end;
  let prev = Array.unsafe_get sc.q_head off in
  Array.unsafe_set sc.q_next idx prev;
  Array.unsafe_set sc.q_head off idx;
  if prev < 0 then begin
    let w = off lsr 5 in
    Array.unsafe_set sc.q_bits w
      (Array.unsafe_get sc.q_bits w lor (1 lsl (off land 31)))
  end;
  sc.q_count <- sc.q_count + 1

(* Int-specialized max for the hot paths: [Stdlib.max] is polymorphic
   and compiles to an out-of-line structural comparison. *)
let[@inline] imax (a : int) (b : int) = if a >= b then a else b

(* Lowest set bit index of a non-zero 32-bit word, by de Bruijn multiply:
   isolate the low bit, multiply by the de Bruijn constant, and the top
   5 bits of the 32-bit product name the position. *)
let ctz_tab =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz x =
  Array.unsafe_get ctz_tab ((((x land (-x)) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Pops the instruction with the smallest readiness time (ties: most
   recently pushed first); -1 when empty.  The cursor bucket is always
   the minimum occupied time or earlier, so when it is non-empty the pop
   needs no bitmap scan at all — the common case inside a busy cycle. *)
let queue_pop sc =
  if sc.q_count = 0 then -1
  else begin
    let bits = sc.q_bits in
    let cur = sc.q_cursor in
    let i0 = Array.unsafe_get sc.q_head cur in
    if i0 >= 0 then begin
      let nx = Array.unsafe_get sc.q_next i0 in
      Array.unsafe_set sc.q_head cur nx;
      if nx < 0 then begin
        let w = cur lsr 5 in
        Array.unsafe_set bits w
          (Array.unsafe_get bits w land lnot (1 lsl (cur land 31)))
      end;
      sc.q_count <- sc.q_count - 1;
      i0
    end
    else begin
      let w = ref (cur lsr 5) in
      let word =
        ref (Array.unsafe_get bits !w land ((-1) lsl (cur land 31)))
      in
      while !word = 0 do
        incr w;
        word := Array.unsafe_get bits !w
      done;
      let bit = ctz !word in
      let off = (!w lsl 5) + bit in
      sc.q_cursor <- off;
      let i = Array.unsafe_get sc.q_head off in
      let nx = Array.unsafe_get sc.q_next i in
      Array.unsafe_set sc.q_head off nx;
      if nx < 0 then
        Array.unsafe_set bits !w (Array.unsafe_get bits !w land lnot (1 lsl bit));
      sc.q_count <- sc.q_count - 1;
      i
    end
  end

type sim = {
  cfg : config;
  mutable pred : Blockpred.t;
  mutable dep : Depend.t;
  opn : Opn.t;
  mutable l1d : Cache.t;
  mutable l1i : Cache.t;
  mutable l2 : Cache.t;
  mutable dram_free_at : int;
  st : stats;
  (* static timing plans, one per block label (address, interned id and
     measured profile live inside the plan) *)
  plans : (string, plan) Hashtbl.t;
  mutable next_id : int;                      (* label id counter *)
  ids : (string, int) Hashtbl.t;              (* ids of plan-less labels *)
  func_entry : (string, string) Hashtbl.t;    (* function -> entry label *)
  dt_pos : (int * int) array;                 (* DT bank mesh positions *)
  scratch : scratch;
  mutable reg_ready : int array;              (* RT value availability *)
  mutable shadow_stack : string list;         (* return labels *)
  (* previous block bookkeeping *)
  mutable prev : prev option;
  mutable last_commit : int;
  mutable commits : int array;                (* ring of commit times *)
  mutable seq : int;
  (* in-flight block window: a bounded ring ordered by (monotone) commit
     time; [infl_insts] is the running instruction count of the window *)
  mutable infl_fetch : int array;
  mutable infl_commit : int array;
  mutable infl_size : int array;
  mutable infl_head : int;
  mutable infl_len : int;
  mutable infl_insts : int;
}

and prev = {
  p_fetch : int;
  p_resolve : int;
  p_correct : bool;
  p_kind : Blockpred.kind;
}

(* Label interning preserves the seed's first-dynamic-use id assignment
   (the predictor's table indexing depends on the id values): ids are
   handed out in the order labels are first interned at run time, not in
   program order. *)
let intern_plan s (p : plan) =
  if p.p_id < 0 then begin
    p.p_id <- s.next_id;
    s.next_id <- s.next_id + 1
  end;
  p.p_id

let intern s label =
  match Hashtbl.find_opt s.plans label with
  | Some p -> intern_plan s p
  | None -> (
    (* label without a plan (defensive; cannot happen for valid programs) *)
    match Hashtbl.find_opt s.ids label with
    | Some i -> i
    | None ->
      let i = s.next_id in
      s.next_id <- s.next_id + 1;
      Hashtbl.replace s.ids label i;
      i)

let build_plan (cfg : config) (b : Block.t) ~addr : plan =
  let n = Array.length b.Block.insts in
  let label = b.Block.label in
  let fail i msg =
    invalid_arg (Printf.sprintf "Core: block %s I%d %s" label i msg)
  in
  (* flatten targets; writes table holds one entry per To_write occurrence *)
  let wreg = ref [] and wpos = ref [] and wcount = ref 0 in
  let encode i = function
    | Isa.To_inst (j, _) ->
      if j < 0 || j >= n then fail i "targets an out-of-range instruction";
      j
    | Isa.To_write w ->
      if w < 0 || w >= Array.length b.Block.writes then
        fail i "targets an out-of-range write slot";
      let reg = b.Block.writes.(w).Block.wreg in
      wreg := reg :: !wreg;
      wpos := Schedule.rt_position reg :: !wpos;
      incr wcount;
      - !wcount            (* occurrence id !wcount - 1, encoded negative *)
  in
  let toff = Array.make (n + 1) 0 in
  let tgt_rev = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun t -> tgt_rev := encode i t :: !tgt_rev)
      b.Block.insts.(i).Isa.targets;
    toff.(i + 1) <- List.length !tgt_rev
  done;
  let nr = Array.length b.Block.reads in
  let roff = Array.make (nr + 1) 0 in
  let rtgt_rev = ref [] in
  for r = 0 to nr - 1 do
    List.iter
      (fun t -> rtgt_rev := encode (-1) t :: !rtgt_rev)
      b.Block.reads.(r).Block.rtargets;
    roff.(r + 1) <- List.length !rtgt_rev
  done;
  let of_rev_list l = Array.of_list (List.rev l) in
  let need =
    Array.init n (fun i ->
        let ins = b.Block.insts.(i) in
        Isa.operand_arity ins
        + (match ins.Isa.pred with Isa.Unpred -> 0 | _ -> 1))
  in
  let zero = ref [] in
  for i = n - 1 downto 0 do
    if need.(i) = 0 then zero := i :: !zero
  done;
  let kind = Array.make n k_alu in
  let lsid = Array.make n (-1) in
  let wait = Array.make n 0 in
  let viol = Array.make n 0 in
  for i = 0 to n - 1 do
    match b.Block.insts.(i).Isa.op with
    | Isa.Load (_, _, l) ->
      if l < 0 then fail i "has a negative LSID";
      kind.(i) <- k_load;
      lsid.(i) <- l;
      (* the wait check is keyed by instruction index, violation learning
         by LSID — the seed's (asymmetric) site ids, preserved
         bit-for-bit *)
      wait.(i) <- Depend.site_id ~block:label i;
      viol.(i) <- Depend.site_id ~block:label l
    | Isa.Store (_, l) ->
      if l < 0 then fail i "has a negative LSID";
      kind.(i) <- k_store;
      lsid.(i) <- l
    | Isa.Branch _ -> kind.(i) <- k_branch
    | _ -> ()
  done;
  Array.iteri
    (fun i t ->
      if t < 0 || t >= Isa.num_ets then fail i "is placed on an invalid ET")
    b.Block.placement;
  let pos = Array.init n (fun i -> Schedule.tile_position b.Block.placement.(i)) in
  let wpos_a = of_rev_list !wpos in
  let rd_pos =
    Array.map
      (fun (r : Block.read) -> Schedule.rt_position r.Block.rreg)
      b.Block.reads
  in
  let dt_pos = Array.init Isa.num_dt_banks Schedule.dt_position in
  (* path-variant table: flatten every static route once *)
  let voff = ref [] and vlen = ref [] and nvar = ref 0 in
  let paths = ref [] and npath = ref 0 in
  let add_variant src dst =
    let ids = Opn.path_ids ~src ~dst in
    voff := !npath :: !voff;
    vlen := List.length ids :: !vlen;
    List.iter (fun id -> paths := id :: !paths; incr npath) ids;
    let v = !nvar in
    incr nvar;
    v
  in
  let tgt = of_rev_list !tgt_rev in
  let tvar = Array.make (Array.length tgt) (-1) in
  let tci = Array.make (Array.length tgt) 0 in
  let ci = Opn.class_index in
  for i = 0 to n - 1 do
    for k = toff.(i) to toff.(i + 1) - 1 do
      let v = tgt.(k) in
      if v >= 0 then
        if kind.(i) = k_load then begin
          (* four variants, one per source data tile *)
          let base = add_variant dt_pos.(0) pos.(v) in
          for bk = 1 to Isa.num_dt_banks - 1 do
            ignore (add_variant dt_pos.(bk) pos.(v))
          done;
          tvar.(k) <- base;
          tci.(k) <- ci Opn.Dt_et
        end
        else begin
          tvar.(k) <- add_variant pos.(i) pos.(v);
          tci.(k) <- ci Opn.Et_et
        end
      else begin
        tvar.(k) <- add_variant pos.(i) wpos_a.(-v - 1);
        tci.(k) <- ci Opn.Et_rt
      end
    done
  done;
  let dtvar = Array.make n (-1) in
  let brvar = Array.make n (-1) in
  for i = 0 to n - 1 do
    if kind.(i) = k_load || kind.(i) = k_store then begin
      let base = add_variant pos.(i) dt_pos.(0) in
      for bk = 1 to Isa.num_dt_banks - 1 do
        ignore (add_variant pos.(i) dt_pos.(bk))
      done;
      dtvar.(i) <- base
    end
    else if kind.(i) = k_branch then
      brvar.(i) <- add_variant pos.(i) Schedule.gt_position
  done;
  let rtgt = of_rev_list !rtgt_rev in
  let rvar = Array.make (max 1 (Array.length rtgt)) (-1) in
  for r = 0 to nr - 1 do
    for k = roff.(r) to roff.(r + 1) - 1 do
      if rtgt.(k) >= 0 then rvar.(k) <- add_variant rd_pos.(r) pos.(rtgt.(k))
    done
  done;
  {
    p_label = label;
    p_id = -1;
    p_addr = addr;
    p_bytes = block_bytes n;
    p_n = n;
    p_pos = pos;
    p_tile = Array.copy b.Block.placement;
    p_need = need;
    p_lat = Array.init n (fun i -> Isa.latency b.Block.insts.(i).Isa.op);
    p_kind = kind;
    p_lsid = lsid;
    p_wait = wait;
    p_viol = viol;
    p_toff = toff;
    p_tgt = tgt;
    p_wreg = of_rev_list !wreg;
    p_wpos = wpos_a;
    p_disp = Array.init n (fun i -> 1 + (i / cfg.dispatch_rate));
    p_disp_done = 1 + ((max 1 n - 1) / cfg.dispatch_rate);
    p_zero = Array.of_list !zero;
    p_rd_reg = Array.map (fun (r : Block.read) -> r.Block.rreg) b.Block.reads;
    p_rd_pos = rd_pos;
    p_roff = roff;
    p_rtgt = rtgt;
    p_exits = Array.of_list (List.map fst (Block.exits b));
    p_tvar = tvar;
    p_tci = tci;
    p_dtvar = dtvar;
    p_brvar = brvar;
    p_rvar = rvar;
    p_voff = of_rev_list !voff;
    p_vlen = of_rev_list !vlen;
    p_paths = of_rev_list !paths;
    p_obs = { bo_instances = 0; bo_latency = 0; bo_residency = 0 };
    p_ext = Ext_none;
  }

let dram_latency s ~now =
  let line = s.cfg.l2.Cache.line in
  let occupancy =
    int_of_float (ceil (float_of_int line /. s.cfg.dram.Hier.bytes_per_cycle))
  in
  let start = imax now s.dram_free_at in
  s.dram_free_at <- start + occupancy;
  s.st.dram_bytes <- s.st.dram_bytes + line;
  (start - now) + s.cfg.dram.Hier.dram_latency + occupancy

(* L2 access from either side; returns latency. *)
let l2_access s ~addr ~write ~now =
  s.st.l2_bytes <- s.st.l2_bytes + s.cfg.l2.Cache.line;
  let lat = Cache.hit_latency_of_bank s.l2 (Cache.bank_of s.l2 ~addr) in
  if Cache.access s.l2 ~addr ~write then lat
  else begin
    s.st.l2_misses <- s.st.l2_misses + 1;
    lat + dram_latency s ~now:(now + lat)
  end

let icache_fetch s ~addr ~bytes ~now =
  let line = s.cfg.l1i.Cache.line in
  let first = addr / line and last = (addr + bytes - 1) / line in
  let extra = ref 0 in
  for l = first to last do
    let a = l * line in
    if not (Cache.access s.l1i ~addr:a ~write:false) then begin
      s.st.icache_misses <- s.st.icache_misses + 1;
      let miss = l2_access s ~addr:a ~write:false ~now in
      if miss > !extra then extra := miss
    end
  done;
  (Cache.config s.l1i).Cache.hit_latency + !extra

(* ------------------------------------------------------------------ *)
(* Per-instance dataflow timing                                        *)
(* ------------------------------------------------------------------ *)

(* Result of timing one block instance.  Register writes land in the
   scratch [w_reg]/[w_time] arrays (consumed by [run] right after). *)
type btime = {
  bt_resolve : int;           (* branch resolution at the GT *)
  bt_done : int;              (* all outputs produced *)
  bt_flushed : bool;
}

(* The end-of-instance protocol shared by every dataflow timer: the
   store-load violation sweep over the instance's memory events, the
   load-wait learning, and the completion/flush arithmetic.  [resolve]
   is the branch-resolution time accumulated during the drain. *)
let finish_instance s (cfg : config) ~resolve : btime =
  let sc = s.scratch in
  (* store-load violations: a load that accessed the DT before an earlier
     (lower-LSID) overlapping store arrived.  LSID-sorted interval scan:
     loads walk in LSID order against the prefix of lower-LSID stores,
     skipped entirely while the prefix's max arrival cannot exceed the
     load's *)
  let flushed = ref false in
  let nl = ref 0 and ns = ref 0 in
  for k = 0 to sc.m_cnt - 1 do
    if Array.unsafe_get sc.m_load k then begin
      Array.unsafe_set sc.v_load !nl k;
      incr nl
    end
    else if not (Array.unsafe_get sc.m_null k) then begin
      Array.unsafe_set sc.v_store !ns k;
      incr ns
    end
  done;
  let m_lsid = sc.m_lsid and m_time = sc.m_time in
  let sort_by_lsid arr len =
    for a = 1 to len - 1 do
      let x = Array.unsafe_get arr a in
      let lx = Array.unsafe_get m_lsid x in
      let b = ref (a - 1) in
      while !b >= 0 && Array.unsafe_get m_lsid (Array.unsafe_get arr !b) > lx do
        Array.unsafe_set arr (!b + 1) (Array.unsafe_get arr !b);
        decr b
      done;
      Array.unsafe_set arr (!b + 1) x
    done
  in
  sort_by_lsid sc.v_load !nl;
  sort_by_lsid sc.v_store !ns;
  let sp = ref 0 and smax = ref min_int in
  for a = 0 to !nl - 1 do
    let li = Array.unsafe_get sc.v_load a in
    let lsid = Array.unsafe_get m_lsid li in
    while
      !sp < !ns && Array.unsafe_get m_lsid (Array.unsafe_get sc.v_store !sp) < lsid
    do
      let t = Array.unsafe_get m_time (Array.unsafe_get sc.v_store !sp) in
      if t > !smax then smax := t;
      incr sp
    done;
    let lt = Array.unsafe_get m_time li in
    if !smax > lt then begin
      (* some lower-LSID store arrived later: scan the prefix for overlap *)
      let laddr = Array.unsafe_get sc.m_addr li in
      let lwidth = Array.unsafe_get sc.m_width li in
      let hit = ref false in
      let b = ref 0 in
      while (not !hit) && !b < !sp do
        let si = Array.unsafe_get sc.v_store !b in
        if
          Array.unsafe_get m_time si > lt
          && Array.unsafe_get sc.m_addr si < laddr + lwidth
          && laddr < Array.unsafe_get sc.m_addr si + Array.unsafe_get sc.m_width si
        then hit := true;
        incr b
      done;
      if !hit then begin
        flushed := true;
        (* learn: next time this load waits *)
        Depend.record_violation s.dep ~load_id:(Array.unsafe_get sc.m_viol li)
      end
    end
  done;
  if !flushed then s.st.load_flushes <- s.st.load_flushes + 1;
  let all_done = ref resolve in
  for k = 0 to sc.m_cnt - 1 do
    let t = Array.unsafe_get m_time k in
    if t > !all_done then all_done := t
  done;
  for k = 0 to sc.w_cnt - 1 do
    if sc.w_time.(k) > !all_done then all_done := sc.w_time.(k)
  done;
  let all_done = if !flushed then !all_done + cfg.flush_penalty else !all_done in
  {
    bt_resolve = imax resolve (if !flushed then all_done else resolve);
    bt_done = all_done;
    bt_flushed = !flushed;
  }

let time_block s (cfg : config) (plan : plan) (inst : Exec.instance)
    ~dispatch_start : btime =
  let n = plan.p_n in
  let fired = inst.Exec.fired in
  let sc = s.scratch in
  let sc_cnt = sc.sc_cnt and sc_arr = sc.sc_arr and sc_done = sc.sc_done in
  let sc_has_ev = sc.sc_has_ev in
  let p_need = plan.p_need and p_disp = plan.p_disp and p_pos = plan.p_pos in
  let p_tgt = plan.p_tgt and p_toff = plan.p_toff in
  (* reset instance-varying scratch *)
  for i = 0 to n - 1 do
    Array.unsafe_set sc_cnt i 0;
    Array.unsafe_set sc_arr i min_int;
    Array.unsafe_set sc_done i (-1);
    Array.unsafe_set sc_has_ev i false
  done;
  Array.fill sc.sc_et 0 (Array.length sc.sc_et) 0;
  Array.fill sc.sc_dt 0 (Array.length sc.sc_dt) 0;
  Array.fill sc.sc_store 0 (Array.length sc.sc_store) min_int;
  sc.q_cursor <- 0;
  sc.q_count <- 0;
  sc.q_base <- dispatch_start;
  sc.m_cnt <- 0;
  sc.w_cnt <- 0;
  (* memory-event lookup for fired loads/stores *)
  List.iter
    (fun (ev : Exec.mem_event) ->
      let i = ev.Exec.ev_inst in
      sc.sc_ev_addr.(i) <- ev.Exec.ev_addr;
      sc.sc_ev_width.(i) <- Ty.bytes_of_width ev.Exec.ev_width;
      sc.sc_ev_bank.(i) <- Cache.bank_of s.l1d ~addr:ev.Exec.ev_addr;
      sc.sc_ev_null.(i) <- ev.Exec.ev_null;
      sc_has_ev.(i) <- true)
    inst.Exec.mem_events;
  (* instructions dispatch progressively, [dispatch_rate] per cycle in slot
     order; the header's read/write slots dispatch first *)
  let dispatch_done = dispatch_start + plan.p_disp_done in
  let resolve = ref (dispatch_start + 1) in
  let push_write reg t =
    sc.w_reg.(sc.w_cnt) <- reg;
    sc.w_time.(sc.w_cnt) <- t;
    sc.w_cnt <- sc.w_cnt + 1
  in
  let push_mem i lsid is_load t =
    let k = sc.m_cnt in
    Array.unsafe_set sc.m_lsid k lsid;
    Array.unsafe_set sc.m_load k is_load;
    Array.unsafe_set sc.m_addr k (Array.unsafe_get sc.sc_ev_addr i);
    Array.unsafe_set sc.m_width k (Array.unsafe_get sc.sc_ev_width i);
    Array.unsafe_set sc.m_null k (Array.unsafe_get sc.sc_ev_null i);
    Array.unsafe_set sc.m_time k t;
    Array.unsafe_set sc.m_viol k (Array.unsafe_get plan.p_viol i);
    sc.m_cnt <- k + 1
  in
  let arrive j t =
    if Array.unsafe_get fired j then begin
      if t > Array.unsafe_get sc_arr j then Array.unsafe_set sc_arr j t;
      let c = Array.unsafe_get sc_cnt j + 1 in
      Array.unsafe_set sc_cnt j c;
      if c = Array.unsafe_get p_need j then
        queue_push sc
          (imax (dispatch_start + Array.unsafe_get p_disp j)
             (Array.unsafe_get sc_arr j))
          j
    end
  in
  let p_tvar = plan.p_tvar and p_tci = plan.p_tci in
  let p_voff = plan.p_voff and p_vlen = plan.p_vlen and p_paths = plan.p_paths in
  let deliver_targets i completion =
    let is_load = Array.unsafe_get plan.p_kind i = k_load in
    if is_load && not (Array.unsafe_get sc_has_ev i) then begin
      (* squashed load with no event (defensive): deliver from the ET *)
      let src_pos = Array.unsafe_get p_pos i in
      for k = Array.unsafe_get p_toff i to Array.unsafe_get p_toff (i + 1) - 1 do
        let v = Array.unsafe_get p_tgt k in
        if v >= 0 then
          arrive v
            (Opn.send s.opn ~src:src_pos ~dst:(Array.unsafe_get p_pos v)
               Opn.Dt_et ~now:completion)
        else begin
          let w = -v - 1 in
          push_write plan.p_wreg.(w)
            (Opn.send s.opn ~src:src_pos ~dst:plan.p_wpos.(w) Opn.Et_rt
               ~now:completion)
        end
      done
    end
    else begin
      (* loads deliver from the data tile of the accessed bank: their
         To_inst edges carry one path variant per bank *)
      let bank_add = if is_load then Array.unsafe_get sc.sc_ev_bank i else 0 in
      for k = Array.unsafe_get p_toff i to Array.unsafe_get p_toff (i + 1) - 1 do
        let v = Array.unsafe_get p_tgt k in
        if v >= 0 then begin
          let var = Array.unsafe_get p_tvar k + bank_add in
          let t =
            Opn.claim_path s.opn ~ci:(Array.unsafe_get p_tci k)
              ~paths:p_paths ~off:(Array.unsafe_get p_voff var)
              ~len:(Array.unsafe_get p_vlen var) ~now:completion
          in
          arrive v t
        end
        else begin
          let w = -v - 1 in
          let var = Array.unsafe_get p_tvar k in
          let t =
            Opn.claim_path s.opn ~ci:(Array.unsafe_get p_tci k)
              ~paths:p_paths ~off:(Array.unsafe_get p_voff var)
              ~len:(Array.unsafe_get p_vlen var) ~now:completion
          in
          push_write plan.p_wreg.(w) t
        end
      done
    end
  in
  (* inject reads *)
  let nr = Array.length plan.p_rd_reg in
  let ci_rt_et = 6 in
  for r = 0 to nr - 1 do
    let avail = imax dispatch_done s.reg_ready.(plan.p_rd_reg.(r)) in
    for k = plan.p_roff.(r) to plan.p_roff.(r + 1) - 1 do
      let v = plan.p_rtgt.(k) in
      if v >= 0 then begin
        let var = plan.p_rvar.(k) in
        let t =
          Opn.claim_path s.opn ~ci:ci_rt_et ~paths:p_paths
            ~off:(Array.unsafe_get p_voff var)
            ~len:(Array.unsafe_get p_vlen var) ~now:avail
        in
        arrive v t
      end
      else push_write plan.p_wreg.(-v - 1) avail
    done
  done;
  (* zero-operand fired instructions are ready once dispatched *)
  Array.iter
    (fun i ->
      if Array.unsafe_get fired i then
        queue_push sc (dispatch_start + Array.unsafe_get p_disp i) i)
    plan.p_zero;
  (* process in readiness-time order so operand-network link reservations
     stay chronological: contention then reflects genuine overlap *)
  let continue_ = ref true in
  while !continue_ do
    let i = queue_pop sc in
    if i < 0 then continue_ := false
    else if Array.unsafe_get sc_done i < 0 then begin
      let operand_ready =
        imax (dispatch_start + Array.unsafe_get p_disp i) (Array.unsafe_get sc_arr i)
      in
      let tile = Array.unsafe_get plan.p_tile i in
      let issue = imax operand_ready (Array.unsafe_get sc.sc_et tile) in
      Array.unsafe_set sc.sc_et tile (issue + 1);
      let kind = Array.unsafe_get plan.p_kind i in
      if kind = k_alu then begin
        let done_t = issue + Array.unsafe_get plan.p_lat i in
        Array.unsafe_set sc_done i done_t;
        deliver_targets i done_t
      end
      else if kind = k_load then begin
        if not (Array.unsafe_get sc_has_ev i) then
          (* squashed, defensive *)
          Array.unsafe_set sc_done i (issue + Array.unsafe_get plan.p_lat i)
        else begin
          let lsid = Array.unsafe_get plan.p_lsid i in
          let addr = Array.unsafe_get sc.sc_ev_addr i in
          let bank = Array.unsafe_get sc.sc_ev_bank i in
          (* predicted-dependent loads wait for all earlier stores *)
          let wait =
            if Depend.should_wait s.dep ~load_id:(Array.unsafe_get plan.p_wait i)
            then begin
              let acc = ref issue in
              for l = 0 to lsid - 1 do
                let t = Array.unsafe_get sc.sc_store l in
                if t > !acc then acc := t
              done;
              !acc
            end
            else issue
          in
          let var = Array.unsafe_get plan.p_dtvar i + bank in
          let at_dt =
            Opn.claim_path s.opn ~ci:1 ~paths:p_paths
              ~off:(Array.unsafe_get p_voff var)
              ~len:(Array.unsafe_get p_vlen var) ~now:wait
          in
          let start = imax at_dt (Array.unsafe_get sc.sc_dt bank) in
          Array.unsafe_set sc.sc_dt bank (start + 1);
          s.st.l1d_bytes <- s.st.l1d_bytes + Array.unsafe_get sc.sc_ev_width i;
          let lat =
            if Cache.access s.l1d ~addr ~write:false then
              Cache.hit_latency_of_bank s.l1d bank
            else begin
              s.st.dcache_misses <- s.st.dcache_misses + 1;
              (Cache.config s.l1d).Cache.hit_latency
              + l2_access s ~addr ~write:false ~now:start
            end
          in
          let data_ready = start + lat in
          Array.unsafe_set sc_done i data_ready;
          push_mem i lsid true start;
          deliver_targets i data_ready
        end
      end
      else if kind = k_store then begin
        let lsid = Array.unsafe_get plan.p_lsid i in
        let has_ev = Array.unsafe_get sc_has_ev i in
        if not has_ev then begin
          (* no event recorded: a nullified store with no address *)
          sc.sc_ev_addr.(i) <- 0;
          sc.sc_ev_width.(i) <- 0;
          sc.sc_ev_null.(i) <- true
        end;
        let is_null = Array.unsafe_get sc.sc_ev_null i in
        let addr = Array.unsafe_get sc.sc_ev_addr i in
        let bank =
          if is_null then lsid land 3 else Array.unsafe_get sc.sc_ev_bank i
        in
        let var = Array.unsafe_get plan.p_dtvar i + bank in
        let at_dt =
          Opn.claim_path s.opn ~ci:1 ~paths:p_paths
            ~off:(Array.unsafe_get p_voff var)
            ~len:(Array.unsafe_get p_vlen var)
            ~now:(issue + Array.unsafe_get plan.p_lat i)
        in
        let start = imax at_dt (Array.unsafe_get sc.sc_dt bank) in
        Array.unsafe_set sc.sc_dt bank (start + 1);
        if not is_null then begin
          s.st.l1d_bytes <- s.st.l1d_bytes + Array.unsafe_get sc.sc_ev_width i;
          if not (Cache.access s.l1d ~addr ~write:true) then begin
            s.st.dcache_misses <- s.st.dcache_misses + 1;
            ignore (l2_access s ~addr ~write:true ~now:start)
          end
        end;
        Array.unsafe_set sc_done i start;
        Array.unsafe_set sc.sc_store lsid start;
        push_mem i lsid false start
      end
      else begin
        (* branch *)
        let done_t = issue + Array.unsafe_get plan.p_lat i in
        Array.unsafe_set sc_done i done_t;
        let var = Array.unsafe_get plan.p_brvar i in
        let t =
          Opn.claim_path s.opn ~ci:3 ~paths:p_paths
            ~off:(Array.unsafe_get p_voff var)
            ~len:(Array.unsafe_get p_vlen var) ~now:done_t
        in
        if i = inst.Exec.exit_inst && t > !resolve then resolve := t
      end
    end
  done;
  finish_instance s cfg ~resolve:!resolve

(* ------------------------------------------------------------------ *)
(* Whole-program simulation                                            *)
(* ------------------------------------------------------------------ *)

let empty_stats () =
  {
    cycles = 0; blocks = 0; branch_mispredicts = 0; callret_mispredicts = 0;
    load_flushes = 0; icache_misses = 0; dcache_misses = 0; l2_misses = 0;
    occupancy_weighted = 0.; occupancy_useful = 0.; peak_occupancy = 0;
    l1d_bytes = 0; l2_bytes = 0; dram_bytes = 0;
  }

let make_sim ?(config = prototype) (program : Block.program) =
  (* static planning: code layout plus one timing plan per block *)
  let plans : (string, plan) Hashtbl.t = Hashtbl.create 128 in
  let func_entry = Hashtbl.create 16 in
  let cursor = ref 0x4000000 in
  let max_insts = ref 1 and max_writes = ref 1 and max_lsid = ref 0 in
  List.iter
    (fun (f : Block.func) ->
      Hashtbl.replace func_entry f.Block.fname f.Block.entry;
      List.iter
        (fun (b : Block.t) ->
          let addr = !cursor in
          cursor := !cursor + block_bytes (Array.length b.Block.insts);
          if Array.length b.Block.insts > !max_insts then
            max_insts := Array.length b.Block.insts;
          (* bound on register writes an instance can emit: one per
             To_write target, whether reached from an instruction or a
             read slot *)
          let writes = ref 0 in
          let count_targets =
            List.iter (function
              | Isa.To_write _ -> incr writes
              | Isa.To_inst _ -> ())
          in
          Array.iter
            (fun (ins : Isa.inst) ->
              count_targets ins.Isa.targets;
              match ins.Isa.op with
              | Isa.Load (_, _, lsid) | Isa.Store (_, lsid) ->
                if lsid > !max_lsid then max_lsid := lsid
              | _ -> ())
            b.Block.insts;
          Array.iter
            (fun (r : Block.read) -> count_targets r.Block.rtargets)
            b.Block.reads;
          if !writes > !max_writes then max_writes := !writes;
          Hashtbl.replace plans b.Block.label (build_plan config b ~addr))
        f.Block.blocks)
    program.Block.funcs;
    {
      cfg = config;
      pred = Blockpred.create config.predictor;
      dep = Depend.create ();
      opn = Opn.create ();
      l1d = Cache.create config.l1d;
      l1i = Cache.create config.l1i;
      l2 = Cache.create config.l2;
      dram_free_at = 0;
      st = empty_stats ();
      plans;
      next_id = 1;
      ids = Hashtbl.create 8;
      func_entry;
      dt_pos = Array.init Isa.num_dt_banks Schedule.dt_position;
      scratch =
        make_scratch ~max_insts:!max_insts ~max_writes:!max_writes
          ~max_lsid:!max_lsid;
      reg_ready = Array.make Isa.num_regs 0;
      shadow_stack = [];
      prev = None;
      last_commit = 0;
      commits = Array.make config.window_blocks 0;
      seq = 0;
      infl_fetch = Array.make 64 0;
      infl_commit = Array.make 64 0;
      infl_size = Array.make 64 0;
      infl_head = 0;
      infl_len = 0;
      infl_insts = 0;
    }

let infl_push s fetch commit size =
    (* drop committed-before-this-fetch entries from the front (commit
       times are strictly increasing, so survivors form a suffix) *)
    while s.infl_len > 0 && s.infl_commit.(s.infl_head) <= fetch do
      s.infl_insts <- s.infl_insts - s.infl_size.(s.infl_head);
      s.infl_head <- (s.infl_head + 1) mod Array.length s.infl_fetch;
      s.infl_len <- s.infl_len - 1
    done;
    let cap = Array.length s.infl_fetch in
    if s.infl_len = cap then begin
      (* grow, unrolling the ring *)
      let cap' = 2 * cap in
      let f' = Array.make cap' 0 and c' = Array.make cap' 0 and z' = Array.make cap' 0 in
      for k = 0 to s.infl_len - 1 do
        let j = (s.infl_head + k) mod cap in
        f'.(k) <- s.infl_fetch.(j);
        c'.(k) <- s.infl_commit.(j);
        z'.(k) <- s.infl_size.(j)
      done;
      s.infl_fetch <- f';
      s.infl_commit <- c';
      s.infl_size <- z';
      s.infl_head <- 0
    end;
    let tail = (s.infl_head + s.infl_len) mod Array.length s.infl_fetch in
    s.infl_fetch.(tail) <- fetch;
    s.infl_commit.(tail) <- commit;
    s.infl_size.(tail) <- size;
    s.infl_len <- s.infl_len + 1;
    s.infl_insts <- s.infl_insts + size

(* One committed block instance: everything [run] does around the
   dataflow timing itself — fetch scheduling, I-cache, commit, register
   availability, next-block prediction, occupancy accounting.  [time]
   computes the dataflow portion; engines that compile plans substitute
   their own. *)
type time_fn = sim -> plan -> Exec.instance -> dispatch_start:int -> btime

let step_instance s ~(time : time_fn) (plan : plan) (inst : Exec.instance) =
  let config = s.cfg in
  let label_id = intern_plan s plan in
  let n = plan.p_n in
    (* 1. fetch start *)
    let frame_limit =
      if s.seq >= config.window_blocks then
        s.commits.(s.seq mod config.window_blocks)
      else 0
    in
    let fetch =
      match s.prev with
      | None -> 0
      | Some p ->
        if p.p_correct then imax (p.p_fetch + config.fetch_interval) frame_limit
        else begin
          (match p.p_kind with
          | Blockpred.Kjump -> s.st.branch_mispredicts <- s.st.branch_mispredicts + 1
          | Blockpred.Kcall | Blockpred.Kret ->
            s.st.callret_mispredicts <- s.st.callret_mispredicts + 1);
          imax (p.p_resolve + config.redirect_penalty) frame_limit
        end
    in
    (* 2. instruction fetch *)
    let ilat = icache_fetch s ~addr:plan.p_addr ~bytes:plan.p_bytes ~now:fetch in
    (* 3. dataflow *)
    let bt = time s plan inst ~dispatch_start:(fetch + ilat) in
    (* 4. commit: the distributed protocol adds latency but is pipelined,
       not serializing (the paper found block commit off the critical
       path) *)
    let commit = imax (bt.bt_done + config.commit_overhead) (s.last_commit + 1) in
    s.last_commit <- commit;
    s.commits.(s.seq mod config.window_blocks) <- commit;
    s.seq <- s.seq + 1;
    (* register availability for later blocks; reverse append order so a
       register written twice keeps the first write, as the seed did *)
    let sc = s.scratch in
    for k = sc.w_cnt - 1 downto 0 do
      s.reg_ready.(sc.w_reg.(k)) <- sc.w_time.(k)
    done;
    (* 5. next-block prediction *)
    let actual_label, kind =
      match inst.Exec.exit_dest with
      | Isa.Xjump l -> (Some l, Blockpred.Kjump)
      | Isa.Xcall (fname, retl) ->
        s.shadow_stack <- retl :: s.shadow_stack;
        (Hashtbl.find_opt s.func_entry fname, Blockpred.Kcall)
      | Isa.Xret -> (
        match s.shadow_stack with
        | [] -> (None, Blockpred.Kret)
        | retl :: rest ->
          s.shadow_stack <- rest;
          (Some retl, Blockpred.Kret))
    in
    let actual_id = Option.map (intern s) actual_label in
    let predicted = Blockpred.predict s.pred ~block:label_id in
    let correct = actual_id <> None && predicted = actual_id in
    (match actual_id with
    | Some target ->
      let exit_idx =
        let exits = plan.p_exits in
        let rec find k =
          if k >= Array.length exits then 0
          else if exits.(k) = inst.Exec.exit_inst then k
          else find (k + 1)
        in
        find 0
      in
      let fall =
        match inst.Exec.exit_dest with
        | Isa.Xcall (_, retl) -> intern s retl
        | _ -> 0
      in
      Blockpred.update s.pred
        {
          Blockpred.o_block = label_id;
          o_exit = exit_idx;
          o_kind = kind;
          o_target = target;
          o_fallthrough = fall;
        }
    | None -> ());
    s.prev <-
      Some { p_fetch = fetch; p_resolve = bt.bt_resolve; p_correct = correct;
             p_kind = kind };
    (* 6. occupancy accounting *)
    s.st.blocks <- s.st.blocks + 1;
    let obs = plan.p_obs in
    obs.bo_instances <- obs.bo_instances + 1;
    obs.bo_latency <- obs.bo_latency + (bt.bt_done - (fetch + ilat));
    obs.bo_residency <- obs.bo_residency + (commit - fetch);
    let useful =
      let u = ref 0 in
      let fd = inst.Exec.fired and us = inst.Exec.useful in
      for i = 0 to Array.length fd - 1 do
        if Array.unsafe_get fd i && Array.unsafe_get us i then incr u
      done;
      !u
    in
    let residency = imax 1 (commit - fetch) in
    s.st.occupancy_weighted <- s.st.occupancy_weighted +. float_of_int (n * residency);
    s.st.occupancy_useful <- s.st.occupancy_useful +. float_of_int (useful * residency);
    infl_push s fetch commit n;
    if s.infl_insts > s.st.peak_occupancy then s.st.peak_occupancy <- s.infl_insts

(* Assemble the public result once execution finished. *)
let collect_result s (exec_result : Exec.result) =
  s.st.cycles <- max 1 s.last_commit;
  {
    ret = exec_result.Exec.ret;
    exec = exec_result.Exec.stats;
    timing = s.st;
    opn = Opn.profile s.opn;
    opn_average_hops = Opn.average_hops s.opn;
    block_profile =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold
           (fun label (p : plan) acc ->
             if p.p_obs.bo_instances > 0 then (label, p.p_obs) :: acc else acc)
           s.plans []);
  }

let interp_time : time_fn =
 fun s plan inst ~dispatch_start ->
  time_block s s.cfg plan inst ~dispatch_start

let drive ?fuel s ~(time : time_fn) (program : Block.program) image ~entry ~args =
  let on_instance (inst : Exec.instance) =
    let plan = Hashtbl.find s.plans inst.Exec.iblock.Block.label in
    step_instance s ~time plan inst
  in
  let exec_result = Exec.run ?fuel ~on_instance program image ~entry ~args in
  collect_result s exec_result

let run ?config ?fuel (program : Block.program) image ~entry ~args =
  let s = make_sim ?config program in
  drive ?fuel s ~time:interp_time program image ~entry ~args

let ipc r =
  float_of_int r.exec.Exec.executed /. float_of_int (max 1 r.timing.cycles)

let useful_ipc r =
  float_of_int r.exec.Exec.useful /. float_of_int (max 1 r.timing.cycles)

let avg_window r = r.timing.occupancy_weighted /. float_of_int (max 1 r.timing.cycles)

let avg_window_useful r =
  r.timing.occupancy_useful /. float_of_int (max 1 r.timing.cycles)
