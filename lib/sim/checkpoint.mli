(** Simulation checkpoints: simulate a warm-up prefix once, snapshot the
    state, resume the tail later (possibly many times) without paying
    the prefix again.

    A checkpoint couples architectural state at a block boundary
    (register file, call stack, next label, memory image) with the
    microarchitectural warm state the paper's methodology cares about:
    block predictor, dependence predictor and the three caches.

    Architectural replay is exact; timing is approximate at the seam
    (the resumed clock, operand-network occupancy and in-flight window
    restart cold), so resumed cycle counts differ from the same tail of
    a full run by at most a few pipeline depths. *)

type t = {
  ck_snapshot : Trips_edge.Exec.snapshot;
  ck_image : Trips_tir.Image.t;
  ck_pred : Trips_predictor.Blockpred.t;
  ck_dep : Trips_predictor.Depend.t;
  ck_l1d : Trips_mem.Cache.t;
  ck_l1i : Trips_mem.Cache.t;
  ck_l2 : Trips_mem.Cache.t;
  ck_config : Core.config;
  ck_blocks : int;
}

val capture :
  ?config:Core.config ->
  ?fuel:int ->
  after:int ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  t option
(** Run the detailed simulator for [after] committed block instances and
    checkpoint at the next block boundary.  [None] if the program
    finishes first.  The passed image is mutated up to the capture
    point (the checkpoint stores its own copy). *)

val restore : t -> Trips_edge.Block.program -> Core.sim * Trips_tir.Image.t
(** Fresh simulator with the checkpoint's warm predictor/cache state
    spliced in, plus a private copy of the image: the composable
    primitive for resuming under any timing engine. *)

val resume : ?fuel:int -> t -> Trips_edge.Block.program -> Core.result
(** Simulate the program tail from the checkpoint under the interpreted
    engine.  [timing.cycles] counts from the resume point. *)
