(* Sampled simulation: SMARTS-style systematic sampling over block
   instances ([11] in PAPERS.md applies the same methodology family to
   conventional superscalars).

   Execution is always complete and exact — [Exec] interprets every
   block, so architectural results, functional statistics and the block
   execution-count profile match a full run.  What is sampled is the
   *timing* model: block instances cycle through

     detail-warm   (w blocks)  detailed model runs, measurement excluded
     detail-measure(u blocks)  detailed model runs, cycles-per-block kept
     fast-forward  (p-w-u)     functional warming only, clock frozen

   with period [p].  During fast-forward the block predictor and all
   three caches keep being trained/touched (state warming), so each
   measurement interval sees realistic microarchitectural state after a
   short re-warm of the frozen clock-dependent structures (operand
   network occupancy, in-flight window, register-availability times).

   The estimate is the classic systematic-sampling one: mean measured
   cycles-per-block scaled by the total block count, with a Student-t
   95% confidence interval from the variance across intervals.  Runs
   too short to produce enough intervals fall back to full detailed
   simulation (exact, CI 0). *)

module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa
module Exec = Trips_edge.Exec
module Blockpred = Trips_predictor.Blockpred
module Cache = Trips_mem.Cache

type params = {
  sp_period : int;     (* blocks per sampling period *)
  sp_warm : int;       (* detailed blocks re-warming the clock state *)
  sp_measure : int;    (* detailed blocks actually measured *)
  sp_min_intervals : int;  (* fewer measured intervals -> full fallback *)
}

let default_params =
  { sp_period = 1024; sp_warm = 48; sp_measure = 80; sp_min_intervals = 24 }

type estimate = {
  es_cycles : float;           (* estimated whole-run cycles *)
  es_ci95 : float;             (* +/- at 95% confidence *)
  es_intervals : int;          (* measurement intervals used *)
  es_measured_blocks : int;    (* block instances timed in detail *)
  es_total_blocks : int;       (* block instances executed *)
  es_cpb_mean : float;         (* mean measured cycles per block *)
  es_cpb_stddev : float;       (* across-interval standard deviation *)
  es_full : bool;              (* true: exact full simulation, CI 0 *)
}

(* Two-sided Student-t critical values at 95% for small df; 1.96 in the
   limit.  Indexed by df, capped. *)
let t95 df =
  let table =
    [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
       2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101;
       2.093; 2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052;
       2.048; 2.045; 2.042 |]
  in
  if df <= 0 then infinity
  else if df <= 30 then table.(df - 1)
  else if df <= 60 then 2.00
  else if df <= 120 then 1.98
  else 1.96

(* Functional warming of one block instance: exactly the predictor
   training and cache touches [Core.step_instance] performs, with every
   clock-coupled side effect omitted.  The shadow call stack must be
   maintained here too, or return prediction desynchronizes across
   fast-forward stretches. *)
let warm_instance (s : Core.sim) (plan : Core.plan) (inst : Exec.instance) =
  let label_id = Core.intern_plan s plan in
  (* instruction lines *)
  let line = (Cache.config s.Core.l1i).Cache.line in
  let first = plan.Core.p_addr / line
  and last = (plan.Core.p_addr + plan.Core.p_bytes - 1) / line in
  for l = first to last do
    let a = l * line in
    if not (Cache.access s.Core.l1i ~addr:a ~write:false) then
      ignore (Cache.access s.Core.l2 ~addr:a ~write:false)
  done;
  (* data accesses *)
  List.iter
    (fun (ev : Exec.mem_event) ->
      if not ev.Exec.ev_null then begin
        let write = not ev.Exec.ev_is_load in
        if not (Cache.access s.Core.l1d ~addr:ev.Exec.ev_addr ~write) then
          ignore (Cache.access s.Core.l2 ~addr:ev.Exec.ev_addr ~write)
      end)
    inst.Exec.mem_events;
  (* next-block predictor training, as in the detailed path *)
  let actual_label, kind =
    match inst.Exec.exit_dest with
    | Isa.Xjump l -> (Some l, Blockpred.Kjump)
    | Isa.Xcall (fname, retl) ->
      s.Core.shadow_stack <- retl :: s.Core.shadow_stack;
      (Hashtbl.find_opt s.Core.func_entry fname, Blockpred.Kcall)
    | Isa.Xret -> (
      match s.Core.shadow_stack with
      | [] -> (None, Blockpred.Kret)
      | retl :: rest ->
        s.Core.shadow_stack <- rest;
        (Some retl, Blockpred.Kret))
  in
  (match Option.map (Core.intern s) actual_label with
  | Some target ->
    let exit_idx =
      let exits = plan.Core.p_exits in
      let rec find k =
        if k >= Array.length exits then 0
        else if exits.(k) = inst.Exec.exit_inst then k
        else find (k + 1)
      in
      find 0
    in
    let fall =
      match inst.Exec.exit_dest with
      | Isa.Xcall (_, retl) -> Core.intern s retl
      | _ -> 0
    in
    Blockpred.update s.Core.pred
      {
        Blockpred.o_block = label_id;
        o_exit = exit_idx;
        o_kind = kind;
        o_target = target;
        o_fallthrough = fall;
      }
  | None -> ());
  (* execution counts keep accumulating so hot-block selection sees the
     true profile *)
  plan.Core.p_obs.Core.bo_instances <- plan.Core.p_obs.Core.bo_instances + 1

let exact_estimate (r : Core.result) =
  {
    es_cycles = float_of_int r.Core.timing.Core.cycles;
    es_ci95 = 0.;
    es_intervals = 0;
    es_measured_blocks = r.Core.exec.Exec.blocks;
    es_total_blocks = r.Core.exec.Exec.blocks;
    es_cpb_mean =
      float_of_int r.Core.timing.Core.cycles
      /. float_of_int (max 1 r.Core.exec.Exec.blocks);
    es_cpb_stddev = 0.;
    es_full = true;
  }

let run_report ?config ?fuel ?(threshold = Specialize.default_threshold) ?cache
    ?(params = default_params) (program : Block.program) image ~entry ~args =
  if params.sp_warm + params.sp_measure >= params.sp_period then
    invalid_arg "Sampled.run: warm + measure must be below the period";
  (* the specialized engine times the detailed stretches; compile-on-use
     so measurement intervals hit compiled plans immediately *)
  let image0 = Image.copy image in
  let s = Core.make_sim ?config program in
  let st = Specialize.make_state ?cache ~threshold s in
  let time = Specialize.time st in
  let samples = ref [] in
  let n_blocks = ref 0 in
  let measured_blocks = ref 0 in
  let measure_c0 = ref 0 in
  let detail = params.sp_warm + params.sp_measure in
  let on_instance (inst : Exec.instance) =
    let plan = Hashtbl.find s.Core.plans inst.Exec.iblock.Block.label in
    let phase = !n_blocks mod params.sp_period in
    if phase < detail then begin
      if phase = 0 && !n_blocks > 0 then
        (* re-enter the detailed model mid-run: continue the frozen clock
           smoothly, as if the previous block fetched at the freeze point
           and predicted correctly *)
        s.Core.prev <-
          Some
            {
              Core.p_fetch = s.Core.last_commit;
              p_resolve = s.Core.last_commit;
              p_correct = true;
              p_kind = Blockpred.Kjump;
            };
      if phase = params.sp_warm then measure_c0 := s.Core.last_commit;
      Core.step_instance s ~time plan inst;
      if phase = detail - 1 then begin
        samples :=
          float_of_int (s.Core.last_commit - !measure_c0)
          /. float_of_int params.sp_measure
          :: !samples;
        measured_blocks := !measured_blocks + params.sp_measure
      end
    end
    else warm_instance s plan inst;
    incr n_blocks
  in
  let exec_result = Exec.run ?fuel ~on_instance program image ~entry ~args in
  Specialize.flush st;
  let detailed = Core.collect_result s exec_result in
  let total = exec_result.Exec.stats.Exec.blocks in
  let n = List.length !samples in
  if total <= detail then
    (* the whole run fit inside the first detailed stretch: exact *)
    (detailed, exact_estimate detailed, Specialize.state_report st)
  else if n < params.sp_min_intervals then begin
    (* too short to bound the error: fall back to full detailed *)
    let full, rep =
      Specialize.run_report ?config ?fuel ~threshold ?cache program image0
        ~entry ~args
    in
    (full, exact_estimate full, rep)
  end
  else begin
    let xs = !samples in
    let nf = float_of_int n in
    let mean = List.fold_left ( +. ) 0. xs /. nf in
    let var =
      List.fold_left (fun a x -> a +. ((x -. mean) *. (x -. mean))) 0. xs
      /. (nf -. 1.)
    in
    let sd = sqrt var in
    let totalf = float_of_int total in
    let est =
      {
        es_cycles = mean *. totalf;
        es_ci95 = t95 (n - 1) *. sd /. sqrt nf *. totalf;
        es_intervals = n;
        es_measured_blocks = !measured_blocks;
        es_total_blocks = total;
        es_cpb_mean = mean;
        es_cpb_stddev = sd;
        es_full = false;
      }
    in
    (detailed, est, Specialize.state_report st)
  end

let run ?config ?fuel ?threshold ?cache ?params program image ~entry ~args =
  let detailed, est, _ =
    run_report ?config ?fuel ?threshold ?cache ?params program image ~entry
      ~args
  in
  (detailed, est)
