(** Cycle-level model of one TRIPS processor.

    Trace-driven: the architectural dataflow comes from
    {!Trips_edge.Exec} block instances; this module assigns every fired
    instruction an issue and completion cycle by modeling

    - distributed fetch: next-block prediction at fetch time, I-cache
      access over the block's (compressed) footprint, 16-wide dispatch;
    - dataflow issue: an instruction fires when its operands arrive over
      the operand network from their producers' tiles (one issue per ET per
      cycle, one operand per OPN link per cycle);
    - the banked L1 D-cache behind the data tiles, with an LSQ that
      speculates loads and flushes on store-load violations, feeding the
      load-wait table;
    - block completion (all writes at the RTs, all LSIDs at the DTs, one
      branch at the GT), in-order commit, and an eight-block window;
    - misprediction redirects that restart fetch at branch resolution.

    The statistics cover Figs 6, 8, 9 and Table 3. *)

type config = {
  predictor : Trips_predictor.Blockpred.config;
  fetch_interval : int;        (* min cycles between back-to-back fetches *)
  dispatch_rate : int;         (* instructions dispatched per cycle *)
  redirect_penalty : int;      (* fetch restart after a misprediction *)
  flush_penalty : int;         (* pipeline flush on a load violation *)
  commit_overhead : int;       (* distributed commit protocol *)
  window_blocks : int;         (* 8 in the prototype *)
  l1d : Trips_mem.Cache.config;
  l1i : Trips_mem.Cache.config;
  l2 : Trips_mem.Cache.config;
  dram : Trips_mem.Hier.dram_config;
}

val prototype : config

type stats = {
  mutable cycles : int;
  mutable blocks : int;
  mutable branch_mispredicts : int;       (* jump-exit mispredictions *)
  mutable callret_mispredicts : int;      (* call/return mispredictions *)
  mutable load_flushes : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable occupancy_weighted : float;     (* Σ insts-in-flight per cycle *)
  mutable occupancy_useful : float;
  mutable peak_occupancy : int;
  mutable l1d_bytes : int;
  mutable l2_bytes : int;
  mutable dram_bytes : int;
}

type block_obs = {
  mutable bo_instances : int;    (* committed instances of the block *)
  mutable bo_latency : int;      (* Σ (dataflow done - dispatch start) *)
  mutable bo_residency : int;    (* Σ (commit - fetch) *)
}
(** Measured per-block cycle counts, the reference the static timing
    analyzer ({!Trips_analysis.Timing}) cross-validates against:
    [bo_latency / bo_instances] is the mean measured dataflow critical
    path of the block, on the same clock as the analyzer's prediction. *)

type result = {
  ret : Trips_tir.Ty.value option;
  exec : Trips_edge.Exec.stats;           (* architectural counts *)
  timing : stats;
  opn : Trips_noc.Opn.profile;
  opn_average_hops : float;
  block_profile : (string * block_obs) list;  (* sorted by block label *)
}

val run :
  ?config:config ->
  ?fuel:int ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result

val ipc : result -> float
(** Executed instructions per cycle (the metric of Fig 9). *)

val useful_ipc : result -> float

val avg_window : result -> float
(** Average instructions in flight (Fig 6). *)

val avg_window_useful : result -> float

(** {1 Engine hooks}

    The whole-program driver, static plans and per-instance machinery are
    exposed so engines layered on top — the plan specializer
    ({!Trips_sim.Specialize}) and checkpointing ({!Trips_sim.Checkpoint})
    — can reuse the exact model state transitions instead of duplicating
    them.  Everything below is Core's internal representation; treat it
    as read-mostly and keep any mutation bit-identical to what
    {!time_block} / {!step_instance} would have done. *)

type ext = ..
(** Open extension slot on a {!plan}: engines attach derived/compiled
    per-block state ({!Trips_sim.Specialize} stores its compiled entry). *)

type ext += Ext_none

val k_alu : int
val k_load : int
val k_store : int
val k_branch : int

type plan = {
  p_label : string;
  mutable p_id : int;                (* interned label id; -1 until first use *)
  p_addr : int;                      (* code address *)
  p_bytes : int;                     (* compressed footprint *)
  p_n : int;
  p_pos : (int * int) array;         (* per-inst ET mesh position *)
  p_tile : int array;                (* per-inst ET index *)
  p_need : int array;                (* operand arity + predicate slot *)
  p_lat : int array;                 (* Isa.latency per instruction *)
  p_kind : int array;                (* k_alu / k_load / k_store / k_branch *)
  p_lsid : int array;                (* loads and stores; -1 otherwise *)
  p_wait : int array;                (* Depend site id of the wait check *)
  p_viol : int array;                (* Depend site id of violation learning *)
  p_toff : int array;                (* n+1 offsets into p_tgt *)
  p_tgt : int array;
  p_wreg : int array;                (* per To_write occurrence: arch reg *)
  p_wpos : (int * int) array;        (* and its RT mesh position *)
  p_disp : int array;                (* dispatch offset: 1 + i / rate *)
  p_disp_done : int;                 (* offset of last dispatch *)
  p_zero : int array;                (* indices with p_need = 0, ascending *)
  p_rd_reg : int array;              (* read slots: arch reg *)
  p_rd_pos : (int * int) array;      (* and its RT mesh position *)
  p_roff : int array;                (* reads+1 offsets into p_rtgt *)
  p_rtgt : int array;
  p_exits : int array;               (* branch inst indices, ascending *)
  p_tvar : int array;                (* per p_tgt entry: variant base *)
  p_tci : int array;                 (* per p_tgt entry: message class *)
  p_dtvar : int array;               (* per inst: ET->DT variant base, -1 *)
  p_brvar : int array;               (* per branch inst: ET->GT variant, -1 *)
  p_rvar : int array;                (* per p_rtgt To_inst entry: RT->ET *)
  p_voff : int array;
  p_vlen : int array;
  p_paths : int array;
  p_obs : block_obs;                 (* measured profile, updated in place *)
  mutable p_ext : ext;               (* engine extension (specializer) *)
}

type scratch = {
  sc_cnt : int array;                (* arrived operand count per inst *)
  sc_arr : int array;                (* max arrival time per inst *)
  sc_done : int array;               (* completion time, -1 = pending *)
  sc_et : int array;                 (* per-ET next free issue cycle *)
  sc_dt : int array;                 (* per-DT-bank next free cycle *)
  sc_store : int array;              (* per-LSID store DT arrival *)
  sc_ev_addr : int array;            (* memory event of the inst, addr *)
  sc_ev_width : int array;           (* bytes *)
  sc_ev_bank : int array;            (* L1D bank of the event address *)
  sc_ev_null : bool array;
  sc_has_ev : bool array;
  mutable q_head : int array;        (* calendar queue: time offset -> inst *)
  mutable q_bits : int array;        (* bucket-occupancy bitmap, 32/word *)
  q_next : int array;
  mutable q_cursor : int;
  mutable q_count : int;
  mutable q_base : int;
  m_lsid : int array;                (* per-instance memory events (SoA) *)
  m_load : bool array;
  m_addr : int array;
  m_width : int array;
  m_null : bool array;
  m_time : int array;
  m_viol : int array;
  mutable m_cnt : int;
  v_load : int array;                (* violation sweep scratch *)
  v_store : int array;
  w_reg : int array;                 (* register writes of the instance *)
  w_time : int array;
  mutable w_cnt : int;
}

type sim = {
  cfg : config;
  mutable pred : Trips_predictor.Blockpred.t;
  mutable dep : Trips_predictor.Depend.t;
  opn : Trips_noc.Opn.t;
  mutable l1d : Trips_mem.Cache.t;
  mutable l1i : Trips_mem.Cache.t;
  mutable l2 : Trips_mem.Cache.t;
  mutable dram_free_at : int;
  st : stats;
  plans : (string, plan) Hashtbl.t;
  mutable next_id : int;
  ids : (string, int) Hashtbl.t;
  func_entry : (string, string) Hashtbl.t;
  dt_pos : (int * int) array;
  scratch : scratch;
  mutable reg_ready : int array;
  mutable shadow_stack : string list;
  mutable prev : prev option;
  mutable last_commit : int;
  mutable commits : int array;
  mutable seq : int;
  mutable infl_fetch : int array;
  mutable infl_commit : int array;
  mutable infl_size : int array;
  mutable infl_head : int;
  mutable infl_len : int;
  mutable infl_insts : int;
}

and prev = {
  p_fetch : int;
  p_resolve : int;
  p_correct : bool;
  p_kind : Trips_predictor.Blockpred.kind;
}

type btime = {
  bt_resolve : int;                  (* branch resolution at the GT *)
  bt_done : int;                     (* all outputs produced *)
  bt_flushed : bool;
}

type time_fn = sim -> plan -> Trips_edge.Exec.instance -> dispatch_start:int -> btime

val build_plan : config -> Trips_edge.Block.t -> addr:int -> plan

val make_sim : ?config:config -> Trips_edge.Block.program -> sim
(** Static planning plus fresh model state; [run] is [drive] over this. *)

val intern_plan : sim -> plan -> int
val intern : sim -> string -> int

val queue_push : scratch -> int -> int -> unit
val queue_pop : scratch -> int
val imax : int -> int -> int

val icache_fetch : sim -> addr:int -> bytes:int -> now:int -> int
val l2_access : sim -> addr:int -> write:bool -> now:int -> int

val time_block :
  sim -> config -> plan -> Trips_edge.Exec.instance -> dispatch_start:int -> btime
(** The interpretive dataflow timer: the reference any compiled engine
    must match bit for bit. *)

val finish_instance : sim -> config -> resolve:int -> btime
(** End-of-instance protocol over the scratch memory events: violation
    sweep, load-wait learning, completion/flush arithmetic.  Every
    dataflow timer must end with exactly this. *)

val interp_time : time_fn

val step_instance : sim -> time:time_fn -> plan -> Trips_edge.Exec.instance -> unit
(** Fetch scheduling, I-cache, [time], commit, register availability,
    prediction and occupancy accounting for one committed instance. *)

val collect_result : sim -> Trips_edge.Exec.result -> result

val drive :
  ?fuel:int ->
  sim ->
  time:time_fn ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result
(** [run] with the model state and the dataflow timer supplied by the
    caller: the seam the specialized engine plugs into. *)

val block_bytes : int -> int
(** Compressed code footprint of an [n]-instruction block (§4.4). *)
