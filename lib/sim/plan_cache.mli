(** Content-hashed cache of the specializer's derived per-block tables.

    Two layers under one lookup: an in-memory table (repeat sweeps inside
    one process — the harness, the serve daemon — skip derivation
    entirely) backed by an optional on-disk store reusing
    {!Trips_engine.Result_cache} raw-payload conventions (digest-named
    files carrying the verbatim key, temp-file/fsync/rename writes), so
    repeat runs across processes skip it too.

    Keys come from the caller ({!Specialize.plan_key}: a digest of
    exactly the plan columns a derivation reads, with {!schema} mixed
    in).  The typed {!find}/{!store} pair is [Marshal]-style unsafe;
    safety rests on the key fully determining the stored type, which the
    key's schema component guarantees for the specializer's use. *)

type t

type counters = {
  mutable hits_mem : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable stores : int;
}

val create : ?dir:string -> unit -> t
(** No [dir]: in-memory only. *)

val counters : t -> counters
val dir : t -> string option

val find : t -> key:string -> 'a option
val store : t -> key:string -> 'a -> unit

val schema : int
