(** Reference cycle-level model of one TRIPS processor — the
    pre-optimization simulator, kept verbatim as the golden baseline.

    {!Core} is a hot-path rewrite of this module (static per-block timing
    plans, allocation-free instance timing) that must stay bit-identical:
    the parity suite ([test/test_sim_parity.ml]) asserts both produce the
    same statistics on every registered workload, and [trips_run simbench]
    measures the optimized simulator's speedup against this one on the
    same machine, which is what [check.sh] gates.  Do not "fix" or speed
    up this module: its value is that it does not change.

    Trace-driven: the architectural dataflow comes from
    {!Trips_edge.Exec} block instances; this module assigns every fired
    instruction an issue and completion cycle by modeling

    - distributed fetch: next-block prediction at fetch time, I-cache
      access over the block's (compressed) footprint, 16-wide dispatch;
    - dataflow issue: an instruction fires when its operands arrive over
      the operand network from their producers' tiles (one issue per ET per
      cycle, one operand per OPN link per cycle);
    - the banked L1 D-cache behind the data tiles, with an LSQ that
      speculates loads and flushes on store-load violations, feeding the
      load-wait table;
    - block completion (all writes at the RTs, all LSIDs at the DTs, one
      branch at the GT), in-order commit, and an eight-block window;
    - misprediction redirects that restart fetch at branch resolution.

    The statistics cover Figs 6, 8, 9 and Table 3. *)

type config = {
  predictor : Trips_predictor.Blockpred.config;
  fetch_interval : int;        (* min cycles between back-to-back fetches *)
  dispatch_rate : int;         (* instructions dispatched per cycle *)
  redirect_penalty : int;      (* fetch restart after a misprediction *)
  flush_penalty : int;         (* pipeline flush on a load violation *)
  commit_overhead : int;       (* distributed commit protocol *)
  window_blocks : int;         (* 8 in the prototype *)
  l1d : Trips_mem.Cache.config;
  l1i : Trips_mem.Cache.config;
  l2 : Trips_mem.Cache.config;
  dram : Trips_mem.Hier.dram_config;
}

val prototype : config

type stats = {
  mutable cycles : int;
  mutable blocks : int;
  mutable branch_mispredicts : int;       (* jump-exit mispredictions *)
  mutable callret_mispredicts : int;      (* call/return mispredictions *)
  mutable load_flushes : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable occupancy_weighted : float;     (* Σ insts-in-flight per cycle *)
  mutable occupancy_useful : float;
  mutable peak_occupancy : int;
  mutable l1d_bytes : int;
  mutable l2_bytes : int;
  mutable dram_bytes : int;
}

type block_obs = {
  mutable bo_instances : int;    (* committed instances of the block *)
  mutable bo_latency : int;      (* Σ (dataflow done - dispatch start) *)
  mutable bo_residency : int;    (* Σ (commit - fetch) *)
}
(** Measured per-block cycle counts, the reference the static timing
    analyzer ({!Trips_analysis.Timing}) cross-validates against:
    [bo_latency / bo_instances] is the mean measured dataflow critical
    path of the block, on the same clock as the analyzer's prediction. *)

type result = {
  ret : Trips_tir.Ty.value option;
  exec : Trips_edge.Exec.stats;           (* architectural counts *)
  timing : stats;
  opn : Trips_noc.Opn.profile;
  opn_average_hops : float;
  block_profile : (string * block_obs) list;  (* sorted by block label *)
}

val run :
  ?config:config ->
  ?fuel:int ->
  Trips_edge.Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result

val ipc : result -> float
(** Executed instructions per cycle (the metric of Fig 9). *)

val useful_ipc : result -> float

val avg_window : result -> float
(** Average instructions in flight (Fig 6). *)

val avg_window_useful : result -> float
