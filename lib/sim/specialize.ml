module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Exec = Trips_edge.Exec
module Depend = Trips_predictor.Depend
module Cache = Trips_mem.Cache
module Opn = Trips_noc.Opn
module Result_cache = Trips_engine.Result_cache

(* The hot-block specializer: per-block partial evaluation of the
   static timing plan's operand-network accounting.

   [Core.time_block] pays, per packet, a [Opn.claim_path] call that
   updates five profile counters (per-class hop histogram, packet, hop
   and contention totals) besides the real occupancy work of ~1.5 hops.
   Here each block past an execution-count threshold gets a compiled
   entry: every static path variant is resolved once to a "cell" — a
   distinct (message class, hop count) pair of the block — and the hot
   path claims links through [Opn.claim_path_quiet] (identical
   probe/claim sequence, no histogram work) while bumping one per-block
   cell counter.  Cells are flushed into the shared profile once per
   run; packet/hop/histogram totals are order-independent integer sums,
   so the published profile is bit-identical to per-packet accounting.
   Occupancy claims — the only order-sensitive shared structure — replay
   the interpreter's exact sequence, so the engine is bit-identical to
   [Core] (and hence [Core_ref]) on every statistic.

   An earlier iteration of this pass compiled each instruction into a
   step closure chain (latencies, targets and link ids baked into
   closure environments, no interpretive dispatch).  Measured on the
   full registry it was *slower* than the interpreter: the per-step and
   per-message indirect calls cost more than the plan-walking they
   replaced, and hoisting the claim loop out of [Opn] lost the
   compile-time folding of [window]/[nlinks].  The surviving design
   keeps the interpreter's flat drain — branch-predictable dispatch over
   contiguous plan columns — and specializes the data instead: resolved
   cells, batched counters, quiet claims.

   Cold blocks fall back to [Core.time_block], so short programs pay no
   compilation cost; [~threshold:0] compiles everything on first use
   (parity suites, fuzzing).  Derived tables are pure data keyed by a
   content hash of the plan columns they read, cached in memory and on
   disk through [Plan_cache]. *)

(* ------------------------------------------------------------------ *)
(* Derived tables: pure data, content-hash cacheable                   *)
(* ------------------------------------------------------------------ *)

(* One "slot" per static path variant of the plan (same indexing as
   [p_tvar]/[p_dtvar]/[p_brvar]/[p_rvar]); a "cell" is a distinct
   (message class, hop count) pair of the block — what the batched
   profile accounting needs to reconstruct the exact per-class hop
   histogram, packet and hop totals at flush time. *)
type tables = {
  tb_cell_ci : int array;       (* cell -> OPN class index *)
  tb_cell_len : int array;      (* cell -> hop count *)
  tb_slot_cell : int array;     (* variant -> cell *)
  tb_slot_ids : int array array;(* variant -> link ids, claim order *)
}

let derive (plan : Core.plan) : tables =
  let nvar = Array.length plan.Core.p_voff in
  let slot_ci = Array.make (max 1 nvar) (-1) in
  let n = plan.Core.p_n in
  let banks = Isa.num_dt_banks in
  (* recover each variant's message class from the send sites, walking
     the same structure [build_plan] allocated variants from *)
  for i = 0 to n - 1 do
    let is_load = plan.Core.p_kind.(i) = Core.k_load in
    for k = plan.Core.p_toff.(i) to plan.Core.p_toff.(i + 1) - 1 do
      let base = plan.Core.p_tvar.(k) in
      if is_load && plan.Core.p_tgt.(k) >= 0 then
        for b = 0 to banks - 1 do
          slot_ci.(base + b) <- plan.Core.p_tci.(k)
        done
      else slot_ci.(base) <- plan.Core.p_tci.(k)
    done;
    (if plan.Core.p_dtvar.(i) >= 0 then
       let base = plan.Core.p_dtvar.(i) in
       for b = 0 to banks - 1 do
         slot_ci.(base + b) <- Opn.class_index Opn.Et_dt
       done);
    if plan.Core.p_brvar.(i) >= 0 then
      slot_ci.(plan.Core.p_brvar.(i)) <- Opn.class_index Opn.Et_gt
  done;
  Array.iter
    (fun v -> if v >= 0 then slot_ci.(v) <- Opn.class_index Opn.Rt_et)
    plan.Core.p_rvar;
  (* distinct (class, hops) cells *)
  let cells = Hashtbl.create 16 in
  let cell_rev = ref [] and ncells = ref 0 in
  let cell_of ci len =
    match Hashtbl.find_opt cells (ci, len) with
    | Some c -> c
    | None ->
      let c = !ncells in
      incr ncells;
      Hashtbl.replace cells (ci, len) c;
      cell_rev := (ci, len) :: !cell_rev;
      c
  in
  let slot_cell = Array.make (max 1 nvar) (-1) in
  let slot_ids = Array.make (max 1 nvar) [||] in
  for v = 0 to nvar - 1 do
    if slot_ci.(v) >= 0 then begin
      let len = plan.Core.p_vlen.(v) in
      slot_cell.(v) <- cell_of slot_ci.(v) len;
      slot_ids.(v) <- Array.sub plan.Core.p_paths plan.Core.p_voff.(v) len
    end
  done;
  let cells_a = Array.of_list (List.rev !cell_rev) in
  {
    tb_cell_ci = Array.map fst cells_a;
    tb_cell_len = Array.map snd cells_a;
    tb_slot_cell = slot_cell;
    tb_slot_ids = slot_ids;
  }

(* Content-hash key of a plan's derivation: exactly the static columns
   [derive] reads (the block's code and config already determined them),
   plus the table schema version.  [No_sharing] keeps the encoding
   canonical, so equal blocks under equal configs produce equal keys
   across programs, runs and processes. *)
let plan_key (p : Core.plan) =
  let material =
    Marshal.to_string
      ( Plan_cache.schema,
        (p.Core.p_kind, p.Core.p_toff, p.Core.p_tgt, p.Core.p_tvar, p.Core.p_tci),
        (p.Core.p_dtvar, p.Core.p_brvar, p.Core.p_rvar, p.Core.p_roff, p.Core.p_rtgt),
        (p.Core.p_voff, p.Core.p_vlen, p.Core.p_paths) )
      [ Marshal.No_sharing ]
  in
  Result_cache.key
    ~parts:
      [
        "specialize";
        string_of_int Plan_cache.schema;
        Digest.to_hex (Digest.string material);
      ]

(* ------------------------------------------------------------------ *)
(* Compiled entries and per-run state                                  *)
(* ------------------------------------------------------------------ *)

type centry = {
  ce_cnt : int array;        (* per-cell packet counts (batched) *)
  ce_vcell : int array;      (* path variant -> cell (shared, read-only) *)
  ce_cells_ci : int array;
  ce_cells_len : int array;
}

type Core.ext += Compiled of centry

type report = {
  rp_blocks_compiled : int;        (* plans instantiated this run *)
  rp_tables_derived : int;         (* derivations computed (cache misses) *)
  rp_cache_hits_mem : int;
  rp_cache_hits_disk : int;
  rp_interpreted : int;            (* instances timed by the fallback *)
}

type state = {
  sim : Core.sim;
  threshold : int;
  pcache : Plan_cache.t option;
  mutable entries : centry list;      (* instantiated this run, for flush *)
  mutable n_compiled : int;
  mutable n_derived : int;
  mutable n_hits_mem : int;
  mutable n_hits_disk : int;
  mutable n_interp : int;
}

let make_state ?cache ~threshold sim =
  {
    sim;
    threshold;
    pcache = cache;
    entries = [];
    n_compiled = 0;
    n_derived = 0;
    n_hits_mem = 0;
    n_hits_disk = 0;
    n_interp = 0;
  }

let tables_of st plan =
  match st.pcache with
  | None ->
    st.n_derived <- st.n_derived + 1;
    derive plan
  | Some pc -> (
    let key = plan_key plan in
    let before = Plan_cache.counters pc in
    let mem0 = before.Plan_cache.hits_mem and disk0 = before.Plan_cache.hits_disk in
    match Plan_cache.find pc ~key with
    | Some (tb : tables) ->
      let after = Plan_cache.counters pc in
      if after.Plan_cache.hits_mem > mem0 then
        st.n_hits_mem <- st.n_hits_mem + 1;
      if after.Plan_cache.hits_disk > disk0 then
        st.n_hits_disk <- st.n_hits_disk + 1;
      tb
    | None ->
      st.n_derived <- st.n_derived + 1;
      let tb = derive plan in
      Plan_cache.store pc ~key tb;
      tb)

(* ------------------------------------------------------------------ *)
(* Instantiation and the specialized drain                             *)
(* ------------------------------------------------------------------ *)

let compile st (plan : Core.plan) : centry =
  let tb = tables_of st plan in
  let ce =
    {
      ce_cnt = Array.make (max 1 (Array.length tb.tb_cell_ci)) 0;
      ce_vcell = tb.tb_slot_cell;
      ce_cells_ci = tb.tb_cell_ci;
      ce_cells_len = tb.tb_cell_len;
    }
  in
  st.entries <- ce :: st.entries;
  st.n_compiled <- st.n_compiled + 1;
  ce

(* [Core.time_block] with the specialized operand-network accounting:
   every [Opn.claim_path] becomes [Opn.claim_path_quiet] (identical
   probe/claim sequence over the occupancy window, contention summed
   directly) plus one increment of the variant's batched cell counter.
   Everything else — resets, event ingestion, read injection, the
   readiness-ordered drain, violation sweep — must mirror the
   interpreter statement for statement: the contract is bit identity. *)
let time_compiled st (plan : Core.plan) (ce : centry) (inst : Exec.instance)
    ~dispatch_start : Core.btime =
  let s = st.sim in
  let n = plan.Core.p_n in
  let fired = inst.Exec.fired in
  let sc = s.Core.scratch in
  let sc_cnt = sc.Core.sc_cnt
  and sc_arr = sc.Core.sc_arr
  and sc_done = sc.Core.sc_done in
  let sc_has_ev = sc.Core.sc_has_ev in
  let p_need = plan.Core.p_need
  and p_disp = plan.Core.p_disp
  and p_pos = plan.Core.p_pos in
  let p_tgt = plan.Core.p_tgt and p_toff = plan.Core.p_toff in
  let cnt = ce.ce_cnt and vcell = ce.ce_vcell in
  let opn = s.Core.opn in
  (* reset instance-varying scratch *)
  for i = 0 to n - 1 do
    Array.unsafe_set sc_cnt i 0;
    Array.unsafe_set sc_arr i min_int;
    Array.unsafe_set sc_done i (-1);
    Array.unsafe_set sc_has_ev i false
  done;
  Array.fill sc.Core.sc_et 0 (Array.length sc.Core.sc_et) 0;
  Array.fill sc.Core.sc_dt 0 (Array.length sc.Core.sc_dt) 0;
  Array.fill sc.Core.sc_store 0 (Array.length sc.Core.sc_store) min_int;
  sc.Core.q_cursor <- 0;
  sc.Core.q_count <- 0;
  sc.Core.q_base <- dispatch_start;
  sc.Core.m_cnt <- 0;
  sc.Core.w_cnt <- 0;
  (* memory-event lookup for fired loads/stores *)
  List.iter
    (fun (ev : Exec.mem_event) ->
      let i = ev.Exec.ev_inst in
      sc.Core.sc_ev_addr.(i) <- ev.Exec.ev_addr;
      sc.Core.sc_ev_width.(i) <- Ty.bytes_of_width ev.Exec.ev_width;
      sc.Core.sc_ev_bank.(i) <- Cache.bank_of s.Core.l1d ~addr:ev.Exec.ev_addr;
      sc.Core.sc_ev_null.(i) <- ev.Exec.ev_null;
      sc_has_ev.(i) <- true)
    inst.Exec.mem_events;
  let dispatch_done = dispatch_start + plan.Core.p_disp_done in
  let resolve = ref (dispatch_start + 1) in
  let push_write reg t =
    sc.Core.w_reg.(sc.Core.w_cnt) <- reg;
    sc.Core.w_time.(sc.Core.w_cnt) <- t;
    sc.Core.w_cnt <- sc.Core.w_cnt + 1
  in
  let push_mem i lsid is_load t =
    let k = sc.Core.m_cnt in
    Array.unsafe_set sc.Core.m_lsid k lsid;
    Array.unsafe_set sc.Core.m_load k is_load;
    Array.unsafe_set sc.Core.m_addr k (Array.unsafe_get sc.Core.sc_ev_addr i);
    Array.unsafe_set sc.Core.m_width k (Array.unsafe_get sc.Core.sc_ev_width i);
    Array.unsafe_set sc.Core.m_null k (Array.unsafe_get sc.Core.sc_ev_null i);
    Array.unsafe_set sc.Core.m_time k t;
    Array.unsafe_set sc.Core.m_viol k (Array.unsafe_get plan.Core.p_viol i);
    sc.Core.m_cnt <- k + 1
  in
  let arrive j t =
    if Array.unsafe_get fired j then begin
      if t > Array.unsafe_get sc_arr j then Array.unsafe_set sc_arr j t;
      let c = Array.unsafe_get sc_cnt j + 1 in
      Array.unsafe_set sc_cnt j c;
      if c = Array.unsafe_get p_need j then
        Core.queue_push sc
          (Core.imax
             (dispatch_start + Array.unsafe_get p_disp j)
             (Array.unsafe_get sc_arr j))
          j
    end
  in
  let p_tvar = plan.Core.p_tvar in
  let p_voff = plan.Core.p_voff
  and p_vlen = plan.Core.p_vlen
  and p_paths = plan.Core.p_paths in
  let deliver_targets i completion =
    let is_load = Array.unsafe_get plan.Core.p_kind i = Core.k_load in
    if is_load && not (Array.unsafe_get sc_has_ev i) then begin
      (* squashed load with no event (defensive): deliver from the ET.
         [Opn.send] routes dynamically and does its own (per-packet)
         profile accounting — bit-identical to the interpreter's
         fallback, which uses the same calls in the same order. *)
      let src_pos = Array.unsafe_get p_pos i in
      for k = Array.unsafe_get p_toff i to Array.unsafe_get p_toff (i + 1) - 1
      do
        let v = Array.unsafe_get p_tgt k in
        if v >= 0 then
          arrive v
            (Opn.send opn ~src:src_pos ~dst:(Array.unsafe_get p_pos v)
               Opn.Dt_et ~now:completion)
        else begin
          let w = -v - 1 in
          push_write plan.Core.p_wreg.(w)
            (Opn.send opn ~src:src_pos ~dst:plan.Core.p_wpos.(w) Opn.Et_rt
               ~now:completion)
        end
      done
    end
    else begin
      (* loads deliver from the data tile of the accessed bank: their
         To_inst edges carry one path variant per bank *)
      let bank_add =
        if is_load then Array.unsafe_get sc.Core.sc_ev_bank i else 0
      in
      for k = Array.unsafe_get p_toff i to Array.unsafe_get p_toff (i + 1) - 1
      do
        let v = Array.unsafe_get p_tgt k in
        if v >= 0 then begin
          let var = Array.unsafe_get p_tvar k + bank_add in
          let c = Array.unsafe_get vcell var in
          Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
          let len = Array.unsafe_get p_vlen var in
          arrive v
            (if len = 0 then completion
             else
               Opn.claim_path_quiet opn ~paths:p_paths
                 ~off:(Array.unsafe_get p_voff var)
                 ~len ~now:completion)
        end
        else begin
          let w = -v - 1 in
          let var = Array.unsafe_get p_tvar k in
          let c = Array.unsafe_get vcell var in
          Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
          let len = Array.unsafe_get p_vlen var in
          push_write plan.Core.p_wreg.(w)
            (if len = 0 then completion
             else
               Opn.claim_path_quiet opn ~paths:p_paths
                 ~off:(Array.unsafe_get p_voff var)
                 ~len ~now:completion)
        end
      done
    end
  in
  (* inject reads *)
  let nr = Array.length plan.Core.p_rd_reg in
  for r = 0 to nr - 1 do
    let avail =
      Core.imax dispatch_done s.Core.reg_ready.(plan.Core.p_rd_reg.(r))
    in
    for k = plan.Core.p_roff.(r) to plan.Core.p_roff.(r + 1) - 1 do
      let v = plan.Core.p_rtgt.(k) in
      if v >= 0 then begin
        let var = plan.Core.p_rvar.(k) in
        let c = Array.unsafe_get vcell var in
        Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
        let len = Array.unsafe_get p_vlen var in
        arrive v
          (if len = 0 then avail
           else
             Opn.claim_path_quiet opn ~paths:p_paths
               ~off:(Array.unsafe_get p_voff var)
               ~len ~now:avail)
      end
      else push_write plan.Core.p_wreg.(-v - 1) avail
    done
  done;
  (* zero-operand fired instructions are ready once dispatched *)
  Array.iter
    (fun i ->
      if Array.unsafe_get fired i then
        Core.queue_push sc (dispatch_start + Array.unsafe_get p_disp i) i)
    plan.Core.p_zero;
  (* process in readiness-time order so operand-network link reservations
     stay chronological: contention then reflects genuine overlap *)
  let continue_ = ref true in
  while !continue_ do
    let i = Core.queue_pop sc in
    if i < 0 then continue_ := false
    else if Array.unsafe_get sc_done i < 0 then begin
      let operand_ready =
        Core.imax
          (dispatch_start + Array.unsafe_get p_disp i)
          (Array.unsafe_get sc_arr i)
      in
      let tile = Array.unsafe_get plan.Core.p_tile i in
      let issue = Core.imax operand_ready (Array.unsafe_get sc.Core.sc_et tile) in
      Array.unsafe_set sc.Core.sc_et tile (issue + 1);
      let kind = Array.unsafe_get plan.Core.p_kind i in
      if kind = Core.k_alu then begin
        let done_t = issue + Array.unsafe_get plan.Core.p_lat i in
        Array.unsafe_set sc_done i done_t;
        deliver_targets i done_t
      end
      else if kind = Core.k_load then begin
        if not (Array.unsafe_get sc_has_ev i) then
          (* squashed, defensive *)
          Array.unsafe_set sc_done i (issue + Array.unsafe_get plan.Core.p_lat i)
        else begin
          let lsid = Array.unsafe_get plan.Core.p_lsid i in
          let addr = Array.unsafe_get sc.Core.sc_ev_addr i in
          let bank = Array.unsafe_get sc.Core.sc_ev_bank i in
          (* predicted-dependent loads wait for all earlier stores *)
          let wait =
            if
              Depend.should_wait s.Core.dep
                ~load_id:(Array.unsafe_get plan.Core.p_wait i)
            then begin
              let acc = ref issue in
              for l = 0 to lsid - 1 do
                let t = Array.unsafe_get sc.Core.sc_store l in
                if t > !acc then acc := t
              done;
              !acc
            end
            else issue
          in
          let var = Array.unsafe_get plan.Core.p_dtvar i + bank in
          let c = Array.unsafe_get vcell var in
          Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
          let vl = Array.unsafe_get p_vlen var in
          let at_dt =
            if vl = 0 then wait
            else
              Opn.claim_path_quiet opn ~paths:p_paths
                ~off:(Array.unsafe_get p_voff var)
                ~len:vl ~now:wait
          in
          let start = Core.imax at_dt (Array.unsafe_get sc.Core.sc_dt bank) in
          Array.unsafe_set sc.Core.sc_dt bank (start + 1);
          s.Core.st.Core.l1d_bytes <-
            s.Core.st.Core.l1d_bytes + Array.unsafe_get sc.Core.sc_ev_width i;
          let lat =
            if Cache.access s.Core.l1d ~addr ~write:false then
              Cache.hit_latency_of_bank s.Core.l1d bank
            else begin
              s.Core.st.Core.dcache_misses <- s.Core.st.Core.dcache_misses + 1;
              (Cache.config s.Core.l1d).Cache.hit_latency
              + Core.l2_access s ~addr ~write:false ~now:start
            end
          in
          let data_ready = start + lat in
          Array.unsafe_set sc_done i data_ready;
          push_mem i lsid true start;
          deliver_targets i data_ready
        end
      end
      else if kind = Core.k_store then begin
        let lsid = Array.unsafe_get plan.Core.p_lsid i in
        let has_ev = Array.unsafe_get sc_has_ev i in
        if not has_ev then begin
          (* no event recorded: a nullified store with no address *)
          sc.Core.sc_ev_addr.(i) <- 0;
          sc.Core.sc_ev_width.(i) <- 0;
          sc.Core.sc_ev_null.(i) <- true
        end;
        let is_null = Array.unsafe_get sc.Core.sc_ev_null i in
        let addr = Array.unsafe_get sc.Core.sc_ev_addr i in
        let bank =
          if is_null then lsid land 3 else Array.unsafe_get sc.Core.sc_ev_bank i
        in
        let var = Array.unsafe_get plan.Core.p_dtvar i + bank in
        let c = Array.unsafe_get vcell var in
        Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
        let vl = Array.unsafe_get p_vlen var in
        let at_dt =
          if vl = 0 then issue + Array.unsafe_get plan.Core.p_lat i
          else
            Opn.claim_path_quiet opn ~paths:p_paths
              ~off:(Array.unsafe_get p_voff var)
              ~len:vl
              ~now:(issue + Array.unsafe_get plan.Core.p_lat i)
        in
        let start = Core.imax at_dt (Array.unsafe_get sc.Core.sc_dt bank) in
        Array.unsafe_set sc.Core.sc_dt bank (start + 1);
        if not is_null then begin
          s.Core.st.Core.l1d_bytes <-
            s.Core.st.Core.l1d_bytes + Array.unsafe_get sc.Core.sc_ev_width i;
          if not (Cache.access s.Core.l1d ~addr ~write:true) then begin
            s.Core.st.Core.dcache_misses <- s.Core.st.Core.dcache_misses + 1;
            ignore (Core.l2_access s ~addr ~write:true ~now:start)
          end
        end;
        Array.unsafe_set sc_done i start;
        Array.unsafe_set sc.Core.sc_store lsid start;
        push_mem i lsid false start
      end
      else begin
        (* branch *)
        let done_t = issue + Array.unsafe_get plan.Core.p_lat i in
        Array.unsafe_set sc_done i done_t;
        let var = Array.unsafe_get plan.Core.p_brvar i in
        let c = Array.unsafe_get vcell var in
        Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1);
        let vl = Array.unsafe_get p_vlen var in
        let t =
          if vl = 0 then done_t
          else
            Opn.claim_path_quiet opn ~paths:p_paths
              ~off:(Array.unsafe_get p_voff var)
              ~len:vl ~now:done_t
        in
        if i = inst.Exec.exit_inst && t > !resolve then resolve := t
      end
    end
  done;
  Core.finish_instance s s.Core.cfg ~resolve:!resolve

(* ------------------------------------------------------------------ *)
(* Engine selection and profile flush                                  *)
(* ------------------------------------------------------------------ *)

let time st : Core.time_fn =
 fun s plan inst ~dispatch_start ->
  match plan.Core.p_ext with
  | Compiled ce -> time_compiled st plan ce inst ~dispatch_start
  | _ ->
    if plan.Core.p_obs.Core.bo_instances >= st.threshold then begin
      let ce = compile st plan in
      plan.Core.p_ext <- Compiled ce;
      time_compiled st plan ce inst ~dispatch_start
    end
    else begin
      st.n_interp <- st.n_interp + 1;
      Core.time_block s s.Core.cfg plan inst ~dispatch_start
    end

(* Publish the batched packet counts into the shared OPN profile
   (contention already accumulated claim by claim).  Integer sums are
   order-independent, so the flushed profile equals what per-packet
   accounting would have produced. *)
let flush st =
  let prof = Opn.profile st.sim.Core.opn in
  List.iter
    (fun ce ->
      let cnt = ce.ce_cnt in
      for c = 0 to Array.length ce.ce_cells_ci - 1 do
        let m = cnt.(c) in
        if m > 0 then begin
          let ci = ce.ce_cells_ci.(c) and len = ce.ce_cells_len.(c) in
          let bucket = if len < 5 then len else 5 in
          prof.Opn.packets.(ci).(bucket) <- prof.Opn.packets.(ci).(bucket) + m;
          prof.Opn.total_packets <- prof.Opn.total_packets + m;
          prof.Opn.total_hops <- prof.Opn.total_hops + (m * len);
          cnt.(c) <- 0
        end
      done)
    st.entries

let state_report st =
  {
    rp_blocks_compiled = st.n_compiled;
    rp_tables_derived = st.n_derived;
    rp_cache_hits_mem = st.n_hits_mem;
    rp_cache_hits_disk = st.n_hits_disk;
    rp_interpreted = st.n_interp;
  }

(* ------------------------------------------------------------------ *)
(* Whole-program runs                                                  *)
(* ------------------------------------------------------------------ *)

let default_threshold = 16

let run_report ?config ?fuel ?(threshold = default_threshold) ?cache
    (program : Block.program) image ~entry ~args =
  let s = Core.make_sim ?config program in
  let st = make_state ?cache ~threshold s in
  let time = time st in
  let on_instance (inst : Exec.instance) =
    let plan = Hashtbl.find s.Core.plans inst.Exec.iblock.Block.label in
    Core.step_instance s ~time plan inst
  in
  let exec_result = Exec.run ?fuel ~on_instance program image ~entry ~args in
  flush st;
  (Core.collect_result s exec_result, state_report st)

let run ?config ?fuel ?threshold ?cache program image ~entry ~args =
  fst (run_report ?config ?fuel ?threshold ?cache program image ~entry ~args)
