(* Frozen copy of the pre-optimization simulator (see core_ref.mli).
   Kept verbatim — the parity suite and `trips_run simbench` depend on
   this module continuing to produce the seed's exact statistics. *)

module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Exec = Trips_edge.Exec
module Blockpred = Trips_predictor.Blockpred
module Depend = Trips_predictor.Depend
module Cache = Trips_mem.Cache
module Hier = Trips_mem.Hier
module Opn = Trips_noc.Opn
module Schedule = Trips_compiler.Schedule

type config = {
  predictor : Blockpred.config;
  fetch_interval : int;
  dispatch_rate : int;
  redirect_penalty : int;
  flush_penalty : int;
  commit_overhead : int;
  window_blocks : int;
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config;
  dram : Hier.dram_config;
}

let prototype =
  {
    predictor = Blockpred.prototype;
    fetch_interval = 8;
    dispatch_rate = 16;
    redirect_penalty = 8;
    flush_penalty = 13;
    commit_overhead = 4;
    window_blocks = 8;
    l1d = Cache.trips_l1d;
    l1i = Cache.trips_l1i;
    l2 = Cache.trips_l2;
    dram = Hier.trips_dram;
  }

type stats = {
  mutable cycles : int;
  mutable blocks : int;
  mutable branch_mispredicts : int;
  mutable callret_mispredicts : int;
  mutable load_flushes : int;
  mutable icache_misses : int;
  mutable dcache_misses : int;
  mutable l2_misses : int;
  mutable occupancy_weighted : float;
  mutable occupancy_useful : float;
  mutable peak_occupancy : int;
  mutable l1d_bytes : int;
  mutable l2_bytes : int;
  mutable dram_bytes : int;
}

(* Measured per-block timing, aggregated over every committed instance of
   one static block: the static timing analyzer cross-validates its
   predicted critical paths against [bo_latency / bo_instances]. *)
type block_obs = {
  mutable bo_instances : int;
  mutable bo_latency : int;     (* sum of (all outputs done - dispatch start) *)
  mutable bo_residency : int;   (* sum of (commit - fetch) *)
}

type result = {
  ret : Ty.value option;
  exec : Exec.stats;
  timing : stats;
  opn : Opn.profile;
  opn_average_hops : float;
  block_profile : (string * block_obs) list;  (* sorted by label *)
}

(* Compressed code footprint of a block: a 128-byte header plus 128-byte
   chunks of 32 instructions (§4.4). *)
let block_bytes n_insts = 128 + (128 * ((max 1 n_insts + 31) / 32))

type sim = {
  cfg : config;
  pred : Blockpred.t;
  dep : Depend.t;
  opn : Opn.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  mutable dram_free_at : int;
  st : stats;
  (* label interning and code layout *)
  ids : (string, int) Hashtbl.t;
  code_addr : (string, int) Hashtbl.t;
  func_entry : (string, string) Hashtbl.t;    (* function -> entry label *)
  mutable reg_ready : int array;              (* RT value availability *)
  mutable shadow_stack : string list;         (* return labels *)
  (* previous block bookkeeping *)
  mutable prev : prev option;
  mutable last_commit : int;
  mutable commits : int array;                (* ring of commit times *)
  mutable seq : int;
  mutable inflight : (int * int * int * int) list; (* fetch, commit, size, useful *)
}

and prev = {
  p_fetch : int;
  p_resolve : int;
  p_correct : bool;
  p_kind : Blockpred.kind;
}

let intern s label =
  match Hashtbl.find_opt s.ids label with
  | Some i -> i
  | None ->
    let i = Hashtbl.length s.ids + 1 in
    Hashtbl.replace s.ids label i;
    i

let dram_latency s ~now =
  let line = s.cfg.l2.Cache.line in
  let occupancy =
    int_of_float (ceil (float_of_int line /. s.cfg.dram.Hier.bytes_per_cycle))
  in
  let start = max now s.dram_free_at in
  s.dram_free_at <- start + occupancy;
  s.st.dram_bytes <- s.st.dram_bytes + line;
  (start - now) + s.cfg.dram.Hier.dram_latency + occupancy

(* L2 access from either side; returns latency. *)
let l2_access s ~addr ~write ~now =
  s.st.l2_bytes <- s.st.l2_bytes + s.cfg.l2.Cache.line;
  let lat = Cache.hit_latency_of_bank s.l2 (Cache.bank_of s.l2 ~addr) in
  if Cache.access s.l2 ~addr ~write then lat
  else begin
    s.st.l2_misses <- s.st.l2_misses + 1;
    lat + dram_latency s ~now:(now + lat)
  end

let icache_fetch s ~addr ~bytes ~now =
  let line = s.cfg.l1i.Cache.line in
  let first = addr / line and last = (addr + bytes - 1) / line in
  let extra = ref 0 in
  for l = first to last do
    let a = l * line in
    if not (Cache.access s.l1i ~addr:a ~write:false) then begin
      s.st.icache_misses <- s.st.icache_misses + 1;
      let miss = l2_access s ~addr:a ~write:false ~now in
      if miss > !extra then extra := miss
    end
  done;
  (Cache.config s.l1i).Cache.hit_latency + !extra

(* ------------------------------------------------------------------ *)
(* Per-instance dataflow timing                                        *)
(* ------------------------------------------------------------------ *)

type mem_timing = {
  mt_lsid : int;
  mt_is_load : bool;
  mt_addr : int;
  mt_width : int;
  mt_null : bool;
  mt_time : int;              (* arrival at the data tile *)
}

(* Result of timing one block instance. *)
type btime = {
  bt_resolve : int;           (* branch resolution at the GT *)
  bt_done : int;              (* all outputs produced *)
  bt_writes : (int * int) list; (* arch reg, availability at RT *)
  bt_flushed : bool;
}

let time_block s (cfg : config) (inst : Exec.instance) ~dispatch_start : btime =
  let b = inst.Exec.iblock in
  let n = Array.length b.Block.insts in
  let fired = inst.Exec.fired in
  let pos i = Schedule.tile_position b.Block.placement.(i) in
  (* instructions dispatch progressively, [dispatch_rate] per cycle in slot
     order; the header's read/write slots dispatch first *)
  let dispatched i = dispatch_start + 1 + (i / cfg.dispatch_rate) in
  let dispatch_done = dispatch_start + 1 + ((max 1 n - 1) / cfg.dispatch_rate) in
  ignore dispatch_done;
  (* operand slot arrival times *)
  let ready = Array.make n [] in      (* arrival times of arrived slots *)
  let needed = Array.make n 0 in
  Array.iteri
    (fun i ins ->
      if fired.(i) then begin
        needed.(i) <- Isa.operand_arity ins
                      + (match ins.Isa.pred with Isa.Unpred -> 0 | _ -> 1)
      end)
    b.Block.insts;
  let complete = Array.make n (-1) in
  let et_free = Array.make 16 0 in
  let dt_free = Array.make 4 0 in
  (* min-heap on readiness time: processing instructions in time order keeps
     operand-network link reservations chronological, so contention reflects
     genuine overlap rather than processing order *)
  let heap = ref [] in
  let heap_push t i = heap := (t, i) :: !heap in
  let heap_pop () =
    match !heap with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left (fun acc x -> if fst x < fst acc then x else acc) first rest
      in
      heap := List.filter (fun x -> x != best) !heap;
      Some (snd best)
  in
  let writes = ref [] in
  let resolve = ref (dispatch_start + 1) in
  let mems = ref [] in
  (* loads deferred by the load-wait table wait for earlier stores *)
  let store_times = Hashtbl.create 8 in   (* lsid -> dt arrival *)
  let arrive j t =
    if fired.(j) then begin
      ready.(j) <- t :: ready.(j);
      if List.length ready.(j) = needed.(j) then
        heap_push (List.fold_left max (dispatched j) ready.(j)) j
    end
  in
  (* memory-event lookup for fired loads/stores *)
  let mem_of = Hashtbl.create 8 in
  List.iter
    (fun (ev : Exec.mem_event) -> Hashtbl.replace mem_of ev.Exec.ev_inst ev)
    inst.Exec.mem_events;
  let deliver_targets i completion =
    let src_pos = pos i in
    let is_load = match b.Block.insts.(i).Isa.op with Isa.Load _ -> true | _ -> false in
    List.iter
      (fun tgt ->
        match tgt with
        | Isa.To_inst (j, _) ->
          let cls = if is_load then Opn.Dt_et else Opn.Et_et in
          let src = if is_load then
              (match Hashtbl.find_opt mem_of i with
               | Some ev -> Schedule.dt_position (Cache.bank_of s.l1d ~addr:ev.Exec.ev_addr)
               | None -> src_pos)
            else src_pos
          in
          let t = Opn.send s.opn ~src ~dst:(pos j) cls ~now:completion in
          arrive j t
        | Isa.To_write w ->
          let reg = b.Block.writes.(w).Block.wreg in
          let t =
            Opn.send s.opn ~src:src_pos ~dst:(Schedule.rt_position reg) Opn.Et_rt
              ~now:completion
          in
          writes := (reg, t) :: !writes)
      b.Block.insts.(i).Isa.targets
  in
  (* inject reads *)
  Array.iter
    (fun (r : Block.read) ->
      let avail = max dispatch_done s.reg_ready.(r.Block.rreg) in
      List.iter
        (fun tgt ->
          match tgt with
          | Isa.To_inst (j, _) ->
            let t =
              Opn.send s.opn ~src:(Schedule.rt_position r.Block.rreg) ~dst:(pos j)
                Opn.Rt_et ~now:avail
            in
            arrive j t
          | Isa.To_write w ->
            let reg = b.Block.writes.(w).Block.wreg in
            writes := (reg, avail) :: !writes)
        r.Block.rtargets)
    b.Block.reads;
  (* zero-operand fired instructions are ready once dispatched *)
  Array.iteri
    (fun i _ -> if fired.(i) && needed.(i) = 0 then heap_push (dispatched i) i)
    b.Block.insts;
  let continue_ = ref true in
  while !continue_ do
    match heap_pop () with
    | None -> continue_ := false
    | Some i ->
    if complete.(i) < 0 then begin
      let ins = b.Block.insts.(i) in
      let operand_ready = List.fold_left max (dispatched i) ready.(i) in
      let tile = b.Block.placement.(i) in
      let issue = max operand_ready et_free.(tile) in
      et_free.(tile) <- issue + 1;
      match ins.Isa.op with
      | Isa.Load (_, _, lsid) -> (
        match Hashtbl.find_opt mem_of i with
        | None -> complete.(i) <- issue + Isa.latency ins.Isa.op (* squashed, defensive *)
        | Some ev ->
          let addr = ev.Exec.ev_addr in
          let bank = Cache.bank_of s.l1d ~addr in
          (* predicted-dependent loads wait for all earlier stores *)
          let wait =
            if Depend.should_wait s.dep ~load_id:(Hashtbl.hash (b.Block.label, i))
            then
              Hashtbl.fold
                (fun l t acc -> if l < lsid then max acc t else acc)
                store_times issue
            else issue
          in
          let at_dt =
            Opn.send s.opn ~src:(pos i) ~dst:(Schedule.dt_position bank) Opn.Et_dt
              ~now:wait
          in
          let start = max at_dt dt_free.(bank) in
          dt_free.(bank) <- start + 1;
          s.st.l1d_bytes <- s.st.l1d_bytes + Ty.bytes_of_width ev.Exec.ev_width;
          let lat =
            if Cache.access s.l1d ~addr ~write:false then
              Cache.hit_latency_of_bank s.l1d bank
            else begin
              s.st.dcache_misses <- s.st.dcache_misses + 1;
              (Cache.config s.l1d).Cache.hit_latency + l2_access s ~addr ~write:false ~now:start
            end
          in
          let data_ready = start + lat in
          complete.(i) <- data_ready;
          mems :=
            { mt_lsid = lsid; mt_is_load = true; mt_addr = addr;
              mt_width = Ty.bytes_of_width ev.Exec.ev_width; mt_null = false;
              mt_time = start }
            :: !mems;
          deliver_targets i data_ready)
      | Isa.Store (_, lsid) ->
        let ev = Hashtbl.find_opt mem_of i in
        let addr, width, is_null =
          match ev with
          | Some ev -> (ev.Exec.ev_addr, Ty.bytes_of_width ev.Exec.ev_width, ev.Exec.ev_null)
          | None -> (0, 0, true)
        in
        let bank = if is_null then lsid land 3 else Cache.bank_of s.l1d ~addr in
        let at_dt =
          Opn.send s.opn ~src:(pos i) ~dst:(Schedule.dt_position bank) Opn.Et_dt
            ~now:(issue + Isa.latency ins.Isa.op)
        in
        let start = max at_dt dt_free.(bank) in
        dt_free.(bank) <- start + 1;
        if not is_null then begin
          s.st.l1d_bytes <- s.st.l1d_bytes + width;
          if not (Cache.access s.l1d ~addr ~write:true) then begin
            s.st.dcache_misses <- s.st.dcache_misses + 1;
            ignore (l2_access s ~addr ~write:true ~now:start)
          end
        end;
        complete.(i) <- start;
        Hashtbl.replace store_times lsid start;
        mems :=
          { mt_lsid = lsid; mt_is_load = false; mt_addr = addr; mt_width = width;
            mt_null = is_null; mt_time = start }
          :: !mems
      | Isa.Branch _ ->
        let done_t = issue + Isa.latency ins.Isa.op in
        complete.(i) <- done_t;
        let t =
          Opn.send s.opn ~src:(pos i) ~dst:Schedule.gt_position Opn.Et_gt ~now:done_t
        in
        if i = inst.Exec.exit_inst then resolve := max !resolve t
      | op ->
        let done_t = issue + Isa.latency op in
        complete.(i) <- done_t;
        deliver_targets i done_t
    end
  done;
  (* store-load violations: a load that accessed the DT before an earlier
     (lower-LSID) overlapping store arrived *)
  let flushed = ref false in
  let mems_l = !mems in
  List.iter
    (fun load ->
      if load.mt_is_load then
        List.iter
          (fun st ->
            if
              (not st.mt_is_load) && (not st.mt_null)
              && st.mt_lsid < load.mt_lsid
              && st.mt_time > load.mt_time
              && st.mt_addr < load.mt_addr + load.mt_width
              && load.mt_addr < st.mt_addr + st.mt_width
            then begin
              flushed := true;
              (* learn: next time this load waits *)
              Depend.record_violation s.dep
                ~load_id:(Hashtbl.hash (b.Block.label, load.mt_lsid))
            end)
          mems_l)
    mems_l;
  if !flushed then s.st.load_flushes <- s.st.load_flushes + 1;
  let all_done =
    List.fold_left
      (fun acc (_, t) -> max acc t)
      (List.fold_left (fun acc m -> max acc m.mt_time) !resolve mems_l)
      !writes
  in
  let all_done = if !flushed then all_done + cfg.flush_penalty else all_done in
  {
    bt_resolve = max !resolve (if !flushed then all_done else !resolve);
    bt_done = all_done;
    bt_writes = !writes;
    bt_flushed = !flushed;
  }

(* ------------------------------------------------------------------ *)
(* Whole-program simulation                                            *)
(* ------------------------------------------------------------------ *)

let empty_stats () =
  {
    cycles = 0; blocks = 0; branch_mispredicts = 0; callret_mispredicts = 0;
    load_flushes = 0; icache_misses = 0; dcache_misses = 0; l2_misses = 0;
    occupancy_weighted = 0.; occupancy_useful = 0.; peak_occupancy = 0;
    l1d_bytes = 0; l2_bytes = 0; dram_bytes = 0;
  }

let run ?(config = prototype) ?fuel (program : Block.program) image ~entry ~args =
  let s =
    {
      cfg = config;
      pred = Blockpred.create config.predictor;
      dep = Depend.create ();
      opn = Opn.create ();
      l1d = Cache.create config.l1d;
      l1i = Cache.create config.l1i;
      l2 = Cache.create config.l2;
      dram_free_at = 0;
      st = empty_stats ();
      ids = Hashtbl.create 128;
      code_addr = Hashtbl.create 128;
      func_entry = Hashtbl.create 16;
      reg_ready = Array.make Isa.num_regs 0;
      shadow_stack = [];
      prev = None;
      last_commit = 0;
      commits = Array.make config.window_blocks 0;
      seq = 0;
      inflight = [];
    }
  in
  let block_profile : (string, block_obs) Hashtbl.t = Hashtbl.create 64 in
  (* code layout in a dedicated text region *)
  let cursor = ref 0x4000000 in
  List.iter
    (fun (f : Block.func) ->
      Hashtbl.replace s.func_entry f.Block.fname f.Block.entry;
      List.iter
        (fun (b : Block.t) ->
          Hashtbl.replace s.code_addr b.Block.label !cursor;
          cursor := !cursor + block_bytes (Array.length b.Block.insts))
        f.Block.blocks)
    program.Block.funcs;
  let on_instance (inst : Exec.instance) =
    let b = inst.Exec.iblock in
    let label = b.Block.label in
    let label_id = intern s label in
    let n = Array.length b.Block.insts in
    (* 1. fetch start *)
    let frame_limit =
      if s.seq >= config.window_blocks then
        s.commits.(s.seq mod config.window_blocks)
      else 0
    in
    let fetch =
      match s.prev with
      | None -> 0
      | Some p ->
        if p.p_correct then max (p.p_fetch + config.fetch_interval) frame_limit
        else begin
          (match p.p_kind with
          | Blockpred.Kjump -> s.st.branch_mispredicts <- s.st.branch_mispredicts + 1
          | Blockpred.Kcall | Blockpred.Kret ->
            s.st.callret_mispredicts <- s.st.callret_mispredicts + 1);
          max (p.p_resolve + config.redirect_penalty) frame_limit
        end
    in
    (* 2. instruction fetch *)
    let addr = Hashtbl.find s.code_addr label in
    let ilat = icache_fetch s ~addr ~bytes:(block_bytes n) ~now:fetch in
    (* 3. dataflow *)
    let bt = time_block s config inst ~dispatch_start:(fetch + ilat) in
    (* 4. commit: the distributed protocol adds latency but is pipelined,
       not serializing (the paper found block commit off the critical
       path) *)
    let commit = max (bt.bt_done + config.commit_overhead) (s.last_commit + 1) in
    s.last_commit <- commit;
    s.commits.(s.seq mod config.window_blocks) <- commit;
    s.seq <- s.seq + 1;
    (* register availability for later blocks *)
    List.iter (fun (reg, t) -> s.reg_ready.(reg) <- t) bt.bt_writes;
    (* 5. next-block prediction *)
    let actual_label, kind =
      match inst.Exec.exit_dest with
      | Isa.Xjump l -> (Some l, Blockpred.Kjump)
      | Isa.Xcall (fname, retl) ->
        s.shadow_stack <- retl :: s.shadow_stack;
        (Hashtbl.find_opt s.func_entry fname, Blockpred.Kcall)
      | Isa.Xret -> (
        match s.shadow_stack with
        | [] -> (None, Blockpred.Kret)
        | retl :: rest ->
          s.shadow_stack <- rest;
          (Some retl, Blockpred.Kret))
    in
    let actual_id = Option.map (intern s) actual_label in
    let predicted = Blockpred.predict s.pred ~block:label_id in
    let correct = actual_id <> None && predicted = actual_id in
    (match actual_id with
    | Some target ->
      let exits = Block.exits b in
      let exit_idx =
        match
          List.find_index (fun (i, _) -> i = inst.Exec.exit_inst) exits
        with
        | Some k -> k
        | None -> 0
      in
      let fall =
        match inst.Exec.exit_dest with
        | Isa.Xcall (_, retl) -> intern s retl
        | _ -> 0
      in
      Blockpred.update s.pred
        {
          Blockpred.o_block = label_id;
          o_exit = exit_idx;
          o_kind = kind;
          o_target = target;
          o_fallthrough = fall;
        }
    | None -> ());
    s.prev <-
      Some { p_fetch = fetch; p_resolve = bt.bt_resolve; p_correct = correct;
             p_kind = kind };
    (* 6. occupancy accounting *)
    s.st.blocks <- s.st.blocks + 1;
    (let obs =
       match Hashtbl.find_opt block_profile label with
       | Some o -> o
       | None ->
         let o = { bo_instances = 0; bo_latency = 0; bo_residency = 0 } in
         Hashtbl.replace block_profile label o;
         o
     in
     obs.bo_instances <- obs.bo_instances + 1;
     obs.bo_latency <- obs.bo_latency + (bt.bt_done - (fetch + ilat));
     obs.bo_residency <- obs.bo_residency + (commit - fetch));
    let useful =
      let u = ref 0 in
      Array.iteri (fun i f -> if f && inst.Exec.useful.(i) then incr u) inst.Exec.fired;
      !u
    in
    let residency = max 1 (commit - fetch) in
    s.st.occupancy_weighted <- s.st.occupancy_weighted +. float_of_int (n * residency);
    s.st.occupancy_useful <- s.st.occupancy_useful +. float_of_int (useful * residency);
    s.inflight <-
      (fetch, commit, n, useful)
      :: List.filter (fun (_, c, _, _) -> c > fetch) s.inflight;
    let concurrent = List.fold_left (fun acc (_, _, sz, _) -> acc + sz) 0 s.inflight in
    if concurrent > s.st.peak_occupancy then s.st.peak_occupancy <- concurrent
  in
  let exec_result = Exec.run ?fuel ~on_instance program image ~entry ~args in
  s.st.cycles <- max 1 s.last_commit;
  {
    ret = exec_result.Exec.ret;
    exec = exec_result.Exec.stats;
    timing = s.st;
    opn = Opn.profile s.opn;
    opn_average_hops = Opn.average_hops s.opn;
    block_profile =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun l o acc -> (l, o) :: acc) block_profile []);
  }

let ipc r =
  float_of_int r.exec.Exec.executed /. float_of_int (max 1 r.timing.cycles)

let useful_ipc r =
  float_of_int r.exec.Exec.useful /. float_of_int (max 1 r.timing.cycles)

let avg_window r = r.timing.occupancy_weighted /. float_of_int (max 1 r.timing.cycles)

let avg_window_useful r =
  r.timing.occupancy_useful /. float_of_int (max 1 r.timing.cycles)
