module Result_cache = Trips_engine.Result_cache

(* Bump when the derivation-table layout changes: the key embeds it, so
   stale disk entries read as misses, never as misshapen tables. *)
let schema = 1

type counters = {
  mutable hits_mem : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable stores : int;
}

type t = {
  mem : (string, Obj.t) Hashtbl.t;
  disk : Result_cache.t option;
  ct : counters;
}

let create ?dir () =
  {
    mem = Hashtbl.create 64;
    disk = Option.map Result_cache.open_ dir;
    ct = { hits_mem = 0; hits_disk = 0; misses = 0; stores = 0 };
  }

let counters t = t.ct
let dir t = Option.map Result_cache.dir t.disk

let find (type a) t ~key : a option =
  match Hashtbl.find_opt t.mem key with
  | Some v ->
    t.ct.hits_mem <- t.ct.hits_mem + 1;
    Some (Obj.obj v : a)
  | None -> (
    match t.disk with
    | None ->
      t.ct.misses <- t.ct.misses + 1;
      None
    | Some d -> (
      match Result_cache.find_raw d ~key with
      | None ->
        t.ct.misses <- t.ct.misses + 1;
        None
      | Some payload -> (
        match (Marshal.from_string payload 0 : a) with
        | v ->
          t.ct.hits_disk <- t.ct.hits_disk + 1;
          Hashtbl.replace t.mem key (Obj.repr v);
          Some v
        | exception _ ->
          t.ct.misses <- t.ct.misses + 1;
          None)))

let store t ~key v =
  t.ct.stores <- t.ct.stores + 1;
  Hashtbl.replace t.mem key (Obj.repr v);
  match t.disk with
  | None -> ()
  | Some d -> Result_cache.store_raw d ~key (Marshal.to_string v [])
