(* Simulation checkpoints: run the detailed model for a warm-up prefix,
   snapshot everything the rest of the run depends on, and resume later
   — possibly many times, e.g. once per candidate configuration — without
   re-simulating the prefix.

   A checkpoint pairs the architectural state at a block boundary
   ([Exec.snapshot]: next label, register file, call stack) and a copy
   of the memory image with the *microarchitectural* warm state: block
   predictor, dependence predictor and all three caches.  Resuming
   builds a fresh simulator, splices the warmed structures in, and
   drives [Exec.run ~resume].

   Contract: architectural replay is exact — a resumed run executes the
   same blocks, in the same order, with the same memory traffic as the
   tail of the original run.  Timing is approximate at the seam: the
   resumed clock starts at zero, operand-network occupancy and the
   in-flight block window restart cold, so cycle counts differ from the
   same tail inside a full run by a few pipeline depths at most. *)

module Image = Trips_tir.Image
module Block = Trips_edge.Block
module Exec = Trips_edge.Exec
module Blockpred = Trips_predictor.Blockpred
module Depend = Trips_predictor.Depend
module Cache = Trips_mem.Cache

type t = {
  ck_snapshot : Exec.snapshot;
  ck_image : Image.t;          (* memory at the capture point *)
  ck_pred : Blockpred.t;       (* warmed predictor state *)
  ck_dep : Depend.t;
  ck_l1d : Cache.t;
  ck_l1i : Cache.t;
  ck_l2 : Cache.t;
  ck_config : Core.config;
  ck_blocks : int;             (* block instances before the checkpoint *)
}

let capture ?(config = Core.prototype) ?fuel ~after (program : Block.program)
    image ~entry ~args =
  let s = Core.make_sim ~config program in
  let on_instance (inst : Exec.instance) =
    let plan = Hashtbl.find s.Core.plans inst.Exec.iblock.Block.label in
    Core.step_instance s ~time:Core.interp_time plan inst
  in
  match Exec.capture ?fuel ~on_instance ~after program image ~entry ~args with
  | Exec.Finished _ -> None
  | Exec.Snapshot sn ->
    Some
      {
        ck_snapshot = Exec.copy_snapshot sn;
        ck_image = Image.copy image;
        ck_pred = Blockpred.copy s.Core.pred;
        ck_dep = Depend.copy s.Core.dep;
        ck_l1d = Cache.copy s.Core.l1d;
        ck_l1i = Cache.copy s.Core.l1i;
        ck_l2 = Cache.copy s.Core.l2;
        ck_config = config;
        ck_blocks = sn.Exec.sn_blocks;
      }

(* Fresh simulator with the checkpoint's warm state spliced in, plus a
   private copy of the image: the composable primitive under [resume],
   usable with any timing engine.  The shadow call stack mirrors the
   architectural one so return prediction stays aligned. *)
let restore ck (program : Block.program) =
  let s = Core.make_sim ~config:ck.ck_config program in
  s.Core.pred <- Blockpred.copy ck.ck_pred;
  s.Core.dep <- Depend.copy ck.ck_dep;
  s.Core.l1d <- Cache.copy ck.ck_l1d;
  s.Core.l1i <- Cache.copy ck.ck_l1i;
  s.Core.l2 <- Cache.copy ck.ck_l2;
  s.Core.shadow_stack <- List.map snd ck.ck_snapshot.Exec.sn_stack;
  (s, Image.copy ck.ck_image)

let resume ?fuel ck (program : Block.program) =
  let s, image = restore ck program in
  let on_instance (inst : Exec.instance) =
    let plan = Hashtbl.find s.Core.plans inst.Exec.iblock.Block.label in
    Core.step_instance s ~time:Core.interp_time plan inst
  in
  let exec_result =
    Exec.run ?fuel ~on_instance ~resume:ck.ck_snapshot program image
      ~entry:ck.ck_snapshot.Exec.sn_label ~args:[]
  in
  Core.collect_result s exec_result
