(** The TRIPS operand network (OPN): a 5x5 wormhole-routed mesh delivering
    one 64-bit operand per link per cycle ([6], §5.2).

    Row 0 carries the global tile and the four register tiles, column 0 the
    four data tiles, and the inner 4x4 the execution tiles.  Messages are
    single-operand and route Y-first; each hop costs one cycle plus any
    wait for the link, which is how the model exposes the contention the
    paper identifies as the top microarchitectural performance loss (§7).

    The module accumulates the per-class hop histogram of Fig 8. *)

type cls = Et_et | Et_dt | Et_rt | Et_gt | Dt_rt | Dt_et | Rt_et | Gt_any

type t

val create : unit -> t

val send : t -> src:int * int -> dst:int * int -> cls -> now:int -> int
(** [send t ~src ~dst cls ~now] routes one operand and returns its arrival
    cycle.  A local bypass ([src = dst]) arrives at [now]. *)

val hops : src:int * int -> dst:int * int -> int

val route : int * int -> int * int -> (int * int) list
(** [route src dst] is the Y-first dimension-ordered path as
    [(node, direction)] link claims, one per hop ([direction]: 0 = row-,
    1 = row+, 2 = col+, 3 = col-).  [send] traverses exactly this path
    (without materializing it); exposed for tests and path inspection. *)

val node : int -> int -> int
(** [node row col] is the mesh node index used in {!route} steps. *)

val path_ids : src:int * int -> dst:int * int -> int list
(** The link ids claimed by [route src dst], in claim order.  Callers with
    static endpoints (the cycle simulator's per-block timing plans)
    precompute these once and replay them with {!claim_path}. *)

val claim_path :
  t -> ci:int -> paths:int array -> off:int -> len:int -> now:int -> int
(** [claim_path t ~ci ~paths ~off ~len ~now] is {!send} over the
    precomputed path [paths.(off) .. paths.(off + len - 1)] for a message
    of class index [ci] ([len] = hop count): identical link claims, in the
    same order, and identical profile accounting. *)

type profile = {
  packets : int array array;   (* class index x hop bucket (0..5, 5 = 5+) *)
  mutable contention_cycles : int;
  mutable total_packets : int;
  mutable total_hops : int;
}

val profile : t -> profile
val class_index : cls -> int
val class_name : int -> string
val average_hops : t -> float
val reset : t -> unit

val claim_path_quiet :
  t -> paths:int array -> off:int -> len:int -> now:int -> int
(** {!claim_path} minus the per-packet profile accounting: identical
    link claims in the identical order, contention still accumulated
    (an order-independent sum), but packet/hop counts left to the
    caller.  For the cycle simulator's specialized engine, which counts
    packets in batched per-block cells and reconstructs the histogram at
    flush time. *)

(** {1 Occupancy internals}

    Exposed for the cycle simulator's specialized (closure-compiled)
    engine and for tests.  The layout contract: slot
    [((cycle land (window - 1)) * nlinks) + link_id] holds the cycle
    number that claimed the link, [-1] when free.  Any inlined claim
    must replay exactly {!claim_path}'s probe/claim sequence. *)

val occupancy : t -> int array
val window : int
(** Power of two; occupancy slots are indexed modulo [window]. *)

val nlinks : int
