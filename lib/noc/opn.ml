type cls = Et_et | Et_dt | Et_rt | Et_gt | Dt_rt | Dt_et | Rt_et | Gt_any

let class_index = function
  | Et_et -> 0
  | Et_dt -> 1
  | Et_rt -> 2
  | Et_gt -> 3
  | Dt_rt -> 4
  | Dt_et -> 5
  | Rt_et -> 6
  | Gt_any -> 7

let class_name = function
  | 0 -> "ET-ET"
  | 1 -> "ET-DT"
  | 2 -> "ET-RT"
  | 3 -> "ET-GT"
  | 4 -> "DT-RT"
  | 5 -> "DT-ET"
  | 6 -> "RT-ET"
  | _ -> "GT-*"

type profile = {
  packets : int array array;
  mutable contention_cycles : int;
  mutable total_packets : int;
  mutable total_hops : int;
}

(* Each link carries one operand per cycle.  Occupancy is tracked with a
   per-link circular table over cycles (slot c mod window holds the cycle
   number that claimed it), so messages timed out of order — the simulator
   walks dataflow, not time — still contend only when they genuinely
   overlap in time.

   The table is laid out time-major (slot rows of one cell per link):
   claims cluster around the simulation's slowly-advancing time frontier,
   so the hot footprint is a contiguous band of rows instead of a strided
   cell in every link's private region. *)
let window = 4096

type t = {
  occupancy : int array;       (* (slot * nlinks + link) -> claiming cycle *)
  prof : profile;
}

let size = 5
let node r c = (r * size) + c
let link_id n dir = (n * 4) + dir
let nlinks = size * size * 4

let create () =
  {
    occupancy = Array.make (size * size * 4 * window) (-1);
    prof =
      {
        packets = Array.make_matrix 8 6 0;
        contention_cycles = 0;
        total_packets = 0;
        total_hops = 0;
      };
  }

let hops ~src:(r1, c1) ~dst:(r2, c2) = abs (r1 - r2) + abs (c1 - c2)

(* Y-first (row) then X (column) dimension-ordered routing.  [send] walks
   the same path in place; this list-building version is kept as the
   specification (and for tests/tools that inspect paths). *)
let route (r1, c1) (r2, c2) =
  let steps = ref [] in
  let r = ref r1 and c = ref c1 in
  while !r <> r2 do
    let dir = if r2 > !r then 1 else 0 in
    steps := (node !r !c, dir) :: !steps;
    r := if r2 > !r then !r + 1 else !r - 1
  done;
  while !c <> c2 do
    let dir = if c2 > !c then 2 else 3 in
    steps := (node !r !c, dir) :: !steps;
    c := if c2 > !c then !c + 1 else !c - 1
  done;
  List.rev !steps

(* Claim the first free cycle at or after [time] on link [id]; returns the
   cycle after traversing the hop. *)
let claim t id time =
  let p = t.prof in
  let c = ref time in
  (* window is a power of two: slot index is a mask, not a division *)
  while t.occupancy.(((!c land (window - 1)) * nlinks) + id) = !c do incr c done;
  t.occupancy.(((!c land (window - 1)) * nlinks) + id) <- !c;
  p.contention_cycles <- p.contention_cycles + (!c - time);
  (* one cycle to traverse the hop *)
  !c + 1

let send t ~src:(r1, c1) ~dst:(r2, c2) cls ~now =
  let h = abs (r1 - r2) + abs (c1 - c2) in
  let p = t.prof in
  let bucket = min h 5 in
  p.packets.(class_index cls).(bucket) <- p.packets.(class_index cls).(bucket) + 1;
  p.total_packets <- p.total_packets + 1;
  p.total_hops <- p.total_hops + h;
  if h = 0 then now
  else begin
    (* in-place dimension-ordered walk: same link claims, in the same
       order, as iterating [route src dst] — without allocating it *)
    let time = ref now in
    let r = ref r1 and c = ref c1 in
    while !r <> r2 do
      let dir = if r2 > !r then 1 else 0 in
      time := claim t (link_id (node !r !c) dir) !time;
      r := if r2 > !r then !r + 1 else !r - 1
    done;
    while !c <> c2 do
      let dir = if c2 > !c then 2 else 3 in
      time := claim t (link_id (node !r !c) dir) !time;
      c := if c2 > !c then !c + 1 else !c - 1
    done;
    !time
  end

(* The claim-order link ids of [route src dst]; lets callers precompute a
   message's whole path when both endpoints are static. *)
let path_ids ~src ~dst =
  List.map (fun (n, dir) -> link_id n dir) (route src dst)

(* [send] over a precomputed path: same histogram accounting, same link
   claims in the same order.  [ci] is the {!class_index}; the path is
   [paths.(off) .. paths.(off + len - 1)] and [len] is the hop count. *)
let claim_path t ~ci ~paths ~off ~len ~now =
  let p = t.prof in
  let bucket = if len < 5 then len else 5 in
  p.packets.(ci).(bucket) <- p.packets.(ci).(bucket) + 1;
  p.total_packets <- p.total_packets + 1;
  p.total_hops <- p.total_hops + len;
  let occ = t.occupancy in
  let time = ref now in
  let stall = ref 0 in
  for k = off to off + len - 1 do
    let id = Array.unsafe_get paths k in
    let c = ref !time in
    while Array.unsafe_get occ (((!c land (window - 1)) * nlinks) + id) = !c do
      incr c
    done;
    Array.unsafe_set occ (((!c land (window - 1)) * nlinks) + id) !c;
    stall := !stall + (!c - !time);
    time := !c + 1
  done;
  p.contention_cycles <- p.contention_cycles + !stall;
  !time

(* [claim_path] without the per-packet histogram updates: identical
   probe/claim sequence over the occupancy window, and contention — an
   order-independent sum — still lands in the profile, but packet/hop
   totals are left to the caller.  For the cycle simulator's specialized
   engine, which counts packets in batched per-block cells and flushes
   them once per run; the claim loop stays in this module so [window]
   and [nlinks] fold as compile-time constants. *)
let claim_path_quiet t ~paths ~off ~len ~now =
  let occ = t.occupancy in
  let time = ref now in
  let stall = ref 0 in
  for k = off to off + len - 1 do
    let id = Array.unsafe_get paths k in
    let c = ref !time in
    while Array.unsafe_get occ (((!c land (window - 1)) * nlinks) + id) = !c do
      incr c
    done;
    Array.unsafe_set occ (((!c land (window - 1)) * nlinks) + id) !c;
    stall := !stall + (!c - !time);
    time := !c + 1
  done;
  if !stall <> 0 then
    t.prof.contention_cycles <- t.prof.contention_cycles + !stall;
  !time

let profile t = t.prof
let occupancy t = t.occupancy

let average_hops t =
  if t.prof.total_packets = 0 then 0.
  else float_of_int t.prof.total_hops /. float_of_int t.prof.total_packets

let reset t =
  Array.fill t.occupancy 0 (Array.length t.occupancy) (-1);
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.prof.packets;
  t.prof.contention_cycles <- 0;
  t.prof.total_packets <- 0;
  t.prof.total_hops <- 0
