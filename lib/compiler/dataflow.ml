module Cfg = Trips_tir.Cfg
module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Isa = Trips_edge.Isa
module Builder = Trips_edge.Builder
open Hyperblock

module IM = Map.Make (Int)

(* Immediate operands: a 16-bit signed field, modeling the prototype's
   short immediate forms; wider constants need explicit generation. *)
let fits_imm n = n >= -32768L && n < 32768L

type ctx = (Builder.h * bool) list
(* predicate context, outermost decision first *)

type state = {
  b : Builder.t;
  ra : Regalloc.t;
  layout : (string * int) list;
  mutable read_memo : Builder.h IM.t;          (* vreg -> read handle *)
  mutable geni_memo : (int64 * Builder.h) list;
  mutable genf_memo : (int64 * Builder.h) list; (* keyed by bits *)
  mutable top_tests : int list;                 (* Builder.id of top-level compares *)
  mutable guard_memo : ((int * (int * bool) list) * Builder.h) list;
}

let ctx_key (ctx : ctx) = List.map (fun (h, p) -> (Builder.id h, p)) ctx

let innermost = function [] -> None | (t, p) :: _ -> Some (t, p)

let read_of st v =
  match IM.find_opt v st.read_memo with
  | Some h -> h
  | None ->
    let reg =
      try Regalloc.reg_of st.ra v
      with Not_found ->
        failwith (Printf.sprintf "Dataflow: v%d read but not register-allocated" v)
    in
    let h = Builder.read st.b reg in
    st.read_memo <- IM.add v h st.read_memo;
    h

let geni st n =
  match List.assoc_opt n st.geni_memo with
  | Some h -> h
  | None ->
    let h = Builder.inst st.b (Isa.Geni n) in
    st.geni_memo <- (n, h) :: st.geni_memo;
    h

let genf st f =
  let key = Int64.bits_of_float f in
  match List.assoc_opt key st.genf_memo with
  | Some h -> h
  | None ->
    let h = Builder.inst st.b (Isa.Genf f) in
    st.genf_memo <- (key, h) :: st.genf_memo;
    h

let resolve st bindings (o : Cfg.operand) : Builder.h =
  match o with
  | Cfg.Reg v -> ( match IM.find_opt v bindings with Some h -> h | None -> read_of st v)
  | Cfg.Ci n -> geni st n
  | Cfg.Cf f -> genf st f
  | Cfg.Sym s -> (
    match List.assoc_opt s st.layout with
    | Some addr -> geni st (Int64.of_int addr)
    | None -> failwith ("Dataflow: unknown global " ^ s))

(* Constant or handle: lets binops keep small constants in the immediate
   field instead of a dataflow edge. *)
let resolve_rhs st bindings (o : Cfg.operand) : [ `Imm of int64 | `H of Builder.h ] =
  match o with
  | Cfg.Ci n when fits_imm n -> `Imm n
  | _ -> `H (resolve st bindings o)

let commutative (op : Ast.binop) =
  match op with
  | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Xor | Ast.Fadd | Ast.Fmul
  | Ast.Eq | Ast.Ne | Ast.Feq | Ast.Fne ->
    true
  | _ -> false

(* Guard chain for block outputs: deliver [h]'s value when the whole [ctx]
   path is taken, a null token otherwise; exactly one delivery either way.
   Must recurse outermost-test-first: only the outermost test is guaranteed
   to fire, so it owns the top-level value/null decision.  [ctx] stores the
   innermost test first, hence the reversal. *)
let rec guarded_chain st outermost_first (h : Builder.h) : Builder.h =
  match outermost_first with
  | [] -> h
  | (t, pol) :: rest ->
    let key = (Builder.id h, ctx_key outermost_first) in
    (match List.assoc_opt key st.guard_memo with
    | Some g -> g
    | None ->
      let inner = guarded_chain st rest h in
      let ok = Builder.inst st.b ~pred:(t, pol) Isa.Mov in
      Builder.arc st.b inner ok Isa.Op0;
      let no = Builder.inst st.b ~pred:(t, not pol) Isa.Null in
      let j = Builder.inst st.b Isa.Mov in
      Builder.arc st.b ok j Isa.Op0;
      Builder.arc st.b no j Isa.Op0;
      st.guard_memo <- (key, j) :: st.guard_memo;
      j)

let guarded st (ctx : ctx) (h : Builder.h) : Builder.h =
  guarded_chain st (List.rev ctx) h

(* Tests: produce the predicate handle guarding an [If].  Reuse a top-level
   comparison directly; otherwise chain a fresh test on the current
   innermost predicate so the chain fires iff the path is taken. *)
let get_test st bindings (ctx : ctx) (c : Cfg.operand) : Builder.h =
  let h = resolve st bindings c in
  let reusable = ctx = [] && List.mem (Builder.id h) st.top_tests in
  if reusable then h
  else begin
    let t = Builder.inst st.b ?pred:(innermost ctx) ~imm:0L (Isa.Bin Ast.Ne) in
    Builder.arc st.b h t Isa.Op0;
    t
  end

let conv_ins st (ctx : ctx) bindings (ins : Cfg.ins) : Builder.h IM.t =
  match ins with
  | Cfg.Bin (op, d, a, b) ->
    let trapping = match op with Ast.Div | Ast.Rem -> true | _ -> false in
    let pred = if trapping then innermost ctx else None in
    (* fold a small constant into the immediate field, swapping commutative
       operands when only the left one is constant *)
    let a, b =
      match (a, b) with
      | Cfg.Ci n, other when fits_imm n && commutative op -> (other, Cfg.Ci n)
      | _ -> (a, b)
    in
    let ha = resolve st bindings a in
    let h =
      match resolve_rhs st bindings b with
      | `Imm n ->
        let h = Builder.inst st.b ?pred ~imm:n (Isa.Bin op) in
        Builder.arc st.b ha h Isa.Op0;
        h
      | `H hb ->
        let h = Builder.inst st.b ?pred (Isa.Bin op) in
        Builder.arc st.b ha h Isa.Op0;
        Builder.arc st.b hb h Isa.Op1;
        h
    in
    if ctx = [] && Isa.is_test op then st.top_tests <- Builder.id h :: st.top_tests;
    IM.add d h bindings
  | Cfg.Un (op, d, a) ->
    let ha = resolve st bindings a in
    let h = Builder.inst st.b (Isa.Un op) in
    Builder.arc st.b ha h Isa.Op0;
    IM.add d h bindings
  | Cfg.Mov (d, a) ->
    (* a register-to-register copy needs no instruction: rebind *)
    IM.add d (resolve st bindings a) bindings
  | Cfg.Load (ty, w, d, a, off) ->
    let ha = resolve st bindings a in
    let imm = if fits_imm (Int64.of_int off) then Int64.of_int off else 0L in
    let ha =
      if imm = 0L && off <> 0 then begin
        (* displacement too large for the immediate field *)
        let add = Builder.inst st.b ~imm:(Int64.of_int off) (Isa.Bin Ast.Add) in
        Builder.arc st.b ha add Isa.Op0;
        add
      end
      else ha
    in
    let h = Builder.inst st.b ?pred:(innermost ctx) ~imm (Isa.Load (ty, w, -1)) in
    Builder.arc st.b ha h Isa.Op0;
    IM.add d h bindings
  | Cfg.Store (w, a, off, v) ->
    let ha = resolve st bindings a in
    let imm = if fits_imm (Int64.of_int off) then Int64.of_int off else 0L in
    let ha =
      if imm = 0L && off <> 0 then begin
        let add = Builder.inst st.b ~imm:(Int64.of_int off) (Isa.Bin Ast.Add) in
        Builder.arc st.b ha add Isa.Op0;
        add
      end
      else ha
    in
    let hv = resolve st bindings v in
    let stq = Builder.inst st.b ~imm (Isa.Store (w, -1)) in
    Builder.arc st.b (guarded st ctx ha) stq Isa.Op0;
    Builder.arc st.b (guarded st ctx hv) stq Isa.Op1;
    bindings
  | Cfg.Call _ -> failwith "Dataflow: calls must be split during block formation"

let rec item_uses_deep (items : item list) : Cfg.vreg list =
  let regs ops = List.filter_map (function Cfg.Reg r -> Some r | _ -> None) ops in
  List.concat_map
    (fun item ->
      match item with
      | Ins i -> regs (Cfg.uses i)
      | If (c, t, e) -> regs [ c ] @ item_uses_deep t @ item_uses_deep e
      | Exit _ | Lbl _ -> [])
    items

let convert (ra : Regalloc.t) ~layout (hb : hblock) : Trips_edge.Block.t =
  let st =
    {
      b = Builder.create hb.hlabel;
      ra;
      layout;
      read_memo = IM.empty;
      geni_memo = [];
      genf_memo = [];
      top_tests = [];
      guard_memo = [];
    }
  in
  let write_set = Hashtbl.find ra.Regalloc.write_set hb.hlabel in
  let rec conv_items ctx bindings (items : item list) : Builder.h IM.t =
    match items with
    | [] -> bindings
    | Lbl _ :: rest -> conv_items ctx bindings rest
    | Ins i :: rest -> conv_items ctx (conv_ins st ctx bindings i) rest
    | Exit k :: rest ->
      let dest =
        match k with
        | Ejump l -> Isa.Xjump l
        | Ecall (f, retl) -> Isa.Xcall (f, retl)
        | Eret -> Isa.Xret
      in
      let (_ : Builder.h) =
        Builder.inst st.b ?pred:(innermost ctx) (Isa.Branch dest)
      in
      conv_items ctx bindings rest
    | If (c, t, e) :: rest ->
      let test = get_test st bindings ctx c in
      let bt = conv_items ((test, true) :: ctx) bindings t in
      let be = conv_items ((test, false) :: ctx) bindings e in
      (* merge definitions that are needed later (or written out) *)
      let needed =
        List.sort_uniq compare (write_set @ item_uses_deep rest)
      in
      let defs = List.sort_uniq compare (body_defs t @ body_defs e) in
      let merged =
        List.fold_left
          (fun acc v ->
            if not (List.mem v needed) then acc
            else
              let side m =
                match IM.find_opt v m with
                | Some h -> h
                | None -> (
                  match IM.find_opt v bindings with
                  | Some h -> h
                  | None -> read_of st v)
              in
              let ht = side bt and he = side be in
              if Builder.id ht = Builder.id he then IM.add v ht acc
              else begin
                let mt = Builder.inst st.b ~pred:(test, true) Isa.Mov in
                Builder.arc st.b ht mt Isa.Op0;
                let mf = Builder.inst st.b ~pred:(test, false) Isa.Mov in
                Builder.arc st.b he mf Isa.Op0;
                let j = Builder.inst st.b Isa.Mov in
                Builder.arc st.b mt j Isa.Op0;
                Builder.arc st.b mf j Isa.Op0;
                IM.add v j acc
              end)
          bindings defs
      in
      conv_items ctx merged rest
  in
  let final = conv_items [] IM.empty hb.body in
  (* register writes: every cross-block definition of this block *)
  List.iter
    (fun v ->
      let h =
        match IM.find_opt v final with
        | Some h -> h
        | None ->
          failwith
            (Printf.sprintf "Dataflow: write of v%d has no binding in %s" v hb.hlabel)
      in
      Builder.write st.b (Regalloc.reg_of ra v) [ h ])
    write_set;
  Builder.finish st.b

(* ------------------------------------------------------------------ *)
(* LSID-ordering relaxation                                            *)
(* ------------------------------------------------------------------ *)

(* Loads wait for every lower-LSID store to complete and stores commit in
   LSID order, so conservative sequential numbering serializes memory ops
   that can never touch the same bytes.  Renumber LSIDs by a topological
   order of the constraint graph that keeps

   - every store-store pair in its original order (commit order), and
   - every may-alias load/store pair in its original order,

   while letting provably-disjoint load/store pairs flip, preferring loads
   first so they stop waiting on unrelated stores.  Disjointness comes from
   {!Trips_analysis.Memsep}, re-derived independently by the translation
   validator. *)
let relax (b : Trips_edge.Block.t) : Trips_edge.Block.t * int =
  let module Memsep = Trips_analysis.Memsep in
  let ms = List.sort (fun a c -> compare a.Memsep.m_lsid c.Memsep.m_lsid) (Memsep.memops b) in
  let arr = Array.of_list ms in
  let n = Array.length arr in
  let dup = ref false in
  Array.iteri
    (fun i (m : Memsep.memop) ->
      if i > 0 && arr.(i - 1).Memsep.m_lsid = m.Memsep.m_lsid then dup := true)
    arr;
  if n < 2 || !dup then (b, 0)
  else begin
    let edge = Array.make_matrix n n false in
    let indeg = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = arr.(i) and c = arr.(j) in
        let must =
          if a.Memsep.m_store && c.Memsep.m_store then true
          else if a.Memsep.m_store <> c.Memsep.m_store then
            not (Memsep.disjoint a c)
          else false
        in
        if must then begin
          edge.(i).(j) <- true;
          indeg.(j) <- indeg.(j) + 1
        end
      done
    done;
    (* greedy topological renumbering: among ready ops prefer loads, then
       original order, so the result is deterministic *)
    let order = Array.make n 0 in
    let placed = Array.make n false in
    for k = 0 to n - 1 do
      let better i best =
        match best with
        | None -> true
        | Some bi ->
          let li = not arr.(i).Memsep.m_store
          and lb = not arr.(bi).Memsep.m_store in
          (li && not lb) || (li = lb && i < bi)
      in
      let best = ref None in
      for i = 0 to n - 1 do
        if (not placed.(i)) && indeg.(i) = 0 && better i !best then best := Some i
      done;
      let i = match !best with Some i -> i | None -> assert false in
      placed.(i) <- true;
      order.(k) <- i;
      for j = 0 to n - 1 do
        if edge.(i).(j) then indeg.(j) <- indeg.(j) - 1
      done
    done;
    let newl = Hashtbl.create 8 in
    Array.iteri (fun k i -> Hashtbl.replace newl arr.(i).Memsep.m_lsid k) order;
    let flipped = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if arr.(i).Memsep.m_store <> arr.(j).Memsep.m_store then begin
          let ni = Hashtbl.find newl arr.(i).Memsep.m_lsid
          and nj = Hashtbl.find newl arr.(j).Memsep.m_lsid in
          if ni > nj then incr flipped
        end
      done
    done;
    if !flipped = 0 then (b, 0)
    else begin
      let insts =
        Array.map
          (fun (ins : Isa.inst) ->
            match ins.Isa.op with
            | Isa.Load (ty, w, l) ->
              { ins with Isa.op = Isa.Load (ty, w, Hashtbl.find newl l) }
            | Isa.Store (w, l) ->
              { ins with Isa.op = Isa.Store (w, Hashtbl.find newl l) }
            | _ -> ins)
          b.Trips_edge.Block.insts
      in
      let b' =
        {
          b with
          Trips_edge.Block.insts;
          placement = Array.copy b.Trips_edge.Block.placement;
        }
      in
      Trips_edge.Block.validate b';
      (b', !flipped)
    end
  end
