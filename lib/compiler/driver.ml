module Ast = Trips_tir.Ast
module Cfg = Trips_tir.Cfg
module Lower = Trips_tir.Lower
module Opt = Trips_tir.Opt
module Transform = Trips_tir.Transform
module Image = Trips_tir.Image
module Block = Trips_edge.Block

type preset = {
  pname : string;
  inline_pass : bool;
  unroll : int;
  optimize : bool;
  budget : Hyperblock.budget;
}

let o0 =
  {
    pname = "O0";
    inline_pass = false;
    unroll = 1;
    optimize = false;
    budget = { Hyperblock.default_budget with max_ins = 40 };
  }

let compiled =
  {
    pname = "compiled";
    inline_pass = true;
    unroll = 2;
    optimize = true;
    budget = Hyperblock.default_budget;
  }

let hand =
  {
    pname = "hand";
    inline_pass = true;
    unroll = 8;
    optimize = true;
    budget = { Hyperblock.default_budget with max_ins = 110; tail_dup = 24 };
  }

let basic_blocks =
  {
    pname = "basic-blocks";
    inline_pass = true;
    unroll = 2;
    optimize = true;
    budget = Hyperblock.basic_block_budget;
  }

exception Verify_failed of string * Trips_analysis.Diag.t list

(* Post-pass self-check: run the static analyzer on what a pass just
   produced and name the pass if it introduced an error-level violation.
   Warnings (dead code, dead writes) are reported by `lint`, not here: a
   verification failure must mean the output is unrunnable. *)
let verify_stage ~stage ?known_funcs (bf : Block.func) =
  let ds =
    List.filter
      (fun (d : Trips_analysis.Diag.t) -> d.Trips_analysis.Diag.sev = Trips_analysis.Diag.Error)
      (Trips_analysis.Analyzer.analyze_func ?known_funcs bf)
  in
  if ds <> [] then raise (Verify_failed (stage, ds))

let verify_program ~stage (p : Block.program) =
  let ds =
    List.filter
      (fun (d : Trips_analysis.Diag.t) -> d.Trips_analysis.Diag.sev = Trips_analysis.Diag.Error)
      (Trips_analysis.Analyzer.analyze_program p)
  in
  if ds <> [] then raise (Verify_failed (stage, ds))

let copy_func (f : Cfg.func) : Cfg.func =
  {
    f with
    blocks = List.map (fun (b : Cfg.block) -> { b with Cfg.ins = b.ins }) f.blocks;
  }

(* Split oversized basic blocks into chains so that even budget-1 formation
   produces blocks the hardware can hold. *)
let split_large_blocks ~cap ~mem_cap (f : Cfg.func) =
  let counter = ref 0 in
  let fresh_label base =
    incr counter;
    Printf.sprintf "%s.split%d" base !counter
  in
  let is_mem = function Cfg.Load _ | Cfg.Store _ -> true | _ -> false in
  let rec split_block (b : Cfg.block) : Cfg.block list =
    let rec take n m acc = function
      | [] -> (List.rev acc, [])
      | rest when n <= 0 || m <= 0 -> (List.rev acc, rest)
      | i :: rest -> take (n - 1) (if is_mem i then m - 1 else m) (i :: acc) rest
    in
    let head, tail = take cap mem_cap [] b.ins in
    match tail with
    | [] -> [ b ]
    | _ ->
      let l2 = fresh_label b.label in
      let rest_block = { Cfg.label = l2; ins = tail; term = b.term } in
      { b with Cfg.ins = head; term = Cfg.Jmp l2 } :: split_block rest_block
  in
  f.blocks <- List.concat_map split_block f.blocks

type witness = {
  w_fn : Cfg.func;  (* post-opt input, before splitting *)
  w_split : Cfg.func;  (* after split_large_blocks *)
  w_hf : Hyperblock.hfunc;
  w_ra : Regalloc.t;
  w_prerelax : (string * Block.t) list;  (* blocks as built, pre LSID relax *)
  w_relaxed : int;  (* flipped load/store LSID pairs *)
  w_presched :
    (string * (Trips_edge.Isa.inst array * Block.read array * Block.write array)) list;
  w_bf : Block.func;
}

let compile_func_wit ?(verify = false) ?(relax = true) preset ~layout (fn : Cfg.func) :
    Block.func * witness =
  let rec attempt budget cap =
    let fn' = copy_func fn in
    split_large_blocks ~cap ~mem_cap:(budget.Hyperblock.max_mem - 4 |> max 4) fn';
    match
      let hf = Hyperblock.form budget fn' in
      let ra = Regalloc.allocate hf in
      let blocks = List.map (Dataflow.convert ra ~layout) hf.Hyperblock.hblocks in
      ({ Block.fname = hf.Hyperblock.hname; entry = hf.Hyperblock.hentry; blocks },
       fn', hf, ra)
    with
    | r -> r
    | exception ((Block.Invalid _ | Regalloc.Pressure _) as exn) ->
      let label, reason =
        match exn with
        | Block.Invalid (l, r) -> (l, r)
        | Regalloc.Pressure f -> (f, "register pressure")
        | _ -> assert false
      in
      if budget.Hyperblock.max_ins <= 4 then
        failwith
          (Printf.sprintf "compile %s: block %s cannot fit: %s" fn.name label reason)
      else
        let budget =
          { budget with Hyperblock.max_ins = budget.Hyperblock.max_ins * 2 / 3;
            max_mem = max 4 (budget.Hyperblock.max_mem * 2 / 3);
            tail_dup = budget.Hyperblock.tail_dup * 2 / 3 }
        in
        attempt budget (max 6 (cap * 2 / 3))
  in
  let bf, fn', hf, ra =
    attempt preset.budget (max 8 (preset.budget.Hyperblock.max_ins * 3 / 4))
  in
  (* LSID relaxation: renumber provably-disjoint memory ops so loads stop
     waiting on unrelated stores; the pre-relax block is kept so the
     validator can check the permutation independently *)
  let prerelax = ref [] in
  let relaxed = ref 0 in
  let bf =
    if preset.optimize && relax then begin
      let blocks =
        List.map
          (fun (b : Block.t) ->
            let b', flips = Dataflow.relax b in
            if flips > 0 then begin
              prerelax := (b.Block.label, b) :: !prerelax;
              relaxed := !relaxed + flips
            end;
            b')
          bf.Block.blocks
      in
      { bf with Block.blocks }
    end
    else bf
  in
  if verify then verify_stage ~stage:"dataflow-convert" bf;
  let presched =
    List.map
      (fun (b : Block.t) ->
        (b.Block.label,
         (Array.copy b.Block.insts, Array.copy b.Block.reads, Array.copy b.Block.writes)))
      bf.Block.blocks
  in
  List.iter Schedule.place bf.Block.blocks;
  if verify then verify_stage ~stage:"schedule" bf;
  ( bf,
    { w_fn = fn; w_split = fn'; w_hf = hf; w_ra = ra;
      w_prerelax = List.rev !prerelax; w_relaxed = !relaxed;
      w_presched = presched; w_bf = bf } )

let compile_func ?verify preset ~layout fn =
  fst (compile_func_wit ?verify preset ~layout fn)

(* ------------------------------------------------------------------ *)
(* Translation validation                                             *)
(* ------------------------------------------------------------------ *)

module Transval = Trips_analysis.Transval
module S = Trips_analysis.Symval

(* Per-function pass checkpoints after compilation: splitting and
   formation structurally, allocation by property, dataflow conversion
   symbolically per hyperblock, scheduling as array identity. *)
let validate_func ?max_paths ~sym (w : witness) : Transval.report list =
  let fname = w.w_fn.Cfg.name in
  let dataflow =
    List.map
      (fun (hb : Hyperblock.hblock) ->
        try
          (* hyperblock semantics are validated against the block as built;
             the LSID relaxation that may follow is discharged separately
             by check_relax below *)
          let tgt =
            match List.assoc_opt hb.Hyperblock.hlabel w.w_prerelax with
            | Some b -> b
            | None -> (
              match
                List.find_opt
                  (fun (b : Block.t) -> b.Block.label = hb.Hyperblock.hlabel)
                  w.w_bf.Block.blocks
              with
              | Some b -> b
              | None -> raise (Transval.Refute "hyperblock has no EDGE block"))
          in
          let iface v =
            match Regalloc.reg_of w.w_ra v with
            | r -> S.Var (S.Varch r)
            | exception Not_found -> S.Var (S.Vreg v)
          in
          let ws =
            Option.value ~default:[]
              (Hashtbl.find_opt w.w_ra.Regalloc.write_set hb.Hyperblock.hlabel)
          in
          let writes = List.map (fun v -> (v, Regalloc.reg_of w.w_ra v)) ws in
          Transval.check_hblock ?max_paths ~fname ~sym ~iface ~writes
            ~src:(Witness.ritems_of_items hb.Hyperblock.body)
            tgt
        with
        | Transval.Refute msg | Witness.Mismatch msg ->
          Transval.refuted_report ~stage:"dataflow-convert" ~fname
            ~block:hb.Hyperblock.hlabel msg)
      w.w_hf.Hyperblock.hblocks
  in
  let relax_reports =
    List.map
      (fun (label, pre) ->
        match
          List.find_opt (fun (b : Block.t) -> b.Block.label = label) w.w_bf.Block.blocks
        with
        | Some post -> Transval.check_relax ~fname pre post
        | None ->
          Transval.refuted_report ~stage:"lsid-relax" ~fname ~block:label
            "relaxed block disappeared")
      w.w_prerelax
  in
  Witness.check_split ~fname w.w_fn w.w_split
  @ Witness.check_formation ~fname w.w_split w.w_hf
  @ Witness.check_regalloc ~fname w.w_hf w.w_ra
  @ dataflow
  @ relax_reports
  @ Transval.check_schedule ~fname w.w_presched w.w_bf

module Absint = Trips_analysis.Absint

type gstats = {
  gs_consts : int;
  gs_branches : int;
  gs_rles : int;
  gs_dses : int;
  gs_relaxed : int;
}

let zero_gstats = { gs_consts = 0; gs_branches = 0; gs_rles = 0; gs_dses = 0; gs_relaxed = 0 }

let count_gfacts gs gfs =
  List.fold_left
    (fun gs -> function
      | Opt.Gconst _ -> { gs with gs_consts = gs.gs_consts + 1 }
      | Opt.Gbranch _ -> { gs with gs_branches = gs.gs_branches + 1 }
      | Opt.Grle _ -> { gs with gs_rles = gs.gs_rles + 1 }
      | Opt.Gdse _ -> { gs with gs_dses = gs.gs_dses + 1 })
    gs gfs

(* Run the abstract interpretation and apply the fact-driven global passes
   to every function in place, returning the per-function applied facts.
   [?absint_bug] corrupts the compiler-side analysis only (the validator
   always re-derives with a clean one), for the mutation test suite. *)
let run_global_passes ?absint_bug (cfg : Cfg.program) : (string * Opt.gfact list) list =
  let t = Absint.analyze ?bug:absint_bug cfg in
  List.map
    (fun (f : Cfg.func) -> (f.Cfg.name, Opt.run_global (Absint.facts t f.Cfg.name) f))
    cfg.Cfg.funcs

(* The TIR-level pipeline shared by compilation, the absint CLI and the
   [absint] experiment: inline, unroll, lower, local optimization rounds.
   The result is exactly what the abstract interpretation runs on. *)
let front_end preset (p : Ast.program) : Cfg.program =
  let p = if preset.inline_pass then Transform.inline p else p in
  let p =
    if preset.unroll > 1 then Transform.unroll_program ~factor:preset.unroll p else p
  in
  let cfg = Lower.program p in
  if preset.optimize then Opt.run_program cfg;
  cfg

let run_validation_full ?max_paths ?absint_bug ?(global_opt = true) preset
    (p : Ast.program) : Transval.report list * Block.program * gstats =
  let p = if preset.inline_pass then Transform.inline p else p in
  let p =
    if preset.unroll > 1 then Transform.unroll_program ~factor:preset.unroll p else p
  in
  let cfg = Lower.program p in
  let pre_opt =
    if preset.optimize then Some (List.map copy_func cfg.Cfg.funcs) else None
  in
  if preset.optimize then Opt.run_program cfg;
  (* staged checkpoints around the global passes: local-opt output (mid),
     global application output (g1), local cleanup output (final cfg) *)
  let glob = preset.optimize && global_opt in
  let mid = if glob then Some (List.map copy_func cfg.Cfg.funcs) else None in
  let applied = if glob then run_global_passes ?absint_bug cfg else [] in
  let g1 = if glob then Some (List.map copy_func cfg.Cfg.funcs) else None in
  if glob then Opt.run_program cfg;
  let layout = Image.layout cfg.Cfg.globals in
  let sym s =
    match List.assoc_opt s layout with Some a -> Int64.of_int a | None -> 0L
  in
  let reports = ref [] in
  let check_opt_stage pres posts =
    List.iter2
      (fun pre (post : Cfg.func) ->
        reports :=
          !reports @ Transval.check_opt ?max_paths ~sym ~fname:post.Cfg.name pre post)
      pres posts
  in
  (match (pre_opt, mid) with
  | Some pres, Some mids -> check_opt_stage pres mids
  | _ -> ());
  (match (mid, g1) with
  | Some mids, Some g1s ->
    let midp = { Cfg.globals = cfg.Cfg.globals; funcs = mids } in
    let g1p = { Cfg.globals = cfg.Cfg.globals; funcs = g1s } in
    reports := !reports @ Transval.check_gapply midp applied g1p;
    check_opt_stage g1s cfg.Cfg.funcs
  | _ -> ());
  let wits = List.map (compile_func_wit ~relax:global_opt preset ~layout) cfg.Cfg.funcs in
  List.iter (fun (_, w) -> reports := !reports @ validate_func ?max_paths ~sym w) wits;
  let prog = { Block.globals = cfg.Cfg.globals; funcs = List.map fst wits } in
  Block.validate_program prog;
  reports := !reports @ Transval.check_link prog;
  let gs = List.fold_left (fun gs (_, gfs) -> count_gfacts gs gfs) zero_gstats applied in
  let gs =
    List.fold_left
      (fun gs (_, w) -> { gs with gs_relaxed = gs.gs_relaxed + w.w_relaxed })
      gs wits
  in
  (!reports, prog, gs)

let run_validation ?max_paths ?absint_bug preset p =
  let reports, prog, _ = run_validation_full ?max_paths ?absint_bug preset p in
  (reports, prog)

let validate = run_validation

let compile_stats ?(verify = false) ?(validate = false) ?absint_bug
    ?(global_opt = true) preset (p : Ast.program) : Block.program * gstats =
  if validate then begin
    let reports, prog, gs = run_validation_full ?absint_bug ~global_opt preset p in
    (match
       List.find_opt
         (fun (r : Transval.report) -> r.Transval.r_verdict = Transval.Vrefuted)
         reports
     with
    | Some r ->
      let guilty =
        List.filter
          (fun (r' : Transval.report) ->
            r'.Transval.r_stage = r.Transval.r_stage
            && r'.Transval.r_verdict = Transval.Vrefuted)
          reports
      in
      raise (Verify_failed (r.Transval.r_stage, Transval.report_diags guilty))
    | None -> ());
    if verify then verify_program ~stage:"link" prog;
    (prog, gs)
  end
  else begin
    let cfg = front_end preset p in
    let glob = preset.optimize && global_opt in
    let applied = if glob then run_global_passes ?absint_bug cfg else [] in
    if glob then Opt.run_program cfg;
    let gs = List.fold_left (fun gs (_, gfs) -> count_gfacts gs gfs) zero_gstats applied in
    let layout = Image.layout cfg.Cfg.globals in
    let wits =
      List.map (compile_func_wit ~verify ~relax:global_opt preset ~layout) cfg.Cfg.funcs
    in
    let gs =
      List.fold_left
        (fun gs (_, w) -> { gs with gs_relaxed = gs.gs_relaxed + w.w_relaxed })
        gs wits
    in
    let prog = { Block.globals = cfg.Cfg.globals; funcs = List.map fst wits } in
    Block.validate_program prog;
    if verify then verify_program ~stage:"link" prog;
    (prog, gs)
  end

let compile ?verify ?validate ?absint_bug ?global_opt preset p =
  fst (compile_stats ?verify ?validate ?absint_bug ?global_opt preset p)
