(** Dataflow conversion: hyperblock trees to EDGE blocks.

    Implements the paper's dataflow predication model ([22]):

    - pure operations from both arms of an if-converted branch execute
      {e speculatively} (unpredicated) and the surviving value is selected by
      a pair of predicated [mov]s at the merge point;
    - tests are chained: a nested branch's test is predicated on its parent,
      so an instruction predicated on the innermost test fires iff its whole
      path was taken;
    - trapping operations (divide/remainder) and loads are predicated rather
      than speculated;
    - stores are unpredicated block outputs whose address and data arrive
      through guard chains that deliver a [null] token on not-taken paths,
      so every LSID completes on every path;
    - register writes complete on every path by merging the new value with
      the prior register value (an extra read + predicated mov).

    Cross-block values use the registers chosen by {!Regalloc}; everything
    else is direct producer-to-consumer communication.  Fanout beyond two
    targets is expanded by {!Trips_edge.Builder}. *)

val convert :
  Regalloc.t ->
  layout:(string * int) list ->
  Hyperblock.hblock ->
  Trips_edge.Block.t
(** @raise Trips_edge.Block.Invalid when the materialized block exceeds a
    hardware limit (the driver retries formation with a smaller budget). *)

val relax : Trips_edge.Block.t -> Trips_edge.Block.t * int
(** LSID-ordering relaxation: renumber load/store sequence IDs along a
    topological order that preserves store-store and may-alias load/store
    order but lets provably-disjoint load/store pairs flip (loads first),
    so hyperblocks serialize fewer memory operations.  Returns the relaxed
    block (the input is untouched) and the number of flipped pairs; a
    count of 0 returns the input block unchanged.  Disjointness is decided
    by {!Trips_analysis.Memsep} and independently re-checked by
    {!Trips_analysis.Transval.check_relax}. *)
