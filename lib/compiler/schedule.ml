module Isa = Trips_edge.Isa
module Block = Trips_edge.Block

(* 5x5 mesh: (0,0) = GT, (0,1..4) = RT0..3, (1..4,0) = DT0..3,
   (1..4,1..4) = the ET grid.  The geometry lives in Isa (shared with the
   block validator, the cycle simulator and the static timing analyzer);
   these are re-exports so scheduler clients keep one import. *)
let tile_position = Isa.tile_position
let rt_position = Isa.rt_position
let dt_position = Isa.dt_position
let gt_position = Isa.gt_position

let dist = Isa.mesh_dist

let place (b : Block.t) =
  let n = Array.length b.insts in
  b.placement <- Array.make n 0;
  if n = 0 then ()
  else begin
    (* dataflow edges for topological order and producer positions *)
    let preds = Array.make n [] in      (* producer inst ids, per consumer *)
    let read_feeds = Array.make n [] in (* RT positions feeding each inst *)
    let indeg = Array.make n 0 in
    let succs = Array.make n [] in
    Array.iteri
      (fun i (ins : Isa.inst) ->
        List.iter
          (function
            | Isa.To_inst (j, _) ->
              preds.(j) <- i :: preds.(j);
              succs.(i) <- j :: succs.(i);
              indeg.(j) <- indeg.(j) + 1
            | Isa.To_write _ -> ())
          ins.targets)
      b.insts;
    Array.iter
      (fun (r : Block.read) ->
        List.iter
          (function
            | Isa.To_inst (j, _) -> read_feeds.(j) <- rt_position r.rreg :: read_feeds.(j)
            | Isa.To_write _ -> ())
          r.rtargets)
      b.reads;
    (* Kahn topological order *)
    let order = Queue.create () in
    let topo = ref [] in
    Array.iteri (fun i d -> if d = 0 then Queue.push i order) indeg;
    let seen = ref 0 in
    while not (Queue.is_empty order) do
      let i = Queue.pop order in
      topo := i :: !topo;
      incr seen;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then Queue.push j order)
        succs.(i)
    done;
    let topo =
      if !seen = n then List.rev !topo
      else
        (* a malformed (cyclic) block: fall back to index order so the
           validator's error surfaces instead of a crash here *)
        List.init n (fun i -> i)
    in
    let occupancy = Array.make Isa.num_ets 0 in
    let writes_to_rt i =
      List.filter_map
        (function
          | Isa.To_write w -> Some (rt_position b.writes.(w).Block.wreg)
          | Isa.To_inst _ -> None)
        b.insts.(i).Isa.targets
    in
    List.iter
      (fun i ->
        let ins = b.insts.(i) in
        let producer_pos =
          List.map (fun p -> tile_position b.placement.(p)) preds.(i) @ read_feeds.(i)
        in
        let anchors =
          producer_pos
          @ writes_to_rt i
          @ (match ins.op with
            | Isa.Load _ | Isa.Store _ -> [ dt_position 0; dt_position 3 ]
              (* bank unknown statically: pull toward the DT column *)
            | Isa.Branch _ -> [ gt_position ]
            | _ -> [])
        in
        let best = ref (-1) in
        let best_cost = ref max_int in
        for et = 0 to Isa.num_ets - 1 do
          if occupancy.(et) < Isa.et_slots then begin
            let pos = tile_position et in
            let c =
              List.fold_left (fun acc a -> acc + dist a pos) 0 anchors
              + occupancy.(et)
            in
            if c < !best_cost then begin
              best_cost := c;
              best := et
            end
          end
        done;
        if !best < 0 then
          raise (Block.Invalid (b.label, "scheduler: no tile with free slots"));
        occupancy.(!best) <- occupancy.(!best) + 1;
        b.placement.(i) <- !best)
      topo
  end

let place_program (p : Block.program) =
  List.iter
    (fun (f : Block.func) -> List.iter place f.blocks)
    p.funcs
