module Cfg = Trips_tir.Cfg

type item =
  | Ins of Cfg.ins
  | If of Cfg.operand * item list * item list
  | Exit of exit_kind
  | Lbl of string
      (* merge marker: the items that follow came from this CFG block;
         carries no semantics, but lets a validator walk the tree
         structurally against the original CFG *)

and exit_kind =
  | Ejump of string
  | Ecall of string * string
  | Eret

type hblock = {
  hlabel : string;
  body : item list;
}

type hfunc = {
  hname : string;
  hentry : string;
  hblocks : hblock list;
  pinned : (Cfg.vreg * int) list;
  hnvregs : int;
  hsynthetic : Cfg.block list;
      (* call-continuation blocks minted during formation, exposed so a
         translation validator can resolve [Lbl] markers that do not
         name an original CFG block *)
}

type budget = {
  max_ins : int;
  max_mem : int;
  tail_dup : int;
  max_exits : int;
  if_convert : bool;
}

let default_budget =
  { max_ins = 100; max_mem = 24; tail_dup = 12; max_exits = 7; if_convert = true }

let basic_block_budget =
  { max_ins = 100; max_mem = 24; tail_dup = 0; max_exits = 7; if_convert = false }

(* EDGE ABI pins (see Exec): r1 return value, r2..r9 arguments. *)
let abi_ret = 1
let abi_args = [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let ins_cost (ins : Cfg.ins) ~depth =
  let base =
    match ins with
    | Cfg.Store _ -> 3 (* null-completion machinery *)
    | Cfg.Bin (_, _, a, b) ->
      let const_cost = function Cfg.Ci _ | Cfg.Sym _ -> 0 | _ -> 0 in
      1 + const_cost a + const_cost b
    | _ -> 1
  in
  if depth > 0 then base + 1 else base

let is_mem = function Cfg.Load _ | Cfg.Store _ -> true | _ -> false

type state = {
  fn : Cfg.func;
  budget : budget;
  preds : (string, int) Hashtbl.t;          (* predecessor counts *)
  synthetic : (string, Cfg.block) Hashtbl.t; (* call continuations *)
  (* continuation label per call site (block, nth call), so re-walking a
     block during tail duplication reuses one continuation instead of
     minting fresh ones forever *)
  site_labels : (string * int, string) Hashtbl.t;
  mutable ret_counter : int;
  v_ret : Cfg.vreg;
  v_args : Cfg.vreg array;
}

let find_block st label =
  match Hashtbl.find_opt st.synthetic label with
  | Some b -> b
  | None -> Cfg.find_block st.fn label

(* Per-hyperblock growth bookkeeping. *)
type grow = {
  mutable est_ins : int;
  mutable est_mem : int;
  mutable leaves : int;
  mutable seeds : string list;        (* labels that must become hyperblocks *)
  mutable path_labels : string list;  (* growth path, for cycle detection *)
}

let fresh_ret_label st =
  let k = st.ret_counter in
  st.ret_counter <- k + 1;
  Printf.sprintf "%s.ret%d" st.fn.name k

(* Convert the instructions of one CFG block, splitting at calls.  Returns
   the converted prefix and [Some exit] if a call cut the block. *)
let rec convert_ins st g depth acc ~ncalls (ins_list : Cfg.ins list)
    (term : Cfg.term) label : item list =
  match ins_list with
  | [] -> List.rev_append acc (convert_term st g depth term label)
  | Cfg.Call (dst, fname, args) :: rest ->
    if List.length args > List.length abi_args then
      failwith (Printf.sprintf "call to %s: too many arguments" fname);
    (* marshal arguments into pinned vregs *)
    let movs =
      List.mapi (fun i a -> Ins (Cfg.Mov (st.v_args.(i), a))) args
    in
    let site = (label, ncalls) in
    let retl =
      match Hashtbl.find_opt st.site_labels site with
      | Some l -> l
      | None ->
        let l = fresh_ret_label st in
        Hashtbl.replace st.site_labels site l;
        (* continuation: capture result, then the rest of this block *)
        let cont_ins =
          (match dst with Some d -> [ Cfg.Mov (d, Cfg.Reg st.v_ret) ] | None -> [])
          @ rest
        in
        Hashtbl.replace st.synthetic l { Cfg.label = l; ins = cont_ins; term };
        Hashtbl.replace st.preds l 1;
        l
    in
    if not (List.mem retl g.seeds) then g.seeds <- retl :: g.seeds;
    g.est_ins <- g.est_ins + List.length movs + 1;
    List.rev_append acc (movs @ [ Exit (Ecall (fname, retl)) ])
  | ins :: rest ->
    g.est_ins <- g.est_ins + ins_cost ins ~depth;
    if is_mem ins then g.est_mem <- g.est_mem + 1;
    convert_ins st g depth (Ins ins :: acc) ~ncalls rest term label

and convert_term st g depth (term : Cfg.term) _label : item list =
  match term with
  | Cfg.Ret None -> [ Exit Eret ]
  | Cfg.Ret (Some v) ->
    g.est_ins <- g.est_ins + 1;
    [ Ins (Cfg.Mov (st.v_ret, v)); Exit Eret ]
  | Cfg.Jmp l -> continue_to st g depth l
  | Cfg.Br (c, l1, l2) ->
    if st.budget.if_convert && g.leaves < st.budget.max_exits then begin
      g.leaves <- g.leaves + 1;
      g.est_ins <- g.est_ins + 1 (* the test *);
      let then_items = continue_to st g (depth + 1) l1 in
      let else_items = continue_to st g (depth + 1) l2 in
      [ If (c, then_items, else_items) ]
    end
    else begin
      g.leaves <- g.leaves + 1;
      g.est_ins <- g.est_ins + 3 (* test + two branches *);
      let exit_to l =
        if not (List.mem l g.seeds) then g.seeds <- l :: g.seeds;
        [ Exit (Ejump l) ]
      in
      [ If (c, exit_to l1, exit_to l2) ]
    end

(* Decide whether to merge the destination block or end with an exit. *)
and continue_to st g depth label : item list =
  let mergeable =
    match find_block st label with
    | exception Not_found -> false
    | b ->
      let npred = Option.value ~default:0 (Hashtbl.find_opt st.preds label) in
      let size = List.length b.ins in
      let small_enough =
        g.est_ins + size <= st.budget.max_ins && g.est_mem <= st.budget.max_mem
      in
      let single_or_dup = npred <= 1 || size <= st.budget.tail_dup in
      (* never merge a block that is on the current growth path: the
         back-edge becomes an exit to the (separate) seed *)
      let on_path = List.mem label g.path_labels in
      small_enough && single_or_dup && (not on_path)
      && (st.budget.if_convert || depth = 0)
  in
  if mergeable then begin
    let b = find_block st label in
    g.path_labels <- label :: g.path_labels;
    let items = convert_ins st g depth [] ~ncalls:0 b.ins b.term label in
    g.path_labels <- List.tl g.path_labels;
    Lbl label :: items
  end
  else begin
    if not (List.mem label g.seeds) then g.seeds <- label :: g.seeds;
    [ Exit (Ejump label) ]
  end

let form budget (fn : Cfg.func) : hfunc =
  let preds = Hashtbl.create 32 in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun l ->
          Hashtbl.replace preds l (1 + Option.value ~default:0 (Hashtbl.find_opt preds l)))
        (Cfg.successors b.term))
    fn.blocks;
  let v_ret = Cfg.fresh fn in
  let v_args = Array.init (List.length abi_args) (fun _ -> Cfg.fresh fn) in
  let st =
    { fn; budget; preds; synthetic = Hashtbl.create 8;
      site_labels = Hashtbl.create 8; ret_counter = 0; v_ret; v_args }
  in
  let formed = Hashtbl.create 32 in
  let order = ref [] in
  let entry_label = (Cfg.entry fn).label in
  let worklist = Queue.create () in
  Queue.push entry_label worklist;
  while not (Queue.is_empty worklist) do
    let label = Queue.pop worklist in
    if not (Hashtbl.mem formed label) then begin
      Hashtbl.replace formed label ();
      let g = { est_ins = 0; est_mem = 0; leaves = 1; seeds = []; path_labels = [ label ] } in
      let b = find_block st label in
      let body = convert_ins st g 0 [] ~ncalls:0 b.ins b.term label in
      (* entry block: bind parameters from the pinned argument registers *)
      let body =
        if label = entry_label then
          let binds =
            List.mapi (fun i (p, _) -> Ins (Cfg.Mov (p, Cfg.Reg st.v_args.(i)))) fn.params
          in
          binds @ body
        else body
      in
      order := { hlabel = label; body } :: !order;
      List.iter (fun s -> Queue.push s worklist) (List.rev g.seeds)
    end
  done;
  let pinned = (v_ret, abi_ret) :: List.mapi (fun i r -> (v_args.(i), r)) abi_args in
  {
    hname = fn.name;
    hentry = entry_label;
    hblocks = List.rev !order;
    pinned;
    hnvregs = fn.next_vreg;
    hsynthetic = Hashtbl.fold (fun _ b acc -> b :: acc) st.synthetic [];
  }

(* ------------------------------------------------------------------ *)
(* Analyses over hyperblock trees                                      *)
(* ------------------------------------------------------------------ *)

let item_uses = function
  | Ins i -> Cfg.uses i
  | If (c, _, _) -> [ c ]
  | Exit _ | Lbl _ -> []

let rec body_defs (items : item list) : Cfg.vreg list =
  List.concat_map
    (function
      | Ins i -> Cfg.defs i
      | If (_, t, e) -> body_defs t @ body_defs e
      | Exit _ | Lbl _ -> [])
    items

(* Definitions guaranteed on every path to every exit: straight-line
   definitions plus the intersection of both arms of each [If].  This is
   the liveness kill set — a definition on only one predicated path must
   not kill, because the merge on the other path reads the old register
   value. *)
let rec must_defs (items : item list) : Cfg.vreg list =
  match items with
  | [] -> []
  | Ins i :: rest -> Cfg.defs i @ must_defs rest
  | Lbl _ :: rest -> must_defs rest
  | If (_, t, e) :: rest ->
    let dt = must_defs t and de = must_defs e in
    List.filter (fun v -> List.mem v de) dt @ must_defs rest
  | Exit _ :: _ -> []

let prefix_defs = must_defs

let body_uses_before_def (items : item list) : Cfg.vreg list =
  (* walk paths tracking defined-so-far; a use not yet defined is live-in *)
  let live = Hashtbl.create 16 in
  let rec go defined items =
    List.fold_left
      (fun defined item ->
        match item with
        | Ins i ->
          List.iter
            (function
              | Cfg.Reg r when not (List.mem r defined) -> Hashtbl.replace live r ()
              | _ -> ())
            (Cfg.uses i);
          Cfg.defs i @ defined
        | If (c, t, e) ->
          (match c with
          | Cfg.Reg r when not (List.mem r defined) -> Hashtbl.replace live r ()
          | _ -> ());
          let _ = go defined t in
          let _ = go defined e in
          (* conservatively, only defs on both paths dominate the rest;
             since If is always last this does not matter in practice *)
          defined
        | Exit _ | Lbl _ -> defined)
      defined items
  in
  let _ = go [] items in
  Hashtbl.fold (fun r () acc -> r :: acc) live []

let rec exits_of_items items =
  List.concat_map
    (function
      | Ins _ | Lbl _ -> []
      | If (_, t, e) -> exits_of_items t @ exits_of_items e
      | Exit k -> [ k ])
    items

let exits_of hb = exits_of_items hb.body

let rec pp_items ppf items =
  List.iter
    (fun item ->
      match item with
      | Ins i -> Format.fprintf ppf "%a@," Cfg.pp_ins i
      | If (c, t, e) ->
        Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}@[<v 2> else {@,%a@]@,}@,"
          Cfg.pp_operand c pp_items t pp_items e
      | Exit (Ejump l) -> Format.fprintf ppf "exit -> %s@," l
      | Exit (Ecall (f, r)) -> Format.fprintf ppf "call %s, resume %s@," f r
      | Exit Eret -> Format.fprintf ppf "return@,"
      | Lbl l -> Format.fprintf ppf "(* from %s *)@," l)
    items

let pp_hblock ppf hb =
  Format.fprintf ppf "@[<v 2>hyperblock %s:@,%a@]" hb.hlabel pp_items hb.body
