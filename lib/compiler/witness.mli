(** Structural translation validation of the compiler-internal passes.

    Complements {!Trips_analysis.Transval}: block splitting, hyperblock
    formation and register allocation produce intermediate structures
    rather than executable code, so they are validated structurally
    (splitting, formation) or by property (allocation) instead of
    symbolically.  See DESIGN.md §11. *)

exception Mismatch of string

val ritems_of_items :
  Hyperblock.item list -> Trips_analysis.Transval.ritem list
(** Source region of a hyperblock body: merge markers dropped, exits
    mapped.  @raise Mismatch if a [Call] instruction survived formation. *)

val check_split :
  fname:string ->
  Trips_tir.Cfg.func ->
  Trips_tir.Cfg.func ->
  Trips_analysis.Transval.report list
(** Every original block must be reproduced by a chain of split blocks
    with identical concatenated instructions and final terminator. *)

val check_formation :
  fname:string ->
  Trips_tir.Cfg.func ->
  Hyperblock.hfunc ->
  Trips_analysis.Transval.report list
(** Walk every hyperblock's item tree against the (split) CFG:
    instructions verbatim, returns rewritten through the pinned return
    vreg, calls split at continuation blocks, branch arms either
    exiting to formed hyperblocks or merging under [Lbl] markers. *)

val check_regalloc :
  fname:string ->
  Hyperblock.hfunc ->
  Regalloc.t ->
  Trips_analysis.Transval.report list
(** Liveness tables must be a sound fixpoint, live values must hold
    distinct registers per block boundary, pins must be respected and
    write sets must equal the defs-live-out rule. *)
