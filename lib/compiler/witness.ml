(* Structural translation validation for the compiler-internal passes
   whose output is not yet executable on its own: block splitting,
   hyperblock formation and register allocation.  The semantic passes
   (optimization, dataflow conversion, scheduling, linking, the RISC
   backend) are checked symbolically by {!Trips_analysis.Transval};
   the checks here establish that the intermediate structures faithfully
   mirror the CFG, so the symbolic checks downstream start from a
   trusted source region. *)

module Cfg = Trips_tir.Cfg
module H = Hyperblock
module T = Trips_analysis.Transval
module IS = Set.Make (Int)

exception Mismatch of string

let fail fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

let ins_eq (a : Cfg.ins) (b : Cfg.ins) = Stdlib.compare a b = 0
let term_eq (a : Cfg.term) (b : Cfg.term) = Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Source regions from hyperblock trees                                *)
(* ------------------------------------------------------------------ *)

(* Drop the merge markers and map exits; the result feeds
   {!Trips_analysis.Transval.check_hblock}. *)
let rec ritems_of_items (items : H.item list) : T.ritem list =
  List.concat_map
    (function
      | H.Lbl _ -> []
      | H.Ins (Cfg.Call _) -> raise (Mismatch "call instruction inside a hyperblock")
      | H.Ins i -> [ T.Rins i ]
      | H.If (c, t, e) -> [ T.Rif (c, ritems_of_items t, ritems_of_items e) ]
      | H.Exit (H.Ejump l) -> [ T.Rexit (T.Xjump l) ]
      | H.Exit (H.Ecall (f, r)) -> [ T.Rexit (T.Xcall (f, r)) ]
      | H.Exit H.Eret -> [ T.Rexit T.Xret ])
    items

(* ------------------------------------------------------------------ *)
(* Block splitting                                                     *)
(* ------------------------------------------------------------------ *)

(* [split_large_blocks] may only replace a block by a chain of blocks
   whose concatenated instructions and final terminator reproduce the
   original; chain links are fresh ".splitN" labels absent from the
   original function. *)
let check_split ~fname (pre : Cfg.func) (post : Cfg.func) : T.report list =
  let pre_labels =
    List.fold_left
      (fun s (b : Cfg.block) -> s |> fun s -> b.Cfg.label :: s)
      [] pre.Cfg.blocks
  in
  let post_tbl = Hashtbl.create 32 in
  List.iter
    (fun (b : Cfg.block) -> Hashtbl.replace post_tbl b.Cfg.label b)
    post.Cfg.blocks;
  let used = Hashtbl.create 32 in
  let report_of (b : Cfg.block) =
    try
      let rec collect label acc =
        let sb =
          match Hashtbl.find_opt post_tbl label with
          | Some sb -> sb
          | None -> fail "block %s missing after splitting" label
        in
        Hashtbl.replace used label ();
        let acc = List.rev_append sb.Cfg.ins acc in
        match sb.Cfg.term with
        | Cfg.Jmp l2
          when (let p = label ^ ".split" in
                String.length l2 > String.length p
                && String.sub l2 0 (String.length p) = p)
               && not (List.mem l2 pre_labels) ->
          collect l2 acc
        | t -> (List.rev acc, t)
      in
      let ins, term = collect b.Cfg.label [] in
      if not (List.length ins = List.length b.Cfg.ins && List.for_all2 ins_eq ins b.Cfg.ins)
      then fail "block %s: instructions changed by splitting" b.Cfg.label;
      if not (term_eq term b.Cfg.term) then
        fail "block %s: terminator changed by splitting" b.Cfg.label;
      T.mk_report ~stage:"split" ~fname ~block:b.Cfg.label T.Vproved 1 []
    with Mismatch msg -> T.refuted_report ~stage:"split" ~fname ~block:b.Cfg.label msg
  in
  let reports = List.map report_of pre.Cfg.blocks in
  let stray =
    List.filter
      (fun (b : Cfg.block) -> not (Hashtbl.mem used b.Cfg.label))
      post.Cfg.blocks
  in
  reports
  @ List.map
      (fun (b : Cfg.block) ->
        T.refuted_report ~stage:"split" ~fname ~block:b.Cfg.label
          "block does not belong to any split chain")
      stray

(* ------------------------------------------------------------------ *)
(* Hyperblock formation                                                *)
(* ------------------------------------------------------------------ *)

(* Recover the ABI-pinned vregs from the pin list. *)
let pins_of (hf : H.hfunc) =
  let v_ret =
    match List.find_opt (fun (_, r) -> r = H.abi_ret) hf.H.pinned with
    | Some (v, _) -> v
    | None -> raise (Mismatch "no pinned return-value vreg")
  in
  let v_args =
    List.map
      (fun r ->
        match List.find_opt (fun (_, r') -> r' = r) hf.H.pinned with
        | Some (v, _) -> v
        | None -> raise (Mismatch "missing pinned argument vreg"))
      H.abi_args
    |> Array.of_list
  in
  (v_ret, v_args)

(* Formation is checked by walking each hyperblock's item tree against
   the CFG: items must replay block instructions verbatim, with three
   rewrites allowed — [Ret v] becomes a move into the pinned return
   vreg, a [Call] becomes argument moves plus a call exit whose
   continuation block holds the remainder, and a [Br]/[Jmp] either
   exits to a formed hyperblock or merges the successor under an [Lbl]
   marker.  Tail duplication and loops are handled naturally: each
   merge point re-enters the walker on the named block. *)
let check_formation ~fname (fn : Cfg.func) (hf : H.hfunc) : T.report list =
  let blocks = Hashtbl.create 32 in
  List.iter (fun (b : Cfg.block) -> Hashtbl.replace blocks b.Cfg.label b) fn.Cfg.blocks;
  List.iter
    (fun (b : Cfg.block) -> Hashtbl.replace blocks b.Cfg.label b)
    hf.H.hsynthetic;
  let hlabels = Hashtbl.create 32 in
  List.iter (fun (hb : H.hblock) -> Hashtbl.replace hlabels hb.H.hlabel ()) hf.H.hblocks;
  let find_block label =
    match Hashtbl.find_opt blocks label with
    | Some b -> b
    | None -> fail "no CFG block named %s" label
  in
  let check_hblock_body (v_ret, v_args) (hb : H.hblock) =
    let require_hblock l =
      if not (Hashtbl.mem hlabels l) then fail "exit to %s, which is not a hyperblock" l
    in
    let rec match_ins items ins term =
      match (items, ins) with
      | _, Cfg.Call (dst, callee, args) :: ins_rest ->
        let rec eat items i =
          if i >= List.length args then items
          else
            match items with
            | H.Ins (Cfg.Mov (va, a)) :: tl
              when va = v_args.(i) && Stdlib.compare a (List.nth args i) = 0 ->
              eat tl (i + 1)
            | _ -> fail "call to %s: argument marshalling mismatch" callee
        in
        (match eat items 0 with
        | [ H.Exit (H.Ecall (callee', retl)) ] ->
          if callee' <> callee then
            fail "call exit names %s instead of %s" callee' callee;
          require_hblock retl;
          let cb = find_block retl in
          let expect_ins =
            (match dst with Some d -> [ Cfg.Mov (d, Cfg.Reg v_ret) ] | None -> [])
            @ ins_rest
          in
          if
            not
              (List.length cb.Cfg.ins = List.length expect_ins
              && List.for_all2 ins_eq cb.Cfg.ins expect_ins)
          then fail "continuation %s does not hold the rest of the block" retl;
          if not (term_eq cb.Cfg.term term) then
            fail "continuation %s changes the terminator" retl
        | _ -> fail "call to %s must end the path with a call exit" callee)
      | H.Ins i :: tl, i' :: ins_rest ->
        if not (ins_eq i i') then
          fail "instruction mismatch in %s: expected %s" hb.H.hlabel
            (Format.asprintf "%a" Cfg.pp_ins i');
        match_ins tl ins_rest term
      | items, [] -> match_term items term
      | _, i' :: _ ->
        fail "missing instruction in %s: %s" hb.H.hlabel
          (Format.asprintf "%a" Cfg.pp_ins i')
    and match_term items term =
      match (term, items) with
      | Cfg.Ret None, [ H.Exit H.Eret ] -> ()
      | Cfg.Ret (Some v), [ H.Ins (Cfg.Mov (d, v')); H.Exit H.Eret ]
        when d = v_ret && Stdlib.compare v v' = 0 ->
        ()
      | Cfg.Jmp l, items -> match_cont items l
      | Cfg.Br (c, l1, l2), [ H.If (c', t, e) ] when Stdlib.compare c c' = 0 ->
        match_cont t l1;
        match_cont e l2
      | _ -> fail "terminator mismatch in %s" hb.H.hlabel
    and match_cont items l =
      match items with
      | [ H.Exit (H.Ejump l') ] when l' = l -> require_hblock l
      | H.Lbl l' :: rest when l' = l ->
        let b = find_block l in
        match_ins rest b.Cfg.ins b.Cfg.term
      | _ -> fail "continuation to %s is neither an exit nor a merged block" l
    in
    let b = find_block hb.H.hlabel in
    let body =
      if hb.H.hlabel = hf.H.hentry then begin
        (* entry: parameters are bound from the pinned argument vregs *)
        let rec eat body i = function
          | [] -> body
          | (p, _) :: ps -> (
            match body with
            | H.Ins (Cfg.Mov (p', src)) :: tl
              when p' = p && Stdlib.compare src (Cfg.Reg v_args.(i)) = 0 ->
              eat tl (i + 1) ps
            | _ -> fail "entry block does not bind parameter v%d" p)
        in
        eat hb.H.body 0 fn.Cfg.params
      end
      else hb.H.body
    in
    match_ins body b.Cfg.ins b.Cfg.term
  in
  try
    let pins = pins_of hf in
    if hf.H.hentry <> (Cfg.entry fn).Cfg.label then
      [
        T.refuted_report ~stage:"hyperblock" ~fname ~block:hf.H.hentry
          "entry label does not match the CFG entry";
      ]
    else
      List.map
        (fun (hb : H.hblock) ->
          try
            check_hblock_body pins hb;
            T.mk_report ~stage:"hyperblock" ~fname ~block:hb.H.hlabel T.Vproved 1 []
          with Mismatch msg ->
            T.refuted_report ~stage:"hyperblock" ~fname ~block:hb.H.hlabel msg)
        hf.H.hblocks
  with Mismatch msg -> [ T.refuted_report ~stage:"hyperblock" ~fname ~block:"*" msg ]

(* ------------------------------------------------------------------ *)
(* Register allocation                                                 *)
(* ------------------------------------------------------------------ *)

(* The allocation is validated by property, not by replay: the claimed
   liveness tables must be a sound fixpoint of the dataflow equations
   (so they may over- but never under-approximate), every live value
   must hold a register distinct from every other value live at the
   same boundary, pins must be respected, and each block's write set
   must cover exactly the defs that are live out (with the callee-
   written return register excluded at call exits).  Together with the
   per-block symbolic check of dataflow conversion this closes the
   cross-block argument: values pass between blocks through registers
   that no other live value or declared write clobbers. *)
let check_regalloc ~fname (hf : H.hfunc) (ra : Regalloc.t) : T.report list =
  let bad = ref [] in
  let err fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  (try
     let v_ret, _ = pins_of hf in
     let arg_pins =
       IS.of_list (List.filter_map (fun (v, r) -> if r <> H.abi_ret then Some v else None) hf.H.pinned)
     in
     List.iter
       (fun (v, r) ->
         match Hashtbl.find_opt ra.Regalloc.assign v with
         | Some r' when r' = r -> ()
         | Some r' -> err "pinned v%d assigned r%d instead of r%d" v r' r
         | None -> err "pinned v%d has no register" v)
       hf.H.pinned;
     let live tbl l = IS.of_list (Option.value ~default:[] (Hashtbl.find_opt tbl l)) in
     List.iter
       (fun (hb : H.hblock) ->
         let l = hb.H.hlabel in
         let li = live ra.Regalloc.live_in l and lo = live ra.Regalloc.live_out l in
         let defs = IS.of_list (H.body_defs hb.H.body) in
         let kill = IS.of_list (H.prefix_defs hb.H.body) in
         let uses = IS.of_list (H.body_uses_before_def hb.H.body) in
         let exits = H.exits_of hb in
         let call_exit = List.exists (function H.Ecall _ -> true | _ -> false) exits in
         (* use/use_end below, transfer soundness *)
         IS.iter
           (fun v -> if not (IS.mem v li) then err "%s: used v%d not live-in" l v)
           uses;
         List.iter
           (function
             | H.Eret ->
               if not (IS.mem v_ret lo) then err "%s: v_ret not live-out at ret" l
             | H.Ecall _ ->
               IS.iter
                 (fun v ->
                   if not (IS.mem v lo) then
                     err "%s: argument pin v%d not live-out at call" l v)
                 (IS.inter defs arg_pins)
             | H.Ejump l2 ->
               IS.iter
                 (fun v ->
                   if not (IS.mem v lo) then
                     err "%s: v%d live into %s but not live-out" l v l2)
                 (live ra.Regalloc.live_in l2))
           exits;
         IS.iter
           (fun v ->
             if not (IS.mem v li) then err "%s: v%d live-out survives kill but not live-in" l v)
           (IS.diff lo kill);
         (* assignments exist and are injective per boundary *)
         let check_boundary what s =
           let seen = Hashtbl.create 16 in
           IS.iter
             (fun v ->
               match Hashtbl.find_opt ra.Regalloc.assign v with
               | None -> err "%s: %s v%d has no register" l what v
               | Some r -> (
                 if r < 0 || r >= Trips_edge.Isa.num_regs then
                   err "%s: v%d assigned out-of-range r%d" l v r;
                 match Hashtbl.find_opt seen r with
                 | Some v' -> err "%s: %s v%d and v%d share r%d" l what v v' r
                 | None -> Hashtbl.replace seen r v))
             s
         in
         check_boundary "live-in" li;
         check_boundary "live-out" lo;
         (* write set rule *)
         let defs' = if call_exit then IS.add v_ret defs else defs in
         let expect = IS.inter defs' lo in
         let expect =
           if call_exit && not (IS.mem v_ret defs) then IS.remove v_ret expect
           else expect
         in
         let claimed =
           IS.of_list (Option.value ~default:[] (Hashtbl.find_opt ra.Regalloc.write_set l))
         in
         if not (IS.equal claimed expect) then
           err "%s: write set {%s} differs from defs-live-out {%s}" l
             (String.concat "," (List.map string_of_int (IS.elements claimed)))
             (String.concat "," (List.map string_of_int (IS.elements expect))))
       hf.H.hblocks
   with Mismatch msg -> bad := msg :: !bad);
  match !bad with
  | [] -> [ T.mk_report ~stage:"regalloc" ~fname ~block:"*" T.Vproved 1 [] ]
  | msgs -> List.rev_map (fun m -> T.refuted_report ~stage:"regalloc" ~fname ~block:"*" m) msgs
