(** Hyperblock formation: from CFG basic blocks to TRIPS-block regions.

    Mirrors the TRIPS compiler's block former (§2, [11], [21]): basic blocks
    are merged into larger single-entry regions using if-conversion
    (producing the structured predication tree consumed by {!Dataflow}),
    straight-line concatenation, and implicit tail duplication (growing into
    a join block that other predecessors still reach separately duplicates
    its code).  Calls cut blocks: a call becomes a predicated call exit and
    the remainder of the block restarts at a fresh return label, which is why
    call-heavy code ends up with small blocks (§7).

    A resource budget bounds growth; the driver retries formation with a
    smaller budget when the materialized block overflows a hardware limit. *)

type item =
  | Ins of Trips_tir.Cfg.ins          (* never a [Call] *)
  | If of Trips_tir.Cfg.operand * item list * item list
  | Exit of exit_kind
  | Lbl of string
      (* semantics-free merge marker naming the CFG block the following
         items came from; consumed by the translation validator *)

and exit_kind =
  | Ejump of string
  | Ecall of string * string          (* callee function, return label *)
  | Eret

type hblock = {
  hlabel : string;
  body : item list;                   (* every path ends in exactly one Exit *)
}

type hfunc = {
  hname : string;
  hentry : string;
  hblocks : hblock list;
  pinned : (Trips_tir.Cfg.vreg * int) list;  (* ABI-pinned vregs -> arch regs *)
  hnvregs : int;
  hsynthetic : Trips_tir.Cfg.block list;
      (* call-continuation blocks minted during formation; resolves [Lbl]
         markers that do not name an original CFG block *)
}

type budget = {
  max_ins : int;        (* estimated instructions before merging stops *)
  max_mem : int;        (* estimated memory ops *)
  tail_dup : int;       (* max size of a multi-predecessor block to duplicate *)
  max_exits : int;
  if_convert : bool;    (* false = basic-block mode (Fig 7 configs A/B) *)
}

val default_budget : budget
val basic_block_budget : budget

val abi_ret : int
(** Architectural register pinned to the return value (r1). *)

val abi_args : int list
(** Architectural registers pinned to the arguments (r2..r9). *)

val form : budget -> Trips_tir.Cfg.func -> hfunc
(** @raise Failure on malformed input (e.g. more than 8 call arguments). *)

val item_uses : item -> Trips_tir.Cfg.operand list

val body_defs : item list -> Trips_tir.Cfg.vreg list
(** May-defs: assigned on at least one path (the write-set candidates). *)

val prefix_defs : item list -> Trips_tir.Cfg.vreg list
(** Must-defs: assigned on every path to every exit (straight-line code
    plus both-arm intersections) — the only sound liveness kill set under
    predication. *)

val body_uses_before_def : item list -> Trips_tir.Cfg.vreg list
(** Vregs read on some path before any definition (live-in candidates). *)

val exits_of : hblock -> exit_kind list
val pp_hblock : Format.formatter -> hblock -> unit
