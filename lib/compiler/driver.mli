(** End-to-end TRIPS compilation pipeline.

    [AST -> (inline, unroll) -> CFG -> optimize -> hyperblock formation ->
    register allocation -> dataflow conversion -> placement], with an outer
    retry loop: when a formed region overflows a hardware limit during
    materialization, formation is redone with a smaller growth budget
    (and, in the limit, basic blocks are split).

    Presets model the paper's code-quality levels:
    - {!o0}: no optimization, no if-conversion — a floor for ablations;
    - {!compiled}: the paper's "C" bars (the TRIPS compiler's output);
    - {!hand}: the paper's "H" bars — the hand-optimizations it describes as
      "largely mechanical" (deeper unrolling, aggressive inlining, larger
      regions) applied automatically;
    - {!basic_blocks}: hyperblock formation disabled, used by the Fig 7
      predictor study's basic-block configurations. *)

type preset = {
  pname : string;
  inline_pass : bool;
  unroll : int;
  optimize : bool;
  budget : Hyperblock.budget;
}

val o0 : preset
val compiled : preset
val hand : preset
val basic_blocks : preset

exception Verify_failed of string * Trips_analysis.Diag.t list
(** [(stage, findings)]: the static analyzer found error-level violations
    in the output of a compilation stage ("dataflow-convert", "schedule"
    or "link"), i.e. that stage introduced them. *)

type gstats = {
  gs_consts : int;  (** global constant/copy rewrites applied *)
  gs_branches : int;  (** branches folded by range facts *)
  gs_rles : int;  (** redundant loads eliminated *)
  gs_dses : int;  (** dead stores eliminated *)
  gs_relaxed : int;  (** load/store LSID pairs reordered *)
}

val zero_gstats : gstats

val compile :
  ?verify:bool ->
  ?validate:bool ->
  ?absint_bug:int ->
  ?global_opt:bool ->
  preset ->
  Trips_tir.Ast.program ->
  Trips_edge.Block.program
(** [~verify:true] runs the {!Trips_analysis.Analyzer} after each
    block-producing stage and raises {!Verify_failed} naming the stage
    that introduced a violation.  [~validate:true] additionally runs the
    translation validator ({!Trips_analysis.Transval}) against every
    pass checkpoint — optimization, splitting, hyperblock formation,
    register allocation, dataflow conversion, scheduling, linking — and
    raises {!Verify_failed} naming the first refuted stage.
    @raise Failure when a function cannot be made to fit even at the
    smallest budget (e.g. a single instruction stream with >32 live-in
    registers).

    Optimizing presets additionally run the fact-driven global passes
    (sparse constant/branch folding, redundant-load and dead-store
    elimination, LSID-ordering relaxation) between the local optimizer
    rounds; under [~validate:true] every applied fact is re-derived and
    its application replayed by the validator.  [?absint_bug] corrupts
    the compiler-side abstract interpretation (1..{!Trips_analysis.Absint.num_bugs})
    so the mutation test suite can demonstrate the validator catches a
    broken analysis; the validator side always runs clean. *)

val compile_stats :
  ?verify:bool ->
  ?validate:bool ->
  ?absint_bug:int ->
  ?global_opt:bool ->
  preset ->
  Trips_tir.Ast.program ->
  Trips_edge.Block.program * gstats
(** [compile] plus the global-optimization hit counts.
    [~global_opt:false] disables the fact-driven global passes and the
    LSID relaxation (ablation baseline for the [absint] experiment). *)

val front_end :
  preset -> Trips_tir.Ast.program -> Trips_tir.Cfg.program
(** The TIR-level pipeline up to (and including) the local optimizer:
    exactly the program the abstract interpretation analyzes. *)

val compile_func :
  ?verify:bool ->
  preset -> layout:(string * int) list -> Trips_tir.Cfg.func -> Trips_edge.Block.func

(** {1 Translation validation} *)

type witness = {
  w_fn : Trips_tir.Cfg.func;  (** post-opt input, before splitting *)
  w_split : Trips_tir.Cfg.func;  (** after oversized blocks were split *)
  w_hf : Hyperblock.hfunc;
  w_ra : Regalloc.t;
  w_prerelax : (string * Trips_edge.Block.t) list;
      (** blocks as built by dataflow conversion, before LSID relaxation;
          only blocks the relaxation actually changed appear here *)
  w_relaxed : int;  (** flipped load/store LSID pairs across the function *)
  w_presched :
    (string
    * (Trips_edge.Isa.inst array
      * Trips_edge.Block.read array
      * Trips_edge.Block.write array))
    list;  (** per-block array snapshots taken before scheduling *)
  w_bf : Trips_edge.Block.func;
}

val compile_func_wit :
  ?verify:bool ->
  ?relax:bool ->
  preset ->
  layout:(string * int) list ->
  Trips_tir.Cfg.func ->
  Trips_edge.Block.func * witness
(** [compile_func] plus the intermediate structures every pass produced,
    so each can be validated against its input. *)

val validate_func :
  ?max_paths:int ->
  sym:(string -> int64) ->
  witness ->
  Trips_analysis.Transval.report list

val validate :
  ?max_paths:int ->
  ?absint_bug:int ->
  preset ->
  Trips_tir.Ast.program ->
  Trips_analysis.Transval.report list * Trips_edge.Block.program
(** Compile and validate every pass checkpoint of every function,
    returning all per-block reports (never raising on refutation) and
    the compiled program. *)
