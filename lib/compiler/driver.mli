(** End-to-end TRIPS compilation pipeline.

    [AST -> (inline, unroll) -> CFG -> optimize -> hyperblock formation ->
    register allocation -> dataflow conversion -> placement], with an outer
    retry loop: when a formed region overflows a hardware limit during
    materialization, formation is redone with a smaller growth budget
    (and, in the limit, basic blocks are split).

    Presets model the paper's code-quality levels:
    - {!o0}: no optimization, no if-conversion — a floor for ablations;
    - {!compiled}: the paper's "C" bars (the TRIPS compiler's output);
    - {!hand}: the paper's "H" bars — the hand-optimizations it describes as
      "largely mechanical" (deeper unrolling, aggressive inlining, larger
      regions) applied automatically;
    - {!basic_blocks}: hyperblock formation disabled, used by the Fig 7
      predictor study's basic-block configurations. *)

type preset = {
  pname : string;
  inline_pass : bool;
  unroll : int;
  optimize : bool;
  budget : Hyperblock.budget;
}

val o0 : preset
val compiled : preset
val hand : preset
val basic_blocks : preset

exception Verify_failed of string * Trips_analysis.Diag.t list
(** [(stage, findings)]: the static analyzer found error-level violations
    in the output of a compilation stage ("dataflow-convert", "schedule"
    or "link"), i.e. that stage introduced them. *)

val compile :
  ?verify:bool ->
  ?validate:bool ->
  preset ->
  Trips_tir.Ast.program ->
  Trips_edge.Block.program
(** [~verify:true] runs the {!Trips_analysis.Analyzer} after each
    block-producing stage and raises {!Verify_failed} naming the stage
    that introduced a violation.  [~validate:true] additionally runs the
    translation validator ({!Trips_analysis.Transval}) against every
    pass checkpoint — optimization, splitting, hyperblock formation,
    register allocation, dataflow conversion, scheduling, linking — and
    raises {!Verify_failed} naming the first refuted stage.
    @raise Failure when a function cannot be made to fit even at the
    smallest budget (e.g. a single instruction stream with >32 live-in
    registers). *)

val compile_func :
  ?verify:bool ->
  preset -> layout:(string * int) list -> Trips_tir.Cfg.func -> Trips_edge.Block.func

(** {1 Translation validation} *)

type witness = {
  w_fn : Trips_tir.Cfg.func;  (** post-opt input, before splitting *)
  w_split : Trips_tir.Cfg.func;  (** after oversized blocks were split *)
  w_hf : Hyperblock.hfunc;
  w_ra : Regalloc.t;
  w_presched :
    (string
    * (Trips_edge.Isa.inst array
      * Trips_edge.Block.read array
      * Trips_edge.Block.write array))
    list;  (** per-block array snapshots taken before scheduling *)
  w_bf : Trips_edge.Block.func;
}

val compile_func_wit :
  ?verify:bool ->
  preset ->
  layout:(string * int) list ->
  Trips_tir.Cfg.func ->
  Trips_edge.Block.func * witness
(** [compile_func] plus the intermediate structures every pass produced,
    so each can be validated against its input. *)

val validate_func :
  ?max_paths:int ->
  sym:(string -> int64) ->
  witness ->
  Trips_analysis.Transval.report list

val validate :
  ?max_paths:int ->
  preset ->
  Trips_tir.Ast.program ->
  Trips_analysis.Transval.report list * Trips_edge.Block.program
(** Compile and validate every pass checkpoint of every function,
    returning all per-block reports (never raising on refutation) and
    the compiled program. *)
