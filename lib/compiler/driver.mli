(** End-to-end TRIPS compilation pipeline.

    [AST -> (inline, unroll) -> CFG -> optimize -> hyperblock formation ->
    register allocation -> dataflow conversion -> placement], with an outer
    retry loop: when a formed region overflows a hardware limit during
    materialization, formation is redone with a smaller growth budget
    (and, in the limit, basic blocks are split).

    Presets model the paper's code-quality levels:
    - {!o0}: no optimization, no if-conversion — a floor for ablations;
    - {!compiled}: the paper's "C" bars (the TRIPS compiler's output);
    - {!hand}: the paper's "H" bars — the hand-optimizations it describes as
      "largely mechanical" (deeper unrolling, aggressive inlining, larger
      regions) applied automatically;
    - {!basic_blocks}: hyperblock formation disabled, used by the Fig 7
      predictor study's basic-block configurations. *)

type preset = {
  pname : string;
  inline_pass : bool;
  unroll : int;
  optimize : bool;
  budget : Hyperblock.budget;
}

val o0 : preset
val compiled : preset
val hand : preset
val basic_blocks : preset

exception Verify_failed of string * Trips_analysis.Diag.t list
(** [(stage, findings)]: the static analyzer found error-level violations
    in the output of a compilation stage ("dataflow-convert", "schedule"
    or "link"), i.e. that stage introduced them. *)

val compile :
  ?verify:bool -> preset -> Trips_tir.Ast.program -> Trips_edge.Block.program
(** [~verify:true] runs the {!Trips_analysis.Analyzer} after each
    block-producing stage and raises {!Verify_failed} naming the stage
    that introduced a violation.
    @raise Failure when a function cannot be made to fit even at the
    smallest budget (e.g. a single instruction stream with >32 live-in
    registers). *)

val compile_func :
  ?verify:bool ->
  preset -> layout:(string * int) list -> Trips_tir.Cfg.func -> Trips_edge.Block.func
