(** Set-associative cache timing model (tags + LRU only; data lives in the
    shared {!Trips_tir.Image}).

    Banking matters to TRIPS: the L1 D-cache is four single-ported 8 KB
    banks partitioned by address, the L2 is sixteen 64 KB NUCA banks whose
    hit latency grows with distance (§5.2).  [bank_of] exposes the bank so
    tile models can arbitrate ports; NUCA latency is modeled with a per-bank
    latency adder. *)

type config = {
  name : string;
  size_kb : int;
  assoc : int;
  line : int;                  (* bytes, power of two *)
  banks : int;                 (* address-partitioned by line *)
  hit_latency : int;           (* cycles *)
  nuca_step : int;             (* extra cycles per unit of bank distance *)
}

val trips_l1d : config         (* 32 KB, 4 banks, 2-cycle hit *)
val trips_l1i : config         (* 80 KB, 5 banks *)
val trips_l2 : config          (* 1 MB, 16 NUCA banks *)

type t

type stats = {
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
}

val create : config -> t
val config : t -> config
val stats : t -> stats

val copy : t -> t
(** Deep copy (tags, LRU state, statistics).  Used for simulation
    checkpoints. *)

val access : t -> addr:int -> write:bool -> bool
(** [true] = hit.  Misses allocate (write-allocate) and update LRU. *)

val probe : t -> addr:int -> bool
(** Hit check without state change. *)

val bank_of : t -> addr:int -> int

val hit_latency_of_bank : t -> int -> int
(** Hit latency including the NUCA distance adder for that bank. *)

val reset : t -> unit
