type config = {
  name : string;
  size_kb : int;
  assoc : int;
  line : int;
  banks : int;
  hit_latency : int;
  nuca_step : int;
}

let trips_l1d =
  { name = "L1D"; size_kb = 32; assoc = 2; line = 64; banks = 4; hit_latency = 2;
    nuca_step = 0 }

let trips_l1i =
  { name = "L1I"; size_kb = 80; assoc = 2; line = 64; banks = 5; hit_latency = 1;
    nuca_step = 0 }

let trips_l2 =
  { name = "L2"; size_kb = 1024; assoc = 8; line = 64; banks = 16; hit_latency = 8;
    nuca_step = 1 }

type stats = {
  mutable accesses : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  cfg : config;
  sets : int;
  tags : int array;            (* sets * assoc, -1 = invalid *)
  lru : int array;             (* timestamps *)
  st : stats;
  mutable tick : int;
}

let create cfg =
  let sets = cfg.size_kb * 1024 / cfg.line / cfg.assoc in
  assert (sets > 0);
  {
    cfg;
    sets;
    tags = Array.make (sets * cfg.assoc) (-1);
    lru = Array.make (sets * cfg.assoc) 0;
    st = { accesses = 0; misses = 0; evictions = 0 };
    tick = 0;
  }

let copy t =
  {
    cfg = t.cfg;
    sets = t.sets;
    tags = Array.copy t.tags;
    lru = Array.copy t.lru;
    st =
      {
        accesses = t.st.accesses;
        misses = t.st.misses;
        evictions = t.st.evictions;
      };
    tick = t.tick;
  }

let config t = t.cfg
let stats t = t.st

let line_of t addr = addr / t.cfg.line
let set_of t addr = line_of t addr mod t.sets

let find_way t addr =
  let s = set_of t addr in
  let tag = line_of t addr in
  let base = s * t.cfg.assoc in
  let rec go w =
    if w = t.cfg.assoc then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let probe t ~addr = find_way t addr <> None

let access t ~addr ~write =
  ignore write;
  t.tick <- t.tick + 1;
  t.st.accesses <- t.st.accesses + 1;
  match find_way t addr with
  | Some idx ->
    t.lru.(idx) <- t.tick;
    true
  | None ->
    t.st.misses <- t.st.misses + 1;
    let s = set_of t addr in
    let base = s * t.cfg.assoc in
    (* victim = least recently used way *)
    let victim = ref base in
    for w = 1 to t.cfg.assoc - 1 do
      if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
    done;
    if t.tags.(!victim) >= 0 then t.st.evictions <- t.st.evictions + 1;
    t.tags.(!victim) <- line_of t addr;
    t.lru.(!victim) <- t.tick;
    false

let bank_of t ~addr = line_of t addr mod t.cfg.banks

let hit_latency_of_bank t bank =
  (* NUCA: banks farther from the requesting edge cost more *)
  t.cfg.hit_latency + (t.cfg.nuca_step * (bank mod 4))

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.st.accesses <- 0;
  t.st.misses <- 0;
  t.st.evictions <- 0;
  t.tick <- 0
