type vreg = int

type operand =
  | Reg of vreg
  | Ci of int64
  | Cf of float
  | Sym of string

type ins =
  | Bin of Ast.binop * vreg * operand * operand
  | Un of Ast.unop * vreg * operand
  | Mov of vreg * operand
  | Load of Ty.t * Ty.width * vreg * operand * int
  | Store of Ty.width * operand * int * operand
  | Call of vreg option * string * operand list

type term =
  | Jmp of string
  | Br of operand * string * string
  | Ret of operand option

type block = {
  label : string;
  mutable ins : ins list;
  mutable term : term;
}

type func = {
  name : string;
  mutable params : (vreg * Ty.t) list;
  ret : Ty.t option;
  mutable blocks : block list;
  mutable next_vreg : int;
}

type program = { globals : Ast.global list; funcs : func list }

let fresh f =
  let r = f.next_vreg in
  f.next_vreg <- r + 1;
  r

let entry f =
  match f.blocks with
  | [] -> invalid_arg "Cfg.entry: empty function"
  | b :: _ -> b

let find_block f label = List.find (fun b -> b.label = label) f.blocks

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> [ l1; l2 ]
  | Ret _ -> []

let defs = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mov (d, _) | Load (_, _, d, _, _) -> [ d ]
  | Store _ -> []
  | Call (Some d, _, _) -> [ d ]
  | Call (None, _, _) -> []

let uses = function
  | Bin (_, _, a, b) -> [ a; b ]
  | Un (_, _, a) | Mov (_, a) | Load (_, _, _, a, _) -> [ a ]
  | Store (_, a, _, v) -> [ a; v ]
  | Call (_, _, args) -> args

let term_uses = function
  | Jmp _ -> []
  | Br (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let map_ins_operands f = function
  | Bin (op, d, a, b) -> Bin (op, d, f a, f b)
  | Un (op, d, a) -> Un (op, d, f a)
  | Mov (d, a) -> Mov (d, f a)
  | Load (t, w, d, a, off) -> Load (t, w, d, f a, off)
  | Store (w, a, off, v) -> Store (w, f a, off, f v)
  | Call (d, name, args) -> Call (d, name, List.map f args)

let map_term_operands f = function
  | Jmp l -> Jmp l
  | Br (c, l1, l2) -> Br (f c, l1, l2)
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None -> Ret None

let find_func p name = List.find (fun f -> f.name = name) p.funcs

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "v%d" r
  | Ci i -> Format.fprintf ppf "%Ld" i
  | Cf x -> Format.fprintf ppf "%g" x
  | Sym s -> Format.fprintf ppf "&%s" s

let pp_ins ppf = function
  | Bin (op, d, a, b) ->
    Format.fprintf ppf "v%d = %a %s %a" d pp_operand a (Ast.binop_name op) pp_operand b
  | Un (op, d, a) -> Format.fprintf ppf "v%d = %s %a" d (Ast.unop_name op) pp_operand a
  | Mov (d, a) -> Format.fprintf ppf "v%d = %a" d pp_operand a
  | Load (t, w, d, a, off) ->
    Format.fprintf ppf "v%d = load.%a.%d [%a + %d]" d Ty.pp t (Ty.bytes_of_width w)
      pp_operand a off
  | Store (w, a, off, v) ->
    Format.fprintf ppf "store.%d [%a + %d] = %a" (Ty.bytes_of_width w) pp_operand a off
      pp_operand v
  | Call (d, name, args) ->
    let pp_args = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_operand in
    (match d with
    | Some d -> Format.fprintf ppf "v%d = call %s(%a)" d name pp_args args
    | None -> Format.fprintf ppf "call %s(%a)" name pp_args args)

let pp_term ppf = function
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Br (c, l1, l2) -> Format.fprintf ppf "br %a ? %s : %s" pp_operand c l1 l2
  | Ret None -> Format.pp_print_string ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_operand v

let pp_block ppf b =
  Format.fprintf ppf "@[<v 2>%s:@,%a%s%a@]" b.label
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_ins)
    b.ins
    (if b.ins = [] then "" else "\n")
    pp_term b.term

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>func %s:@,%a@]" f.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_block)
    f.blocks

let pp_program ppf p =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_func ppf p.funcs

let pp ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter (fun g -> Format.fprintf ppf "%a@," Ast.pp_global g) p.globals;
  pp_program ppf p;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a@." pp p

let ins_count f = List.fold_left (fun acc b -> acc + List.length b.ins) 0 f.blocks
