type t = {
  mem : Bytes.t;
  symbols : (string * int) list;
  scratch : int;
}

let base_address = 0x1000

let align_up n a = (n + a - 1) / a * a

let layout (globals : Ast.global list) =
  let cursor = ref base_address in
  List.map
    (fun (global : Ast.global) ->
      let a = align_up !cursor global.align in
      cursor := a + global.size;
      (global.gname, a))
    globals

let build ?mem_kb (globals : Ast.global list) =
  let symbols = layout globals in
  let cursor = ref base_address in
  List.iter (fun (_, a) -> cursor := max !cursor a) symbols;
  List.iter2
    (fun (global : Ast.global) (_, a) -> cursor := max !cursor (a + global.size))
    globals symbols;
  let scratch = align_up !cursor 64 in
  let total =
    match mem_kb with
    | Some kb -> kb * 1024
    | None -> align_up (scratch + 256 * 1024) 4096
  in
  if total < scratch then invalid_arg "Image.build: mem_kb too small for globals";
  let mem = Bytes.make total '\000' in
  let t = { mem; symbols; scratch } in
  (* Apply initializers: packed values laid out sequentially from the base. *)
  List.iter
    (fun (global : Ast.global) ->
      match global.init with
      | None -> ()
      | Some cells ->
        let addr = ref (List.assoc global.gname symbols) in
        Array.iter
          (fun (w, v) ->
            let bytes = Ty.bytes_of_width w in
            for k = 0 to bytes - 1 do
              Bytes.set t.mem (!addr + k)
                (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
            done;
            addr := !addr + bytes)
          cells)
    globals;
  t

let addr_of t name = List.assoc name t.symbols
let size t = Bytes.length t.mem
let stack_base t = Bytes.length t.mem - 16
let scratch_base t = t.scratch
let copy t = { t with mem = Bytes.copy t.mem }

(* [addr > length - bytes] rather than [addr + bytes > length]: a huge
   address from wrapped pointer arithmetic would overflow the sum past
   [max_int] and slip through the bound. *)
let check t addr bytes =
  if addr < 0 || addr > Bytes.length t.mem - bytes then
    raise (Semantics.Trap (Printf.sprintf "memory access out of range: 0x%x (%d bytes)" addr bytes))

let raw_load t w addr =
  let bytes = Ty.bytes_of_width w in
  check t addr bytes;
  let v = ref 0L in
  for k = bytes - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get t.mem (addr + k))))
  done;
  !v

let load_u t w addr = raw_load t w addr

let load t ty w addr =
  match (ty : Ty.t) with
  | Ty.I64 -> Ty.Vi (Semantics.zext w (raw_load t w addr))
  | Ty.F64 ->
    if w <> Ty.W8 then invalid_arg "Image.load: float loads must be 8 bytes";
    Ty.Vf (Int64.float_of_bits (raw_load t Ty.W8 addr))

let store t w addr value =
  let bytes = Ty.bytes_of_width w in
  check t addr bytes;
  let raw = match (value : Ty.value) with
    | Ty.Vi i -> i
    | Ty.Vf f -> Int64.bits_of_float f
  in
  for k = 0 to bytes - 1 do
    Bytes.set t.mem (addr + k)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical raw (8 * k)) 0xFFL)))
  done

let equal a b = Bytes.equal a.mem b.mem

let checksum t =
  (* cover the program-data region only: the area above [scratch_base] is
     runtime stack/scratch, which ABIs are free to use differently *)
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to t.scratch - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get t.mem i)))) 0x100000001b3L
  done;
  !h
