(** Control-flow-graph form of TIR: three-address code over virtual registers.

    Both backends and all optimizer passes operate on this form.  Blocks are
    identified by string labels; a function has a distinguished entry block.
    Operands are virtual registers, constants, or unresolved global symbols
    (resolved to addresses by {!Image}). *)

type vreg = int

type operand =
  | Reg of vreg
  | Ci of int64              (* integer constant *)
  | Cf of float              (* float constant *)
  | Sym of string            (* address of a global, resolved at link time *)

type ins =
  | Bin of Ast.binop * vreg * operand * operand
  | Un of Ast.unop * vreg * operand
  | Mov of vreg * operand
  | Load of Ty.t * Ty.width * vreg * operand * int   (* dst <- [base + off] *)
  | Store of Ty.width * operand * int * operand      (* [base + off] <- value *)
  | Call of vreg option * string * operand list

type term =
  | Jmp of string
  | Br of operand * string * string   (* nonzero -> first label *)
  | Ret of operand option

type block = {
  label : string;
  mutable ins : ins list;
  mutable term : term;
}

type func = {
  name : string;
  mutable params : (vreg * Ty.t) list;
  ret : Ty.t option;
  mutable blocks : block list;       (* entry block first *)
  mutable next_vreg : int;
}

type program = { globals : Ast.global list; funcs : func list }

val fresh : func -> vreg
val entry : func -> block
val find_block : func -> string -> block
val successors : term -> string list

val defs : ins -> vreg list
val uses : ins -> operand list
val term_uses : term -> operand list

val map_ins_operands : (operand -> operand) -> ins -> ins
val map_term_operands : (operand -> operand) -> term -> term

val find_func : program -> string -> func
val pp_operand : Format.formatter -> operand -> unit
val pp_ins : Format.formatter -> ins -> unit
val pp_term : Format.formatter -> term -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

val pp : Format.formatter -> program -> unit
(** Stable, parse-free textual form including globals; counterpart of
    {!Ast.pp} for the lowered program. *)

val to_string : program -> string

val ins_count : func -> int
(** Static instruction count (excluding terminators). *)
