type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Lsr | Asr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Ult | Ule
  | Fadd | Fsub | Fmul | Fdiv
  | Feq | Fne | Flt | Fle | Fgt | Fge

type unop =
  | Neg | Not
  | Fneg
  | Itof | Ftoi
  | Sext of Ty.width
  | Zext of Ty.width

type expr =
  | Int of int64
  | Flt of float
  | Var of string
  | Glo of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Load of Ty.t * Ty.width * expr
  | Call of string * expr list

type stmt =
  | Let of string * expr
  | Store of Ty.width * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * int64 * stmt list
  | Expr of expr
  | Return of expr option

type func = {
  fname : string;
  params : (string * Ty.t) list;
  ret : Ty.t option;
  body : stmt list;
}

type global = {
  gname : string;
  size : int;
  align : int;
  init : (Ty.width * int64) array option;
}

type program = { globals : global list; funcs : func list }

let func fname ?(params = []) ?ret body = { fname; params; ret; body }

let global gname ?(align = 8) ?init size = { gname; size; align; init }

let program ?(globals = []) funcs = { globals; funcs }

let find_func p name = List.find (fun f -> f.fname = name) p.funcs

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Lsr -> ">>u" | Asr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Ult -> "<u" | Ule -> "<=u"
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fdiv -> "/."
  | Feq -> "==." | Fne -> "!=." | Flt -> "<." | Fle -> "<=." | Fgt -> ">." | Fge -> ">=."

let unop_name = function
  | Neg -> "neg" | Not -> "not" | Fneg -> "fneg"
  | Itof -> "itof" | Ftoi -> "ftoi"
  | Sext w -> Printf.sprintf "sext%d" (Ty.bytes_of_width w)
  | Zext w -> Printf.sprintf "zext%d" (Ty.bytes_of_width w)

let rec pp_expr ppf = function
  | Int i -> Format.fprintf ppf "%Ld" i
  | Flt f -> Format.fprintf ppf "%g" f
  | Var x -> Format.pp_print_string ppf x
  | Glo x -> Format.fprintf ppf "&%s" x
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Un (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp_expr a
  | Load (t, w, a) ->
    Format.fprintf ppf "load.%a.%d[%a]" Ty.pp t (Ty.bytes_of_width w) pp_expr a
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
      args

let rec pp_stmt ppf = function
  | Let (x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | Store (w, a, v) ->
    Format.fprintf ppf "store.%d[%a] = %a;" (Ty.bytes_of_width w) pp_expr a pp_expr v
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}%a" pp_expr c pp_body t pp_else e
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_body b
  | For (x, lo, hi, step, b) ->
    Format.fprintf ppf "@[<v 2>for %s = %a .. %a step %Ld {@,%a@]@,}" x pp_expr lo
      pp_expr hi step pp_body b
  | Expr e -> Format.fprintf ppf "%a;" pp_expr e
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

and pp_else ppf = function
  | [] -> ()
  | e -> Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_body e

let pp_func ppf f =
  let pp_param ppf (x, t) = Format.fprintf ppf "%s:%a" x Ty.pp t in
  Format.fprintf ppf "@[<v 2>func %s(%a)%s {@,%a@]@,}" f.fname
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param)
    f.params
    (match f.ret with None -> "" | Some t -> " : " ^ Ty.to_string t)
    pp_body f.body

let pp_global ppf g =
  let pp_init ppf = function
    | None -> ()
    | Some cells ->
      Format.fprintf ppf " = {";
      Array.iteri
        (fun i (w, v) ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "w%d:%Ld" (Ty.bytes_of_width w) v)
        cells;
      Format.fprintf ppf "}"
  in
  Format.fprintf ppf "global %s[%d] align %d%a" g.gname g.size g.align pp_init
    g.init

let pp ppf p =
  let pp_sep ppf () = Format.fprintf ppf "@,@," in
  Format.fprintf ppf "@[<v>";
  List.iter (fun g -> Format.fprintf ppf "%a@,@," pp_global g) p.globals;
  Format.pp_print_list ~pp_sep pp_func ppf p.funcs;
  Format.fprintf ppf "@]"

let pp_program = pp

let to_string p = Format.asprintf "%a@." pp p

module Infix = struct
  let i n = Int (Int64.of_int n)
  let i64 n = Int n
  let f x = Flt x
  let v x = Var x
  let g x = Glo x

  let ( +: ) a b = Bin (Add, a, b)
  let ( -: ) a b = Bin (Sub, a, b)
  let ( *: ) a b = Bin (Mul, a, b)
  let ( /: ) a b = Bin (Div, a, b)
  let ( %: ) a b = Bin (Rem, a, b)
  let ( &: ) a b = Bin (And, a, b)
  let ( |: ) a b = Bin (Or, a, b)
  let ( ^: ) a b = Bin (Xor, a, b)
  let ( <<: ) a b = Bin (Shl, a, b)
  let ( >>: ) a b = Bin (Lsr, a, b)
  let ( >>>: ) a b = Bin (Asr, a, b)
  let ( =: ) a b = Bin (Eq, a, b)
  let ( <>: ) a b = Bin (Ne, a, b)
  let ( <: ) a b = Bin (Lt, a, b)
  let ( <=: ) a b = Bin (Le, a, b)
  let ( >: ) a b = Bin (Gt, a, b)
  let ( >=: ) a b = Bin (Ge, a, b)

  let ( +.: ) a b = Bin (Fadd, a, b)
  let ( -.: ) a b = Bin (Fsub, a, b)
  let ( *.: ) a b = Bin (Fmul, a, b)
  let ( /.: ) a b = Bin (Fdiv, a, b)
  let ( <.: ) a b = Bin (Flt, a, b)
  let ( <=.: ) a b = Bin (Fle, a, b)
  let ( >.: ) a b = Bin (Fgt, a, b)
  let ( =.: ) a b = Bin (Feq, a, b)

  let ld8 a = Load (Ty.I64, Ty.W8, a)
  let ld4 a = Load (Ty.I64, Ty.W4, a)
  let ld2 a = Load (Ty.I64, Ty.W2, a)
  let ld1 a = Load (Ty.I64, Ty.W1, a)
  let ldf a = Load (Ty.F64, Ty.W8, a)
  let st8 a x = Store (Ty.W8, a, x)
  let st4 a x = Store (Ty.W4, a, x)
  let st2 a x = Store (Ty.W2, a, x)
  let st1 a x = Store (Ty.W1, a, x)
  let stf a x = Store (Ty.W8, a, x)

  let set x e = Let (x, e)
  let if_ c t e = If (c, t, e)
  let while_ c b = While (c, b)
  let for_ x lo hi b = For (x, lo, hi, 1L, b)
  let for_step x lo hi s b = For (x, lo, hi, s, b)
  let ret e = Return (Some e)
  let ret0 = Return None
  let call fname args = Call (fname, args)
  let callv fname args = Expr (Call (fname, args))
end
