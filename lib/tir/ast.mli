(** Abstract syntax of TIR programs, with an authoring EDSL.

    Benchmarks in {!Trips_workloads} are written against this module.  The
    AST is structured (no gotos); {!Lower} turns it into the control-flow
    graph that the optimizers and backends consume. *)

type binop =
  (* 64-bit integer *)
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Lsr | Asr
  | Eq | Ne | Lt | Le | Gt | Ge          (* signed compares, produce 0/1 *)
  | Ult | Ule                             (* unsigned compares *)
  (* double-precision float *)
  | Fadd | Fsub | Fmul | Fdiv
  | Feq | Fne | Flt | Fle | Fgt | Fge     (* produce integer 0/1 *)

type unop =
  | Neg | Not                 (* integer negate / bitwise not *)
  | Fneg
  | Itof | Ftoi               (* conversions *)
  | Sext of Ty.width          (* sign-extend the low bytes *)
  | Zext of Ty.width          (* zero-extend the low bytes *)

type expr =
  | Int of int64
  | Flt of float
  | Var of string                         (* local or parameter *)
  | Glo of string                         (* address of a global symbol *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Load of Ty.t * Ty.width * expr        (* typed load from address *)
  | Call of string * expr list            (* call returning a value *)

type stmt =
  | Let of string * expr                  (* assign a local *)
  | Store of Ty.width * expr * expr       (* [Store (w, addr, value)] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * int64 * stmt list
      (* [For (i, lo, hi, step, body)]: i from lo while (step>0 ? i<hi : i>hi),
         i += step each iteration.  [step] must be a nonzero constant. *)
  | Expr of expr                          (* evaluate for effect (calls) *)
  | Return of expr option

type func = {
  fname : string;
  params : (string * Ty.t) list;
  ret : Ty.t option;
  body : stmt list;
}

type global = {
  gname : string;
  size : int;                             (* bytes *)
  align : int;
  init : (Ty.width * int64) array option; (* optional packed initializer *)
}

type program = { globals : global list; funcs : func list }

val func : string -> ?params:(string * Ty.t) list -> ?ret:Ty.t -> stmt list -> func
val global : string -> ?align:int -> ?init:(Ty.width * int64) array -> int -> global
val program : ?globals:global list -> func list -> program

val find_func : program -> string -> func
(** @raise Not_found if absent. *)

val binop_name : binop -> string
val unop_name : unop -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit

val pp_global : Format.formatter -> global -> unit

val pp : Format.formatter -> program -> unit
(** Stable, parse-free textual form of a whole program (globals then
    functions).  Used for fuzz corpus entries and shrinker logs. *)

val pp_program : Format.formatter -> program -> unit
(** Alias of {!pp}. *)

val to_string : program -> string

(** Infix/constructor helpers used throughout the workload suite. *)
module Infix : sig
  val i : int -> expr                     (* integer literal *)
  val i64 : int64 -> expr
  val f : float -> expr
  val v : string -> expr                  (* variable reference *)
  val g : string -> expr                  (* global address *)

  val ( +: ) : expr -> expr -> expr
  val ( -: ) : expr -> expr -> expr
  val ( *: ) : expr -> expr -> expr
  val ( /: ) : expr -> expr -> expr
  val ( %: ) : expr -> expr -> expr
  val ( &: ) : expr -> expr -> expr
  val ( |: ) : expr -> expr -> expr
  val ( ^: ) : expr -> expr -> expr
  val ( <<: ) : expr -> expr -> expr
  val ( >>: ) : expr -> expr -> expr      (* logical shift right *)
  val ( >>>: ) : expr -> expr -> expr     (* arithmetic shift right *)
  val ( =: ) : expr -> expr -> expr
  val ( <>: ) : expr -> expr -> expr
  val ( <: ) : expr -> expr -> expr
  val ( <=: ) : expr -> expr -> expr
  val ( >: ) : expr -> expr -> expr
  val ( >=: ) : expr -> expr -> expr

  val ( +.: ) : expr -> expr -> expr
  val ( -.: ) : expr -> expr -> expr
  val ( *.: ) : expr -> expr -> expr
  val ( /.: ) : expr -> expr -> expr
  val ( <.: ) : expr -> expr -> expr
  val ( <=.: ) : expr -> expr -> expr
  val ( >.: ) : expr -> expr -> expr
  val ( =.: ) : expr -> expr -> expr

  val ld8 : expr -> expr                  (* i64 load, 8 bytes *)
  val ld4 : expr -> expr                  (* i64 load, zero-extended word *)
  val ld2 : expr -> expr
  val ld1 : expr -> expr
  val ldf : expr -> expr                  (* f64 load *)
  val st8 : expr -> expr -> stmt
  val st4 : expr -> expr -> stmt
  val st2 : expr -> expr -> stmt
  val st1 : expr -> expr -> stmt
  val stf : expr -> expr -> stmt          (* f64 store (width 8) *)

  val set : string -> expr -> stmt
  val if_ : expr -> stmt list -> stmt list -> stmt
  val while_ : expr -> stmt list -> stmt
  val for_ : string -> expr -> expr -> stmt list -> stmt
      (* step 1 loop *)
  val for_step : string -> expr -> expr -> int64 -> stmt list -> stmt
  val ret : expr -> stmt
  val ret0 : stmt
  val call : string -> expr list -> expr
  val callv : string -> expr list -> stmt (* call ignoring the result *)
end
