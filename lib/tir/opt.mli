(** Machine-independent CFG optimizations.

    These correspond to the "conventional optimizations" the TRIPS compiler
    applies before block formation (§2): constant folding, local value and
    copy propagation, local common-subexpression elimination, and dead-code
    elimination.  All passes are semantics-preserving (checked by the qcheck
    differential suite) and idempotent at fixpoint. *)

val constfold : Cfg.func -> unit
(** Fold operators whose operands are constants.  Folding never introduces a
    trap (division by a zero constant is left in place). *)

val copyprop : Cfg.func -> unit
(** Block-local value/copy propagation through [Mov]s. *)

val cse : Cfg.func -> unit
(** Block-local common-subexpression elimination over pure operators and
    loads (loads are killed by stores and calls). *)

val dce : Cfg.func -> unit
(** Remove pure instructions whose results are never used anywhere in the
    function. *)

val simplify_branches : Cfg.func -> unit
(** Turn branches on constants into jumps and drop unreachable blocks. *)

val run : ?rounds:int -> Cfg.func -> unit
(** Fixpoint driver: apply all passes [rounds] times (default 10, stops early at fixpoint). *)

val run_program : ?rounds:int -> Cfg.program -> unit

(** {2 Global passes}

    Whole-function transformations driven by abstract-interpretation facts
    (computed in [trips_analysis], passed in as closures so the dependency
    arrow keeps pointing this way).  Every rewrite is named by a [gfact] so
    the translation validator can replay the application and re-derive each
    fact independently. *)

type absfacts = {
  af_const : string -> int -> Cfg.operand option;
      (** [(block, ins index)]: the definition provably has this constant *)
  af_branch : string -> bool option;
      (** the block's branch condition is provably nonzero / zero *)
  af_sep : Cfg.operand * int * Ty.width -> Cfg.operand * int * Ty.width -> bool;
      (** [(root, offset, width)] accesses provably never overlap *)
}

val no_facts : absfacts
(** The empty fact set: global passes become no-ops. *)

type gfact =
  | Gconst of string * int * Cfg.vreg * Cfg.operand
  | Gbranch of string * bool
  | Grle of string * int * Cfg.vreg * Cfg.operand
  | Gdse of string * int

val pp_gfact : Format.formatter -> gfact -> unit

val gather_global : absfacts -> Cfg.func -> gfact list
(** Collect every global rewrite the facts justify: sparse constant /
    branch folding, redundant-load elimination over an available-loads
    fixpoint, and dead-store elimination over an overwritten-before-observed
    fixpoint.  Does not modify the function. *)

val apply_global : Cfg.func -> gfact list -> unit
(** Apply gathered facts.  Indices refer to pre-application instruction
    lists; deterministic, so the validator replays it bit-for-bit. *)

val run_global : absfacts -> Cfg.func -> gfact list
(** [gather_global] followed by [apply_global]; returns the applied facts. *)
