let pp_compact ppf (f : Cfg.func) = Cfg.pp_func ppf f

let is_const = function Cfg.Ci _ | Cfg.Cf _ -> true | Cfg.Reg _ | Cfg.Sym _ -> false

let const_value = function
  | Cfg.Ci i -> Ty.Vi i
  | Cfg.Cf f -> Ty.Vf f
  | Cfg.Reg _ | Cfg.Sym _ -> invalid_arg "const_value"

let operand_of_value = function
  | Ty.Vi i -> Cfg.Ci i
  | Ty.Vf f -> Cfg.Cf f

(* Division by a constant zero must keep trapping at runtime, so skip it. *)
let foldable_binop (op : Ast.binop) b =
  match op with
  | Ast.Div | Ast.Rem -> ( match b with Cfg.Ci 0L -> false | _ -> true)
  | _ -> true

let constfold (f : Cfg.func) =
  let fold_ins ins =
    match ins with
    | Cfg.Bin (op, d, a, b) when is_const a && is_const b && foldable_binop op b -> (
      match Semantics.binop op (const_value a) (const_value b) with
      | v -> Cfg.Mov (d, operand_of_value v)
      | exception Semantics.Trap _ -> ins)
    | Cfg.Un (op, d, a) when is_const a -> (
      match Semantics.unop op (const_value a) with
      | v -> Cfg.Mov (d, operand_of_value v)
      | exception Semantics.Trap _ -> ins)
    (* algebraic identities *)
    | Cfg.Bin (Ast.Add, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Add, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Sub, d, a, Cfg.Ci 0L)
    | Cfg.Bin (Ast.Or, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Or, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Xor, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Xor, d, Cfg.Ci 0L, a)
    | Cfg.Bin (Ast.Shl, d, a, Cfg.Ci 0L) | Cfg.Bin (Ast.Lsr, d, a, Cfg.Ci 0L)
    | Cfg.Bin (Ast.Asr, d, a, Cfg.Ci 0L) ->
      Cfg.Mov (d, a)
    | Cfg.Bin (Ast.Mul, d, a, Cfg.Ci 1L) | Cfg.Bin (Ast.Mul, d, Cfg.Ci 1L, a)
    | Cfg.Bin (Ast.Div, d, a, Cfg.Ci 1L) ->
      Cfg.Mov (d, a)
    | Cfg.Bin (Ast.Mul, d, _, Cfg.Ci 0L) | Cfg.Bin (Ast.Mul, d, Cfg.Ci 0L, _)
    | Cfg.Bin (Ast.And, d, _, Cfg.Ci 0L) | Cfg.Bin (Ast.And, d, Cfg.Ci 0L, _) ->
      Cfg.Mov (d, Cfg.Ci 0L)
    | _ -> ins
  in
  List.iter (fun (b : Cfg.block) -> b.ins <- List.map fold_ins b.ins) f.blocks

(* Block-local propagation: map vreg -> known operand.  An entry is killed
   when any register it mentions is redefined. *)
let copyprop (f : Cfg.func) =
  let run_block (b : Cfg.block) =
    let known : (Cfg.vreg, Cfg.operand) Hashtbl.t = Hashtbl.create 16 in
    let resolve op =
      match op with
      | Cfg.Reg r -> ( match Hashtbl.find_opt known r with Some o -> o | None -> op)
      | _ -> op
    in
    let kill d =
      Hashtbl.remove known d;
      let stale =
        Hashtbl.fold
          (fun k v acc -> match v with Cfg.Reg r when r = d -> k :: acc | _ -> acc)
          known []
      in
      List.iter (Hashtbl.remove known) stale
    in
    let step ins =
      let ins = Cfg.map_ins_operands resolve ins in
      List.iter kill (Cfg.defs ins);
      (match ins with Cfg.Mov (d, src) when src <> Cfg.Reg d -> Hashtbl.replace known d src | _ -> ());
      ins
    in
    b.ins <- List.map step b.ins;
    b.term <- Cfg.map_term_operands resolve b.term
  in
  List.iter run_block f.blocks

(* Block-local CSE over pure ops and loads. *)
type expr_key =
  | Kbin of Ast.binop * Cfg.operand * Cfg.operand
  | Kun of Ast.unop * Cfg.operand
  | Kload of Ty.t * Ty.width * Cfg.operand * int

let cse (f : Cfg.func) =
  let run_block (b : Cfg.block) =
    let avail : (expr_key, Cfg.vreg) Hashtbl.t = Hashtbl.create 16 in
    let kill_reg d =
      let stale =
        Hashtbl.fold
          (fun k v acc ->
            let mentions =
              v = d
              ||
              match k with
              | Kbin (_, a, bb) -> a = Cfg.Reg d || bb = Cfg.Reg d
              | Kun (_, a) -> a = Cfg.Reg d
              | Kload (_, _, a, _) -> a = Cfg.Reg d
            in
            if mentions then k :: acc else acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) stale
    in
    let kill_memory () =
      let stale =
        Hashtbl.fold
          (fun k _ acc -> match k with Kload _ -> k :: acc | _ -> acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) stale
    in
    (* An expression keyed on its own destination (v3 = v3 + 1) must not be
       recorded: after the write, the key no longer denotes the result. *)
    let key_mentions key d =
      match key with
      | Kbin (_, a, b) -> a = Cfg.Reg d || b = Cfg.Reg d
      | Kun (_, a) | Kload (_, _, a, _) -> a = Cfg.Reg d
    in
    let lookup_or_record key d ins =
      match Hashtbl.find_opt avail key with
      | Some r ->
        kill_reg d;
        Cfg.Mov (d, Cfg.Reg r)
      | None ->
        kill_reg d;
        if not (key_mentions key d) then Hashtbl.replace avail key d;
        ins
    in
    let step ins =
      match ins with
      | Cfg.Bin (op, d, a, bb) -> lookup_or_record (Kbin (op, a, bb)) d ins
      | Cfg.Un (op, d, a) -> lookup_or_record (Kun (op, a)) d ins
      | Cfg.Load (t, w, d, a, off) -> lookup_or_record (Kload (t, w, a, off)) d ins
      | Cfg.Mov (d, _) ->
        kill_reg d;
        ins
      | Cfg.Store _ ->
        kill_memory ();
        ins
      | Cfg.Call (d, _, _) ->
        kill_memory ();
        Option.iter kill_reg d;
        ins
    in
    b.ins <- List.map step b.ins
  in
  List.iter run_block f.blocks

let dce (f : Cfg.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let used : (Cfg.vreg, unit) Hashtbl.t = Hashtbl.create 64 in
    let mark = function Cfg.Reg r -> Hashtbl.replace used r () | _ -> () in
    List.iter
      (fun (b : Cfg.block) ->
        List.iter (fun ins -> List.iter mark (Cfg.uses ins)) b.ins;
        List.iter mark (Cfg.term_uses b.term))
      f.blocks;
    let pure_dead ins =
      match ins with
      | Cfg.Bin (op, d, _, b) ->
        let trapping =
          match op with
          | Ast.Div | Ast.Rem -> ( match b with Cfg.Ci z when z <> 0L -> false | _ -> true)
          | _ -> false
        in
        (not trapping) && not (Hashtbl.mem used d)
      | Cfg.Un (_, d, _) | Cfg.Mov (d, _) -> not (Hashtbl.mem used d)
      | Cfg.Load (_, _, d, _, _) -> not (Hashtbl.mem used d)
      | Cfg.Store _ | Cfg.Call _ -> false
    in
    List.iter
      (fun (b : Cfg.block) ->
        let before = List.length b.ins in
        b.ins <- List.filter (fun i -> not (pure_dead i)) b.ins;
        if List.length b.ins <> before then changed := true)
      f.blocks
  done

let simplify_branches (f : Cfg.func) =
  List.iter
    (fun (b : Cfg.block) ->
      match b.term with
      | Cfg.Br (Cfg.Ci c, l1, l2) -> b.term <- Cfg.Jmp (if c <> 0L then l1 else l2)
      | Cfg.Br (Cfg.Cf c, l1, l2) -> b.term <- Cfg.Jmp (if c <> 0. then l1 else l2)
      | _ -> ())
    f.blocks;
  (* drop blocks made unreachable *)
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
    let reached = Hashtbl.create 16 in
    let tbl = Hashtbl.create 16 in
    List.iter (fun (b : Cfg.block) -> Hashtbl.replace tbl b.label b) f.blocks;
    let rec visit l =
      if not (Hashtbl.mem reached l) then begin
        Hashtbl.add reached l ();
        match Hashtbl.find_opt tbl l with
        | Some b -> List.iter visit (Cfg.successors b.term)
        | None -> ()
      end
    in
    visit entry.label;
    f.blocks <- List.filter (fun (b : Cfg.block) -> Hashtbl.mem reached b.label) f.blocks

(* ------------------------------------------------------------------ *)
(* Global passes over analysis facts                                   *)
(* ------------------------------------------------------------------ *)

(* The abstract-interpretation results the global passes consume.  The
   analysis lives in trips_analysis (which depends on this library), so the
   facts cross the boundary as closures over a neutral vocabulary: program
   points are (block label, instruction index) and memory locations are
   (root operand, byte offset, width) triples. *)
type absfacts = {
  af_const : string -> int -> Cfg.operand option;
      (** the instruction's definition provably has this constant value *)
  af_branch : string -> bool option;
      (** the block's branch condition is provably nonzero / zero *)
  af_sep : Cfg.operand * int * Ty.width -> Cfg.operand * int * Ty.width -> bool;
      (** the two accesses provably never overlap (must-not-alias) *)
}

let no_facts =
  {
    af_const = (fun _ _ -> None);
    af_branch = (fun _ -> None);
    af_sep = (fun _ _ -> false);
  }

(* One global rewrite, named by its program point so the translation
   validator can replay the application and discharge each fact
   independently. *)
type gfact =
  | Gconst of string * int * Cfg.vreg * Cfg.operand
      (** block, ins index: replace the def with [Mov d c] *)
  | Gbranch of string * bool
      (** block: fold [Br] to the taken side *)
  | Grle of string * int * Cfg.vreg * Cfg.operand
      (** block, ins index: the load is redundant; its value is the operand *)
  | Gdse of string * int  (** block, ins index: the store is dead *)

let pp_gfact ppf = function
  | Gconst (l, i, d, c) ->
    Format.fprintf ppf "const %s/%d: v%d = %a" l i d Cfg.pp_operand c
  | Gbranch (l, dir) -> Format.fprintf ppf "branch %s: %b" l dir
  | Grle (l, i, d, c) ->
    Format.fprintf ppf "rle %s/%d: v%d = %a" l i d Cfg.pp_operand c
  | Gdse (l, i) -> Format.fprintf ppf "dse %s/%d" l i

(* Memory access keys: root operand + static offset + width.  Root equality
   is syntactic; the vreg-redefinition kills below keep [Reg] roots honest. *)
type mkey = { mroot : Cfg.operand; moff : int; mw : Ty.width; mty : Ty.t }

let mentions_reg (o : Cfg.operand) r = o = Cfg.Reg r

(* --- global constant propagation + branch folding ------------------- *)

let gather_const facts (f : Cfg.func) : gfact list =
  let out = ref [] in
  List.iter
    (fun (b : Cfg.block) ->
      List.iteri
        (fun idx ins ->
          match ins with
          (* Pure computations only: rewriting a trapping Div/Rem or a Load
             would change behaviour beyond the value. [Mov] of a constant is
             already folded form. *)
          | Cfg.Bin ((Ast.Div | Ast.Rem), _, _, _) -> ()
          | Cfg.Bin (_, d, _, _) | Cfg.Un (_, d, _) -> (
            match facts.af_const b.label idx with
            | Some c -> out := Gconst (b.label, idx, d, c) :: !out
            | None -> ())
          | Cfg.Mov (d, src) when not (is_const src) -> (
            match facts.af_const b.label idx with
            | Some c -> out := Gconst (b.label, idx, d, c) :: !out
            | None -> ())
          | _ -> ())
        b.ins;
      match b.term with
      | Cfg.Br (c, _, _) when not (is_const c) -> (
        match facts.af_branch b.label with
        | Some dir -> out := Gbranch (b.label, dir) :: !out
        | None -> ())
      | _ -> ())
    f.blocks;
  List.rev !out

(* --- global redundant-load elimination ------------------------------ *)

(* Forward "available loads" dataflow.  An entry [key -> Reg r] means: on
   every path reaching this point, memory at [key] holds the value of [r]
   (established by a load into [r] with neither an intervening may-alias
   store/call nor a redefinition of [r] or the key's root register).
   Load-to-load only: store-to-load forwarding would need the stored
   operand's type, which vregs do not carry syntactically. *)
module MKeyMap = Map.Make (struct
  type t = mkey

  let compare = compare
end)

let rle_transfer facts (avail : Cfg.operand MKeyMap.t) idx ins emit =
  let kill_reg d m =
    MKeyMap.filter
      (fun k v -> not (mentions_reg k.mroot d || mentions_reg v d))
      m
  in
  match ins with
  | Cfg.Load (ty, w, d, a, off) ->
    let key = { mroot = a; moff = off; mw = w; mty = ty } in
    (match MKeyMap.find_opt key avail with
    | Some v -> emit (Grle (fst idx, snd idx, d, v))
    | None -> ());
    let avail = kill_reg d avail in
    if mentions_reg a d then avail
    else MKeyMap.add key (Cfg.Reg d) avail
  | Cfg.Store (w, a, off, _) ->
    let skey = { mroot = a; moff = off; mw = w; mty = Ty.I64 } in
    MKeyMap.filter
      (fun k _ ->
        facts.af_sep (skey.mroot, skey.moff, skey.mw) (k.mroot, k.moff, k.mw))
      avail
  | Cfg.Call (d, _, _) ->
    ignore d;
    MKeyMap.empty
  | ins -> List.fold_left (fun m d -> kill_reg d m) avail (Cfg.defs ins)

let gather_rle facts (f : Cfg.func) : gfact list =
  (* block entry states: None = not yet reached (top), Some m = known map *)
  let entry : (string, Cfg.operand MKeyMap.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter (fun (b : Cfg.block) -> Hashtbl.replace entry b.label None) f.blocks;
  (match f.blocks with
  | [] -> ()
  | e :: _ -> Hashtbl.replace entry e.label (Some MKeyMap.empty));
  let meet a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some m1, Some m2 ->
      Some
        (MKeyMap.merge
           (fun _ v1 v2 ->
             match (v1, v2) with
             | Some x, Some y when x = y -> Some x
             | _ -> None)
           m1 m2)
  in
  let exit_of b_entry (b : Cfg.block) =
    List.fold_left
      (fun (m, i) ins ->
        (rle_transfer facts m (b.label, i) ins (fun _ -> ()), i + 1))
      (b_entry, 0) b.ins
    |> fst
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun (b : Cfg.block) ->
        match Hashtbl.find entry b.label with
        | None -> ()
        | Some st ->
          let ex = exit_of st b in
          List.iter
            (fun succ ->
              match Hashtbl.find_opt entry succ with
              | None -> ()
              | Some cur ->
                let nw = meet cur (Some ex) in
                if nw <> cur then begin
                  Hashtbl.replace entry succ nw;
                  changed := true
                end)
            (Cfg.successors b.term))
      f.blocks
  done;
  let out = ref [] in
  List.iter
    (fun (b : Cfg.block) ->
      match Hashtbl.find entry b.label with
      | None -> ()
      | Some st ->
        ignore
          (List.fold_left
             (fun (m, i) ins ->
               ( rle_transfer facts m (b.label, i) ins (fun g ->
                     out := g :: !out),
                 i + 1 ))
             (st, 0) b.ins))
    f.blocks;
  List.rev !out

(* --- global dead-store elimination ---------------------------------- *)

(* Backward "overwritten before observed" dataflow.  A key in the set means:
   on every path from here, the full byte range of the key is overwritten
   before any load, call or function exit can observe it.  A store whose
   range is covered by such a key is dead. *)
module MSet = Set.Make (struct
  type t = mkey

  let compare = compare
end)

let covers (outer : mkey) (inner : mkey) =
  outer.mroot = inner.mroot
  && outer.moff <= inner.moff
  && outer.moff + Ty.bytes_of_width outer.mw
     >= inner.moff + Ty.bytes_of_width inner.mw

let dse_transfer facts (ob : MSet.t) idx ins emit =
  let kill_reg d s = MSet.filter (fun k -> not (mentions_reg k.mroot d)) s in
  match ins with
  | Cfg.Store (w, a, off, _) ->
    let key = { mroot = a; moff = off; mw = w; mty = Ty.I64 } in
    if MSet.exists (fun k -> covers k key) ob then emit (Gdse (fst idx, snd idx));
    MSet.add key ob
  | Cfg.Load (_, w, d, a, off) ->
    let lkey = { mroot = a; moff = off; mw = w; mty = Ty.I64 } in
    let ob =
      MSet.filter
        (fun k ->
          facts.af_sep (k.mroot, k.moff, k.mw) (lkey.mroot, lkey.moff, lkey.mw))
        ob
    in
    kill_reg d ob
  | Cfg.Call _ -> MSet.empty
  | ins -> List.fold_left (fun s d -> kill_reg d s) ob (Cfg.defs ins)

let gather_dse facts (f : Cfg.func) : gfact list =
  (* the finite lattice: sets of store keys occurring in the function *)
  let universe = ref MSet.empty in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (function
          | Cfg.Store (w, a, off, _) ->
            universe :=
              MSet.add { mroot = a; moff = off; mw = w; mty = Ty.I64 } !universe
          | _ -> ())
        b.ins)
    f.blocks;
  let entry : (string, MSet.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) -> Hashtbl.replace entry b.label !universe)
    f.blocks;
  let entry_of (b : Cfg.block) exit_ob =
    List.fold_left
      (fun (ob, i) ins -> (dse_transfer facts ob (b.label, i) ins (fun _ -> ()), i - 1))
      (exit_ob, List.length b.ins - 1)
      (List.rev b.ins)
    |> fst
  in
  let exit_ob (b : Cfg.block) =
    match Cfg.successors b.term with
    | [] -> MSet.empty
    | succs ->
      List.fold_left
        (fun acc s ->
          MSet.inter acc
            (Option.value ~default:MSet.empty (Hashtbl.find_opt entry s)))
        !universe succs
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun (b : Cfg.block) ->
        let en = entry_of b (exit_ob b) in
        if not (MSet.equal en (Hashtbl.find entry b.label)) then begin
          Hashtbl.replace entry b.label en;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  let out = ref [] in
  List.iter
    (fun (b : Cfg.block) ->
      ignore
        (List.fold_left
           (fun (ob, i) ins ->
             (dse_transfer facts ob (b.label, i) ins (fun g -> out := g :: !out), i - 1))
           (exit_ob b, List.length b.ins - 1)
           (List.rev b.ins)))
    f.blocks;
  List.rev !out

(* --- gather + apply -------------------------------------------------- *)

let gather_global facts (f : Cfg.func) : gfact list =
  gather_const facts f @ gather_rle facts f @ gather_dse facts f

(* Apply a gathered fact set.  All indices refer to the pre-application
   instruction lists, so rewrites are positional and deletions happen last;
   the same replay runs inside the translation validator. *)
let apply_global (f : Cfg.func) (gfs : gfact list) =
  let rewrites : (string * int, gfact) Hashtbl.t = Hashtbl.create 16 in
  let branches : (string, bool) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (function
      | Gconst (l, i, _, _) as g -> Hashtbl.replace rewrites (l, i) g
      | Grle (l, i, _, _) as g -> Hashtbl.replace rewrites (l, i) g
      | Gdse (l, i) as g -> Hashtbl.replace rewrites (l, i) g
      | Gbranch (l, dir) -> Hashtbl.replace branches l dir)
    gfs;
  List.iter
    (fun (b : Cfg.block) ->
      b.ins <-
        List.filteri (fun i _ ->
            match Hashtbl.find_opt rewrites (b.label, i) with
            | Some (Gdse _) -> false
            | _ -> true)
          (List.mapi
             (fun i ins ->
               match Hashtbl.find_opt rewrites (b.label, i) with
               | Some (Gconst (_, _, d, c)) | Some (Grle (_, _, d, c)) ->
                 Cfg.Mov (d, c)
               | _ -> ins)
             b.ins);
      match (b.term, Hashtbl.find_opt branches b.label) with
      | Cfg.Br (_, l1, l2), Some dir -> b.term <- Cfg.Jmp (if dir then l1 else l2)
      | _ -> ())
    f.blocks

let run_global facts (f : Cfg.func) : gfact list =
  let gfs = gather_global facts f in
  if gfs <> [] then apply_global f gfs;
  gfs

let run ?(rounds = 10) (f : Cfg.func) =
  (* iterate to a fixpoint (bounded): later passes expose work for earlier
     ones, e.g. CSE introduces moves that copyprop then propagates *)
  let fingerprint () = Format.asprintf "%a" pp_compact f in
  let rec go n prev =
    if n > 0 then begin
      constfold f;
      copyprop f;
      cse f;
      dce f;
      simplify_branches f;
      let now = fingerprint () in
      if now <> prev then go (n - 1) now
    end
  in
  go rounds (fingerprint ())

let run_program ?rounds (p : Cfg.program) = List.iter (run ?rounds) p.funcs
