(** The TRIPS next-block predictor (§5.1).

    Predicts, for each fetched block, which of its (up to eight) exit
    branches will fire — a local/global tournament {e exit predictor} over
    3-bit exit numbers, with per-block local exit histories — and the target address of that exit through the
    multi-component {!Target} predictor (BTB for jumps, call target buffer
    and return address stack for calls/returns).

    A prediction is correct only if the resulting next-block address
    matches the executed successor, which is the accounting Fig 7 uses. *)

type config = {
  exit_entries : int;          (* entries in each exit table *)
  exit_hist_bits : int;        (* global exit-history length (3 bits/exit) *)
  target : Target.config;
}

val prototype : config
(** The 5 KB + 5 KB prototype configuration (Fig 7, B and H bars). *)

val improved : config
(** The scaled "lessons-learned" configuration (Fig 7, I bars). *)

type t

val create : config -> t

type kind = Kjump | Kcall | Kret

type outcome = {
  o_block : int;               (* fetched block id *)
  o_exit : int;                (* exit index that fired, 0..7 *)
  o_kind : kind;
  o_target : int;              (* executed successor block id *)
  o_fallthrough : int;         (* resume block for a call's return *)
}

val predict : t -> block:int -> int option
(** Predicted next-block id, [None] if no target information exists yet. *)

val update : t -> outcome -> unit

val copy : t -> t
(** Deep copy of all predictor state (exit tables, histories, target
    predictor).  Used for simulation checkpoints. *)

val storage_bits : config -> int
