type config = {
  btb_entries : int;
  ctb_entries : int;
  ras_depth : int;
}

let prototype = { btb_entries = 512; ctb_entries = 32; ras_depth = 8 }
let improved = { btb_entries = 1024; ctb_entries = 128; ras_depth = 32 }

type entry = { mutable tag : int; mutable target : int }

type t = {
  cfg : config;
  btb : entry array;
  ctb : entry array;
  ras : int array;
  mutable ras_top : int;        (* number of valid entries *)
}

type kind = Jump | Call | Ret

let create cfg =
  {
    cfg;
    btb = Array.init cfg.btb_entries (fun _ -> { tag = -1; target = 0 });
    ctb = Array.init cfg.ctb_entries (fun _ -> { tag = -1; target = 0 });
    ras = Array.make cfg.ras_depth 0;
    ras_top = 0;
  }

let copy t =
  {
    cfg = t.cfg;
    btb = Array.map (fun e -> { tag = e.tag; target = e.target }) t.btb;
    ctb = Array.map (fun e -> { tag = e.tag; target = e.target }) t.ctb;
    ras = Array.copy t.ras;
    ras_top = t.ras_top;
  }

let lookup table n ~pc =
  let e = table.(pc land (n - 1)) in
  if e.tag = pc then Some e.target else None

let predict t ~pc kind =
  match kind with
  | Jump -> lookup t.btb t.cfg.btb_entries ~pc
  | Call -> lookup t.ctb t.cfg.ctb_entries ~pc
  | Ret ->
    if t.ras_top > 0 then Some t.ras.(t.ras_top - 1) else None

let update t ?fallthrough ~pc kind ~target =
  match kind with
  | Jump ->
    let e = t.btb.(pc land (t.cfg.btb_entries - 1)) in
    e.tag <- pc;
    e.target <- target
  | Call ->
    let e = t.ctb.(pc land (t.cfg.ctb_entries - 1)) in
    e.tag <- pc;
    e.target <- target;
    (* push the fall-through "return address": callers record it as the
       value the matching return must produce *)
    if t.ras_top < t.cfg.ras_depth then begin
      t.ras.(t.ras_top) <- Option.value ~default:(pc + 1) fallthrough;
      t.ras_top <- t.ras_top + 1
    end
    else begin
      (* overflow: shift (oldest entry lost, as in hardware) *)
      Array.blit t.ras 1 t.ras 0 (t.cfg.ras_depth - 1);
      t.ras.(t.cfg.ras_depth - 1) <- Option.value ~default:(pc + 1) fallthrough
    end
  | Ret -> if t.ras_top > 0 then t.ras_top <- t.ras_top - 1

let storage_bits cfg =
  (* tag + target words, roughly 64 bits per entry *)
  (64 * cfg.btb_entries) + (64 * cfg.ctb_entries) + (32 * cfg.ras_depth)
