type t = {
  table : bool array;
  decay_interval : int;
  mutable accesses : int;
}

let create ?(entries = 1024) ?(decay_interval = 100_000) () =
  { table = Array.make entries false; decay_interval; accesses = 0 }

let copy t =
  {
    table = Array.copy t.table;
    decay_interval = t.decay_interval;
    accesses = t.accesses;
  }

let site_id ~block index = Hashtbl.hash (block, index)

let index t load_id = load_id land (Array.length t.table - 1)

let should_wait t ~load_id =
  t.accesses <- t.accesses + 1;
  if t.accesses mod t.decay_interval = 0 then Array.fill t.table 0 (Array.length t.table) false;
  t.table.(index t load_id)

let record_violation t ~load_id = t.table.(index t load_id) <- true
