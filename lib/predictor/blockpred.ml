type config = {
  exit_entries : int;
  exit_hist_bits : int;
  target : Target.config;
}

let prototype =
  { exit_entries = 2048; exit_hist_bits = 9; target = Target.prototype }

let improved =
  { exit_entries = 4096; exit_hist_bits = 12; target = Target.improved }

type exit_entry = { mutable exit_id : int; mutable conf : int }

type t = {
  cfg : config;
  local_hist : int array;            (* per-block exit history, 3 bits/exit *)
  local : exit_entry array;          (* indexed by block ^ its local history *)
  global : exit_entry array;         (* indexed by block ^ global history *)
  choice : int array;                (* per block: trust local or global *)
  (* per (block, predicted exit) target cache, via the Target module: the
     BTB key mixes the exit index into the address *)
  targets : Target.t;
  mutable ehist : int;               (* global exit history, 3 bits/exit *)
}

type kind = Kjump | Kcall | Kret

type outcome = {
  o_block : int;
  o_exit : int;
  o_kind : kind;
  o_target : int;
  o_fallthrough : int;
}

let create cfg =
  {
    cfg;
    local_hist = Array.make cfg.exit_entries 0;
    local = Array.init cfg.exit_entries (fun _ -> { exit_id = 0; conf = 0 });
    global = Array.init cfg.exit_entries (fun _ -> { exit_id = 0; conf = 0 });
    choice = Array.make cfg.exit_entries 1;
    targets = Target.create cfg.target;
    ehist = 0;
  }

let copy t =
  let dup = Array.map (fun e -> { exit_id = e.exit_id; conf = e.conf }) in
  {
    cfg = t.cfg;
    local_hist = Array.copy t.local_hist;
    local = dup t.local;
    global = dup t.global;
    choice = Array.copy t.choice;
    targets = Target.copy t.targets;
    ehist = t.ehist;
  }

let mask t = t.cfg.exit_entries - 1
let hmask t = (1 lsl t.cfg.exit_hist_bits) - 1

let indices t ~block =
  let hi = block land mask t in
  let lh = t.local_hist.(hi) land hmask t in
  let li = (block lxor (lh * 0x85EB)) land mask t in
  let gi = (block lxor (t.ehist * 0x9E37)) land mask t in
  (hi, li, gi)

(* BTB keys distinguish exits of the same block. *)
let btb_key block exit_id = (block * 8) + exit_id

let predicted_exit t ~block =
  let hi, li, gi = indices t ~block in
  if t.choice.(hi) >= 2 then t.global.(gi).exit_id else t.local.(li).exit_id

(* Without decoding the block we do not know the exit's kind; the hardware
   stores it in the BTB.  We try return-address stack first (returns hit
   there), then the jump/call tables. *)
let predict t ~block =
  let e = predicted_exit t ~block in
  let key = btb_key block e in
  match Target.predict t.targets ~pc:key Target.Jump with
  | Some tgt -> Some tgt
  | None -> (
    match Target.predict t.targets ~pc:key Target.Call with
    | Some tgt -> Some tgt
    | None -> Target.predict t.targets ~pc:key Target.Ret)

let update t (o : outcome) =
  let hi, li, gi = indices t ~block:o.o_block in
  let train (e : exit_entry) =
    if e.exit_id = o.o_exit then begin
      if e.conf < 3 then e.conf <- e.conf + 1
    end
    else if e.conf > 0 then e.conf <- e.conf - 1
    else e.exit_id <- o.o_exit
  in
  let lok = t.local.(li).exit_id = o.o_exit in
  let gok = t.global.(gi).exit_id = o.o_exit in
  if lok <> gok then begin
    let up = gok in
    if up then (if t.choice.(hi) < 3 then t.choice.(hi) <- t.choice.(hi) + 1)
    else if t.choice.(hi) > 0 then t.choice.(hi) <- t.choice.(hi) - 1
  end;
  train t.local.(li);
  train t.global.(gi);
  t.local_hist.(hi) <- ((t.local_hist.(hi) lsl 3) lor (o.o_exit land 7)) land hmask t;
  t.ehist <- ((t.ehist lsl 3) lor (o.o_exit land 7)) land hmask t;
  let key = btb_key o.o_block o.o_exit in
  match o.o_kind with
  | Kjump -> Target.update t.targets ~pc:key Target.Jump ~target:o.o_target
  | Kcall ->
    Target.update t.targets ~pc:key Target.Call ~target:o.o_target
      ~fallthrough:o.o_fallthrough
  | Kret -> Target.update t.targets ~pc:key Target.Ret ~target:o.o_target

let storage_bits cfg =
  (* local histories + two tables of 3-bit exit id + 2-bit confidence +
     chooser *)
  (cfg.exit_entries * cfg.exit_hist_bits)
  + (2 * cfg.exit_entries * 5) + (cfg.exit_entries * 2)
  + Target.storage_bits cfg.target
