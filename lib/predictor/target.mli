(** Target prediction: branch target buffer, call target buffer and return
    address stack.  These supply the "where" half of next-block prediction
    (the TRIPS prototype's multi-component target predictor, §5.1) and the
    BTB of the superscalar models.  The paper attributes much of the SPEC
    call/return misprediction to undersized call/return structures (§7);
    sizes are parameters so the Fig 7 "improved" configuration can scale
    them. *)

type config = {
  btb_entries : int;            (* direct-mapped, tagged *)
  ctb_entries : int;            (* call targets *)
  ras_depth : int;              (* return address stack *)
}

val prototype : config
(** Small structures matching the 5 KB prototype budget. *)

val improved : config
(** The scaled-up 9 KB "lessons learned" configuration of Fig 7 (I). *)

type t

val create : config -> t

type kind = Jump | Call | Ret

val predict : t -> pc:int -> kind -> int option
(** Predicted target for a transfer of the given kind at [pc]; [None] when
    the relevant structure has no entry (counts as a misprediction). *)

val update : t -> ?fallthrough:int -> pc:int -> kind -> target:int -> unit
(** Record the actual target (push/pop the RAS for calls/returns).
    [fallthrough] is the address the matching return should resume at
    (defaults to [pc + 1]). *)

val copy : t -> t
(** Deep copy (tables, return-address stack); the original keeps
    evolving independently.  Used for simulation checkpoints. *)

val storage_bits : config -> int
