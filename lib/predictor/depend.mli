(** Store-load dependence predictor: the partitioned load-wait table the
    data tiles use (§5.1).  A load that once issued past a conflicting
    earlier store has its entry set and afterwards waits for all earlier
    stores; the table is cleared periodically so stale entries do not
    serialize forever. *)

type t

val create : ?entries:int -> ?decay_interval:int -> unit -> t
(** Defaults: 1024 entries, decay every 100k accesses. *)

val copy : t -> t
(** Deep copy, including the access count that drives decay.  Used for
    simulation checkpoints. *)

val site_id : block:string -> int -> int
(** [site_id ~block index] is the stable identifier of one load site,
    a polymorphic hash of [(block, index)].  The cycle simulator
    precomputes these in its static per-block timing plans instead of
    hashing on every committed instance.  Note the historical asymmetry
    it preserves: {!should_wait} is keyed by the load's {e instruction
    index}, {!record_violation} by its {e LSID} — kept as-is because the
    golden parity fixtures pin the resulting behavior. *)

val should_wait : t -> load_id:int -> bool
val record_violation : t -> load_id:int -> unit
