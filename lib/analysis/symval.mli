(** Shared symbolic term language for translation validation.

    Every side of a compiler pass (TIR regions, EDGE dataflow blocks,
    RISC instruction streams) evaluates into the same normalized term
    language, reducing semantic equivalence per predicate path to
    syntactic equality.  The smart constructors fold constants through
    {!Trips_tir.Semantics}, canonicalize commutative operands,
    re-associate constant address arithmetic and forward stores to
    loads.  See DESIGN.md §11. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty

type var =
  | Vreg of int  (** TIR virtual register *)
  | Varch of int  (** EDGE architectural register *)
  | Vint of int  (** RISC integer register *)
  | Vflt of int  (** RISC floating-point register *)
  | Vret of int * int  (** havoc result of call event [id]; channel 0/1 *)

type t =
  | Ci of int64
  | Cf of float  (** compared structurally; bit-sensitive uses wrap in [Fbits] *)
  | Var of var
  | Bin of Ast.binop * t * t
  | Un of Ast.unop * t
  | Fbits of t  (** [Int64.bits_of_float] *)
  | Fofbits of t  (** [Int64.float_of_bits] *)
  | Sel of Ty.t * Ty.width * t * mem  (** typed load from a memory chain *)

and mem =
  | Minit of int  (** named initial memory *)
  | Mstore of mem * Ty.width * t * t  (** older, width, address, raw bits *)
  | Mcall of int * mem  (** havoc barrier for call event [id] *)

val mem_program : int
val mem_stack : int

val compare_t : t -> t -> int
val equal : t -> t -> bool
val equal_mem : mem -> mem -> bool

val reset_intern : unit -> unit
(** Clear the hash-consing tables.  Composite terms are interned so
    that structurally equal terms are physically equal and comparisons
    short-circuit on shared structure; call this between independent
    block checks to bound table growth.  Never affects correctness —
    terms from different intern generations still compare
    structurally. *)

val is_float : t -> bool option
(** Value class of a term; [None] when undeterminable. *)

val value_of : t -> Ty.value option
(** The concrete value of a constant term. *)

(** {1 Normalizing constructors} *)

val bin : Ast.binop -> t -> t -> t
val un : Ast.unop -> t -> t
val fbits : t -> t
val fofbits : t -> t

val to_bits : t -> t
(** Raw bit pattern of a term, as [Image.store] would truncate it. *)

val store : mem -> Ty.width -> t -> t -> mem
(** [store m w addr raw] pushes a store; [raw] must be [to_bits]-wrapped. *)

val mcall : int -> mem -> mem
(** [mcall id m] pushes the havoc barrier of call event [id]. *)

val sel : Ty.t -> Ty.width -> t -> mem -> t
(** A load with store-forwarding over provably exact/disjoint stores. *)

val addr_parts : t -> t option * int64
(** Decompose an address into (symbolic root, constant offset). *)

(** {1 Path conditions} *)

type pc = (t * bool) list
(** Decisions taken so far: canonical condition key -> truthiness. *)

exception Fork of t
(** Raised by {!decide} on an undetermined condition key. *)

val cond_key : t -> t * bool
(** Canonical decision key and polarity of a condition term. *)

val decide : pc -> t -> bool
(** Truthiness of a condition under [pc]; raises {!Fork} when open. *)

(** {1 Concretization support} *)

val subst : (var -> t option) -> t -> t
(** Substitute variables and renormalize (folds fully when the
    substitution is total and constant). *)

val subst_mem : (var -> t option) -> mem -> mem
val vars : var list -> t -> var list
val vars_mem : var list -> mem -> var list

(** {1 Printing} *)

val var_name : var -> string
val pp : Format.formatter -> t -> unit
val pp_mem : Format.formatter -> mem -> unit
val to_string : t -> string
