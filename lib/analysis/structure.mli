(** Structural per-block checks: the encoding limits and target
    well-formedness of {!Trips_edge.Block.validate} re-expressed as
    diagnostics (every violation reported, not just the first), plus LSID
    value range/uniqueness and tile-occupancy checks.

    Classes: ["limits"], ["lsid-range"], ["lsid-dup"], ["target-range"],
    ["fanout"], ["reg-range"], ["write-producer"], ["arity"],
    ["port-conflict"], ["placement"], ["exit-path"] (no branch at all). *)

val targets_in_range : Trips_edge.Block.t -> bool
(** True when every target and predicate index is in range, i.e. the
    index-based dataflow passes can run without bounds failures. *)

val check : fname:string -> Trips_edge.Block.t -> Diag.t list
