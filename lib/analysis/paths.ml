(* Predicate-path enumeration for one EDGE block.

   A block's dynamic behaviour is determined by the values its predicate
   producers (test instructions referenced by On_true/On_false) deliver.
   We enumerate the feasible assignments lazily: starting from the empty
   assignment, compute the firing fixpoint — an instruction fires when its
   predicate condition holds under the assignment and every required
   operand port has at least one fired producer (read slots always
   deliver) — and whenever an *unassigned* predicate producer fires, fork
   on its two values.  When no firing producer is unassigned the
   assignment is complete and describes one predicate path, exactly the
   execution Exec.exec_block would perform for those test outcomes.

   This visits only feasible paths (nested tests that cannot fire under an
   assignment are never forked on), so the path count tracks the block's
   real control structure rather than 2^(number of tests). *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block

type producer = Read of int | Inst of int

type path = {
  assign : (int * bool) list;   (* predicate producer -> delivered truth *)
  fires : bool array;           (* per instruction *)
  fire_order : int list;        (* a valid dataflow firing order *)
}

let default_max_paths = 4096

let pp_assign assign =
  if assign = [] then "the single path"
  else
    "path "
    ^ String.concat ","
        (List.map
           (fun (p, v) -> Printf.sprintf "I%d=%c" p (if v then 'T' else 'F'))
           (List.sort compare assign))

(* producers per operand port, from targets (reads keyed separately) *)
let port_map (b : Block.t) : (int * Isa.slot, producer list) Hashtbl.t =
  let m = Hashtbl.create 64 in
  let add key p =
    Hashtbl.replace m key (p :: Option.value ~default:[] (Hashtbl.find_opt m key))
  in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      List.iter
        (function Isa.To_inst (j, s) -> add (j, s) (Inst i) | Isa.To_write _ -> ())
        ins.Isa.targets)
    b.insts;
  Array.iteri
    (fun r (rd : Block.read) ->
      List.iter
        (function Isa.To_inst (j, s) -> add (j, s) (Read r) | Isa.To_write _ -> ())
        rd.Block.rtargets)
    b.reads;
  m

let pred_producers (b : Block.t) : int list =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (ins : Isa.inst) ->
      match ins.Isa.pred with
      | Isa.On_true p | Isa.On_false p -> Hashtbl.replace seen p ()
      | Isa.Unpred -> ())
    b.insts;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

(* Enumerate the feasible paths of [b].  Returns [paths, truncated]:
   [truncated] is true when the [max_paths] cap stopped enumeration. *)
let enumerate ?(max_paths = default_max_paths) (b : Block.t) : path list * bool
    =
  let n = Array.length b.insts in
  let ports = port_map b in
  let producers key = Option.value ~default:[] (Hashtbl.find_opt ports key) in
  let preds = pred_producers b in
  let paths = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let rec explore (assign : (int * bool) list) =
    if !truncated then ()
    else begin
      (* firing fixpoint under the partial assignment *)
      let fires = Array.make n false in
      let order = ref [] in
      let changed = ref true in
      let pred_ok i =
        match b.insts.(i).Isa.pred with
        | Isa.Unpred -> true
        | Isa.On_true p -> fires.(p) && List.assoc_opt p assign = Some true
        | Isa.On_false p -> fires.(p) && List.assoc_opt p assign = Some false
      in
      let port_fed key =
        List.exists
          (function Read _ -> true | Inst j -> fires.(j))
          (producers key)
      in
      while !changed do
        changed := false;
        for i = 0 to n - 1 do
          if not fires.(i) then begin
            let arity = Isa.operand_arity b.insts.(i) in
            if
              pred_ok i
              && (arity < 1 || port_fed (i, Isa.Op0))
              && (arity < 2 || port_fed (i, Isa.Op1))
            then begin
              fires.(i) <- true;
              order := i :: !order;
              changed := true
            end
          end
        done
      done;
      (* fork on a fired but unassigned predicate producer *)
      match
        List.find_opt
          (fun p -> fires.(p) && not (List.mem_assoc p assign))
          preds
      with
      | Some p ->
        explore ((p, true) :: assign);
        explore ((p, false) :: assign)
      | None ->
        incr count;
        if !count > max_paths then truncated := true
        else
          paths :=
            { assign; fires; fire_order = List.rev !order } :: !paths
    end
  in
  explore [];
  (List.rev !paths, !truncated)

(* Token kinds for null-flow analysis along one path: which instructions
   deliver a null token (Null producers, propagated through movs). *)
let null_kinds (b : Block.t) (p : path) : bool array =
  let ports = port_map b in
  let nul = Array.make (Array.length b.insts) false in
  List.iter
    (fun i ->
      match b.insts.(i).Isa.op with
      | Isa.Null -> nul.(i) <- true
      | Isa.Mov ->
        (* the producer that actually fired on this path *)
        let fired_src =
          List.find_opt
            (function Read _ -> true | Inst j -> p.fires.(j))
            (Option.value ~default:[] (Hashtbl.find_opt ports (i, Isa.Op0)))
        in
        (match fired_src with
        | Some (Inst j) -> nul.(i) <- nul.(j)
        | Some (Read _) | None -> ())
      | _ -> ())
    p.fire_order;
  nul
