type severity = Info | Warning | Error

type t = {
  sev : severity;
  pass : string;
  cls : string;
  fname : string;
  block : string;
  inst : int option;
  msg : string;
  fix : string option;
  count : int;
}

let make ?(sev = Error) ?(pass = "") ?(fname = "") ?(block = "") ?inst ?fix cls msg =
  { sev; pass; cls; fname; block; inst; msg; fix; count = 1 }

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let compare_diags a b =
  (* most severe first, then by location for stable reports *)
  let c = compare (severity_rank b.sev) (severity_rank a.sev) in
  if c <> 0 then c
  else
    let c = compare (a.fname, a.block, a.inst) (b.fname, b.block, b.inst) in
    if c <> 0 then c else compare (a.cls, a.msg) (b.cls, b.msg)

let sort ds = List.sort compare_diags ds

let count sev ds =
  List.fold_left (fun n d -> if d.sev = sev then n + d.count else n) 0 ds

(* Stable deduplication: findings with the same severity, pass, class
   and location collapse into the first occurrence with a summed
   count.  First-seen order is preserved. *)
let dedup ds =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun d ->
      let key = (d.sev, d.pass, d.cls, d.fname, d.block, d.inst) in
      match Hashtbl.find_opt tbl key with
      | Some prev -> Hashtbl.replace tbl key { prev with count = prev.count + d.count }
      | None ->
        Hashtbl.replace tbl key d;
        order := key :: !order)
    ds;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
let errors ds = count Error ds
let warnings ds = count Warning ds

let failed ~strict ds =
  errors ds > 0 || (strict && warnings ds > 0)

let location d =
  let at =
    match d.inst with
    | Some i -> Printf.sprintf "%s/I%d" d.block i
    | None -> d.block
  in
  if d.fname = "" then at
  else if at = "" then d.fname
  else d.fname ^ ":" ^ at

let to_line d =
  let loc = location d in
  Printf.sprintf "%-7s [%s] %s%s%s" (severity_name d.sev) d.cls
    (if loc = "" then "" else loc ^ ": ")
    d.msg
    ((if d.count > 1 then Printf.sprintf "  (x%d)" d.count else "")
    ^ match d.fix with None -> "" | Some f -> "  (fix: " ^ f ^ ")")

let render_text ds =
  let ds = sort ds in
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_line d);
      Buffer.add_char buf '\n')
    ds;
  Buffer.contents buf

let to_json d =
  let module J = Trips_util.Json in
  J.Obj
    ([
       ("severity", J.Str (severity_name d.sev));
       ("pass", J.Str d.pass);
       ("class", J.Str d.cls);
       ("function", J.Str d.fname);
       ("block", J.Str d.block);
     ]
    @ (match d.inst with Some i -> [ ("inst", J.Int i) ] | None -> [])
    @ [ ("message", J.Str d.msg) ]
    @ (if d.count > 1 then [ ("count", J.Int d.count) ] else [])
    @ match d.fix with Some f -> [ ("fix", J.Str f) ] | None -> [])

let list_to_json ds = Trips_util.Json.List (List.map to_json (sort ds))
