(* EDGE-block memory separation oracle.

   Evaluates the address feeding each Load/Store of a finished {!Block.t}
   to a concrete interval by walking the block's producer graph (addresses
   are absolute at this level: {!Trips_compiler.Dataflow} resolves global
   symbols against the layout before building instructions).  Deliberately
   independent from {!Absint}: the compiler's LSID-relaxation pass and the
   translation validator's [check_relax] both call this oracle, so the
   validator re-derives disjointness from the EDGE block alone rather than
   trusting TIR-level facts. *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty

type iv = { lo : int64; hi : int64 }
(* [None] everywhere below means "unknown address" (top). *)

let add_ovf a b =
  let s = Int64.add a b in
  if (a >= 0L) = (b >= 0L) && (s >= 0L) <> (a >= 0L) then None else Some s

let sub_ovf a b =
  let s = Int64.sub a b in
  if (a >= 0L) <> (b >= 0L) && (s >= 0L) <> (a >= 0L) then None else Some s

let mul_ovf a b =
  if a = 0L || b = 0L then Some 0L
  else
    let p = Int64.mul a b in
    if Int64.div p b = a && not (a = -1L && b = Int64.min_int)
       && not (b = -1L && a = Int64.min_int)
    then Some p
    else None

let iv_add x y =
  match (add_ovf x.lo y.lo, add_ovf x.hi y.hi) with
  | Some lo, Some hi -> Some { lo; hi }
  | _ -> None

let iv_sub x y =
  match (sub_ovf x.lo y.hi, sub_ovf x.hi y.lo) with
  | Some lo, Some hi -> Some { lo; hi }
  | _ -> None

let iv_join x y = { lo = min x.lo y.lo; hi = max x.hi y.hi }

(* A producer feeding an operand port: an instruction, or a header read
   slot (whose register value is unknown). *)
type producer = Pinst of int | Pread

let producers (b : Block.t) : (producer list * producer list) array =
  let n = Array.length b.Block.insts in
  let prod = Array.make n ([], []) in
  let feed p = function
    | Isa.To_inst (j, Isa.Op0) when j < n ->
      let p0, p1 = prod.(j) in
      prod.(j) <- (p :: p0, p1)
    | Isa.To_inst (j, Isa.Op1) when j < n ->
      let p0, p1 = prod.(j) in
      prod.(j) <- (p0, p :: p1)
    | _ -> ()
  in
  Array.iteri
    (fun i (ins : Isa.inst) -> List.iter (feed (Pinst i)) ins.Isa.targets)
    b.Block.insts;
  Array.iter
    (fun (r : Block.read) -> List.iter (feed Pread) r.Block.rtargets)
    b.Block.reads;
  prod

type t = { insts : Isa.inst array; prod : (producer list * producer list) array }

let of_block (b : Block.t) : t =
  { insts = b.Block.insts; prod = producers b }

let low_mask bits = Int64.sub (Int64.shift_left 1L bits) 1L

(* Value interval produced by instruction [i]; memoized, cycle-guarded
   (builder output is a DAG, but stay total on malformed input). *)
let rec value t memo onstack i : iv option =
  if onstack.(i) then None
  else
    match memo.(i) with
    | Some v -> v
    | None ->
      onstack.(i) <- true;
      let v = compute t memo onstack i in
      onstack.(i) <- false;
      memo.(i) <- Some v;
      v

and port t memo onstack i slot : iv option =
  let p0, p1 = t.prod.(i) in
  let ps = match slot with Isa.Op0 -> p0 | _ -> p1 in
  (* predicated fanout can give a port several producers, of which exactly
     one fires at run time: join them, skipping Null producers (a null
     token nullifies the consumer, so no access happens on that path) *)
  let rec go acc = function
    | [] -> acc
    | Pread :: _ -> None
    | Pinst j :: rest -> (
      match t.insts.(j).Isa.op with
      | Isa.Null -> go acc rest
      | _ -> (
        match value t memo onstack j with
        | None -> None
        | Some v ->
          go (Some (match acc with None -> v | Some a -> iv_join a v)) rest))
  in
  match ps with
  | [] -> None
  | _ -> ( match go None ps with Some v -> Some v | None -> None)

and compute t memo onstack i : iv option =
  let ins = t.insts.(i) in
  match ins.Isa.op with
  | Isa.Geni n -> Some { lo = n; hi = n }
  | Isa.Mov -> port t memo onstack i Isa.Op0
  | Isa.Un (Ast.Zext w) -> (
    let bits = 8 * Ty.bytes_of_width w in
    if bits >= 64 then port t memo onstack i Isa.Op0
    else
      let m = low_mask bits in
      match port t memo onstack i Isa.Op0 with
      | Some v when v.lo >= 0L && v.hi <= m -> Some v
      | _ -> Some { lo = 0L; hi = m })
  | Isa.Bin op -> (
    let a = port t memo onstack i Isa.Op0 in
    let b =
      match ins.Isa.imm with
      | Some n -> Some { lo = n; hi = n }
      | None -> port t memo onstack i Isa.Op1
    in
    match (op, a, b) with
    | Ast.Add, Some x, Some y -> iv_add x y
    | Ast.Sub, Some x, Some y -> iv_sub x y
    | Ast.And, Some _, Some y when y.lo = y.hi && y.lo >= 0L ->
      Some { lo = 0L; hi = y.lo }
    | Ast.And, Some x, Some _ when x.lo = x.hi && x.lo >= 0L ->
      Some { lo = 0L; hi = x.lo }
    | Ast.Shl, Some x, Some y
      when y.lo = y.hi && y.lo >= 0L && y.lo < 64L && x.lo >= 0L -> (
      let f = Int64.shift_left 1L (Int64.to_int y.lo) in
      match (mul_ovf x.lo f, mul_ovf x.hi f) with
      | Some lo, Some hi -> Some { lo; hi }
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)

type memop = {
  m_inst : int;  (* instruction index in the block *)
  m_lsid : int;
  m_store : bool;
  m_addr : iv option;  (* start-address interval, displacement included *)
  m_bytes : int;
}

let memops_of t : memop list =
  let memo = Array.make (Array.length t.insts) None in
  let onstack = Array.make (Array.length t.insts) false in
  let disp i =
    match t.insts.(i).Isa.imm with Some n -> { lo = n; hi = n } | None -> { lo = 0L; hi = 0L }
  in
  let ops = ref [] in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      match ins.Isa.op with
      | Isa.Load (_, w, lsid) ->
        let addr =
          match port t memo onstack i Isa.Op0 with
          | Some v -> iv_add v (disp i)
          | None -> None
        in
        ops :=
          { m_inst = i; m_lsid = lsid; m_store = false; m_addr = addr;
            m_bytes = Ty.bytes_of_width w }
          :: !ops
      | Isa.Store (w, lsid) ->
        let addr =
          match port t memo onstack i Isa.Op0 with
          | Some v -> iv_add v (disp i)
          | None -> None
        in
        ops :=
          { m_inst = i; m_lsid = lsid; m_store = true; m_addr = addr;
            m_bytes = Ty.bytes_of_width w }
          :: !ops
      | _ -> ())
    t.insts;
  List.rev !ops

let memops (b : Block.t) : memop list = memops_of (of_block b)

let disjoint (a : memop) (b : memop) : bool =
  match (a.m_addr, b.m_addr) with
  | Some x, Some y -> (
    let bytes_a = Int64.of_int a.m_bytes and bytes_b = Int64.of_int b.m_bytes in
    match (add_ovf x.hi bytes_a, add_ovf y.hi bytes_b) with
    | Some xe, Some ye -> xe <= y.lo || ye <= x.lo
    | _ -> false)
  | _ -> false
