(** EDGE block & program static analyzer.

    Runs every pass over compiled {!Trips_edge.Block} programs and returns
    structured {!Diag.t} findings:

    - {!Structure}: encoding limits, LSID range/uniqueness, target and
      port/arity well-formedness, placement geometry;
    - {!Dataflow_checks}: predicate-path enumeration — exactly one exit
      per path, store completion, write-slot delivery, port conflicts,
      null-token flow, dataflow deadlock, dead code;
    - {!Liveness}: branch-target resolution, reachability, cross-block
      use-before-def and dead writes. *)

type options = { max_paths : int }

val default_options : options

val analyze_block :
  ?options:options -> fname:string -> Trips_edge.Block.t -> Diag.t list

val analyze_func :
  ?options:options ->
  ?known_funcs:string list ->
  Trips_edge.Block.func ->
  Diag.t list
(** Per-block passes plus intra-function CFG passes.  Callee resolution is
    skipped unless [known_funcs] is given. *)

val analyze_program :
  ?options:options -> Trips_edge.Block.program -> Diag.t list

val classes : Diag.t list -> string list
(** Distinct diagnostic classes present, sorted. *)

val has_class : string -> Diag.t list -> bool

val summary : Diag.t list -> string
