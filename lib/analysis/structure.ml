(* Structural per-block checks: the hardware encoding limits and target
   well-formedness that Block.validate enforces by exception, re-expressed
   as structured diagnostics so a lint run can report every violation in a
   program instead of stopping at the first.  Blocks that fail the target
   range checks are flagged as unsafe for the deeper dataflow passes. *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block

let diag ~fname ~(b : Block.t) ?inst ?fix ?(sev = Diag.Error) cls msg =
  Diag.make ~sev ~pass:"structure" ~fname ~block:b.Block.label ?inst ?fix cls msg

(* true when every To_inst / To_write target of the block is in range, so
   index-based passes can run without bounds failures *)
let targets_in_range (b : Block.t) =
  let n = Array.length b.insts in
  let nw = Array.length b.writes in
  let ok = function
    | Isa.To_inst (i, _) -> i >= 0 && i < n
    | Isa.To_write w -> w >= 0 && w < nw
  in
  Array.for_all (fun (ins : Isa.inst) -> List.for_all ok ins.Isa.targets) b.insts
  && Array.for_all
       (fun (r : Block.read) -> List.for_all ok r.Block.rtargets)
       b.reads
  && Array.for_all
       (fun (ins : Isa.inst) ->
         match ins.Isa.pred with
         | Isa.Unpred -> true
         | Isa.On_true p | Isa.On_false p -> p >= 0 && p < n)
       b.insts

let check ~fname (b : Block.t) : Diag.t list =
  let out = ref [] in
  let emit d = out := d :: !out in
  let n = Array.length b.insts in
  let nw = Array.length b.writes in
  (* encoding limits *)
  if n > Isa.max_insts then
    emit
      (diag ~fname ~b "limits"
         (Printf.sprintf "%d instructions exceed the %d-instruction block limit"
            n Isa.max_insts)
         ~fix:"shrink the hyperblock formation budget");
  if Array.length b.reads > Isa.max_reads then
    emit
      (diag ~fname ~b "limits"
         (Printf.sprintf "%d reads exceed the %d read slots" (Array.length b.reads)
            Isa.max_reads));
  if nw > Isa.max_writes then
    emit
      (diag ~fname ~b "limits"
         (Printf.sprintf "%d writes exceed the %d write slots" nw Isa.max_writes));
  if Block.num_lsids b > Isa.max_lsids then
    emit
      (diag ~fname ~b "limits"
         (Printf.sprintf "%d distinct LSIDs exceed the %d-LSID limit"
            (Block.num_lsids b) Isa.max_lsids));
  let ex = Block.exits b in
  if List.length ex > Isa.max_exits then
    emit
      (diag ~fname ~b "limits"
         (Printf.sprintf "%d exits exceed the %d-exit limit" (List.length ex)
            Isa.max_exits));
  if ex = [] then
    emit
      (diag ~fname ~b "exit-path" "block has no branch instruction"
         ~fix:"every block must fire exactly one branch");
  (* LSID values: range and uniqueness (the load/store queue and the
     store-completion protocol index by LSID value) *)
  let lsid_owner = Hashtbl.create 8 in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      match ins.Isa.op with
      | Isa.Load (_, _, lsid) | Isa.Store (_, lsid) ->
        if lsid < 0 || lsid >= Isa.max_lsids then
          emit
            (diag ~fname ~b ~inst:i "lsid-range"
               (Printf.sprintf "LSID %d outside 0..%d" lsid (Isa.max_lsids - 1))
               ~fix:"renumber memory operations from 0 in program order");
        (match Hashtbl.find_opt lsid_owner lsid with
        | Some j ->
          emit
            (diag ~fname ~b ~inst:i "lsid-dup"
               (Printf.sprintf "LSID %d already used by I%d" lsid j)
               ~fix:"give every memory operation a distinct LSID")
        | None -> Hashtbl.replace lsid_owner lsid i)
      | _ -> ())
    b.insts;
  (* target well-formedness and producer bookkeeping *)
  let in_range = targets_in_range b in
  let port_producers : (int * Isa.slot, int list) Hashtbl.t = Hashtbl.create 32 in
  let write_producers = Array.make (max nw 1) [] in
  let record src tgt =
    match tgt with
    | Isa.To_inst (i, s) ->
      if i < 0 || i >= n then
        emit
          (diag ~fname ~b
             ?inst:(if src >= 0 then Some src else None)
             "target-range" (Printf.sprintf "target I%d out of range" i))
      else if i = src then
        emit (diag ~fname ~b ~inst:src "target-range" "instruction targets itself")
      else
        Hashtbl.replace port_producers (i, s)
          (src :: Option.value ~default:[] (Hashtbl.find_opt port_producers (i, s)))
    | Isa.To_write w ->
      if w < 0 || w >= nw then
        emit
          (diag ~fname ~b
             ?inst:(if src >= 0 then Some src else None)
             "target-range" (Printf.sprintf "write target W%d out of range" w))
      else write_producers.(w) <- src :: write_producers.(w)
  in
  Array.iteri
    (fun idx (ins : Isa.inst) ->
      if List.length ins.Isa.targets > 2 then
        emit
          (diag ~fname ~b ~inst:idx "fanout"
             (Printf.sprintf "%d targets exceed the 2-target encoding"
                (List.length ins.Isa.targets))
             ~fix:"split the fanout with a mov tree");
      (match ins.Isa.op with
      | Isa.Branch _ when ins.Isa.targets <> [] ->
        emit (diag ~fname ~b ~inst:idx "target-range" "branch with targets")
      | Isa.Store _ when ins.Isa.targets <> [] ->
        emit (diag ~fname ~b ~inst:idx "target-range" "store with targets")
      | _ -> ());
      List.iter (record idx) ins.Isa.targets)
    b.insts;
  Array.iteri
    (fun ri (r : Block.read) ->
      if r.Block.rreg < 0 || r.Block.rreg >= Isa.num_regs then
        emit
          (diag ~fname ~b "reg-range"
             (Printf.sprintf "read slot R%d names register r%d" ri r.Block.rreg));
      if List.length r.Block.rtargets > 2 then
        emit
          (diag ~fname ~b "fanout"
             (Printf.sprintf "read slot R%d has %d targets" ri
                (List.length r.Block.rtargets)));
      List.iter (record (-1)) r.Block.rtargets)
    b.reads;
  Array.iteri
    (fun wi (w : Block.write) ->
      if w.Block.wreg < 0 || w.Block.wreg >= Isa.num_regs then
        emit
          (diag ~fname ~b "reg-range"
             (Printf.sprintf "write slot W%d names register r%d" wi w.Block.wreg)))
    b.writes;
  for w = 0 to nw - 1 do
    if write_producers.(w) = [] then
      emit
        (diag ~fname ~b "write-producer"
           (Printf.sprintf "write slot W%d has no producer" w)
           ~fix:"target the write from the defining instruction")
  done;
  (* operand ports: arity matching, predicate wiring, duplicate
     unpredicated producers *)
  if in_range then
    Array.iteri
      (fun idx (ins : Isa.inst) ->
        let producers s =
          Option.value ~default:[] (Hashtbl.find_opt port_producers (idx, s))
        in
        let arity = Isa.operand_arity ins in
        let need s = producers s = [] in
        if arity >= 1 && need Isa.Op0 then
          emit
            (diag ~fname ~b ~inst:idx "arity" "op0 has no producer"
               ~fix:"add a dataflow arc delivering the operand");
        if arity >= 2 && need Isa.Op1 then
          emit (diag ~fname ~b ~inst:idx "arity" "op1 has no producer");
        if arity < 2 && not (need Isa.Op1) then
          emit
            (diag ~fname ~b ~inst:idx "arity"
               (Printf.sprintf "op1 producer on an arity-%d instruction" arity));
        if arity < 1 && not (need Isa.Op0) then
          emit
            (diag ~fname ~b ~inst:idx "arity"
               (Printf.sprintf "op0 producer on an arity-%d instruction" arity));
        (match ins.Isa.pred with
        | Isa.Unpred ->
          if not (need Isa.OpPred) then
            emit
              (diag ~fname ~b ~inst:idx "arity"
                 "unpredicated instruction receives a predicate")
        | Isa.On_true p | Isa.On_false p ->
          if need Isa.OpPred then
            emit
              (diag ~fname ~b ~inst:idx "arity" "predicate port has no producer"
                 ~fix:"target the predicate from the test instruction");
          if p < 0 || p >= n then
            emit
              (diag ~fname ~b ~inst:idx "target-range"
                 (Printf.sprintf "predicate producer I%d out of range" p)));
        (* two producers that both fire unconditionally on one port *)
        List.iter
          (fun s ->
            let unpred =
              List.filter
                (fun src ->
                  src < 0
                  || (match b.insts.(src).Isa.pred with
                     | Isa.Unpred -> true
                     | _ -> false))
                (producers s)
            in
            if List.length unpred > 1 then
              emit
                (diag ~fname ~b ~inst:idx "port-conflict"
                   (Printf.sprintf "%s has %d unpredicated producers"
                      (Isa.slot_name s) (List.length unpred))
                   ~fix:"predicate the producers on opposite arms or merge them"))
          [ Isa.Op0; Isa.Op1; Isa.OpPred ])
      b.insts;
  (* placement geometry *)
  if Array.length b.placement <> n then
    emit
      (diag ~fname ~b "placement"
         (Printf.sprintf "placement covers %d of %d instructions"
            (Array.length b.placement) n))
  else begin
    let occupancy = Array.make Isa.num_ets 0 in
    Array.iteri
      (fun i et ->
        if et < 0 || et >= Isa.num_ets then
          emit
            (diag ~fname ~b ~inst:i "placement"
               (Printf.sprintf "tile %d outside the %d-tile grid" et Isa.num_ets))
        else occupancy.(et) <- occupancy.(et) + 1)
      b.placement;
    Array.iteri
      (fun et c ->
        if c > Isa.et_slots then
          emit
            (diag ~fname ~b "placement"
               (Printf.sprintf "tile %d holds %d instructions (max %d slots)" et c
                  Isa.et_slots)))
      occupancy
  end;
  List.rev !out
