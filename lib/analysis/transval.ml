(* Translation validation: per-pass symbolic equivalence checking.

   Each checker runs the two sides of a compiler pass over the shared
   {!Symval} term language, enumerates feasible predicate paths
   (target-first: the target's paths seed the source's path
   conditions), and compares the observable outputs — exit, register
   interface, memory stores, call events and return value.  A path
   whose normalized terms agree syntactically is [proved]; a residual
   mismatch falls back to seeded random concretization, which either
   finds a decisive counterexample ([refuted], with a
   [pass:"transval"] diag naming the first diverging definition) or
   upgrades the path to [concretely-validated].  See DESIGN.md §11. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Cfg = Trips_tir.Cfg
module S = Symval
module Eisa = Trips_edge.Isa
module Eblk = Trips_edge.Block
module Risa = Trips_risc.Isa
module Rng = Trips_util.Rng
module IS = Set.Make (Int)

exception Refute of string
(** A structural divergence on the current path (stuck dataflow,
    mismatched shape, ...).  Caught by the path enumerator. *)

(* ------------------------------------------------------------------ *)
(* Exits                                                              *)
(* ------------------------------------------------------------------ *)

type exitk =
  | Xjump of string  (** jump to a labelled block *)
  | Xidx of int  (** jump to a code index (RISC; labels compare by index) *)
  | Xcall of string * string  (** call [callee], resume at label *)
  | Xret

let exitk_name = function
  | Xjump l -> "jump " ^ l
  | Xidx i -> Printf.sprintf "code[%d]" i
  | Xcall (f, r) -> Printf.sprintf "call %s -> %s" f r
  | Xret -> "ret"

let exitk_of_edge = function
  | Eisa.Xjump l -> Xjump l
  | Eisa.Xcall (f, r) -> Xcall (f, r)
  | Eisa.Xret -> Xret

(* ------------------------------------------------------------------ *)
(* Source regions: TIR instruction trees                              *)
(* ------------------------------------------------------------------ *)

type ritem =
  | Rins of Cfg.ins
  | Rif of Cfg.operand * ritem list * ritem list
  | Rexit of exitk
  | Rret of Cfg.operand option

type rconfig = {
  rc_iface : int -> S.t;  (** initial value of a virtual register *)
  rc_sym : string -> int64;  (** symbol addresses (linker layout) *)
  rc_isf : Cfg.operand -> bool;  (** float class of a call argument *)
  rc_dst_ch : int -> int;  (** havoc channel of a call destination *)
}

type rres = {
  rr_exit : exitk;
  rr_env : (int, S.t) Hashtbl.t;
  rr_ret : S.t option;
  rr_stores : (Ty.width * S.t * S.t) list;  (** program order *)
  rr_calls : (string * (bool * S.t) list) list;
}

let run_region ~pc rcfg items =
  let env = Hashtbl.create 32 in
  let stores = ref [] in
  let calls = ref [] in
  let callid = ref 0 in
  let mem = ref (S.Minit S.mem_program) in
  let lookup v =
    match Hashtbl.find_opt env v with Some t -> t | None -> rcfg.rc_iface v
  in
  let ev = function
    | Cfg.Reg v -> lookup v
    | Cfg.Ci n -> S.Ci n
    | Cfg.Cf f -> S.Cf f
    | Cfg.Sym s -> S.Ci (rcfg.rc_sym s)
  in
  let exec_ins = function
    | Cfg.Bin (op, d, a, b) -> Hashtbl.replace env d (S.bin op (ev a) (ev b))
    | Cfg.Un (op, d, a) -> Hashtbl.replace env d (S.un op (ev a))
    | Cfg.Mov (d, a) -> Hashtbl.replace env d (ev a)
    | Cfg.Load (ty, w, d, a, off) ->
      let addr = S.bin Ast.Add (ev a) (S.Ci (Int64.of_int off)) in
      Hashtbl.replace env d (S.sel ty w addr !mem)
    | Cfg.Store (w, a, off, v) ->
      let addr = S.bin Ast.Add (ev a) (S.Ci (Int64.of_int off)) in
      let raw = S.to_bits (ev v) in
      mem := S.store !mem w addr raw;
      stores := (w, addr, raw) :: !stores
    | Cfg.Call (dst, callee, args) ->
      let id = !callid in
      incr callid;
      calls := (callee, List.map (fun a -> (rcfg.rc_isf a, ev a)) args) :: !calls;
      mem := S.mcall id !mem;
      (match dst with
      | Some d -> Hashtbl.replace env d (S.Var (S.Vret (id, rcfg.rc_dst_ch d)))
      | None -> ())
  in
  let rec go = function
    | [] -> raise (Refute "region fell through without an exit")
    | Rins i :: rest ->
      exec_ins i;
      go rest
    | Rif (c, a, b) :: rest -> if S.decide pc (ev c) then go (a @ rest) else go (b @ rest)
    | Rexit k :: _ -> (k, None)
    | Rret v :: _ -> (Xret, Option.map ev v)
  in
  let ex, ret = go items in
  {
    rr_exit = ex;
    rr_env = env;
    rr_ret = ret;
    rr_stores = List.rev !stores;
    rr_calls = List.rev !calls;
  }

let env_get r rcfg v =
  match Hashtbl.find_opt r.rr_env v with Some t -> t | None -> rcfg.rc_iface v

let ritems_of_term = function
  | Cfg.Jmp l -> [ Rexit (Xjump l) ]
  | Cfg.Br (c, l1, l2) -> [ Rif (c, [ Rexit (Xjump l1) ], [ Rexit (Xjump l2) ]) ]
  | Cfg.Ret v -> [ Rret v ]

let ritems_of_block (b : Cfg.block) =
  List.map (fun i -> Rins i) b.Cfg.ins @ ritems_of_term b.Cfg.term

(* ------------------------------------------------------------------ *)
(* CFG block-level liveness (vreg granularity)                        *)
(* ------------------------------------------------------------------ *)

let cfg_live_out (f : Cfg.func) =
  let op_regs = List.filter_map (function Cfg.Reg v -> Some v | _ -> None) in
  let gen = Hashtbl.create 16 and kill = Hashtbl.create 16 in
  List.iter
    (fun (b : Cfg.block) ->
      let g = ref IS.empty and k = ref IS.empty in
      let use v = if not (IS.mem v !k) then g := IS.add v !g in
      let def v = k := IS.add v !k in
      List.iter
        (fun i ->
          List.iter use (op_regs (Cfg.uses i));
          List.iter def (Cfg.defs i))
        b.Cfg.ins;
      List.iter use (op_regs (Cfg.term_uses b.Cfg.term));
      Hashtbl.replace gen b.Cfg.label !g;
      Hashtbl.replace kill b.Cfg.label !k)
    f.Cfg.blocks;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let get tbl l = match Hashtbl.find_opt tbl l with Some s -> s | None -> IS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Cfg.block) ->
        let out =
          List.fold_left
            (fun acc s -> IS.union acc (get live_in s))
            IS.empty
            (Cfg.successors b.Cfg.term)
        in
        let inn =
          IS.union (get gen b.Cfg.label) (IS.diff out (get kill b.Cfg.label))
        in
        if not (IS.equal out (get live_out b.Cfg.label)) then begin
          Hashtbl.replace live_out b.Cfg.label out;
          changed := true
        end;
        if not (IS.equal inn (get live_in b.Cfg.label)) then begin
          Hashtbl.replace live_in b.Cfg.label inn;
          changed := true
        end)
      f.Cfg.blocks
  done;
  fun l -> get live_out l

(* ------------------------------------------------------------------ *)
(* EDGE dataflow blocks                                               *)
(* ------------------------------------------------------------------ *)

type token = Tv of S.t | Tnul

type eres = {
  er_exit : exitk;
  er_regs : (int * S.t) list;  (** architectural register writes *)
  er_stores : (Ty.width * S.t * S.t) list;  (** LSID order, nulls dropped *)
}

(* Mirrors [Trips_edge.Exec.exec_block]: token dataflow with a got
   bitmask per operand slot, predicate squashing, LSID-ordered memory
   and the same stuck conditions (raised here as {!Refute}). *)
let run_edge ~pc ~(init_reg : int -> S.t) (b : Eblk.t) =
  let n = Array.length b.Eblk.insts in
  let nw = Array.length b.Eblk.writes in
  let got = Array.make n 0 in
  let tok0 = Array.make n Tnul in
  let tok1 = Array.make n Tnul in
  let tokp = Array.make n Tnul in
  let fired = Array.make n false in
  let wval = Array.make nw None in
  let exit_fired = ref None in
  let max_lsid = ref (-1) in
  let store_sites = ref 0 in
  Array.iter
    (fun (ins : Eisa.inst) ->
      match ins.Eisa.op with
      | Eisa.Store (_, l) ->
        incr store_sites;
        if l > !max_lsid then max_lsid := l
      | Eisa.Load (_, _, l) -> if l > !max_lsid then max_lsid := l
      | _ -> ())
    b.Eblk.insts;
  let stores_below = Array.make (!max_lsid + 2) 0 in
  Array.iter
    (fun (ins : Eisa.inst) ->
      match ins.Eisa.op with
      | Eisa.Store (_, l) ->
        for k = l + 1 to !max_lsid + 1 do
          stores_below.(k) <- stores_below.(k) + 1
        done
      | _ -> ())
    b.Eblk.insts;
  let store_cnt = Array.make (!max_lsid + 2) 0 in
  let stores = ref [] in
  (* (lsid, width, (addr, raw) option) — [None] = nullified *)
  let lower_stores_done lsid =
    let fb = ref 0 in
    for l = 0 to lsid - 1 do
      fb := !fb + store_cnt.(l)
    done;
    !fb = stores_below.(lsid)
  in
  let deliver tgt tok =
    match tgt with
    | Eisa.To_write w -> (
      match tok with
      | Tnul -> raise (Refute "null token delivered to a write slot")
      | Tv t -> (
        match wval.(w) with
        | Some _ -> raise (Refute (Printf.sprintf "write slot %d received two values" w))
        | None -> wval.(w) <- Some t))
    | Eisa.To_inst (j, sl) ->
      let bit = match sl with Eisa.Op0 -> 1 | Eisa.Op1 -> 2 | Eisa.OpPred -> 4 in
      if got.(j) land bit <> 0 then
        raise (Refute (Printf.sprintf "I%d double delivery" j));
      got.(j) <- got.(j) lor bit;
      (match sl with
      | Eisa.Op0 -> tok0.(j) <- tok
      | Eisa.Op1 -> tok1.(j) <- tok
      | Eisa.OpPred -> tokp.(j) <- tok)
  in
  let deliver_all i tok =
    List.iter (fun tgt -> deliver tgt tok) b.Eblk.insts.(i).Eisa.targets
  in
  Array.iter
    (fun (r : Eblk.read) ->
      List.iter (fun tgt -> deliver tgt (Tv (init_reg r.Eblk.rreg))) r.Eblk.rtargets)
    b.Eblk.reads;
  (* 0 = not decidable yet, 1 = fire, 2 = squash *)
  let pred_ok i (ins : Eisa.inst) =
    match ins.Eisa.pred with
    | Eisa.Unpred -> 1
    | Eisa.On_true _ | Eisa.On_false _ ->
      if got.(i) land 4 = 0 then 0
      else (
        match tokp.(i) with
        | Tnul -> raise (Refute "null predicate")
        | Tv t ->
          let tr = S.decide pc t in
          let want = match ins.Eisa.pred with Eisa.On_true _ -> true | _ -> false in
          if tr = want then 1 else 2)
  in
  let fire i (ins : Eisa.inst) =
    fired.(i) <- true;
    match ins.Eisa.op with
    | Eisa.Bin op -> (
      let a = tok0.(i) in
      let b2 = match ins.Eisa.imm with Some v -> Tv (S.Ci v) | None -> tok1.(i) in
      match (a, b2) with
      | Tv ta, Tv tb -> deliver_all i (Tv (S.bin op ta tb))
      | _ -> raise (Refute "null operand in ALU op"))
    | Eisa.Un op -> (
      match tok0.(i) with
      | Tv ta -> deliver_all i (Tv (S.un op ta))
      | Tnul -> raise (Refute "null operand in ALU op"))
    | Eisa.Geni v -> deliver_all i (Tv (S.Ci v))
    | Eisa.Genf v -> deliver_all i (Tv (S.Cf v))
    | Eisa.Mov -> deliver_all i tok0.(i)
    | Eisa.Null -> deliver_all i Tnul
    | Eisa.Load (ty, w, lsid) ->
      let addr =
        match tok0.(i) with
        | Tnul -> raise (Refute "null load address")
        | Tv ta -> (
          match ins.Eisa.imm with
          | Some v -> S.bin Ast.Add ta (S.Ci v)
          | None -> ta)
      in
      let below =
        List.filter (fun (l, _, s) -> l < lsid && s <> None) !stores
        |> List.sort (fun (a, _, _) (b2, _, _) -> compare a b2)
      in
      let chain =
        List.fold_left
          (fun m (_, w2, s) ->
            match s with Some (a, r) -> S.store m w2 a r | None -> m)
          (S.Minit S.mem_program)
          below
      in
      deliver_all i (Tv (S.sel ty w addr chain))
    | Eisa.Store (w, lsid) ->
      (match (tok0.(i), tok1.(i)) with
      | Tv ta, Tv td ->
        let addr =
          match ins.Eisa.imm with
          | Some v -> S.bin Ast.Add ta (S.Ci v)
          | None -> ta
        in
        stores := (lsid, w, Some (addr, S.to_bits td)) :: !stores
      | _ -> stores := (lsid, w, None) :: !stores);
      store_cnt.(lsid) <- store_cnt.(lsid) + 1
    | Eisa.Branch dest -> (
      match !exit_fired with
      | Some _ -> raise (Refute "two branches fired")
      | None -> exit_fired := Some dest)
  in
  let progress = ref true in
  let fuel = ref ((n + 2) * (n + 2) + 64) in
  while !progress do
    progress := false;
    for i = 0 to n - 1 do
      if not fired.(i) then begin
        let ins = b.Eblk.insts.(i) in
        let arity = Eisa.operand_arity ins in
        let have_ops =
          (arity < 1 || got.(i) land 1 <> 0) && (arity < 2 || got.(i) land 2 <> 0)
        in
        if have_ops && pred_ok i ins = 1 then begin
          let defer =
            match ins.Eisa.op with
            | Eisa.Load (_, _, lsid) -> not (lower_stores_done lsid)
            | _ -> false
          in
          if not defer then begin
            decr fuel;
            if !fuel <= 0 then raise (Refute "out of fuel");
            fire i ins;
            progress := true
          end
        end
      end
    done
  done;
  let stores_done = List.length !stores in
  if stores_done <> !store_sites then
    raise (Refute (Printf.sprintf "only %d/%d stores completed" stores_done !store_sites));
  let exit_dest =
    match !exit_fired with None -> raise (Refute "no branch fired") | Some d -> d
  in
  let regs =
    Array.to_list
      (Array.mapi
         (fun w v ->
           match v with
           | None -> raise (Refute (Printf.sprintf "write slot %d received no value" w))
           | Some t -> (b.Eblk.writes.(w).Eblk.wreg, t))
         wval)
  in
  let commits =
    List.sort (fun (a, _, _) (b2, _, _) -> compare a b2) !stores
    |> List.filter_map (fun (_, w, s) ->
           match s with Some (a, r) -> Some (w, a, r) | None -> None)
  in
  { er_exit = exitk_of_edge exit_dest; er_regs = regs; er_stores = commits }

(* ------------------------------------------------------------------ *)
(* Path enumeration                                                   *)
(* ------------------------------------------------------------------ *)

type 'a path = { pa_pc : S.pc; pa_res : ('a, string) result }

let enum ?(pc0 = []) ~max_paths run =
  let paths = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let rec go pc =
    if !count >= max_paths then truncated := true
    else
      match run pc with
      | r ->
        incr count;
        paths := { pa_pc = pc; pa_res = Ok r } :: !paths
      | exception S.Fork k ->
        go (pc @ [ (k, true) ]);
        go (pc @ [ (k, false) ])
      | exception Refute msg ->
        incr count;
        paths := { pa_pc = pc; pa_res = Error msg } :: !paths
  in
  go pc0;
  (List.rev !paths, !truncated)

(* ------------------------------------------------------------------ *)
(* Concretization                                                     *)
(* ------------------------------------------------------------------ *)

let is_fop = function
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv | Ast.Feq | Ast.Fne | Ast.Flt
  | Ast.Fle | Ast.Fgt | Ast.Fge ->
    true
  | _ -> false

(* Mark variables that appear in a float operand position so the
   concretizer draws floats for them.  The visited sets keep the walk
   linear in the term DAG; a (node, flag) pair is walked at most
   twice. *)
let hint_visitor m =
  let vis_t = Hashtbl.create 256 and vis_m = Hashtbl.create 32 in
  let rec hint_t fl t =
    if not (Hashtbl.mem vis_t (t, fl)) then begin
      Hashtbl.replace vis_t (t, fl) ();
      match t with
      | S.Ci _ | S.Cf _ -> ()
      | S.Var v -> if fl then Hashtbl.replace m v true
      | S.Bin (op, a, b) ->
        let f = is_fop op in
        hint_t f a;
        hint_t f b
      | S.Un (op, a) ->
        let f = match op with Ast.Fneg | Ast.Ftoi -> true | _ -> false in
        hint_t f a
      | S.Fbits a -> hint_t true a
      | S.Fofbits a -> hint_t false a
      | S.Sel (_, _, a, mm) ->
        hint_t false a;
        hint_m mm
    end
  and hint_m mm =
    if not (Hashtbl.mem vis_m mm) then begin
      Hashtbl.replace vis_m mm ();
      match mm with
      | S.Minit _ -> ()
      | S.Mstore (o, _, a, v) ->
        hint_m o;
        hint_t false a;
        hint_t false v
      | S.Mcall (_, o) -> hint_m o
    end
  in
  hint_t

type cverdict = Crefuted of string * string | Cconcrete | Cvacuous

let value_str = function
  | Ty.Vi i -> Int64.to_string i
  | Ty.Vf f -> Printf.sprintf "%h" f

(* Rejection-sample assignments satisfying [pc]; a satisfying vector
   plus a structural divergence or a decisive constant disagreement in
   [pairs] refutes the path. *)
let concretize ~seed ~pc ~structural ~pairs =
  let rng = Rng.create seed in
  let vs = ref [] in
  List.iter (fun (k, _) -> vs := S.vars !vs k) pc;
  List.iter (fun (_, a, b) -> vs := S.vars (S.vars !vs a) b) pairs;
  let vs = List.sort_uniq Stdlib.compare !vs in
  let hints = Hashtbl.create 16 in
  let hint = hint_visitor hints in
  List.iter (fun (k, _) -> hint false k) pc;
  List.iter
    (fun (_, a, b) ->
      hint false a;
      hint false b)
    pairs;
  let draw v =
    match v with
    | S.Vint 1 -> S.Ci (Int64.of_int (0x400000 + (8 * Rng.int rng 65536)))
    | S.Vflt _ | S.Vret (_, 1) -> S.Cf (Rng.float rng 64.0 -. 32.0)
    | _ when Hashtbl.mem hints v -> S.Cf (Rng.float rng 64.0 -. 32.0)
    | _ -> (
      match Rng.int rng 6 with
      | 0 -> S.Ci 0L
      | 1 -> S.Ci 1L
      | 2 -> S.Ci (-1L)
      | 3 -> S.Ci (Int64.of_int (Rng.int rng 256 - 128))
      | 4 -> S.Ci (Int64.of_int (0x1000 + (8 * Rng.int rng 512)))
      | _ -> S.Ci (Rng.next rng))
  in
  let found = ref 0 in
  let refuted = ref None in
  let t = ref 0 in
  while !refuted = None && !found < 6 && !t < 400 do
    incr t;
    let m = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace m v (draw v)) vs;
    let sub v = Hashtbl.find_opt m v in
    let sat =
      List.for_all
        (fun (k, pol) ->
          match S.value_of (S.subst sub k) with
          | Some v -> Ty.truthy v = pol
          | None -> false)
        pc
    in
    if sat then begin
      incr found;
      match structural with
      | Some msg -> refuted := Some ("path", msg)
      | None ->
        List.iter
          (fun (name, a, b) ->
            if !refuted = None then
              match (S.value_of (S.subst sub a), S.value_of (S.subst sub b)) with
              | Some va, Some vb when Stdlib.compare va vb <> 0 ->
                refuted :=
                  Some
                    ( name,
                      Printf.sprintf "source=%s target=%s under a satisfying vector"
                        (value_str va) (value_str vb) )
              | _ -> ())
          pairs
    end
  done;
  match !refuted with
  | Some (n, m) -> Crefuted (n, m)
  | None -> if !found > 0 then Cconcrete else Cvacuous

(* ------------------------------------------------------------------ *)
(* Per-block reports                                                  *)
(* ------------------------------------------------------------------ *)

type verdict = Vproved | Vconcrete | Vrefuted

let verdict_name = function
  | Vproved -> "proved"
  | Vconcrete -> "concrete"
  | Vrefuted -> "refuted"

type report = {
  r_stage : string;
  r_fname : string;
  r_block : string;
  r_verdict : verdict;
  r_paths : int;
  r_diags : Diag.t list;
}

let mk_report ~stage ~fname ~block verdict npaths diags =
  {
    r_stage = stage;
    r_fname = fname;
    r_block = block;
    r_verdict = verdict;
    r_paths = npaths;
    r_diags = diags;
  }

let refuted_report ~stage ~fname ~block msg =
  mk_report ~stage ~fname ~block Vrefuted 0
    [
      Diag.make ~pass:"transval" ~fname ~block "miscompile"
        (Printf.sprintf "[%s] %s" stage msg);
    ]

type cmp = {
  mutable cs : string option;  (** first structural divergence *)
  mutable cp : (string * S.t * S.t) list;  (** residual value pairs *)
}

let pair c name a b = if not (S.equal a b) then c.cp <- (name, a, b) :: c.cp
let shape c msg = if c.cs = None then c.cs <- Some msg

let compare_stores c ss ts =
  if List.length ss <> List.length ts then
    shape c
      (Printf.sprintf "store count mismatch: source %d vs target %d" (List.length ss)
         (List.length ts))
  else
    List.iteri
      (fun k ((sw, sa, sv), (tw, ta, tv)) ->
        if sw <> tw then shape c (Printf.sprintf "store#%d width mismatch" k)
        else begin
          pair c (Printf.sprintf "store#%d.addr" k) sa ta;
          pair c (Printf.sprintf "store#%d.val" k) sv tv
        end)
      (List.combine ss ts)

let check_block_pair ~stage ~fname ~block ?(max_paths = 512) ~run_src ~run_tgt
    ~compare_out () =
  (* fresh intern generation per block: terms never flow between block
     checks, and the tables would otherwise grow with the program *)
  S.reset_intern ();
  let seed = Int64.of_int (Hashtbl.hash (stage, fname, block)) in
  let diags = ref [] in
  let nref = ref 0 and nconc = ref 0 and npaths = ref 0 in
  let truncated = ref false in
  let judge pc ~structural ~pairs =
    match concretize ~seed ~pc ~structural ~pairs with
    | Crefuted (name, msg) ->
      incr nref;
      diags :=
        Diag.make ~pass:"transval" ~fname ~block "miscompile"
          (Printf.sprintf "[%s] %s: %s" stage name msg)
        :: !diags
    | Cconcrete -> incr nconc
    | Cvacuous ->
      incr nconc;
      diags :=
        Diag.make ~sev:Diag.Warning ~pass:"transval" ~fname ~block "concretize-unsat"
          (Printf.sprintf "[%s] no satisfying vector found for a divergent path" stage)
        :: !diags
  in
  let tpaths, ttr = enum ~max_paths run_tgt in
  if ttr then truncated := true;
  List.iter
    (fun tp ->
      match tp.pa_res with
      | Error msg ->
        incr npaths;
        judge tp.pa_pc ~structural:(Some ("target " ^ msg)) ~pairs:[]
      | Ok tgt ->
        let spaths, str = enum ~pc0:tp.pa_pc ~max_paths run_src in
        if str then truncated := true;
        List.iter
          (fun sp ->
            incr npaths;
            match sp.pa_res with
            | Error msg -> judge sp.pa_pc ~structural:(Some ("source " ^ msg)) ~pairs:[]
            | Ok src ->
              let c = { cs = None; cp = [] } in
              compare_out c sp.pa_pc src tgt;
              if c.cs <> None || c.cp <> [] then
                judge sp.pa_pc ~structural:c.cs ~pairs:(List.rev c.cp))
          spaths)
    tpaths;
  if !truncated then begin
    incr nconc;
    diags :=
      Diag.make ~sev:Diag.Warning ~pass:"transval" ~fname ~block "path-limit"
        (Printf.sprintf "[%s] path enumeration truncated at %d" stage max_paths)
      :: !diags
  end;
  let verdict =
    if !nref > 0 then Vrefuted else if !nconc > 0 then Vconcrete else Vproved
  in
  mk_report ~stage ~fname ~block verdict !npaths (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Pass checkers                                                      *)
(* ------------------------------------------------------------------ *)

(* TIR-to-TIR: every post-pass block must agree with its same-labelled
   pre-pass counterpart on exits, live-out registers, stores, call
   events and the return value.  Dead definitions removed by the pass
   are invisible because only live-out vregs are compared. *)
let check_opt ?max_paths ~sym ~fname (pre : Cfg.func) (post : Cfg.func) =
  (* values whose consumers were all dead may legitimately vanish, so
     only values live on both sides are compared; a dropped definition
     whose use survives stays live in [post] and is still caught *)
  let live_pre = cfg_live_out pre and live_post = cfg_live_out post in
  let live_out l = IS.inter (live_pre l) (live_post l) in
  let rcfg =
    {
      rc_iface = (fun v -> S.Var (S.Vreg v));
      rc_sym = sym;
      rc_isf = (fun _ -> false);
      rc_dst_ch = (fun _ -> 0);
    }
  in
  let compare_calls c ss ts =
    if List.length ss <> List.length ts then
      shape c
        (Printf.sprintf "call count mismatch: source %d vs target %d" (List.length ss)
           (List.length ts))
    else
      List.iteri
        (fun k ((sn, sargs), (tn, targs)) ->
          if sn <> tn then
            shape c (Printf.sprintf "call#%d callee mismatch: %s vs %s" k sn tn)
          else if List.length sargs <> List.length targs then
            shape c (Printf.sprintf "call#%d argument count mismatch" k)
          else
            List.iteri
              (fun j ((_, sa), (_, ta)) ->
                pair c (Printf.sprintf "call#%d.arg#%d" k j) sa ta)
              (List.combine sargs targs))
        (List.combine ss ts)
  in
  List.map
    (fun (pb : Cfg.block) ->
      let l = pb.Cfg.label in
      match Cfg.find_block pre l with
      | exception Not_found ->
        refuted_report ~stage:"opt" ~fname ~block:l
          "block has no counterpart before the pass"
      | sb ->
        let run_src pc = run_region ~pc rcfg (ritems_of_block sb) in
        let run_tgt pc = run_region ~pc rcfg (ritems_of_block pb) in
        let lo = live_out l in
        check_block_pair ~stage:"opt" ~fname ~block:l ?max_paths ~run_src ~run_tgt
          ~compare_out:(fun c _pc s t ->
            if s.rr_exit <> t.rr_exit then
              shape c
                (Printf.sprintf "exit mismatch: %s vs %s" (exitk_name s.rr_exit)
                   (exitk_name t.rr_exit));
            (match (s.rr_ret, t.rr_ret) with
            | None, None -> ()
            | Some a, Some b -> pair c "ret" a b
            | _ -> shape c "return value present on one side only");
            IS.iter
              (fun v ->
                pair c (Printf.sprintf "v%d" v) (env_get s rcfg v) (env_get t rcfg v))
              lo;
            compare_stores c s.rr_stores t.rr_stores;
            compare_calls c s.rr_calls t.rr_calls)
          ())
    post.Cfg.blocks

(* TIR region vs EDGE dataflow block: the core dataflow-conversion
   check.  [iface] maps a source vreg to its architectural-register
   term; [writes] lists (vreg, arch reg) output pairs. *)
let check_hblock ?max_paths ?(stage = "dataflow-convert") ~fname ~sym ~iface ~writes
    ~src (tgt : Eblk.t) =
  let block = tgt.Eblk.label in
  let twregs =
    Array.to_list (Array.map (fun (w : Eblk.write) -> w.Eblk.wreg) tgt.Eblk.writes)
  in
  let swregs = List.map snd writes in
  let sorted = List.sort_uniq compare in
  if sorted twregs <> sorted swregs then
    refuted_report ~stage ~fname ~block
      (Printf.sprintf "write-set mismatch: source {%s} vs target {%s}"
         (String.concat "," (List.map string_of_int (sorted swregs)))
         (String.concat "," (List.map string_of_int (sorted twregs))))
  else begin
    let rcfg =
      { rc_iface = iface; rc_sym = sym; rc_isf = (fun _ -> false); rc_dst_ch = (fun _ -> 0) }
    in
    let run_src pc = run_region ~pc rcfg src in
    let run_tgt pc = run_edge ~pc ~init_reg:(fun r -> S.Var (S.Varch r)) tgt in
    check_block_pair ~stage ~fname ~block ?max_paths ~run_src ~run_tgt
      ~compare_out:(fun c _pc s t ->
        if s.rr_exit <> t.er_exit then
          shape c
            (Printf.sprintf "exit mismatch: %s vs %s" (exitk_name s.rr_exit)
               (exitk_name t.er_exit));
        List.iter
          (fun (v, r) ->
            match List.assoc_opt r t.er_regs with
            | None -> shape c (Printf.sprintf "write of r%d missing" r)
            | Some tv -> pair c (Printf.sprintf "v%d->r%d" v r) (env_get s rcfg v) tv)
          writes;
        compare_stores c s.rr_stores t.er_stores)
      ()
  end

(* Scheduling must not touch semantics: instruction, read and write
   arrays are bit-identical to the pre-placement snapshot and the
   placement map is well-formed. *)
let check_schedule ~fname pre (post : Eblk.func) =
  List.map
    (fun (b : Eblk.t) ->
      let l = b.Eblk.label in
      match List.assoc_opt l pre with
      | None -> refuted_report ~stage:"schedule" ~fname ~block:l "no pre-schedule snapshot"
      | Some (insts, reads, writes) ->
        let msgs = ref [] in
        if Stdlib.compare insts b.Eblk.insts <> 0 then
          msgs := "instruction array changed across scheduling" :: !msgs;
        if Stdlib.compare reads b.Eblk.reads <> 0 then
          msgs := "read array changed across scheduling" :: !msgs;
        if Stdlib.compare writes b.Eblk.writes <> 0 then
          msgs := "write array changed across scheduling" :: !msgs;
        if Array.length b.Eblk.placement <> Array.length b.Eblk.insts then
          msgs := "placement length mismatch" :: !msgs;
        Array.iter
          (fun p ->
            if p < 0 || p >= Eisa.num_ets then msgs := "placement slot out of range" :: !msgs)
          b.Eblk.placement;
        (match List.sort_uniq compare !msgs with
        | [] -> mk_report ~stage:"schedule" ~fname ~block:l Vproved 0 []
        | ms ->
          mk_report ~stage:"schedule" ~fname ~block:l Vrefuted 0
            (List.map
               (fun m ->
                 Diag.make ~pass:"transval" ~fname ~block:l "miscompile"
                   (Printf.sprintf "[schedule] %s" m))
               ms)))
    post.Eblk.blocks

(* Linking: every jump, call and return label resolves. *)
let check_link (p : Eblk.program) =
  List.map
    (fun (f : Eblk.func) ->
      let fname = f.Eblk.fname in
      let labels = List.map (fun (b : Eblk.t) -> b.Eblk.label) f.Eblk.blocks in
      let msgs = ref [] in
      let dups =
        List.filter (fun l -> List.length (List.filter (( = ) l) labels) > 1) labels
        |> List.sort_uniq compare
      in
      List.iter (fun l -> msgs := Printf.sprintf "duplicate label %s" l :: !msgs) dups;
      if not (List.mem f.Eblk.entry labels) then
        msgs := Printf.sprintf "entry label %s missing" f.Eblk.entry :: !msgs;
      List.iter
        (fun (b : Eblk.t) ->
          List.iter
            (fun (_, d) ->
              match d with
              | Eisa.Xjump l ->
                if not (List.mem l labels) then
                  msgs := Printf.sprintf "%s jumps to unknown label %s" b.Eblk.label l :: !msgs
              | Eisa.Xcall (callee, retl) ->
                (match Eblk.find_func p callee with
                | exception Not_found ->
                  msgs := Printf.sprintf "%s calls unknown function %s" b.Eblk.label callee :: !msgs
                | _ -> ());
                if not (List.mem retl labels) then
                  msgs :=
                    Printf.sprintf "%s returns from a call to unknown label %s" b.Eblk.label retl
                    :: !msgs
              | Eisa.Xret -> ())
            (Eblk.exits b))
        f.Eblk.blocks;
      match List.rev !msgs with
      | [] -> mk_report ~stage:"link" ~fname ~block:"" Vproved 0 []
      | ms ->
        mk_report ~stage:"link" ~fname ~block:"" Vrefuted 0
          (List.map
             (fun m ->
               Diag.make ~pass:"transval" ~fname "miscompile"
                 (Printf.sprintf "[link] %s" m))
             ms))
    p.Eblk.funcs

(* ------------------------------------------------------------------ *)
(* RISC backend                                                       *)
(* ------------------------------------------------------------------ *)

type loc = Lreg of int | Lspill of int

let spill_off s = 16 + (8 * s)

type rtres = {
  rt_exit : exitk;
  rt_ints : S.t array;
  rt_flts : S.t array;
  rt_stk : S.mem;
  rt_stores : (Ty.width * S.t * S.t) list;
  rt_calls : (string * S.t list * S.t list) list;
      (** callee, ABI int arg registers, ABI float arg registers *)
}

let float_srcs_op (op : Ast.binop) = is_fop op

let float_dst_op = function
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv -> true
  | _ -> false

(* Symbolic execution of the code range [start, stop): mirrors
   [Trips_risc.Exec.run] for a single basic block.  Addresses rooted
   at the stack pointer go to the stack chain; everything else is
   program memory.  Branches exit with the target code index. *)
let run_risc_range ~pc (rf : Risa.func) ~start ~stop =
  let code_len = Array.length rf.Risa.code in
  let ints = Array.init 32 (fun i -> S.Var (S.Vint i)) in
  let flts = Array.init 32 (fun i -> S.Var (S.Vflt i)) in
  let prog = ref (S.Minit S.mem_program) in
  let stk = ref (S.Minit S.mem_stack) in
  let pstores = ref [] in
  let calls = ref [] in
  let callid = ref 0 in
  let is_stack addr =
    match S.addr_parts addr with
    | Some r, _ -> S.equal r (S.Var (S.Vint 1))
    | None, _ -> false
  in
  let cur = ref start in
  let fin = ref None in
  let fuel = ref ((4 * (stop - start)) + 64) in
  while !fin = None do
    decr fuel;
    if !fuel <= 0 then raise (Refute "out of fuel");
    if !cur >= stop then
      if stop >= code_len then raise (Refute "fell off the end of the code")
      else fin := Some (Xidx stop)
    else begin
      let nxt = ref (!cur + 1) in
      (match rf.Risa.code.(!cur) with
      | Risa.Op (op, d, a, b) ->
        let fsrc = float_srcs_op op and fdst = float_dst_op op in
        let ta = if fsrc then flts.(a) else ints.(a) in
        let tb = if fsrc then flts.(b) else ints.(b) in
        let r = S.bin op ta tb in
        if fdst then flts.(d) <- r else ints.(d) <- r
      | Risa.Opi (op, d, a, n) -> ints.(d) <- S.bin op ints.(a) (S.Ci n)
      | Risa.Unop (op, d, a) ->
        let fsrc = match op with Ast.Ftoi | Ast.Fneg -> true | _ -> false in
        let fdst = match op with Ast.Itof | Ast.Fneg -> true | _ -> false in
        let r = S.un op (if fsrc then flts.(a) else ints.(a)) in
        if fdst then flts.(d) <- r else ints.(d) <- r
      | Risa.Li (d, n) -> ints.(d) <- S.Ci n
      | Risa.Lis (d, n) -> ints.(d) <- S.Ci (Int64.shift_left n 16)
      | Risa.Ori (d, a, n) -> ints.(d) <- S.bin Ast.Or ints.(a) (S.Ci n)
      | Risa.Lfc (d, v, _) -> flts.(d) <- S.Cf v
      | Risa.Mr (d, a) -> ints.(d) <- ints.(a)
      | Risa.Fmr (d, a) -> flts.(d) <- flts.(a)
      | Risa.Lw (ty, w, d, a, off) ->
        let addr = S.bin Ast.Add ints.(a) (S.Ci (Int64.of_int off)) in
        let chain = if is_stack addr then !stk else !prog in
        let v = S.sel ty w addr chain in
        if ty = Ty.F64 then flts.(d) <- v else ints.(d) <- v
      | Risa.Sw (ty, w, a, off, s) ->
        let addr = S.bin Ast.Add ints.(a) (S.Ci (Int64.of_int off)) in
        let raw = S.to_bits (if ty = Ty.F64 then flts.(s) else ints.(s)) in
        if is_stack addr then stk := S.store !stk w addr raw
        else begin
          prog := S.store !prog w addr raw;
          pstores := (w, addr, raw) :: !pstores
        end
      | Risa.B t -> fin := Some (Xidx t)
      | Risa.Bc (r, t, f) ->
        if S.decide pc ints.(r) then fin := Some (Xidx t) else nxt := f
      | Risa.Call callee ->
        let id = !callid in
        incr callid;
        calls :=
          ( callee,
            List.map (fun r -> ints.(r)) Risa.abi_int_args,
            List.map (fun r -> flts.(r)) Risa.abi_flt_args )
          :: !calls;
        ints.(Risa.abi_int_ret) <- S.Var (S.Vret (id, 0));
        flts.(Risa.abi_flt_ret) <- S.Var (S.Vret (id, 1));
        prog := S.mcall id !prog
      | Risa.Ret -> fin := Some Xret);
      if !fin = None then cur := !nxt
    end
  done;
  {
    rt_exit = (match !fin with Some k -> k | None -> assert false);
    rt_ints = ints;
    rt_flts = flts;
    rt_stk = !stk;
    rt_stores = List.rev !pstores;
    rt_calls = List.rev !calls;
  }

(* The emitted function places the prologue (frame push, callee-saves,
   parameter binding) before the entry label, so every label's code
   range contains exactly its CFG block's body.  The prologue is
   checked separately: it must fall through to the entry label having
   moved every parameter to its assigned location, pushed the frame
   and touched nothing else observable. *)
let check_risc_prologue ~fname ~(cls : int -> bool) ~(loc : int -> loc) ~frame
    ~has_frame (cfg : Cfg.func) (rf : Risa.func) =
  S.reset_intern ();
  let block = "<prologue>" in
  try
    let entry_label =
      match cfg.Cfg.blocks with
      | b :: _ -> b.Cfg.label
      | [] -> raise (Refute "function has no blocks")
    in
    let stop =
      match List.assoc_opt entry_label rf.Risa.labels with
      | Some i -> i
      | None ->
        raise (Refute (Printf.sprintf "label %s missing from emitted code" entry_label))
    in
    let t =
      try run_risc_range ~pc:[] rf ~start:0 ~stop
      with S.Fork _ -> raise (Refute "unexpected branch in the prologue")
    in
    let c = { cs = None; cp = [] } in
    (match t.rt_exit with
    | Xidx i when i = stop -> ()
    | k ->
      shape c
        (Printf.sprintf "prologue exits via %s instead of falling through"
           (exitk_name k)));
    if t.rt_stores <> [] then shape c "program store in the prologue";
    if t.rt_calls <> [] then shape c "call in the prologue";
    let sp0 = S.Var (S.Vint 1) in
    let sp_expect =
      if has_frame then S.bin Ast.Sub sp0 (S.Ci (Int64.of_int frame)) else sp0
    in
    pair c "sp" sp_expect t.rt_ints.(1);
    let ni = ref Risa.abi_int_args and nf = ref Risa.abi_flt_args in
    List.iter
      (fun (pv, ty) ->
        let take chan what =
          match !chan with
          | r :: tl ->
            chan := tl;
            r
          | [] -> raise (Refute ("too many " ^ what ^ " parameters for the ABI"))
        in
        let expect =
          if ty = Ty.F64 then S.Var (S.Vflt (take nf "float"))
          else S.Var (S.Vint (take ni "integer"))
        in
        let got =
          match loc pv with
          | Lreg r -> if cls pv then t.rt_flts.(r) else t.rt_ints.(r)
          | Lspill s ->
            let lty = if cls pv then Ty.F64 else Ty.I64 in
            S.sel lty Ty.W8
              (S.bin Ast.Add t.rt_ints.(1) (S.Ci (Int64.of_int (spill_off s))))
              t.rt_stk
        in
        pair c (Printf.sprintf "param v%d" pv) expect got)
      cfg.Cfg.params;
    if c.cs = None && c.cp = [] then mk_report ~stage:"risc" ~fname ~block Vproved 1 []
    else begin
      let seed = Int64.of_int (Hashtbl.hash ("risc", fname, block)) in
      match concretize ~seed ~pc:[] ~structural:c.cs ~pairs:(List.rev c.cp) with
      | Crefuted (name, msg) ->
        refuted_report ~stage:"risc" ~fname ~block (Printf.sprintf "%s: %s" name msg)
      | Cconcrete | Cvacuous -> mk_report ~stage:"risc" ~fname ~block Vconcrete 1 []
    end
  with Refute msg -> refuted_report ~stage:"risc" ~fname ~block msg

(* One CFG block vs its code range in the emitted RISC function.
   [cls v] is true for float vregs; [loc] is the register-allocation
   assignment.  At a return exit only the ABI return value, stack
   balance, program stores and call events are observable; at a branch
   exit the live-out vregs are compared at their assigned locations. *)
let check_risc_func ?max_paths ~sym ~fname ~(cls : int -> bool) ~(loc : int -> loc)
    ~frame ~has_frame (cfg : Cfg.func) (rf : Risa.func) =
  let live_out = cfg_live_out cfg in
  let code_len = Array.length rf.Risa.code in
  let blocks = Array.of_list cfg.Cfg.blocks in
  let nb = Array.length blocks in
  let label_idx l =
    match List.assoc_opt l rf.Risa.labels with
    | Some i -> i
    | None -> raise (Refute (Printf.sprintf "label %s missing from emitted code" l))
  in
  let prologue =
    check_risc_prologue ~fname ~cls ~loc ~frame ~has_frame cfg rf
  in
  prologue
  :: List.mapi
    (fun k (b : Cfg.block) ->
      try
        let start = label_idx b.Cfg.label in
        let stop = if k = nb - 1 then code_len else label_idx blocks.(k + 1).Cfg.label in
        let iface v =
          match loc v with
          | Lreg r -> S.Var (if cls v then S.Vflt r else S.Vint r)
          | Lspill s ->
            let ty = if cls v then Ty.F64 else Ty.I64 in
            S.sel ty Ty.W8
              (S.bin Ast.Add (S.Var (S.Vint 1)) (S.Ci (Int64.of_int (spill_off s))))
              (S.Minit S.mem_stack)
        in
        let rcfg =
          {
            rc_iface = iface;
            rc_sym = sym;
            rc_isf =
              (function Cfg.Cf _ -> true | Cfg.Reg v -> cls v | _ -> false);
            rc_dst_ch = (fun d -> if cls d then 1 else 0);
          }
        in
        let run_src pc = run_region ~pc rcfg (ritems_of_block b) in
        let run_tgt pc = run_risc_range ~pc rf ~start ~stop in
        let lo = live_out b.Cfg.label in
        check_block_pair ~stage:"risc" ~fname ~block:b.Cfg.label ?max_paths ~run_src
          ~run_tgt
          ~compare_out:(fun c _pc s t ->
            (* exits compare by code index *)
            (match s.rr_exit with
            | Xjump l -> (
              match List.assoc_opt l rf.Risa.labels with
              | None -> shape c (Printf.sprintf "jump to unknown label %s" l)
              | Some i ->
                if t.rt_exit <> Xidx i then
                  shape c
                    (Printf.sprintf "exit mismatch: %s (code[%d]) vs %s" l i
                       (exitk_name t.rt_exit)))
            | sx ->
              if sx <> t.rt_exit then
                shape c
                  (Printf.sprintf "exit mismatch: %s vs %s" (exitk_name sx)
                     (exitk_name t.rt_exit)));
            (* call events: arguments are read from the ABI registers *)
            if List.length s.rr_calls <> List.length t.rt_calls then
              shape c
                (Printf.sprintf "call count mismatch: source %d vs target %d"
                   (List.length s.rr_calls) (List.length t.rt_calls))
            else
              List.iteri
                (fun k2 ((sn, sargs), (tn, tiargs, tfargs)) ->
                  if sn <> tn then
                    shape c (Printf.sprintf "call#%d callee mismatch: %s vs %s" k2 sn tn)
                  else begin
                    let ni = ref tiargs and nf = ref tfargs in
                    List.iteri
                      (fun j (isf, sa) ->
                        let chan = if isf then nf else ni in
                        match !chan with
                        | [] -> shape c (Printf.sprintf "call#%d has too many arguments" k2)
                        | ta :: tl ->
                          chan := tl;
                          pair c (Printf.sprintf "call#%d.arg#%d" k2 j) sa ta)
                      sargs
                  end)
                (List.combine s.rr_calls t.rt_calls);
            compare_stores c s.rr_stores t.rt_stores;
            (* stack-pointer balance: every block runs with the frame
               already pushed; only a return pops it *)
            let sp0 = S.Var (S.Vint 1) in
            let sp_expect =
              match s.rr_exit with
              | Xret when has_frame -> S.bin Ast.Add sp0 (S.Ci (Int64.of_int frame))
              | _ -> sp0
            in
            pair c "sp" sp_expect t.rt_ints.(1);
            match s.rr_exit with
            | Xret -> (
              match (cfg.Cfg.ret, s.rr_ret) with
              | None, _ -> ()
              | Some Ty.F64, Some sv -> pair c "ret" sv t.rt_flts.(Risa.abi_flt_ret)
              | Some Ty.I64, Some sv -> pair c "ret" sv t.rt_ints.(Risa.abi_int_ret)
              | Some _, None -> shape c "missing return value")
            | _ ->
              IS.iter
                (fun v ->
                  let sv = env_get s rcfg v in
                  let tv =
                    match loc v with
                    | Lreg r -> if cls v then t.rt_flts.(r) else t.rt_ints.(r)
                    | Lspill sl ->
                      let ty = if cls v then Ty.F64 else Ty.I64 in
                      let addr =
                        S.bin Ast.Add t.rt_ints.(1) (S.Ci (Int64.of_int (spill_off sl)))
                      in
                      S.sel ty Ty.W8 addr t.rt_stk
                  in
                  pair c (Printf.sprintf "v%d" v) sv tv)
                lo)
          ()
      with Refute msg -> refuted_report ~stage:"risc" ~fname ~block:b.Cfg.label msg)
    cfg.Cfg.blocks

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

type summary = { n_proved : int; n_concrete : int; n_refuted : int }

let summarize reports =
  List.fold_left
    (fun s r ->
      match r.r_verdict with
      | Vproved -> { s with n_proved = s.n_proved + 1 }
      | Vconcrete -> { s with n_concrete = s.n_concrete + 1 }
      | Vrefuted -> { s with n_refuted = s.n_refuted + 1 })
    { n_proved = 0; n_concrete = 0; n_refuted = 0 }
    reports

let report_diags reports = List.concat_map (fun r -> r.r_diags) reports

(* ------------------------------------------------------------------ *)
(* Global optimization application                                     *)
(* ------------------------------------------------------------------ *)

let copy_cfg_func (f : Cfg.func) : Cfg.func =
  {
    f with
    Cfg.blocks =
      List.map (fun (b : Cfg.block) -> { b with Cfg.ins = b.Cfg.ins }) f.Cfg.blocks;
  }

let check_gapply (mid : Cfg.program) applied (g1 : Cfg.program) =
  let stage = "global-opt" in
  (* one clean analysis of the pre-application program: the validator
     re-derives every fact with its own (unbugged) fixpoint *)
  let t = Absint.analyze mid in
  List.map
    (fun (f : Cfg.func) ->
      let gfs =
        match List.assoc_opt f.Cfg.name applied with Some l -> l | None -> []
      in
      match Cfg.find_func g1 f.Cfg.name with
      | exception Not_found ->
        refuted_report ~stage ~fname:f.Cfg.name ~block:""
          "function disappeared across global opt"
      | g1f -> (
        let clean = Trips_tir.Opt.gather_global (Absint.facts t f.Cfg.name) f in
        match List.filter (fun g -> not (List.mem g clean)) gfs with
        | bad :: _ ->
          refuted_report ~stage ~fname:f.Cfg.name ~block:""
            (Format.asprintf "global fact not independently derivable: %a"
               Trips_tir.Opt.pp_gfact bad)
        | [] ->
          (* syntactic replay: applying the facts to the pre image must
             reproduce the compiler's post image bit for bit *)
          let replay = copy_cfg_func f in
          Trips_tir.Opt.apply_global replay gfs;
          let fp g = Format.asprintf "%a" Cfg.pp_func g in
          if fp replay <> fp g1f then
            refuted_report ~stage ~fname:f.Cfg.name ~block:""
              "global apply replay diverges from compiler output"
          else mk_report ~stage ~fname:f.Cfg.name ~block:"" Vproved (List.length gfs) []))
    mid.Cfg.funcs

(* ------------------------------------------------------------------ *)
(* LSID relaxation                                                     *)
(* ------------------------------------------------------------------ *)

let check_relax ~fname (pre : Eblk.t) (post : Eblk.t) =
  let stage = "lsid-relax" in
  let fail msg = refuted_report ~stage ~fname ~block:post.Eblk.label msg in
  if
    pre.Eblk.label <> post.Eblk.label
    || pre.Eblk.reads <> post.Eblk.reads
    || pre.Eblk.writes <> post.Eblk.writes
    || Array.length pre.Eblk.insts <> Array.length post.Eblk.insts
  then fail "relaxation changed non-memory block structure"
  else begin
    let n = Array.length pre.Eblk.insts in
    let mismatch = ref None in
    let mem = ref [] in
    (* (inst index, old lsid, new lsid, is_store) *)
    for i = 0 to n - 1 do
      let a = pre.Eblk.insts.(i) and b = post.Eblk.insts.(i) in
      (* Stdlib.compare, not (=): a [Genf nan] immediate must equal itself *)
      let rest_eq =
        Stdlib.compare { a with Eisa.op = Eisa.Mov } { b with Eisa.op = Eisa.Mov } = 0
      in
      match (a.Eisa.op, b.Eisa.op) with
      | Eisa.Load (t1, w1, l1), Eisa.Load (t2, w2, l2)
        when t1 = t2 && w1 = w2 && rest_eq ->
        mem := (i, l1, l2, false) :: !mem
      | Eisa.Store (w1, l1), Eisa.Store (w2, l2) when w1 = w2 && rest_eq ->
        mem := (i, l1, l2, true) :: !mem
      | _ -> if Stdlib.compare a b <> 0 then mismatch := Some i
    done;
    match !mismatch with
    | Some i ->
      fail (Printf.sprintf "relaxation rewrote non-LSID instruction %d" i)
    | None ->
      let mem = List.rev !mem in
      let olds = List.sort compare (List.map (fun (_, o, _, _) -> o) mem) in
      let news = List.sort compare (List.map (fun (_, _, n, _) -> n) mem) in
      if olds <> news then fail "relaxed LSIDs are not a permutation"
      else begin
        (* disjointness is re-derived from the post block alone *)
        let ms = Memsep.memops post in
        let mop i = List.find_opt (fun m -> m.Memsep.m_inst = i) ms in
        let bad = ref None in
        let flips = ref 0 in
        List.iter
          (fun (i, o1, n1, s1) ->
            List.iter
              (fun (j, o2, n2, s2) ->
                if i < j && o1 < o2 <> (n1 < n2) && (s1 || s2) then
                  if s1 && s2 then
                    bad := Some (Printf.sprintf "store-store order flipped (%d,%d)" i j)
                  else begin
                    incr flips;
                    match (mop i, mop j) with
                    | Some a, Some b ->
                      if not (Memsep.disjoint a b) then
                        bad :=
                          Some
                            (Printf.sprintf
                               "flipped load/store pair (%d,%d) not provably disjoint" i j)
                    | _ -> bad := Some "memory op vanished from post block"
                  end)
              mem)
          mem;
        match !bad with
        | Some msg -> fail msg
        | None -> mk_report ~stage ~fname ~block:post.Eblk.label Vproved !flips []
      end
  end
