(* Orchestration: run every analysis pass over a block, function or
   program and collect the structured findings. *)

module Block = Trips_edge.Block

type options = { max_paths : int }

let default_options = { max_paths = Paths.default_max_paths }

let analyze_block ?(options = default_options) ~fname (b : Block.t) :
    Diag.t list =
  let structural = Structure.check ~fname b in
  (* index-based passes need in-range targets to run at all *)
  if Structure.targets_in_range b then
    structural @ Dataflow_checks.check ~max_paths:options.max_paths ~fname b
  else structural

let analyze_func ?(options = default_options) ?known_funcs (f : Block.func) :
    Diag.t list =
  let fname = f.Block.fname in
  List.concat_map (analyze_block ~options ~fname) f.Block.blocks
  @ Liveness.check_func ~fname ?known_funcs f

let analyze_program ?(options = default_options) (p : Block.program) :
    Diag.t list =
  let known = List.map (fun (f : Block.func) -> f.Block.fname) p.Block.funcs in
  let per_block =
    List.concat_map
      (fun (f : Block.func) ->
        List.concat_map
          (analyze_block ~options ~fname:f.Block.fname)
          f.Block.blocks)
      p.Block.funcs
  in
  (* label uniqueness + per-function CFG passes *)
  let dup_labels_and_cfg =
    let owner = Hashtbl.create 64 in
    let dups = ref [] in
    List.iter
      (fun (f : Block.func) ->
        List.iter
          (fun (b : Block.t) ->
            match Hashtbl.find_opt owner b.Block.label with
            | Some other ->
              dups :=
                Diag.make ~pass:"liveness" ~fname:f.Block.fname ~block:b.Block.label
                  "branch-target"
                  (Printf.sprintf "duplicate block label (also in %s)" other)
                :: !dups
            | None -> Hashtbl.replace owner b.Block.label f.Block.fname)
          f.Block.blocks)
      p.Block.funcs;
    List.rev !dups
    @ List.concat_map
        (fun (f : Block.func) ->
          Liveness.check_func ~fname:f.Block.fname ~known_funcs:known f)
        p.Block.funcs
  in
  per_block @ dup_labels_and_cfg

let classes ds = List.sort_uniq compare (List.map (fun (d : Diag.t) -> d.Diag.cls) ds)

let has_class cls ds = List.exists (fun (d : Diag.t) -> d.Diag.cls = cls) ds

let summary ds =
  Printf.sprintf "%d error(s), %d warning(s)" (Diag.errors ds) (Diag.warnings ds)
