(** Per-block dataflow verification over enumerated predicate paths,
    mirroring the run-time obligations of {!Trips_edge.Exec.exec_block}.

    Classes: ["exit-path"] (zero or several branches fire on a path),
    ["store-path"] (a store does not complete on a path), ["write-path"]
    (a write slot receives zero or several tokens), ["port-conflict"]
    (double delivery to an operand port), ["null-flow"] (a null token
    reaches a write slot, predicate or ALU/load-address port),
    ["deadlock"] (a live instruction that can fire on no path),
    ["dead-code"] (warning: result reaches no write, store or branch),
    ["path-explosion"] (info: enumeration truncated). *)

val live_set : Trips_edge.Block.t -> bool array
(** Instructions whose result transitively reaches a write, store or
    branch. *)

val check :
  ?max_paths:int -> fname:string -> Trips_edge.Block.t -> Diag.t list
