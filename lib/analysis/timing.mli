(** Static critical-path timing analysis of scheduled EDGE blocks.

    The cost model is the optimistic core of the cycle-level simulator:
    progressive dispatch, dataflow issue with per-opcode latencies from
    {!Trips_edge.Isa.latency}, operand-network hops as Manhattan distance
    on the {!Trips_edge.Isa} mesh geometry, and cache-hit memory latency —
    but no link contention, no per-tile issue serialization and no cache
    misses.  On an unpredicated block every modeled event is therefore a
    lower bound on the corresponding simulator event.

    Each block is summarized as a max-plus system: every output (write
    slot, memory completion, per-exit branch resolution) is the max of a
    constant lag from dispatch and a lag from each read slot's register
    availability.  Summaries compose over a dynamic block trace ({!step}),
    which is how the cross-validation harness predicts whole-program
    cycles without the cycle-level simulator. *)

(** Timing parameters, mirroring [Trips_sim.Core.config]. *)
type model = {
  dispatch_rate : int;         (** instructions dispatched per cycle *)
  fetch_interval : int;        (** min cycles between back-to-back fetches *)
  redirect_penalty : int;      (** fetch restart after a misprediction *)
  commit_overhead : int;       (** distributed commit protocol *)
  window_blocks : int;         (** in-flight block frames *)
  l1i_hit : int;               (** I-cache hit latency *)
  l1d_hit : int;               (** D-cache hit latency *)
}

val prototype : model
(** The TRIPS prototype parameters (same numbers as
    [Trips_sim.Core.prototype] and the [Trips_mem] cache configs). *)

val op_latency : Trips_edge.Isa.opcode -> int
(** Per-opcode execution latency used by the analyzer — the single shared
    table [Trips_edge.Isa.latency], re-exported so tests can assert the
    analyzer and the simulator agree on every opcode. *)

val neg : int
(** Sentinel for "no path" in the summary lag tables. *)

(** Decomposition of the critical path into cost sources. *)
type breakdown = {
  bk_compute : int;            (** execution latency on the critical path *)
  bk_route : int;              (** OPN hop cycles on the critical path *)
  bk_memory : int;             (** D-cache pipeline cycles on the path *)
  bk_overhead : int;           (** dispatch waits on the critical path *)
}

(** Static timing summary of one scheduled block.  All lags are in cycles
    relative to the block's dispatch start; [neg] marks "no path". *)
type summary = {
  s_label : string;
  s_n : int;                   (** instruction count *)
  s_crit : int;                (** weighted critical path *)
  s_completion : int array;    (** per-inst earliest completion *)
  s_slack : int array;         (** per-inst slack against [s_crit] *)
  s_breakdown : breakdown;
  s_tile_load : int array;     (** instructions placed per ET *)
  s_link_max : int;            (** static messages on the busiest OPN link *)
  s_contention_est : int;      (** advisory estimate of link contention *)
  s_pred_depth : int;          (** deepest chain of dependent predicates *)
  s_reads : int array;         (** read slot -> architectural register *)
  s_writes : int array;        (** write slot -> architectural register *)
  s_exit_insts : int array;    (** branch instruction per exit, in
                                   [Block.exits] order *)
  s_dispatch_done : int;
  s_base_write : int array;
  s_base_mem : int;
  s_base_resolve : int array;
  s_read_write : int array array;
  s_read_mem : int array;
  s_read_resolve : int array array;
}

type options = { model : model }

val default_options : options

val analyze_block :
  ?options:options -> fname:string -> Trips_edge.Block.t ->
  summary * Diag.t list
(** Analyze one scheduled block: build the dependence DAG, compute the
    weighted critical path, slack map and cost breakdown, and emit
    [pass:"timing"] placement-quality diagnostics (route-critical,
    et-hotspot, opn-hotspot, pred-chain).  Blocks without a valid
    placement or with a cyclic dataflow graph get a degenerate summary
    plus a ["timing-skipped"] diagnostic. *)

val summarize_program :
  ?options:options -> Trips_edge.Block.program ->
  (string, summary) Hashtbl.t * Diag.t list
(** Summaries for every block (keyed by label), all per-block diagnostics,
    plus cross-block ["reg-roundtrip"] findings: a register write carrying
    the critical path from a block into its unique jump successor. *)

val predicted_block_cost : model -> summary -> int
(** Standalone per-block latency estimate: fetch + critical path + commit
    overhead, ignoring inter-block overlap. *)

(** {1 Trace composition}

    Replays a dynamic block trace over the static summaries, mirroring
    the simulator's fetch/commit bookkeeping (fetch pipelining, block
    window, register-ready forwarding, misprediction redirects). *)

type state

val create : model -> state

val step : state -> summary -> exit_idx:int -> prev_correct:bool -> unit
(** Account one block instance.  [exit_idx] indexes [s_exit_insts] /
    [Block.exits] order; [prev_correct] says whether the predictor had
    correctly anticipated this instance (false triggers the redirect
    penalty). *)

val cycles : state -> int
(** Predicted total cycles: commit time of the last stepped block. *)

val blocks_stepped : state -> int
val mispredicts : state -> int
