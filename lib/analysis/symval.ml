(* Symbolic value language shared by every translation-validation check.

   One term language represents values on both sides of a compiler pass:
   TIR regions, EDGE dataflow blocks and RISC instruction streams all
   evaluate into [t].  Equivalence then reduces to syntactic equality of
   normalized terms, which is what makes the validator fast: the smart
   constructors below fold constants through [Trips_tir.Semantics] (the
   same oracle the interpreters use), canonicalize commutative operands,
   re-associate address arithmetic and forward stores to loads, so both
   sides of a correct translation collapse to the same tree.

   Terms are compared with [Stdlib.compare].  [Cf] therefore equates
   0.0 with -0.0 and nan with nan; where bit patterns matter (memory),
   float values are explicitly wrapped in [Fbits] first. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Semantics = Trips_tir.Semantics

(* Interface variables: the unknowns a block region is symbolic over. *)
type var =
  | Vreg of int (* TIR virtual register (CFG-level checks) *)
  | Varch of int (* EDGE architectural register *)
  | Vint of int (* RISC integer register *)
  | Vflt of int (* RISC floating-point register *)
  | Vret of int * int (* call event [id]; channel 0 = int, 1 = float *)

type t =
  | Ci of int64
  | Cf of float
  | Var of var
  | Bin of Ast.binop * t * t
  | Un of Ast.unop * t
  | Fbits of t (* Int64.bits_of_float *)
  | Fofbits of t (* Int64.float_of_bits *)
  | Sel of Ty.t * Ty.width * t * mem (* load addr from a memory chain *)

(* A memory is a chain of stores over a named initial memory.  Store
   values are always raw bit patterns ([Fbits]-wrapped floats); loads
   reinterpret.  [Mcall] is a havoc barrier: nothing forwards past it. *)
and mem =
  | Minit of int (* 0 = program memory, 1 = stack *)
  | Mstore of mem * Ty.width * t * t (* older chain, width, addr, raw bits *)
  | Mcall of int * mem

let mem_program = 0
let mem_stack = 1

let compare_t (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a == b || compare_t a b = 0
let equal_mem (a : mem) (b : mem) = a == b || Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Substitution builds terms that share sub-DAGs in memory, but
   [Stdlib.compare] (and any naive recursive walk) unfolds the sharing
   into a tree — exponential on e.g. unrolled FFT butterflies where
   every value feeds two consumers.  Interning every composite node
   makes structurally equal terms physically equal, so the polymorphic
   compare short-circuits on [==] at every shared node and costs only
   the difference between terms.  Correctness never depends on the
   tables' contents — a cleared table merely loses sharing — so
   {!reset_intern} may be called between independent checks to bound
   their size. *)

module HT = Hashtbl.Make (struct
  type nonrec t = t

  let equal (a : t) (b : t) = a == b || Stdlib.compare a b = 0

  (* Deeper than Hashtbl.hash's default 10-node budget: sibling terms
     of a big block share shallow structure, and colliding buckets pay
     a structural compare per entry. *)
  let hash (t : t) = Hashtbl.hash_param 32 128 t
end)

module HM = Hashtbl.Make (struct
  type nonrec t = mem

  let equal (a : mem) (b : mem) = a == b || Stdlib.compare a b = 0
  let hash (m : mem) = Hashtbl.hash_param 32 128 m
end)

let intern_t : t HT.t = HT.create 4096
let intern_m : mem HM.t = HM.create 512

let reset_intern () =
  HT.reset intern_t;
  HM.reset intern_m

let hc (t : t) : t =
  match HT.find_opt intern_t t with
  | Some t' -> t'
  | None ->
    HT.add intern_t t t;
    t

let hc_mem (m : mem) : mem =
  match HM.find_opt intern_m m with
  | Some m' -> m'
  | None ->
    HM.add intern_m m m;
    m

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let binop_is_float = function
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv -> true
  | _ -> false

(* Does the term denote a float value?  [None] when undeterminable
   (a bare [Vreg]/[Varch] could hold either class at runtime). *)
let is_float = function
  | Ci _ -> Some false
  | Cf _ -> Some true
  | Var (Vflt _) -> Some true
  | Var (Vint _) -> Some false
  | Var (Vret (_, ch)) -> Some (ch = 1)
  | Var (Vreg _) | Var (Varch _) -> None
  | Bin (op, _, _) -> Some (binop_is_float op)
  | Un (op, _) -> (
    match op with Ast.Fneg | Ast.Itof -> Some true | _ -> Some false)
  | Fbits _ -> Some false
  | Fofbits _ -> Some true
  | Sel (ty, _, _, _) -> Some (ty = Ty.F64)

let value_of = function Ci n -> Some (Ty.Vi n) | Cf f -> Some (Ty.Vf f) | _ -> None

let const_of = function Ty.Vi n -> Ci n | Ty.Vf f -> Cf f

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

(* Matches Dataflow.commutative so canonicalization absorbs the
   converter's const-to-immediate operand swaps. *)
let commutative = function
  | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Xor | Ast.Fadd | Ast.Fmul
  | Ast.Eq | Ast.Ne | Ast.Feq | Ast.Fne ->
    true
  | _ -> false

let rec bin op a b =
  (* Constant folding through the reference semantics.  Division by a
     zero constant traps at runtime, so it must stay symbolic. *)
  let folded =
    match (value_of a, value_of b) with
    | Some va, Some vb -> (
      try Some (const_of (Semantics.binop op va vb))
      with Semantics.Trap _ | Invalid_argument _ -> None)
    | _ -> None
  in
  match folded with
  | Some c -> c
  | None -> (
    match (op, a, b) with
    (* Canonicalize subtraction of a constant into addition so stack
       and spill address arithmetic re-associates. *)
    | Ast.Sub, _, Ci n -> bin Ast.Add a (Ci (Int64.neg n))
    | _ ->
      let a, b =
        if commutative op && compare_t a b < 0 then (b, a) else (a, b)
      in
      (match (op, a, b) with
      | Ast.Add, x, Ci 0L -> x
      | Ast.Add, Bin (Ast.Add, x, Ci m), Ci n -> bin Ast.Add x (Ci (Int64.add m n))
      | Ast.Mul, x, Ci 1L -> x
      | Ast.Mul, _, Ci 0L -> Ci 0L
      | Ast.And, _, Ci 0L -> Ci 0L
      | Ast.And, x, Ci -1L -> x
      | Ast.Or, x, Ci 0L -> x
      | Ast.Or, x, Ci -1L -> ignore x; Ci (-1L)
      | Ast.Xor, x, Ci 0L -> x
      | (Ast.Shl | Ast.Lsr | Ast.Asr), x, Ci n when Int64.logand n 63L = 0L -> x
      | _ -> hc (Bin (op, a, b))))

let un op a =
  match value_of a with
  | Some va -> (
    try const_of (Semantics.unop op va)
    with Semantics.Trap _ | Invalid_argument _ -> hc (Un (op, a)))
  | None -> (
    match op with
    | Ast.Zext Ty.W8 | Ast.Sext Ty.W8 -> a
    | _ -> hc (Un (op, a)))

let fbits = function
  | Cf f -> Ci (Int64.bits_of_float f)
  | Fofbits x -> x
  | t -> hc (Fbits t)

let fofbits = function
  | Ci n -> Cf (Int64.float_of_bits n)
  | Fbits x -> x
  | t -> hc (Fofbits t)

(* Raw bit pattern of a term, for storing to memory.  Unknown-class
   terms are left bare; both sides of a check build the same wrapping
   because they build the same terms. *)
let to_bits t = if is_float t = Some true then fbits t else t

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

(* Decompose an address into (symbolic root, constant offset). *)
let addr_parts = function
  | Ci n -> (None, n)
  | Bin (Ast.Add, x, Ci n) -> (Some x, n)
  | t -> (Some t, 0L)

let same_root a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> compare_t x y = 0
  | _ -> false

let ranges_disjoint o1 s1 o2 s2 =
  Int64.add o1 (Int64.of_int s1) <= o2 || Int64.add o2 (Int64.of_int s2) <= o1

let store m w addr v = hc_mem (Mstore (m, w, addr, v))
let mcall id m = hc_mem (Mcall (id, m))

(* Reinterpret forwarded raw bits [v] as a load of [ty]/[w] would. *)
let reinterpret ty w v =
  match ty with
  | Ty.I64 -> un (Ast.Zext w) v
  | Ty.F64 -> fofbits v

(* A load: forward from the youngest exactly-matching store, skip
   provably disjoint stores, and otherwise keep the (partially peeled)
   chain symbolic.  Sound because skipping disjoint stores preserves
   semantics and both sides peel deterministically. *)
let rec sel ty w addr m =
  match m with
  | Mstore (older, w', a', v) ->
    let r, o = addr_parts addr and r', o' = addr_parts a' in
    if same_root r r' then
      if o = o' && w = w' then reinterpret ty w v
      else if ranges_disjoint o (Ty.bytes_of_width w) o' (Ty.bytes_of_width w')
      then sel ty w addr older
      else hc (Sel (ty, w, addr, m))
    else hc (Sel (ty, w, addr, m))
  | Minit _ | Mcall _ -> hc (Sel (ty, w, addr, m))

(* ------------------------------------------------------------------ *)
(* Conditions and path conditions                                      *)
(* ------------------------------------------------------------------ *)

(* Canonical decision key for a branch/predicate condition.  The EDGE
   converter materializes truthiness tests as [t != 0], so both sides
   must fork on the same key: strip [Ne x 0] and flip through
   [Eq x 0].  Valid for any integer x since truthy(x) = (x <> 0). *)
let rec cond_key t =
  match t with
  | Bin (Ast.Ne, x, Ci 0L) -> cond_key x
  | Bin (Ast.Eq, x, Ci 0L) ->
    let k, pol = cond_key x in
    (k, not pol)
  | _ -> (t, true)

type pc = (t * bool) list

exception Fork of t
(** Raised by {!decide} when the path condition does not determine the
    condition; the path driver explores both extensions. *)

let rec pc_assoc k = function
  | [] -> None
  | (k', b) :: rest -> if compare_t k k' = 0 then Some b else pc_assoc k rest

let decide (pc : pc) t =
  let k, pol = cond_key t in
  match k with
  | Ci n -> (n <> 0L) = pol
  | Cf f -> (f <> 0.) = pol
  | _ -> (
    match pc_assoc k pc with Some b -> b = pol | None -> raise (Fork k))

(* ------------------------------------------------------------------ *)
(* Substitution (used by seeded concretization)                        *)
(* ------------------------------------------------------------------ *)

(* Memoized per call so shared sub-DAGs are rewritten once; interning
   makes the structural memo keys behave like identity keys. *)
let substitution f =
  let memo = HT.create 256 and memo_m = HM.create 32 in
  let rec go t =
    match HT.find_opt memo t with
    | Some r -> r
    | None ->
      let r =
        match t with
        | Ci _ | Cf _ -> t
        | Var v -> ( match f v with Some c -> c | None -> t)
        | Bin (op, a, b) -> bin op (go a) (go b)
        | Un (op, a) -> un op (go a)
        | Fbits a -> fbits (go a)
        | Fofbits a -> fofbits (go a)
        | Sel (ty, w, a, m) -> sel ty w (go a) (go_mem m)
      in
      HT.add memo t r;
      r
  and go_mem m =
    match HM.find_opt memo_m m with
    | Some r -> r
    | None ->
      let r =
        match m with
        | Minit _ -> m
        | Mstore (older, w, a, v) -> store (go_mem older) w (go a) (go v)
        | Mcall (id, older) -> mcall id (go_mem older)
      in
      HM.add memo_m m r;
      r
  in
  (go, go_mem)

let subst f t = fst (substitution f) t
let subst_mem f m = snd (substitution f) m

(* Free-variable collection with a visited set, again so the walk is
   linear in the DAG rather than its unfolding. *)
let vars_collect acc0 roots =
  let seen = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace seen v ()) acc0;
  let acc = ref acc0 in
  let vis_t = HT.create 256 and vis_m = HM.create 32 in
  let rec go t =
    if not (HT.mem vis_t t) then begin
      HT.add vis_t t ();
      match t with
      | Ci _ | Cf _ -> ()
      | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          acc := v :: !acc
        end
      | Bin (_, a, b) ->
        go a;
        go b
      | Un (_, a) | Fbits a | Fofbits a -> go a
      | Sel (_, _, a, m) ->
        go a;
        go_mem m
    end
  and go_mem m =
    if not (HM.mem vis_m m) then begin
      HM.add vis_m m ();
      match m with
      | Minit _ -> ()
      | Mstore (older, _, a, v) ->
        go a;
        go v;
        go_mem older
      | Mcall (_, older) -> go_mem older
    end
  in
  List.iter (function `T t -> go t | `M m -> go_mem m) roots;
  !acc

let vars acc t = vars_collect acc [ `T t ]
let vars_mem acc m = vars_collect acc [ `M m ]

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let var_name = function
  | Vreg v -> Printf.sprintf "v%d" v
  | Varch r -> Printf.sprintf "r%d" r
  | Vint r -> Printf.sprintf "R%d" r
  | Vflt r -> Printf.sprintf "F%d" r
  | Vret (id, ch) -> Printf.sprintf "ret%d.%s" id (if ch = 1 then "f" else "i")

let rec pp ppf = function
  | Ci n -> Format.fprintf ppf "%Ld" n
  | Cf f -> Format.fprintf ppf "%h" f
  | Var v -> Format.pp_print_string ppf (var_name v)
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (Ast.binop_name op) pp b
  | Un (op, a) -> Format.fprintf ppf "%s(%a)" (Ast.unop_name op) pp a
  | Fbits a -> Format.fprintf ppf "bits(%a)" pp a
  | Fofbits a -> Format.fprintf ppf "float(%a)" pp a
  | Sel (ty, w, a, m) ->
    Format.fprintf ppf "%s.%d[%a|%a]" (Ty.to_string ty) (Ty.bytes_of_width w)
      pp a pp_mem m

and pp_mem ppf = function
  | Minit 0 -> Format.pp_print_string ppf "M"
  | Minit 1 -> Format.pp_print_string ppf "S"
  | Minit k -> Format.fprintf ppf "M%d" k
  | Mstore (older, w, a, v) ->
    Format.fprintf ppf "%a;st%d %a:=%a" pp_mem older (Ty.bytes_of_width w) pp a
      pp v
  | Mcall (id, older) -> Format.fprintf ppf "%a;call%d" pp_mem older id

let to_string t = Format.asprintf "%a" pp t
