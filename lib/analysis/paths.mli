(** Predicate-path enumeration for one EDGE block.

    Enumerates the feasible assignments of truth values to the block's
    predicate producers, together with the set of instructions that fire
    under each assignment — mirroring the dataflow firing rule of
    {!Trips_edge.Exec}: an instruction fires when its predicate condition
    holds and every required operand port has a fired producer. *)

type producer = Read of int | Inst of int

type path = {
  assign : (int * bool) list;   (* predicate producer -> delivered truth *)
  fires : bool array;           (* per instruction *)
  fire_order : int list;        (* a valid dataflow firing order *)
}

val default_max_paths : int

val pp_assign : (int * bool) list -> string
(** Human-readable rendering, e.g. ["path I3=T,I7=F"]. *)

val port_map :
  Trips_edge.Block.t -> (int * Trips_edge.Isa.slot, producer list) Hashtbl.t
(** Producers per (instruction, port), including read slots. *)

val pred_producers : Trips_edge.Block.t -> int list
(** Distinct instructions referenced as predicate producers. *)

val enumerate :
  ?max_paths:int -> Trips_edge.Block.t -> path list * bool
(** All feasible paths of the block; the flag is true when enumeration hit
    the [max_paths] cap and the list is incomplete. *)

val null_kinds : Trips_edge.Block.t -> path -> bool array
(** Per-instruction: does the instruction deliver a null token on this
    path (a [Null] producer, propagated through movs)? *)
