(** Global abstract interpretation over the TIR CFG.

    Computes, per program point, an interval + known-bits + address-base
    abstraction of every vreg: value ranges, nullness, and a
    field-insensitive separation oracle for global/address accesses.  The
    results drive the global optimization passes in {!Trips_tir.Opt} (via
    {!facts}), surface as [pass:"absint"] {!Diag} findings, and feed the
    [absint] experiment through {!stats}.

    Soundness posture: function parameters are top (entry functions can be
    invoked with arbitrary harness arguments); return values use bounded
    downward summary iteration from top, each round sound by monotonicity.
    Widening kicks in after a few joins at each block head, with a sweep cap
    that falls back to all-top, so analysis always terminates. *)

type t
(** Fixpoint results for a whole program. *)

val analyze : ?bug:int -> Trips_tir.Cfg.program -> t
(** Run the analysis.  [?bug] (1..{!num_bugs}) deliberately corrupts one
    transfer function / oracle for the mutation test suite; out-of-range
    values mean "no bug". *)

val num_bugs : int
(** Number of distinct seeded-breakage modes accepted by [analyze ~bug]. *)

(** {2 Queries} *)

val range_at :
  t -> fname:string -> label:string -> Trips_tir.Cfg.vreg -> (int64 * int64) option
(** Signed inclusive range of a vreg at a block entry; [None] when the
    block is unreachable, the vreg may hold a float/address, or the
    function is unknown. *)

val def_value :
  t -> fname:string -> label:string -> int -> (int64 * int64) option
(** Range of the value defined by instruction [idx] of [label], if the
    instruction defines an integer (non-address) value. *)

val branch_dir : t -> fname:string -> label:string -> bool option
(** Provable direction of the block's branch, if any. *)

val reachable : t -> fname:string -> label:string -> bool
(** Whether the fixpoint found any path into the block. *)

val separated :
  t ->
  fname:string ->
  Trips_tir.Cfg.operand * int * Trips_tir.Ty.width ->
  Trips_tir.Cfg.operand * int * Trips_tir.Ty.width ->
  bool
(** Must-not-alias oracle over [(address root, byte offset, width)]
    accesses; [true] only when the two accesses provably never overlap. *)

(** {2 Consumers} *)

val facts : t -> string -> Trips_tir.Opt.absfacts
(** Fact closures for the named function, feeding
    {!Trips_tir.Opt.gather_global}.  Unknown functions get
    {!Trips_tir.Opt.no_facts}. *)

val diags : t -> Diag.t list
(** [pass:"absint"] findings: provably dead branches (Info), must-not-alias
    pair summaries (Info), always-trapping divisions and provably
    out-of-range shift counts (Warning). *)

type stats = {
  s_funcs : int;
  s_blocks : int;
  s_reachable : int;
  s_const_defs : int;  (** definitions proved constant *)
  s_dead_branches : int;  (** branches with a provable direction *)
  s_trap_divs : int;
  s_oor_shifts : int;
  s_sep_pairs : int;  (** memory access pairs proved must-not-alias *)
  s_widenings : int;
}

val stats : t -> stats
