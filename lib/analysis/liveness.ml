(* Cross-block analyses over the block-level CFG.

   Register state persists in the register file between blocks, so
   block-level dataflow is clean: a block's read slots are its uses, its
   write slots its (unconditional, block-atomic) defs.  Three analyses:

   - branch-target resolution: every exit destination names a block of the
     same function (calls: a known function plus a return block);
   - use-before-def: a read slot naming a register that no block of the
     function ever writes (and that the ABI does not provide: r0 scratch,
     r1 return value, r2-r9 arguments) is a naming bug.  The criterion is
     deliberately not path-sensitive: the register file is zero-initialized
     and the compiler's predicated merges legitimately read registers whose
     only writes are on other paths or later loop iterations — those reads
     observe a well-defined 0, not garbage;
   - dead-write: a backward liveness pass — a write slot whose register no
     successor path reads before overwriting it is wasted register-file
     bandwidth (warning: it is legal, just useless). *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block
module IS = Set.Make (Int)

(* EDGE ABI (see Exec/Hyperblock): r1 return value, r2..r9 arguments,
   r0 conventional scratch. *)
let abi_ret = 1
let abi_args = [ 2; 3; 4; 5; 6; 7; 8; 9 ]
let abi_entry_regs = IS.of_list (0 :: abi_ret :: abi_args)

let diag ~fname ?block ?inst ?fix ?(sev = Diag.Error) cls msg =
  Diag.make ~sev ~pass:"liveness" ~fname ?block ?inst ?fix cls msg

let block_uses (b : Block.t) =
  Array.fold_left (fun s (r : Block.read) -> IS.add r.Block.rreg s) IS.empty b.reads

let block_defs (b : Block.t) =
  Array.fold_left (fun s (w : Block.write) -> IS.add w.Block.wreg s) IS.empty b.writes

type cfg = {
  blocks : Block.t array;
  index : (string, int) Hashtbl.t;
  succs : int list array;        (* intra-function edges *)
  has_call : bool array;
  has_ret : bool array;
}

(* Build the function CFG; unknown destinations become diagnostics, known
   ones edges.  [known_funcs = None] skips callee resolution (used when
   verifying one function before the rest of the program exists). *)
let build_cfg ~fname ?known_funcs (f : Block.func) : cfg * Diag.t list =
  let blocks = Array.of_list f.Block.blocks in
  let index = Hashtbl.create 32 in
  Array.iteri
    (fun i (b : Block.t) -> Hashtbl.replace index b.Block.label i)
    blocks;
  let out = ref [] in
  let emit d = out := d :: !out in
  let succs = Array.make (Array.length blocks) [] in
  let has_call = Array.make (Array.length blocks) false in
  let has_ret = Array.make (Array.length blocks) false in
  Array.iteri
    (fun i (b : Block.t) ->
      List.iter
        (fun (ii, dest) ->
          let edge label what =
            match Hashtbl.find_opt index label with
            | Some j -> succs.(i) <- j :: succs.(i)
            | None ->
              emit
                (diag ~fname ~block:b.Block.label ~inst:ii "branch-target"
                   (Printf.sprintf "%s %s does not name a block of %s" what label
                      fname)
                   ~fix:"exits may only leave a function through call/return")
          in
          match (dest : Isa.exit_dest) with
          | Isa.Xjump l -> edge l "jump target"
          | Isa.Xcall (callee, retl) ->
            has_call.(i) <- true;
            edge retl "return label";
            (match known_funcs with
            | Some fs when not (List.mem callee fs) ->
              emit
                (diag ~fname ~block:b.Block.label ~inst:ii "branch-target"
                   (Printf.sprintf "call to unknown function %s" callee))
            | _ -> ())
          | Isa.Xret -> has_ret.(i) <- true)
        (Block.exits b))
    blocks;
  ({ blocks; index; succs; has_call; has_ret }, List.rev !out)

let check_func ~fname ?known_funcs (f : Block.func) : Diag.t list =
  let cfg, out0 = build_cfg ~fname ?known_funcs f in
  let out = ref (List.rev out0) in
  let emit d = out := d :: !out in
  let nb = Array.length cfg.blocks in
  let entry =
    match Hashtbl.find_opt cfg.index f.Block.entry with
    | Some i -> Some i
    | None ->
      emit
        (diag ~fname "branch-target"
           (Printf.sprintf "entry block %s does not exist" f.Block.entry));
      None
  in
  (* reachability from the entry *)
  let reachable = Array.make nb false in
  (match entry with
  | None -> ()
  | Some e ->
    let stack = ref [ e ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | i :: rest ->
        stack := rest;
        if not reachable.(i) then begin
          reachable.(i) <- true;
          List.iter (fun j -> stack := j :: !stack) cfg.succs.(i)
        end
    done);
  Array.iteri
    (fun i (b : Block.t) ->
      if entry <> None && not reachable.(i) then
        emit
          (diag ~fname ~block:b.Block.label ~sev:Diag.Warning "unreachable"
             "no path from the function entry reaches this block"
             ~fix:"delete the block or branch to it"))
    cfg.blocks;
  let uses = Array.map block_uses cfg.blocks in
  let defs = Array.map block_defs cfg.blocks in
  (* use-before-def: a register no block of the function ever writes.  A
     call makes abi_ret available again, so count it as defined too. *)
  let ever_defined =
    let d = Array.fold_left IS.union abi_entry_regs defs in
    if Array.exists (fun c -> c) cfg.has_call then IS.add abi_ret d else d
  in
  Array.iteri
    (fun i (b : Block.t) ->
      IS.iter
        (fun r ->
          if not (IS.mem r ever_defined) then
            emit
              (diag ~fname ~block:b.Block.label "use-before-def"
                 (Printf.sprintf "r%d is read but never written by %s" r fname)
                 ~fix:"initialize the register before first use"))
        uses.(i))
    cfg.blocks;
  (* backward liveness for dead writes *)
  let exit_uses i =
    let u = if cfg.has_ret.(i) then IS.singleton abi_ret else IS.empty in
    if cfg.has_call.(i) then IS.union u (IS.of_list (abi_ret :: abi_args)) else u
  in
  let live_in = Array.make nb IS.empty in
  let live_out = Array.make nb IS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nb - 1 downto 0 do
      let o =
        List.fold_left
          (fun acc j -> IS.union acc live_in.(j))
          (exit_uses i) cfg.succs.(i)
      in
      let inn = IS.union uses.(i) (IS.diff o defs.(i)) in
      if not (IS.equal o live_out.(i)) then begin
        live_out.(i) <- o;
        changed := true
      end;
      if not (IS.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  Array.iteri
    (fun i (b : Block.t) ->
      IS.iter
        (fun r ->
          if not (IS.mem r live_out.(i)) then
            emit
              (diag ~fname ~block:b.Block.label ~sev:Diag.Warning "dead-write"
                 (Printf.sprintf "r%d is written but no successor reads it" r)
                 ~fix:"drop the register from the block's write set"))
        defs.(i))
    cfg.blocks;
  List.rev !out

let check_program (p : Block.program) : Diag.t list =
  let out = ref [] in
  let emit d = out := d :: !out in
  (* globally unique labels *)
  let owner = Hashtbl.create 64 in
  List.iter
    (fun (f : Block.func) ->
      List.iter
        (fun (b : Block.t) ->
          match Hashtbl.find_opt owner b.Block.label with
          | Some other ->
            emit
              (diag ~fname:f.Block.fname ~block:b.Block.label "branch-target"
                 (Printf.sprintf "duplicate block label (also in %s)" other))
          | None -> Hashtbl.replace owner b.Block.label f.Block.fname)
        f.Block.blocks)
    p.Block.funcs;
  let known = List.map (fun (f : Block.func) -> f.Block.fname) p.Block.funcs in
  List.iter
    (fun (f : Block.func) ->
      out :=
        List.rev_append
          (check_func ~fname:f.Block.fname ~known_funcs:known f)
          !out)
    p.Block.funcs;
  List.rev !out
