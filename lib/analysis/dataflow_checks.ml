(* Per-block dataflow verification over enumerated predicate paths.

   The checks mirror the run-time obligations of Exec.exec_block, which
   the hardware's block-atomic commit protocol imposes on every block
   instance regardless of which path it takes:
     - exactly one branch fires (exit-path);
     - every write slot receives exactly one token (write-path);
     - every store fires, possibly with a null token (store-path);
     - no operand port is delivered twice (port-conflict);
     - null tokens only ever reach store ports (null-flow);
   plus two static properties:
     - deadlock: a live instruction that can fire on no path (its operands
       can never all arrive together);
     - dead-code: an instruction whose result reaches no write, store or
       branch — informational only, because unoptimized presets (O0)
       legitimately carry dead instructions; they waste issue slots but
       cannot make a block misbehave. *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block

let diag ~fname ~(b : Block.t) ?inst ?fix ?(sev = Diag.Error) cls msg =
  Diag.make ~sev ~pass:"paths" ~fname ~block:b.Block.label ?inst ?fix cls msg

(* instructions whose result (transitively) reaches a write, store or
   branch; predicate arcs count as uses *)
let live_set (b : Block.t) : bool array =
  let n = Array.length b.insts in
  let live = Array.make n false in
  let is_root (ins : Isa.inst) =
    match ins.Isa.op with
    | Isa.Store _ | Isa.Branch _ -> true
    | _ -> List.exists (function Isa.To_write _ -> true | _ -> false) ins.Isa.targets
  in
  Array.iteri (fun i ins -> if is_root ins then live.(i) <- true) b.insts;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (ins : Isa.inst) ->
        if not live.(i) then
          let feeds_live =
            List.exists
              (function
                | Isa.To_inst (j, _) -> j >= 0 && j < n && live.(j)
                | Isa.To_write _ -> true)
              ins.Isa.targets
          in
          if feeds_live then begin
            live.(i) <- true;
            changed := true
          end)
      b.insts
  done;
  live

let check ?(max_paths = Paths.default_max_paths) ~fname (b : Block.t) :
    Diag.t list =
  let n = Array.length b.insts in
  let out = ref [] in
  let dedup = Hashtbl.create 32 in
  let emit key d =
    if not (Hashtbl.mem dedup key) then begin
      Hashtbl.replace dedup key ();
      out := d :: !out
    end
  in
  let ports = Paths.port_map b in
  (* write-slot producers, from targets *)
  let write_producers = Array.make (Array.length b.writes) [] in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      List.iter
        (function
          | Isa.To_write w -> write_producers.(w) <- Paths.Inst i :: write_producers.(w)
          | Isa.To_inst _ -> ())
        ins.Isa.targets)
    b.insts;
  Array.iteri
    (fun r (rd : Block.read) ->
      List.iter
        (function
          | Isa.To_write w -> write_producers.(w) <- Paths.Read r :: write_producers.(w)
          | Isa.To_inst _ -> ())
        rd.Block.rtargets)
    b.reads;
  let live = live_set b in
  let paths, truncated = Paths.enumerate ~max_paths b in
  if truncated then
    emit ("explosion", 0, Isa.Op0)
      (diag ~fname ~b ~sev:Diag.Info "path-explosion"
         (Printf.sprintf
            "more than %d predicate paths; dataflow checks cover a subset"
            max_paths));
  let ever_fired = Array.make n false in
  List.iter
    (fun (p : Paths.path) ->
      Array.iteri (fun i f -> if f then ever_fired.(i) <- true) p.Paths.fires;
      let fired = function Paths.Read _ -> true | Paths.Inst j -> p.Paths.fires.(j) in
      let where = Paths.pp_assign p.Paths.assign in
      (* exactly one branch *)
      let branches =
        List.filter (fun (i, _) -> p.Paths.fires.(i)) (Block.exits b)
      in
      (match branches with
      | [ _ ] -> ()
      | [] ->
        emit ("exit0", 0, Isa.Op0)
          (diag ~fname ~b "exit-path" ("no branch fires on " ^ where)
             ~fix:"cover every predicate path with exactly one branch")
      | (i, _) :: _ ->
        emit ("exit2", 0, Isa.Op0)
          (diag ~fname ~b ~inst:i "exit-path"
             (Printf.sprintf "%d branches fire on %s" (List.length branches) where)
             ~fix:"predicate the branches on disjoint paths"));
      (* stores complete on every path *)
      Array.iteri
        (fun i (ins : Isa.inst) ->
          match ins.Isa.op with
          | Isa.Store _ when not p.Paths.fires.(i) ->
            emit ("store", i, Isa.Op0)
              (diag ~fname ~b ~inst:i "store-path"
                 ("store does not complete on " ^ where)
                 ~fix:"feed the store a null token on untaken paths")
          | _ -> ())
        b.insts;
      (* write slots: exactly one token each *)
      Array.iteri
        (fun w producers ->
          match producers with
          | [] -> () (* flagged as write-producer by the structure pass *)
          | _ -> (
            match List.length (List.filter fired producers) with
            | 1 -> ()
            | 0 ->
              emit ("write0", w, Isa.Op0)
                (diag ~fname ~b "write-path"
                   (Printf.sprintf "write slot W%d receives no value on %s" w where)
                   ~fix:"merge the defining paths with predicated movs")
            | k ->
              emit ("write2", w, Isa.Op0)
                (diag ~fname ~b "write-path"
                   (Printf.sprintf "write slot W%d receives %d values on %s" w k
                      where))))
        write_producers;
      (* operand ports: at most one delivery *)
      Hashtbl.iter
        (fun (j, s) producers ->
          let k = List.length (List.filter fired producers) in
          if k > 1 then
            emit ("port", j, s)
              (diag ~fname ~b ~inst:j "port-conflict"
                 (Printf.sprintf "%s receives %d tokens on %s" (Isa.slot_name s) k
                    where)
                 ~fix:"producers sharing a port must be predicated on disjoint paths"))
        ports;
      (* null tokens must stay on store ports *)
      let nul = Paths.null_kinds b p in
      Array.iteri
        (fun i (ins : Isa.inst) ->
          if p.Paths.fires.(i) && nul.(i) then
            List.iter
              (function
                | Isa.To_write w ->
                  emit ("nullw", w, Isa.Op0)
                    (diag ~fname ~b ~inst:i "null-flow"
                       (Printf.sprintf
                          "null token reaches write slot W%d on %s" w where))
                | Isa.To_inst (j, Isa.OpPred) ->
                  emit ("nullp", j, Isa.OpPred)
                    (diag ~fname ~b ~inst:j "null-flow"
                       ("null token arrives as a predicate on " ^ where))
                | Isa.To_inst (j, s) -> (
                  match b.insts.(j).Isa.op with
                  | Isa.Store _ | Isa.Mov | Isa.Null -> ()
                  | Isa.Load _ when s = Isa.Op0 && p.Paths.fires.(j) ->
                    emit ("nulla", j, s)
                      (diag ~fname ~b ~inst:j "null-flow"
                         ("null token used as a load address on " ^ where))
                  | Isa.Bin _ | Isa.Un _ when p.Paths.fires.(j) ->
                    emit ("nulla", j, s)
                      (diag ~fname ~b ~inst:j "null-flow"
                         ("null token used as an ALU operand on " ^ where))
                  | _ -> ()))
              ins.Isa.targets)
        b.insts)
    paths;
  (* aggregated over all paths *)
  if not truncated then
    Array.iteri
      (fun i (_ : Isa.inst) ->
        if live.(i) && not ever_fired.(i) then
          emit ("deadlock", i, Isa.Op0)
            (diag ~fname ~b ~inst:i "deadlock"
               "live instruction can fire on no path: its operands and \
                predicate can never all arrive on a single predicate path"
               ~fix:"route all operands through producers alive on a common path"))
      b.insts;
  Array.iteri
    (fun i (_ : Isa.inst) ->
      if not live.(i) then
        emit ("dead", i, Isa.Op0)
          (diag ~fname ~b ~inst:i ~sev:Diag.Info "dead-code"
             "result reaches no write, store or branch"
             ~fix:"delete the instruction or target a consumer"))
    b.insts;
  List.rev !out
